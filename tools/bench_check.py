#!/usr/bin/env python3
"""Benchmark regression gate.

Compares the BENCH_*.json exports a CI run produced (bench_json.hpp's flat
schema: {"benchmarks": [{"op", "iterations", "ns_per_op", "counters"}]})
against the committed baselines in bench/baselines/. For every op present
in both files the check computes the ratio current/baseline of ns_per_op
and fails when it exceeds 1 + tolerance. Ops only present on one side are
reported but do not fail the run — benches come and go with the code — and
a baseline file with no matching export is an error, since that usually
means a CI stage silently stopped producing its JSON.

Medians: bench_json.hpp writes one row per completed google-benchmark run.
With --benchmark_repetitions > 1 the same op appears multiple times; the
check collapses duplicates to their median before comparing, so one noisy
repetition cannot fail the gate.

Usage:
  tools/bench_check.py --build-dir build --baseline-dir bench/baselines
  tools/bench_check.py ... --tolerance 0.25     # override the 15% default
  tools/bench_check.py ... --update             # rewrite baselines instead
  STS_BENCH_TOL=0.5 tools/bench_check.py ...    # env override (CI knob)

Exit codes: 0 all within tolerance, 1 regression found, 2 usage/IO error.

Wall-clock baselines are machine-specific: regenerate them with --update
on the reference runner whenever the hardware or a kernel deliberately
changes, and review the diff like any other code change.
"""

import argparse
import json
import os
import shutil
import statistics
import sys
from pathlib import Path


def load_rows(path):
    """op -> median ns_per_op for one BENCH_*.json file."""
    with open(path) as f:
        doc = json.load(f)
    samples = {}
    for row in doc.get("benchmarks", []):
        op = row.get("op")
        ns = row.get("ns_per_op")
        if op is None or not isinstance(ns, (int, float)) or ns <= 0:
            continue
        samples.setdefault(op, []).append(float(ns))
    return {op: statistics.median(v) for op, v in samples.items()}


def compare(name, baseline, current, tolerance):
    """Returns the list of regression messages for one bench file."""
    regressions = []
    common = sorted(set(baseline) & set(current))
    if not common:
        print(f"{name}: no common ops between baseline and export")
        return [f"{name}: baseline and export share no ops"]
    for op in common:
        ratio = current[op] / baseline[op]
        flag = ""
        if ratio > 1.0 + tolerance:
            flag = "  << REGRESSION"
            regressions.append(
                f"{name}: {op} {baseline[op]:.0f} -> {current[op]:.0f} ns/op "
                f"({ratio:.2f}x > {1.0 + tolerance:.2f}x allowed)")
        print(f"{name}: {op}: {baseline[op]:.0f} -> {current[op]:.0f} ns/op "
              f"({ratio:.2f}x){flag}")
    for op in sorted(set(baseline) - set(current)):
        print(f"{name}: {op}: in baseline only (not run this time)")
    for op in sorted(set(current) - set(baseline)):
        print(f"{name}: {op}: new op (no baseline yet)")
    return regressions


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build",
                    help="directory holding the BENCH_*.json exports")
    ap.add_argument("--baseline-dir", default="bench/baselines",
                    help="directory holding the committed baselines")
    ap.add_argument("--tolerance", type=float,
                    default=float(os.environ.get("STS_BENCH_TOL", "0.15")),
                    help="allowed fractional slowdown (default 0.15 or "
                         "$STS_BENCH_TOL)")
    ap.add_argument("--update", action="store_true",
                    help="copy the current exports over the baselines "
                         "instead of comparing")
    args = ap.parse_args()

    build = Path(args.build_dir)
    base_dir = Path(args.baseline_dir)
    if args.tolerance < 0:
        print("bench_check: tolerance must be >= 0", file=sys.stderr)
        return 2

    baselines = sorted(base_dir.glob("BENCH_*.json"))
    if args.update:
        base_dir.mkdir(parents=True, exist_ok=True)
        names = {p.name for p in baselines}
        names.update(p.name for p in build.glob("BENCH_*.json"))
        updated = 0
        for name in sorted(names):
            src = build / name
            if not src.is_file():
                print(f"bench_check: {src} missing; baseline kept")
                continue
            shutil.copyfile(src, base_dir / name)
            print(f"bench_check: updated {base_dir / name}")
            updated += 1
        if updated == 0:
            print("bench_check: nothing to update", file=sys.stderr)
            return 2
        return 0

    if not baselines:
        print(f"bench_check: no baselines under {base_dir}", file=sys.stderr)
        return 2

    regressions = []
    missing = []
    for base_path in baselines:
        cur_path = build / base_path.name
        if not cur_path.is_file():
            missing.append(base_path.name)
            continue
        regressions += compare(base_path.name, load_rows(base_path),
                               load_rows(cur_path), args.tolerance)

    if missing:
        print(f"bench_check: missing exports for {', '.join(missing)} — "
              f"did the bench/dispatch stages run?", file=sys.stderr)
        return 2
    if regressions:
        print("\nbench_check: FAILED", file=sys.stderr)
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
        return 1
    print(f"bench_check: all ops within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
