// stsd: the resident solver daemon.
//
// Owns one svc::Service (bounded job queue + plan cache + warm flux pool)
// and serves the wire protocol on a Unix-domain socket until asked to
// stop. Two shutdown paths, both graceful (drain: reject new work, cancel
// pending jobs, let the running one finish) and both exiting 0:
//   - SIGTERM / SIGINT, recorded by an async-signal-safe flag the main
//     thread polls, and
//   - the `shutdown` op (`stsctl shutdown`).
//
// Usage:
//   stsd [--socket <path>] [--queue-cap <n>] [--cache-bytes <n>]
//        [--threads <n>] [--slots <k>] [--policy fifo|fair]
//        [--journal <path>] [--ckpt-dir <dir>]
//        [--http-port <n>] [--trace <f.json>] [--metrics <f.csv|stderr>]
//        [--prof <f.folded>]
//
// --slots carves the machine into K worker partitions and runs up to K
// jobs concurrently (DESIGN.md §15); --policy picks the admission order
// (fair = priority classes + weighted fairness, the default).
//
// Environment: STS_SOCK, STS_QUEUE_CAP, STS_CACHE_BYTES, STS_THREADS,
// STS_SLOTS, STS_POLICY, STS_JOURNAL, STS_CKPT_DIR, STS_HTTP_PORT,
// STS_JOB_TRACE_BYTES (flags
// win). With a journal configured the daemon replays it on startup and
// re-admits interrupted jobs (DESIGN.md §12). --http-port starts the
// loopback Prometheus scrape listener (0 = ephemeral port, printed on
// startup; DESIGN.md §13); --prof runs the sampling profiler for the
// daemon's lifetime and writes folded stacks at exit. STS_FAULT arms fault
// sites, including svc:accept, svc:job and svc:recover. Exit codes: 0
// clean shutdown, 1 unexpected error, 2 usage, 3 cannot bind the socket.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>

#include "obs/obs.hpp"
#include "support/env.hpp"
#include "support/error.hpp"
#include "support/topology.hpp"
#include "svc/http.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"

namespace {

volatile std::sig_atomic_t g_signalled = 0;

void on_signal(int) { g_signalled = 1; }

[[noreturn]] void usage(const char* argv0) {
  std::printf("usage: %s [--socket path] [--queue-cap n] [--cache-bytes n]"
              " [--threads n]\n"
              "  [--slots k] [--policy fifo|fair] [--journal path]"
              " [--ckpt-dir dir]\n"
              "  [--http-port n] [--trace f.json] [--metrics f.csv|stderr]"
              " [--prof f.folded]\n",
              argv0);
  std::exit(2);
}

} // namespace

int main(int argc, char** argv) {
  using namespace sts;

  std::string socket_path = svc::Server::default_socket_path();
  svc::Service::Config config = svc::Service::Config::from_env();
  std::string trace_path;
  std::string metrics_dest;
  std::string prof_path;
  // -1 = listener disabled (the default); 0 = ephemeral port.
  int http_port = static_cast<int>(support::env_int("STS_HTTP_PORT", -1));

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--socket") {
      socket_path = next();
    } else if (arg == "--queue-cap") {
      config.queue_capacity =
          static_cast<std::size_t>(std::strtoull(next().c_str(), nullptr, 10));
    } else if (arg == "--cache-bytes") {
      config.cache_bytes =
          static_cast<std::size_t>(std::strtoull(next().c_str(), nullptr, 10));
    } else if (arg == "--threads") {
      config.threads = static_cast<unsigned>(std::atoi(next().c_str()));
    } else if (arg == "--slots") {
      const int slots = std::atoi(next().c_str());
      config.slots = slots < 1 ? 1u : static_cast<unsigned>(slots);
    } else if (arg == "--policy") {
      config.policy = svc::dispatch::parse_policy(next());
    } else if (arg == "--journal") {
      config.journal_path = next();
    } else if (arg == "--ckpt-dir") {
      config.ckpt_dir = next();
    } else if (arg == "--http-port") {
      http_port = std::atoi(next().c_str());
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--metrics") {
      metrics_dest = next();
    } else if (arg == "--prof") {
      prof_path = next();
    } else {
      usage(argv[0]);
    }
  }
  if (!trace_path.empty()) obs::enable_tracing(trace_path);
  if (!metrics_dest.empty()) obs::enable_metrics(metrics_dest);
  if (!prof_path.empty()) obs::enable_profiling(prof_path);

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  try {
    svc::Service service(config);
    svc::Server server(service, socket_path);
    try {
      server.start();
    } catch (const support::Error& e) {
      std::fprintf(stderr, "stsd: %s\n", e.what());
      return 3;
    }
    std::optional<svc::MetricsHttpServer> http;
    if (http_port >= 0) {
      http.emplace(http_port);
      try {
        http->start();
      } catch (const support::Error& e) {
        // The scrape listener is an optional extra; losing it must not take
        // the protocol edge down.
        std::fprintf(stderr, "stsd: %s (metrics listener disabled)\n",
                     e.what());
        http.reset();
      }
    }
    std::printf("stsd: serving %s (queue cap %zu, cache budget %zu bytes)\n",
                socket_path.c_str(), config.queue_capacity,
                config.cache_bytes);
    const svc::ServiceStats boot = service.stats();
    std::printf("stsd: topology %s; %u slot(s) under %s policy, %u "
                "worker(s) over %u domain(s), affinity %s\n",
                support::topo::machine().describe().c_str(),
                boot.dispatch.slots, boot.dispatch.policy.c_str(),
                boot.topology.pool_threads, boot.topology.pool_domains,
                boot.topology.affinity.c_str());
    for (const auto& part : service.partitions()) {
      std::printf("stsd: slot %u -> cpus %s\n", part.slot,
                  part.cpulist().c_str());
    }
    if (!config.journal_path.empty()) {
      std::printf("stsd: journal %s, %llu job(s) recovered\n",
                  config.journal_path.c_str(),
                  static_cast<unsigned long long>(
                      service.stats().recovered));
    }
    if (http) {
      // The e2e tests (and humans pointing a scraper at an ephemeral port)
      // parse this line.
      std::printf("stsd: metrics on http://127.0.0.1:%d/metrics\n",
                  http->port());
    }
    std::fflush(stdout);

    // The signal handler can only set a flag, so the main thread polls it
    // alongside the shutdown op's cv-backed request.
    while (g_signalled == 0 && !service.shutdown_requested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    std::printf("stsd: %s, draining\n",
                g_signalled != 0 ? "signal" : "shutdown requested");
    std::fflush(stdout);

    // Stop the protocol edges first so no submit can race the drain, then
    // run the queue down.
    if (http) http->stop();
    server.stop();
    service.drain();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "stsd: %s\n", e.what());
    return 1;
  }
  obs::flush();
  std::printf("stsd: bye\n");
  return 0;
}
