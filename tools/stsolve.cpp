// stsolve: command-line driver for the sparsetask solvers.
//
// Loads a matrix (Matrix Market file or a named synthetic suite matrix),
// optionally auto-tunes the CSB block size via the simulated sweep, and
// runs Lanczos or LOBPCG under any of the five execution versions.
//
// Usage:
//   stsolve [options]
//     --matrix <path.mtx>     Matrix Market input (symmetrized if needed)
//     --suite <name>          synthetic suite matrix (see --list)
//     --scale <f>             suite scale factor (default 0.2)
//     --solver lanczos|lobpcg (default lobpcg)
//     --version libcsr|libcsb|ds|flux|rgt   (default flux)
//     --iterations <n>        (default 30)
//     --nev <n>               LOBPCG block width (default 8)
//     --block <rows>          CSB block size; 0 = heuristic (default)
//     --autotune              pick the block size by simulated sweep
//     --threads <n>           worker threads (default: hardware)
//     --trace <f.json>        write a Chrome trace-event file (Perfetto)
//     --metrics <f.csv|stderr> dump the metrics registry at exit
//     --list                  print suite matrix names and exit
//
// Telemetry can also be activated without flags via the STS_TRACE and
// STS_METRICS environment variables (see DESIGN.md, "Observability").
//
// Exit codes: 0 success, 1 unexpected error, 2 usage, 3 bad input
// (unreadable or malformed matrix, invalid options), 4 solver breakdown
// or task failure inside a runtime.
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "obs/obs.hpp"
#include "sim/machine.hpp"
#include "solvers/lanczos.hpp"
#include "solvers/lobpcg.hpp"
#include "sparse/mm_io.hpp"
#include "sparse/stats.hpp"
#include "sparse/suite.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"
#include "tuning/sweep.hpp"

namespace {

using namespace sts;

[[noreturn]] void usage(const char* argv0) {
  std::printf("usage: %s [--matrix f.mtx | --suite name] [--solver "
              "lanczos|lobpcg]\n"
              "  [--version libcsr|libcsb|ds|flux|rgt] [--iterations n] "
              "[--nev n]\n"
              "  [--block rows | --autotune] [--threads n] [--scale f] "
              "[--list]\n"
              "  [--trace f.json] [--metrics f.csv|stderr]\n",
              argv0);
  std::exit(2);
}

solver::Version parse_version(const std::string& v) {
  if (v == "libcsr") return solver::Version::kLibCsr;
  if (v == "libcsb") return solver::Version::kLibCsb;
  if (v == "ds" || v == "deepsparse") return solver::Version::kDs;
  if (v == "flux" || v == "hpx") return solver::Version::kFlux;
  if (v == "rgt" || v == "regent") return solver::Version::kRgt;
  throw support::Error("unknown version: " + v);
}

} // namespace

int main(int argc, char** argv) {
  std::string matrix_path;
  std::string suite_name;
  std::string solver_name = "lobpcg";
  std::string version_name = "flux";
  double scale = 0.2;
  int iterations = 30;
  la::index_t nev = 8;
  la::index_t block = 0;
  bool autotune = false;
  unsigned threads = std::max(1u, std::thread::hardware_concurrency());
  std::string trace_path;
  std::string metrics_dest;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string inline_value;
    bool has_inline_value = false;
    if (const std::size_t eq = arg.find('=');
        eq != std::string::npos && arg.rfind("--", 0) == 0) {
      inline_value = arg.substr(eq + 1);
      has_inline_value = true;
      arg.resize(eq);
    }
    auto next = [&]() -> std::string {
      if (has_inline_value) return inline_value;
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--matrix") {
      matrix_path = next();
    } else if (arg == "--suite") {
      suite_name = next();
    } else if (arg == "--scale") {
      scale = std::atof(next().c_str());
    } else if (arg == "--solver") {
      solver_name = next();
    } else if (arg == "--version") {
      version_name = next();
    } else if (arg == "--iterations") {
      iterations = std::atoi(next().c_str());
    } else if (arg == "--nev") {
      nev = std::atoll(next().c_str());
    } else if (arg == "--block") {
      block = std::atoll(next().c_str());
    } else if (arg == "--autotune") {
      autotune = true;
    } else if (arg == "--threads") {
      threads = static_cast<unsigned>(std::atoi(next().c_str()));
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--metrics") {
      metrics_dest = next();
    } else if (arg == "--list") {
      for (const auto& e : sparse::paper_suite()) {
        std::printf("%-20s %s (paper: %lld rows, %lld nnz)\n",
                    e.name.c_str(), sparse::to_string(e.matrix_class),
                    static_cast<long long>(e.paper_rows),
                    static_cast<long long>(e.paper_nnz));
      }
      return 0;
    } else {
      usage(argv[0]);
    }
  }

  // CLI flags layer on top of any STS_TRACE / STS_METRICS environment
  // activation; the explicit flush before the successful return writes the
  // files early, and the atexit hook covers the error paths.
  if (!trace_path.empty()) obs::enable_tracing(trace_path);
  if (!metrics_dest.empty()) obs::enable_metrics(metrics_dest);

  try {
    sparse::Coo coo(0, 0);
    if (!matrix_path.empty()) {
      coo = sparse::read_matrix_market_file(matrix_path);
      if (!coo.is_symmetric(1e-12)) {
        std::printf("input not symmetric; applying A = L + L^T - D\n");
        coo.symmetrize_lower();
      }
    } else if (!suite_name.empty()) {
      coo = sparse::suite_entry(suite_name).make(scale);
    } else {
      usage(argv[0]);
    }

    sparse::Csr csr = sparse::Csr::from_coo(coo);
    const sparse::MatrixStats st = sparse::compute_stats(csr);
    std::printf("matrix: %lld rows, %lld nnz (avg %.1f/row, max %lld)\n",
                static_cast<long long>(st.rows),
                static_cast<long long>(st.nnz), st.avg_row_nnz,
                static_cast<long long>(st.max_row_nnz));

    const solver::Version version = parse_version(version_name);
    if (autotune) {
      const auto sweep = tune::sweep_block_sizes_simulated(
          csr,
          solver_name == "lanczos" ? tune::SweepSolver::kLanczos
                                   : tune::SweepSolver::kLobpcg,
          version, sim::MachineModel::broadwell(), /*full_sweep=*/false,
          nev);
      block = sweep.best_block_size();
      std::printf("autotune: ");
      for (const auto& p : sweep.points) {
        std::printf("[%lld blocks: %.2f ms] ",
                    static_cast<long long>(p.block_count),
                    p.simulated_seconds * 1e3);
      }
      std::printf("\n-> block size %lld\n", static_cast<long long>(block));
    } else if (block == 0) {
      block = tune::recommended_block_size(version, threads, csr.rows());
      std::printf("heuristic block size: %lld (%lld blocks)\n",
                  static_cast<long long>(block),
                  static_cast<long long>((csr.rows() + block - 1) / block));
    }

    sparse::Csb csb = sparse::Csb::from_csr(csr, block);

    solver::SolverStatus status = solver::SolverStatus::kOk;
    if (solver_name == "lanczos") {
      solver::SolverOptions options;
      options.block_size = block;
      options.threads = threads;
      const auto r = solver::lanczos(csr, csb, iterations, version, options);
      status = r.status;
      std::printf("\nLanczos (%s), %d iterations, %.3f s",
                  solver::to_string(version), r.timing.iterations,
                  r.timing.total_seconds);
      if (r.timing.graph_build_seconds > 0) {
        std::printf(" (+%.4f s graph build)", r.timing.graph_build_seconds);
      }
      std::printf("\n");
      if (!r.ritz_values.empty()) {
        std::printf("extremal Ritz values: %.10g (low)  %.10g (high)\n",
                    r.ritz_values.front(), r.ritz_values.back());
      }
    } else if (solver_name == "lobpcg") {
      solver::LobpcgOptions options;
      options.block_size = block;
      options.threads = threads;
      options.nev = nev;
      const auto r = solver::lobpcg(csr, csb, iterations, version, options);
      status = r.status;
      std::printf("\nLOBPCG (%s), %d iterations, %d/%lld converged, %.3f s\n",
                  solver::to_string(version), r.timing.iterations,
                  r.converged, static_cast<long long>(nev),
                  r.timing.total_seconds);
      for (std::size_t j = 0; j < r.eigenvalues.size(); ++j) {
        std::printf("  lambda_%zu = %+.10g  (residual %.2e)\n", j,
                    r.eigenvalues[j], r.residual_norms[j]);
      }
    } else {
      usage(argv[0]);
    }
    if (status != solver::SolverStatus::kOk) {
      std::fprintf(stderr, "stsolve: solver stopped early (%s)\n",
                   solver::to_string(status));
      return 4;
    }
  } catch (const support::TaskError& e) {
    // A task body failed inside one of the runtimes (exit 4, like solver
    // breakdown: the run produced no trustworthy result).
    std::fprintf(stderr, "stsolve: %s\n", e.what());
    return 4;
  } catch (const support::fault::Injected& e) {
    // An STS_FAULT-injected failure escaped a kernel outside the task
    // runtimes (BSP versions); treat like a task failure, not bad input.
    std::fprintf(stderr, "stsolve: %s\n", e.what());
    return 4;
  } catch (const support::Error& e) {
    // Bad input: unreadable/malformed matrix, invalid options.
    std::fprintf(stderr, "stsolve: %s\n", e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "stsolve: %s\n", e.what());
    return 1;
  }
  obs::flush();
  return 0;
}
