// stsolve: command-line driver for the sparsetask solvers.
//
// Loads a matrix (Matrix Market file or a named synthetic suite matrix),
// optionally auto-tunes the CSB block size via the simulated sweep, and
// runs Lanczos or LOBPCG under any of the five execution versions. The
// request itself (matrix source, solver/version, block directive, timeout)
// is an svc::RunSpec — the same struct the stsd daemon executes — so the
// one-shot CLI and the service cannot drift.
//
// Usage:
//   stsolve [options]
//     --matrix <path.mtx>     Matrix Market input (symmetrized if needed)
//     --suite <name>          synthetic suite matrix (see --list)
//     --scale <f>             suite scale factor (default 0.2)
//     --solver lanczos|lobpcg|cg (default lobpcg)
//     --version libcsr|libcsb|ds|flux|rgt   (default flux; cg: no ds/rgt)
//     --iterations <n>        (default 30; --maxit is an alias for cg)
//     --nev <n>               LOBPCG block width (default 8)
//     --tolerance <t>         LOBPCG/CG residual tolerance (default 1e-6;
//                             --tol is an alias)
//     --precond none|jacobi|ic0  CG preconditioner (default none)
//     --block <rows>          CSB block size; 0 = heuristic (default)
//     --autotune              pick the block size by simulated sweep
//     --threads <n>           worker threads (default: hardware)
//     --timeout <sec>         wall-clock budget; exceeded -> exit 5
//     --ckpt <path>           write iteration checkpoints here (atomic)
//     --ckpt-every <n>        checkpoint period (default STS_CKPT_EVERY/10)
//     --restore <path>        resume from a checkpoint written by --ckpt
//     --trace <f.json>        write a Chrome trace-event file (Perfetto)
//     --metrics <f.csv|stderr> dump the metrics registry at exit
//     --list                  print suite matrix names and exit
//
// Telemetry can also be activated without flags via the STS_TRACE and
// STS_METRICS environment variables (see DESIGN.md, "Observability").
//
// Exit codes: 0 success, 1 unexpected error, 2 usage, 3 bad input
// (unreadable or malformed matrix, invalid options), 4 solver breakdown
// or task failure inside a runtime, 5 timeout (--timeout elapsed before
// the solve finished; partial work is discarded).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "obs/obs.hpp"
#include "solvers/cg.hpp"
#include "solvers/checkpoint.hpp"
#include "solvers/lanczos.hpp"
#include "solvers/lobpcg.hpp"
#include "sparse/stats.hpp"
#include "sparse/suite.hpp"
#include "support/cancel.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"
#include "svc/run_spec.hpp"

namespace {

using namespace sts;

[[noreturn]] void usage(const char* argv0) {
  std::printf("usage: %s [--matrix f.mtx | --suite name] [--solver "
              "lanczos|lobpcg|cg]\n"
              "  [--version libcsr|libcsb|ds|flux|rgt] [--iterations n] "
              "[--nev n]\n"
              "  [--tolerance t] [--precond none|jacobi|ic0] [--tol t] "
              "[--maxit n]\n"
              "  [--block rows | --autotune] [--threads n] "
              "[--scale f]\n"
              "  [--timeout sec] [--ckpt f.ckpt] [--ckpt-every n] "
              "[--restore f.ckpt]\n"
              "  [--list] [--trace f.json] [--metrics f.csv|stderr] "
              "[--prof f.folded]\n",
              argv0);
  std::exit(2);
}

} // namespace

int main(int argc, char** argv) {
  svc::RunSpec spec;
  std::string trace_path;
  std::string metrics_dest;
  std::string prof_path;
  std::string ckpt_path;
  std::string restore_path;
  int ckpt_every = 0;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string inline_value;
    bool has_inline_value = false;
    if (const std::size_t eq = arg.find('=');
        eq != std::string::npos && arg.rfind("--", 0) == 0) {
      inline_value = arg.substr(eq + 1);
      has_inline_value = true;
      arg.resize(eq);
    }
    auto next = [&]() -> std::string {
      if (has_inline_value) return inline_value;
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    try {
      if (spec.consume_arg(arg, next)) continue;
    } catch (const support::Error& e) {
      std::fprintf(stderr, "stsolve: %s\n", e.what());
      return 2;
    }
    if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--ckpt") {
      ckpt_path = next();
    } else if (arg == "--ckpt-every") {
      ckpt_every = std::atoi(next().c_str());
    } else if (arg == "--restore") {
      restore_path = next();
    } else if (arg == "--metrics") {
      metrics_dest = next();
    } else if (arg == "--prof") {
      prof_path = next();
    } else if (arg == "--list") {
      for (const auto& e : sparse::paper_suite()) {
        std::printf("%-20s %s (paper: %lld rows, %lld nnz)\n",
                    e.name.c_str(), sparse::to_string(e.matrix_class),
                    static_cast<long long>(e.paper_rows),
                    static_cast<long long>(e.paper_nnz));
      }
      return 0;
    } else {
      usage(argv[0]);
    }
  }

  // CLI flags layer on top of any STS_TRACE / STS_METRICS environment
  // activation; the explicit flush before the successful return writes the
  // files early, and the atexit hook covers the error paths.
  if (!trace_path.empty()) obs::enable_tracing(trace_path);
  if (!metrics_dest.empty()) obs::enable_metrics(metrics_dest);
  if (!prof_path.empty()) obs::enable_profiling(prof_path);

  try {
    if (spec.matrix_path.empty() && spec.suite_name.empty()) usage(argv[0]);
    spec.validate();

    const sparse::Csr csr = sparse::Csr::from_coo(spec.load());
    const sparse::MatrixStats st = sparse::compute_stats(csr);
    std::printf("matrix: %lld rows, %lld nnz (avg %.1f/row, max %lld)\n",
                static_cast<long long>(st.rows),
                static_cast<long long>(st.nnz), st.avg_row_nnz,
                static_cast<long long>(st.max_row_nnz));

    const svc::RunSpec::BlockChoice choice = spec.resolve_block(csr);
    const la::index_t block = choice.block;
    if (!choice.sweep.empty()) {
      std::printf("autotune: ");
      for (const auto& [blocks, seconds] : choice.sweep) {
        std::printf("[%lld blocks: %.2f ms] ",
                    static_cast<long long>(blocks), seconds * 1e3);
      }
      std::printf("\n-> block size %lld\n", static_cast<long long>(block));
    } else if (choice.heuristic) {
      std::printf("heuristic block size: %lld (%lld blocks)\n",
                  static_cast<long long>(block),
                  static_cast<long long>((csr.rows() + block - 1) / block));
    }

    const sparse::Csb csb = sparse::Csb::from_csr(csr, block);

    // --restore: load + validate before building any runtime, so a bad or
    // mismatched checkpoint is reported as bad input (exit 3), not deep
    // inside a solver. Kind vs --solver is checked again by the driver.
    std::optional<solver::ckpt::Checkpoint> restored;
    if (!restore_path.empty()) {
      restored = solver::ckpt::load(restore_path);
      const solver::ckpt::Kind want =
          spec.solver == svc::SolverKind::kLanczos
              ? solver::ckpt::Kind::kLanczos
              : spec.solver == svc::SolverKind::kCg
                    ? solver::ckpt::Kind::kCg
                    : solver::ckpt::Kind::kLobpcg;
      if (restored->kind != want) {
        throw support::Error(
            std::string("--restore: checkpoint holds ") +
            solver::ckpt::to_string(restored->kind) + " state but --solver is " +
            svc::to_string(spec.solver));
      }
      const std::int64_t at =
          restored->kind == solver::ckpt::Kind::kLanczos
              ? restored->lanczos.iterations
              : restored->kind == solver::ckpt::Kind::kCg
                    ? restored->cg.iterations
                    : restored->lobpcg.iterations;
      std::printf("restored checkpoint: %s at iteration %lld\n",
                  solver::ckpt::to_string(restored->kind),
                  static_cast<long long>(at));
    }

    // Wall-clock guard: the watchdog requests the cancel token after
    // --timeout seconds; every runtime polls it at iteration boundaries
    // and unwinds with support::Cancelled -> exit 5.
    support::CancelToken cancel;
    std::optional<support::Deadline> deadline;
    if (spec.timeout_sec > 0.0) {
      deadline.emplace(cancel,
                       std::chrono::milliseconds(static_cast<std::int64_t>(
                           spec.timeout_sec * 1e3)),
                       "timeout");
    }

    solver::SolverStatus status = solver::SolverStatus::kOk;
    if (spec.solver == svc::SolverKind::kLanczos) {
      solver::SolverOptions options = spec.solver_options(block);
      options.cancel = &cancel;
      options.ckpt_path = ckpt_path;
      options.ckpt_every = ckpt_every;
      if (restored) options.restore = &*restored;
      const auto r =
          solver::lanczos(csr, csb, spec.iterations, spec.version, options);
      status = r.status;
      std::printf("\nLanczos (%s), %d iterations, %.3f s",
                  solver::to_string(spec.version), r.timing.iterations,
                  r.timing.total_seconds);
      if (r.timing.graph_build_seconds > 0) {
        std::printf(" (+%.4f s graph build)", r.timing.graph_build_seconds);
      }
      std::printf("\n");
      if (!r.ritz_values.empty()) {
        std::printf("extremal Ritz values: %.10g (low)  %.10g (high)\n",
                    r.ritz_values.front(), r.ritz_values.back());
      }
    } else if (spec.solver == svc::SolverKind::kCg) {
      solver::SolverOptions options = spec.solver_options(block);
      options.cancel = &cancel;
      options.ckpt_path = ckpt_path;
      options.ckpt_every = ckpt_every;
      if (restored) options.restore = &*restored;
      const auto r = solver::cg(csr, csb, spec.version, spec.cg_options(),
                                options);
      status = r.status;
      std::printf("\nCG (%s, precond=%s), %d iterations, %s, %.3f s\n",
                  solver::to_string(spec.version),
                  solver::to_string(spec.precond), r.iterations,
                  r.converged ? "converged" : "NOT converged",
                  r.timing.total_seconds);
      std::printf("  relative residual %.3e (tol %.1e)\n",
                  r.relative_residual, spec.cg_options().tol);
      if (r.precond_shift != 0.0) {
        std::printf("  ic0 diagonal shift %.3e\n", r.precond_shift);
      }
      if (r.level_span != 0) {
        std::printf("  sptrsv DAG: %lld levels over %lld block rows\n",
                    static_cast<long long>(r.level_span),
                    static_cast<long long>((csr.rows() + block - 1) / block));
      }
    } else {
      solver::LobpcgOptions options = spec.lobpcg_options(block);
      options.cancel = &cancel;
      options.ckpt_path = ckpt_path;
      options.ckpt_every = ckpt_every;
      if (restored) options.restore = &*restored;
      const auto r =
          solver::lobpcg(csr, csb, spec.iterations, spec.version, options);
      status = r.status;
      std::printf("\nLOBPCG (%s), %d iterations, %d/%lld converged, %.3f s\n",
                  solver::to_string(spec.version), r.timing.iterations,
                  r.converged, static_cast<long long>(spec.nev),
                  r.timing.total_seconds);
      for (std::size_t j = 0; j < r.eigenvalues.size(); ++j) {
        std::printf("  lambda_%zu = %+.10g  (residual %.2e)\n", j,
                    r.eigenvalues[j], r.residual_norms[j]);
      }
    }
    if (status != solver::SolverStatus::kOk) {
      std::fprintf(stderr, "stsolve: solver stopped early (%s)\n",
                   solver::to_string(status));
      return 4;
    }
  } catch (const support::Cancelled& e) {
    // The --timeout watchdog fired before the solve finished.
    std::fprintf(stderr, "stsolve: cancelled (%s)\n", e.reason().c_str());
    return 5;
  } catch (const support::TaskError& e) {
    // A task body failed inside one of the runtimes (exit 4, like solver
    // breakdown: the run produced no trustworthy result).
    std::fprintf(stderr, "stsolve: %s\n", e.what());
    return 4;
  } catch (const support::fault::Injected& e) {
    // An STS_FAULT-injected failure escaped a kernel outside the task
    // runtimes (BSP versions); treat like a task failure, not bad input.
    std::fprintf(stderr, "stsolve: %s\n", e.what());
    return 4;
  } catch (const support::Error& e) {
    // Bad input: unreadable/malformed matrix, invalid options.
    std::fprintf(stderr, "stsolve: %s\n", e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "stsolve: %s\n", e.what());
    return 1;
  }
  obs::flush();
  return 0;
}
