#!/usr/bin/env bash
# Local CI gate: the tier-1 verify (full build + complete ctest suite), a
# chaos stage (kill/restart recovery e2e plus a deeper journal-replay
# corruption fuzz), and an AddressSanitizer build that re-runs the
# concurrency-heavy labels (svc, faults, chaos) where lifetime bugs would
# hide.
#
#   tools/ci.sh [build-dir] [asan-build-dir]
#
# Exits non-zero on the first failing step.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build="${1:-$repo/build}"
asan_build="${2:-$repo/build-asan}"
jobs="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: configure + build + full ctest =="
cmake -B "$build" -S "$repo"
cmake --build "$build" -j "$jobs"
ctest --test-dir "$build" --output-on-failure -j "$jobs"

echo "== chaos: crash/recovery e2e + journal-replay fuzz =="
ctest --test-dir "$build" --output-on-failure -j "$jobs" -L chaos
STS_JOURNAL_FUZZ_ITERS=200 "$build/tests/resilience_test" \
  --gtest_filter='Journal.FuzzedCorruptionNeverCrashesReplay'

echo "== asan: build + svc/faults/chaos labels =="
cmake -B "$asan_build" -S "$repo" -DSTS_SANITIZE=address -DSTS_BUILD_BENCH=OFF
cmake --build "$asan_build" -j "$jobs"
ctest --test-dir "$asan_build" --output-on-failure -j "$jobs" \
  -L "svc|faults|chaos"

echo "== ci.sh: all green =="
