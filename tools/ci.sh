#!/usr/bin/env bash
# Local CI gate, split into named stages so the GitHub workflow can run
# them as separate matrix jobs while a bare `tools/ci.sh` still runs the
# whole gauntlet in order:
#
#   tier1        configure + full build + complete ctest suite (JUnit out)
#   chaos        kill/restart recovery e2e + journal-replay corruption fuzz
#   numa         topology fixtures, pinned re-runs, steal-tier bench
#   dispatch     scheduler/partition/quota tests + fifo-vs-fair bench
#   asan         AddressSanitizer build + concurrency-heavy labels (+cg)
#   tsan         ThreadSanitizer pass over obs + dispatcher structures
#   bench        microbench exports (BENCH_kernels/obs/cg.json)
#   format       git clang-format --diff over the changed files
#   bench-check  compare BENCH_*.json medians against bench/baselines/
#
#   tools/ci.sh [--stage=<name>] [build-dir] [asan-build-dir] [tsan-build-dir]
#
# Without --stage, every stage above runs in order (bench-check last, since
# it needs the bench + dispatch exports). Exits non-zero on the first
# failing step.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
stage="all"
args=()
for a in "$@"; do
  case "$a" in
    --stage=*) stage="${a#--stage=}" ;;
    --stage) echo "ci.sh: --stage requires =<name>" >&2; exit 2 ;;
    *) args+=("$a") ;;
  esac
done
build="${args[0]:-$repo/build}"
asan_build="${args[1]:-$repo/build-asan}"
tsan_build="${args[2]:-$repo/build-tsan}"
jobs="$(nproc 2>/dev/null || echo 4)"

stage_tier1() {
  echo "== tier-1: configure + build + full ctest =="
  cmake -B "$build" -S "$repo"
  cmake --build "$build" -j "$jobs"
  ctest --test-dir "$build" --output-on-failure -j "$jobs" \
    --output-junit "$build/ctest-junit.xml"
}

stage_chaos() {
  echo "== chaos: crash/recovery e2e + journal-replay fuzz =="
  ctest --test-dir "$build" --output-on-failure -j "$jobs" -L chaos
  STS_JOURNAL_FUZZ_ITERS=200 "$build/tests/resilience_test" \
    --gtest_filter='Journal.FuzzedCorruptionNeverCrashesReplay'
}

stage_numa() {
  echo "== numa: topology tests + pinned runtimes + steal-tier bench =="
  # The numa label covers the sysfs-fixture topology parser and the
  # placement/stealing unit tests; re-running the flux and solvers labels
  # under STS_AFFINITY=compact exercises the pinned code path end to end
  # (workers bound to real CPUs, or counted pin failures on constrained
  # hosts — never fatal). The fig5 native bench exports per-tier steal
  # counts; pinned+owned must show fewer cross-domain steals than the
  # unpinned baseline.
  ctest --test-dir "$build" --output-on-failure -j "$jobs" -L numa
  STS_AFFINITY=compact ctest --test-dir "$build" --output-on-failure \
    -j "$jobs" -L "flux|solvers"
  cmake --build "$build" -j "$jobs" --target bench_fig5_first_touch
  (cd "$build" && STS_AFFINITY=compact ./bench/bench_fig5_first_touch \
    --benchmark_min_time=0.05 --benchmark_filter=BM_CsbSpmv)
  echo "wrote $build/BENCH_numa.json"
}

stage_dispatch() {
  echo "== dispatch: scheduler/partition tests + latency bench =="
  # The dispatch label covers the FairQueue DRR accounting, the partition
  # arithmetic against sysfs fixtures, and the Service-level
  # slot/quota/grant tests; the svc label re-runs alongside it because the
  # dispatcher rewired the daemon's execution path. The bench exports
  # makespan + p99 interactive latency for fifo/1-slot vs fair/4-slots
  # over a mixed 32-job workload.
  ctest --test-dir "$build" --output-on-failure -j "$jobs" -L "dispatch|svc"
  cmake --build "$build" -j "$jobs" --target bench_dispatch
  (cd "$build" && ./bench/bench_dispatch --benchmark_min_time=0.01)
  echo "wrote $build/BENCH_dispatch.json"
}

stage_asan() {
  echo "== asan: build + svc/dispatch/faults/chaos/cg labels =="
  # cg joins the concurrency-heavy set: the SpTRSV DAG executor and the
  # flux CG driver juggle per-block futures whose lifetime bugs only ASan
  # would catch, and the cg label carries the randomized property tests
  # (IC(0) pattern identity, SpTRSV-vs-dense, CG convergence).
  cmake -B "$asan_build" -S "$repo" -DSTS_SANITIZE=address \
    -DSTS_BUILD_BENCH=OFF
  cmake --build "$asan_build" -j "$jobs"
  ctest --test-dir "$asan_build" --output-on-failure -j "$jobs" \
    -L "svc|dispatch|faults|chaos|cg"
}

stage_tsan() {
  echo "== tsan: build + metric/trace/profiler race checks =="
  # Scoped to the obs primitives: the hot/cold histogram snapshot, the job
  # trace ring, and the sampling profiler are the hand-rolled atomics where
  # TSan has teeth. The OpenMP runtimes are excluded — libgomp is not
  # TSan-instrumented and drowns real reports in false positives.
  cmake -B "$tsan_build" -S "$repo" -DSTS_SANITIZE=thread \
    -DSTS_BUILD_BENCH=OFF
  cmake --build "$tsan_build" -j "$jobs" --target obs_test
  "$tsan_build/tests/obs_test" \
    --gtest_filter='Registry.*:Histogram.*:Prometheus.*:Profiler.*:JobTrace.*'
  # Dispatcher structures under TSan: the FairQueue and partition
  # arithmetic (plus policy parsing). The Service-level dispatch tests run
  # solves whose plan/solver paths enter OpenMP regions, and libgomp is not
  # TSan-instrumented — those race checks live in the ASan stage instead.
  cmake --build "$tsan_build" -j "$jobs" --target dispatch_test
  "$tsan_build/tests/dispatch_test" \
    --gtest_filter='FairQueueTest.*:DispatchPolicy.*:PartitionCpus.*:Carve.*'
}

stage_bench() {
  echo "== bench: kernel/observability/cg exports -> BENCH_*.json =="
  cmake --build "$build" -j "$jobs" \
    --target bench_kernels bench_obs bench_cg
  (cd "$build" && ./bench/bench_kernels --benchmark_min_time=0.05)
  (cd "$build" && ./bench/bench_obs --benchmark_min_time=0.05)
  (cd "$build" && ./bench/bench_cg --benchmark_min_time=0.05)
  echo "wrote $build/BENCH_kernels.json $build/BENCH_obs.json" \
       "$build/BENCH_cg.json"
}

stage_format() {
  echo "== format: git clang-format over changed files =="
  if ! command -v clang-format >/dev/null 2>&1 ||
     ! git -C "$repo" clang-format -h >/dev/null 2>&1; then
    echo "format: clang-format / git-clang-format not installed; skipping"
    return 0
  fi
  # Diff against the merge base with the default branch when one exists,
  # else against HEAD~1 (post-commit use). --diff prints the reformatting
  # a commit would need; any non-clean output is a failure.
  local base
  base="$(git -C "$repo" merge-base origin/main HEAD 2>/dev/null ||
          git -C "$repo" rev-parse HEAD~1 2>/dev/null ||
          git -C "$repo" rev-parse HEAD)"
  local out
  out="$(git -C "$repo" clang-format --diff "$base" 2>&1 || true)"
  case "$out" in
    ""|*"no modified files to format"*|*"did not modify any files"*)
      echo "format: clean" ;;
    *)
      printf '%s\n' "$out"
      echo "format: run 'git clang-format $base' and commit the result" >&2
      return 1 ;;
  esac
}

stage_bench_check() {
  echo "== bench-check: compare exports against bench/baselines =="
  # Requires the bench + dispatch stages to have produced the exports.
  python3 "$repo/tools/bench_check.py" --build-dir "$build" \
    --baseline-dir "$repo/bench/baselines"
}

case "$stage" in
  tier1) stage_tier1 ;;
  chaos) stage_chaos ;;
  numa) stage_numa ;;
  dispatch) stage_dispatch ;;
  asan) stage_asan ;;
  tsan) stage_tsan ;;
  bench) stage_bench ;;
  format) stage_format ;;
  bench-check) stage_bench_check ;;
  all)
    stage_tier1
    stage_chaos
    stage_numa
    stage_dispatch
    stage_asan
    stage_tsan
    stage_bench
    stage_format
    stage_bench_check
    ;;
  *)
    echo "ci.sh: unknown stage '$stage' (tier1|chaos|numa|dispatch|asan|" \
         "tsan|bench|format|bench-check)" >&2
    exit 2
    ;;
esac

echo "== ci.sh: stage '$stage' green =="
