#!/usr/bin/env bash
# Local CI gate: the tier-1 verify (full build + complete ctest suite), a
# chaos stage (kill/restart recovery e2e plus a deeper journal-replay
# corruption fuzz), a NUMA stage (topology fixtures, pinned re-runs of the
# flux/solvers labels, and the steal-tier bench -> BENCH_numa.json), a
# dispatch stage (scheduler/partition/quota tests plus the fifo-vs-fair
# latency bench -> BENCH_dispatch.json), an AddressSanitizer build that
# re-runs the concurrency-heavy labels (svc, dispatch, faults, chaos) where
# lifetime bugs would hide, a ThreadSanitizer pass over the lock-free
# telemetry plumbing and the dispatcher's queue structures, and the
# observability micro-benchmarks (BENCH_obs.json).
#
#   tools/ci.sh [build-dir] [asan-build-dir] [tsan-build-dir]
#
# Exits non-zero on the first failing step.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build="${1:-$repo/build}"
asan_build="${2:-$repo/build-asan}"
tsan_build="${3:-$repo/build-tsan}"
jobs="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: configure + build + full ctest =="
cmake -B "$build" -S "$repo"
cmake --build "$build" -j "$jobs"
ctest --test-dir "$build" --output-on-failure -j "$jobs"

echo "== chaos: crash/recovery e2e + journal-replay fuzz =="
ctest --test-dir "$build" --output-on-failure -j "$jobs" -L chaos
STS_JOURNAL_FUZZ_ITERS=200 "$build/tests/resilience_test" \
  --gtest_filter='Journal.FuzzedCorruptionNeverCrashesReplay'

echo "== numa: topology tests + pinned runtimes + steal-tier bench =="
# The numa label covers the sysfs-fixture topology parser and the
# placement/stealing unit tests; re-running the flux and solvers labels
# under STS_AFFINITY=compact exercises the pinned code path end to end
# (workers bound to real CPUs, or counted pin failures on constrained
# hosts — never fatal). The fig5 native bench exports per-tier steal
# counts; pinned+owned must show fewer cross-domain steals than the
# unpinned baseline.
ctest --test-dir "$build" --output-on-failure -j "$jobs" -L numa
STS_AFFINITY=compact ctest --test-dir "$build" --output-on-failure \
  -j "$jobs" -L "flux|solvers"
cmake --build "$build" -j "$jobs" --target bench_fig5_first_touch
(cd "$build" && STS_AFFINITY=compact ./bench/bench_fig5_first_touch \
  --benchmark_min_time=0.05 --benchmark_filter=BM_CsbSpmv)
echo "wrote $build/BENCH_numa.json"

echo "== dispatch: scheduler/partition tests + latency bench =="
# The dispatch label covers the FairQueue DRR accounting, the partition
# arithmetic against sysfs fixtures, and the Service-level slot/quota/grant
# tests; the svc label re-runs alongside it because the dispatcher rewired
# the daemon's execution path. The bench exports makespan + p99 interactive
# latency for fifo/1-slot vs fair/4-slots over a mixed 32-job workload.
ctest --test-dir "$build" --output-on-failure -j "$jobs" -L "dispatch|svc"
cmake --build "$build" -j "$jobs" --target bench_dispatch
(cd "$build" && ./bench/bench_dispatch --benchmark_min_time=0.01)
echo "wrote $build/BENCH_dispatch.json"

echo "== asan: build + svc/dispatch/faults/chaos labels =="
cmake -B "$asan_build" -S "$repo" -DSTS_SANITIZE=address -DSTS_BUILD_BENCH=OFF
cmake --build "$asan_build" -j "$jobs"
ctest --test-dir "$asan_build" --output-on-failure -j "$jobs" \
  -L "svc|dispatch|faults|chaos"

echo "== tsan: build + metric/trace/profiler race checks =="
# Scoped to the obs primitives: the hot/cold histogram snapshot, the job
# trace ring, and the sampling profiler are the hand-rolled atomics where
# TSan has teeth. The OpenMP runtimes are excluded — libgomp is not
# TSan-instrumented and drowns real reports in false positives.
cmake -B "$tsan_build" -S "$repo" -DSTS_SANITIZE=thread -DSTS_BUILD_BENCH=OFF
cmake --build "$tsan_build" -j "$jobs" --target obs_test
"$tsan_build/tests/obs_test" \
  --gtest_filter='Registry.*:Histogram.*:Prometheus.*:Profiler.*:JobTrace.*'
# Dispatcher structures under TSan: the FairQueue and partition arithmetic
# (plus policy parsing). The Service-level dispatch tests run solves whose
# plan/solver paths enter OpenMP regions, and libgomp is not
# TSan-instrumented — those race checks live in the ASan stage instead.
cmake --build "$tsan_build" -j "$jobs" --target dispatch_test
"$tsan_build/tests/dispatch_test" \
  --gtest_filter='FairQueueTest.*:DispatchPolicy.*:PartitionCpus.*:Carve.*'

echo "== bench: observability hot-path costs -> BENCH_obs.json =="
cmake --build "$build" -j "$jobs" --target bench_obs
(cd "$build" && ./bench/bench_obs --benchmark_min_time=0.05)
echo "wrote $build/BENCH_obs.json"

echo "== ci.sh: all green =="
