// stsctl: command-line client for the stsd daemon.
//
// Usage:
//   stsctl [--socket <path>] [--retries <n>] [--retry-base-ms <ms>]
//          <command> [args]
//     ping                       liveness check
//     submit [run-spec flags]    enqueue a solve, print its job id
//       (same flags as stsolve: --matrix/--suite/--scale/--solver/
//        --version/--iterations/--nev/--tolerance/--precond/--tol/--maxit/
//        --block/--autotune/
//        --threads/--timeout; scheduling + quotas: --priority
//        interactive|batch, --weight n, --max-workers n, --max-mem-bytes n,
//        --deadline-ms n (DESIGN.md §15); add --wait to block until
//        terminal)
//     status <id>                one-line job snapshot
//     result <id> [--timeout-ms n]  wait for terminal state, print JSON
//     cancel <id> [reason]       request cancellation
//     stats                      queue/cache/latency counters as JSON
//     queue                      dispatcher snapshot: slot partition table,
//                                running + pending jobs with class/weight
//     metrics [--prom|--csv]     scrape the live metric registry
//     trace <id> [-o f.json]     fetch one job's Chrome trace (DESIGN.md §13)
//     shutdown                   ask the daemon to drain and exit
//
// --retries > 1 arms the client's bounded reconnect with decorrelated
// jitter (DESIGN.md §12); pair submit with --key so a retried submit that
// raced a daemon crash is deduplicated instead of run twice.
//
// Exit codes: 0 success, 1 unexpected/connection error, 2 usage,
// 3 submission rejected (queue_full/draining backpressure), 4 the awaited
// job finished FAILED or CANCELLED.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "support/error.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"

namespace {

using namespace sts;

[[noreturn]] void usage(const char* argv0) {
  std::printf("usage: %s [--socket path] [--retries n] [--retry-base-ms ms] "
              "ping|submit|status|result|cancel|stats|queue|metrics|trace|"
              "shutdown ...\n"
              "  submit [--matrix f.mtx | --suite name] [--solver "
              "lanczos|lobpcg|cg]\n"
              "    [--version libcsr|libcsb|ds|flux|rgt] [--iterations n] "
              "[--nev n]\n"
              "    [--tolerance t] [--precond none|jacobi|ic0] [--tol t] "
              "[--maxit n]\n"
              "    [--block rows | --autotune] [--threads n]\n"
              "    [--scale f] [--timeout sec] [--key k] [--trace-id t] "
              "[--wait]\n"
              "    [--priority interactive|batch] [--weight n] "
              "[--max-workers n]\n"
              "    [--max-mem-bytes n] [--deadline-ms n]\n"
              "  status <id> | result <id> [--timeout-ms n] | cancel <id> "
              "[reason]\n"
              "  metrics [--prom|--csv] | trace <id> [-o f.json]\n",
              argv0);
  std::exit(2);
}

void print_job(const svc::wire::Json& job) {
  std::printf("%s\n", job.dump().c_str());
}

/// 0 when DONE, 4 otherwise — so scripts can gate on job outcome.
int job_exit_code(const svc::wire::Json& job) {
  return job.string_or("state", "") == "DONE" ? 0 : 4;
}

} // namespace

int main(int argc, char** argv) {
  // A daemon restarting mid-conversation closes our socket; without this
  // the resend inside Client::request would die on SIGPIPE instead of
  // surfacing EPIPE to the retry loop.
  std::signal(SIGPIPE, SIG_IGN);

  std::string socket_path = svc::Server::default_socket_path();
  svc::RetryPolicy retry;
  std::vector<std::string> args(argv + 1, argv + argc);

  std::size_t pos = 0;
  while (pos + 1 < args.size()) {
    if (args[pos] == "--socket") {
      socket_path = args[pos + 1];
    } else if (args[pos] == "--retries") {
      retry.attempts = std::atoi(args[pos + 1].c_str());
      if (retry.attempts < 1) usage(argv[0]);
    } else if (args[pos] == "--retry-base-ms") {
      retry.base_ms = std::atoi(args[pos + 1].c_str());
      if (retry.base_ms < 1) usage(argv[0]);
    } else {
      break;
    }
    pos += 2;
  }
  if (pos >= args.size()) usage(argv[0]);
  const std::string command = args[pos++];

  try {
    svc::Client client(socket_path, retry);

    if (command == "ping") {
      if (!client.ping()) {
        std::fprintf(stderr, "stsctl: daemon did not answer pong\n");
        return 1;
      }
      std::printf("pong\n");
      return 0;
    }

    if (command == "submit") {
      svc::RunSpec spec;
      bool wait = false;
      for (; pos < args.size(); ++pos) {
        const std::string& arg = args[pos];
        auto next = [&]() -> std::string {
          if (pos + 1 >= args.size()) usage(argv[0]);
          return args[++pos];
        };
        if (spec.consume_arg(arg, next)) continue;
        if (arg == "--wait") {
          wait = true;
        } else {
          usage(argv[0]);
        }
      }
      spec.validate();
      const svc::SubmitOutcome out = client.submit(spec);
      if (!out.accepted) {
        if (out.queue_capacity > 0) {
          std::fprintf(stderr, "stsctl: rejected (%s, depth %zu/%zu)\n",
                       out.error.c_str(), out.queue_depth,
                       out.queue_capacity);
        } else {
          std::fprintf(stderr, "stsctl: rejected (%s)\n", out.error.c_str());
        }
        return 3;
      }
      if (!wait) {
        std::printf("%llu\n", static_cast<unsigned long long>(out.id));
        return 0;
      }
      const svc::wire::Json job = client.result(out.id);
      print_job(job);
      return job_exit_code(job);
    }

    if (command == "status" || command == "result" || command == "cancel") {
      if (pos >= args.size()) usage(argv[0]);
      const std::uint64_t id = std::strtoull(args[pos++].c_str(), nullptr, 10);
      if (command == "status") {
        print_job(client.status(id));
        return 0;
      }
      if (command == "result") {
        std::int64_t timeout_ms = 24LL * 3600 * 1000;
        if (pos + 1 < args.size() && args[pos] == "--timeout-ms") {
          timeout_ms = std::strtoll(args[pos + 1].c_str(), nullptr, 10);
          pos += 2;
        }
        const svc::wire::Json job = client.result(id, timeout_ms);
        print_job(job);
        return job_exit_code(job);
      }
      const std::string reason =
          pos < args.size() ? args[pos] : std::string("cancelled");
      std::printf("%s\n", client.cancel(id, reason) ? "cancelled"
                                                    : "already terminal");
      return 0;
    }

    if (command == "stats") {
      std::printf("%s\n", client.stats().dump().c_str());
      return 0;
    }

    if (command == "queue") {
      std::printf("%s\n", client.queue().dump().c_str());
      return 0;
    }

    if (command == "metrics") {
      std::string format = "prom";
      for (; pos < args.size(); ++pos) {
        if (args[pos] == "--prom") {
          format = "prom";
        } else if (args[pos] == "--csv") {
          format = "csv";
        } else {
          usage(argv[0]);
        }
      }
      std::fputs(client.metrics(format).c_str(), stdout);
      return 0;
    }

    if (command == "trace") {
      if (pos >= args.size()) usage(argv[0]);
      const std::uint64_t id = std::strtoull(args[pos++].c_str(), nullptr, 10);
      std::string out_path;
      if (pos < args.size() && args[pos] == "-o") {
        if (pos + 1 >= args.size()) usage(argv[0]);
        out_path = args[pos + 1];
        pos += 2;
      }
      if (pos < args.size()) usage(argv[0]);
      const std::string trace = client.trace_json(id);
      if (out_path.empty()) {
        std::fputs(trace.c_str(), stdout);
        std::fputc('\n', stdout);
      } else {
        std::FILE* f = std::fopen(out_path.c_str(), "w");
        if (f == nullptr) {
          std::fprintf(stderr, "stsctl: cannot write %s\n", out_path.c_str());
          return 1;
        }
        std::fputs(trace.c_str(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("wrote %s (%zu bytes)\n", out_path.c_str(), trace.size());
      }
      return 0;
    }

    if (command == "shutdown") {
      client.shutdown();
      std::printf("shutdown requested\n");
      return 0;
    }

    usage(argv[0]);
  } catch (const support::Error& e) {
    std::fprintf(stderr, "stsctl: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "stsctl: %s\n", e.what());
    return 1;
  }
}
