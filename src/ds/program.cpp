#include "ds/program.hpp"

#include <algorithm>

namespace sts::ds {

namespace {
using graph::Access;
using graph::KernelKind;
using graph::Task;
} // namespace

Program::Program(const sparse::Csb* a, Config config)
    : a_(a), config_(config),
      np_((a->rows() + a->block_size() - 1) / a->block_size()) {
  STS_EXPECTS(a != nullptr && a->rows() == a->cols());
  const std::uint64_t matrix_bytes =
      static_cast<std::uint64_t>(a->nnz()) * a->entry_bytes();
  a_id_ = builder_.register_data("A", 1, matrix_bytes);
  records_.push_back(
      {DataRecord::Kind::kMatrix, nullptr, nullptr, matrix_bytes});
}

const Program::DataRecord& Program::record(DataId id) const {
  STS_EXPECTS(id >= 0 && static_cast<std::size_t>(id) < records_.size());
  return records_[static_cast<std::size_t>(id)];
}

DataId Program::vec(std::string name, la::DenseMatrix* storage) {
  STS_EXPECTS(storage != nullptr && storage->rows() == a_->rows());
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(storage->size()) * sizeof(double);
  const DataId id = builder_.register_data(std::move(name),
                                           static_cast<std::int32_t>(np_),
                                           bytes);
  records_.push_back({DataRecord::Kind::kVec, storage, nullptr, bytes});
  return id;
}

DataId Program::small(std::string name, la::DenseMatrix* storage) {
  STS_EXPECTS(storage != nullptr);
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(storage->size()) * sizeof(double);
  const DataId id = builder_.register_data(std::move(name), 1, bytes);
  records_.push_back({DataRecord::Kind::kSmall, storage, nullptr, bytes});
  return id;
}

DataId Program::scalar(std::string name, double* value) {
  STS_EXPECTS(value != nullptr);
  const DataId id = builder_.register_data(std::move(name), 1, sizeof(double));
  records_.push_back({DataRecord::Kind::kScalar, nullptr, value,
                      sizeof(double)});
  return id;
}

DataId Program::alloc_internal(std::string name, index_t rows, index_t cols,
                               std::int32_t pieces) {
  internal_.push_back(std::make_unique<la::DenseMatrix>(rows, cols));
  la::DenseMatrix* storage = internal_.back().get();
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(storage->size()) * sizeof(double);
  const DataId id = builder_.register_data(std::move(name), pieces, bytes);
  records_.push_back({DataRecord::Kind::kInternal, storage, nullptr, bytes});
  return id;
}

index_t Program::piece_rows(index_t p) const {
  const index_t b = a_->block_size();
  return std::min(b, a_->rows() - p * b);
}

la::MatrixView Program::piece_view(DataId id, index_t p) {
  const DataRecord& rec = record(id);
  STS_EXPECTS(rec.matrix != nullptr);
  return rec.matrix->row_block(p * a_->block_size(), piece_rows(p));
}

Access Program::vec_access(DataId id, index_t p, Access::Mode mode) const {
  const DataRecord& rec = record(id);
  const std::uint64_t row_bytes =
      static_cast<std::uint64_t>(rec.matrix->cols()) * sizeof(double);
  return {static_cast<std::uint32_t>(id),
          static_cast<std::uint64_t>(p * a_->block_size()) * row_bytes,
          static_cast<std::uint64_t>(piece_rows(p)) * row_bytes, mode};
}

Access Program::small_access(DataId id, Access::Mode mode) const {
  return {static_cast<std::uint32_t>(id), 0, record(id).bytes, mode};
}

namespace {

/// Distinct 64-byte lines of an n-column row-major *input* vector block
/// gathered by a CSB block's column indices. Sparse CSB blocks gather only
/// a few lines of their piece; charging the whole piece would overstate
/// memory traffic by the piece/nnz ratio.
std::uint64_t touched_input_lines(const sparse::Csb::BlockView& v,
                                  index_t ncols) {
  const std::uint64_t row_bytes =
      static_cast<std::uint64_t>(ncols) * sizeof(double);
  // Column indices are not globally sorted across row segments, so
  // collect-and-dedup via a small scratch vector.
  std::vector<std::uint64_t> lines;
  lines.reserve(static_cast<std::size_t>(v.nnz));
  std::uint64_t last = ~0ULL;
  for (std::int64_t t = v.first; t < v.first + v.nnz; ++t) {
    const std::uint64_t line =
        static_cast<std::uint64_t>(v.col(t)) * row_bytes / 64;
    if (line != last) {
      lines.push_back(line);
      last = line;
    }
  }
  std::sort(lines.begin(), lines.end());
  std::uint64_t count = 0;
  last = ~0ULL;
  for (std::uint64_t l : lines) {
    if (l != last) {
      ++count;
      last = l;
    }
  }
  return count;
}

/// Distinct 64-byte lines of the *output* vector block written by a CSB
/// block. Row segments are sorted by row, so a single pass suffices.
std::uint64_t touched_output_lines(const sparse::Csb::BlockView& v,
                                   index_t ncols) {
  const std::uint64_t row_bytes =
      static_cast<std::uint64_t>(ncols) * sizeof(double);
  std::uint64_t count = 0;
  std::uint64_t last = ~0ULL;
  for (const sparse::Csb::RowSegment& seg : v.segments) {
    const std::uint64_t line =
        static_cast<std::uint64_t>(seg.row) * row_bytes / 64;
    if (line != last) {
      ++count;
      last = line;
    }
  }
  return count;
}

/// Stride that makes a piece-range access touch ~`touched` of its lines.
std::uint32_t stride_for(std::uint64_t piece_bytes, std::uint64_t touched) {
  const std::uint64_t lines = std::max<std::uint64_t>(1, piece_bytes / 64);
  if (touched == 0) return static_cast<std::uint32_t>(lines);
  return static_cast<std::uint32_t>(
      std::max<std::uint64_t>(1, lines / touched));
}

} // namespace

void Program::spmm(DataId x, DataId y) {
  if (config_.dependency_based_spmm) {
    spmm_dependency_based(x, y);
  } else {
    spmm_reduction_based(x, y);
  }
  ++phase_;
}

void Program::spmm_dependency_based(DataId x, DataId y) {
  const sparse::Csb& a = *a_;
  la::DenseMatrix* xm = record(x).matrix;
  la::DenseMatrix* ym = record(y).matrix;
  STS_EXPECTS(xm != nullptr && ym != nullptr && xm->cols() == ym->cols());
  const index_t n = xm->cols();
  const KernelKind kind = n == 1 ? KernelKind::kSpMV : KernelKind::kSpMM;

  for (index_t bi = 0; bi < np_; ++bi) {
    Task zero;
    zero.kind = KernelKind::kZero;
    zero.bi = static_cast<std::int32_t>(bi);
    zero.phase = phase_;
    zero.accesses = {vec_access(y, bi, Access::Mode::kWrite)};
    zero.body = [ym, &a, bi] {
      sparse::csb_block_zero(a, bi, ym->view());
    };
    const DataPiece w{y, static_cast<std::int32_t>(bi)};
    builder_.add_task(std::move(zero), {}, {&w, 1});
  }
  const auto blkptr = a.blkptr();
  for (index_t bi = 0; bi < np_; ++bi) {
    for (index_t bj = 0; bj < np_; ++bj) {
      const index_t bnnz = a.block_nnz(bi, bj);
      if (bnnz == 0 && config_.skip_empty_blocks) continue;
      Task t;
      t.kind = kind;
      t.bi = static_cast<std::int32_t>(bi);
      t.bj = static_cast<std::int32_t>(bj);
      t.phase = phase_;
      t.flops = 2.0 * static_cast<double>(bnnz) * static_cast<double>(n);
      const sparse::Csb::BlockView bv = a.block_view(bi, bj);
      Access xa = vec_access(x, bj, Access::Mode::kRead);
      xa.stride_lines = stride_for(xa.bytes, touched_input_lines(bv, n));
      Access ya = vec_access(y, bi, Access::Mode::kReadWrite);
      ya.stride_lines = stride_for(ya.bytes, touched_output_lines(bv, n));
      t.accesses = {
          {static_cast<std::uint32_t>(a_id_),
           static_cast<std::uint64_t>(blkptr[static_cast<std::size_t>(
               bi * np_ + bj)]) *
               a.entry_bytes(),
           static_cast<std::uint64_t>(bnnz) * a.entry_bytes(),
           Access::Mode::kRead},
          xa, ya};
      t.body = [xm, ym, &a, bi, bj] {
        sparse::csb_block_spmm(a, bi, bj, xm->view(), ym->view());
      };
      const DataPiece reads[2] = {{a_id_, -1},
                                  {x, static_cast<std::int32_t>(bj)}};
      const DataPiece writes[1] = {{y, static_cast<std::int32_t>(bi)}};
      builder_.add_task(std::move(t), reads, writes);
    }
  }
}

void Program::spmm_reduction_based(DataId x, DataId y) {
  const sparse::Csb& a = *a_;
  la::DenseMatrix* xm = record(x).matrix;
  la::DenseMatrix* ym = record(y).matrix;
  const index_t n = xm->cols();
  const KernelKind kind = n == 1 ? KernelKind::kSpMV : KernelKind::kSpMM;
  const std::int32_t nbuf = std::max(1, config_.spmm_buffers);

  // One full-size partial output vector per buffer (the memory cost the
  // paper's Fig. 7 highlights).
  std::vector<DataId> bufs;
  std::vector<la::DenseMatrix*> buf_ptrs;
  for (std::int32_t r = 0; r < nbuf; ++r) {
    const DataId b = alloc_internal(
        "spmm_buf" + std::to_string(phase_) + "_" + std::to_string(r),
        a.rows(), n, static_cast<std::int32_t>(np_));
    bufs.push_back(b);
    buf_ptrs.push_back(records_.back().matrix);
  }
  for (std::int32_t r = 0; r < nbuf; ++r) {
    for (index_t bi = 0; bi < np_; ++bi) {
      Task zero;
      zero.kind = KernelKind::kZero;
      zero.bi = static_cast<std::int32_t>(bi);
      zero.phase = phase_;
      zero.accesses = {vec_access(bufs[static_cast<std::size_t>(r)], bi,
                                  Access::Mode::kWrite)};
      la::DenseMatrix* bm = buf_ptrs[static_cast<std::size_t>(r)];
      zero.body = [bm, &a, bi] { sparse::csb_block_zero(a, bi, bm->view()); };
      const DataPiece w{bufs[static_cast<std::size_t>(r)],
                        static_cast<std::int32_t>(bi)};
      builder_.add_task(std::move(zero), {}, {&w, 1});
    }
  }
  const auto blkptr = a.blkptr();
  std::int64_t counter = 0;
  for (index_t bi = 0; bi < np_; ++bi) {
    for (index_t bj = 0; bj < np_; ++bj) {
      const index_t bnnz = a.block_nnz(bi, bj);
      if (bnnz == 0 && config_.skip_empty_blocks) continue;
      const std::size_t r = static_cast<std::size_t>(counter++ % nbuf);
      Task t;
      t.kind = kind;
      t.bi = static_cast<std::int32_t>(bi);
      t.bj = static_cast<std::int32_t>(bj);
      t.phase = phase_;
      t.flops = 2.0 * static_cast<double>(bnnz) * static_cast<double>(n);
      const sparse::Csb::BlockView bv = a.block_view(bi, bj);
      Access xa = vec_access(x, bj, Access::Mode::kRead);
      xa.stride_lines = stride_for(xa.bytes, touched_input_lines(bv, n));
      Access ba = vec_access(bufs[r], bi, Access::Mode::kReadWrite);
      ba.stride_lines = stride_for(ba.bytes, touched_output_lines(bv, n));
      t.accesses = {
          {static_cast<std::uint32_t>(a_id_),
           static_cast<std::uint64_t>(blkptr[static_cast<std::size_t>(
               bi * np_ + bj)]) *
               a.entry_bytes(),
           static_cast<std::uint64_t>(bnnz) * a.entry_bytes(),
           Access::Mode::kRead},
          xa, ba};
      la::DenseMatrix* bm = buf_ptrs[r];
      t.body = [xm, bm, &a, bi, bj] {
        sparse::csb_block_spmm(a, bi, bj, xm->view(), bm->view());
      };
      const DataPiece reads[2] = {{a_id_, -1},
                                  {x, static_cast<std::int32_t>(bj)}};
      const DataPiece writes[1] = {{bufs[r], static_cast<std::int32_t>(bi)}};
      builder_.add_task(std::move(t), reads, writes);
    }
  }
  // Per-piece reduction: y_bi = sum_r buf_r[bi].
  for (index_t bi = 0; bi < np_; ++bi) {
    Task red;
    red.kind = KernelKind::kReduce;
    red.bi = static_cast<std::int32_t>(bi);
    red.phase = phase_;
    red.flops = static_cast<double>(nbuf) * static_cast<double>(piece_rows(bi)) *
                static_cast<double>(n);
    red.accesses = {vec_access(y, bi, Access::Mode::kWrite)};
    for (std::int32_t r = 0; r < nbuf; ++r) {
      red.accesses.push_back(vec_access(bufs[static_cast<std::size_t>(r)],
                                        bi, Access::Mode::kRead));
    }
    std::vector<la::DenseMatrix*> srcs = buf_ptrs;
    la::DenseMatrix* dst = ym;
    const index_t r0 = bi * a.block_size();
    const index_t nr = piece_rows(bi);
    red.body = [srcs, dst, r0, nr] {
      la::MatrixView out = dst->row_block(r0, nr);
      for (index_t i = 0; i < nr; ++i) {
        for (index_t j = 0; j < out.cols; ++j) out.at(i, j) = 0.0;
      }
      for (la::DenseMatrix* src : srcs) {
        la::axpy(1.0, src->row_block(r0, nr), out);
      }
    };
    std::vector<DataPiece> reads;
    for (DataId b : bufs) reads.push_back({b, static_cast<std::int32_t>(bi)});
    const DataPiece w{y, static_cast<std::int32_t>(bi)};
    builder_.add_task(std::move(red), reads, {&w, 1});
  }
}

void Program::xy(DataId x, DataId z, DataId y, double alpha, double beta) {
  la::DenseMatrix* xm = record(x).matrix;
  la::DenseMatrix* zm = record(z).matrix;
  la::DenseMatrix* ym = record(y).matrix;
  STS_EXPECTS(xm != nullptr && zm != nullptr && ym != nullptr);
  STS_EXPECTS(zm->rows() == xm->cols() && zm->cols() == ym->cols());
  for (index_t p = 0; p < np_; ++p) {
    Task t;
    t.kind = KernelKind::kXY;
    t.bi = static_cast<std::int32_t>(p);
    t.phase = phase_;
    t.flops = la::gemm_flops(piece_rows(p), ym->cols(), xm->cols());
    t.accesses = {vec_access(x, p, Access::Mode::kRead),
                  small_access(z, Access::Mode::kRead),
                  vec_access(y, p,
                             beta == 0.0 ? Access::Mode::kWrite
                                         : Access::Mode::kReadWrite)};
    const index_t r0 = p * a_->block_size();
    const index_t nr = piece_rows(p);
    t.body = [xm, zm, ym, r0, nr, alpha, beta] {
      la::gemm(alpha, xm->row_block(r0, nr), zm->view(), beta,
               ym->row_block(r0, nr));
    };
    const DataPiece reads[2] = {{x, static_cast<std::int32_t>(p)}, {z, -1}};
    const DataPiece writes[1] = {{y, static_cast<std::int32_t>(p)}};
    builder_.add_task(std::move(t), reads, writes);
  }
  ++phase_;
}

void Program::xty(DataId x, DataId y, DataId p_out) {
  la::DenseMatrix* xm = record(x).matrix;
  la::DenseMatrix* ym = record(y).matrix;
  la::DenseMatrix* pm = record(p_out).matrix;
  STS_EXPECTS(xm != nullptr && ym != nullptr && pm != nullptr);
  STS_EXPECTS(pm->rows() == xm->cols() && pm->cols() == ym->cols());
  const index_t pr = pm->rows();
  const index_t pc = pm->cols();
  const DataId partial =
      alloc_internal("xty_part" + std::to_string(phase_), np_, pr * pc,
                     static_cast<std::int32_t>(np_));
  la::DenseMatrix* partm = records_.back().matrix;

  for (index_t p = 0; p < np_; ++p) {
    Task t;
    t.kind = KernelKind::kXTY;
    t.bi = static_cast<std::int32_t>(p);
    t.phase = phase_;
    t.flops = la::gemm_flops(pr, pc, piece_rows(p));
    t.accesses = {vec_access(x, p, Access::Mode::kRead),
                  vec_access(y, p, Access::Mode::kRead),
                  {static_cast<std::uint32_t>(partial),
                   static_cast<std::uint64_t>(p * pr * pc) * sizeof(double),
                   static_cast<std::uint64_t>(pr * pc) * sizeof(double),
                   Access::Mode::kWrite}};
    const index_t r0 = p * a_->block_size();
    const index_t nr = piece_rows(p);
    t.body = [xm, ym, partm, r0, nr, p, pr, pc] {
      la::MatrixView out{partm->data() + p * pr * pc, pr, pc, pc};
      la::gemm_tn(1.0, xm->row_block(r0, nr), ym->row_block(r0, nr), 0.0,
                  out);
    };
    const DataPiece reads[2] = {{x, static_cast<std::int32_t>(p)},
                                {y, static_cast<std::int32_t>(p)}};
    const DataPiece writes[1] = {{partial, static_cast<std::int32_t>(p)}};
    builder_.add_task(std::move(t), reads, writes);
  }

  Task red;
  red.kind = KernelKind::kReduce;
  red.phase = phase_;
  red.flops = static_cast<double>(np_) * static_cast<double>(pr * pc);
  red.accesses = {small_access(p_out, Access::Mode::kWrite)};
  red.accesses.push_back({static_cast<std::uint32_t>(partial), 0,
                          static_cast<std::uint64_t>(np_ * pr * pc) *
                              sizeof(double),
                          Access::Mode::kRead});
  const index_t np = np_;
  red.body = [partm, pm, np, pr, pc] {
    for (index_t i = 0; i < pr; ++i) {
      for (index_t j = 0; j < pc; ++j) pm->at(i, j) = 0.0;
    }
    for (index_t p = 0; p < np; ++p) {
      la::ConstMatrixView part{partm->data() + p * pr * pc, pr, pc, pc};
      la::axpy(1.0, part, pm->view());
    }
  };
  const DataPiece reads[1] = {{partial, -1}};
  const DataPiece writes[1] = {{p_out, -1}};
  builder_.add_task(std::move(red), reads, writes);
  ++phase_;
}

void Program::axpy(double alpha, DataId x, DataId y) {
  la::DenseMatrix* xm = record(x).matrix;
  la::DenseMatrix* ym = record(y).matrix;
  for (index_t p = 0; p < np_; ++p) {
    Task t;
    t.kind = KernelKind::kAxpy;
    t.bi = static_cast<std::int32_t>(p);
    t.phase = phase_;
    t.flops = 2.0 * static_cast<double>(piece_rows(p)) *
              static_cast<double>(xm->cols());
    t.accesses = {vec_access(x, p, Access::Mode::kRead),
                  vec_access(y, p, Access::Mode::kReadWrite)};
    const index_t r0 = p * a_->block_size();
    const index_t nr = piece_rows(p);
    t.body = [xm, ym, r0, nr, alpha] {
      la::axpy(alpha, xm->row_block(r0, nr), ym->row_block(r0, nr));
    };
    const DataPiece reads[1] = {{x, static_cast<std::int32_t>(p)}};
    const DataPiece writes[1] = {{y, static_cast<std::int32_t>(p)}};
    builder_.add_task(std::move(t), reads, writes);
  }
  ++phase_;
}

void Program::copy(DataId x, DataId y) {
  la::DenseMatrix* xm = record(x).matrix;
  la::DenseMatrix* ym = record(y).matrix;
  for (index_t p = 0; p < np_; ++p) {
    Task t;
    t.kind = KernelKind::kAxpy;
    t.bi = static_cast<std::int32_t>(p);
    t.phase = phase_;
    t.flops = static_cast<double>(piece_rows(p)) *
              static_cast<double>(xm->cols());
    t.accesses = {vec_access(x, p, Access::Mode::kRead),
                  vec_access(y, p, Access::Mode::kWrite)};
    const index_t r0 = p * a_->block_size();
    const index_t nr = piece_rows(p);
    t.body = [xm, ym, r0, nr] {
      la::copy(xm->row_block(r0, nr), ym->row_block(r0, nr));
    };
    const DataPiece reads[1] = {{x, static_cast<std::int32_t>(p)}};
    const DataPiece writes[1] = {{y, static_cast<std::int32_t>(p)}};
    builder_.add_task(std::move(t), reads, writes);
  }
  ++phase_;
}

void Program::copy_into_column(DataId x, DataId y, const index_t* col) {
  la::DenseMatrix* xm = record(x).matrix;
  la::DenseMatrix* ym = record(y).matrix;
  STS_EXPECTS(xm != nullptr && ym != nullptr && col != nullptr);
  STS_EXPECTS(xm->cols() == 1);
  for (index_t p = 0; p < np_; ++p) {
    Task t;
    t.kind = KernelKind::kAxpy;
    t.bi = static_cast<std::int32_t>(p);
    t.phase = phase_;
    t.flops = static_cast<double>(piece_rows(p));
    t.accesses = {vec_access(x, p, Access::Mode::kRead),
                  vec_access(y, p, Access::Mode::kReadWrite)};
    const index_t r0 = p * a_->block_size();
    const index_t nr = piece_rows(p);
    t.body = [xm, ym, r0, nr, col] {
      for (index_t i = 0; i < nr; ++i) {
        ym->at(r0 + i, *col) = xm->at(r0 + i, 0);
      }
    };
    const DataPiece reads[1] = {{x, static_cast<std::int32_t>(p)}};
    const DataPiece writes[1] = {{y, static_cast<std::int32_t>(p)}};
    builder_.add_task(std::move(t), reads, writes);
  }
  ++phase_;
}

void Program::scale_by_scalar(DataId x, DataId s, bool reciprocal) {
  la::DenseMatrix* xm = record(x).matrix;
  double* cell = record(s).cell;
  STS_EXPECTS(xm != nullptr && cell != nullptr);
  for (index_t p = 0; p < np_; ++p) {
    Task t;
    t.kind = KernelKind::kScale;
    t.bi = static_cast<std::int32_t>(p);
    t.phase = phase_;
    t.flops = static_cast<double>(piece_rows(p)) *
              static_cast<double>(xm->cols());
    t.accesses = {small_access(s, Access::Mode::kRead),
                  vec_access(x, p, Access::Mode::kReadWrite)};
    const index_t r0 = p * a_->block_size();
    const index_t nr = piece_rows(p);
    t.body = [xm, cell, r0, nr, reciprocal] {
      const double v = reciprocal ? 1.0 / *cell : *cell;
      la::scal(v, xm->row_block(r0, nr));
    };
    const DataPiece reads[1] = {{s, -1}};
    const DataPiece writes[1] = {{x, static_cast<std::int32_t>(p)}};
    builder_.add_task(std::move(t), reads, writes);
  }
  ++phase_;
}

void Program::scale_into(DataId x, DataId s, bool reciprocal, DataId y) {
  la::DenseMatrix* xm = record(x).matrix;
  la::DenseMatrix* ym = record(y).matrix;
  double* cell = record(s).cell;
  for (index_t p = 0; p < np_; ++p) {
    Task t;
    t.kind = KernelKind::kScale;
    t.bi = static_cast<std::int32_t>(p);
    t.phase = phase_;
    t.flops = static_cast<double>(piece_rows(p)) *
              static_cast<double>(xm->cols());
    t.accesses = {small_access(s, Access::Mode::kRead),
                  vec_access(x, p, Access::Mode::kRead),
                  vec_access(y, p, Access::Mode::kWrite)};
    const index_t r0 = p * a_->block_size();
    const index_t nr = piece_rows(p);
    t.body = [xm, ym, cell, r0, nr, reciprocal] {
      const double v = reciprocal ? 1.0 / *cell : *cell;
      la::ConstMatrixView in = xm->row_block(r0, nr);
      la::MatrixView out = ym->row_block(r0, nr);
      for (index_t i = 0; i < nr; ++i) {
        for (index_t j = 0; j < in.cols; ++j) out.at(i, j) = v * in.at(i, j);
      }
    };
    const DataPiece reads[2] = {{s, -1}, {x, static_cast<std::int32_t>(p)}};
    const DataPiece writes[1] = {{y, static_cast<std::int32_t>(p)}};
    builder_.add_task(std::move(t), reads, writes);
  }
  ++phase_;
}

void Program::dot(DataId x, DataId y, DataId s) {
  la::DenseMatrix* xm = record(x).matrix;
  la::DenseMatrix* ym = record(y).matrix;
  double* cell = record(s).cell;
  STS_EXPECTS(xm != nullptr && ym != nullptr && cell != nullptr);
  const DataId partial = alloc_internal("dot_part" + std::to_string(phase_),
                                        np_, 1,
                                        static_cast<std::int32_t>(np_));
  la::DenseMatrix* partm = records_.back().matrix;
  for (index_t p = 0; p < np_; ++p) {
    Task t;
    t.kind = KernelKind::kDotPartial;
    t.bi = static_cast<std::int32_t>(p);
    t.phase = phase_;
    t.flops = 2.0 * static_cast<double>(piece_rows(p)) *
              static_cast<double>(xm->cols());
    t.accesses = {vec_access(x, p, Access::Mode::kRead),
                  vec_access(y, p, Access::Mode::kRead),
                  {static_cast<std::uint32_t>(partial),
                   static_cast<std::uint64_t>(p) * sizeof(double),
                   sizeof(double), Access::Mode::kWrite}};
    const index_t r0 = p * a_->block_size();
    const index_t nr = piece_rows(p);
    t.body = [xm, ym, partm, r0, nr, p] {
      partm->at(p, 0) = la::dot(xm->row_block(r0, nr), ym->row_block(r0, nr));
    };
    const DataPiece reads[2] = {{x, static_cast<std::int32_t>(p)},
                                {y, static_cast<std::int32_t>(p)}};
    const DataPiece writes[1] = {{partial, static_cast<std::int32_t>(p)}};
    builder_.add_task(std::move(t), reads, writes);
  }
  Task red;
  red.kind = KernelKind::kReduce;
  red.phase = phase_;
  red.flops = static_cast<double>(np_);
  red.accesses = {small_access(s, Access::Mode::kWrite),
                  {static_cast<std::uint32_t>(partial), 0,
                   static_cast<std::uint64_t>(np_) * sizeof(double),
                   Access::Mode::kRead}};
  const index_t np = np_;
  red.body = [partm, cell, np] {
    double acc = 0.0;
    for (index_t p = 0; p < np; ++p) acc += partm->at(p, 0);
    *cell = acc;
  };
  const DataPiece reads[1] = {{partial, -1}};
  const DataPiece writes[1] = {{s, -1}};
  builder_.add_task(std::move(red), reads, writes);
  ++phase_;
}

void Program::small_task(graph::KernelKind kind, std::function<void()> body,
                         std::vector<DataId> reads,
                         std::vector<DataId> writes) {
  Task t;
  t.kind = kind;
  t.phase = phase_;
  t.flops = 0.0;
  for (DataId r : reads) t.accesses.push_back(small_access(r, Access::Mode::kRead));
  for (DataId w : writes) {
    t.accesses.push_back(small_access(w, Access::Mode::kReadWrite));
  }
  t.body = std::move(body);
  std::vector<DataPiece> rp;
  std::vector<DataPiece> wp;
  for (DataId r : reads) rp.push_back({r, -1});
  for (DataId w : writes) wp.push_back({w, -1});
  builder_.add_task(std::move(t), rp, wp);
  ++phase_;
}

graph::Tdg Program::build() { return builder_.take(); }

std::vector<std::uint64_t> Program::data_bytes() const {
  std::vector<std::uint64_t> out;
  out.reserve(builder_.data().size());
  for (const auto& d : builder_.data()) out.push_back(d.bytes);
  return out;
}

} // namespace sts::ds
