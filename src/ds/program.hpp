// DeepSparse Primitive Conversion Unit front-end.
//
// A Program is written as a sequence of BLAS/GraphBLAS-style kernel calls
// on registered data (the paper's Listing 1). Each call is one Task
// Identifier node; the Program immediately expands it into block tasks over
// the CSB partitioning (Figs. 1 & 2) and feeds them to the GraphBuilder,
// which wires fine-grained dependencies. The result of build() is the
// explicit task dependency graph executed by executor.hpp (real OpenMP
// tasks) or replayed by the schedule simulator.
//
// All vector blocks are decomposed into np = ceil(m / block_size) row
// pieces; the CSB block size is the same uniform partitioning factor for 2D
// (SpMM) and 1D (vector op) kernels, as in the paper (§5.4).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ds/builder.hpp"
#include "la/blas.hpp"
#include "sparse/csb.hpp"

namespace sts::ds {

using la::index_t;

class Program {
public:
  struct Config {
    /// Create no tasks for empty CSB blocks (paper Fig. 6 optimization).
    bool skip_empty_blocks = true;
    /// Dependency-based SpMM output updates (chain on the output piece)
    /// instead of per-buffer partial outputs + reduction (paper Fig. 7).
    bool dependency_based_spmm = true;
    /// Buffer count for the reduction-based SpMM variant (the paper's
    /// "partial output vector per thread/core").
    std::int32_t spmm_buffers = 4;
  };

  /// The program's tasks reference `a` and all registered storage by
  /// pointer: they must outlive every execution of the built graph.
  Program(const sparse::Csb* a, Config config);

  [[nodiscard]] index_t partitions() const noexcept { return np_; }
  [[nodiscard]] index_t block_size() const noexcept {
    return a_->block_size();
  }

  /// Registers an m x n block vector decomposed into np row pieces.
  DataId vec(std::string name, la::DenseMatrix* storage);
  /// Registers an unpartitioned small dense matrix (Gram matrices, Z, P).
  DataId small(std::string name, la::DenseMatrix* storage);
  /// Registers a scalar cell.
  DataId scalar(std::string name, double* value);

  // --- kernel calls (each advances the TI phase counter) ---

  /// y = A * x. Works for any column count including 1 (SpMV).
  void spmm(DataId x, DataId y);

  /// y = alpha * x * z + beta * y, z small (x.cols x y.cols).
  void xy(DataId x, DataId z, DataId y, double alpha = 1.0,
          double beta = 0.0);

  /// p = x^T * y via per-piece partials and a final reduce task (Fig. 2).
  void xty(DataId x, DataId y, DataId p);

  /// y += alpha * x (block vectors of identical shape).
  void axpy(double alpha, DataId x, DataId y);

  /// y = x (block vector copy).
  void copy(DataId x, DataId y);

  /// y(:, *col) = x(:, 0): scatters a 1-column vector into a column of a
  /// wider block vector (Lanczos appends the new basis vector to Q). The
  /// column index is read through `col` at execution time so one graph can
  /// be reused across iterations, as DeepSparse does.
  void copy_into_column(DataId x, DataId y, const index_t* col);

  /// x *= *s or x /= *s per piece (the scalar is read at execution time).
  void scale_by_scalar(DataId x, DataId s, bool reciprocal);

  /// y = x / *s into a different vector.
  void scale_into(DataId x, DataId s, bool reciprocal, DataId y);

  /// s = x^T y for 1-column vectors / Frobenius for blocks.
  void dot(DataId x, DataId y, DataId s);

  /// An unpartitioned task on small data (Rayleigh-Ritz solve, convergence
  /// check, sqrt of a scalar, ...). Runs as a single task reading `reads`
  /// and writing `writes`.
  void small_task(graph::KernelKind kind, std::function<void()> body,
                  std::vector<DataId> reads, std::vector<DataId> writes);

  /// Finalizes and returns the graph; the Program keeps ownership of the
  /// internal partial buffers the graph's tasks reference.
  [[nodiscard]] graph::Tdg build();

  [[nodiscard]] const GraphBuilder& builder() const noexcept {
    return builder_;
  }

  /// Total bytes of each registered structure (for the simulator layout).
  [[nodiscard]] std::vector<std::uint64_t> data_bytes() const;

  /// Id of the sparse matrix structure in the access streams.
  [[nodiscard]] DataId matrix_data_id() const noexcept { return a_id_; }

private:
  struct DataRecord {
    enum class Kind { kVec, kSmall, kScalar, kMatrix, kInternal };
    Kind kind;
    la::DenseMatrix* matrix = nullptr; // vec/small
    double* cell = nullptr;            // scalar
    std::uint64_t bytes = 0;
  };

  [[nodiscard]] index_t piece_rows(index_t p) const;
  [[nodiscard]] la::MatrixView piece_view(DataId id, index_t p);
  [[nodiscard]] graph::Access vec_access(DataId id, index_t p,
                                         graph::Access::Mode mode) const;
  [[nodiscard]] graph::Access small_access(DataId id,
                                           graph::Access::Mode mode) const;
  DataId alloc_internal(std::string name, index_t rows, index_t cols,
                        std::int32_t pieces);
  void spmm_dependency_based(DataId x, DataId y);
  void spmm_reduction_based(DataId x, DataId y);
  const DataRecord& record(DataId id) const;

  const sparse::Csb* a_;
  Config config_;
  index_t np_;
  GraphBuilder builder_;
  std::vector<DataRecord> records_; // indexed by DataId
  std::vector<std::unique_ptr<la::DenseMatrix>> internal_; // partial buffers
  DataId a_id_ = -1;
  std::int32_t phase_ = 0;
};

} // namespace sts::ds
