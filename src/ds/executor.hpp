// DeepSparse Task Executor.
//
// Runs an explicit graph::Tdg. The OpenMP mode mirrors the paper: the
// master thread walks the depth-first topological order and spawns every
// task as an OpenMP task; readiness is tracked with atomic predecessor
// counters (a task is spawned the moment its last predecessor finishes),
// and OpenMP's scheduler executes them. A serial mode provides the
// reference semantics property tests compare against.
#pragma once

#include "graph/tdg.hpp"
#include "perf/trace.hpp"

namespace sts::ds {

enum class ExecMode {
  kSerial,   // topological order on the calling thread
  kOmpTasks, // OpenMP task spawning (DeepSparse's execution model)
};

struct ExecOptions {
  ExecMode mode = ExecMode::kOmpTasks;
  /// Optional per-task event recording (Figs. 10/13). Must be sized for
  /// omp_get_max_threads() lanes in kOmpTasks mode.
  perf::TraceRecorder* trace = nullptr;
};

/// Executes every task in `g` respecting dependencies. Blocks until done.
///
/// Failure contract: an exception escaping a task body is wrapped in a
/// support::TaskError naming the task (e.g. "spmv[3,2]"). In kOmpTasks mode
/// the first failure is latched, the failed task's successors are never
/// spawned (their readiness counters stay poisoned), queued-but-unstarted
/// tasks skip their bodies, and the single latched TaskError is rethrown
/// from execute() after the region drains. In kSerial mode the TaskError
/// propagates directly and later tasks never run.
void execute(const graph::Tdg& g, const ExecOptions& options);

} // namespace sts::ds
