// Task Dependency Graph Generator (TDGG): the lower half of DeepSparse's
// Primitive Conversion Unit.
//
// The front-end (program.hpp) decomposes each kernel call into block tasks
// and declares, per task, which pieces of which data structures it reads
// and writes. This builder performs the dependence analysis the paper
// describes -- last-writer / readers-since-write tracking per (data, piece)
// -- and emits the explicit graph::Tdg that the Task Executor runs and the
// simulator replays.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "graph/tdg.hpp"

namespace sts::ds {

using DataId = std::int32_t;

/// One piece of one registered data structure. piece == -1 addresses the
/// whole structure (conflicts with every piece).
struct DataPiece {
  DataId data = -1;
  std::int32_t piece = -1;
};

class GraphBuilder {
public:
  /// Registers a data structure partitioned into `pieces` equal pieces of
  /// `bytes` total. The returned id doubles as the Access::data_id used by
  /// the cache simulator's layout.
  DataId register_data(std::string name, std::int32_t pieces,
                       std::uint64_t bytes);

  /// Adds a task that reads `reads` and writes `writes`; dependence edges
  /// to/from earlier tasks are derived automatically (RAW, WAR, WAW).
  graph::TaskId add_task(graph::Task task, std::span<const DataPiece> reads,
                         std::span<const DataPiece> writes);

  [[nodiscard]] const graph::Tdg& graph() const noexcept { return graph_; }
  /// Finalizes and moves the graph out; the builder must not be used after.
  [[nodiscard]] graph::Tdg take() { return std::move(graph_); }

  struct DataInfo {
    std::string name;
    std::int32_t pieces = 1;
    std::uint64_t bytes = 0;
  };
  [[nodiscard]] const std::vector<DataInfo>& data() const noexcept {
    return data_;
  }
  [[nodiscard]] std::uint64_t piece_bytes(DataId id) const;
  [[nodiscard]] std::uint64_t piece_offset(DataId id,
                                           std::int32_t piece) const;

private:
  struct PieceState {
    graph::TaskId last_writer = graph::kInvalidTask;
    std::vector<graph::TaskId> readers;
  };

  PieceState& piece_state(DataId id, std::int32_t piece);
  void wire_read(graph::TaskId task, DataId id, std::int32_t piece);
  void wire_write(graph::TaskId task, DataId id, std::int32_t piece);

  graph::Tdg graph_;
  std::vector<DataInfo> data_;
  std::vector<std::vector<PieceState>> states_; // [data][piece]
};

} // namespace sts::ds
