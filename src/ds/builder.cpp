#include "ds/builder.hpp"

namespace sts::ds {

DataId GraphBuilder::register_data(std::string name, std::int32_t pieces,
                                   std::uint64_t bytes) {
  STS_EXPECTS(pieces >= 1);
  data_.push_back({std::move(name), pieces, bytes});
  states_.emplace_back(static_cast<std::size_t>(pieces));
  return static_cast<DataId>(data_.size() - 1);
}

std::uint64_t GraphBuilder::piece_bytes(DataId id) const {
  STS_EXPECTS(id >= 0 && static_cast<std::size_t>(id) < data_.size());
  const DataInfo& d = data_[static_cast<std::size_t>(id)];
  return d.bytes / static_cast<std::uint64_t>(d.pieces);
}

std::uint64_t GraphBuilder::piece_offset(DataId id, std::int32_t piece) const {
  STS_EXPECTS(piece >= 0);
  return piece_bytes(id) * static_cast<std::uint64_t>(piece);
}

GraphBuilder::PieceState& GraphBuilder::piece_state(DataId id,
                                                    std::int32_t piece) {
  STS_EXPECTS(id >= 0 && static_cast<std::size_t>(id) < states_.size());
  auto& pieces = states_[static_cast<std::size_t>(id)];
  STS_EXPECTS(piece >= 0 && static_cast<std::size_t>(piece) < pieces.size());
  return pieces[static_cast<std::size_t>(piece)];
}

void GraphBuilder::wire_read(graph::TaskId task, DataId id,
                             std::int32_t piece) {
  PieceState& ps = piece_state(id, piece);
  if (ps.last_writer != graph::kInvalidTask && ps.last_writer != task) {
    graph_.add_edge(ps.last_writer, task);
  }
  ps.readers.push_back(task);
}

void GraphBuilder::wire_write(graph::TaskId task, DataId id,
                              std::int32_t piece) {
  PieceState& ps = piece_state(id, piece);
  if (ps.last_writer != graph::kInvalidTask && ps.last_writer != task) {
    graph_.add_edge(ps.last_writer, task);
  }
  for (graph::TaskId reader : ps.readers) {
    if (reader != task) graph_.add_edge(reader, task);
  }
  ps.last_writer = task;
  ps.readers.clear();
}

graph::TaskId GraphBuilder::add_task(graph::Task task,
                                     std::span<const DataPiece> reads,
                                     std::span<const DataPiece> writes) {
  const graph::TaskId id = graph_.add_task(std::move(task));
  auto expand = [&](const DataPiece& dp, auto&& wire) {
    STS_EXPECTS(dp.data >= 0 &&
                static_cast<std::size_t>(dp.data) < data_.size());
    if (dp.piece >= 0) {
      wire(id, dp.data, dp.piece);
    } else {
      const std::int32_t n = data_[static_cast<std::size_t>(dp.data)].pieces;
      for (std::int32_t p = 0; p < n; ++p) wire(id, dp.data, p);
    }
  };
  for (const DataPiece& dp : reads) {
    expand(dp, [this](graph::TaskId t, DataId d, std::int32_t p) {
      wire_read(t, d, p);
    });
  }
  for (const DataPiece& dp : writes) {
    expand(dp, [this](graph::TaskId t, DataId d, std::int32_t p) {
      wire_write(t, d, p);
    });
  }
  return id;
}

} // namespace sts::ds
