#include "ds/executor.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <mutex>

#include "obs/obs.hpp"
#include "support/error.hpp"
#include "support/escape.hpp"
#include "support/fault.hpp"
#include "support/timer.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace sts::ds {

namespace {

/// Unique successor lists (the Tdg may carry duplicate edges).
std::vector<std::vector<graph::TaskId>> unique_successors(
    const graph::Tdg& g) {
  std::vector<std::vector<graph::TaskId>> out(g.task_count());
  for (std::size_t u = 0; u < g.task_count(); ++u) {
    out[u] = g.successors(static_cast<graph::TaskId>(u));
    std::sort(out[u].begin(), out[u].end());
    out[u].erase(std::unique(out[u].begin(), out[u].end()), out[u].end());
  }
  return out;
}

void invoke_body(const graph::Task& task) {
  support::fault::check("ds:task");
  if (task.body) task.body();
}

obs::Counter& spawned_counter() {
  static obs::Counter& c = obs::counter("ds.tasks_spawned");
  return c;
}
obs::Counter& ready_counter() {
  static obs::Counter& c = obs::counter("ds.ready_events");
  return c;
}
obs::Counter& poisoned_counter() {
  static obs::Counter& c = obs::counter("ds.tasks_poisoned");
  return c;
}

/// Runs one task; any exception escaping the body is wrapped in a
/// support::TaskError naming the failing task. Task events flow through
/// obs::publish_task, which feeds the bench recorder, the Chrome trace, and
/// the per-kernel latency histograms from one timing pass.
void run_task(const graph::Tdg& g, graph::TaskId id,
              perf::TraceRecorder* trace, unsigned worker) {
  const graph::Task& task = g.task(id);
  const obs::prof::TaskMark mark("ds", task.kind);
  try {
    if (trace != nullptr || obs::task_timing_enabled()) {
      perf::TaskEvent ev;
      ev.task_id = id;
      ev.kind = task.kind;
      ev.worker = static_cast<std::int32_t>(worker);
      ev.start_ns = support::now_ns();
      invoke_body(task);
      ev.end_ns = support::now_ns();
      obs::publish_task("ds", ev, trace);
    } else {
      invoke_body(task);
    }
  } catch (const support::TaskError&) {
    throw;
  } catch (const std::exception& e) {
    throw support::TaskError(graph::task_label(task), e.what());
  } catch (...) {
    throw support::TaskError(graph::task_label(task), "unknown exception");
  }
}

void execute_serial(const graph::Tdg& g, perf::TraceRecorder* trace) {
  for (graph::TaskId id : g.depth_first_topological_order()) {
    run_task(g, id, trace, 0);
  }
}

#ifdef _OPENMP

struct OmpContext {
  const graph::Tdg* graph;
  std::vector<std::vector<graph::TaskId>> succ;
  std::unique_ptr<std::atomic<std::int32_t>[]> remaining;
  perf::TraceRecorder* trace;
  // Failure containment: the first exception is latched; a failed task does
  // NOT decrement its successors' counters, so everything downstream of the
  // failure stays unspawned (poisoned readiness), and `cancelled` makes
  // already-spawned-but-not-started tasks skip their bodies.
  std::atomic<bool> cancelled{false};
  std::atomic<std::uint64_t> suppressed{0};
  std::mutex error_mutex;
  std::exception_ptr error;
};

void spawn_task(OmpContext& ctx, graph::TaskId id);

void finish_task(OmpContext& ctx, graph::TaskId id) {
  for (graph::TaskId s : ctx.succ[static_cast<std::size_t>(id)]) {
    if (ctx.remaining[static_cast<std::size_t>(s)].fetch_sub(
            1, std::memory_order_acq_rel) == 1) {
      ready_counter().add(1);
      spawn_task(ctx, s);
    }
  }
}

void spawn_task(OmpContext& ctx, graph::TaskId id) {
  OmpContext* c = &ctx;
  spawned_counter().add(1);
#pragma omp task firstprivate(c, id) untied
  {
    if (c->cancelled.load(std::memory_order_acquire)) {
      c->suppressed.fetch_add(1, std::memory_order_relaxed);
      poisoned_counter().add(1);
      obs::instant("ds:poisoned", "cancel",
                   "{\"task\":\"" +
                       support::json_escape(
                           graph::task_label(c->graph->task(id))) +
                       "\"}");
    } else {
      try {
        run_task(*c->graph, id, c->trace,
                 static_cast<unsigned>(omp_get_thread_num()));
        finish_task(*c, id);
      } catch (...) {
        bool latched = false;
        {
          const std::lock_guard<std::mutex> lock(c->error_mutex);
          if (!c->error) {
            c->error = std::current_exception();
            latched = true;
          }
        }
        c->cancelled.store(true, std::memory_order_release);
        if (latched) obs::instant("ds:cancel", "cancel");
      }
    }
  }
}

void execute_omp(const graph::Tdg& g, perf::TraceRecorder* trace) {
  OmpContext ctx;
  ctx.graph = &g;
  ctx.succ = unique_successors(g);
  ctx.trace = trace;
  const std::size_t n = g.task_count();
  ctx.remaining = std::make_unique<std::atomic<std::int32_t>[]>(n);
  const std::vector<std::int32_t> indeg = g.indegrees();
  for (std::size_t i = 0; i < n; ++i) {
    ctx.remaining[i].store(indeg[i], std::memory_order_relaxed);
  }
  const std::vector<graph::TaskId> order = g.depth_first_topological_order();
#pragma omp parallel
#pragma omp single nowait
  {
    // Master spawns all initially-ready tasks in depth-first topological
    // order (DeepSparse's spawn policy); the rest are spawned by their
    // final predecessor as counters drain.
    for (graph::TaskId id : order) {
      if (indeg[static_cast<std::size_t>(id)] == 0) spawn_task(ctx, id);
    }
  }
  // Implicit barrier of the parallel region waits for all spawned tasks —
  // and only for spawned ones, so the poisoned (never-spawned) successors
  // of a failed task don't stall it. Surface the single latched failure
  // here, on the calling thread, where it is catchable.
  if (ctx.error) std::rethrow_exception(ctx.error);
}

#endif // _OPENMP

} // namespace

void execute(const graph::Tdg& g, const ExecOptions& options) {
  STS_EXPECTS(g.is_acyclic());
  switch (options.mode) {
    case ExecMode::kSerial:
      execute_serial(g, options.trace);
      return;
    case ExecMode::kOmpTasks:
#ifdef _OPENMP
      execute_omp(g, options.trace);
#else
      execute_serial(g, options.trace);
#endif
      return;
  }
}

} // namespace sts::ds
