// Sampling profiler and hardware counters for live solver runs.
//
// Two independent facilities:
//
// 1. A wall-clock sampling profiler over per-worker "what am I running"
//    state. Worker threads publish a (runtime, kernel-kind) pair into a
//    fixed slot via the RAII TaskMark (or the split region_begin/region_end
//    pair for BSP parallel regions); a sampler thread sweeps all slots at
//    STS_PROF_HZ (default 497 Hz) and accumulates `runtime;kind` tick
//    counts. write_folded() emits the folded-stack format flamegraph.pl and
//    speedscope consume directly:
//
//        flux;spmv 1817
//        flux;(idle) 241
//
//    When sampling is off a TaskMark is a single relaxed load — the hook
//    stays in the task hot paths permanently. Publishing is wait-free; the
//    sampler never blocks workers.
//
// 2. perf_event_open hardware counters (cycles, instructions, LLC misses)
//    for the calling thread, used by IterScope to attach cache-efficiency
//    numbers (the paper's Figs. 8/11 lens) to solver-iteration spans and
//    metrics. Counters that the kernel refuses (perf_event_paranoid,
//    seccomp ENOSYS, missing PMU) degrade per-event to -1 — never an error.
//    STS_HW_COUNTERS=0 disables the syscalls entirely.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "graph/tdg.hpp"

namespace sts::obs::prof {

// -- Sampling profiler -----------------------------------------------------

/// True while the sampler thread is running (gate for the mark hot path).
[[nodiscard]] bool sampling_active() noexcept;

/// Starts the sampler thread; `hz` <= 0 uses STS_PROF_HZ (default 497).
/// Idempotent while running.
void start_sampling(double hz = 0.0);

/// Stops and joins the sampler thread. Accumulated ticks are kept.
void stop_sampling() noexcept;

/// Drops accumulated ticks (for tests / repeated profile windows).
void reset_samples();

/// Total sampler sweeps that observed at least one marked slot.
[[nodiscard]] std::uint64_t sample_count() noexcept;

/// Emits "runtime;kind count" lines, sorted by name. Safe while sampling.
void write_folded(std::ostream& os);

/// Marks the calling thread as running one task: publishes
/// (runtime, kind) for the sampler, and restores the previous state —
/// outermost mark wins back to "runtime;(idle)" — on destruction.
/// `runtime` must be a literal or otherwise outlive the process.
class TaskMark {
public:
  TaskMark(const char* runtime, graph::KernelKind kind) noexcept;
  ~TaskMark();
  TaskMark(const TaskMark&) = delete;
  TaskMark& operator=(const TaskMark&) = delete;

private:
  std::uint32_t prev_ = 0;
  void* slot_ = nullptr;
};

/// Split-scope variants for sites where begin and end are separate calls
/// (BSP region threads). region_end() returns the thread to idle.
void region_begin(const char* runtime, graph::KernelKind kind) noexcept;
void region_end() noexcept;

// -- Hardware counters (perf_event_open) -----------------------------------

/// One reading per event; -1 = that counter is unavailable on this thread.
struct HwCounts {
  std::int64_t cycles = -1;
  std::int64_t instructions = -1;
  std::int64_t cache_misses = -1;

  [[nodiscard]] bool any() const noexcept {
    return cycles >= 0 || instructions >= 0 || cache_misses >= 0;
  }
};

/// end - begin per event; -1 propagates (a counter missing on either side
/// stays missing in the delta).
[[nodiscard]] HwCounts hw_delta(const HwCounts& end,
                                const HwCounts& begin) noexcept;

/// True when at least one counter opened for the calling thread. The first
/// call attempts the perf_event_open syscalls; ENOSYS/EACCES/EPERM (e.g.
/// perf_event_paranoid) make this permanently false for the thread.
[[nodiscard]] bool hw_counters_available() noexcept;

/// Current counter values for the calling thread (cumulative since open);
/// all -1 when unavailable. Never throws, never blocks.
[[nodiscard]] HwCounts hw_read() noexcept;

} // namespace sts::obs::prof
