// In-memory Chrome trace-event buffer with one lane per emitting thread.
//
// Each thread appends to its own lane (created on first use, cached in a
// thread_local), so pushes contend only with a concurrent export. Lanes are
// never destroyed while the process lives: worker threads from short-lived
// schedulers leave their events behind for a post-mortem export.
//
// write_json() emits the Chrome trace-event JSON object format
// ({"traceEvents":[...]}) that chrome://tracing and ui.perfetto.dev load
// directly: one pid, one tid per lane (with a thread_name metadata record),
// "X" complete events with microsecond timestamps rebased to the earliest
// event, and "i" instant events for point occurrences (faults,
// cancellations, watchdog firings).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sts::obs {

struct TraceEvent {
  std::string name;
  std::string cat;
  char ph = 'X';            // 'X' complete span, 'i' instant
  std::int64_t ts_ns = 0;   // support::now_ns() timestamp
  std::int64_t dur_ns = 0;  // span duration; ignored for instants
  std::string args;         // pre-rendered JSON object body, may be empty
};

class TraceSink {
public:
  static TraceSink& instance();

  /// Appends an event to the calling thread's lane.
  void push(TraceEvent event);

  /// Names the calling thread's lane (first non-empty name wins).
  void name_current_lane(const std::string& name);

  /// Drops all buffered events (lanes and their names survive).
  void reset();

  [[nodiscard]] std::size_t event_count();

  /// Writes the full buffer as Chrome trace-event JSON.
  void write_json(std::ostream& os);

private:
  struct Lane {
    std::mutex mutex;
    std::string name;
    std::vector<TraceEvent> events;
  };

  Lane& lane_for_this_thread();

  std::mutex mutex_;
  std::vector<std::unique_ptr<Lane>> lanes_;
};

} // namespace sts::obs
