// In-memory Chrome trace-event buffer with one lane per emitting thread.
//
// Each thread appends to its own lane (created on first use, cached in a
// thread_local), so pushes contend only with a concurrent export. Lanes are
// never destroyed while the process lives: worker threads from short-lived
// schedulers leave their events behind for a post-mortem export.
//
// write_json() emits the Chrome trace-event JSON object format
// ({"traceEvents":[...]}) that chrome://tracing and ui.perfetto.dev load
// directly: one pid, one tid per lane (with a thread_name metadata record),
// "X" complete events with microsecond timestamps rebased to the earliest
// event, and "i" instant events for point occurrences (faults,
// cancellations, watchdog firings).
//
// JobTraceRing is the daemon-side companion: a byte-bounded ring of the
// same events tagged with the job they ran under, so a long-lived stsd can
// serve `stsctl trace <job>` for recent jobs without buffering its whole
// lifetime. Oldest events fall off the back when the byte budget fills;
// lane identities come from TraceSink so both exports agree on thread
// naming.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sts::obs {

struct TraceEvent {
  std::string name;
  std::string cat;
  char ph = 'X';            // 'X' complete span, 'i' instant
  std::int64_t ts_ns = 0;   // support::now_ns() timestamp
  std::int64_t dur_ns = 0;  // span duration; ignored for instants
  std::string args;         // pre-rendered JSON object body, may be empty
};

class TraceSink {
public:
  static TraceSink& instance();

  /// Appends an event to the calling thread's lane.
  void push(TraceEvent event);

  /// Names the calling thread's lane (first non-empty name wins).
  void name_current_lane(const std::string& name);

  /// Stable id of the calling thread's lane (creates the lane on first use).
  [[nodiscard]] std::uint32_t current_lane_id();

  /// Display name for a lane id ("lane<N>" when unnamed or unknown).
  [[nodiscard]] std::string lane_name(std::uint32_t id);

  /// Drops all buffered events (lanes and their names survive).
  void reset();

  [[nodiscard]] std::size_t event_count();

  /// Writes the full buffer as Chrome trace-event JSON.
  void write_json(std::ostream& os);

private:
  struct Lane {
    std::uint32_t id = 0;
    std::mutex mutex;
    std::string name;
    std::vector<TraceEvent> events;
  };

  Lane& lane_for_this_thread();

  std::mutex mutex_;
  std::vector<std::unique_ptr<Lane>> lanes_;
};

/// Byte-bounded ring of trace events tagged by job id. One job is "current"
/// at a time (stsd runs jobs through a single executor); every event pushed
/// while a job is open is attributed to it, whichever worker thread emits
/// it. Accounting charges the event struct plus its string payloads, so the
/// configured budget tracks real memory within a small constant factor.
class JobTraceRing {
public:
  static JobTraceRing& instance();

  /// Byte budget; 0 disables capture entirely. Trimming applies on the next
  /// push.
  void set_capacity(std::size_t bytes);
  [[nodiscard]] std::size_t capacity() const noexcept;

  void begin_job(std::uint64_t job, std::string trace_id);
  void end_job() noexcept;
  [[nodiscard]] std::uint64_t active_job() const noexcept;

  /// Appends an event for the active job (drops it when none is active or
  /// capacity is 0).
  void push(TraceEvent event);

  /// Chrome trace JSON for one job; false when no events remain for it
  /// (never buffered, or already evicted by the byte budget).
  bool write_job_json(std::uint64_t job, std::ostream& os);

  [[nodiscard]] std::size_t bytes() const noexcept;
  [[nodiscard]] std::uint64_t dropped() const noexcept;

  /// Drops all buffered events and job records (tests).
  void clear();

private:
  struct Entry {
    std::uint64_t job = 0;
    std::uint32_t lane = 0;
    TraceEvent event;
  };
  struct JobInfo {
    std::string trace_id;
    std::size_t events = 0;
  };

  void trim_locked();

  std::atomic<std::uint64_t> current_{0};
  mutable std::mutex mutex_;
  std::size_t capacity_ = std::size_t{4} << 20;
  std::size_t bytes_ = 0;
  std::uint64_t dropped_ = 0;
  std::deque<Entry> events_;
  std::map<std::uint64_t, JobInfo> jobs_;
};

} // namespace sts::obs
