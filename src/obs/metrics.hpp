// Process-wide metrics registry: counters, gauges, and fixed-bucket latency
// histograms with interpolated p50/p95/p99.
//
// Instruments on the hot paths (steal loops, task bodies) touch metrics via
// relaxed atomics only; the registry mutex is taken when a metric is first
// looked up by name and when the registry is dumped. References returned by
// the registry stay valid for the life of the process — instrumentation
// sites cache them in function-local statics.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace sts::obs {

/// Monotonic event count (steals, cancellations, tasks executed, ...).
class Counter {
public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value plus the high-water mark (e.g. tasks in flight).
class Gauge {
public:
  void observe(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
    std::int64_t p = peak_.load(std::memory_order_relaxed);
    while (v > p && !peak_.compare_exchange_weak(p, v,
                                                 std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t peak() const noexcept {
    return peak_.load(std::memory_order_relaxed);
  }

private:
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> peak_{0};
};

/// Lock-free latency/size histogram with power-of-two buckets: bucket b
/// covers [2^b, 2^(b+1)) (bucket 0 also absorbs values <= 1). Quantiles are
/// linearly interpolated inside the winning bucket, so they are estimates
/// with at most 2x relative error — plenty for p50/p95/p99 latency triage.
class Histogram {
public:
  static constexpr int kBuckets = 48;

  void observe(std::int64_t v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Smallest / largest observed value; 0 when empty.
  [[nodiscard]] std::int64_t min() const noexcept;
  [[nodiscard]] std::int64_t max() const noexcept;

  /// Interpolated quantile for p in [0, 1]; 0 when empty. Monotone in p.
  [[nodiscard]] double quantile(double p) const noexcept;

private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{std::numeric_limits<std::int64_t>::max()};
  std::atomic<std::int64_t> max_{std::numeric_limits<std::int64_t>::min()};
};

/// Name -> metric map. Metrics are created on first lookup and never
/// removed, so returned references are stable for the process lifetime.
class Registry {
public:
  static Registry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// One CSV row per metric:
  /// name,type,value,count,min,max,p50,p95,p99 (histogram `value` = sum).
  void write_csv(std::ostream& os) const;
  /// Human-readable dump of the same data (for STS_METRICS=stderr).
  void write_text(std::ostream& os) const;

private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace sts::obs
