// Process-wide metrics registry: counters, gauges, and fixed-bucket latency
// histograms with interpolated p50/p95/p99.
//
// Instruments on the hot paths (steal loops, task bodies) touch metrics via
// relaxed atomics only; the registry mutex is taken when a metric is first
// looked up by name and when the registry is dumped. References returned by
// the registry stay valid for the life of the process — instrumentation
// sites cache them in function-local statics.
//
// Dumps are coherent: Histogram keeps two accumulation halves and a cumulative
// started-observe counter whose top bit selects the hot half (the scheme
// Prometheus client libraries use). snapshot() flips the hot bit, waits the
// few instructions it takes in-flight observe() calls to land in the now-cold
// half, reads the cold half at rest, and folds it back into the hot half — so
// an exported histogram always has count == sum of bucket counts and a sum
// that matches exactly those observations, even while writers keep going.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sts::obs {

/// Monotonic event count (steals, cancellations, tasks executed, ...).
class Counter {
public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value plus the high-water mark (e.g. tasks in flight).
class Gauge {
public:
  void observe(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
    std::int64_t p = peak_.load(std::memory_order_relaxed);
    while (v > p && !peak_.compare_exchange_weak(p, v,
                                                 std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t peak() const noexcept {
    return peak_.load(std::memory_order_relaxed);
  }

private:
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> peak_{0};
};

/// Lock-free latency/size histogram with power-of-two buckets: bucket b
/// covers [2^b, 2^(b+1)) (bucket 0 also absorbs values <= 1; the top bucket
/// absorbs everything above 2^47). Quantiles are linearly interpolated inside
/// the winning bucket, so they are estimates with at most 2x relative error —
/// plenty for p50/p95/p99 latency triage.
class Histogram {
public:
  static constexpr int kBuckets = 48;

  /// One coherent point-in-time view: `count` equals the sum of `buckets`
  /// and `sum` is the sum of exactly those observations.
  struct Snapshot {
    std::uint64_t count = 0;
    std::int64_t sum = 0;
    std::int64_t min = 0; // 0 when empty
    std::int64_t max = 0; // 0 when empty
    std::array<std::uint64_t, kBuckets> buckets{};

    /// Interpolated quantile for p in [0, 1]; 0 when empty. Monotone in p.
    [[nodiscard]] double quantile(double p) const noexcept;
  };

  void observe(std::int64_t v) noexcept;

  /// Coherent export; serialized per histogram, briefly waits out in-flight
  /// observe() calls. Writers are never blocked.
  [[nodiscard]] Snapshot snapshot() const noexcept;

  // Convenience accessors; each takes a full snapshot, so batch readers
  // (dumps, stats) should call snapshot() once instead.
  [[nodiscard]] std::uint64_t count() const noexcept {
    return snapshot().count;
  }
  [[nodiscard]] std::int64_t sum() const noexcept { return snapshot().sum; }
  /// Smallest / largest observed value; 0 when empty.
  [[nodiscard]] std::int64_t min() const noexcept { return snapshot().min; }
  [[nodiscard]] std::int64_t max() const noexcept { return snapshot().max; }
  [[nodiscard]] double quantile(double p) const noexcept {
    return snapshot().quantile(p);
  }

private:
  // Cumulative started-observe count; bit 63 selects the hot half.
  static constexpr std::uint64_t kHotHalfBit = std::uint64_t{1} << 63;

  struct Half {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::int64_t> sum{0};
    // Cumulative finished-observe count for this half; snapshot() spins
    // until the cold half's value reaches the started count it captured.
    std::atomic<std::uint64_t> finished{0};
  };

  mutable std::atomic<std::uint64_t> started_hot_{0};
  mutable std::array<Half, 2> halves_{};
  std::atomic<std::int64_t> min_{std::numeric_limits<std::int64_t>::max()};
  std::atomic<std::int64_t> max_{std::numeric_limits<std::int64_t>::min()};
  mutable std::mutex snapshot_mutex_;
};

/// Point-in-time copy of every registered metric, in name order per kind.
/// Produced under the registry mutex so dumps and renderers (CSV, text,
/// Prometheus exposition) all read the same coherent state.
struct RegistrySnapshot {
  struct CounterRow {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeRow {
    std::string name;
    std::int64_t value = 0;
    std::int64_t peak = 0;
  };
  struct HistogramRow {
    std::string name;
    Histogram::Snapshot data;
  };
  std::vector<CounterRow> counters;
  std::vector<GaugeRow> gauges;
  std::vector<HistogramRow> histograms;
};

/// Name -> metric map. Metrics are created on first lookup and never
/// removed, so returned references are stable for the process lifetime.
class Registry {
public:
  static Registry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Coherent copy of every metric (see RegistrySnapshot).
  [[nodiscard]] RegistrySnapshot snapshot() const;

  /// One CSV row per metric:
  /// name,type,value,count,min,max,p50,p95,p99 (histogram `value` = sum).
  void write_csv(std::ostream& os) const;
  /// Human-readable dump of the same data (for STS_METRICS=stderr).
  void write_text(std::ostream& os) const;

private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace sts::obs
