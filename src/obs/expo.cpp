#include "obs/expo.hpp"

#include <cstdio>
#include <ostream>

namespace sts::obs {

namespace {

bool prom_name_char(char c, bool first) noexcept {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_') return true;
  return !first && c >= '0' && c <= '9';
}

// HELP text allows any UTF-8 with '\\' and '\n' escaped; our names are ASCII
// so only those two need care.
std::string help_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string prom_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void header(std::ostream& os, const std::string& prom,
            const std::string& original, const char* type) {
  os << "# HELP " << prom << " sts metric '" << help_escape(original)
     << "'\n# TYPE " << prom << " " << type << "\n";
}

} // namespace

std::string prometheus_name(const std::string& name) {
  std::string out = "sts_";
  for (const char c : name) {
    out += prom_name_char(c, /*first=*/false) ? c : '_';
  }
  return out;
}

void write_prometheus(const RegistrySnapshot& snap, std::ostream& os) {
  for (const auto& c : snap.counters) {
    const std::string prom = prometheus_name(c.name);
    header(os, prom, c.name, "counter");
    os << prom << "_total " << c.value << "\n";
  }
  for (const auto& g : snap.gauges) {
    const std::string prom = prometheus_name(g.name);
    header(os, prom, g.name, "gauge");
    os << prom << " " << g.value << "\n";
    const std::string peak = prom + "_peak";
    header(os, peak, g.name + " (high water)", "gauge");
    os << peak << " " << g.peak << "\n";
  }
  for (const auto& h : snap.histograms) {
    const std::string prom = prometheus_name(h.name);
    header(os, prom, h.name, "summary");
    os << prom << "{quantile=\"0.5\"} " << prom_double(h.data.quantile(0.50))
       << "\n";
    os << prom << "{quantile=\"0.95\"} " << prom_double(h.data.quantile(0.95))
       << "\n";
    os << prom << "{quantile=\"0.99\"} " << prom_double(h.data.quantile(0.99))
       << "\n";
    os << prom << "_sum " << h.data.sum << "\n";
    os << prom << "_count " << h.data.count << "\n";
  }
}

void write_prometheus(std::ostream& os) {
  write_prometheus(Registry::instance().snapshot(), os);
}

} // namespace sts::obs
