#include "obs/profiler.hpp"

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <mutex>
#include <ostream>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "support/env.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace sts::obs::prof {

namespace {

// -- Slot table ------------------------------------------------------------
//
// Fixed array of per-thread state words; a thread claims one slot for life
// (threads are pooled and long-lived in every runtime here). State packing:
//   0                          -> slot unused / thread exited
//   ((rt + 1) << 8) | 0xFF     -> idle, last ran under runtime `rt`
//   ((rt + 1) << 8) | (k + 1)  -> running a task of KernelKind `k`

constexpr int kMaxSlots = 512;
constexpr int kMaxRuntimes = 15;
constexpr std::uint32_t kIdleKind = 0xFF;

struct Slot {
  std::atomic<std::uint32_t> state{0};
};

Slot g_slots[kMaxSlots];
std::atomic<int> g_slot_count{0};
std::atomic<bool> g_sampling{false};

// Runtime-name intern table: TaskMark callers pass string literals; the
// sampler resolves ids back to names without touching the heap.
std::atomic<const char*> g_runtimes[kMaxRuntimes + 1];

std::uint32_t runtime_id(const char* name) noexcept {
  for (int i = 0; i < kMaxRuntimes; ++i) {
    const char* cur = g_runtimes[i].load(std::memory_order_acquire);
    if (cur == nullptr) {
      const char* expected = nullptr;
      if (g_runtimes[i].compare_exchange_strong(expected, name,
                                                std::memory_order_acq_rel)) {
        return static_cast<std::uint32_t>(i);
      }
      cur = g_runtimes[i].load(std::memory_order_acquire);
    }
    if (cur == name || std::strcmp(cur, name) == 0) {
      return static_cast<std::uint32_t>(i);
    }
  }
  return kMaxRuntimes; // overflow bucket, rendered as "(other)"
}

const char* runtime_name(std::uint32_t id) noexcept {
  if (id >= kMaxRuntimes) return "(other)";
  const char* name = g_runtimes[id].load(std::memory_order_acquire);
  return name != nullptr ? name : "(other)";
}

constexpr std::uint32_t pack(std::uint32_t rt, std::uint32_t kind_byte) {
  return ((rt + 1) << 8) | kind_byte;
}

thread_local int t_slot = -1;

// Zero the slot when the owning thread exits so the sampler stops counting
// a dead thread as idle. Slot indices are not reused.
struct SlotReleaser {
  ~SlotReleaser() {
    if (t_slot >= 0) g_slots[t_slot].state.store(0, std::memory_order_relaxed);
  }
};

std::atomic<std::uint32_t>* claim_slot() noexcept {
  if (t_slot < 0) {
    const int n = g_slot_count.fetch_add(1, std::memory_order_relaxed);
    if (n >= kMaxSlots) return nullptr; // over capacity: thread unsampled
    t_slot = n;
    static thread_local SlotReleaser releaser;
    (void)releaser;
  }
  return &g_slots[t_slot].state;
}

// -- Sampler ---------------------------------------------------------------

struct Sampler {
  std::mutex mutex; // guards ticks/total against write_folded/reset
  std::map<std::uint32_t, std::uint64_t> ticks;
  std::uint64_t total = 0;
  std::thread thread;
};

Sampler& sampler() {
  static Sampler s;
  return s;
}

void sampler_loop(std::chrono::nanoseconds period) {
  Sampler& s = sampler();
  while (g_sampling.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(period);
    const int slots = std::min(g_slot_count.load(std::memory_order_relaxed),
                               kMaxSlots);
    std::uint32_t seen[kMaxSlots];
    int n = 0;
    for (int i = 0; i < slots; ++i) {
      const std::uint32_t v = g_slots[i].state.load(std::memory_order_relaxed);
      if (v != 0) seen[n++] = v;
    }
    if (n == 0) continue;
    const std::lock_guard<std::mutex> lock(s.mutex);
    for (int i = 0; i < n; ++i) ++s.ticks[seen[i]];
    ++s.total;
  }
}

std::string state_name(std::uint32_t state) {
  const std::uint32_t rt = (state >> 8) - 1;
  const std::uint32_t kind_byte = state & 0xFF;
  std::string name = runtime_name(rt);
  name += ';';
  if (kind_byte == kIdleKind) {
    name += "(idle)";
  } else {
    name += graph::to_string(static_cast<graph::KernelKind>(kind_byte - 1));
  }
  return name;
}

// -- perf_event ------------------------------------------------------------

#if defined(__linux__)

struct PerfThreadState {
  int fds[3] = {-1, -1, -1};
  bool attempted = false;

  ~PerfThreadState() {
    for (const int fd : fds) {
      if (fd >= 0) ::close(fd);
    }
  }

  static int open_event(std::uint64_t config) noexcept {
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.type = PERF_TYPE_HARDWARE;
    attr.size = sizeof(attr);
    attr.config = config;
    attr.disabled = 0;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    // pid=0, cpu=-1: this thread, any CPU.
    const long fd = ::syscall(__NR_perf_event_open, &attr, 0, -1, -1, 0UL);
    return fd < 0 ? -1 : static_cast<int>(fd);
  }

  void ensure_open() noexcept {
    if (attempted) return;
    attempted = true;
    if (support::env_int("STS_HW_COUNTERS", 1) == 0) return;
    // Open individually, not as a group: a PMU that lacks one event (common
    // for LLC misses in VMs) should not take the others down with it.
    fds[0] = open_event(PERF_COUNT_HW_CPU_CYCLES);
    fds[1] = open_event(PERF_COUNT_HW_INSTRUCTIONS);
    fds[2] = open_event(PERF_COUNT_HW_CACHE_MISSES);
    static std::atomic<bool> reported{false};
    if (!reported.exchange(true, std::memory_order_relaxed)) {
      gauge("obs.hw_counters").observe(fds[0] >= 0 || fds[1] >= 0 ? 1 : 0);
    }
  }

  std::int64_t read_fd(int i) const noexcept {
    if (fds[i] < 0) return -1;
    std::uint64_t v = 0;
    if (::read(fds[i], &v, sizeof(v)) != sizeof(v)) return -1;
    return static_cast<std::int64_t>(v);
  }
};

PerfThreadState& perf_state() noexcept {
  static thread_local PerfThreadState state;
  state.ensure_open();
  return state;
}

#endif // __linux__

} // namespace

// -- Marks -----------------------------------------------------------------

bool sampling_active() noexcept {
  return g_sampling.load(std::memory_order_relaxed);
}

TaskMark::TaskMark(const char* runtime, graph::KernelKind kind) noexcept {
  if (!sampling_active()) return;
  std::atomic<std::uint32_t>* slot = claim_slot();
  if (slot == nullptr) return;
  slot_ = slot;
  prev_ = slot->load(std::memory_order_relaxed);
  slot->store(pack(runtime_id(runtime),
                   static_cast<std::uint32_t>(kind) + 1),
              std::memory_order_relaxed);
}

TaskMark::~TaskMark() {
  if (slot_ == nullptr) return;
  auto* slot = static_cast<std::atomic<std::uint32_t>*>(slot_);
  const std::uint32_t cur = slot->load(std::memory_order_relaxed);
  // Outermost mark: fall back to idle under the same runtime rather than 0,
  // so a pooled worker between tasks still attributes its idle time.
  slot->store(prev_ != 0 ? prev_ : (cur & ~0xFFu) | kIdleKind,
              std::memory_order_relaxed);
}

void region_begin(const char* runtime, graph::KernelKind kind) noexcept {
  if (!sampling_active()) return;
  std::atomic<std::uint32_t>* slot = claim_slot();
  if (slot == nullptr) return;
  slot->store(pack(runtime_id(runtime),
                   static_cast<std::uint32_t>(kind) + 1),
              std::memory_order_relaxed);
}

void region_end() noexcept {
  if (t_slot < 0) return;
  std::atomic<std::uint32_t>& slot = g_slots[t_slot].state;
  const std::uint32_t cur = slot.load(std::memory_order_relaxed);
  if (cur != 0) {
    slot.store((cur & ~0xFFu) | kIdleKind, std::memory_order_relaxed);
  }
}

// -- Sampler control -------------------------------------------------------

void start_sampling(double hz) {
  Sampler& s = sampler();
  if (g_sampling.exchange(true, std::memory_order_acq_rel)) return;
  if (hz <= 0.0) hz = support::env_double("STS_PROF_HZ", 497.0);
  if (hz <= 0.0 || hz > 100000.0) hz = 497.0;
  const auto period = std::chrono::nanoseconds(
      static_cast<std::int64_t>(1e9 / hz));
  s.thread = std::thread(sampler_loop, period);
}

void stop_sampling() noexcept {
  Sampler& s = sampler();
  if (!g_sampling.exchange(false, std::memory_order_acq_rel)) return;
  try {
    if (s.thread.joinable()) s.thread.join();
  } catch (...) {
  }
}

void reset_samples() {
  Sampler& s = sampler();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.ticks.clear();
  s.total = 0;
}

std::uint64_t sample_count() noexcept {
  Sampler& s = sampler();
  const std::lock_guard<std::mutex> lock(s.mutex);
  return s.total;
}

void write_folded(std::ostream& os) {
  Sampler& s = sampler();
  std::map<std::string, std::uint64_t> rows;
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    for (const auto& [state, n] : s.ticks) rows[state_name(state)] += n;
  }
  for (const auto& [name, n] : rows) os << name << " " << n << "\n";
}

// -- Hardware counters -----------------------------------------------------

HwCounts hw_delta(const HwCounts& end, const HwCounts& begin) noexcept {
  HwCounts d;
  if (end.cycles >= 0 && begin.cycles >= 0) d.cycles = end.cycles - begin.cycles;
  if (end.instructions >= 0 && begin.instructions >= 0) {
    d.instructions = end.instructions - begin.instructions;
  }
  if (end.cache_misses >= 0 && begin.cache_misses >= 0) {
    d.cache_misses = end.cache_misses - begin.cache_misses;
  }
  return d;
}

#if defined(__linux__)

bool hw_counters_available() noexcept {
  const PerfThreadState& s = perf_state();
  return s.fds[0] >= 0 || s.fds[1] >= 0 || s.fds[2] >= 0;
}

HwCounts hw_read() noexcept {
  const PerfThreadState& s = perf_state();
  HwCounts c;
  c.cycles = s.read_fd(0);
  c.instructions = s.read_fd(1);
  c.cache_misses = s.read_fd(2);
  return c;
}

#else

bool hw_counters_available() noexcept { return false; }
HwCounts hw_read() noexcept { return {}; }

#endif

} // namespace sts::obs::prof
