// Unified telemetry layer: activation, the shared task-event stream, and
// the instrumentation primitives used by the runtimes and solvers.
//
// Activation is environment- or CLI-driven:
//
//   STS_TRACE=<file.json>        buffer a Chrome trace, write it at exit
//   STS_METRICS=stderr|<f.csv>   dump the metrics registry at exit
//   STS_PROF=<file.folded>       sample workers, write folded stacks at exit
//   stsolve --trace=f --metrics=f --prof=f   same, per invocation
//
// and near-zero-cost when off: every instrumentation site gates on one
// relaxed atomic load before touching a clock or allocating. Enabling
// tracing buffers events in memory (~150 bytes/event) until flush().
//
// All task execution — flux tasks, ds OpenMP tasks, rgt region tasks, and
// BSP parallel-for regions — funnels through publish_task(), which fans a
// single perf::TaskEvent out to (a) the caller's perf::TraceRecorder (the
// fig10/fig13 flow-graph path), (b) the Chrome trace sink, and (c) the
// per-runtime/per-kernel latency histograms. The TraceRecorder is thus one
// consumer of the same stream the always-on telemetry uses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/tdg.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "perf/trace.hpp"

namespace sts::obs {

// -- Activation ------------------------------------------------------------

[[nodiscard]] bool tracing_enabled() noexcept;
[[nodiscard]] bool metrics_enabled() noexcept;
/// True when either sink wants per-task timestamps (gate for clock reads).
[[nodiscard]] bool task_timing_enabled() noexcept;

/// Starts buffering trace events; `path` is where flush() writes the JSON
/// (empty = buffer only, for tests that export via write_trace_json()).
/// Clears any previously buffered events.
void enable_tracing(const std::string& path);

/// Starts metrics collection; `dest` is where flush() dumps the registry:
/// "stderr" for the text form, anything else a CSV path (empty = collect
/// only).
void enable_metrics(const std::string& dest);

/// Starts the sampling profiler (obs/profiler.hpp); `path` is where flush()
/// writes the folded stacks (empty = sample only, export via
/// prof::write_folded()).
void enable_profiling(const std::string& path);

/// Stops both collectors (buffers and registry contents are kept).
void disable() noexcept;

/// Writes the configured sinks (trace JSON to its path, metrics to stderr
/// or CSV), then disables collection. Registered via atexit on first
/// activation, so an early exit — including a fault-injected failure —
/// still produces the dumps; an explicit earlier call makes the atexit one
/// a no-op.
void flush() noexcept;

/// Export without disabling (test/inspection path).
void write_trace_json(std::ostream& os);
void write_metrics_csv(std::ostream& os);

// -- Metrics handles -------------------------------------------------------
// Lookup is mutex-protected; call sites cache the returned reference in a
// function-local static. Counters/gauges/histograms accumulate for the
// process lifetime (no reset — cached references must stay valid).

Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name);

// -- Per-job trace capture -------------------------------------------------
// stsd's live-trace path: while a job trace is open, every span/instant/
// publish_task event is also buffered in a byte-bounded ring tagged with
// the job id (obs::JobTraceRing), independent of STS_TRACE. The service
// opens the window around each job's execution on its single executor, so
// worker-thread events inside the window belong to that job.

/// Byte budget for the ring; 0 disables capture (then begin_job_trace is a
/// no-op window).
void set_job_trace_capacity(std::size_t bytes) noexcept;

/// Opens the capture window for `job` (> 0). `trace_id` is the
/// client-supplied correlation id recorded in the exported JSON.
void begin_job_trace(std::uint64_t job, const std::string& trace_id) noexcept;

/// Closes the capture window.
void end_job_trace() noexcept;

/// True while a capture window is open (gate for clock reads, like
/// task_timing_enabled()).
[[nodiscard]] bool job_trace_active() noexcept;

/// Chrome trace JSON for one captured job; false when nothing is buffered
/// for it (never captured, or evicted by the byte budget).
bool write_job_trace_json(std::uint64_t job, std::ostream& os);

/// Drops every buffered job trace. A fresh stsd service calls this so a
/// previous instance's slices (whose job-id space it is about to reuse)
/// cannot bleed into its own exports.
void clear_job_traces() noexcept;

// -- Event stream ----------------------------------------------------------

/// Publishes one executed task: records into `recorder` when non-null
/// (regardless of activation), and — when enabled — emits a Chrome span on
/// the calling thread's track (category = kernel kind) and feeds the
/// `<runtime>.task_ns.<kernel>` histogram. Never throws.
void publish_task(const char* runtime, const perf::TaskEvent& event,
                  perf::TraceRecorder* recorder) noexcept;

/// Emits a span on the calling thread's track when tracing. `args` must be
/// a pre-rendered JSON object ("{...}") or empty. Never throws.
void span(const std::string& name, const std::string& cat,
          std::int64_t start_ns, std::int64_t end_ns,
          const std::string& args = {}) noexcept;

/// Emits an instant event (fault fired, task cancelled, watchdog tripped)
/// on the calling thread's track when tracing. Never throws.
void instant(const std::string& name, const std::string& cat,
             const std::string& args = {}) noexcept;

// -- Structured helpers ----------------------------------------------------

/// Times the per-thread portions of one BSP parallel region and publishes
/// (a) one span per participating thread via publish_task and (b) the
/// barrier imbalance max(thread time) - min(thread time) into
/// `<runtime>.imbalance_ns.<kernel>`. Intended use:
///
///   RegionTimer region("bsp", kind, omp_get_max_threads());
///   #pragma omp parallel
///   {
///     region.thread_begin(omp_get_thread_num());
///     #pragma omp for nowait
///     ...
///     region.thread_end(omp_get_thread_num());
///   }  // implicit barrier; destructor publishes the imbalance
///
/// When telemetry is off the constructor is one atomic load and the
/// begin/end calls are a branch each.
class RegionTimer {
public:
  RegionTimer(const char* runtime, graph::KernelKind kind, int threads);
  ~RegionTimer();
  RegionTimer(const RegionTimer&) = delete;
  RegionTimer& operator=(const RegionTimer&) = delete;

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  void thread_begin(int tid) noexcept;
  void thread_end(int tid) noexcept;

private:
  const char* runtime_;
  graph::KernelKind kind_;
  bool enabled_;
  std::vector<std::int64_t> begin_ns_;
  std::vector<std::int64_t> end_ns_;
};

/// Scopes one solver iteration: emits a `iter[n]` span (category =
/// `label`), feeds `<label>.iter_ns`, and bumps `<label>.iterations`.
/// Up to four named values (beta, residual, ...) attach as span args, so
/// the per-iteration convergence history is readable off the trace. When
/// the kernel permits perf_event counters (see obs/profiler.hpp), the
/// iteration's cycles / instructions / LLC misses attach as span args and
/// feed `<label>.iter_{cycles,instructions,cache_misses}` histograms — the
/// paper's cache-efficiency lens on live runs.
class IterScope {
public:
  IterScope(const char* label, int iteration) noexcept;
  ~IterScope();
  IterScope(const IterScope&) = delete;
  IterScope& operator=(const IterScope&) = delete;

  [[nodiscard]] bool enabled() const noexcept { return start_ns_ != 0; }
  void metric(const char* name, double value) noexcept;

private:
  const char* label_;
  int iteration_;
  std::int64_t start_ns_ = 0;
  int values_ = 0;
  const char* names_[4] = {};
  double data_[4] = {};
  prof::HwCounts hw_begin_;
};

} // namespace sts::obs
