#include "obs/trace_sink.hpp"

#include <cstdio>
#include <limits>
#include <ostream>

#include "support/escape.hpp"

namespace sts::obs {

TraceSink& TraceSink::instance() {
  static TraceSink s;
  return s;
}

TraceSink::Lane& TraceSink::lane_for_this_thread() {
  // One process-wide sink, so a function-local thread_local cache is enough.
  static thread_local Lane* cached = nullptr;
  if (cached != nullptr) return *cached;
  const std::lock_guard<std::mutex> lock(mutex_);
  lanes_.push_back(std::make_unique<Lane>());
  cached = lanes_.back().get();
  return *cached;
}

void TraceSink::push(TraceEvent event) {
  Lane& lane = lane_for_this_thread();
  const std::lock_guard<std::mutex> lock(lane.mutex);
  lane.events.push_back(std::move(event));
}

void TraceSink::name_current_lane(const std::string& name) {
  if (name.empty()) return;
  Lane& lane = lane_for_this_thread();
  const std::lock_guard<std::mutex> lock(lane.mutex);
  if (lane.name.empty()) lane.name = name;
}

void TraceSink::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& lane : lanes_) {
    const std::lock_guard<std::mutex> lane_lock(lane->mutex);
    lane->events.clear();
  }
}

std::size_t TraceSink::event_count() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (auto& lane : lanes_) {
    const std::lock_guard<std::mutex> lane_lock(lane->mutex);
    n += lane->events.size();
  }
  return n;
}

void TraceSink::write_json(std::ostream& os) {
  const std::lock_guard<std::mutex> lock(mutex_);

  // Rebase timestamps so the trace starts at t=0 regardless of clock epoch.
  std::int64_t base = std::numeric_limits<std::int64_t>::max();
  for (auto& lane : lanes_) {
    const std::lock_guard<std::mutex> lane_lock(lane->mutex);
    for (const TraceEvent& e : lane->events) {
      if (e.ts_ns < base) base = e.ts_ns;
    }
  }
  if (base == std::numeric_limits<std::int64_t>::max()) base = 0;

  auto emit_us = [&os](std::int64_t ns) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                  static_cast<long long>(ns / 1000),
                  static_cast<long long>(ns % 1000));
    os << buf;
  };

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  for (std::size_t tid = 0; tid < lanes_.size(); ++tid) {
    Lane& lane = *lanes_[tid];
    const std::lock_guard<std::mutex> lane_lock(lane.mutex);
    sep();
    os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":" << tid
       << ",\"args\":{\"name\":\""
       << support::json_escape(lane.name.empty() ? "lane" + std::to_string(tid)
                                                 : lane.name)
       << "\"}}";
    for (const TraceEvent& e : lane.events) {
      sep();
      os << "{\"name\":\"" << support::json_escape(e.name) << "\",\"cat\":\""
         << support::json_escape(e.cat) << "\",\"ph\":\"" << e.ph
         << "\",\"pid\":1,\"tid\":" << tid << ",\"ts\":";
      emit_us(e.ts_ns - base);
      if (e.ph == 'X') {
        os << ",\"dur\":";
        emit_us(e.dur_ns);
      } else if (e.ph == 'i') {
        os << ",\"s\":\"t\"";
      }
      if (!e.args.empty()) os << ",\"args\":" << e.args;
      os << "}";
    }
  }
  os << "\n]}\n";
}

} // namespace sts::obs
