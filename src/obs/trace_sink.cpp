#include "obs/trace_sink.hpp"

#include <cstdio>
#include <limits>
#include <ostream>

#include "support/escape.hpp"

namespace sts::obs {

namespace {

void emit_us(std::ostream& os, std::int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  os << buf;
}

void emit_event(std::ostream& os, const TraceEvent& e, std::uint32_t tid,
                std::int64_t base) {
  os << "{\"name\":\"" << support::json_escape(e.name) << "\",\"cat\":\""
     << support::json_escape(e.cat) << "\",\"ph\":\"" << e.ph
     << "\",\"pid\":1,\"tid\":" << tid << ",\"ts\":";
  emit_us(os, e.ts_ns - base);
  if (e.ph == 'X') {
    os << ",\"dur\":";
    emit_us(os, e.dur_ns);
  } else if (e.ph == 'i') {
    os << ",\"s\":\"t\"";
  }
  if (!e.args.empty()) os << ",\"args\":" << e.args;
  os << "}";
}

void emit_thread_name(std::ostream& os, std::uint32_t tid,
                      const std::string& name) {
  os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":" << tid
     << ",\"args\":{\"name\":\"" << support::json_escape(name) << "\"}}";
}

} // namespace

TraceSink& TraceSink::instance() {
  static TraceSink s;
  return s;
}

TraceSink::Lane& TraceSink::lane_for_this_thread() {
  // One process-wide sink, so a function-local thread_local cache is enough.
  static thread_local Lane* cached = nullptr;
  if (cached != nullptr) return *cached;
  const std::lock_guard<std::mutex> lock(mutex_);
  lanes_.push_back(std::make_unique<Lane>());
  cached = lanes_.back().get();
  cached->id = static_cast<std::uint32_t>(lanes_.size() - 1);
  return *cached;
}

void TraceSink::push(TraceEvent event) {
  Lane& lane = lane_for_this_thread();
  const std::lock_guard<std::mutex> lock(lane.mutex);
  lane.events.push_back(std::move(event));
}

void TraceSink::name_current_lane(const std::string& name) {
  if (name.empty()) return;
  Lane& lane = lane_for_this_thread();
  const std::lock_guard<std::mutex> lock(lane.mutex);
  if (lane.name.empty()) lane.name = name;
}

std::uint32_t TraceSink::current_lane_id() {
  return lane_for_this_thread().id;
}

std::string TraceSink::lane_name(std::uint32_t id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (id < lanes_.size()) {
    Lane& lane = *lanes_[id];
    const std::lock_guard<std::mutex> lane_lock(lane.mutex);
    if (!lane.name.empty()) return lane.name;
  }
  return "lane" + std::to_string(id);
}

void TraceSink::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& lane : lanes_) {
    const std::lock_guard<std::mutex> lane_lock(lane->mutex);
    lane->events.clear();
  }
}

std::size_t TraceSink::event_count() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (auto& lane : lanes_) {
    const std::lock_guard<std::mutex> lane_lock(lane->mutex);
    n += lane->events.size();
  }
  return n;
}

void TraceSink::write_json(std::ostream& os) {
  const std::lock_guard<std::mutex> lock(mutex_);

  // Rebase timestamps so the trace starts at t=0 regardless of clock epoch.
  std::int64_t base = std::numeric_limits<std::int64_t>::max();
  for (auto& lane : lanes_) {
    const std::lock_guard<std::mutex> lane_lock(lane->mutex);
    for (const TraceEvent& e : lane->events) {
      if (e.ts_ns < base) base = e.ts_ns;
    }
  }
  if (base == std::numeric_limits<std::int64_t>::max()) base = 0;

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  for (std::size_t tid = 0; tid < lanes_.size(); ++tid) {
    Lane& lane = *lanes_[tid];
    const std::lock_guard<std::mutex> lane_lock(lane.mutex);
    sep();
    emit_thread_name(os, static_cast<std::uint32_t>(tid),
                     lane.name.empty() ? "lane" + std::to_string(tid)
                                       : lane.name);
    for (const TraceEvent& e : lane.events) {
      sep();
      emit_event(os, e, static_cast<std::uint32_t>(tid), base);
    }
  }
  os << "\n]}\n";
}

// -- JobTraceRing ----------------------------------------------------------

JobTraceRing& JobTraceRing::instance() {
  static JobTraceRing r;
  return r;
}

void JobTraceRing::set_capacity(std::size_t bytes) {
  const std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = bytes;
  trim_locked();
}

std::size_t JobTraceRing::capacity() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

void JobTraceRing::begin_job(std::uint64_t job, std::string trace_id) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    jobs_[job].trace_id = std::move(trace_id);
  }
  current_.store(job, std::memory_order_release);
}

void JobTraceRing::end_job() noexcept {
  current_.store(0, std::memory_order_release);
}

std::uint64_t JobTraceRing::active_job() const noexcept {
  return current_.load(std::memory_order_acquire);
}

void JobTraceRing::push(TraceEvent event) {
  const std::uint64_t job = active_job();
  if (job == 0) return;
  const std::uint32_t lane = TraceSink::instance().current_lane_id();
  const std::size_t cost = sizeof(Entry) + event.name.size() +
                           event.cat.size() + event.args.size();
  const std::lock_guard<std::mutex> lock(mutex_);
  if (capacity_ == 0) return;
  // A begin_job may have raced a trailing push from a previous job between
  // the active_job() read and taking the lock; attribute by the id we read.
  auto it = jobs_.find(job);
  if (it == jobs_.end()) return; // job record already evicted
  events_.push_back(Entry{job, lane, std::move(event)});
  ++it->second.events;
  bytes_ += cost;
  trim_locked();
}

void JobTraceRing::trim_locked() {
  while (bytes_ > capacity_ && !events_.empty()) {
    const Entry& e = events_.front();
    bytes_ -= sizeof(Entry) + e.event.name.size() + e.event.cat.size() +
              e.event.args.size();
    ++dropped_;
    auto it = jobs_.find(e.job);
    if (it != jobs_.end() && --it->second.events == 0 &&
        e.job != active_job()) {
      jobs_.erase(it);
    }
    events_.pop_front();
  }
}

bool JobTraceRing::write_job_json(std::uint64_t job, std::ostream& os) {
  // Copy the job's slice out under the lock, render outside it.
  std::vector<Entry> slice;
  std::string trace_id;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const Entry& e : events_) {
      if (e.job == job) slice.push_back(e);
    }
    const auto it = jobs_.find(job);
    if (it != jobs_.end()) trace_id = it->second.trace_id;
  }
  if (slice.empty()) return false;

  std::int64_t base = std::numeric_limits<std::int64_t>::max();
  std::map<std::uint32_t, std::string> lanes;
  for (const Entry& e : slice) {
    if (e.event.ts_ns < base) base = e.event.ts_ns;
    lanes.emplace(e.lane, std::string());
  }
  TraceSink& sink = TraceSink::instance();
  for (auto& [id, name] : lanes) name = sink.lane_name(id);

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  sep();
  os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"args\":"
        "{\"name\":\"stsd job "
     << job << " trace " << support::json_escape(trace_id) << "\"}}";
  for (const auto& [id, name] : lanes) {
    sep();
    emit_thread_name(os, id, name);
  }
  for (const Entry& e : slice) {
    sep();
    emit_event(os, e.event, e.lane, base);
  }
  os << "\n]}\n";
  return true;
}

std::size_t JobTraceRing::bytes() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

std::uint64_t JobTraceRing::dropped() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void JobTraceRing::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  jobs_.clear();
  bytes_ = 0;
  dropped_ = 0;
}

} // namespace sts::obs

