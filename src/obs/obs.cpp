#include "obs/obs.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <mutex>

#include "obs/trace_sink.hpp"
#include "support/env.hpp"
#include "support/escape.hpp"
#include "support/fault.hpp"
#include "support/timer.hpp"

namespace sts::obs {

namespace {

constexpr int kTraceBit = 1;
constexpr int kMetricsBit = 2;

// -1 = not yet initialized from the environment; >= 0 = active bit set.
std::atomic<int> g_flags{-1};
std::mutex g_config_mutex;
std::string g_trace_path;   // guarded by g_config_mutex
std::string g_metrics_dest; // guarded by g_config_mutex
bool g_atexit_registered = false;

std::string json_number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Fault observer: counts the fire and pins it to the firing thread's track
/// so trace instants correlate with the STS_FAULT site that caused them.
void on_fault_fired(const support::fault::Spec& spec, std::uint64_t visit) {
  static Counter& fired = counter("faults.injected");
  fired.add(1);
  instant("fault:" + spec.site, "fault",
          "{\"site\":\"" + support::json_escape(spec.site) +
              "\",\"kind\":\"" + support::fault::to_string(spec.kind) +
              "\",\"visit\":" + std::to_string(visit) + "}");
}

int init_flags() {
  std::lock_guard<std::mutex> lock(g_config_mutex);
  int f = g_flags.load(std::memory_order_acquire);
  if (f >= 0) return f;
  // Touch the singletons before registering the atexit hook so they are
  // destroyed after the final flush runs.
  Registry::instance();
  TraceSink::instance();
  f = 0;
  const std::string trace = support::env_string("STS_TRACE", "");
  if (!trace.empty()) {
    g_trace_path = trace;
    f |= kTraceBit;
  }
  const std::string metrics = support::env_string("STS_METRICS", "");
  if (!metrics.empty()) {
    g_metrics_dest = metrics;
    f |= kMetricsBit;
  }
  support::fault::set_observer(&on_fault_fired);
  if (!g_atexit_registered) {
    std::atexit([] { flush(); });
    g_atexit_registered = true;
  }
  g_flags.store(f, std::memory_order_release);
  return f;
}

int flags() noexcept {
  const int f = g_flags.load(std::memory_order_acquire);
  if (f >= 0) return f;
  try {
    return init_flags();
  } catch (...) {
    return 0;
  }
}

} // namespace

bool tracing_enabled() noexcept { return (flags() & kTraceBit) != 0; }
bool metrics_enabled() noexcept { return (flags() & kMetricsBit) != 0; }
bool task_timing_enabled() noexcept { return flags() != 0; }

void enable_tracing(const std::string& path) {
  flags(); // force init so the atexit hook and fault observer are in place
  TraceSink::instance().reset();
  {
    std::lock_guard<std::mutex> lock(g_config_mutex);
    g_trace_path = path;
  }
  g_flags.fetch_or(kTraceBit, std::memory_order_acq_rel);
}

void enable_metrics(const std::string& dest) {
  flags();
  {
    std::lock_guard<std::mutex> lock(g_config_mutex);
    g_metrics_dest = dest;
  }
  g_flags.fetch_or(kMetricsBit, std::memory_order_acq_rel);
}

void disable() noexcept {
  if (g_flags.load(std::memory_order_acquire) > 0) {
    g_flags.fetch_and(0, std::memory_order_acq_rel);
  }
}

void flush() noexcept {
  const int f = flags();
  if (f == 0) return;
  try {
    std::string trace_path;
    std::string metrics_dest;
    {
      std::lock_guard<std::mutex> lock(g_config_mutex);
      trace_path = g_trace_path;
      metrics_dest = g_metrics_dest;
    }
    if ((f & kTraceBit) != 0 && !trace_path.empty()) {
      std::ofstream os(trace_path);
      if (os) {
        TraceSink::instance().write_json(os);
      } else {
        std::fprintf(stderr, "obs: cannot write trace to '%s'\n",
                     trace_path.c_str());
      }
    }
    if ((f & kMetricsBit) != 0 && !metrics_dest.empty()) {
      if (metrics_dest == "stderr") {
        Registry::instance().write_text(std::cerr);
      } else {
        std::ofstream os(metrics_dest);
        if (os) {
          Registry::instance().write_csv(os);
        } else {
          std::fprintf(stderr, "obs: cannot write metrics to '%s'\n",
                       metrics_dest.c_str());
        }
      }
    }
  } catch (...) {
    // A failed dump must not take the process down during exit.
  }
  disable();
}

void write_trace_json(std::ostream& os) { TraceSink::instance().write_json(os); }

void write_metrics_csv(std::ostream& os) {
  Registry::instance().write_csv(os);
}

Counter& counter(const std::string& name) {
  return Registry::instance().counter(name);
}

Gauge& gauge(const std::string& name) {
  return Registry::instance().gauge(name);
}

Histogram& histogram(const std::string& name) {
  return Registry::instance().histogram(name);
}

void publish_task(const char* runtime, const perf::TaskEvent& event,
                  perf::TraceRecorder* recorder) noexcept {
  try {
    if (recorder != nullptr) {
      recorder->record(
          event.worker < 0 ? 0u : static_cast<unsigned>(event.worker), event);
    }
    const int f = flags();
    if (f == 0) return;
    const char* kernel = graph::to_string(event.kind);
    if ((f & kTraceBit) != 0) {
      TraceSink& sink = TraceSink::instance();
      sink.name_current_lane(std::string(runtime) + "/w" +
                             std::to_string(event.worker));
      sink.push(TraceEvent{kernel, kernel, 'X', event.start_ns,
                           event.end_ns - event.start_ns,
                           "{\"task_id\":" + std::to_string(event.task_id) +
                               "}"});
    }
    if ((f & kMetricsBit) != 0) {
      histogram(std::string(runtime) + ".task_ns." + kernel)
          .observe(event.end_ns - event.start_ns);
    }
  } catch (...) {
  }
}

void span(const std::string& name, const std::string& cat,
          std::int64_t start_ns, std::int64_t end_ns,
          const std::string& args) noexcept {
  if (!tracing_enabled()) return;
  try {
    TraceSink::instance().push(
        TraceEvent{name, cat, 'X', start_ns, end_ns - start_ns, args});
  } catch (...) {
  }
}

void instant(const std::string& name, const std::string& cat,
             const std::string& args) noexcept {
  if (!tracing_enabled()) return;
  try {
    TraceSink::instance().push(
        TraceEvent{name, cat, 'i', support::now_ns(), 0, args});
  } catch (...) {
  }
}

RegionTimer::RegionTimer(const char* runtime, graph::KernelKind kind,
                         int threads)
    : runtime_(runtime), kind_(kind), enabled_(task_timing_enabled()) {
  if (!enabled_) return;
  const std::size_t n = threads > 0 ? static_cast<std::size_t>(threads) : 1;
  begin_ns_.assign(n, 0);
  end_ns_.assign(n, 0);
}

void RegionTimer::thread_begin(int tid) noexcept {
  if (!enabled_ || tid < 0 ||
      static_cast<std::size_t>(tid) >= begin_ns_.size()) {
    return;
  }
  begin_ns_[static_cast<std::size_t>(tid)] = support::now_ns();
}

void RegionTimer::thread_end(int tid) noexcept {
  if (!enabled_ || tid < 0 ||
      static_cast<std::size_t>(tid) >= end_ns_.size()) {
    return;
  }
  const std::size_t i = static_cast<std::size_t>(tid);
  if (begin_ns_[i] == 0) return;
  end_ns_[i] = support::now_ns();
  perf::TaskEvent ev;
  ev.kind = kind_;
  ev.worker = tid;
  ev.start_ns = begin_ns_[i];
  ev.end_ns = end_ns_[i];
  publish_task(runtime_, ev, nullptr);
}

RegionTimer::~RegionTimer() {
  if (!enabled_) return;
  try {
    std::int64_t lo = std::numeric_limits<std::int64_t>::max();
    std::int64_t hi = 0;
    int participants = 0;
    for (std::size_t i = 0; i < begin_ns_.size(); ++i) {
      if (end_ns_[i] == 0) continue;
      const std::int64_t busy = end_ns_[i] - begin_ns_[i];
      lo = std::min(lo, busy);
      hi = std::max(hi, busy);
      ++participants;
    }
    if (participants > 0 && metrics_enabled()) {
      histogram(std::string(runtime_) + ".imbalance_ns." +
                graph::to_string(kind_))
          .observe(participants > 1 ? hi - lo : 0);
    }
  } catch (...) {
  }
}

IterScope::IterScope(const char* label, int iteration) noexcept
    : label_(label), iteration_(iteration) {
  if (task_timing_enabled()) start_ns_ = support::now_ns();
}

void IterScope::metric(const char* name, double value) noexcept {
  if (!enabled() || values_ >= 4) return;
  names_[values_] = name;
  data_[values_] = value;
  ++values_;
}

IterScope::~IterScope() {
  if (!enabled()) return;
  try {
    const std::int64_t end = support::now_ns();
    const int f = flags();
    if ((f & kTraceBit) != 0) {
      std::string args;
      for (int i = 0; i < values_; ++i) {
        args += args.empty() ? "{\"" : ",\"";
        args += support::json_escape(names_[i]);
        args += "\":";
        args += json_number(data_[i]);
      }
      if (!args.empty()) args += "}";
      span("iter[" + std::to_string(iteration_) + "]", label_, start_ns_, end,
           args);
    }
    if ((f & kMetricsBit) != 0) {
      const std::string label(label_);
      histogram(label + ".iter_ns").observe(end - start_ns_);
      counter(label + ".iterations").add(1);
    }
  } catch (...) {
  }
}

} // namespace sts::obs
