#include "obs/obs.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <mutex>

#include "obs/trace_sink.hpp"
#include "support/env.hpp"
#include "support/escape.hpp"
#include "support/fault.hpp"
#include "support/timer.hpp"

namespace sts::obs {

namespace {

constexpr int kTraceBit = 1;
constexpr int kMetricsBit = 2;

// -1 = not yet initialized from the environment; >= 0 = active bit set.
std::atomic<int> g_flags{-1};
// Fast gate for the per-job capture window (mirrors JobTraceRing's active
// job) so span()/instant() stay one relaxed load when everything is off.
std::atomic<bool> g_job_capture{false};
std::mutex g_config_mutex;
std::string g_trace_path;   // guarded by g_config_mutex
std::string g_metrics_dest; // guarded by g_config_mutex
std::string g_prof_path;    // guarded by g_config_mutex
bool g_atexit_registered = false;

std::string json_number(double v) {
  // JSON has no nan/inf literals; a diverging solve's residual must not
  // corrupt the whole trace document, so render non-finite values as
  // strings.
  if (std::isnan(v)) return "\"nan\"";
  if (std::isinf(v)) return v > 0 ? "\"inf\"" : "\"-inf\"";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Fault observer: counts the fire and pins it to the firing thread's track
/// so trace instants correlate with the STS_FAULT site that caused them.
void on_fault_fired(const support::fault::Spec& spec, std::uint64_t visit) {
  static Counter& fired = counter("faults.injected");
  fired.add(1);
  instant("fault:" + spec.site, "fault",
          "{\"site\":\"" + support::json_escape(spec.site) +
              "\",\"kind\":\"" + support::fault::to_string(spec.kind) +
              "\",\"visit\":" + std::to_string(visit) + "}");
}

int init_flags() {
  std::lock_guard<std::mutex> lock(g_config_mutex);
  int f = g_flags.load(std::memory_order_acquire);
  if (f >= 0) return f;
  // Touch the singletons before registering the atexit hook so they are
  // destroyed after the final flush runs.
  Registry::instance();
  TraceSink::instance();
  f = 0;
  const std::string trace = support::env_string("STS_TRACE", "");
  if (!trace.empty()) {
    g_trace_path = trace;
    f |= kTraceBit;
  }
  const std::string metrics = support::env_string("STS_METRICS", "");
  if (!metrics.empty()) {
    g_metrics_dest = metrics;
    f |= kMetricsBit;
  }
  const std::string prof = support::env_string("STS_PROF", "");
  if (!prof.empty()) {
    g_prof_path = prof;
    prof::start_sampling();
  }
  support::fault::set_observer(&on_fault_fired);
  if (!g_atexit_registered) {
    std::atexit([] { flush(); });
    g_atexit_registered = true;
  }
  g_flags.store(f, std::memory_order_release);
  return f;
}

int flags() noexcept {
  const int f = g_flags.load(std::memory_order_acquire);
  if (f >= 0) return f;
  try {
    return init_flags();
  } catch (...) {
    return 0;
  }
}

} // namespace

bool tracing_enabled() noexcept { return (flags() & kTraceBit) != 0; }
bool metrics_enabled() noexcept { return (flags() & kMetricsBit) != 0; }
bool task_timing_enabled() noexcept {
  return flags() != 0 || job_trace_active();
}

void enable_tracing(const std::string& path) {
  flags(); // force init so the atexit hook and fault observer are in place
  TraceSink::instance().reset();
  {
    std::lock_guard<std::mutex> lock(g_config_mutex);
    g_trace_path = path;
  }
  g_flags.fetch_or(kTraceBit, std::memory_order_acq_rel);
}

void enable_metrics(const std::string& dest) {
  flags();
  {
    std::lock_guard<std::mutex> lock(g_config_mutex);
    g_metrics_dest = dest;
  }
  g_flags.fetch_or(kMetricsBit, std::memory_order_acq_rel);
}

void enable_profiling(const std::string& path) {
  flags(); // force init so the atexit flush is in place
  {
    std::lock_guard<std::mutex> lock(g_config_mutex);
    g_prof_path = path;
  }
  prof::start_sampling();
}

void disable() noexcept {
  if (g_flags.load(std::memory_order_acquire) > 0) {
    g_flags.fetch_and(0, std::memory_order_acq_rel);
  }
  prof::stop_sampling();
}

void flush() noexcept {
  const int f = flags();
  if (f == 0 && !prof::sampling_active()) return;
  try {
    std::string trace_path;
    std::string metrics_dest;
    std::string prof_path;
    {
      std::lock_guard<std::mutex> lock(g_config_mutex);
      trace_path = g_trace_path;
      metrics_dest = g_metrics_dest;
      prof_path = g_prof_path;
    }
    if (prof::sampling_active() && !prof_path.empty()) {
      prof::stop_sampling();
      std::ofstream os(prof_path);
      if (os) {
        prof::write_folded(os);
      } else {
        std::fprintf(stderr, "obs: cannot write profile to '%s'\n",
                     prof_path.c_str());
      }
    }
    if ((f & kTraceBit) != 0 && !trace_path.empty()) {
      std::ofstream os(trace_path);
      if (os) {
        TraceSink::instance().write_json(os);
      } else {
        std::fprintf(stderr, "obs: cannot write trace to '%s'\n",
                     trace_path.c_str());
      }
    }
    if ((f & kMetricsBit) != 0 && !metrics_dest.empty()) {
      if (metrics_dest == "stderr") {
        Registry::instance().write_text(std::cerr);
      } else {
        std::ofstream os(metrics_dest);
        if (os) {
          Registry::instance().write_csv(os);
        } else {
          std::fprintf(stderr, "obs: cannot write metrics to '%s'\n",
                       metrics_dest.c_str());
        }
      }
    }
  } catch (...) {
    // A failed dump must not take the process down during exit.
  }
  disable();
}

void write_trace_json(std::ostream& os) { TraceSink::instance().write_json(os); }

void write_metrics_csv(std::ostream& os) {
  Registry::instance().write_csv(os);
}

Counter& counter(const std::string& name) {
  return Registry::instance().counter(name);
}

Gauge& gauge(const std::string& name) {
  return Registry::instance().gauge(name);
}

Histogram& histogram(const std::string& name) {
  return Registry::instance().histogram(name);
}

void set_job_trace_capacity(std::size_t bytes) noexcept {
  try {
    JobTraceRing::instance().set_capacity(bytes);
  } catch (...) {
  }
}

void begin_job_trace(std::uint64_t job,
                     const std::string& trace_id) noexcept {
  if (job == 0) return;
  try {
    JobTraceRing& ring = JobTraceRing::instance();
    if (ring.capacity() == 0) return;
    ring.begin_job(job, trace_id);
    g_job_capture.store(true, std::memory_order_release);
  } catch (...) {
  }
}

void end_job_trace() noexcept {
  g_job_capture.store(false, std::memory_order_release);
  try {
    JobTraceRing::instance().end_job();
  } catch (...) {
  }
}

bool job_trace_active() noexcept {
  return g_job_capture.load(std::memory_order_relaxed);
}

bool write_job_trace_json(std::uint64_t job, std::ostream& os) {
  return JobTraceRing::instance().write_job_json(job, os);
}

void clear_job_traces() noexcept {
  try {
    JobTraceRing::instance().clear();
  } catch (...) {
  }
}

namespace {

/// Routes one finished event to the enabled trace consumers: the process
/// sink when STS_TRACE is on, the per-job ring while a capture window is
/// open. Callers check at least one is active first.
void emit_trace_event(const TraceEvent& event, bool to_sink,
                      bool to_ring) {
  if (to_sink) TraceSink::instance().push(event);
  if (to_ring) JobTraceRing::instance().push(event);
}

} // namespace

void publish_task(const char* runtime, const perf::TaskEvent& event,
                  perf::TraceRecorder* recorder) noexcept {
  try {
    if (recorder != nullptr) {
      recorder->record(
          event.worker < 0 ? 0u : static_cast<unsigned>(event.worker), event);
    }
    const int f = flags();
    const bool capture = job_trace_active();
    if (f == 0 && !capture) return;
    const char* kernel = graph::to_string(event.kind);
    const bool to_sink = (f & kTraceBit) != 0;
    if (to_sink || capture) {
      TraceSink::instance().name_current_lane(
          std::string(runtime) + "/w" + std::to_string(event.worker));
      emit_trace_event(
          TraceEvent{kernel, kernel, 'X', event.start_ns,
                     event.end_ns - event.start_ns,
                     "{\"task_id\":" + std::to_string(event.task_id) + "}"},
          to_sink, capture);
    }
    if ((f & kMetricsBit) != 0) {
      histogram(std::string(runtime) + ".task_ns." + kernel)
          .observe(event.end_ns - event.start_ns);
    }
  } catch (...) {
  }
}

void span(const std::string& name, const std::string& cat,
          std::int64_t start_ns, std::int64_t end_ns,
          const std::string& args) noexcept {
  const bool to_sink = tracing_enabled();
  const bool capture = job_trace_active();
  if (!to_sink && !capture) return;
  try {
    emit_trace_event(
        TraceEvent{name, cat, 'X', start_ns, end_ns - start_ns, args},
        to_sink, capture);
  } catch (...) {
  }
}

void instant(const std::string& name, const std::string& cat,
             const std::string& args) noexcept {
  const bool to_sink = tracing_enabled();
  const bool capture = job_trace_active();
  if (!to_sink && !capture) return;
  try {
    emit_trace_event(TraceEvent{name, cat, 'i', support::now_ns(), 0, args},
                     to_sink, capture);
  } catch (...) {
  }
}

RegionTimer::RegionTimer(const char* runtime, graph::KernelKind kind,
                         int threads)
    : runtime_(runtime), kind_(kind), enabled_(task_timing_enabled()) {
  if (!enabled_) return;
  const std::size_t n = threads > 0 ? static_cast<std::size_t>(threads) : 1;
  begin_ns_.assign(n, 0);
  end_ns_.assign(n, 0);
}

void RegionTimer::thread_begin(int tid) noexcept {
  prof::region_begin(runtime_, kind_);
  if (!enabled_ || tid < 0 ||
      static_cast<std::size_t>(tid) >= begin_ns_.size()) {
    return;
  }
  begin_ns_[static_cast<std::size_t>(tid)] = support::now_ns();
}

void RegionTimer::thread_end(int tid) noexcept {
  prof::region_end();
  if (!enabled_ || tid < 0 ||
      static_cast<std::size_t>(tid) >= end_ns_.size()) {
    return;
  }
  const std::size_t i = static_cast<std::size_t>(tid);
  if (begin_ns_[i] == 0) return;
  end_ns_[i] = support::now_ns();
  perf::TaskEvent ev;
  ev.kind = kind_;
  ev.worker = tid;
  ev.start_ns = begin_ns_[i];
  ev.end_ns = end_ns_[i];
  publish_task(runtime_, ev, nullptr);
}

RegionTimer::~RegionTimer() {
  if (!enabled_) return;
  try {
    std::int64_t lo = std::numeric_limits<std::int64_t>::max();
    std::int64_t hi = 0;
    int participants = 0;
    for (std::size_t i = 0; i < begin_ns_.size(); ++i) {
      if (end_ns_[i] == 0) continue;
      const std::int64_t busy = end_ns_[i] - begin_ns_[i];
      lo = std::min(lo, busy);
      hi = std::max(hi, busy);
      ++participants;
    }
    if (participants > 0 && metrics_enabled()) {
      histogram(std::string(runtime_) + ".imbalance_ns." +
                graph::to_string(kind_))
          .observe(participants > 1 ? hi - lo : 0);
    }
  } catch (...) {
  }
}

IterScope::IterScope(const char* label, int iteration) noexcept
    : label_(label), iteration_(iteration) {
  if (task_timing_enabled()) {
    start_ns_ = support::now_ns();
    hw_begin_ = prof::hw_read();
  }
}

void IterScope::metric(const char* name, double value) noexcept {
  if (!enabled() || values_ >= 4) return;
  names_[values_] = name;
  data_[values_] = value;
  ++values_;
}

IterScope::~IterScope() {
  if (!enabled()) return;
  try {
    const std::int64_t end = support::now_ns();
    const prof::HwCounts hw = prof::hw_delta(prof::hw_read(), hw_begin_);
    const int f = flags();
    if ((f & kTraceBit) != 0 || job_trace_active()) {
      std::string args;
      auto field = [&args](const char* name, const std::string& value) {
        args += args.empty() ? "{\"" : ",\"";
        args += name;
        args += "\":";
        args += value;
      };
      for (int i = 0; i < values_; ++i) {
        field(support::json_escape(names_[i]).c_str(), json_number(data_[i]));
      }
      if (hw.cycles >= 0) field("cycles", std::to_string(hw.cycles));
      if (hw.instructions >= 0) {
        field("instructions", std::to_string(hw.instructions));
      }
      if (hw.cache_misses >= 0) {
        field("cache_misses", std::to_string(hw.cache_misses));
      }
      if (!args.empty()) args += "}";
      span("iter[" + std::to_string(iteration_) + "]", label_, start_ns_, end,
           args);
    }
    if ((f & kMetricsBit) != 0) {
      const std::string label(label_);
      histogram(label + ".iter_ns").observe(end - start_ns_);
      counter(label + ".iterations").add(1);
      if (hw.cycles >= 0) histogram(label + ".iter_cycles").observe(hw.cycles);
      if (hw.instructions >= 0) {
        histogram(label + ".iter_instructions").observe(hw.instructions);
      }
      if (hw.cache_misses >= 0) {
        histogram(label + ".iter_cache_misses").observe(hw.cache_misses);
      }
    }
  } catch (...) {
  }
}

} // namespace sts::obs
