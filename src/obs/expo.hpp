// Prometheus text exposition (format 0.0.4) over the metrics registry —
// dependency-free, rendered from one coherent RegistrySnapshot.
//
// Mapping from the registry's dotted names to the Prometheus data model:
//
//   counter  a.b       ->  # TYPE sts_a_b counter
//                          sts_a_b_total <v>
//   gauge    a.b       ->  sts_a_b <v> and sts_a_b_peak <high water>
//   histogram a.b      ->  # TYPE sts_a_b summary
//                          sts_a_b{quantile="0.5|0.95|0.99"} <interpolated>
//                          sts_a_b_sum <sum> / sts_a_b_count <count>
//
// Names are prefixed "sts_" and sanitized to the Prometheus charset
// ([a-zA-Z_][a-zA-Z0-9_]*): every other character becomes '_'. The original
// dotted name is kept in the # HELP line so a scrape stays greppable by the
// names the rest of the codebase (and DESIGN.md) uses.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"

namespace sts::obs {

/// "svc.queue_depth" -> "sts_svc_queue_depth" (sanitized, prefixed).
[[nodiscard]] std::string prometheus_name(const std::string& name);

/// Renders one snapshot as Prometheus text exposition.
void write_prometheus(const RegistrySnapshot& snap, std::ostream& os);

/// Snapshots Registry::instance() and renders it.
void write_prometheus(std::ostream& os);

} // namespace sts::obs
