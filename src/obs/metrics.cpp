#include "obs/metrics.hpp"

#include <bit>
#include <cstdio>
#include <ostream>
#include <vector>

#include "support/escape.hpp"

namespace sts::obs {

namespace {

int bucket_of(std::int64_t v) noexcept {
  if (v <= 1) return 0;
  const int b = std::bit_width(static_cast<std::uint64_t>(v)) - 1;
  return b < Histogram::kBuckets ? b : Histogram::kBuckets - 1;
}

double bucket_low(int b) noexcept {
  return b == 0 ? 0.0 : static_cast<double>(std::uint64_t{1} << b);
}

double bucket_high(int b) noexcept {
  return static_cast<double>(std::uint64_t{1} << (b + 1));
}

std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

} // namespace

void Histogram::observe(std::int64_t v) noexcept {
  buckets_[static_cast<std::size_t>(bucket_of(v))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::int64_t lo = min_.load(std::memory_order_relaxed);
  while (v < lo &&
         !min_.compare_exchange_weak(lo, v, std::memory_order_relaxed)) {
  }
  std::int64_t hi = max_.load(std::memory_order_relaxed);
  while (v > hi &&
         !max_.compare_exchange_weak(hi, v, std::memory_order_relaxed)) {
  }
}

std::int64_t Histogram::min() const noexcept {
  const std::int64_t v = min_.load(std::memory_order_relaxed);
  return v == std::numeric_limits<std::int64_t>::max() ? 0 : v;
}

std::int64_t Histogram::max() const noexcept {
  const std::int64_t v = max_.load(std::memory_order_relaxed);
  return v == std::numeric_limits<std::int64_t>::min() ? 0 : v;
}

double Histogram::quantile(double p) const noexcept {
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Snapshot: concurrent observes may skew the snapshot by a few samples,
  // which is fine for a monitoring estimate.
  std::array<std::uint64_t, kBuckets> counts;
  std::uint64_t total = 0;
  for (int b = 0; b < kBuckets; ++b) {
    counts[static_cast<std::size_t>(b)] =
        buckets_[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
    total += counts[static_cast<std::size_t>(b)];
  }
  if (total == 0) return 0.0;
  const double rank = p * static_cast<double>(total);
  double seen = 0.0;
  for (int b = 0; b < kBuckets; ++b) {
    const double n = static_cast<double>(counts[static_cast<std::size_t>(b)]);
    if (n == 0.0) continue;
    if (seen + n >= rank) {
      // Spread the bucket's samples evenly across [low, high) and take the
      // midpoint of the sample the rank lands on.
      double frac = (rank - seen) / n;
      if (frac < 0.5 / n) frac = 0.5 / n; // at least half a sample in
      return bucket_low(b) + frac * (bucket_high(b) - bucket_low(b));
    }
    seen += n;
  }
  return bucket_high(kBuckets - 1);
}

Registry& Registry::instance() {
  static Registry r;
  return r;
}

Counter& Registry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void Registry::write_csv(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  os << "name,type,value,count,min,max,p50,p95,p99\n";
  for (const auto& [name, c] : counters_) {
    os << support::csv_field(name) << ",counter," << c->value() << ",,,,,,\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << support::csv_field(name) << ",gauge," << g->value() << ",,,"
       << g->peak() << ",,,\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << support::csv_field(name) << ",histogram," << h->sum() << ","
       << h->count() << "," << h->min() << "," << h->max() << ","
       << format_double(h->quantile(0.50)) << ","
       << format_double(h->quantile(0.95)) << ","
       << format_double(h->quantile(0.99)) << "\n";
  }
}

void Registry::write_text(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  os << "== sts metrics ==\n";
  for (const auto& [name, c] : counters_) {
    os << "  " << name << " = " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << "  " << name << " = " << g->value() << " (peak " << g->peak()
       << ")\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << "  " << name << ": n=" << h->count() << " sum=" << h->sum()
       << " min=" << h->min() << " max=" << h->max()
       << " p50=" << format_double(h->quantile(0.50))
       << " p95=" << format_double(h->quantile(0.95))
       << " p99=" << format_double(h->quantile(0.99)) << "\n";
  }
}

} // namespace sts::obs
