#include "obs/metrics.hpp"

#include <bit>
#include <cstdio>
#include <ostream>
#include <thread>

#include "support/escape.hpp"

namespace sts::obs {

namespace {

int bucket_of(std::int64_t v) noexcept {
  if (v <= 1) return 0;
  const int b = std::bit_width(static_cast<std::uint64_t>(v)) - 1;
  return b < Histogram::kBuckets ? b : Histogram::kBuckets - 1;
}

double bucket_low(int b) noexcept {
  return b == 0 ? 0.0 : static_cast<double>(std::uint64_t{1} << b);
}

double bucket_high(int b) noexcept {
  return static_cast<double>(std::uint64_t{1} << (b + 1));
}

std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

} // namespace

void Histogram::observe(std::int64_t v) noexcept {
  // The fetch_add both claims a slot in the cumulative count and tells us
  // which half is hot right now; everything after lands in that half, and
  // the final `finished` increment (release) publishes it to snapshot().
  const std::uint64_t n = started_hot_.fetch_add(1, std::memory_order_acq_rel);
  Half& h = halves_[static_cast<std::size_t>(n >> 63)];
  h.buckets[static_cast<std::size_t>(bucket_of(v))].fetch_add(
      1, std::memory_order_relaxed);
  h.sum.fetch_add(v, std::memory_order_relaxed);
  h.finished.fetch_add(1, std::memory_order_release);
  std::int64_t lo = min_.load(std::memory_order_relaxed);
  while (v < lo &&
         !min_.compare_exchange_weak(lo, v, std::memory_order_relaxed)) {
  }
  std::int64_t hi = max_.load(std::memory_order_relaxed);
  while (v > hi &&
         !max_.compare_exchange_weak(hi, v, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const noexcept {
  const std::lock_guard<std::mutex> lock(snapshot_mutex_);
  // Flip the hot half. Observers that already claimed a slot keep writing
  // into the now-cold half; wait for them — they are at most a handful of
  // instructions from their `finished` increment.
  const std::uint64_t n =
      started_hot_.fetch_add(kHotHalfBit, std::memory_order_acq_rel);
  const std::uint64_t started = n & ~kHotHalfBit;
  Half& cold = halves_[static_cast<std::size_t>(n >> 63)];
  Half& hot = halves_[static_cast<std::size_t>((n >> 63) ^ 1)];
  while (cold.finished.load(std::memory_order_acquire) != started) {
    std::this_thread::yield();
  }

  Snapshot s;
  s.count = started;
  s.sum = cold.sum.load(std::memory_order_relaxed);
  for (int b = 0; b < kBuckets; ++b) {
    s.buckets[static_cast<std::size_t>(b)] =
        cold.buckets[static_cast<std::size_t>(b)].load(
            std::memory_order_relaxed);
  }
  const std::int64_t lo = min_.load(std::memory_order_relaxed);
  const std::int64_t hi = max_.load(std::memory_order_relaxed);
  s.min = lo == std::numeric_limits<std::int64_t>::max() ? 0 : lo;
  s.max = hi == std::numeric_limits<std::int64_t>::min() ? 0 : hi;

  // Fold the cold half back into the hot one so the histogram stays
  // cumulative across flips, and zero it for its next turn as hot.
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t c = cold.buckets[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
    if (c != 0) {
      hot.buckets[static_cast<std::size_t>(b)].fetch_add(
          c, std::memory_order_relaxed);
      cold.buckets[static_cast<std::size_t>(b)].store(
          0, std::memory_order_relaxed);
    }
  }
  hot.sum.fetch_add(s.sum, std::memory_order_relaxed);
  cold.sum.store(0, std::memory_order_relaxed);
  hot.finished.fetch_add(started, std::memory_order_release);
  cold.finished.store(0, std::memory_order_relaxed);
  return s;
}

double Histogram::Snapshot::quantile(double p) const noexcept {
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  if (count == 0) return 0.0;
  const double rank = p * static_cast<double>(count);
  double seen = 0.0;
  for (int b = 0; b < kBuckets; ++b) {
    const double n = static_cast<double>(buckets[static_cast<std::size_t>(b)]);
    if (n == 0.0) continue;
    if (seen + n >= rank) {
      // Spread the bucket's samples evenly across [low, high) and take the
      // midpoint of the sample the rank lands on.
      double frac = (rank - seen) / n;
      if (frac < 0.5 / n) frac = 0.5 / n; // at least half a sample in
      return bucket_low(b) + frac * (bucket_high(b) - bucket_low(b));
    }
    seen += n;
  }
  return bucket_high(kBuckets - 1);
}

Registry& Registry::instance() {
  static Registry r;
  return r;
}

Counter& Registry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

RegistrySnapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value(), g->peak()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back({name, h->snapshot()});
  }
  return snap;
}

void Registry::write_csv(std::ostream& os) const {
  const RegistrySnapshot snap = snapshot();
  os << "name,type,value,count,min,max,p50,p95,p99\n";
  for (const auto& c : snap.counters) {
    os << support::csv_field(c.name) << ",counter," << c.value << ",,,,,,\n";
  }
  for (const auto& g : snap.gauges) {
    os << support::csv_field(g.name) << ",gauge," << g.value << ",,,"
       << g.peak << ",,,\n";
  }
  for (const auto& h : snap.histograms) {
    os << support::csv_field(h.name) << ",histogram," << h.data.sum << ","
       << h.data.count << "," << h.data.min << "," << h.data.max << ","
       << format_double(h.data.quantile(0.50)) << ","
       << format_double(h.data.quantile(0.95)) << ","
       << format_double(h.data.quantile(0.99)) << "\n";
  }
}

void Registry::write_text(std::ostream& os) const {
  const RegistrySnapshot snap = snapshot();
  os << "== sts metrics ==\n";
  for (const auto& c : snap.counters) {
    os << "  " << c.name << " = " << c.value << "\n";
  }
  for (const auto& g : snap.gauges) {
    os << "  " << g.name << " = " << g.value << " (peak " << g.peak << ")\n";
  }
  for (const auto& h : snap.histograms) {
    os << "  " << h.name << ": n=" << h.data.count << " sum=" << h.data.sum
       << " min=" << h.data.min << " max=" << h.data.max
       << " p50=" << format_double(h.data.quantile(0.50))
       << " p95=" << format_double(h.data.quantile(0.95))
       << " p99=" << format_double(h.data.quantile(0.99)) << "\n";
  }
}

} // namespace sts::obs
