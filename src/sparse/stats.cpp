#include "sparse/stats.hpp"

#include <algorithm>
#include <cmath>

namespace sts::sparse {

MatrixStats compute_stats(const Csr& a) {
  MatrixStats s;
  s.rows = a.rows();
  s.nnz = a.nnz();
  if (a.rows() == 0) return s;
  s.min_row_nnz = a.rows() > 0 ? a.row_nnz(0) : 0;
  double sum = 0.0;
  double sumsq = 0.0;
  double dist_sum = 0.0;
  for (index_t r = 0; r < a.rows(); ++r) {
    const index_t k = a.row_nnz(r);
    sum += static_cast<double>(k);
    sumsq += static_cast<double>(k) * static_cast<double>(k);
    s.max_row_nnz = std::max(s.max_row_nnz, k);
    s.min_row_nnz = std::min(s.min_row_nnz, k);
  }
  const auto rowptr = a.rowptr();
  const auto colidx = a.colidx();
  for (index_t r = 0; r < a.rows(); ++r) {
    for (std::int64_t k = rowptr[static_cast<std::size_t>(r)];
         k < rowptr[static_cast<std::size_t>(r) + 1]; ++k) {
      dist_sum += std::abs(static_cast<double>(
          colidx[static_cast<std::size_t>(k)] - r));
    }
  }
  const double n = static_cast<double>(a.rows());
  s.avg_row_nnz = sum / n;
  const double var = std::max(0.0, sumsq / n - s.avg_row_nnz * s.avg_row_nnz);
  s.row_nnz_cv = s.avg_row_nnz > 0 ? std::sqrt(var) / s.avg_row_nnz : 0.0;
  s.relative_bandwidth =
      a.nnz() > 0 ? dist_sum / static_cast<double>(a.nnz()) / n : 0.0;
  return s;
}

BlockingStats compute_blocking_stats(const Csb& a) {
  BlockingStats s;
  s.block_size = a.block_size();
  s.block_count = a.block_rows();
  s.total_blocks = a.block_rows() * a.block_cols();
  s.nonempty_blocks = a.nonempty_blocks();
  s.empty_fraction =
      s.total_blocks > 0
          ? 1.0 - static_cast<double>(s.nonempty_blocks) /
                      static_cast<double>(s.total_blocks)
          : 0.0;
  s.avg_block_nnz =
      s.nonempty_blocks > 0
          ? static_cast<double>(a.nnz()) /
                static_cast<double>(s.nonempty_blocks)
          : 0.0;
  for (index_t bi = 0; bi < a.block_rows(); ++bi) {
    for (index_t bj = 0; bj < a.block_cols(); ++bj) {
      s.max_block_nnz = std::max(s.max_block_nnz, a.block_nnz(bi, bj));
    }
  }
  return s;
}

} // namespace sts::sparse
