#include "sparse/ic0.hpp"

#include <cmath>
#include <cstdint>
#include <string>

#include "support/error.hpp"

namespace sts::sparse {

namespace {

/// Lower-triangle skeleton of `a` in CSR form: per-row sorted column lists
/// (j <= i) plus the values to factor in place. The diagonal entry is the
/// last entry of each row (columns are sorted), which both triangular
/// kernels and the factorization below rely on.
struct LowerCsr {
  std::vector<std::int64_t> rowptr;
  std::vector<std::int32_t> colidx;
  std::vector<double> values;
};

LowerCsr extract_lower(const Csr& a) {
  const index_t n = a.rows();
  const auto rp = a.rowptr();
  const auto ci = a.colidx();
  const auto va = a.values();

  LowerCsr l;
  l.rowptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (index_t i = 0; i < n; ++i) {
    bool has_diag = false;
    for (std::int64_t t = rp[static_cast<std::size_t>(i)];
         t < rp[static_cast<std::size_t>(i) + 1]; ++t) {
      const std::int32_t j = ci[static_cast<std::size_t>(t)];
      if (j > i) break; // columns sorted: the rest is strictly upper
      ++l.rowptr[static_cast<std::size_t>(i) + 1];
      has_diag = has_diag || j == i;
    }
    if (!has_diag) {
      throw support::Error("ic0: row " + std::to_string(i) +
                           " has no diagonal entry; the matrix cannot be "
                           "SPD");
    }
  }
  for (index_t i = 0; i < n; ++i) {
    l.rowptr[static_cast<std::size_t>(i) + 1] +=
        l.rowptr[static_cast<std::size_t>(i)];
  }
  l.colidx.resize(static_cast<std::size_t>(l.rowptr.back()));
  l.values.resize(static_cast<std::size_t>(l.rowptr.back()));
  for (index_t i = 0; i < n; ++i) {
    std::int64_t out = l.rowptr[static_cast<std::size_t>(i)];
    for (std::int64_t t = rp[static_cast<std::size_t>(i)];
         t < rp[static_cast<std::size_t>(i) + 1]; ++t) {
      const std::int32_t j = ci[static_cast<std::size_t>(t)];
      if (j > i) break;
      l.colidx[static_cast<std::size_t>(out)] = j;
      l.values[static_cast<std::size_t>(out)] = va[static_cast<std::size_t>(t)];
      ++out;
    }
  }
  return l;
}

/// One factorization sweep over the lower skeleton with the diagonal
/// scaled by (1 + shift). Returns false on a non-positive pivot (caller
/// retries with a larger shift); on success `values` holds L.
bool try_factor(const LowerCsr& pattern, double shift,
                std::vector<double>& values) {
  const std::size_t n = pattern.rowptr.size() - 1;
  values = pattern.values;
  // Scatter workspace: position of column j in the current row's entry
  // list, -1 when absent. Reset after each row, so overall O(nnz) extra.
  std::vector<std::int64_t> pos(n, -1);

  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t lo = pattern.rowptr[i];
    const std::int64_t hi = pattern.rowptr[i + 1]; // hi-1 is the diagonal
    if (shift != 0.0) {
      values[static_cast<std::size_t>(hi - 1)] *= 1.0 + shift;
    }
    for (std::int64_t t = lo; t < hi; ++t) {
      pos[static_cast<std::size_t>(pattern.colidx[static_cast<std::size_t>(t)])] = t;
    }
    // Left-looking update: for each k < i in row i's pattern, fold in row
    // k's contribution  L(i,j) -= L(i,k) * L(k,j)  for the j that row i
    // retains, then divide by the pivot L(k,k).
    for (std::int64_t t = lo; t < hi - 1; ++t) {
      const std::size_t k =
          static_cast<std::size_t>(pattern.colidx[static_cast<std::size_t>(t)]);
      const std::int64_t klo = pattern.rowptr[k];
      const std::int64_t khi = pattern.rowptr[k + 1];
      const double pivot = values[static_cast<std::size_t>(khi - 1)];
      // L(i,k) in its final form: subtract dot of the two row prefixes,
      // then scale. Row k's entries j < k update L(i,j) only where row i
      // retains column j (the IC(0) "no fill" rule).
      double lik = values[static_cast<std::size_t>(t)];
      for (std::int64_t u = klo; u < khi - 1; ++u) {
        const std::int64_t p =
            pos[static_cast<std::size_t>(pattern.colidx[static_cast<std::size_t>(u)])];
        if (p >= 0 && p < t) {
          lik -= values[static_cast<std::size_t>(p)] *
                 values[static_cast<std::size_t>(u)];
        }
      }
      lik /= pivot;
      values[static_cast<std::size_t>(t)] = lik;
      // Fold L(i,k)^2 out of the running diagonal.
      values[static_cast<std::size_t>(hi - 1)] -= lik * lik;
    }
    const double d = values[static_cast<std::size_t>(hi - 1)];
    for (std::int64_t t = lo; t < hi; ++t) {
      pos[static_cast<std::size_t>(pattern.colidx[static_cast<std::size_t>(t)])] = -1;
    }
    if (!(d > 0.0)) return false;
    values[static_cast<std::size_t>(hi - 1)] = std::sqrt(d);
  }
  return true;
}

} // namespace

Ic0Result ic0_factor(const Csr& a, const Ic0Options& options) {
  if (a.rows() != a.cols()) {
    throw support::Error("ic0: matrix must be square, got " +
                         std::to_string(a.rows()) + " x " +
                         std::to_string(a.cols()));
  }
  const LowerCsr pattern = extract_lower(a);

  Ic0Result result;
  double shift = options.initial_shift;
  std::vector<double> values;
  for (int attempt = 0; attempt <= options.max_shift_attempts; ++attempt) {
    if (try_factor(pattern, shift, values)) {
      result.shift = shift;
      result.shift_attempts = attempt;
      // Rebuild through COO: Csr's only constructor path. The factor is a
      // setup artifact, so the extra copy is off the iteration hot path.
      Coo coo(a.rows(), a.cols());
      coo.reserve(pattern.colidx.size());
      const std::size_t n = pattern.rowptr.size() - 1;
      for (std::size_t i = 0; i < n; ++i) {
        for (std::int64_t t = pattern.rowptr[i]; t < pattern.rowptr[i + 1];
             ++t) {
          coo.add(static_cast<index_t>(i),
                  pattern.colidx[static_cast<std::size_t>(t)],
                  values[static_cast<std::size_t>(t)]);
        }
      }
      result.lower = Csr::from_coo(std::move(coo));
      return result;
    }
    shift = shift == 0.0 ? 1e-3 : shift * 2.0;
  }
  throw support::Error(
      "ic0: non-positive pivot after " +
      std::to_string(options.max_shift_attempts) +
      " diagonal shift attempts (matrix is far from positive definite)");
}

std::vector<double> diagonal(const Csr& a) {
  if (a.rows() != a.cols()) {
    throw support::Error("diagonal: matrix must be square");
  }
  const index_t n = a.rows();
  const auto rp = a.rowptr();
  const auto ci = a.colidx();
  const auto va = a.values();
  std::vector<double> d(static_cast<std::size_t>(n), 0.0);
  for (index_t i = 0; i < n; ++i) {
    for (std::int64_t t = rp[static_cast<std::size_t>(i)];
         t < rp[static_cast<std::size_t>(i) + 1]; ++t) {
      if (ci[static_cast<std::size_t>(t)] == i) {
        d[static_cast<std::size_t>(i)] = va[static_cast<std::size_t>(t)];
        break;
      }
    }
    if (d[static_cast<std::size_t>(i)] == 0.0) {
      throw support::Error("diagonal: row " + std::to_string(i) +
                           " has a missing or zero diagonal entry");
    }
  }
  return d;
}

} // namespace sts::sparse
