#include "sparse/coo.hpp"

#include <algorithm>
#include <cmath>

namespace sts::sparse {

namespace {
bool coord_less(const Triplet& a, const Triplet& b) {
  return a.row != b.row ? a.row < b.row : a.col < b.col;
}
} // namespace

void Coo::finalize() {
  std::sort(entries_.begin(), entries_.end(), coord_less);
  std::size_t out = 0;
  for (std::size_t i = 0; i < entries_.size();) {
    Triplet merged = entries_[i];
    std::size_t j = i + 1;
    while (j < entries_.size() && entries_[j].row == merged.row &&
           entries_[j].col == merged.col) {
      merged.value += entries_[j].value;
      ++j;
    }
    entries_[out++] = merged;
    i = j;
  }
  entries_.resize(out);
}

void Coo::symmetrize_lower() {
  STS_EXPECTS(rows_ == cols_);
  finalize();
  std::vector<Triplet> lower;
  lower.reserve(entries_.size());
  for (const Triplet& t : entries_) {
    if (t.row >= t.col) lower.push_back(t);
  }
  entries_.clear();
  for (const Triplet& t : lower) {
    entries_.push_back(t);
    if (t.row != t.col) entries_.push_back({t.col, t.row, t.value});
  }
  finalize();
}

void Coo::fill_random_symmetric(support::Xoshiro256& rng, double lo,
                                double hi) {
  (void)rng; // values are derived from a per-pair hash so that (i,j) and
             // (j,i) agree without a lookup structure
  for (Triplet& t : entries_) {
    const std::uint64_t a = static_cast<std::uint32_t>(std::min(t.row, t.col));
    const std::uint64_t b = static_cast<std::uint32_t>(std::max(t.row, t.col));
    support::SplitMix64 h((a << 32) ^ b ^ 0x5bf03635ULL);
    const double u =
        static_cast<double>(h.next() >> 11) * 0x1.0p-53;
    t.value = lo + (hi - lo) * u;
  }
}

bool Coo::is_symmetric(double tol) const {
  std::vector<Triplet> sorted = entries_;
  std::sort(sorted.begin(), sorted.end(), coord_less);
  for (const Triplet& t : sorted) {
    const Triplet probe{t.col, t.row, 0.0};
    auto it = std::lower_bound(sorted.begin(), sorted.end(), probe,
                               coord_less);
    if (it == sorted.end() || it->row != t.col || it->col != t.row) {
      return false;
    }
    if (std::abs(it->value - t.value) > tol) return false;
  }
  return true;
}

la::DenseMatrix Coo::to_dense() const {
  la::DenseMatrix d(rows_, cols_);
  for (const Triplet& t : entries_) d.at(t.row, t.col) += t.value;
  return d;
}

} // namespace sts::sparse
