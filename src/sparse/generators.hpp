// Synthetic sparse matrix generators.
//
// The paper evaluates on 14 SuiteSparse matrices plus the Nm7 nuclear-CI
// matrix; neither the collection nor Nm7 is available offline, so each
// structural class in the suite has a generator here producing a symmetric
// matrix with the same qualitative structure (see DESIGN.md section 2.5):
//
//   fem3d          -> 3D FEM stencils (inline1, Flan_1565, Bump_2911, ...)
//   saddle_kkt     -> KKT saddle-point systems (nlpkkt160/200/240)
//   rmat           -> power-law web/social graphs (twitter7, it-2004, ...)
//   block_random   -> CI-Hamiltonian-like scattered dense blocks (Nm7)
//   banded_random  -> CFD-like banded matrices (HV15R)
//   hub_trace      -> extreme-skew, ultra-sparse traffic matrix (mawi)
//
// Every generator returns a finalized symmetric Coo with a deterministic
// seed, so suites are reproducible.
#pragma once

#include <cstdint>

#include "sparse/coo.hpp"

namespace sts::sparse {

/// nx*ny*nz-point grid, each node coupled to all neighbors within
/// `reach` in Chebyshev distance (reach=1 gives the 27-point stencil).
/// Diagonally dominant SPD-style values.
[[nodiscard]] Coo gen_fem3d(index_t nx, index_t ny, index_t nz,
                            int reach = 1, std::uint64_t seed = 1);

/// Guaranteed-SPD 3D Laplacian on the same stencil as gen_fem3d: negative
/// off-diagonal couplings, diagonal = full off-diagonal row sum plus a
/// random positive regularization in [0.1, 1.0]. Strict diagonal
/// dominance with a positive diagonal makes every instance symmetric
/// positive definite — the linear-solve (CG) test and bench matrix.
/// (gen_fem3d itself only dominates its lower triangle and can go
/// slightly indefinite, which eigensolvers tolerate but CG cannot.)
[[nodiscard]] Coo gen_laplacian3d(index_t nx, index_t ny, index_t nz,
                                  int reach = 1, std::uint64_t seed = 1);

/// Symmetric saddle-point matrix [[H, A^T], [A, 0]] with H an SPD 3D
/// stencil on `n_primal` nodes and A a sparse constraint block of
/// `n_dual` rows with `nnz_per_row` entries each (nlpkkt-like).
[[nodiscard]] Coo gen_saddle_kkt(index_t n_primal, index_t n_dual,
                                 int nnz_per_row = 3, std::uint64_t seed = 2);

/// R-MAT power-law graph with 2^scale vertices and edge_factor*2^scale
/// edges before symmetrization/dedup. (a,b,c,d) are the RMAT quadrant
/// probabilities; defaults give a heavy-tailed degree distribution. Values
/// are random symmetric fill as the paper applies to binary matrices.
[[nodiscard]] Coo gen_rmat(int scale, int edge_factor, double a = 0.57,
                           double b = 0.19, double c = 0.19,
                           std::uint64_t seed = 3);

/// Block-sparse matrix: a grid of (n_blocks x n_blocks) tiles of size
/// block_dim, where each tile is present with probability fill_prob and a
/// present tile is dense-ish (entry_prob of its entries set). Models the
/// CI Hamiltonian structure of Nm7.
[[nodiscard]] Coo gen_block_random(index_t n_blocks, index_t block_dim,
                                   double fill_prob, double entry_prob = 0.6,
                                   std::uint64_t seed = 4);

/// Banded matrix of size n with half-bandwidth bw and the given density
/// within the band (HV15R-like locality).
[[nodiscard]] Coo gen_banded_random(index_t n, index_t bw, double density,
                                    std::uint64_t seed = 5);

/// Ultra-sparse hub-and-spoke matrix: n nodes, `hubs` high-degree hubs, and
/// avg_degree entries per node attached mostly to hubs (mawi-like).
[[nodiscard]] Coo gen_hub_trace(index_t n, index_t hubs, double avg_degree,
                                std::uint64_t seed = 6);

} // namespace sts::sparse
