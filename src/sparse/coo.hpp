// Coordinate (triplet) sparse format: the construction/interchange format.
//
// Generators and the Matrix Market reader produce COO; it is then finalized
// (sorted, duplicates summed) and converted to CSR/CSB for compute. The
// paper's preprocessing steps live here too: symmetrization of
// non-symmetric inputs (A = L + L^T - D) and random value fill for binary
// pattern matrices.
#pragma once

#include <cstdint>
#include <vector>

#include "la/dense.hpp"
#include "support/rng.hpp"

namespace sts::sparse {

using la::index_t;

/// One nonzero. Column/row indices are 32-bit: the scaled suite tops out
/// well below 2^31 rows and halving index memory matters for cache behavior.
struct Triplet {
  std::int32_t row;
  std::int32_t col;
  double value;

  friend bool operator==(const Triplet&, const Triplet&) = default;
};

/// Mutable triplet matrix.
class Coo {
public:
  Coo() = default;
  Coo(index_t rows, index_t cols) : rows_(rows), cols_(cols) {
    STS_EXPECTS(rows >= 0 && cols >= 0);
  }

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] index_t nnz() const noexcept {
    return static_cast<index_t>(entries_.size());
  }
  [[nodiscard]] const std::vector<Triplet>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::vector<Triplet>& entries() noexcept { return entries_; }

  void add(index_t row, index_t col, double value) {
    STS_EXPECTS(row >= 0 && row < rows_ && col >= 0 && col < cols_);
    entries_.push_back({static_cast<std::int32_t>(row),
                        static_cast<std::int32_t>(col), value});
  }

  void reserve(std::size_t n) { entries_.reserve(n); }

  /// Sorts by (row, col) and sums duplicate coordinates.
  void finalize();

  /// Makes the matrix symmetric the way the paper does for non-symmetric
  /// inputs: A_new = L + L^T - D where L is the lower triangle including
  /// the diagonal. Requires a square matrix; implies finalize().
  void symmetrize_lower();

  /// Replaces all values with uniform randoms in [lo, hi] while keeping the
  /// matrix symmetric (value depends only on the unordered index pair), as
  /// the paper does for binary matrices.
  void fill_random_symmetric(support::Xoshiro256& rng, double lo = 0.1,
                             double hi = 1.0);

  /// True if for every (i,j,v) there is a matching (j,i,v). O(nnz log nnz).
  [[nodiscard]] bool is_symmetric(double tol = 0.0) const;

  /// Dense copy for reference computations in tests (small matrices only).
  [[nodiscard]] la::DenseMatrix to_dense() const;

private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<Triplet> entries_;
};

} // namespace sts::sparse
