// Matrix Market coordinate-format I/O.
//
// The paper's suite comes from the SuiteSparse collection, which distributes
// Matrix Market files. This reader/writer lets users run the benchmarks on
// the real matrices when available; the synthetic suite (generators.hpp) is
// the offline substitute.
//
// Supported: `%%MatrixMarket matrix coordinate <real|integer|pattern>
// <general|symmetric>`. Pattern entries get value 1.0; symmetric files are
// expanded to both triangles on read.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/coo.hpp"

namespace sts::sparse {

/// Parses a Matrix Market stream. Throws support::Error on malformed input.
[[nodiscard]] Coo read_matrix_market(std::istream& in);
[[nodiscard]] Coo read_matrix_market_file(const std::string& path);

/// Writes in `coordinate real` layout. When `symmetric` is true only the
/// lower triangle is emitted (caller asserts the matrix is symmetric).
void write_matrix_market(std::ostream& out, const Coo& coo,
                         bool symmetric = false);
void write_matrix_market_file(const std::string& path, const Coo& coo,
                              bool symmetric = false);

} // namespace sts::sparse
