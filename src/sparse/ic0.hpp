// Incomplete Cholesky IC(0) and Jacobi preconditioner factors.
//
// IC(0) computes a lower-triangular L with exactly the sparsity pattern of
// tril(A) such that L * L^T matches A on that pattern (no fill-in). It is
// the classic preconditioner for conjugate gradients on SPD systems, and —
// following Kim et al.'s 2D partitioned-block treatment — the factor is
// handed back as CSR so the caller can re-block it onto the CSB grid and
// run the two triangular solves as DAG-scheduled block tasks
// (la/sptrsv.hpp).
//
// The factorization is sequential by design: it is a setup cost paid once
// per (matrix, preconditioner) pair, cached by the service layer alongside
// the CSB plan; the per-iteration triangular solves are where the task
// parallelism lives.
#pragma once

#include <vector>

#include "sparse/csr.hpp"

namespace sts::sparse {

struct Ic0Options {
  /// Starting diagonal shift (relative to the mean diagonal magnitude).
  /// 0 tries the unshifted factorization first.
  double initial_shift = 0.0;
  /// When a pivot comes out non-positive the factorization restarts with
  /// the shift doubled (from 1e-3 if it was zero), up to this many times
  /// before giving up. Manteuffel-style shifted IC.
  int max_shift_attempts = 8;
};

struct Ic0Result {
  /// Lower-triangular factor, pattern == tril(A), strictly positive
  /// diagonal. L * L^T approximates A exactly on the retained pattern.
  Csr lower;
  /// Shift that produced the successful factorization (0 when none was
  /// needed); the factor approximates A + shift*diag(A), not A itself.
  double shift = 0.0;
  /// Restarts forced by non-positive pivots.
  int shift_attempts = 0;
};

/// Factors the symmetric positive-definite matrix `a` (only tril(a) is
/// read; the strict upper triangle is assumed to mirror it). Throws
/// support::Error when a structural zero diagonal makes the factorization
/// impossible, or when every shift attempt still hits a non-positive
/// pivot.
[[nodiscard]] Ic0Result ic0_factor(const Csr& a, const Ic0Options& options = {});

/// diag(A) as a dense vector; throws support::Error if any diagonal entry
/// is missing or zero (a Jacobi preconditioner would divide by it).
[[nodiscard]] std::vector<double> diagonal(const Csr& a);

} // namespace sts::sparse
