// Compressed Sparse Blocks (CSB) storage [Buluc et al., SPAA'09].
//
// CSB is the partitioning that defines tasks in all three task-parallel
// frameworks evaluated by the paper: the matrix is tiled into b x b blocks;
// blkptr indexes the (block-row-major) grid of blocks. A task operates on
// exactly one non-empty block, reading input-vector block j and updating
// output-vector block i.
//
// Block-internal layout (the hot-loop format): each block is stored in
// struct-of-arrays form -- one contiguous run of values and one of packed
// block-local column coordinates (16-bit when block_size <= 65536, 32-bit
// above) -- plus a row-segment index, a mini-CSR inside the block listing
// (local row, entry range) pairs for the rows that have nonzeros. SpMV/SpMM
// inner loops walk "for each row segment: contiguous dot over x" with one
// output write per segment instead of one per nonzero, and move 10 bytes
// per nonzero (8 value + 2 coordinate) instead of the 16 a padded
// {int32 row, int32 col, double} AoS entry costs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "la/dense.hpp"
#include "sparse/csr.hpp"
#include "support/aligned.hpp"

namespace sts::sparse {

/// Immutable CSB matrix.
class Csb {
public:
  /// One row of one block: entries [begin, begin + count) of the global
  /// value/coordinate arrays all lie on block-local row `row`. Segments of a
  /// block are contiguous in `segments()` and sorted by `row` (strictly
  /// increasing), entries within a segment are sorted by column.
  struct RowSegment {
    std::int64_t begin; // absolute offset into values()/cols16()/cols32()
    std::int32_t row;   // block-local row
    std::int32_t count; // nonzeros on this row of the block
  };

  /// Borrowed view of one block's storage. `cols16` is non-null iff the
  /// matrix uses packed 16-bit coordinates (block_size() <= 65536),
  /// otherwise `cols32` is. Segment `begin` offsets index the same global
  /// arrays these pointers are bases of.
  struct BlockView {
    const double* values = nullptr;
    const std::uint16_t* cols16 = nullptr;
    const std::uint32_t* cols32 = nullptr;
    std::span<const RowSegment> segments;
    std::int64_t first = 0; // offset of the block's first entry
    std::int64_t nnz = 0;

    /// Block-local column of the entry at absolute offset `t`.
    [[nodiscard]] index_t col(std::int64_t t) const {
      return cols16 != nullptr ? static_cast<index_t>(cols16[t])
                               : static_cast<index_t>(cols32[t]);
    }
  };

  /// Contiguous block-row stripes assigned to NUMA domains. Entry d is the
  /// exclusive block-row end of domain d's stripe (stripe d covers block
  /// rows [stripe_end[d-1], stripe_end[d])); the last entry equals
  /// block_rows(). The same map drives both page placement
  /// (place_stripes) and task domain hints, so a hinted SpMV task lands on
  /// a worker of the node whose memory holds its stripe.
  struct DomainMap {
    std::vector<index_t> stripe_end;

    [[nodiscard]] int domains() const noexcept {
      return static_cast<int>(stripe_end.size());
    }
    /// Domain owning block-row `bi`: the first stripe ending past it.
    [[nodiscard]] int owner(index_t bi) const {
      const auto it =
          std::upper_bound(stripe_end.begin(), stripe_end.end(), bi);
      return it == stripe_end.end()
                 ? static_cast<int>(stripe_end.size()) - 1
                 : static_cast<int>(it - stripe_end.begin());
    }
  };

  Csb() = default;

  /// Builds from COO with the given block size (rows per block in both
  /// dimensions). Entries within a block are sorted by local (row, col).
  static Csb from_coo(const Coo& coo, index_t block_size);
  static Csb from_csr(const Csr& csr, index_t block_size);

  /// Nonzeros in block-row `bi`. O(1): the grid is block-row-major, so the
  /// row's blocks occupy one contiguous blkptr range.
  [[nodiscard]] index_t block_row_nnz(index_t bi) const {
    STS_EXPECTS(bi >= 0 && bi < nb_rows_);
    const std::size_t lo = static_cast<std::size_t>(bi) *
                           static_cast<std::size_t>(nb_cols_);
    const std::size_t hi = lo + static_cast<std::size_t>(nb_cols_);
    return static_cast<index_t>(blkptr_[hi] - blkptr_[lo]);
  }

  /// Nnz-balanced partition of the block rows into `domains` contiguous
  /// stripes (greedy prefix cut at multiples of nnz/domains). Deterministic:
  /// solvers recompute it from (matrix, domains) and get the same owners
  /// place_stripes used.
  [[nodiscard]] DomainMap partition_block_rows(unsigned domains) const;

  /// Re-materializes the value/coordinate/segment streams so each domain's
  /// stripe is copied -- and its pages therefore first-touched -- by a task
  /// running inside that domain. `submit(domain, work)` must run `work` on a
  /// worker of `domain` (e.g. flux::Scheduler::submit with a hint); `wait`
  /// must block until every submitted work item finished. Storage is
  /// aligned_alloc'd, which maps fresh untouched pages, so the copying task
  /// faults them into its node's memory. Call once, before sharing the
  /// matrix across threads.
  void place_stripes(const DomainMap& map,
                     const std::function<void(int, std::function<void()>)>& submit,
                     const std::function<void()>& wait);

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] index_t nnz() const noexcept {
    return static_cast<index_t>(values_.size());
  }
  [[nodiscard]] index_t block_size() const noexcept { return block_; }
  /// Blocks per dimension (row direction / column direction).
  [[nodiscard]] index_t block_rows() const noexcept { return nb_rows_; }
  [[nodiscard]] index_t block_cols() const noexcept { return nb_cols_; }

  /// Number of rows covered by block-row `bi` (the last block may be short).
  [[nodiscard]] index_t rows_in_block(index_t bi) const {
    STS_EXPECTS(bi >= 0 && bi < nb_rows_);
    return std::min(block_, rows_ - bi * block_);
  }
  [[nodiscard]] index_t cols_in_block(index_t bj) const {
    STS_EXPECTS(bj >= 0 && bj < nb_cols_);
    return std::min(block_, cols_ - bj * block_);
  }

  /// Storage of block (bi, bj); zero-nnz view if the block is empty.
  [[nodiscard]] BlockView block_view(index_t bi, index_t bj) const {
    const std::size_t k = block_id(bi, bj);
    BlockView v;
    v.values = values_.data();
    if (packed_) {
      v.cols16 = cols16_.data();
    } else {
      v.cols32 = cols32_.data();
    }
    v.segments = {segs_.data() + segptr_[k],
                  static_cast<std::size_t>(segptr_[k + 1] - segptr_[k])};
    v.first = blkptr_[k];
    v.nnz = blkptr_[k + 1] - blkptr_[k];
    return v;
  }

  [[nodiscard]] index_t block_nnz(index_t bi, index_t bj) const {
    const std::size_t k = block_id(bi, bj);
    return static_cast<index_t>(blkptr_[k + 1] - blkptr_[k]);
  }
  [[nodiscard]] bool block_empty(index_t bi, index_t bj) const {
    return block_nnz(bi, bj) == 0;
  }

  /// Count of non-empty blocks (== SpMV/SpMM task count per iteration).
  /// Cached at construction; O(1).
  [[nodiscard]] index_t nonempty_blocks() const noexcept { return nonempty_; }

  /// True when coordinates are stored as 16-bit (block_size() <= 65536).
  [[nodiscard]] bool packed_coords() const noexcept { return packed_; }
  /// Bytes per nonzero for the value + coordinate streams (excludes the
  /// per-row-segment index; see bytes_per_nnz for the all-in figure).
  [[nodiscard]] std::size_t entry_bytes() const noexcept {
    return sizeof(double) + (packed_ ? sizeof(std::uint16_t)
                                     : sizeof(std::uint32_t));
  }
  /// Total matrix bytes (values + coordinates + row segments) per nonzero.
  [[nodiscard]] double bytes_per_nnz() const noexcept {
    if (values_.empty()) return 0.0;
    const double bytes =
        static_cast<double>(values_.size() * entry_bytes() +
                            segs_.size() * sizeof(RowSegment));
    return bytes / static_cast<double>(values_.size());
  }

  [[nodiscard]] std::span<const std::int64_t> blkptr() const noexcept {
    return blkptr_;
  }
  [[nodiscard]] std::span<const RowSegment> segments() const noexcept {
    return {segs_.data(), segs_.size()};
  }
  [[nodiscard]] std::span<const double> values() const noexcept {
    return {values_.data(), values_.size()};
  }

  [[nodiscard]] Coo to_coo() const;

  /// Heap bytes held by the partition (block/segment indices + value and
  /// coordinate streams); the service-layer plan cache budgets against
  /// csr.memory_bytes() + csb.memory_bytes() per cached plan.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return blkptr_.size() * sizeof(std::int64_t) +
           segptr_.size() * sizeof(std::int64_t) +
           segs_.size() * sizeof(RowSegment) +
           values_.size() * sizeof(double) +
           cols16_.size() * sizeof(std::uint16_t) +
           cols32_.size() * sizeof(std::uint32_t);
  }

private:
  /// Block ids index an nb_rows_ x nb_cols_ grid; the product is formed in
  /// std::size_t *before* any arithmetic so wide grids cannot overflow an
  /// intermediate narrower multiply.
  [[nodiscard]] std::size_t block_id(index_t bi, index_t bj) const {
    STS_EXPECTS(bi >= 0 && bi < nb_rows_ && bj >= 0 && bj < nb_cols_);
    return static_cast<std::size_t>(bi) * static_cast<std::size_t>(nb_cols_) +
           static_cast<std::size_t>(bj);
  }

  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t block_ = 0;
  index_t nb_rows_ = 0;
  index_t nb_cols_ = 0;
  index_t nonempty_ = 0;
  bool packed_ = true;
  // The hot streams live in AlignedBuffers (not vectors) deliberately:
  // aligned_alloc maps pages without faulting them, which is what lets
  // place_stripes() first-touch each stripe from its owning NUMA domain —
  // a vector's value-initializing resize would fault every page on the
  // constructing thread and pin the whole matrix to one node. The index
  // arrays (blkptr_/segptr_) stay vectors: cold, read by everyone.
  std::vector<std::int64_t> blkptr_; // nb_rows_*nb_cols_ + 1 entry offsets
  std::vector<std::int64_t> segptr_; // nb_rows_*nb_cols_ + 1 segment offsets
  support::AlignedBuffer<RowSegment> segs_;      // row segments, block-major
  support::AlignedBuffer<double> values_;        // SoA: values, block-major
  support::AlignedBuffer<std::uint16_t> cols16_; // SoA: packed local columns
  support::AlignedBuffer<std::uint32_t> cols32_; // SoA: wide local columns
};

/// y_block[bi] += A(bi,bj) * x_block[bj] for a single block (SpMV body).
/// `x`/`y` are the *full* vectors; the block offsets are applied here.
void csb_block_spmv(const Csb& a, index_t bi, index_t bj,
                    std::span<const double> x, std::span<double> y);

/// Y_block[bi] += A(bi,bj) * X_block[bj] for vector blocks (SpMM body).
void csb_block_spmm(const Csb& a, index_t bi, index_t bj,
                    la::ConstMatrixView x, la::MatrixView y);

/// Zeroes y rows belonging to block-row bi (tasks accumulate, so each
/// output block is cleared by its first task or an explicit zero task).
void csb_block_zero(const Csb& a, index_t bi, std::span<double> y);
void csb_block_zero(const Csb& a, index_t bi, la::MatrixView y);

} // namespace sts::sparse
