// Compressed Sparse Blocks (CSB) storage [Buluc et al., SPAA'09].
//
// CSB is the partitioning that defines tasks in all three task-parallel
// frameworks evaluated by the paper: the matrix is tiled into b x b blocks;
// entries of one block are stored contiguously with block-local 32-bit
// coordinates; blkptr indexes the (block-row-major) grid of blocks. A task
// operates on exactly one non-empty block, reading input-vector block j and
// updating output-vector block i.
#pragma once

#include <span>
#include <vector>

#include "la/dense.hpp"
#include "sparse/csr.hpp"

namespace sts::sparse {

/// Immutable CSB matrix.
class Csb {
public:
  struct Entry {
    std::int32_t row; // block-local row
    std::int32_t col; // block-local col
    double value;
  };

  Csb() = default;

  /// Builds from COO with the given block size (rows per block in both
  /// dimensions). Entries within a block are sorted by local (row, col).
  static Csb from_coo(const Coo& coo, index_t block_size);
  static Csb from_csr(const Csr& csr, index_t block_size);

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] index_t nnz() const noexcept {
    return static_cast<index_t>(entries_.size());
  }
  [[nodiscard]] index_t block_size() const noexcept { return block_; }
  /// Blocks per dimension (row direction / column direction).
  [[nodiscard]] index_t block_rows() const noexcept { return nb_rows_; }
  [[nodiscard]] index_t block_cols() const noexcept { return nb_cols_; }

  /// Number of rows covered by block-row `bi` (the last block may be short).
  [[nodiscard]] index_t rows_in_block(index_t bi) const {
    STS_EXPECTS(bi >= 0 && bi < nb_rows_);
    return std::min(block_, rows_ - bi * block_);
  }
  [[nodiscard]] index_t cols_in_block(index_t bj) const {
    STS_EXPECTS(bj >= 0 && bj < nb_cols_);
    return std::min(block_, cols_ - bj * block_);
  }

  /// Nonzeros of block (bi, bj); empty span if the block has none.
  [[nodiscard]] std::span<const Entry> block(index_t bi, index_t bj) const {
    STS_EXPECTS(bi >= 0 && bi < nb_rows_ && bj >= 0 && bj < nb_cols_);
    const std::size_t k = static_cast<std::size_t>(bi * nb_cols_ + bj);
    return {entries_.data() + blkptr_[k],
            static_cast<std::size_t>(blkptr_[k + 1] - blkptr_[k])};
  }

  [[nodiscard]] index_t block_nnz(index_t bi, index_t bj) const {
    return static_cast<index_t>(block(bi, bj).size());
  }
  [[nodiscard]] bool block_empty(index_t bi, index_t bj) const {
    return block_nnz(bi, bj) == 0;
  }

  /// Count of non-empty blocks (== SpMV/SpMM task count per iteration).
  [[nodiscard]] index_t nonempty_blocks() const;

  [[nodiscard]] std::span<const std::int64_t> blkptr() const noexcept {
    return blkptr_;
  }

  [[nodiscard]] Coo to_coo() const;

private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t block_ = 0;
  index_t nb_rows_ = 0;
  index_t nb_cols_ = 0;
  std::vector<std::int64_t> blkptr_; // nb_rows_*nb_cols_ + 1 prefix offsets
  std::vector<Entry> entries_;
};

/// y_block[bi] += A(bi,bj) * x_block[bj] for a single block (SpMV body).
/// `x`/`y` are the *full* vectors; the block offsets are applied here.
void csb_block_spmv(const Csb& a, index_t bi, index_t bj,
                    std::span<const double> x, std::span<double> y);

/// Y_block[bi] += A(bi,bj) * X_block[bj] for vector blocks (SpMM body).
void csb_block_spmm(const Csb& a, index_t bi, index_t bj,
                    la::ConstMatrixView x, la::MatrixView y);

/// Zeroes y rows belonging to block-row bi (tasks accumulate, so each
/// output block is cleared by its first task or an explicit zero task).
void csb_block_zero(const Csb& a, index_t bi, std::span<double> y);
void csb_block_zero(const Csb& a, index_t bi, la::MatrixView y);

} // namespace sts::sparse
