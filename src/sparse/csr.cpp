#include "sparse/csr.hpp"

namespace sts::sparse {

Csr Csr::from_coo(Coo coo) {
  coo.finalize();
  Csr out;
  out.rows_ = coo.rows();
  out.cols_ = coo.cols();
  out.rowptr_.assign(static_cast<std::size_t>(coo.rows()) + 1, 0);
  out.colidx_.reserve(static_cast<std::size_t>(coo.nnz()));
  out.values_.reserve(static_cast<std::size_t>(coo.nnz()));
  for (const Triplet& t : coo.entries()) {
    ++out.rowptr_[static_cast<std::size_t>(t.row) + 1];
    out.colidx_.push_back(t.col);
    out.values_.push_back(t.value);
  }
  for (std::size_t r = 0; r < static_cast<std::size_t>(coo.rows()); ++r) {
    out.rowptr_[r + 1] += out.rowptr_[r];
  }
  return out;
}

Coo Csr::to_coo() const {
  Coo coo(rows_, cols_);
  coo.reserve(values_.size());
  for (index_t r = 0; r < rows_; ++r) {
    for (std::int64_t k = rowptr_[static_cast<std::size_t>(r)];
         k < rowptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      coo.add(r, colidx_[static_cast<std::size_t>(k)],
              values_[static_cast<std::size_t>(k)]);
    }
  }
  return coo;
}

void csr_spmv_range(const Csr& a, std::span<const double> x,
                    std::span<double> y, index_t r0, index_t r1) {
  STS_EXPECTS(r0 >= 0 && r0 <= r1 && r1 <= a.rows());
  STS_EXPECTS(static_cast<index_t>(x.size()) == a.cols());
  STS_EXPECTS(static_cast<index_t>(y.size()) == a.rows());
  const auto rowptr = a.rowptr();
  const auto colidx = a.colidx();
  const auto values = a.values();
  for (index_t r = r0; r < r1; ++r) {
    double acc = 0.0;
    for (std::int64_t k = rowptr[static_cast<std::size_t>(r)];
         k < rowptr[static_cast<std::size_t>(r) + 1]; ++k) {
      acc += values[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(colidx[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(r)] = acc;
  }
}

void csr_spmm_range(const Csr& a, la::ConstMatrixView x, la::MatrixView y,
                    index_t r0, index_t r1) {
  STS_EXPECTS(r0 >= 0 && r0 <= r1 && r1 <= a.rows());
  STS_EXPECTS(x.rows == a.cols() && y.rows == a.rows() && x.cols == y.cols);
  const auto rowptr = a.rowptr();
  const auto colidx = a.colidx();
  const auto values = a.values();
  const index_t n = x.cols;
  for (index_t r = r0; r < r1; ++r) {
    double* yr = y.row(r);
    for (index_t j = 0; j < n; ++j) yr[j] = 0.0;
    for (std::int64_t k = rowptr[static_cast<std::size_t>(r)];
         k < rowptr[static_cast<std::size_t>(r) + 1]; ++k) {
      const double v = values[static_cast<std::size_t>(k)];
      const double* xc = x.row(colidx[static_cast<std::size_t>(k)]);
      for (index_t j = 0; j < n; ++j) yr[j] += v * xc[j];
    }
  }
}

} // namespace sts::sparse
