#include "sparse/suite.hpp"

#include <cmath>

#include "sparse/generators.hpp"
#include "support/error.hpp"

namespace sts::sparse {

const char* to_string(MatrixClass c) {
  switch (c) {
    case MatrixClass::kFem3D: return "fem3d";
    case MatrixClass::kCfdBanded: return "cfd-banded";
    case MatrixClass::kSaddleKkt: return "saddle-kkt";
    case MatrixClass::kNuclearCI: return "nuclear-ci";
    case MatrixClass::kPowerLaw: return "power-law";
    case MatrixClass::kHubTrace: return "hub-trace";
  }
  return "?";
}

namespace {

index_t scaled(index_t base, double scale, index_t minimum = 1024) {
  const double v = static_cast<double>(base) * scale;
  return std::max<index_t>(minimum, static_cast<index_t>(v));
}

/// Cube side for an ~n-node FEM grid.
index_t cube_side(index_t n) {
  return std::max<index_t>(
      4, static_cast<index_t>(std::llround(std::cbrt(static_cast<double>(n)))));
}

int rmat_scale(index_t target_rows) {
  int s = 10;
  while ((index_t{1} << (s + 1)) <= target_rows && s < 29) ++s;
  return s;
}

Coo make_fem(index_t target_rows, double scale, std::uint64_t seed) {
  const index_t side = cube_side(scaled(target_rows, scale));
  // The paper's FEM matrices are SPD; gen_laplacian3d guarantees that
  // (gen_fem3d can drift slightly indefinite), which CG requires.
  return gen_laplacian3d(side, side, side, 1, seed);
}

} // namespace

const std::vector<SuiteEntry>& paper_suite() {
  // Base sizes are paper rows / ~25 with the top of the suite compressed
  // further to fit container memory; relative ordering and structure class
  // follow Table 1.
  static const std::vector<SuiteEntry> suite = {
      {"inline_1", MatrixClass::kFem3D, 503712, 36816170, false, false,
       [](double s) { return make_fem(20000, s, 101); }},
      {"dielFilterV3real", MatrixClass::kFem3D, 1102824, 89306020, false,
       false, [](double s) { return make_fem(27000, s, 102); }},
      {"Flan_1565", MatrixClass::kFem3D, 1564794, 117406044, false, false,
       [](double s) { return make_fem(35000, s, 103); }},
      {"HV15R", MatrixClass::kCfdBanded, 2017169, 281419743, true, false,
       [](double s) {
         const index_t n = scaled(42000, s);
         return gen_banded_random(n, 150, 0.22, 104);
       }},
      {"Bump_2911", MatrixClass::kFem3D, 2911419, 127729899, false, false,
       [](double s) { return make_fem(50000, s, 105); }},
      {"Queen_4147", MatrixClass::kFem3D, 4147110, 329499284, false, false,
       [](double s) { return make_fem(62000, s, 106); }},
      {"Nm7", MatrixClass::kNuclearCI, 4985422, 647663919, false, false,
       [](double s) {
         const index_t n = scaled(72000, s);
         const index_t block_dim = 24;
         const index_t blocks = std::max<index_t>(8, n / block_dim);
         const double fill =
             60.0 / (static_cast<double>(block_dim) * 0.6 *
                     static_cast<double>(blocks));
         return gen_block_random(blocks, block_dim, std::min(1.0, fill), 0.6,
                                 107);
       }},
      {"nlpkkt160", MatrixClass::kSaddleKkt, 8345600, 229518112, false, false,
       [](double s) {
         return gen_saddle_kkt(scaled(60000, s), scaled(30000, s, 512), 3,
                               108);
       }},
      {"nlpkkt200", MatrixClass::kSaddleKkt, 16240000, 448225632, false,
       false,
       [](double s) {
         return gen_saddle_kkt(scaled(80000, s), scaled(40000, s, 512), 3,
                               109);
       }},
      {"nlpkkt240", MatrixClass::kSaddleKkt, 27993600, 774472352, false,
       false,
       [](double s) {
         return gen_saddle_kkt(scaled(100000, s), scaled(50000, s, 512), 3,
                               110);
       }},
      {"it-2004", MatrixClass::kPowerLaw, 41291594, 1120355761, true, false,
       [](double s) {
         return gen_rmat(rmat_scale(scaled(131072, s)), 13, 0.57, 0.19, 0.19,
                         111);
       }},
      {"twitter7", MatrixClass::kPowerLaw, 41652230, 868012304, true, true,
       [](double s) {
         return gen_rmat(rmat_scale(scaled(131072, s)), 10, 0.57, 0.19, 0.19,
                         112);
       }},
      {"sk-2005", MatrixClass::kPowerLaw, 50636154, 1909906755, true, false,
       [](double s) {
         return gen_rmat(rmat_scale(scaled(131072, s)), 19, 0.57, 0.19, 0.19,
                         113);
       }},
      {"webbase-2001", MatrixClass::kPowerLaw, 118142155, 1013570040, true,
       true,
       [](double s) {
         return gen_rmat(rmat_scale(scaled(262144, s)), 5, 0.57, 0.19, 0.19,
                         114);
       }},
      {"mawi_201512020130", MatrixClass::kHubTrace, 128568730, 270234840,
       true, true,
       [](double s) {
         const index_t n = scaled(280000, s);
         return gen_hub_trace(n, 64, 2.1, 115);
       }},
  };
  return suite;
}

const SuiteEntry& suite_entry(const std::string& name) {
  for (const SuiteEntry& e : paper_suite()) {
    if (e.name == name) return e;
  }
  throw support::Error("unknown suite matrix: " + name);
}

std::vector<std::string> default_bench_subset() {
  return {"inline_1", "HV15R",    "Nm7",
          "nlpkkt240", "twitter7", "mawi_201512020130"};
}

} // namespace sts::sparse
