// Structural statistics of sparse matrices.
//
// Used by Table 1 reproduction, by the block-size heuristic (block counts,
// empty-block ratios), and by tests asserting generator shape (degree skew
// of power-law graphs, bandedness of FEM matrices).
#pragma once

#include "sparse/csb.hpp"
#include "sparse/csr.hpp"

namespace sts::sparse {

struct MatrixStats {
  index_t rows = 0;
  index_t nnz = 0;
  double avg_row_nnz = 0.0;
  index_t max_row_nnz = 0;
  index_t min_row_nnz = 0;
  /// Coefficient of variation of row nnz: skew indicator driving the BSP
  /// load-imbalance the paper attributes its speedups to.
  double row_nnz_cv = 0.0;
  /// Mean |i - j| over nonzeros, as a fraction of n: locality indicator.
  double relative_bandwidth = 0.0;
};

[[nodiscard]] MatrixStats compute_stats(const Csr& a);

struct BlockingStats {
  index_t block_size = 0;
  index_t block_count = 0;      // blocks per dimension
  index_t nonempty_blocks = 0;  // SpMV/SpMM task count
  index_t total_blocks = 0;
  double empty_fraction = 0.0;
  double avg_block_nnz = 0.0;
  index_t max_block_nnz = 0;
};

[[nodiscard]] BlockingStats compute_blocking_stats(const Csb& a);

} // namespace sts::sparse
