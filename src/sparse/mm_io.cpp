#include "sparse/mm_io.hpp"

#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace sts::sparse {

using support::Error;

Coo read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) throw Error("matrix market: empty input");

  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket" || object != "matrix") {
    throw Error("matrix market: bad banner: " + line);
  }
  if (format != "coordinate") {
    throw Error("matrix market: only coordinate format is supported");
  }
  const bool pattern = field == "pattern";
  if (field != "real" && field != "integer" && !pattern) {
    throw Error("matrix market: unsupported field type: " + field);
  }
  const bool symmetric = symmetry == "symmetric";
  if (symmetry != "general" && !symmetric) {
    throw Error("matrix market: unsupported symmetry: " + symmetry);
  }

  // Skip comments, read the size line.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream size_line(line);
  index_t rows = 0;
  index_t cols = 0;
  std::int64_t nnz = 0;
  if (!(size_line >> rows >> cols >> nnz)) {
    throw Error("matrix market: bad size line: " + line);
  }

  Coo coo(rows, cols);
  coo.reserve(static_cast<std::size_t>(symmetric ? 2 * nnz : nnz));
  for (std::int64_t k = 0; k < nnz; ++k) {
    index_t r = 0;
    index_t c = 0;
    double v = 1.0;
    if (!(in >> r >> c)) throw Error("matrix market: truncated entries");
    if (!pattern && !(in >> v)) throw Error("matrix market: missing value");
    if (r < 1 || r > rows || c < 1 || c > cols) {
      throw Error("matrix market: index out of range");
    }
    coo.add(r - 1, c - 1, v);
    if (symmetric && r != c) coo.add(c - 1, r - 1, v);
  }
  coo.finalize();
  return coo;
}

Coo read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open matrix file: " + path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const Coo& coo, bool symmetric) {
  out << "%%MatrixMarket matrix coordinate real "
      << (symmetric ? "symmetric" : "general") << "\n";
  std::int64_t count = 0;
  for (const Triplet& t : coo.entries()) {
    if (!symmetric || t.row >= t.col) ++count;
  }
  out << coo.rows() << ' ' << coo.cols() << ' ' << count << "\n";
  out.precision(17);
  for (const Triplet& t : coo.entries()) {
    if (symmetric && t.row < t.col) continue;
    out << (t.row + 1) << ' ' << (t.col + 1) << ' ' << t.value << "\n";
  }
}

void write_matrix_market_file(const std::string& path, const Coo& coo,
                              bool symmetric) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open output file: " + path);
  write_matrix_market(out, coo, symmetric);
}

} // namespace sts::sparse
