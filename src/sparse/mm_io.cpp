#include "sparse/mm_io.hpp"

#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace sts::sparse {

using support::Error;

namespace {

/// Files written on Windows carry CRLF line endings; getline leaves the
/// '\r' on the line, which would break token comparisons and size parsing.
void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

std::string entry_context(std::int64_t k, std::int64_t nnz) {
  return "entry " + std::to_string(k + 1) + " of " + std::to_string(nnz);
}

} // namespace

Coo read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) throw Error("matrix market: empty input");
  strip_cr(line);

  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket" || object != "matrix") {
    throw Error("matrix market: bad banner: " + line);
  }
  if (format != "coordinate") {
    throw Error("matrix market: only coordinate format is supported");
  }
  if (field == "complex") {
    throw Error("matrix market: complex matrices are not supported "
                "(only real, integer and pattern fields)");
  }
  const bool pattern = field == "pattern";
  if (field != "real" && field != "integer" && !pattern) {
    throw Error("matrix market: unsupported field type: " + field);
  }
  const bool symmetric = symmetry == "symmetric";
  if (symmetry != "general" && !symmetric) {
    throw Error("matrix market: unsupported symmetry: " + symmetry);
  }

  // Skip comments, read the size line.
  while (std::getline(in, line)) {
    strip_cr(line);
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream size_line(line);
  // Parse into 64-bit so absurd values are caught by the explicit checks
  // below instead of silently failing or wrapping in narrower types.
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::int64_t nnz = 0;
  if (!(size_line >> rows >> cols >> nnz)) {
    throw Error("matrix market: bad size line: " + line);
  }
  if (rows < 0 || cols < 0 || nnz < 0) {
    throw Error("matrix market: negative dimensions or nnz: " + line);
  }
  // Triplet indices are 32-bit; larger dimensions would narrow silently.
  constexpr std::int64_t kMaxDim = 2147483647; // INT32_MAX
  if (rows > kMaxDim || cols > kMaxDim) {
    throw Error("matrix market: dimensions exceed 32-bit index range: " +
                line);
  }
  if (rows == 0 || cols == 0 ? nnz != 0 : nnz > rows * cols) {
    throw Error("matrix market: nnz " + std::to_string(nnz) +
                " exceeds matrix capacity " + std::to_string(rows) + " x " +
                std::to_string(cols));
  }

  Coo coo(static_cast<index_t>(rows), static_cast<index_t>(cols));
  coo.reserve(static_cast<std::size_t>(symmetric ? 2 * nnz : nnz));
  for (std::int64_t k = 0; k < nnz; ++k) {
    std::int64_t r = 0;
    std::int64_t c = 0;
    double v = 1.0;
    if (!(in >> r >> c)) {
      throw Error("matrix market: truncated entries at " +
                  entry_context(k, nnz));
    }
    if (!pattern && !(in >> v)) {
      throw Error("matrix market: missing value at " + entry_context(k, nnz));
    }
    if (r < 1 || r > rows || c < 1 || c > cols) {
      throw Error("matrix market: index (" + std::to_string(r) + ", " +
                  std::to_string(c) + ") out of range at " +
                  entry_context(k, nnz) + " (matrix is " +
                  std::to_string(rows) + " x " + std::to_string(cols) + ")");
    }
    coo.add(static_cast<index_t>(r - 1), static_cast<index_t>(c - 1), v);
    if (symmetric && r != c) {
      coo.add(static_cast<index_t>(c - 1), static_cast<index_t>(r - 1), v);
    }
  }
  coo.finalize();
  return coo;
}

Coo read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open matrix file: " + path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const Coo& coo, bool symmetric) {
  out << "%%MatrixMarket matrix coordinate real "
      << (symmetric ? "symmetric" : "general") << "\n";
  std::int64_t count = 0;
  for (const Triplet& t : coo.entries()) {
    if (!symmetric || t.row >= t.col) ++count;
  }
  out << coo.rows() << ' ' << coo.cols() << ' ' << count << "\n";
  out.precision(17);
  for (const Triplet& t : coo.entries()) {
    if (symmetric && t.row < t.col) continue;
    out << (t.row + 1) << ' ' << (t.col + 1) << ' ' << t.value << "\n";
  }
}

void write_matrix_market_file(const std::string& path, const Coo& coo,
                              bool symmetric) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open output file: " + path);
  write_matrix_market(out, coo, symmetric);
}

} // namespace sts::sparse
