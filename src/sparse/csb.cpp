#include "sparse/csb.hpp"

#include <algorithm>
#include <limits>

#include "la/microkernel.hpp"
#include "support/fault.hpp"

namespace sts::sparse {

namespace {

/// Construction scratch: one nonzero with block-local coordinates. Only
/// from_coo uses this; the stored format is SoA (see csb.hpp).
struct LocalEntry {
  std::int32_t row;
  std::int32_t col;
  double value;
};

} // namespace

Csb Csb::from_coo(const Coo& coo, index_t block_size) {
  STS_EXPECTS(block_size > 0);
  Csb out;
  out.rows_ = coo.rows();
  out.cols_ = coo.cols();
  out.block_ = block_size;
  out.nb_rows_ = (coo.rows() + block_size - 1) / block_size;
  out.nb_cols_ = (coo.cols() + block_size - 1) / block_size;
  out.packed_ = block_size <= 65536; // local coords fit 16 bits
  const std::size_t nb_cols = static_cast<std::size_t>(out.nb_cols_);
  const std::size_t nblocks =
      static_cast<std::size_t>(out.nb_rows_) * nb_cols;

  // Counting sort by block id keeps construction O(nnz + #blocks). Block
  // ids are formed in std::size_t throughout: with index_t factors an
  // nb_rows*nb_cols product could overflow a narrower intermediate.
  out.blkptr_.assign(nblocks + 1, 0);
  for (const Triplet& t : coo.entries()) {
    const std::size_t bi = static_cast<std::size_t>(t.row) /
                           static_cast<std::size_t>(block_size);
    const std::size_t bj = static_cast<std::size_t>(t.col) /
                           static_cast<std::size_t>(block_size);
    ++out.blkptr_[bi * nb_cols + bj + 1];
  }
  for (std::size_t k = 0; k < nblocks; ++k) {
    out.blkptr_[k + 1] += out.blkptr_[k];
  }
  std::vector<LocalEntry> scratch(coo.entries().size());
  std::vector<std::int64_t> cursor(out.blkptr_.begin(), out.blkptr_.end() - 1);
  for (const Triplet& t : coo.entries()) {
    const std::size_t bi = static_cast<std::size_t>(t.row) /
                           static_cast<std::size_t>(block_size);
    const std::size_t bj = static_cast<std::size_t>(t.col) /
                           static_cast<std::size_t>(block_size);
    const std::size_t blk = bi * nb_cols + bj;
    scratch[static_cast<std::size_t>(cursor[blk]++)] = {
        static_cast<std::int32_t>(t.row -
                                  static_cast<std::int64_t>(bi) * block_size),
        static_cast<std::int32_t>(t.col -
                                  static_cast<std::int64_t>(bj) * block_size),
        t.value};
  }
  // Sort each block by local (row, col): rows become contiguous segments
  // and the per-segment column stream is monotone over x.
  for (std::size_t k = 0; k < nblocks; ++k) {
    std::sort(scratch.begin() + out.blkptr_[k],
              scratch.begin() + out.blkptr_[k + 1],
              [](const LocalEntry& a, const LocalEntry& b) {
                return a.row != b.row ? a.row < b.row : a.col < b.col;
              });
  }

  // Emit the SoA streams and the per-block row-segment index. The streams
  // are AlignedBuffers written exactly once per slot here; segments go
  // through a growable scratch vector first (their count is unknown until
  // the scan finishes).
  const std::size_t nnz = scratch.size();
  out.values_ = support::AlignedBuffer<double>(nnz);
  if (out.packed_) {
    out.cols16_ = support::AlignedBuffer<std::uint16_t>(nnz);
  } else {
    out.cols32_ = support::AlignedBuffer<std::uint32_t>(nnz);
  }
  std::vector<RowSegment> segs;
  out.segptr_.assign(nblocks + 1, 0);
  for (std::size_t k = 0; k < nblocks; ++k) {
    const std::int64_t lo = out.blkptr_[k];
    const std::int64_t hi = out.blkptr_[k + 1];
    if (hi > lo) ++out.nonempty_;
    std::int64_t t = lo;
    while (t < hi) {
      const std::int32_t row = scratch[static_cast<std::size_t>(t)].row;
      const std::int64_t seg_begin = t;
      while (t < hi && scratch[static_cast<std::size_t>(t)].row == row) {
        const LocalEntry& e = scratch[static_cast<std::size_t>(t)];
        out.values_[static_cast<std::size_t>(t)] = e.value;
        if (out.packed_) {
          out.cols16_[static_cast<std::size_t>(t)] =
              static_cast<std::uint16_t>(e.col);
        } else {
          out.cols32_[static_cast<std::size_t>(t)] =
              static_cast<std::uint32_t>(e.col);
        }
        ++t;
      }
      segs.push_back(
          {seg_begin, row, static_cast<std::int32_t>(t - seg_begin)});
    }
    out.segptr_[k + 1] = static_cast<std::int64_t>(segs.size());
  }
  out.segs_ = support::AlignedBuffer<RowSegment>(segs.size());
  std::copy(segs.begin(), segs.end(), out.segs_.begin());
  return out;
}

Csb::DomainMap Csb::partition_block_rows(unsigned domains) const {
  DomainMap map;
  if (domains == 0) domains = 1;
  map.stripe_end.resize(domains);
  if (nnz() == 0) {
    // Degenerate: balance row counts instead (zero tasks still exist).
    for (unsigned d = 0; d < domains; ++d) {
      map.stripe_end[d] = nb_rows_ * static_cast<index_t>(d + 1) /
                          static_cast<index_t>(domains);
    }
    return map;
  }
  // Cut each stripe where the running nnz prefix crosses (d+1)/domains of
  // the total; stripes stay contiguous and trailing rows land in the last.
  const double total = static_cast<double>(nnz());
  index_t bi = 0;
  std::int64_t acc = 0;
  for (unsigned d = 0; d + 1 < domains; ++d) {
    const double target = total * static_cast<double>(d + 1) /
                          static_cast<double>(domains);
    while (bi < nb_rows_ && static_cast<double>(acc) < target) {
      acc += block_row_nnz(bi);
      ++bi;
    }
    map.stripe_end[d] = bi;
  }
  map.stripe_end.back() = nb_rows_;
  return map;
}

void Csb::place_stripes(
    const DomainMap& map,
    const std::function<void(int, std::function<void()>)>& submit,
    const std::function<void()>& wait) {
  STS_EXPECTS(!map.stripe_end.empty() &&
              map.stripe_end.back() == nb_rows_);
  // Fresh buffers: aligned_alloc maps pages but does not fault them, so the
  // first write decides their NUMA node. Each domain's stripe is one
  // contiguous range of the block-row-major streams, and the copy task for
  // it runs under that domain's hint — real first-touch placement, not the
  // single-threaded layout from_coo produced.
  support::AlignedBuffer<double> values(values_.size());
  support::AlignedBuffer<std::uint16_t> cols16(cols16_.size());
  support::AlignedBuffer<std::uint32_t> cols32(cols32_.size());
  support::AlignedBuffer<RowSegment> segs(segs_.size());
  const std::size_t nbc = static_cast<std::size_t>(nb_cols_);
  index_t row0 = 0;
  for (int d = 0; d < map.domains(); ++d) {
    const index_t row1 = map.stripe_end[static_cast<std::size_t>(d)];
    const std::size_t e0 =
        static_cast<std::size_t>(blkptr_[static_cast<std::size_t>(row0) * nbc]);
    const std::size_t e1 =
        static_cast<std::size_t>(blkptr_[static_cast<std::size_t>(row1) * nbc]);
    const std::size_t s0 =
        static_cast<std::size_t>(segptr_[static_cast<std::size_t>(row0) * nbc]);
    const std::size_t s1 =
        static_cast<std::size_t>(segptr_[static_cast<std::size_t>(row1) * nbc]);
    row0 = row1;
    if (e0 == e1 && s0 == s1) continue;
    submit(d, [this, &values, &cols16, &cols32, &segs, e0, e1, s0, s1] {
      std::copy(values_.data() + e0, values_.data() + e1, values.data() + e0);
      if (packed_) {
        std::copy(cols16_.data() + e0, cols16_.data() + e1,
                  cols16.data() + e0);
      } else {
        std::copy(cols32_.data() + e0, cols32_.data() + e1,
                  cols32.data() + e0);
      }
      std::copy(segs_.data() + s0, segs_.data() + s1, segs.data() + s0);
    });
  }
  wait();
  values_ = std::move(values);
  cols16_ = std::move(cols16);
  cols32_ = std::move(cols32);
  segs_ = std::move(segs);
}

Csb Csb::from_csr(const Csr& csr, index_t block_size) {
  return from_coo(csr.to_coo(), block_size);
}

Coo Csb::to_coo() const {
  Coo coo(rows_, cols_);
  coo.reserve(values_.size());
  for (index_t bi = 0; bi < nb_rows_; ++bi) {
    for (index_t bj = 0; bj < nb_cols_; ++bj) {
      const BlockView v = block_view(bi, bj);
      for (const RowSegment& seg : v.segments) {
        for (std::int64_t t = seg.begin; t < seg.begin + seg.count; ++t) {
          coo.add(bi * block_ + seg.row, bj * block_ + v.col(t),
                  values_[static_cast<std::size_t>(t)]);
        }
      }
    }
  }
  return coo;
}

// Fault point "spmv_block": every solver version funnels its SpMV/SpMM
// work through these two kernels, so one site covers all five execution
// styles. kind=throw aborts the enclosing task; kind=nan poisons the first
// output row of the block, exercising the solvers' non-finite guards.

namespace {

template <typename ColT>
void spmv_segments(std::span<const Csb::RowSegment> segs, const double* vals,
                   const ColT* cols, const double* xb, double* yb) {
  for (const Csb::RowSegment& seg : segs) {
    const double* v = vals + seg.begin;
    const ColT* c = cols + seg.begin;
    double acc = 0.0;
    for (std::int32_t t = 0; t < seg.count; ++t) {
      acc += v[t] * xb[c[t]];
    }
    yb[seg.row] += acc;
  }
}

/// Fixed-width SpMM over row segments: the accumulator lives in registers
/// for the whole segment and spills to y once per output row.
template <int N, typename ColT>
void spmm_segments_fixed(std::span<const Csb::RowSegment> segs,
                         const double* vals, const ColT* cols,
                         const double* xb, la::index_t ldx, double* yb,
                         la::index_t ldy) {
  for (const Csb::RowSegment& seg : segs) {
    const double* v = vals + seg.begin;
    const ColT* c = cols + seg.begin;
    double acc[N] = {};
    for (std::int32_t t = 0; t < seg.count; ++t) {
      la::row_axpy<N>(v[t], xb + static_cast<la::index_t>(c[t]) * ldx, acc);
    }
    la::row_add<N>(acc, yb + seg.row * ldy);
  }
}

template <typename ColT>
void spmm_segments_generic(std::span<const Csb::RowSegment> segs,
                           const double* vals, const ColT* cols,
                           const double* xb, la::index_t ldx, double* yb,
                           la::index_t ldy, la::index_t n) {
  for (const Csb::RowSegment& seg : segs) {
    const double* v = vals + seg.begin;
    const ColT* c = cols + seg.begin;
    double* yr = yb + seg.row * ldy;
    for (std::int32_t t = 0; t < seg.count; ++t) {
      la::row_axpy_n(v[t], xb + static_cast<la::index_t>(c[t]) * ldx, yr, n);
    }
  }
}

template <typename ColT>
void spmm_dispatch(std::span<const Csb::RowSegment> segs, const double* vals,
                   const ColT* cols, const double* xb, la::index_t ldx,
                   double* yb, la::index_t ldy, la::index_t n) {
  // Fixed-width bodies for the LOBPCG block-vector widths the paper uses
  // (and the small even widths the tests exercise); generic tail otherwise.
  switch (n) {
  case 1:
    for (const Csb::RowSegment& seg : segs) {
      const double* v = vals + seg.begin;
      const ColT* c = cols + seg.begin;
      double acc = 0.0;
      for (std::int32_t t = 0; t < seg.count; ++t) {
        acc += v[t] * xb[static_cast<la::index_t>(c[t]) * ldx];
      }
      yb[seg.row * ldy] += acc;
    }
    return;
  case 2:
    spmm_segments_fixed<2>(segs, vals, cols, xb, ldx, yb, ldy);
    return;
  case 4:
    spmm_segments_fixed<4>(segs, vals, cols, xb, ldx, yb, ldy);
    return;
  case 8:
    spmm_segments_fixed<8>(segs, vals, cols, xb, ldx, yb, ldy);
    return;
  case 16:
    spmm_segments_fixed<16>(segs, vals, cols, xb, ldx, yb, ldy);
    return;
  default:
    spmm_segments_generic(segs, vals, cols, xb, ldx, yb, ldy, n);
    return;
  }
}

} // namespace

void csb_block_spmv(const Csb& a, index_t bi, index_t bj,
                    std::span<const double> x, std::span<double> y) {
  STS_EXPECTS(static_cast<index_t>(x.size()) == a.cols());
  STS_EXPECTS(static_cast<index_t>(y.size()) == a.rows());
  const double* xb = x.data() + bj * a.block_size();
  double* yb = y.data() + bi * a.block_size();
  if (support::fault::check("spmv_block") && a.rows_in_block(bi) > 0) {
    yb[0] = std::numeric_limits<double>::quiet_NaN();
  }
  const Csb::BlockView v = a.block_view(bi, bj);
  if (v.cols16 != nullptr) {
    spmv_segments(v.segments, v.values, v.cols16, xb, yb);
  } else {
    spmv_segments(v.segments, v.values, v.cols32, xb, yb);
  }
}

void csb_block_spmm(const Csb& a, index_t bi, index_t bj,
                    la::ConstMatrixView x, la::MatrixView y) {
  STS_EXPECTS(x.rows == a.cols() && y.rows == a.rows() && x.cols == y.cols);
  const index_t r0 = bi * a.block_size();
  const index_t c0 = bj * a.block_size();
  const index_t n = x.cols;
  if (support::fault::check("spmv_block") && a.rows_in_block(bi) > 0) {
    double* yr = y.row(r0);
    for (index_t j = 0; j < n; ++j) {
      yr[j] = std::numeric_limits<double>::quiet_NaN();
    }
  }
  const double* xb = x.data + c0 * x.ld;
  double* yb = y.data + r0 * y.ld;
  const Csb::BlockView v = a.block_view(bi, bj);
  if (v.cols16 != nullptr) {
    spmm_dispatch(v.segments, v.values, v.cols16, xb, x.ld, yb, y.ld, n);
  } else {
    spmm_dispatch(v.segments, v.values, v.cols32, xb, x.ld, yb, y.ld, n);
  }
}

void csb_block_zero(const Csb& a, index_t bi, std::span<double> y) {
  STS_EXPECTS(static_cast<index_t>(y.size()) == a.rows());
  const index_t r0 = bi * a.block_size();
  const index_t nr = a.rows_in_block(bi);
  std::fill(y.begin() + r0, y.begin() + r0 + nr, 0.0);
}

void csb_block_zero(const Csb& a, index_t bi, la::MatrixView y) {
  STS_EXPECTS(y.rows == a.rows());
  const index_t r0 = bi * a.block_size();
  const index_t nr = a.rows_in_block(bi);
  for (index_t r = 0; r < nr; ++r) {
    double* yr = y.row(r0 + r);
    for (index_t j = 0; j < y.cols; ++j) yr[j] = 0.0;
  }
}

} // namespace sts::sparse
