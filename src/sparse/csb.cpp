#include "sparse/csb.hpp"

#include <algorithm>
#include <limits>

#include "support/fault.hpp"

namespace sts::sparse {

Csb Csb::from_coo(const Coo& coo, index_t block_size) {
  STS_EXPECTS(block_size > 0);
  Csb out;
  out.rows_ = coo.rows();
  out.cols_ = coo.cols();
  out.block_ = block_size;
  out.nb_rows_ = (coo.rows() + block_size - 1) / block_size;
  out.nb_cols_ = (coo.cols() + block_size - 1) / block_size;
  const std::size_t nblocks =
      static_cast<std::size_t>(out.nb_rows_) *
      static_cast<std::size_t>(out.nb_cols_);

  // Counting sort by block id keeps construction O(nnz + #blocks).
  out.blkptr_.assign(nblocks + 1, 0);
  for (const Triplet& t : coo.entries()) {
    const index_t bi = t.row / block_size;
    const index_t bj = t.col / block_size;
    ++out.blkptr_[static_cast<std::size_t>(bi * out.nb_cols_ + bj) + 1];
  }
  for (std::size_t k = 0; k < nblocks; ++k) {
    out.blkptr_[k + 1] += out.blkptr_[k];
  }
  out.entries_.resize(coo.entries().size());
  std::vector<std::int64_t> cursor(out.blkptr_.begin(), out.blkptr_.end() - 1);
  for (const Triplet& t : coo.entries()) {
    const index_t bi = t.row / block_size;
    const index_t bj = t.col / block_size;
    const std::size_t blk = static_cast<std::size_t>(bi * out.nb_cols_ + bj);
    out.entries_[static_cast<std::size_t>(cursor[blk]++)] = {
        static_cast<std::int32_t>(t.row - bi * block_size),
        static_cast<std::int32_t>(t.col - bj * block_size), t.value};
  }
  // Sort each block by local (row, col): keeps the SpMV inner loop walking
  // y and x with monotone strides inside the block.
  for (std::size_t k = 0; k < nblocks; ++k) {
    std::sort(out.entries_.begin() + out.blkptr_[k],
              out.entries_.begin() + out.blkptr_[k + 1],
              [](const Entry& a, const Entry& b) {
                return a.row != b.row ? a.row < b.row : a.col < b.col;
              });
  }
  return out;
}

Csb Csb::from_csr(const Csr& csr, index_t block_size) {
  return from_coo(csr.to_coo(), block_size);
}

index_t Csb::nonempty_blocks() const {
  index_t count = 0;
  for (std::size_t k = 0; k + 1 < blkptr_.size(); ++k) {
    count += (blkptr_[k + 1] > blkptr_[k]) ? 1 : 0;
  }
  return count;
}

Coo Csb::to_coo() const {
  Coo coo(rows_, cols_);
  coo.reserve(entries_.size());
  for (index_t bi = 0; bi < nb_rows_; ++bi) {
    for (index_t bj = 0; bj < nb_cols_; ++bj) {
      for (const Entry& e : block(bi, bj)) {
        coo.add(bi * block_ + e.row, bj * block_ + e.col, e.value);
      }
    }
  }
  return coo;
}

// Fault point "spmv_block": every solver version funnels its SpMV/SpMM
// work through these two kernels, so one site covers all five execution
// styles. kind=throw aborts the enclosing task; kind=nan poisons the first
// output row of the block, exercising the solvers' non-finite guards.

void csb_block_spmv(const Csb& a, index_t bi, index_t bj,
                    std::span<const double> x, std::span<double> y) {
  STS_EXPECTS(static_cast<index_t>(x.size()) == a.cols());
  STS_EXPECTS(static_cast<index_t>(y.size()) == a.rows());
  const double* xb = x.data() + bj * a.block_size();
  double* yb = y.data() + bi * a.block_size();
  if (support::fault::check("spmv_block") && a.rows_in_block(bi) > 0) {
    yb[0] = std::numeric_limits<double>::quiet_NaN();
  }
  for (const Csb::Entry& e : a.block(bi, bj)) {
    yb[e.row] += e.value * xb[e.col];
  }
}

void csb_block_spmm(const Csb& a, index_t bi, index_t bj,
                    la::ConstMatrixView x, la::MatrixView y) {
  STS_EXPECTS(x.rows == a.cols() && y.rows == a.rows() && x.cols == y.cols);
  const index_t r0 = bi * a.block_size();
  const index_t c0 = bj * a.block_size();
  const index_t n = x.cols;
  if (support::fault::check("spmv_block") && a.rows_in_block(bi) > 0) {
    double* yr = y.row(r0);
    for (index_t j = 0; j < n; ++j) {
      yr[j] = std::numeric_limits<double>::quiet_NaN();
    }
  }
  for (const Csb::Entry& e : a.block(bi, bj)) {
    double* yr = y.row(r0 + e.row);
    const double* xc = x.row(c0 + e.col);
    for (index_t j = 0; j < n; ++j) yr[j] += e.value * xc[j];
  }
}

void csb_block_zero(const Csb& a, index_t bi, std::span<double> y) {
  STS_EXPECTS(static_cast<index_t>(y.size()) == a.rows());
  const index_t r0 = bi * a.block_size();
  const index_t nr = a.rows_in_block(bi);
  std::fill(y.begin() + r0, y.begin() + r0 + nr, 0.0);
}

void csb_block_zero(const Csb& a, index_t bi, la::MatrixView y) {
  STS_EXPECTS(y.rows == a.rows());
  const index_t r0 = bi * a.block_size();
  const index_t nr = a.rows_in_block(bi);
  for (index_t r = 0; r < nr; ++r) {
    double* yr = y.row(r0 + r);
    for (index_t j = 0; j < y.cols; ++j) yr[j] = 0.0;
  }
}

} // namespace sts::sparse
