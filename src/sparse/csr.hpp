// Compressed Sparse Row storage + sequential row-range kernels.
//
// CSR backs the `libcsr` BSP baseline (the paper's MKL/CSR version). The
// kernels here are single-threaded over a row range so the BSP engine can
// parallelize with a plain `omp parallel for` and the simulator can cost
// per-range work.
#pragma once

#include <span>
#include <vector>

#include "la/dense.hpp"
#include "sparse/coo.hpp"

namespace sts::sparse {

/// Immutable CSR matrix. rowptr has rows()+1 entries; column indices within
/// a row are sorted ascending.
class Csr {
public:
  Csr() = default;

  /// Builds from finalized or unfinalized COO (duplicates are summed).
  static Csr from_coo(Coo coo);

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] index_t nnz() const noexcept {
    return static_cast<index_t>(values_.size());
  }

  [[nodiscard]] std::span<const std::int64_t> rowptr() const noexcept {
    return rowptr_;
  }
  [[nodiscard]] std::span<const std::int32_t> colidx() const noexcept {
    return colidx_;
  }
  [[nodiscard]] std::span<const double> values() const noexcept {
    return values_;
  }

  [[nodiscard]] index_t row_nnz(index_t r) const {
    STS_EXPECTS(r >= 0 && r < rows_);
    return rowptr_[static_cast<std::size_t>(r) + 1] -
           rowptr_[static_cast<std::size_t>(r)];
  }

  [[nodiscard]] Coo to_coo() const;

  /// Heap bytes held by the matrix arrays (rowptr + colidx + values); the
  /// figure the service-layer plan cache budgets against.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return rowptr_.size() * sizeof(std::int64_t) +
           colidx_.size() * sizeof(std::int32_t) +
           values_.size() * sizeof(double);
  }

private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<std::int64_t> rowptr_;
  std::vector<std::int32_t> colidx_;
  std::vector<double> values_;
};

/// y[r0:r1] = A[r0:r1, :] * x. y must be pre-sized to A.rows().
void csr_spmv_range(const Csr& a, std::span<const double> x,
                    std::span<double> y, index_t r0, index_t r1);

/// Y[r0:r1, :] = A[r0:r1, :] * X for dense blocks of vectors.
void csr_spmm_range(const Csr& a, la::ConstMatrixView x, la::MatrixView y,
                    index_t r0, index_t r1);

} // namespace sts::sparse
