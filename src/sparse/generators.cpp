#include "sparse/generators.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace sts::sparse {

using support::Xoshiro256;

Coo gen_fem3d(index_t nx, index_t ny, index_t nz, int reach,
              std::uint64_t seed) {
  STS_EXPECTS(nx > 0 && ny > 0 && nz > 0 && reach >= 1);
  const index_t n = nx * ny * nz;
  Coo coo(n, n);
  Xoshiro256 rng(seed);
  const int r = reach;
  coo.reserve(static_cast<std::size_t>(n) *
              static_cast<std::size_t>((2 * r + 1) * (2 * r + 1) *
                                       (2 * r + 1)));
  auto id = [&](index_t x, index_t y, index_t z) {
    return (z * ny + y) * nx + x;
  };
  for (index_t z = 0; z < nz; ++z) {
    for (index_t y = 0; y < ny; ++y) {
      for (index_t x = 0; x < nx; ++x) {
        const index_t row = id(x, y, z);
        double offdiag_sum = 0.0;
        for (int dz = -r; dz <= r; ++dz) {
          for (int dy = -r; dy <= r; ++dy) {
            for (int dx = -r; dx <= r; ++dx) {
              if (dx == 0 && dy == 0 && dz == 0) continue;
              const index_t xx = x + dx;
              const index_t yy = y + dy;
              const index_t zz = z + dz;
              if (xx < 0 || xx >= nx || yy < 0 || yy >= ny || zz < 0 ||
                  zz >= nz) {
                continue;
              }
              const index_t col = id(xx, yy, zz);
              if (col > row) continue; // emit lower triangle, mirror below
              // Symmetric value from the unordered pair hash so both
              // triangles agree.
              support::SplitMix64 h(
                  (static_cast<std::uint64_t>(col) << 32) ^
                  static_cast<std::uint64_t>(row) ^ seed);
              const double v =
                  -0.25 - 0.5 * static_cast<double>(h.next() >> 11) *
                              0x1.0p-53;
              coo.add(row, col, v);
              if (col != row) coo.add(col, row, v);
              offdiag_sum += std::abs(v);
            }
          }
        }
        // Diagonal dominance keeps the matrix SPD-like; the small random
        // perturbation spreads the spectrum so eigensolvers converge
        // non-trivially.
        coo.add(row, row, 2.0 * offdiag_sum + 1.0 + rng.uniform());
      }
    }
  }
  // Note: the loop above emits the lower entry when visiting the larger row
  // and mirrors it, so every off-diagonal pair appears exactly once per
  // triangle. Duplicate-free, but finalize() sorts for CSR/CSB conversion.
  coo.finalize();
  STS_ENSURES(coo.nnz() > 0);
  return coo;
}

Coo gen_laplacian3d(index_t nx, index_t ny, index_t nz, int reach,
                    std::uint64_t seed) {
  STS_EXPECTS(nx > 0 && ny > 0 && nz > 0 && reach >= 1);
  const index_t n = nx * ny * nz;
  Coo coo(n, n);
  Xoshiro256 rng(seed);
  const int r = reach;
  coo.reserve(static_cast<std::size_t>(n) *
              static_cast<std::size_t>((2 * r + 1) * (2 * r + 1) *
                                       (2 * r + 1)));
  auto id = [&](index_t x, index_t y, index_t z) {
    return (z * ny + y) * nx + x;
  };
  // Accumulate the FULL off-diagonal row sums (both triangles) so the
  // diagonal added afterwards strictly dominates — that, plus symmetry
  // and a positive diagonal, is what guarantees positive definiteness.
  std::vector<double> offdiag_sum(static_cast<std::size_t>(n), 0.0);
  for (index_t z = 0; z < nz; ++z) {
    for (index_t y = 0; y < ny; ++y) {
      for (index_t x = 0; x < nx; ++x) {
        const index_t row = id(x, y, z);
        for (int dz = -r; dz <= r; ++dz) {
          for (int dy = -r; dy <= r; ++dy) {
            for (int dx = -r; dx <= r; ++dx) {
              if (dx == 0 && dy == 0 && dz == 0) continue;
              const index_t xx = x + dx;
              const index_t yy = y + dy;
              const index_t zz = z + dz;
              if (xx < 0 || xx >= nx || yy < 0 || yy >= ny || zz < 0 ||
                  zz >= nz) {
                continue;
              }
              const index_t col = id(xx, yy, zz);
              if (col >= row) continue; // emit lower triangle, mirror
              support::SplitMix64 h(
                  (static_cast<std::uint64_t>(col) << 32) ^
                  static_cast<std::uint64_t>(row) ^ seed);
              const double v =
                  -0.25 - 0.5 * static_cast<double>(h.next() >> 11) *
                              0x1.0p-53;
              coo.add(row, col, v);
              coo.add(col, row, v);
              offdiag_sum[static_cast<std::size_t>(row)] += std::abs(v);
              offdiag_sum[static_cast<std::size_t>(col)] += std::abs(v);
            }
          }
        }
      }
    }
  }
  for (index_t row = 0; row < n; ++row) {
    // Random regularization spreads the spectrum so CG convergence is
    // non-trivial while lambda_min stays >= 0.1 (Gershgorin).
    coo.add(row, row, offdiag_sum[static_cast<std::size_t>(row)] + 0.1 +
                          0.9 * rng.uniform());
  }
  coo.finalize();
  STS_ENSURES(coo.nnz() > 0);
  return coo;
}

Coo gen_saddle_kkt(index_t n_primal, index_t n_dual, int nnz_per_row,
                   std::uint64_t seed) {
  STS_EXPECTS(n_primal > 0 && n_dual > 0 && nnz_per_row > 0);
  // H: 3D 7-point stencil on an approximately cubic grid over n_primal.
  const index_t side =
      std::max<index_t>(2, static_cast<index_t>(std::cbrt(
                               static_cast<double>(n_primal))));
  const index_t n = n_primal + n_dual;
  Coo coo(n, n);
  Xoshiro256 rng(seed);
  auto clampi = [&](index_t v) { return std::min(v, n_primal - 1); };
  for (index_t i = 0; i < n_primal; ++i) {
    coo.add(i, i, 4.0 + rng.uniform());
    const index_t nbrs[3] = {clampi(i + 1), clampi(i + side),
                             clampi(i + side * side)};
    for (index_t nb : nbrs) {
      if (nb == i) continue;
      const double v = -0.5 - 0.5 * rng.uniform();
      coo.add(i, nb, v);
      coo.add(nb, i, v);
    }
  }
  // A: each dual row constrains primal variables in a local mesh
  // neighborhood (PDE-constrained optimization couples nearby unknowns;
  // this keeps the KKT matrix banded, like the real nlpkkt family).
  for (index_t d = 0; d < n_dual; ++d) {
    const index_t row = n_primal + d;
    const index_t center = d * n_primal / n_dual;
    for (int k = 0; k < nnz_per_row; ++k) {
      const index_t offset =
          static_cast<index_t>(rng.below(2 * static_cast<std::uint64_t>(
                                                 side))) -
          side;
      const index_t col =
          std::clamp<index_t>(center + offset, 0, n_primal - 1);
      const double v = rng.uniform(-1.0, 1.0);
      coo.add(row, col, v);
      coo.add(col, row, v);
    }
    // Small regularization on the dual diagonal keeps Cholesky-based
    // orthonormalization in LOBPCG well behaved.
    coo.add(row, row, 1e-3);
  }
  coo.finalize();
  return coo;
}

Coo gen_rmat(int scale, int edge_factor, double a, double b, double c,
             std::uint64_t seed) {
  STS_EXPECTS(scale >= 1 && scale < 31 && edge_factor >= 1);
  STS_EXPECTS(a > 0 && b >= 0 && c >= 0 && a + b + c < 1.0);
  const index_t n = index_t{1} << scale;
  const std::int64_t edges = static_cast<std::int64_t>(n) * edge_factor;
  Coo coo(n, n);
  coo.reserve(static_cast<std::size_t>(edges));
  Xoshiro256 rng(seed);
  // Raw R-MAT concentrates hubs at low vertex ids, which is an artifact of
  // the recursion, not of real web/social graphs (crawl orderings scatter
  // high-degree vertices). A random relabeling keeps the degree
  // distribution but removes the artificial id clustering.
  std::vector<index_t> relabel(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) relabel[static_cast<std::size_t>(i)] = i;
  for (index_t i = n - 1; i > 0; --i) {
    const index_t j = static_cast<index_t>(
        rng.below(static_cast<std::uint64_t>(i) + 1));
    std::swap(relabel[static_cast<std::size_t>(i)],
              relabel[static_cast<std::size_t>(j)]);
  }
  for (std::int64_t e = 0; e < edges; ++e) {
    index_t r = 0;
    index_t col = 0;
    for (int bit = 0; bit < scale; ++bit) {
      const double u = rng.uniform();
      int quad;
      if (u < a) {
        quad = 0;
      } else if (u < a + b) {
        quad = 1;
      } else if (u < a + b + c) {
        quad = 2;
      } else {
        quad = 3;
      }
      r = (r << 1) | (quad >> 1);
      col = (col << 1) | (quad & 1);
    }
    coo.add(relabel[static_cast<std::size_t>(r)],
            relabel[static_cast<std::size_t>(col)], 1.0);
  }
  coo.symmetrize_lower();
  Xoshiro256 fill_rng(seed ^ 0x9e3779b9ULL);
  coo.fill_random_symmetric(fill_rng);
  // Ensure no empty rows break Lanczos normalization: add a diagonal.
  for (index_t i = 0; i < n; ++i) coo.add(i, i, 1.0);
  coo.finalize();
  return coo;
}

Coo gen_block_random(index_t n_blocks, index_t block_dim, double fill_prob,
                     double entry_prob, std::uint64_t seed) {
  STS_EXPECTS(n_blocks > 0 && block_dim > 0);
  STS_EXPECTS(fill_prob > 0.0 && fill_prob <= 1.0);
  const index_t n = n_blocks * block_dim;
  Coo coo(n, n);
  Xoshiro256 rng(seed);
  for (index_t bi = 0; bi < n_blocks; ++bi) {
    for (index_t bj = 0; bj <= bi; ++bj) {
      const bool present = bi == bj || rng.uniform() < fill_prob;
      if (!present) continue;
      for (index_t r = 0; r < block_dim; ++r) {
        for (index_t c = 0; c < block_dim; ++c) {
          const index_t gr = bi * block_dim + r;
          const index_t gc = bj * block_dim + c;
          if (gc > gr) continue;
          if (gr != gc && rng.uniform() >= entry_prob) continue;
          const double v =
              gr == gc ? 4.0 + rng.uniform() : rng.uniform(-1.0, 1.0);
          coo.add(gr, gc, v);
          if (gr != gc) coo.add(gc, gr, v);
        }
      }
    }
  }
  coo.finalize();
  return coo;
}

Coo gen_banded_random(index_t n, index_t bw, double density,
                      std::uint64_t seed) {
  STS_EXPECTS(n > 0 && bw > 0 && density > 0.0 && density <= 1.0);
  Coo coo(n, n);
  Xoshiro256 rng(seed);
  const double expected =
      static_cast<double>(n) * static_cast<double>(bw) * density * 2.0;
  coo.reserve(static_cast<std::size_t>(expected) + static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, 4.0 + rng.uniform());
    const index_t lo = std::max<index_t>(0, i - bw);
    for (index_t j = lo; j < i; ++j) {
      if (rng.uniform() >= density) continue;
      const double v = rng.uniform(-1.0, 1.0);
      coo.add(i, j, v);
      coo.add(j, i, v);
    }
  }
  coo.finalize();
  return coo;
}

Coo gen_hub_trace(index_t n, index_t hubs, double avg_degree,
                  std::uint64_t seed) {
  STS_EXPECTS(n > 0 && hubs > 0 && hubs <= n && avg_degree > 0.0);
  Coo coo(n, n);
  Xoshiro256 rng(seed);
  const std::int64_t edges =
      static_cast<std::int64_t>(static_cast<double>(n) * avg_degree / 2.0);
  // Hubs scattered across the id space (busy endpoints appear anywhere in
  // a packet trace's address ordering).
  std::vector<index_t> hub_ids(static_cast<std::size_t>(hubs));
  for (index_t h = 0; h < hubs; ++h) {
    hub_ids[static_cast<std::size_t>(h)] =
        static_cast<index_t>(rng.below(static_cast<std::uint64_t>(n)));
  }
  for (std::int64_t e = 0; e < edges; ++e) {
    // 85% of edges touch a hub, matching the extreme skew of a packet
    // trace where most flows involve a few busy endpoints.
    const index_t u =
        rng.uniform() < 0.85
            ? hub_ids[static_cast<std::size_t>(
                  rng.below(static_cast<std::uint64_t>(hubs)))]
            : static_cast<index_t>(
                  rng.below(static_cast<std::uint64_t>(n)));
    const index_t v =
        static_cast<index_t>(rng.below(static_cast<std::uint64_t>(n)));
    const double w = rng.uniform(0.1, 1.0);
    coo.add(u, v, w);
    if (u != v) coo.add(v, u, w);
  }
  for (index_t i = 0; i < n; ++i) coo.add(i, i, 1.0);
  coo.finalize();
  return coo;
}

} // namespace sts::sparse
