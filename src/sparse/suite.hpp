// The evaluation suite: synthetic analogues of the paper's Table 1 matrices.
//
// Each entry keeps the paper's matrix name (with a "-like" suffix implied),
// its structural class, and its paper-reported dimensions for reference.
// make(scale) generates the analogue at a size scaled for the host:
// scale = 1.0 produces the default container-sized suite (rows roughly
// paper_rows/25, capped for memory); smaller scales shrink further for
// quick runs.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sparse/coo.hpp"

namespace sts::sparse {

enum class MatrixClass {
  kFem3D,       // structural FEM problems
  kCfdBanded,   // CFD with strong banded locality
  kSaddleKkt,   // optimization KKT systems
  kNuclearCI,   // block-sparse configuration-interaction Hamiltonians
  kPowerLaw,    // web/social graphs
  kHubTrace,    // ultra-sparse skewed traffic matrices
};

[[nodiscard]] const char* to_string(MatrixClass c);

struct SuiteEntry {
  std::string name;            // paper matrix name
  MatrixClass matrix_class;
  index_t paper_rows;          // as reported in Table 1
  index_t paper_nnz;
  bool paper_symmetrized;      // bold in Table 1: L + L^T - D applied
  bool paper_random_filled;    // italic in Table 1: binary, random values
  std::function<Coo(double scale)> make;
};

/// All 15 suite entries, in the paper's Table 1 order.
[[nodiscard]] const std::vector<SuiteEntry>& paper_suite();

/// Entry lookup by paper name; throws support::Error if unknown.
[[nodiscard]] const SuiteEntry& suite_entry(const std::string& name);

/// A representative 6-matrix subset spanning all structure classes, used by
/// benches when the full 15-matrix sweep would be too slow (override with
/// STS_FULL_SUITE=1).
[[nodiscard]] std::vector<std::string> default_bench_subset();

} // namespace sts::sparse
