#include "perf/trace.hpp"

#include <algorithm>
#include <limits>
#include <ostream>

#include "support/error.hpp"
#include "support/escape.hpp"

namespace sts::perf {

TraceRecorder::TraceRecorder(unsigned workers) : lanes_(std::max(1u, workers)) {}

void TraceRecorder::record(unsigned worker, TaskEvent event) {
  if (worker < lanes_.size()) {
    lanes_[worker].push_back(event);
    return;
  }
  const std::lock_guard<std::mutex> lock(overflow_mutex_);
  overflow_.push_back(event);
}

std::size_t TraceRecorder::overflow_count() const {
  const std::lock_guard<std::mutex> lock(overflow_mutex_);
  return overflow_.size();
}

std::vector<TaskEvent> TraceRecorder::events() const {
  std::vector<TaskEvent> all;
  std::size_t total = 0;
  for (const auto& lane : lanes_) total += lane.size();
  all.reserve(total);
  for (const auto& lane : lanes_) all.insert(all.end(), lane.begin(), lane.end());
  {
    const std::lock_guard<std::mutex> lock(overflow_mutex_);
    all.insert(all.end(), overflow_.begin(), overflow_.end());
  }
  if (all.empty()) return all;
  std::int64_t t0 = std::numeric_limits<std::int64_t>::max();
  for (const TaskEvent& e : all) t0 = std::min(t0, e.start_ns);
  for (TaskEvent& e : all) {
    e.start_ns -= t0;
    e.end_ns -= t0;
  }
  std::sort(all.begin(), all.end(), [](const TaskEvent& a, const TaskEvent& b) {
    return a.start_ns < b.start_ns;
  });
  return all;
}

void TraceRecorder::clear() {
  for (auto& lane : lanes_) lane.clear();
  const std::lock_guard<std::mutex> lock(overflow_mutex_);
  overflow_.clear();
}

FlowGraph build_flow_graph(const std::vector<TaskEvent>& events, int buckets) {
  STS_EXPECTS(buckets > 0);
  FlowGraph fg;
  if (events.empty()) return fg;
  std::int64_t t_end = 0;
  for (const TaskEvent& e : events) t_end = std::max(t_end, e.end_ns);
  fg.bucket_ns = std::max<std::int64_t>(1, (t_end + buckets - 1) / buckets);

  auto kind_column = [&](graph::KernelKind k) -> std::size_t {
    for (std::size_t i = 0; i < fg.kinds.size(); ++i) {
      if (fg.kinds[i] == k) return i;
    }
    fg.kinds.push_back(k);
    for (auto& row : fg.counts) row.push_back(0.0);
    return fg.kinds.size() - 1;
  };

  fg.counts.assign(static_cast<std::size_t>(buckets), {});
  for (const TaskEvent& e : events) {
    const std::size_t col = kind_column(e.kind);
    const std::int64_t b0 = e.start_ns / fg.bucket_ns;
    const std::int64_t b1 = std::min<std::int64_t>(
        buckets - 1, std::max(b0, (e.end_ns - 1) / fg.bucket_ns));
    for (std::int64_t b = b0; b <= b1; ++b) {
      // Fraction of the bucket the task occupies (average concurrency).
      const std::int64_t bucket_start = b * fg.bucket_ns;
      const std::int64_t overlap =
          std::min(e.end_ns, bucket_start + fg.bucket_ns) -
          std::max(e.start_ns, bucket_start);
      auto& row = fg.counts[static_cast<std::size_t>(b)];
      if (row.size() < fg.kinds.size()) row.resize(fg.kinds.size(), 0.0);
      row[col] += static_cast<double>(std::max<std::int64_t>(0, overlap)) /
                  static_cast<double>(fg.bucket_ns);
    }
  }
  for (auto& row : fg.counts) row.resize(fg.kinds.size(), 0.0);
  return fg;
}

void write_flow_graph_csv(std::ostream& os, const FlowGraph& fg) {
  os << "time_ms";
  for (graph::KernelKind k : fg.kinds) {
    os << ',' << support::csv_field(graph::to_string(k));
  }
  os << '\n';
  for (std::size_t b = 0; b < fg.counts.size(); ++b) {
    os << (static_cast<double>(fg.bucket_ns) * static_cast<double>(b) / 1e6);
    for (double c : fg.counts[b]) os << ',' << c;
    os << '\n';
  }
}

void render_flow_graph(std::ostream& os, const FlowGraph& fg, int width) {
  if (fg.kinds.empty()) {
    os << "(empty trace)\n";
    return;
  }
  static constexpr char kRamp[] = " .:-=+*#%@";
  double peak = 1e-12;
  for (const auto& row : fg.counts) {
    for (double c : row) peak = std::max(peak, c);
  }
  const int buckets = static_cast<int>(fg.counts.size());
  for (std::size_t col = 0; col < fg.kinds.size(); ++col) {
    os << graph::to_string(fg.kinds[col]);
    for (std::size_t pad = std::char_traits<char>::length(
             graph::to_string(fg.kinds[col]));
         pad < 8; ++pad) {
      os << ' ';
    }
    os << '|';
    for (int x = 0; x < width; ++x) {
      // Down-sample buckets to terminal columns.
      const int b0 = x * buckets / width;
      const int b1 = std::max(b0 + 1, (x + 1) * buckets / width);
      double v = 0.0;
      for (int b = b0; b < b1; ++b) {
        v = std::max(v, fg.counts[static_cast<std::size_t>(b)][col]);
      }
      const int level = std::min<int>(
          9, static_cast<int>(v / peak * 9.0 + 0.5));
      os << kRamp[level];
    }
    os << "|\n";
  }
  os << "(time -> right; intensity = concurrent tasks, peak="
     << peak << ")\n";
}

} // namespace sts::perf
