// Execution trace recording and flow-graph export (paper Figs. 10 & 13).
//
// Executors (real and simulated) record one TaskEvent per task: which
// worker ran it, when it started/finished, and its kernel kind. The flow
// graph the paper plots is the per-kernel count of running tasks over time;
// render_flow_graph() produces that series (CSV for plotting plus an ASCII
// rendering for bench stdout).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "graph/tdg.hpp"

namespace sts::perf {

struct TaskEvent {
  std::int32_t task_id = -1;
  graph::KernelKind kind = graph::KernelKind::kOther;
  std::int32_t worker = -1;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
};

/// Lock-free per-worker event collection: each worker appends to its own
/// lane; events() merges and time-sorts.
class TraceRecorder {
public:
  explicit TraceRecorder(unsigned workers);

  /// Called by worker `w` (0-based). Not synchronized across workers; each
  /// worker must only use its own lane. Out-of-range worker ids (events
  /// reported from an external submission thread, or from a helper thread
  /// the recorder was not sized for) go to a shared mutex-guarded overflow
  /// lane instead of being dropped.
  void record(unsigned worker, TaskEvent event);

  /// Merged events (worker lanes plus overflow) sorted by start time,
  /// rebased so the earliest start is 0.
  [[nodiscard]] std::vector<TaskEvent> events() const;

  [[nodiscard]] unsigned workers() const noexcept {
    return static_cast<unsigned>(lanes_.size());
  }

  /// Events routed to the overflow lane so far.
  [[nodiscard]] std::size_t overflow_count() const;

  void clear();

private:
  std::vector<std::vector<TaskEvent>> lanes_;
  mutable std::mutex overflow_mutex_;
  std::vector<TaskEvent> overflow_;
};

/// One row of a flow graph: time bucket -> number of tasks of each kernel
/// kind executing during that bucket.
struct FlowGraph {
  std::int64_t bucket_ns = 0;
  std::vector<graph::KernelKind> kinds; // columns, in first-seen order
  std::vector<std::vector<double>> counts; // [bucket][kind] avg concurrency
};

/// Builds a flow graph with `buckets` time buckets covering the trace.
[[nodiscard]] FlowGraph build_flow_graph(const std::vector<TaskEvent>& events,
                                         int buckets);

/// Writes `fg` as CSV (time_ms, one column per kernel).
void write_flow_graph_csv(std::ostream& os, const FlowGraph& fg);

/// Coarse terminal rendering: one row per kernel, intensity ramp over time.
void render_flow_graph(std::ostream& os, const FlowGraph& fg, int width = 72);

} // namespace sts::perf
