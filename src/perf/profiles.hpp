// Performance profiles (Dolan–Moré curves), the presentation device of the
// paper's Fig. 14: for each configuration (block-count bucket), the fraction
// of problem instances whose execution time is within a factor tau of the
// best configuration for that instance.
#pragma once

#include <string>
#include <vector>

namespace sts::perf {

struct ProfileCurve {
  std::string config;
  std::vector<double> fraction; // aligned with the taus passed in
};

/// times[instance][config] = execution time (<= 0 marks a failed/missing
/// run, which never counts as within tau). Returns one curve per config.
[[nodiscard]] std::vector<ProfileCurve> performance_profiles(
    const std::vector<std::string>& configs,
    const std::vector<std::vector<double>>& times,
    const std::vector<double>& taus);

/// The tau grid the paper plots: 1.0 to 2.0.
[[nodiscard]] std::vector<double> default_taus(int points = 21);

} // namespace sts::perf
