#include "perf/profiles.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.hpp"

namespace sts::perf {

std::vector<ProfileCurve> performance_profiles(
    const std::vector<std::string>& configs,
    const std::vector<std::vector<double>>& times,
    const std::vector<double>& taus) {
  const std::size_t ncfg = configs.size();
  std::vector<ProfileCurve> curves(ncfg);
  for (std::size_t c = 0; c < ncfg; ++c) {
    curves[c].config = configs[c];
    curves[c].fraction.assign(taus.size(), 0.0);
  }
  if (times.empty()) return curves;

  for (const auto& row : times) {
    STS_EXPECTS(row.size() == ncfg);
    double best = std::numeric_limits<double>::infinity();
    for (double t : row) {
      if (t > 0.0) best = std::min(best, t);
    }
    if (!std::isfinite(best)) continue;
    for (std::size_t c = 0; c < ncfg; ++c) {
      if (row[c] <= 0.0) continue;
      const double ratio = row[c] / best;
      for (std::size_t k = 0; k < taus.size(); ++k) {
        if (ratio <= taus[k]) curves[c].fraction[k] += 1.0;
      }
    }
  }
  const double n = static_cast<double>(times.size());
  for (auto& curve : curves) {
    for (double& f : curve.fraction) f /= n;
  }
  return curves;
}

std::vector<double> default_taus(int points) {
  STS_EXPECTS(points >= 2);
  std::vector<double> taus(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    taus[static_cast<std::size_t>(i)] =
        1.0 + static_cast<double>(i) / static_cast<double>(points - 1);
  }
  return taus;
}

} // namespace sts::perf
