// Task dependency graph (TDG) representation.
//
// One TDG node = one fine-grained task operating on a CSB block or a
// row-block of a vector block (paper Fig. 3). The structure is shared by
// three consumers:
//   * the DeepSparse-style executor (src/ds) runs `body` callables,
//   * the schedule simulator (src/sim) costs tasks from `flops`/`accesses`,
//   * the analysis benches report critical path / width / task counts (§4).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace sts::graph {

/// Kernel classes appearing in the two solvers. Used for flow-graph
/// coloring, scheduling statistics and simulator cost hooks.
enum class KernelKind : std::uint8_t {
  kSpMV,       // one CSB block of y += A_ij * x_j
  kSpMM,       // one CSB block of Y += A_ij * X_j
  kZero,       // zero an output block before its accumulation chain
  kXY,         // Y_i = X_i * Z  (block row x small dense)
  kXTY,        // partial P += X_i^T * Y_i
  kReduce,     // fold partial buffers / finalize a small result
  kAxpy,       // block row daxpy
  kScale,      // block row scaling
  kDotPartial, // block row partial inner product
  kNorm,       // finalize norm / small scalar work
  kOrtho,      // small dense factorization (Rayleigh-Ritz, Cholesky)
  kConvCheck,  // convergence test
  kSpTRSV,     // one block row of a DAG-scheduled triangular solve
  kOther,
};

[[nodiscard]] const char* to_string(KernelKind k);

/// How a task touches one byte range of one logical data structure. The
/// cache simulator expands ranges into 64-byte line accesses.
struct Access {
  enum class Mode : std::uint8_t { kRead, kWrite, kReadWrite };
  std::uint32_t data_id = 0; // registered with sim::DataLayout
  std::uint64_t offset = 0;  // bytes from the structure's base
  std::uint64_t bytes = 0;
  Mode mode = Mode::kRead;
  /// Line-expansion stride: 1 = touch every 64B line of the range (dense
  /// streaming); s > 1 = touch every s-th line (models scattered gathers,
  /// e.g. CSR SpMM x-vector reads, which cover a wide range sparsely).
  std::uint32_t stride_lines = 1;
};

using TaskId = std::int32_t;
inline constexpr TaskId kInvalidTask = -1;

struct Task;

/// Human-readable task label for diagnostics and error messages:
/// "spmv[3,2]" for block-structured tasks, "reduce[5]" / "conv" otherwise.
[[nodiscard]] std::string task_label(const Task& task);

struct Task {
  KernelKind kind = KernelKind::kOther;
  std::int32_t bi = -1; // block-row coordinate, -1 if not block-structured
  std::int32_t bj = -1; // block-col coordinate
  /// Index of the function call (TI node) this task was expanded from.
  /// The BSP execution model is recovered by running phases in order with
  /// a barrier between them; task runtimes ignore it.
  std::int32_t phase = -1;
  double flops = 0.0;
  std::vector<Access> accesses;
  std::function<void()> body; // optional: empty for analysis-only graphs
};

/// Append-only DAG of tasks. Edges are stored forward (successor lists);
/// predecessor counts are derivable. Construction must keep edges from
/// lower ids to higher ids OR call validate() to check acyclicity.
class Tdg {
public:
  TaskId add_task(Task task);

  /// Declares that `to` cannot start before `from` finished. Duplicate
  /// edges are permitted (executors de-duplicate via counts).
  void add_edge(TaskId from, TaskId to);

  [[nodiscard]] std::size_t task_count() const noexcept {
    return tasks_.size();
  }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_; }
  [[nodiscard]] const Task& task(TaskId id) const {
    STS_EXPECTS(id >= 0 && static_cast<std::size_t>(id) < tasks_.size());
    return tasks_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] Task& task(TaskId id) {
    STS_EXPECTS(id >= 0 && static_cast<std::size_t>(id) < tasks_.size());
    return tasks_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const std::vector<TaskId>& successors(TaskId id) const {
    STS_EXPECTS(id >= 0 && static_cast<std::size_t>(id) < succ_.size());
    return succ_[static_cast<std::size_t>(id)];
  }

  /// In-degree of every task (counting duplicate edges once).
  [[nodiscard]] std::vector<std::int32_t> indegrees() const;

  /// True iff the graph has no cycle.
  [[nodiscard]] bool is_acyclic() const;

  /// Depth-first topological order starting from roots in insertion order —
  /// the spawn order DeepSparse's Task Executor uses.
  [[nodiscard]] std::vector<TaskId> depth_first_topological_order() const;

  /// Longest path length in *tasks* (nodes). With `by_kernel` the path is
  /// measured in distinct kernel stages, matching the paper's statement
  /// that the critical paths of Lanczos and LOBPCG are 5 and 29.
  [[nodiscard]] std::int64_t critical_path_tasks() const;
  [[nodiscard]] double critical_path_flops() const;
  [[nodiscard]] double total_flops() const;

  /// Maximum antichain width estimate: peak number of simultaneously ready
  /// tasks under an unbounded-processor greedy schedule.
  [[nodiscard]] std::int64_t max_parallelism() const;

  /// Graphviz dump for small graphs (Fig. 3 reproduction).
  [[nodiscard]] std::string to_dot(std::size_t max_tasks = 2000) const;

private:
  std::vector<Task> tasks_;
  std::vector<std::vector<TaskId>> succ_;
  std::size_t edges_ = 0;
};

} // namespace sts::graph
