#include "graph/tdg.hpp"

#include <algorithm>
#include <queue>
#include <sstream>

namespace sts::graph {

const char* to_string(KernelKind k) {
  switch (k) {
    case KernelKind::kSpMV: return "spmv";
    case KernelKind::kSpMM: return "spmm";
    case KernelKind::kZero: return "zero";
    case KernelKind::kXY: return "xy";
    case KernelKind::kXTY: return "xty";
    case KernelKind::kReduce: return "reduce";
    case KernelKind::kAxpy: return "axpy";
    case KernelKind::kScale: return "scale";
    case KernelKind::kDotPartial: return "dot";
    case KernelKind::kNorm: return "norm";
    case KernelKind::kOrtho: return "ortho";
    case KernelKind::kConvCheck: return "conv";
    case KernelKind::kSpTRSV: return "sptrsv";
    case KernelKind::kOther: return "other";
  }
  return "?";
}

std::string task_label(const Task& task) {
  std::string label = to_string(task.kind);
  if (task.bi >= 0 && task.bj >= 0) {
    label += "[" + std::to_string(task.bi) + "," + std::to_string(task.bj) +
             "]";
  } else if (task.bi >= 0) {
    label += "[" + std::to_string(task.bi) + "]";
  }
  return label;
}

TaskId Tdg::add_task(Task task) {
  tasks_.push_back(std::move(task));
  succ_.emplace_back();
  return static_cast<TaskId>(tasks_.size() - 1);
}

void Tdg::add_edge(TaskId from, TaskId to) {
  STS_EXPECTS(from >= 0 && static_cast<std::size_t>(from) < tasks_.size());
  STS_EXPECTS(to >= 0 && static_cast<std::size_t>(to) < tasks_.size());
  STS_EXPECTS(from != to);
  succ_[static_cast<std::size_t>(from)].push_back(to);
  ++edges_;
}

std::vector<std::int32_t> Tdg::indegrees() const {
  std::vector<std::int32_t> indeg(tasks_.size(), 0);
  // Duplicate edges between the same pair count once; executors decrement
  // once per unique predecessor.
  for (std::size_t u = 0; u < succ_.size(); ++u) {
    std::vector<TaskId> uniq = succ_[u];
    std::sort(uniq.begin(), uniq.end());
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
    for (TaskId v : uniq) ++indeg[static_cast<std::size_t>(v)];
  }
  return indeg;
}

bool Tdg::is_acyclic() const {
  std::vector<std::int32_t> indeg = indegrees();
  std::queue<TaskId> ready;
  for (std::size_t i = 0; i < indeg.size(); ++i) {
    if (indeg[i] == 0) ready.push(static_cast<TaskId>(i));
  }
  std::size_t visited = 0;
  while (!ready.empty()) {
    const TaskId u = ready.front();
    ready.pop();
    ++visited;
    std::vector<TaskId> uniq = succ_[static_cast<std::size_t>(u)];
    std::sort(uniq.begin(), uniq.end());
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
    for (TaskId v : uniq) {
      if (--indeg[static_cast<std::size_t>(v)] == 0) ready.push(v);
    }
  }
  return visited == tasks_.size();
}

std::vector<TaskId> Tdg::depth_first_topological_order() const {
  // Iterative DFS post-order on the reversed graph is equivalent to a DFS
  // topological order; we emit a task once all its predecessors were
  // emitted, exploring successors depth-first from each root.
  std::vector<std::int32_t> indeg = indegrees();
  std::vector<TaskId> order;
  order.reserve(tasks_.size());
  std::vector<TaskId> stack;
  for (std::size_t i = tasks_.size(); i-- > 0;) {
    if (indeg[i] == 0) stack.push_back(static_cast<TaskId>(i));
  }
  while (!stack.empty()) {
    const TaskId u = stack.back();
    stack.pop_back();
    order.push_back(u);
    const auto& outs = succ_[static_cast<std::size_t>(u)];
    // Push in reverse so the first-declared successor is explored first.
    for (std::size_t k = outs.size(); k-- > 0;) {
      const TaskId v = outs[k];
      // A duplicate edge must only decrement once: detect via a linear scan
      // of earlier occurrences (successor lists are short).
      bool duplicate = false;
      for (std::size_t e = 0; e < k; ++e) {
        if (outs[e] == v) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      if (--indeg[static_cast<std::size_t>(v)] == 0) stack.push_back(v);
    }
  }
  STS_ENSURES(order.size() == tasks_.size()); // fails if cyclic
  return order;
}

std::int64_t Tdg::critical_path_tasks() const {
  const std::vector<TaskId> order = depth_first_topological_order();
  std::vector<std::int64_t> depth(tasks_.size(), 1);
  std::int64_t best = tasks_.empty() ? 0 : 1;
  for (TaskId u : order) {
    for (TaskId v : succ_[static_cast<std::size_t>(u)]) {
      depth[static_cast<std::size_t>(v)] =
          std::max(depth[static_cast<std::size_t>(v)],
                   depth[static_cast<std::size_t>(u)] + 1);
      best = std::max(best, depth[static_cast<std::size_t>(v)]);
    }
  }
  return best;
}

double Tdg::critical_path_flops() const {
  const std::vector<TaskId> order = depth_first_topological_order();
  std::vector<double> cost(tasks_.size());
  double best = 0.0;
  for (TaskId u : order) {
    cost[static_cast<std::size_t>(u)] +=
        tasks_[static_cast<std::size_t>(u)].flops;
    best = std::max(best, cost[static_cast<std::size_t>(u)]);
    for (TaskId v : succ_[static_cast<std::size_t>(u)]) {
      cost[static_cast<std::size_t>(v)] =
          std::max(cost[static_cast<std::size_t>(v)],
                   cost[static_cast<std::size_t>(u)]);
    }
  }
  return best;
}

double Tdg::total_flops() const {
  double total = 0.0;
  for (const Task& t : tasks_) total += t.flops;
  return total;
}

std::int64_t Tdg::max_parallelism() const {
  // Level-synchronous BFS: width = max number of tasks sharing the same
  // earliest level.
  const std::vector<TaskId> order = depth_first_topological_order();
  std::vector<std::int32_t> level(tasks_.size(), 0);
  std::int32_t max_level = 0;
  for (TaskId u : order) {
    for (TaskId v : succ_[static_cast<std::size_t>(u)]) {
      level[static_cast<std::size_t>(v)] =
          std::max(level[static_cast<std::size_t>(v)],
                   level[static_cast<std::size_t>(u)] + 1);
      max_level = std::max(max_level, level[static_cast<std::size_t>(v)]);
    }
  }
  std::vector<std::int64_t> width(static_cast<std::size_t>(max_level) + 1, 0);
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    ++width[static_cast<std::size_t>(level[i])];
  }
  return width.empty() ? 0 : *std::max_element(width.begin(), width.end());
}

std::string Tdg::to_dot(std::size_t max_tasks) const {
  std::ostringstream os;
  os << "digraph tdg {\n  rankdir=TB;\n";
  const std::size_t n = std::min(tasks_.size(), max_tasks);
  for (std::size_t i = 0; i < n; ++i) {
    os << "  t" << i << " [label=\"" << to_string(tasks_[i].kind);
    if (tasks_[i].bi >= 0) {
      os << " (" << tasks_[i].bi;
      if (tasks_[i].bj >= 0) os << "," << tasks_[i].bj;
      os << ")";
    }
    os << "\"];\n";
  }
  for (std::size_t u = 0; u < n; ++u) {
    for (TaskId v : succ_[u]) {
      if (static_cast<std::size_t>(v) < n) {
        os << "  t" << u << " -> t" << v << ";\n";
      }
    }
  }
  os << "}\n";
  return os.str();
}

} // namespace sts::graph
