#include "svc/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

#include "support/error.hpp"

namespace sts::svc {

Client::Client(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    throw support::Error("socket path too long: " + socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw support::Error(std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw support::Error("connect " + socket_path + ": " +
                         std::strerror(err) + " (is stsd running?)");
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

wire::Json Client::request(const wire::Json& req) {
  wire::write_frame(fd_, req.dump());
  std::string payload;
  if (!wire::read_frame(fd_, payload)) {
    throw support::Error("daemon closed the connection");
  }
  return wire::Json::parse(payload);
}

wire::Json Client::rpc(const wire::Json& req) {
  wire::Json reply = request(req);
  if (!reply.bool_or("ok", false)) {
    throw support::Error(reply.string_or("kind", "error") + ": " +
                         reply.string_or("error", "unknown failure"));
  }
  return reply;
}

bool Client::ping() {
  wire::Json req = wire::Json::object();
  req.set("op", "ping");
  const wire::Json reply = request(req);
  return reply.bool_or("ok", false);
}

SubmitOutcome Client::submit(const RunSpec& spec) {
  wire::Json req = wire::Json::object();
  req.set("op", "submit");
  req.set("spec", spec.to_json());
  const wire::Json reply = request(req);
  SubmitOutcome out;
  if (reply.bool_or("ok", false)) {
    out.accepted = true;
    out.id = static_cast<std::uint64_t>(reply.get("id").as_int());
    return out;
  }
  if (reply.string_or("kind", "") == "backpressure") {
    out.error = reply.string_or("error", "rejected");
    return out;
  }
  throw support::Error(reply.string_or("kind", "error") + ": " +
                       reply.string_or("error", "submit failed"));
}

wire::Json Client::status(std::uint64_t id) {
  wire::Json req = wire::Json::object();
  req.set("op", "status");
  req.set("id", id);
  return rpc(req).get("job");
}

wire::Json Client::result(std::uint64_t id, std::int64_t timeout_ms) {
  wire::Json req = wire::Json::object();
  req.set("op", "result");
  req.set("id", id);
  req.set("timeout_ms", timeout_ms);
  return rpc(req).get("job");
}

bool Client::cancel(std::uint64_t id, const std::string& reason) {
  wire::Json req = wire::Json::object();
  req.set("op", "cancel");
  req.set("id", id);
  req.set("reason", reason);
  return rpc(req).get("cancelled").as_bool();
}

wire::Json Client::stats() {
  wire::Json req = wire::Json::object();
  req.set("op", "stats");
  return rpc(req).get("stats");
}

void Client::shutdown() {
  wire::Json req = wire::Json::object();
  req.set("op", "shutdown");
  rpc(req);
}

} // namespace sts::svc
