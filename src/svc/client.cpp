#include "svc/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "obs/obs.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace sts::svc {

Client::Client(const std::string& socket_path, RetryPolicy retry)
    : socket_path_(socket_path), retry_(retry) {
  if (retry_.attempts < 1) retry_.attempts = 1;
  if (retry_.base_ms < 1) retry_.base_ms = 1;
  if (retry_.cap_ms < retry_.base_ms) retry_.cap_ms = retry_.base_ms;
  rng_state_ = retry_.seed != 0
                   ? retry_.seed
                   : static_cast<std::uint64_t>(::getpid()) * 0x9E3779B97F4A7C15ULL + 1;
  prev_backoff_ms_ = retry_.base_ms;
  for (int attempt = 1;; ++attempt) {
    try {
      connect_once();
      return;
    } catch (const support::Error&) {
      if (attempt >= retry_.attempts) throw;
      obs::counter("svc.client_retries").add();
      std::this_thread::sleep_for(
          std::chrono::milliseconds(next_backoff_ms()));
    }
  }
}

Client::~Client() { disconnect(); }

void Client::disconnect() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::connect_once() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    throw support::Error("socket path too long: " + socket_path_);
  }
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw support::Error(std::string("socket: ") + std::strerror(errno));
  }
  // EINTR here leaves the connect in an indeterminate state on some
  // kernels; a Unix-socket connect is cheap, so close and start over
  // rather than poll for completion.
  while (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)) != 0) {
    if (errno == EINTR) continue;
    const int err = errno;
    ::close(fd);
    throw support::Error("connect " + socket_path_ + ": " +
                         std::strerror(err) + " (is stsd running?)");
  }
  fd_ = fd;
}

int Client::next_backoff_ms() {
  // Decorrelated jitter: sleep ~ U[base, 3 * previous], capped. Chaining
  // SplitMix64 outputs keeps the sequence deterministic per seed while
  // consecutive sleeps grow without synchronizing across clients.
  support::SplitMix64 mixer(rng_state_);
  rng_state_ = mixer.next();
  const double unit =
      static_cast<double>(rng_state_ >> 11) * 0x1.0p-53; // [0, 1)
  const double lo = static_cast<double>(retry_.base_ms);
  const double hi = static_cast<double>(prev_backoff_ms_) * 3.0;
  const double pick = lo + unit * std::max(0.0, hi - lo);
  prev_backoff_ms_ = static_cast<int>(
      std::min(pick, static_cast<double>(retry_.cap_ms)));
  return prev_backoff_ms_;
}

wire::Json Client::request(const wire::Json& req) {
  const std::string payload = req.dump();
  for (int attempt = 1;; ++attempt) {
    try {
      if (fd_ < 0) connect_once();
      wire::write_frame(fd_, payload);
      std::string reply;
      if (!wire::read_frame(fd_, reply)) {
        throw support::Error("daemon closed the connection");
      }
      return wire::Json::parse(reply);
    } catch (const support::Error&) {
      // WireError and connect failures both land here. Drop the (possibly
      // half-written) connection so the next attempt starts clean; the
      // daemon treats each connection independently, and resubmission is
      // made idempotent by the spec's client_key.
      disconnect();
      if (attempt >= retry_.attempts) throw;
      obs::counter("svc.client_retries").add();
      std::this_thread::sleep_for(
          std::chrono::milliseconds(next_backoff_ms()));
    }
  }
}

wire::Json Client::rpc(const wire::Json& req) {
  wire::Json reply = request(req);
  if (!reply.bool_or("ok", false)) {
    throw support::Error(reply.string_or("kind", "error") + ": " +
                         reply.string_or("error", "unknown failure"));
  }
  return reply;
}

bool Client::ping() {
  wire::Json req = wire::Json::object();
  req.set("op", "ping");
  const wire::Json reply = request(req);
  return reply.bool_or("ok", false);
}

SubmitOutcome Client::submit(const RunSpec& spec) {
  wire::Json req = wire::Json::object();
  req.set("op", "submit");
  req.set("spec", spec.to_json());
  const wire::Json reply = request(req);
  SubmitOutcome out;
  if (reply.bool_or("ok", false)) {
    out.accepted = true;
    out.id = static_cast<std::uint64_t>(reply.get("id").as_int());
    return out;
  }
  if (reply.string_or("kind", "") == "backpressure") {
    out.error = reply.string_or("error", "rejected");
    out.queue_depth =
        static_cast<std::size_t>(reply.int_or("queue_depth", 0));
    out.queue_capacity =
        static_cast<std::size_t>(reply.int_or("queue_capacity", 0));
    return out;
  }
  throw support::Error(reply.string_or("kind", "error") + ": " +
                       reply.string_or("error", "submit failed"));
}

wire::Json Client::status(std::uint64_t id) {
  wire::Json req = wire::Json::object();
  req.set("op", "status");
  req.set("id", id);
  return rpc(req).get("job");
}

wire::Json Client::result(std::uint64_t id, std::int64_t timeout_ms) {
  wire::Json req = wire::Json::object();
  req.set("op", "result");
  req.set("id", id);
  req.set("timeout_ms", timeout_ms);
  return rpc(req).get("job");
}

bool Client::cancel(std::uint64_t id, const std::string& reason) {
  wire::Json req = wire::Json::object();
  req.set("op", "cancel");
  req.set("id", id);
  req.set("reason", reason);
  return rpc(req).get("cancelled").as_bool();
}

wire::Json Client::stats() {
  wire::Json req = wire::Json::object();
  req.set("op", "stats");
  return rpc(req).get("stats");
}

wire::Json Client::queue() {
  wire::Json req = wire::Json::object();
  req.set("op", "queue");
  return rpc(req).get("queue");
}

std::string Client::metrics(const std::string& format) {
  wire::Json req = wire::Json::object();
  req.set("op", "metrics");
  req.set("format", format);
  return rpc(req).string_or("body", "");
}

std::string Client::trace_json(std::uint64_t id) {
  wire::Json req = wire::Json::object();
  req.set("op", "trace");
  req.set("id", id);
  return rpc(req).string_or("trace", "");
}

void Client::shutdown() {
  wire::Json req = wire::Json::object();
  req.set("op", "shutdown");
  rpc(req);
}

} // namespace sts::svc
