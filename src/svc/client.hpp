// Blocking client for the stsd wire protocol: one connected Unix socket,
// one frame out / one frame in per call. Used by stsctl, the svc tests and
// the service benchmark; keeping it in the library means every front end
// speaks the protocol through the same code path.
#pragma once

#include <cstdint>
#include <string>

#include "svc/run_spec.hpp"
#include "svc/service.hpp"
#include "svc/wire.hpp"

namespace sts::svc {

/// Bounded reconnect policy for Client (DESIGN.md §12). `attempts` counts
/// total tries per operation (1 = the historical fail-fast behaviour);
/// sleeps between tries follow decorrelated jitter — uniform in
/// [base_ms, 3 * previous], capped at cap_ms — so a fleet of retrying
/// clients does not stampede a restarting daemon in lockstep.
struct RetryPolicy {
  int attempts = 1;
  int base_ms = 50;
  int cap_ms = 2000;
  std::uint64_t seed = 0; // jitter RNG seed; 0 = derive from the pid
};

class Client {
public:
  /// Connects to `socket_path` (default: Server::default_socket_path()),
  /// honouring `retry` for the initial connect. Throws support::Error when
  /// the daemon stays unreachable through every attempt.
  explicit Client(const std::string& socket_path, RetryPolicy retry = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Raw round trip: send `request`, return the parsed reply (including
  /// ok=false replies — callers that want typed errors use the helpers).
  /// On a connection failure mid-call the client reconnects (up to the
  /// retry policy's budget) and resends the request — safe for the
  /// protocol's read-only ops, and safe for submit when the spec carries a
  /// client_key (the daemon deduplicates resubmissions on it).
  wire::Json request(const wire::Json& request);

  [[nodiscard]] bool ping();

  /// Accepted -> {accepted, id}; backpressure rejection -> {false, error};
  /// any other failure (bad spec, protocol error) throws.
  SubmitOutcome submit(const RunSpec& spec);

  /// Job snapshot; throws support::Error for unknown ids.
  wire::Json status(std::uint64_t id);

  /// Waits server-side until the job is terminal (or timeout_ms elapses)
  /// and returns the snapshot. The "terminal" field of the reply says
  /// whether the wait actually completed.
  wire::Json result(std::uint64_t id,
                    std::int64_t timeout_ms = 24LL * 3600 * 1000);

  /// True when the job was cancellable (pending or running).
  bool cancel(std::uint64_t id, const std::string& reason = "cancelled");

  wire::Json stats();

  /// Dispatcher snapshot (`stsctl queue`): slot partition table plus the
  /// RUNNING and PENDING jobs with their scheduling identity.
  wire::Json queue();

  /// Live metrics exposition from the daemon; `format` is "prom"
  /// (Prometheus text, the default) or "csv". Returns the rendered body.
  std::string metrics(const std::string& format = "prom");

  /// Chrome trace JSON for one job captured in the daemon's trace ring.
  /// Throws support::Error for unknown ids or evicted/disabled traces.
  std::string trace_json(std::uint64_t id);

  /// Asks the daemon to shut down gracefully (drain + exit 0).
  void shutdown();

private:
  /// request() + throw support::Error on ok=false.
  wire::Json rpc(const wire::Json& request);
  /// One EINTR-safe socket+connect attempt; throws on failure.
  void connect_once();
  void disconnect() noexcept;
  /// Next decorrelated-jitter sleep, advancing the internal state.
  [[nodiscard]] int next_backoff_ms();

  int fd_ = -1;
  std::string socket_path_;
  RetryPolicy retry_;
  std::uint64_t rng_state_ = 0;
  int prev_backoff_ms_ = 0;
};

} // namespace sts::svc
