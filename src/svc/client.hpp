// Blocking client for the stsd wire protocol: one connected Unix socket,
// one frame out / one frame in per call. Used by stsctl, the svc tests and
// the service benchmark; keeping it in the library means every front end
// speaks the protocol through the same code path.
#pragma once

#include <cstdint>
#include <string>

#include "svc/run_spec.hpp"
#include "svc/service.hpp"
#include "svc/wire.hpp"

namespace sts::svc {

class Client {
public:
  /// Connects to `socket_path` (default: Server::default_socket_path()).
  /// Throws support::Error when the daemon is not reachable.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Raw round trip: send `request`, return the parsed reply (including
  /// ok=false replies — callers that want typed errors use the helpers).
  wire::Json request(const wire::Json& request);

  [[nodiscard]] bool ping();

  /// Accepted -> {accepted, id}; backpressure rejection -> {false, error};
  /// any other failure (bad spec, protocol error) throws.
  SubmitOutcome submit(const RunSpec& spec);

  /// Job snapshot; throws support::Error for unknown ids.
  wire::Json status(std::uint64_t id);

  /// Waits server-side until the job is terminal (or timeout_ms elapses)
  /// and returns the snapshot. The "terminal" field of the reply says
  /// whether the wait actually completed.
  wire::Json result(std::uint64_t id,
                    std::int64_t timeout_ms = 24LL * 3600 * 1000);

  /// True when the job was cancellable (pending or running).
  bool cancel(std::uint64_t id, const std::string& reason = "cancelled");

  wire::Json stats();

  /// Asks the daemon to shut down gracefully (drain + exit 0).
  void shutdown();

private:
  /// request() + throw support::Error on ok=false.
  wire::Json rpc(const wire::Json& request);

  int fd_ = -1;
};

} // namespace sts::svc
