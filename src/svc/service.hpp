// The resident solver service: bounded job queue with admission control, a
// plan cache, K concurrent job slots over partitioned flux worker pools,
// and the job lifecycle
//
//   PENDING -> RUNNING -> DONE | FAILED | CANCELLED
//
// Admission control is immediate-reject: when the queue is full, submit()
// returns a typed `queue_full` outcome — carrying the depth and cap so the
// client can see *how* full — instead of blocking the caller. A draining
// service rejects with `draining`.
//
// Execution is the dispatcher of DESIGN.md §15. The machine is carved into
// `slots` contiguous, NUMA-domain-aligned worker partitions
// (support::topo::partition_cpus); each slot runs one job at a time on a
// pool pinned to its partition, so concurrent jobs never share a domain
// unless slots oversubscribe the machine. Admission order comes from a
// two-level scheduler (svc/dispatch/queue.hpp): strict priority classes
// (interactive > batch) with deficit-round-robin weighted fairness across
// clients inside a class. Per-job quotas (max_workers / max_mem_bytes /
// deadline_ms) are enforced at grant, plan, and run time respectively, and
// an idle slot may lend its partition to a running growable flux job at
// the job's next iteration boundary (the solvers' resize_poll hook →
// flux::Scheduler::expand) — the elastic grant protocol.
//
// Cancellation reuses the solver layer's cooperative tokens: a PENDING job
// flips straight to CANCELLED; a RUNNING job gets its token requested,
// and — for flux — its pool's report_task_error path unblocks the driver
// promptly. Solver breakdown (SolverStatus != kOk) and injected faults
// mark the job FAILED without touching the daemon.
//
// Fault sites: "svc:job" fires inside a slot's per-job try block
// (poisoning exactly one job); "svc:grant" fires at partition-grant time
// inside resize_poll, so chaos tests can kill a job mid-resize and assert
// the lender slot is reclaimed and re-granted.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "flux/scheduler.hpp"
#include "svc/cache.hpp"
#include "svc/dispatch/partition.hpp"
#include "svc/dispatch/queue.hpp"
#include "svc/journal.hpp"
#include "svc/run_spec.hpp"
#include "svc/wire.hpp"

namespace sts::svc {

enum class JobState : std::uint8_t {
  kPending, kRunning, kDone, kFailed, kCancelled
};

[[nodiscard]] const char* to_string(JobState s);

/// Snapshot of one job, safe to serialize outside service locks.
struct JobInfo {
  std::uint64_t id = 0;
  JobState state = JobState::kPending;
  std::string spec_describe;
  std::string error;          // FAILED/CANCELLED detail
  bool cache_hit = false;     // plan served from the cache
  la::index_t block_size = 0; // resolved CSB block size (0 until RUNNING)
  double queue_seconds = 0.0; // submit -> start
  double run_seconds = 0.0;   // start -> terminal
  wire::Json summary;         // solver output (null until terminal)
  [[nodiscard]] bool terminal() const noexcept {
    return state == JobState::kDone || state == JobState::kFailed ||
           state == JobState::kCancelled;
  }
};

/// Wire form shared by the daemon's replies and stsctl's output.
[[nodiscard]] wire::Json to_json(const JobInfo& info);

struct SubmitOutcome {
  bool accepted = false;
  std::uint64_t id = 0;     // valid when accepted
  std::string error;        // "queue_full" | "draining" when rejected
  /// Backpressure context for rejections: how deep the queue was and its
  /// cap, so a rejected client learns more than the bare error name.
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
};

struct ServiceStats {
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t done = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t recovered = 0; // jobs re-admitted from the journal
  bool running_job = false;
  CacheStats cache;
  double job_p50_ms = 0.0;
  double job_p95_ms = 0.0;
  double job_p99_ms = 0.0;
  /// Detected machine topology and how the slot partitions lay over it
  /// (DESIGN.md §14/§15); surfaced by `stsctl stats` so an operator can
  /// see at a glance whether the daemon is actually running NUMA-aware.
  struct Topology {
    unsigned nodes = 1;        // NUMA nodes detected
    unsigned cpus = 1;         // online CPUs detected
    unsigned smt = 1;          // max SMT siblings per physical core
    bool from_sysfs = false;   // real /sys detection vs portable fallback
    unsigned pool_threads = 1; // workers across all slot partitions
    unsigned pool_domains = 1; // NUMA domains covered by the partitions
    std::string affinity;      // "off" | "compact" | "scatter"
  };
  Topology topology;
  /// Dispatcher state (DESIGN.md §15): slot occupancy, per-class queue
  /// depths, and the elastic-grant counters.
  struct Dispatch {
    unsigned slots = 1;
    std::string policy;        // "fifo" | "fair"
    unsigned running_jobs = 0;
    std::size_t depth_interactive = 0;
    std::size_t depth_batch = 0;
    std::uint64_t grants_offered = 0;
    std::uint64_t grants_applied = 0;
    std::uint64_t grants_revoked = 0;
  };
  Dispatch dispatch;
};

[[nodiscard]] wire::Json to_json(const ServiceStats& stats);

class Service {
public:
  struct Config {
    std::size_t queue_capacity = 64;  // STS_QUEUE_CAP
    std::size_t cache_bytes = PlanCache::kDefaultBudget; // STS_CACHE_BYTES
    unsigned threads = 0;             // per-job worker cap; 0 = partition size
    /// Concurrent job slots (STS_SLOTS / `stsd --slots`). The machine is
    /// carved into min(slots, cpus) partitions; slots beyond that share
    /// partitions round-robin (oversubscription).
    unsigned slots = 1;
    /// Queue discipline (STS_POLICY / `stsd --policy`): kFair = priority
    /// classes + DRR (the default), kFifo = the PR 4 single lane.
    dispatch::Policy policy = dispatch::Policy::kFair;
    /// Topology the partitions are carved from; null = the process-wide
    /// support::topo::machine() detection. Injectable so in-process tests
    /// can use sysfs fixtures without touching the process-global cache.
    const support::topo::Machine* machine = nullptr;
    /// Durable job journal (STS_JOURNAL); empty disables crash recovery.
    std::string journal_path;
    /// Directory for per-job solver checkpoints (STS_CKPT_DIR); empty
    /// disables checkpointing. Created on startup if missing.
    std::string ckpt_dir;
    /// Byte budget for the per-job trace ring serving `stsctl trace <job>`
    /// (STS_JOB_TRACE_BYTES); 0 disables per-job capture.
    std::size_t job_trace_bytes = std::size_t{4} << 20;
    /// Capacity/budget/resilience paths from STS_QUEUE_CAP /
    /// STS_CACHE_BYTES / STS_THREADS / STS_SLOTS / STS_POLICY /
    /// STS_JOURNAL / STS_CKPT_DIR / STS_JOB_TRACE_BYTES.
    [[nodiscard]] static Config from_env();
  };

  explicit Service(Config config);
  ~Service(); // drains (cancelling pending jobs) and joins the slot threads

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Admission-controlled enqueue. Validates the spec (throws
  /// support::Error on a bad one — the caller maps that to a bad_request
  /// reply); a full queue or draining service rejects with a typed outcome.
  /// A spec carrying a client_key already seen (this life or a previous
  /// one, via the journal) is deduplicated: the existing job's id is
  /// returned and nothing new is enqueued — what makes client
  /// retry-after-reconnect idempotent.
  SubmitOutcome submit(RunSpec spec);

  /// Snapshot by id; throws support::Error for unknown ids.
  [[nodiscard]] JobInfo status(std::uint64_t id) const;

  /// Blocks until the job is terminal (or `deadline` elapses or `abort`
  /// flips, whichever first) and returns its snapshot.
  JobInfo wait(std::uint64_t id,
               std::chrono::milliseconds deadline = std::chrono::hours(24),
               const std::atomic<bool>* abort = nullptr) const;

  /// Requests cancellation. PENDING jobs flip to CANCELLED immediately;
  /// RUNNING jobs are interrupted at their next poll point (flux: promptly,
  /// via their pool's error path). Returns false for already-terminal jobs.
  bool cancel(std::uint64_t id, const std::string& reason = "cancelled");

  [[nodiscard]] ServiceStats stats() const;

  /// Admitted-work snapshot for `stsctl queue`: the slot partition table,
  /// every RUNNING job with its class/weight/partition, and every PENDING
  /// job with its class/weight/client and time in queue.
  [[nodiscard]] wire::Json queue_snapshot() const;

  /// Graceful drain: stop admitting, cancel PENDING jobs, let RUNNING
  /// jobs finish (or honour a concurrent cancel), then stop the slots.
  /// Idempotent; called by SIGTERM handling and `stsctl shutdown`.
  void drain();

  /// Signals whoever runs the daemon loop that a shutdown was requested
  /// (the `shutdown` op); drain() is then the caller's job so it can
  /// sequence socket teardown first.
  void request_shutdown();
  [[nodiscard]] bool shutdown_requested() const noexcept;
  /// Blocks until request_shutdown() is called.
  void wait_shutdown() const;

  [[nodiscard]] PlanCache& cache() noexcept { return cache_; }
  /// The slot partition table (fixed after construction).
  [[nodiscard]] const std::vector<dispatch::Partition>& partitions()
      const noexcept {
    return partitions_;
  }
  [[nodiscard]] unsigned slot_count() const noexcept {
    return static_cast<unsigned>(slots_.size());
  }

private:
  struct Job {
    std::uint64_t id = 0;
    RunSpec spec;
    JobState state = JobState::kPending;
    std::string error;
    bool cache_hit = false;
    la::index_t block_size = 0;
    std::int64_t submit_ns = 0;
    std::int64_t start_ns = 0;
    std::int64_t end_ns = 0;
    wire::Json summary;
    support::CancelToken token;
    bool recovered = false; // re-admitted from the journal after a crash
    // Dispatcher state (all under mutex_).
    dispatch::Class cls = dispatch::Class::kBatch;
    unsigned weight = 1;
    std::string fair_client;    // client_key prefix before '/'; "" = anon
    std::int64_t deadline_ns = 0; // absolute; 0 = none
    int slot = -1;              // slot executing this job (-1 until RUNNING)
    flux::Scheduler* active_pool = nullptr; // this job's pool while RUNNING
    bool growable = false;      // eligible for elastic grants
    std::vector<int> granted_cpus;      // base partition + applied grants
    std::vector<int> pending_cpus;      // offered, not yet applied
    int pending_from_slot = -1;         // lender of pending_cpus
    std::vector<unsigned> borrowed_slots; // lenders with applied grants
  };

  /// One job slot: a worker partition plus the thread that serves it.
  struct Slot {
    unsigned index = 0;
    dispatch::Partition part;
    Job* running = nullptr;
    Job* lent_to = nullptr;  // job holding (or offered) this slot's cpus
    bool lent_applied = false; // grant consumed by the borrower's pool
    std::thread thread;
  };

  void slot_loop(unsigned si);
  void run_job(Job& job, unsigned si);
  void finish_job(Job& job, JobState state, const std::string& error);
  /// Returns every borrowed/offered partition to its lender slot and wakes
  /// the slot threads. Caller holds mutex_.
  void reclaim_grants_locked(Job& job);
  /// Offers slot `si`'s partition to a running growable job, if any wants
  /// more workers. Caller holds mutex_.
  void offer_grant_locked(unsigned si);
  /// The resize_poll body for `job`: applies a pending grant (fault site
  /// svc:grant) via Scheduler::expand at the job's iteration boundary.
  void apply_grant(Job& job);
  /// Single authority for the svc.queue_depth gauge (and the per-class
  /// dispatch depth gauges): every queue mutation republishes the absolute
  /// sizes under mutex_, so the gauges cannot drift from the queue no
  /// matter which path (submit, cancel, pop, drain, recovery) touched it.
  /// Caller holds mutex_.
  void publish_queue_depth_locked() const;
  [[nodiscard]] JobInfo snapshot_locked(const Job& job) const;
  /// Queue admission shared by submit() and journal replay: stamps the
  /// job's dispatch fields from its spec and pushes it. Caller holds mutex_.
  void enqueue_locked(Job& job);
  /// Replays config_.journal_path, resurrects terminal jobs as queryable
  /// history, re-admits interrupted ones, and opens the journal for append.
  /// Runs in the constructor before the slot threads exist.
  void recover_from_journal();
  /// Best-effort journal append; failures are counted (svc.journal_errors),
  /// never thrown — availability beats durability. Caller holds mutex_.
  void journal_append_locked(const char* event, const Job& job,
                             wire::Json extra = wire::Json());
  [[nodiscard]] std::string ckpt_path_for(std::uint64_t id) const;
  [[nodiscard]] const support::topo::Machine& machine() const noexcept;

  Config config_;
  PlanCache cache_;
  std::vector<dispatch::Partition> partitions_; // carve result (exclusive)
  bool exclusive_partitions_ = true; // false when slots oversubscribe

  mutable std::mutex mutex_;
  mutable std::condition_variable job_done_cv_;
  std::condition_variable queue_cv_;
  dispatch::FairQueue queue_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::map<std::uint64_t, std::unique_ptr<Job>> jobs_;
  std::map<std::string, std::uint64_t> key_to_id_; // client_key dedup
  Journal journal_;
  std::uint64_t next_id_ = 1;
  unsigned running_count_ = 0;
  bool draining_ = false;
  bool stop_slots_ = false;
  std::uint64_t submitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t done_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t recovered_ = 0;
  std::uint64_t grants_offered_ = 0;
  std::uint64_t grants_applied_ = 0;
  std::uint64_t grants_revoked_ = 0;

  /// The job-trace ring has one process-global capture window; slots
  /// contend for it and a loser simply runs untraced.
  std::atomic<bool> trace_busy_{false};

  mutable std::mutex shutdown_mutex_;
  mutable std::condition_variable shutdown_cv_;
  std::atomic<bool> shutdown_requested_{false};
};

} // namespace sts::svc
