// The resident solver service: bounded job queue with admission control, a
// plan cache, one long-lived flux worker pool, and the job lifecycle
//
//   PENDING -> RUNNING -> DONE | FAILED | CANCELLED
//
// Admission control is immediate-reject: when the queue is full, submit()
// returns a typed `queue_full` outcome instead of blocking the caller —
// backpressure the client can see and act on. A draining service rejects
// with `draining`.
//
// Jobs are executed by a single executor thread, in FIFO order, over one
// shared flux::Scheduler whose workers stay warm across jobs (kFlux solves
// run directly on it; other versions use their own runtimes but still skip
// matrix ingestion via the cache). Cancellation reuses the solver layer's
// cooperative tokens: a PENDING job flips straight to CANCELLED; a RUNNING
// job gets its token requested, and — for flux — the pool's
// report_task_error path unblocks the driver promptly. Solver breakdown
// (SolverStatus != kOk) and injected faults mark the job FAILED without
// touching the daemon.
//
// Fault site "svc:job" fires inside the executor's per-job try block, so
// `STS_FAULT=svc:job:hit=1:kind=throw` poisons exactly one job and proves
// containment.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "flux/scheduler.hpp"
#include "svc/cache.hpp"
#include "svc/journal.hpp"
#include "svc/run_spec.hpp"
#include "svc/wire.hpp"

namespace sts::svc {

enum class JobState : std::uint8_t {
  kPending, kRunning, kDone, kFailed, kCancelled
};

[[nodiscard]] const char* to_string(JobState s);

/// Snapshot of one job, safe to serialize outside service locks.
struct JobInfo {
  std::uint64_t id = 0;
  JobState state = JobState::kPending;
  std::string spec_describe;
  std::string error;          // FAILED/CANCELLED detail
  bool cache_hit = false;     // plan served from the cache
  la::index_t block_size = 0; // resolved CSB block size (0 until RUNNING)
  double queue_seconds = 0.0; // submit -> start
  double run_seconds = 0.0;   // start -> terminal
  wire::Json summary;         // solver output (null until terminal)
  [[nodiscard]] bool terminal() const noexcept {
    return state == JobState::kDone || state == JobState::kFailed ||
           state == JobState::kCancelled;
  }
};

/// Wire form shared by the daemon's replies and stsctl's output.
[[nodiscard]] wire::Json to_json(const JobInfo& info);

struct SubmitOutcome {
  bool accepted = false;
  std::uint64_t id = 0;     // valid when accepted
  std::string error;        // "queue_full" | "draining" when rejected
};

struct ServiceStats {
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t done = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t recovered = 0; // jobs re-admitted from the journal
  bool running_job = false;
  CacheStats cache;
  double job_p50_ms = 0.0;
  double job_p95_ms = 0.0;
  double job_p99_ms = 0.0;
  /// Detected machine topology and how the shared pool is laid out over it
  /// (DESIGN.md §14); surfaced by `stsctl stats` so an operator can see at
  /// a glance whether the daemon is actually running NUMA-aware.
  struct Topology {
    unsigned nodes = 1;        // NUMA nodes detected
    unsigned cpus = 1;         // online CPUs detected
    unsigned smt = 1;          // max SMT siblings per physical core
    bool from_sysfs = false;   // real /sys detection vs portable fallback
    unsigned pool_threads = 1; // shared flux pool workers
    unsigned pool_domains = 1; // domains the pool schedules over
    std::string affinity;      // "off" | "compact" | "scatter"
  };
  Topology topology;
};

[[nodiscard]] wire::Json to_json(const ServiceStats& stats);

class Service {
public:
  struct Config {
    std::size_t queue_capacity = 64;  // STS_QUEUE_CAP
    std::size_t cache_bytes = PlanCache::kDefaultBudget; // STS_CACHE_BYTES
    unsigned threads = 0;             // flux pool workers; 0 = hardware
    /// Durable job journal (STS_JOURNAL); empty disables crash recovery.
    std::string journal_path;
    /// Directory for per-job solver checkpoints (STS_CKPT_DIR); empty
    /// disables checkpointing. Created on startup if missing.
    std::string ckpt_dir;
    /// Byte budget for the per-job trace ring serving `stsctl trace <job>`
    /// (STS_JOB_TRACE_BYTES); 0 disables per-job capture.
    std::size_t job_trace_bytes = std::size_t{4} << 20;
    /// Capacity/budget/resilience paths from STS_QUEUE_CAP /
    /// STS_CACHE_BYTES / STS_THREADS / STS_JOURNAL / STS_CKPT_DIR /
    /// STS_JOB_TRACE_BYTES.
    [[nodiscard]] static Config from_env();
  };

  explicit Service(Config config);
  ~Service(); // drains (cancelling pending jobs) and joins the executor

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Admission-controlled enqueue. Validates the spec (throws
  /// support::Error on a bad one — the caller maps that to a bad_request
  /// reply); a full queue or draining service rejects with a typed outcome.
  /// A spec carrying a client_key already seen (this life or a previous
  /// one, via the journal) is deduplicated: the existing job's id is
  /// returned and nothing new is enqueued — what makes client
  /// retry-after-reconnect idempotent.
  SubmitOutcome submit(RunSpec spec);

  /// Snapshot by id; throws support::Error for unknown ids.
  [[nodiscard]] JobInfo status(std::uint64_t id) const;

  /// Blocks until the job is terminal (or `deadline` elapses or `abort`
  /// flips, whichever first) and returns its snapshot.
  JobInfo wait(std::uint64_t id,
               std::chrono::milliseconds deadline = std::chrono::hours(24),
               const std::atomic<bool>* abort = nullptr) const;

  /// Requests cancellation. PENDING jobs flip to CANCELLED immediately;
  /// RUNNING jobs are interrupted at their next poll point (flux: promptly,
  /// via the pool's error path). Returns false for already-terminal jobs.
  bool cancel(std::uint64_t id, const std::string& reason = "cancelled");

  [[nodiscard]] ServiceStats stats() const;

  /// Graceful drain: stop admitting, cancel PENDING jobs, let the RUNNING
  /// job finish (or honour a concurrent cancel), then stop the executor.
  /// Idempotent; called by SIGTERM handling and `stsctl shutdown`.
  void drain();

  /// Signals whoever runs the daemon loop that a shutdown was requested
  /// (the `shutdown` op); drain() is then the caller's job so it can
  /// sequence socket teardown first.
  void request_shutdown();
  [[nodiscard]] bool shutdown_requested() const noexcept;
  /// Blocks until request_shutdown() is called.
  void wait_shutdown() const;

  [[nodiscard]] PlanCache& cache() noexcept { return cache_; }
  [[nodiscard]] flux::Scheduler& pool() noexcept { return pool_; }

private:
  struct Job {
    std::uint64_t id = 0;
    RunSpec spec;
    JobState state = JobState::kPending;
    std::string error;
    bool cache_hit = false;
    la::index_t block_size = 0;
    std::int64_t submit_ns = 0;
    std::int64_t start_ns = 0;
    std::int64_t end_ns = 0;
    wire::Json summary;
    support::CancelToken token;
    bool recovered = false; // re-admitted from the journal after a crash
  };

  void executor_loop();
  void run_job(Job& job);
  void finish_job(Job& job, JobState state, const std::string& error);
  /// Single authority for the svc.queue_depth gauge: every queue mutation
  /// republishes the absolute size under mutex_, so the gauge cannot drift
  /// from the queue no matter which path (submit, cancel, pop, drain,
  /// recovery) touched it. Caller holds mutex_.
  void publish_queue_depth_locked() const;
  [[nodiscard]] JobInfo snapshot_locked(const Job& job) const;
  /// Replays config_.journal_path, resurrects terminal jobs as queryable
  /// history, re-admits interrupted ones, and opens the journal for append.
  /// Runs in the constructor before the executor thread exists.
  void recover_from_journal();
  /// Best-effort journal append; failures are counted (svc.journal_errors),
  /// never thrown — availability beats durability. Caller holds mutex_.
  void journal_append_locked(const char* event, const Job& job,
                             wire::Json extra = wire::Json());
  [[nodiscard]] std::string ckpt_path_for(std::uint64_t id) const;

  Config config_;
  PlanCache cache_;
  flux::Scheduler pool_;

  mutable std::mutex mutex_;
  mutable std::condition_variable job_done_cv_;
  std::condition_variable queue_cv_;
  std::deque<Job*> queue_;
  std::map<std::uint64_t, std::unique_ptr<Job>> jobs_;
  std::map<std::string, std::uint64_t> key_to_id_; // client_key dedup
  Journal journal_;
  std::uint64_t next_id_ = 1;
  Job* running_ = nullptr;
  bool draining_ = false;
  bool stop_executor_ = false;
  std::uint64_t submitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t done_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t recovered_ = 0;

  mutable std::mutex shutdown_mutex_;
  mutable std::condition_variable shutdown_cv_;
  std::atomic<bool> shutdown_requested_{false};

  std::thread executor_;
};

} // namespace sts::svc
