#include "svc/cache.hpp"

#include "obs/obs.hpp"
#include "support/env.hpp"

namespace sts::svc {

namespace {

// Single authority for the cache gauges: republish the absolute totals
// after any mutation (and at construction, so a fresh cache resets what a
// previous instance left behind) — absolute observes cannot drift or go
// negative the way incremental +=/-= accounting could.
void publish_cache_gauges(std::size_t bytes, std::size_t entries) {
  obs::gauge("svc.cache.bytes").observe(static_cast<std::int64_t>(bytes));
  obs::gauge("svc.cache.entries").observe(static_cast<std::int64_t>(entries));
}

} // namespace

PlanCache::PlanCache(std::size_t budget_bytes) : budget_(budget_bytes) {
  publish_cache_gauges(0, 0);
}

std::size_t PlanCache::budget_from_env() {
  const std::int64_t v = support::env_int(
      "STS_CACHE_BYTES", static_cast<std::int64_t>(kDefaultBudget));
  return v < 0 ? 0 : static_cast<std::size_t>(v);
}

std::shared_ptr<const Plan> PlanCache::get_or_build(
    const std::string& source, const std::string& directive,
    const std::function<Plan()>& build, bool* was_hit) {
  const Key key{source, directive};
  const std::lock_guard<std::mutex> lock(mutex_);
  if (auto it = entries_.find(key); it != entries_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos); // mark hottest
    ++hits_;
    obs::counter("svc.cache.hits").add();
    if (was_hit != nullptr) *was_hit = true;
    return it->second.plan;
  }
  ++misses_;
  obs::counter("svc.cache.misses").add();
  if (was_hit != nullptr) *was_hit = false;

  auto plan = std::make_shared<const Plan>(build());
  lru_.push_front(key);
  entries_[key] = Entry{plan, lru_.begin()};
  bytes_ += plan->bytes;
  evict_over_budget_locked(key);
  publish_cache_gauges(bytes_, entries_.size());
  return plan;
}

void PlanCache::evict_over_budget_locked(const Key& keep) {
  while (bytes_ > budget_ && !lru_.empty()) {
    const Key& victim = lru_.back();
    if (victim.source == keep.source && victim.directive == keep.directive) {
      break; // never evict the plan the caller is about to use
    }
    auto it = entries_.find(victim);
    bytes_ -= it->second.plan->bytes;
    entries_.erase(it);
    lru_.pop_back();
    ++evictions_;
    obs::counter("svc.cache.evictions").add();
  }
}

CacheStats PlanCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  CacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.bytes = bytes_;
  s.entries = entries_.size();
  s.budget_bytes = budget_;
  return s;
}

} // namespace sts::svc
