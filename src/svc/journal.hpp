// Durable job journal: the append-only record log behind stsd's crash
// recovery (DESIGN.md §12).
//
// Every job-state transition the service commits — SUBMITTED (with the full
// RunSpec), RUNNING, DONE, FAILED, CANCELLED — is appended as one framed
// record before the daemon acts on it further. On startup the service
// replays the log, folds the records per job id, and re-admits every job
// whose last state was not terminal.
//
// On-disk record framing (host-endian; the journal is a single-machine
// crash-recovery artifact, like the solver checkpoints):
//
//   u32      payload length in bytes
//   u32      CRC-32 of the payload
//   payload  JSON object {"event": "...", "id": N, ...extra fields}
//
// Replay is torn-tail tolerant by construction: a crash mid-append leaves a
// short or CRC-corrupt final record, replay stops at the last intact record
// boundary and reports the tail, and open() truncates the file back to that
// boundary so subsequent appends produce a log that is valid end-to-end.
// Replay never throws on corruption — a damaged journal degrades to
// whatever prefix is intact, it does not take the daemon down.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "svc/wire.hpp"

namespace sts::svc {

/// One replayed record: the transition event, the job it applies to, and
/// the full JSON object (for extra fields like "spec" or "error").
struct JournalRecord {
  std::string event;
  std::uint64_t id = 0;
  wire::Json fields;
};

class Journal {
public:
  Journal() = default;
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  struct Replay {
    std::vector<JournalRecord> records;
    bool torn_tail = false;        // trailing bytes past the intact prefix
    std::uint64_t valid_bytes = 0; // length of the intact prefix
  };

  /// Reads every intact record from `path`. A missing file is an empty
  /// replay; corruption stops the scan at the last intact record (never
  /// throws). Records whose payload parses but lacks "event"/"id" are
  /// skipped, not fatal.
  [[nodiscard]] static Replay replay(const std::string& path);

  /// Opens `path` for appending, truncating it to `valid_bytes` first so a
  /// torn tail found by replay() is dropped before new records land after
  /// it. Throws support::Error on I/O failure.
  void open(const std::string& path, std::uint64_t valid_bytes);

  /// Appends one record ({"event", "id"} merged with `extra`'s fields) and
  /// fsyncs, so an acknowledged transition survives a crash. The fault site
  /// "journal:append" fires before any I/O. Throws support::Error on I/O
  /// failure; callers contain it (availability beats durability here).
  void append(const std::string& event, std::uint64_t id,
              const wire::Json& extra = wire::Json());

  [[nodiscard]] bool is_open() const noexcept { return fd_ >= 0; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  void close();

private:
  int fd_ = -1;
  std::string path_;
};

} // namespace sts::svc
