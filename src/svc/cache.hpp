// Byte-budgeted LRU cache of solve plans: the parsed matrix (CSR) plus its
// CSB partition at a resolved block size.
//
// The paper's central cost observation is that CSB partitioning with a
// tuned block size is the expensive, reusable artifact behind both Lanczos
// and LOBPCG; a resident service therefore caches exactly that pair. The
// key is (source, block directive): `source` identifies the matrix bytes
// ("file:/path.mtx" or "suite:name@scale") and the directive identifies how
// the block size is chosen ("b4096" explicit, "heur:..." heuristic,
// "tune:..." simulated autotune) — both computable *before* any parsing, so
// a repeat submission skips mm_io/from_coo/from_csr entirely.
//
// Budgeting: entries are charged csr.memory_bytes() + csb.memory_bytes().
// After an insert, least-recently-used entries are evicted until the total
// fits STS_CACHE_BYTES again; the entry just inserted is never evicted (a
// single over-budget plan still gets used once — it just won't stick).
// Evicted plans stay alive via shared_ptr until running jobs drop them.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "la/dense.hpp"
#include "sparse/csb.hpp"
#include "sparse/csr.hpp"

namespace sts::svc {

/// One cached (matrix, partition) pair.
struct Plan {
  std::shared_ptr<const sparse::Csr> csr;
  std::shared_ptr<const sparse::Csb> csb;
  la::index_t block_size = 0; // resolved block size the partition uses
  std::size_t bytes = 0;      // cache charge for this plan
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t bytes = 0;
  std::size_t entries = 0;
  std::size_t budget_bytes = 0;
};

class PlanCache {
public:
  /// Default byte budget when STS_CACHE_BYTES is unset.
  static constexpr std::size_t kDefaultBudget = 256u << 20;

  explicit PlanCache(std::size_t budget_bytes);

  /// Budget from the STS_CACHE_BYTES environment variable (bytes), falling
  /// back to kDefaultBudget.
  [[nodiscard]] static std::size_t budget_from_env();

  /// Returns the cached plan for (source, directive), or runs `build`,
  /// caches its result, and returns it. The build runs under the cache
  /// lock: with one job executor that is free, and it also means two racing
  /// lookups can never build the same plan twice.
  std::shared_ptr<const Plan> get_or_build(
      const std::string& source, const std::string& directive,
      const std::function<Plan()>& build, bool* was_hit = nullptr);

  [[nodiscard]] CacheStats stats() const;

private:
  struct Key {
    std::string source;
    std::string directive;
    bool operator<(const Key& o) const {
      return source != o.source ? source < o.source : directive < o.directive;
    }
  };
  struct Entry {
    std::shared_ptr<const Plan> plan;
    std::list<Key>::iterator lru_pos; // position in lru_ (front = hottest)
  };

  void evict_over_budget_locked(const Key& keep);

  mutable std::mutex mutex_;
  std::size_t budget_;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::list<Key> lru_;
  std::map<Key, Entry> entries_;
};

} // namespace sts::svc
