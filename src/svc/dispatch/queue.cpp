#include "svc/dispatch/queue.hpp"

#include <algorithm>
#include <chrono>

#include "support/error.hpp"

namespace sts::svc::dispatch {

namespace {

std::int64_t wall_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

} // namespace

const char* to_string(Policy p) {
  return p == Policy::kFifo ? "fifo" : "fair";
}

const char* to_string(Class c) {
  return c == Class::kInteractive ? "interactive" : "batch";
}

Policy parse_policy(const std::string& name) {
  if (name == "fifo") return Policy::kFifo;
  if (name == "fair") return Policy::kFair;
  throw support::Error("unknown dispatch policy '" + name +
                       "' (expected fifo|fair)");
}

Class parse_class(const std::string& name) {
  if (name == "interactive") return Class::kInteractive;
  if (name == "batch") return Class::kBatch;
  throw support::Error("unknown priority class '" + name +
                       "' (expected interactive|batch)");
}

FairQueue::FairQueue(Policy policy, Clock clock)
    : policy_(policy), clock_(clock ? std::move(clock) : Clock(wall_ns)) {}

void FairQueue::push(Item item) {
  item.weight = std::max(1u, item.weight);
  if (item.enqueue_ns == 0) item.enqueue_ns = clock_();
  ++class_depth_[static_cast<unsigned>(item.cls)];
  ++size_;
  if (policy_ == Policy::kFifo) {
    fifo_.push_back(std::move(item));
    return;
  }
  Level& lvl = levels_[static_cast<unsigned>(item.cls)];
  auto [it, inserted] = lvl.clients.try_emplace(item.client);
  ClientQ& q = it->second;
  if (q.items.empty()) {
    // (Re)activating client: join the back of the RR ring with the weight
    // of this submission. A weight change while queued takes effect on the
    // next quantum charge.
    lvl.rr.push_back(item.client);
  }
  q.weight = std::max(1u, item.weight);
  q.items.push_back(std::move(item));
}

bool FairQueue::pop(Item* out) {
  if (size_ == 0) return false;
  if (policy_ == Policy::kFifo) {
    *out = std::move(fifo_.front());
    fifo_.pop_front();
    --class_depth_[static_cast<unsigned>(out->cls)];
    --size_;
    return true;
  }
  for (auto& lvl : levels_) {
    if (pop_level(lvl, out)) {
      --class_depth_[static_cast<unsigned>(out->cls)];
      --size_;
      return true;
    }
  }
  return false;
}

bool FairQueue::pop_level(Level& lvl, Item* out) {
  // DRR with unit-cost jobs: the cursor client receives `weight` credit on
  // arrival and spends 1 per grant; when its credit runs out (or its queue
  // drains) it rotates to the back and the next client is charged. Bounded:
  // each loop iteration either serves a job or retires the cursor, and an
  // empty rr ring exits immediately.
  while (!lvl.rr.empty()) {
    const std::string& name = lvl.rr.front();
    auto it = lvl.clients.find(name);
    if (it == lvl.clients.end() || it->second.items.empty()) {
      // Drained (or removed) while queued in the ring: retire the entry.
      if (it != lvl.clients.end()) lvl.clients.erase(it);
      lvl.rr.pop_front();
      lvl.charged = false;
      continue;
    }
    ClientQ& q = it->second;
    if (!lvl.charged) {
      q.deficit += q.weight;
      lvl.charged = true;
    }
    if (q.deficit < 1.0) {
      // Out of credit: keep the unspent remainder and rotate.
      lvl.rr.push_back(name);
      lvl.rr.pop_front();
      lvl.charged = false;
      continue;
    }
    q.deficit -= 1.0;
    *out = std::move(q.items.front());
    q.items.pop_front();
    if (q.items.empty()) {
      // Drained: forfeit leftover credit (DRR's anti-banking rule — an
      // idle client cannot save up a burst).
      lvl.clients.erase(it);
      lvl.rr.pop_front();
      lvl.charged = false;
    }
    return true;
  }
  return false;
}

bool FairQueue::remove(std::uint64_t id) {
  auto erase_from = [&](std::deque<Item>& dq) {
    for (auto it = dq.begin(); it != dq.end(); ++it) {
      if (it->id == id) {
        --class_depth_[static_cast<unsigned>(it->cls)];
        --size_;
        dq.erase(it);
        return true;
      }
    }
    return false;
  };
  if (policy_ == Policy::kFifo) return erase_from(fifo_);
  for (auto& lvl : levels_) {
    for (auto it = lvl.clients.begin(); it != lvl.clients.end(); ++it) {
      if (erase_from(it->second.items)) {
        // Leave a drained client in place: pop_level retires empty entries
        // lazily, which keeps remove() O(queue) with no ring surgery.
        return true;
      }
    }
  }
  return false;
}

std::size_t FairQueue::depth(Class c) const {
  return class_depth_[static_cast<unsigned>(c)];
}

std::vector<Item> FairQueue::snapshot() const {
  std::vector<Item> out;
  out.reserve(size_);
  if (policy_ == Policy::kFifo) {
    out.assign(fifo_.begin(), fifo_.end());
    return out;
  }
  for (const auto& lvl : levels_) {
    for (const auto& [name, q] : lvl.clients) {
      out.insert(out.end(), q.items.begin(), q.items.end());
    }
  }
  return out;
}

} // namespace sts::svc::dispatch
