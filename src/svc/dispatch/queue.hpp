// The dispatcher's two-level admission queue (DESIGN.md §15).
//
// Level 1 is strict priority: every pending job belongs to a class
// (interactive > batch) and no batch job is popped while an interactive job
// waits. Level 2 is weighted fair queuing inside a class: deficit round
// robin (DRR) over per-client queues, where a client's weight is its credit
// quantum — a weight-16 client gets sixteen grants for every one a weight-1
// client gets, but the weight-1 client is never starved because its deficit
// grows every round it is visited (Shreedhar & Varghese '96, with unit-cost
// "packets" since every grant costs one slot).
//
// The queue is a pure, single-threaded data structure (the Service
// serializes access under its own mutex) with an injectable clock, so
// dispatch_test.cpp can drive credit accounting deterministically.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace sts::svc::dispatch {

/// Queue service discipline for `stsd --policy`.
enum class Policy {
  kFifo, // single global FIFO: classes and weights ignored (PR 4 behaviour)
  kFair, // strict priority classes + DRR fairness inside a class
};

/// Strict priority classes, highest first.
enum class Class {
  kInteractive = 0,
  kBatch = 1,
};
inline constexpr unsigned kClassCount = 2;

[[nodiscard]] const char* to_string(Policy p);
[[nodiscard]] const char* to_string(Class c);
/// "fifo" | "fair" (throws support::Error otherwise).
[[nodiscard]] Policy parse_policy(const std::string& name);
/// "interactive" | "batch" (throws support::Error otherwise).
[[nodiscard]] Class parse_class(const std::string& name);

/// One pending job, as the scheduler sees it.
struct Item {
  std::uint64_t id = 0;      // service job id
  Class cls = Class::kBatch;
  unsigned weight = 1;       // DRR quantum; clamped to >= 1
  std::string client;        // fairness key (client_key prefix; "" = anon)
  std::int64_t enqueue_ns = 0;
};

class FairQueue {
 public:
  using Clock = std::function<std::int64_t()>; // ns; injectable for tests

  explicit FairQueue(Policy policy, Clock clock = {});

  /// Enqueues `item` (stamping enqueue_ns from the clock when zero).
  void push(Item item);

  /// Pops the next job under the discipline; false when empty.
  [[nodiscard]] bool pop(Item* out);

  /// Removes a pending job by id (cancellation); false when not queued.
  bool remove(std::uint64_t id);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  /// Pending jobs in `c` (under kFifo, every job counts as its real class).
  [[nodiscard]] std::size_t depth(Class c) const;
  [[nodiscard]] Policy policy() const { return policy_; }

  /// Pending items in pop-agnostic order (class-major, then per-client
  /// FIFO) for `stsctl queue`.
  [[nodiscard]] std::vector<Item> snapshot() const;

 private:
  /// Per-client FIFO plus its DRR account.
  struct ClientQ {
    std::deque<Item> items;
    unsigned weight = 1;   // quantum added when the RR cursor arrives
    double deficit = 0.0;  // unspent credit; reset when the queue drains
  };
  /// One priority class: clients + the round-robin visit order.
  struct Level {
    std::map<std::string, ClientQ> clients;
    std::deque<std::string> rr;  // visit order; front = current candidate
    bool charged = false;        // current rr front already got its quantum
  };

  bool pop_level(Level& lvl, Item* out);

  Policy policy_;
  Clock clock_;
  std::deque<Item> fifo_;             // kFifo backing
  Level levels_[kClassCount];         // kFair backing
  std::size_t class_depth_[kClassCount] = {0, 0};
  std::size_t size_ = 0;
};

} // namespace sts::svc::dispatch
