#include "svc/dispatch/partition.hpp"

#include <algorithm>

namespace sts::svc::dispatch {

std::string Partition::cpulist() const {
  std::string out;
  std::size_t i = 0;
  while (i < cpus.size()) {
    std::size_t j = i;
    while (j + 1 < cpus.size() && cpus[j + 1] == cpus[j] + 1) ++j;
    if (!out.empty()) out += ',';
    out += std::to_string(cpus[i]);
    if (j > i) out += '-' + std::to_string(cpus[j]);
    i = j + 1;
  }
  return out;
}

std::vector<Partition> carve(const support::topo::Machine& m,
                             unsigned slots) {
  std::vector<std::vector<int>> slices =
      support::topo::partition_cpus(m, slots);
  std::vector<Partition> parts;
  parts.reserve(slices.size());
  for (std::size_t s = 0; s < slices.size(); ++s) {
    Partition p;
    p.slot = static_cast<unsigned>(s);
    p.cpus = std::move(slices[s]);
    for (int c : p.cpus) {
      const support::topo::Cpu* cpu = m.find_cpu(c);
      const int node = cpu != nullptr ? cpu->node : 0;
      if (!std::binary_search(p.domains.begin(), p.domains.end(), node)) {
        p.domains.insert(
            std::lower_bound(p.domains.begin(), p.domains.end(), node), node);
      }
    }
    parts.push_back(std::move(p));
  }
  return parts;
}

} // namespace sts::svc::dispatch
