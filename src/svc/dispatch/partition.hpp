// Worker partitions: the machine slices that back the dispatcher's K job
// slots (DESIGN.md §15).
//
// A Partition is a contiguous, NUMA-domain-aligned set of CPUs carved from
// a topo::Machine by support::topo::partition_cpus. Slot i always owns
// carve(...)[i]; elastic grants lend one slot's CPUs to a job running on
// another slot without ever splitting a slice further, so two concurrently
// running jobs never share a NUMA domain unless slots > nodes forced the
// carve to subdivide a node.
#pragma once

#include <string>
#include <vector>

#include "support/topology.hpp"

namespace sts::svc::dispatch {

/// One slot's share of the machine.
struct Partition {
  unsigned slot = 0;        // owning dispatcher slot index
  std::vector<int> cpus;    // ascending cpu ids; never empty
  std::vector<int> domains; // distinct NUMA node ids covered, ascending

  /// "0-3" / "0-1,4" — the sysfs cpulist form, for `stsctl queue` tables.
  [[nodiscard]] std::string cpulist() const;
};

/// Carves `machine` into `slots` partitions via topo::partition_cpus and
/// annotates each with its slot index and covered domains. The result size
/// is partition_cpus' clamp of `slots` to [1, cpu_count].
[[nodiscard]] std::vector<Partition> carve(const support::topo::Machine& m,
                                           unsigned slots);

} // namespace sts::svc::dispatch
