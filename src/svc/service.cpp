#include "svc/service.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

#include "obs/obs.hpp"
#include "solvers/checkpoint.hpp"
#include "solvers/common.hpp"
#include "solvers/lanczos.hpp"
#include "solvers/lobpcg.hpp"
#include "support/env.hpp"
#include "support/topology.hpp"
#include "support/escape.hpp"
#include "support/fault.hpp"
#include "support/timer.hpp"

namespace sts::svc {

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kPending: return "PENDING";
    case JobState::kRunning: return "RUNNING";
    case JobState::kDone: return "DONE";
    case JobState::kFailed: return "FAILED";
    case JobState::kCancelled: return "CANCELLED";
  }
  return "?";
}

namespace {

Plan build_plan(const RunSpec& spec, flux::Scheduler& pool) {
  sparse::Coo coo = spec.load();
  auto csr = std::make_shared<const sparse::Csr>(
      sparse::Csr::from_coo(std::move(coo)));
  const RunSpec::BlockChoice choice = spec.resolve_block(*csr);
  sparse::Csb csb = sparse::Csb::from_csr(*csr, choice.block);
  if (pool.domain_count() > 1) {
    // First-touch each domain stripe from a pinned worker of its node
    // before the matrix is frozen into the (shared, immutable) plan; every
    // kFlux solve on this plan then hints tasks at the owning domain.
    (void)solver::place_csb(csb, pool);
  }
  Plan plan;
  plan.bytes = csr->memory_bytes() + csb.memory_bytes();
  plan.block_size = choice.block;
  plan.csr = std::move(csr);
  plan.csb = std::make_shared<const sparse::Csb>(std::move(csb));
  return plan;
}

unsigned pool_threads(unsigned configured) {
  if (configured != 0) return configured;
  return std::max(1u, std::thread::hardware_concurrency());
}

} // namespace

wire::Json to_json(const JobInfo& info) {
  wire::Json j = wire::Json::object();
  j.set("id", static_cast<std::uint64_t>(info.id));
  j.set("state", to_string(info.state));
  j.set("spec", info.spec_describe);
  if (!info.error.empty()) j.set("error", info.error);
  j.set("cache_hit", info.cache_hit);
  if (info.block_size != 0) {
    j.set("block", static_cast<std::int64_t>(info.block_size));
  }
  j.set("queue_seconds", info.queue_seconds);
  j.set("run_seconds", info.run_seconds);
  if (info.summary.is_object()) j.set("summary", info.summary);
  return j;
}

wire::Json to_json(const ServiceStats& s) {
  wire::Json j = wire::Json::object();
  j.set("queue_depth", static_cast<std::uint64_t>(s.queue_depth));
  j.set("queue_capacity", static_cast<std::uint64_t>(s.queue_capacity));
  j.set("submitted", s.submitted);
  j.set("rejected", s.rejected);
  j.set("done", s.done);
  j.set("failed", s.failed);
  j.set("cancelled", s.cancelled);
  j.set("recovered", s.recovered);
  j.set("running_job", s.running_job);
  wire::Json cache = wire::Json::object();
  cache.set("hits", s.cache.hits);
  cache.set("misses", s.cache.misses);
  cache.set("evictions", s.cache.evictions);
  cache.set("bytes", static_cast<std::uint64_t>(s.cache.bytes));
  cache.set("entries", static_cast<std::uint64_t>(s.cache.entries));
  cache.set("budget_bytes", static_cast<std::uint64_t>(s.cache.budget_bytes));
  j.set("cache", std::move(cache));
  j.set("job_p50_ms", s.job_p50_ms);
  j.set("job_p95_ms", s.job_p95_ms);
  j.set("job_p99_ms", s.job_p99_ms);
  wire::Json topo = wire::Json::object();
  topo.set("nodes", static_cast<std::uint64_t>(s.topology.nodes));
  topo.set("cpus", static_cast<std::uint64_t>(s.topology.cpus));
  topo.set("smt_siblings", static_cast<std::uint64_t>(s.topology.smt));
  topo.set("from_sysfs", s.topology.from_sysfs);
  topo.set("pool_threads",
           static_cast<std::uint64_t>(s.topology.pool_threads));
  topo.set("pool_domains",
           static_cast<std::uint64_t>(s.topology.pool_domains));
  topo.set("affinity", s.topology.affinity);
  j.set("topology", std::move(topo));
  return j;
}

Service::Config Service::Config::from_env() {
  Config c;
  const std::int64_t cap = support::env_int("STS_QUEUE_CAP", 64);
  c.queue_capacity = cap < 1 ? 1 : static_cast<std::size_t>(cap);
  c.cache_bytes = PlanCache::budget_from_env();
  c.threads = static_cast<unsigned>(support::env_int("STS_THREADS", 0));
  c.journal_path = support::env_string("STS_JOURNAL", "");
  c.ckpt_dir = support::env_string("STS_CKPT_DIR", "");
  const std::int64_t trace_bytes = support::env_int(
      "STS_JOB_TRACE_BYTES", static_cast<std::int64_t>(c.job_trace_bytes));
  c.job_trace_bytes =
      trace_bytes < 0 ? 0 : static_cast<std::size_t>(trace_bytes);
  return c;
}

Service::Service(Config config)
    : config_(std::move(config)), cache_(config_.cache_bytes),
      // Topology-derived pool: domains = detected NUMA nodes (clamped to the
      // worker count), workers pinned per STS_AFFINITY. STS_NUMA=off is the
      // kill switch back to the old 1-domain unpinned pool.
      pool_(flux::Scheduler::Config::topology_aware(
          pool_threads(config_.threads))) {
  const support::topo::Machine& machine = support::topo::machine();
  obs::gauge("topology.nodes")
      .observe(static_cast<std::int64_t>(machine.node_count()));
  obs::gauge("topology.cpus")
      .observe(static_cast<std::int64_t>(machine.cpu_count()));
  obs::gauge("topology.smt_siblings")
      .observe(static_cast<std::int64_t>(machine.smt_siblings));
  obs::gauge("topology.pool_domains")
      .observe(static_cast<std::int64_t>(pool_.domain_count()));
  if (!config_.ckpt_dir.empty()) {
    if (::mkdir(config_.ckpt_dir.c_str(), 0755) != 0 && errno != EEXIST) {
      throw support::Error("ckpt dir " + config_.ckpt_dir + ": " +
                           std::strerror(errno));
    }
  }
  obs::set_job_trace_capacity(config_.job_trace_bytes);
  // This service's job-id space starts fresh; slices a previous instance
  // buffered under the same ids must not bleed into our trace exports.
  obs::clear_job_traces();
  // Recovery runs before the executor thread exists: re-admitted jobs are
  // queued, the journal is open for append, and only then does execution
  // start — no replayed record can race a fresh one.
  if (!config_.journal_path.empty()) recover_from_journal();
  executor_ = std::thread([this] { executor_loop(); });
}

Service::~Service() { drain(); }

std::string Service::ckpt_path_for(std::uint64_t id) const {
  return config_.ckpt_dir + "/job-" + std::to_string(id) + ".ckpt";
}

void Service::journal_append_locked(const char* event, const Job& job,
                                    wire::Json extra) {
  if (!journal_.is_open()) return;
  try {
    journal_.append(event, job.id, extra);
  } catch (const std::exception& e) {
    // Availability over durability: a dead disk degrades recovery, it does
    // not take running jobs down. The gap is visible in the metrics.
    obs::counter("svc.journal_errors").add();
    obs::instant(std::string("journal: ") + e.what(), "svc");
  }
}

void Service::recover_from_journal() {
  const Journal::Replay replay = Journal::replay(config_.journal_path);
  if (replay.torn_tail) {
    obs::counter("svc.journal_torn_tail").add();
    obs::instant("journal: torn tail truncated at byte " +
                     std::to_string(replay.valid_bytes),
                 "svc");
  }
  journal_.open(config_.journal_path, replay.valid_bytes);

  // Fold the records per job id: the SUBMITTED record carries the spec,
  // the last transition wins as the state.
  struct Folded {
    wire::Json spec;
    JobState state = JobState::kPending;
    std::string error;
    bool have_spec = false;
  };
  std::map<std::uint64_t, Folded> folded; // ordered: re-admit in id order
  for (const JournalRecord& rec : replay.records) {
    Folded& f = folded[rec.id];
    if (rec.event == "SUBMITTED") {
      if (rec.fields.has("spec")) {
        f.spec = rec.fields.get("spec");
        f.have_spec = true;
      }
    } else if (rec.event == "RUNNING") {
      f.state = JobState::kRunning;
    } else if (rec.event == "DONE") {
      f.state = JobState::kDone;
    } else if (rec.event == "FAILED") {
      f.state = JobState::kFailed;
      f.error = rec.fields.string_or("error", "");
    } else if (rec.event == "CANCELLED") {
      f.state = JobState::kCancelled;
      f.error = rec.fields.string_or("error", "");
    }
  }

  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [id, f] : folded) {
    next_id_ = std::max(next_id_, id + 1);
    if (!f.have_spec) {
      // A terminal/RUNNING record whose SUBMITTED prefix was lost (torn
      // head would need truncation from the front; we only truncate tails).
      obs::counter("svc.journal_errors").add();
      continue;
    }
    auto job = std::make_unique<Job>();
    job->id = id;
    try {
      job->spec = RunSpec::from_json(f.spec);
      job->spec.validate();
    } catch (const std::exception&) {
      obs::counter("svc.journal_errors").add();
      continue;
    }
    job->submit_ns = support::now_ns();
    if (!job->spec.client_key.empty()) {
      key_to_id_.emplace(job->spec.client_key, id);
    }
    ++submitted_;
    Job* raw = job.get();
    jobs_.emplace(id, std::move(job));
    if (f.state == JobState::kDone || f.state == JobState::kFailed ||
        f.state == JobState::kCancelled) {
      // Resurrect terminal jobs as queryable history (summary excluded —
      // the journal records transitions, not payloads), without re-writing
      // their terminal records.
      raw->state = f.state;
      raw->error = f.error;
      raw->start_ns = raw->submit_ns;
      raw->end_ns = raw->submit_ns;
      switch (f.state) {
        case JobState::kDone: ++done_; break;
        case JobState::kFailed: ++failed_; break;
        default: ++cancelled_; break;
      }
      continue;
    }
    // Interrupted PENDING/RUNNING job: re-admit. run_job() points it at its
    // last solver checkpoint (if one exists) via job->recovered.
    raw->recovered = true;
    try {
      // Deterministic chaos hook: an armed throw here fails exactly this
      // job's recovery; the daemon and every other replayed job keep going.
      support::fault::check("svc:recover");
    } catch (const std::exception& e) {
      finish_job(*raw, JobState::kFailed,
                 std::string("recovery: ") + e.what());
      continue;
    }
    queue_.push_back(raw);
    ++recovered_;
    obs::counter("svc.recovered_jobs").add();
  }
  if (recovered_ > 0) {
    obs::instant("journal: re-admitted " + std::to_string(recovered_) +
                     " interrupted job(s)",
                 "svc");
  }
  publish_queue_depth_locked();
}

void Service::publish_queue_depth_locked() const {
  obs::gauge("svc.queue_depth")
      .observe(static_cast<std::int64_t>(queue_.size()));
}

SubmitOutcome Service::submit(RunSpec spec) {
  spec.validate(); // throws on malformed specs before any accounting
  SubmitOutcome out;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!spec.client_key.empty()) {
    // Idempotent resubmission: a retry after a lost reply (or a daemon
    // restart, via the journal-refilled map) finds the original job.
    const auto it = key_to_id_.find(spec.client_key);
    if (it != key_to_id_.end()) {
      obs::counter("svc.jobs_deduped").add();
      out.accepted = true;
      out.id = it->second;
      return out;
    }
  }
  if (draining_ || stop_executor_) {
    ++rejected_;
    obs::counter("svc.jobs_rejected").add();
    out.error = "draining";
    return out;
  }
  if (queue_.size() >= config_.queue_capacity) {
    // Admission control: reject now with a typed error instead of blocking
    // the client behind an unbounded backlog.
    ++rejected_;
    obs::counter("svc.jobs_rejected").add();
    out.error = "queue_full";
    return out;
  }
  auto job = std::make_unique<Job>();
  job->id = next_id_++;
  job->spec = std::move(spec);
  job->submit_ns = support::now_ns();
  Job* raw = job.get();
  jobs_.emplace(raw->id, std::move(job));
  if (!raw->spec.client_key.empty()) {
    key_to_id_.emplace(raw->spec.client_key, raw->id);
  }
  // The admission record goes to disk before the id is acknowledged: a
  // crash after this point re-admits the job on restart.
  wire::Json extra = wire::Json::object();
  extra.set("spec", raw->spec.to_json());
  journal_append_locked("SUBMITTED", *raw, std::move(extra));
  queue_.push_back(raw);
  ++submitted_;
  obs::counter("svc.jobs_submitted").add();
  publish_queue_depth_locked();
  queue_cv_.notify_one();
  out.accepted = true;
  out.id = raw->id;
  return out;
}

JobInfo Service::snapshot_locked(const Job& job) const {
  JobInfo info;
  info.id = job.id;
  info.state = job.state;
  info.spec_describe = job.spec.describe();
  info.error = job.error;
  info.cache_hit = job.cache_hit;
  info.block_size = job.block_size;
  if (job.start_ns > 0) {
    info.queue_seconds =
        static_cast<double>(job.start_ns - job.submit_ns) * 1e-9;
    const std::int64_t end = job.end_ns > 0 ? job.end_ns : support::now_ns();
    info.run_seconds = static_cast<double>(end - job.start_ns) * 1e-9;
  }
  info.summary = job.summary;
  return info;
}

JobInfo Service::status(std::uint64_t id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    throw support::Error("unknown job id " + std::to_string(id));
  }
  return snapshot_locked(*it->second);
}

JobInfo Service::wait(std::uint64_t id, std::chrono::milliseconds deadline,
                      const std::atomic<bool>* abort) const {
  const auto until = std::chrono::steady_clock::now() + deadline;
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    throw support::Error("unknown job id " + std::to_string(id));
  }
  while (!snapshot_locked(*it->second).terminal()) {
    if (abort != nullptr && abort->load(std::memory_order_acquire)) break;
    const auto now = std::chrono::steady_clock::now();
    if (now >= until) break;
    // 100 ms slices so an abort flag (server drain) is observed promptly.
    job_done_cv_.wait_until(
        lock, std::min(until, now + std::chrono::milliseconds(100)));
  }
  return snapshot_locked(*it->second);
}

bool Service::cancel(std::uint64_t id, const std::string& reason) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    throw support::Error("unknown job id " + std::to_string(id));
  }
  Job& job = *it->second;
  switch (job.state) {
    case JobState::kPending: {
      job.token.request(reason);
      queue_.erase(std::remove(queue_.begin(), queue_.end(), &job),
                   queue_.end());
      publish_queue_depth_locked();
      finish_job(job, JobState::kCancelled, reason);
      return true;
    }
    case JobState::kRunning: {
      job.token.request(reason);
      if (job.spec.version == solver::Version::kFlux) {
        // PR 1's cancellation path: latch an error in the shared pool so
        // queued task bodies are skipped and the blocked driver unwinds
        // now instead of at its next iteration boundary. The executor
        // flushes the pool after every job, so the latched error can never
        // leak into the next solve.
        pool_.report_task_error(
            std::make_exception_ptr(support::Cancelled(reason)));
      }
      return true;
    }
    case JobState::kDone:
    case JobState::kFailed:
    case JobState::kCancelled: return false;
  }
  return false;
}

void Service::finish_job(Job& job, JobState state, const std::string& error) {
  // Caller holds mutex_.
  job.state = state;
  job.error = error;
  job.end_ns = support::now_ns();
  switch (state) {
    case JobState::kDone: ++done_; break;
    case JobState::kFailed: ++failed_; break;
    case JobState::kCancelled: ++cancelled_; break;
    default: break;
  }
  wire::Json extra = wire::Json::object();
  if (!error.empty()) extra.set("error", error);
  journal_append_locked(to_string(state), job, std::move(extra));
  if (!config_.ckpt_dir.empty()) {
    // A terminal job's checkpoint is dead weight (and would poison a future
    // job that reuses the id after a journal wipe): drop it.
    ::unlink(ckpt_path_for(job.id).c_str());
  }
  obs::histogram("svc.job_ns").observe(job.end_ns - job.submit_ns);
  obs::instant("svc.job[" + std::to_string(job.id) + "] " + to_string(state),
               "svc");
  job_done_cv_.notify_all();
}

void Service::executor_loop() {
  while (true) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock,
                     [this] { return stop_executor_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_executor_) return;
        continue;
      }
      job = queue_.front();
      queue_.pop_front();
      publish_queue_depth_locked();
      if (job->token.requested()) { // cancelled while queued
        finish_job(*job, JobState::kCancelled, job->token.reason());
        continue;
      }
      job->state = JobState::kRunning;
      job->start_ns = support::now_ns();
      running_ = job;
      journal_append_locked("RUNNING", *job);
    }
    // Per-job trace window: every span/instant/task event emitted by any
    // thread between here and end_job_trace() lands in the job's slice of
    // the trace ring, keyed for `stsctl trace <id>`. Single-executor
    // lifecycle makes the window unambiguous.
    const std::string trace_id = job->spec.trace_id.empty()
                                     ? "job-" + std::to_string(job->id)
                                     : job->spec.trace_id;
    obs::begin_job_trace(job->id, trace_id);
    run_job(*job);
    // Consume any error latched in the shared pool after the job's own
    // waits (e.g. a cancel() that raced with solve completion), keeping the
    // pool clean for the next job. The job is still RUNNING as far as
    // cancel() is concerned only until finish_job() ran inside run_job(),
    // so no new report can land after this flush.
    try {
      pool_.wait_for_quiescence();
    } catch (...) {
    }
    // Root span last so stray worker spans from the quiesce are inside the
    // window; rendered under the executor's lane.
    obs::span("job[" + std::to_string(job->id) + "]", "svc", job->start_ns,
              support::now_ns(),
              "{\"trace_id\":\"" + support::json_escape(trace_id) +
                  "\",\"spec\":\"" + support::json_escape(job->spec.describe()) +
                  "\"}");
    obs::end_job_trace();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      running_ = nullptr;
    }
  }
}

void Service::run_job(Job& job) {
  try {
    // Deterministic fault site: one armed throw here fails exactly this
    // job; the daemon and every later job keep going.
    support::fault::check("svc:job");
    job.token.throw_if_requested();

    bool hit = false;
    const std::shared_ptr<const Plan> plan = cache_.get_or_build(
        job.spec.source_key(), job.spec.block_directive(),
        [&job, this] { return build_plan(job.spec, pool_); }, &hit);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      job.cache_hit = hit;
      job.block_size = plan->block_size;
    }

    // Per-job wall-clock guard, sharing the cancel token with the client's
    // cancel op. Flux gets the prompt unblock; other runtimes observe the
    // token at their next iteration boundary.
    std::optional<support::Deadline> deadline;
    if (job.spec.timeout_sec > 0.0) {
      std::function<void()> nudge;
      if (job.spec.version == solver::Version::kFlux) {
        nudge = [this] {
          pool_.report_task_error(
              std::make_exception_ptr(support::Cancelled("timeout")));
        };
      }
      deadline.emplace(job.token,
                       std::chrono::milliseconds(static_cast<std::int64_t>(
                           job.spec.timeout_sec * 1e3)),
                       "timeout", std::move(nudge));
    }

    // Crash resilience: with a checkpoint dir configured, the solver
    // checkpoints to a per-job file; a journal-recovered job resumes from
    // that file when it is intact and matches the spec, and falls back to a
    // cold restart (counted) when it is missing or stale.
    std::string ckpt_path;
    std::optional<solver::ckpt::Checkpoint> restored;
    if (!config_.ckpt_dir.empty()) {
      ckpt_path = ckpt_path_for(job.id);
      if (job.recovered) {
        try {
          solver::ckpt::Checkpoint c = solver::ckpt::load(ckpt_path);
          const bool lanczos_ckpt = c.kind == solver::ckpt::Kind::kLanczos;
          if (lanczos_ckpt == (job.spec.solver == SolverKind::kLanczos)) {
            restored = std::move(c);
          }
        } catch (const std::exception&) {
          // No checkpoint (job never reached one) or a corrupt/stale file:
          // solve from iteration 0. load() already counted CRC failures.
        }
        if (!restored) obs::counter("svc.recover_cold_restarts").add();
      }
    }

    wire::Json summary = wire::Json::object();
    solver::SolverStatus status = solver::SolverStatus::kOk;
    if (job.spec.solver == SolverKind::kLanczos) {
      solver::SolverOptions options =
          job.spec.solver_options(plan->block_size);
      options.cancel = &job.token;
      options.ckpt_path = ckpt_path;
      if (restored) options.restore = &*restored;
      if (job.spec.version == solver::Version::kFlux) {
        options.flux_pool = &pool_;
        // The shared pool's domain layout wins over whatever the spec's
        // thread count would have derived (acquire_flux_pool validates the
        // two agree).
        options.numa_domains = pool_.domain_count();
      }
      const auto r = solver::lanczos(*plan->csr, *plan->csb,
                                     job.spec.iterations, job.spec.version,
                                     options);
      status = r.status;
      summary.set("iterations", r.timing.iterations);
      summary.set("seconds", r.timing.total_seconds);
      wire::Json ritz = wire::Json::array();
      if (!r.ritz_values.empty()) {
        ritz.push(r.ritz_values.front());
        ritz.push(r.ritz_values.back());
      }
      summary.set("ritz_extremes", std::move(ritz));
    } else {
      solver::LobpcgOptions options =
          job.spec.lobpcg_options(plan->block_size);
      options.cancel = &job.token;
      options.ckpt_path = ckpt_path;
      if (restored) options.restore = &*restored;
      if (job.spec.version == solver::Version::kFlux) {
        options.flux_pool = &pool_;
        options.numa_domains = pool_.domain_count();
      }
      const auto r = solver::lobpcg(*plan->csr, *plan->csb,
                                    job.spec.iterations, job.spec.version,
                                    options);
      status = r.status;
      summary.set("iterations", r.timing.iterations);
      summary.set("seconds", r.timing.total_seconds);
      summary.set("converged", r.converged);
      wire::Json eigs = wire::Json::array();
      for (const double ev : r.eigenvalues) eigs.push(ev);
      summary.set("eigenvalues", std::move(eigs));
    }

    const std::lock_guard<std::mutex> lock(mutex_);
    job.summary = std::move(summary);
    if (status == solver::SolverStatus::kOk) {
      finish_job(job, JobState::kDone, "");
    } else {
      // Breakdown guards: numerically unsound runs are FAILED jobs with the
      // solver's own status naming the cause; the truncated summary stays
      // attached for post-mortems.
      finish_job(job, JobState::kFailed,
                 std::string("solver: ") + solver::to_string(status));
    }
  } catch (const support::Cancelled& e) {
    const std::lock_guard<std::mutex> lock(mutex_);
    finish_job(job, JobState::kCancelled, e.reason());
  } catch (const std::exception& e) {
    // TaskError, fault::Injected, bad input, OOM — the job is FAILED, the
    // daemon lives on.
    const std::lock_guard<std::mutex> lock(mutex_);
    finish_job(job, JobState::kFailed, e.what());
  }
}

ServiceStats Service::stats() const {
  ServiceStats s;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    s.queue_depth = queue_.size();
    s.queue_capacity = config_.queue_capacity;
    s.submitted = submitted_;
    s.rejected = rejected_;
    s.done = done_;
    s.failed = failed_;
    s.cancelled = cancelled_;
    s.recovered = recovered_;
    s.running_job = running_ != nullptr;
  }
  s.cache = cache_.stats();
  // One coherent snapshot for all three quantiles (and it is one ring flip,
  // not three).
  const obs::Histogram::Snapshot h = obs::histogram("svc.job_ns").snapshot();
  s.job_p50_ms = h.quantile(0.50) * 1e-6;
  s.job_p95_ms = h.quantile(0.95) * 1e-6;
  s.job_p99_ms = h.quantile(0.99) * 1e-6;
  const support::topo::Machine& machine = support::topo::machine();
  s.topology.nodes = machine.node_count();
  s.topology.cpus = machine.cpu_count();
  s.topology.smt = machine.smt_siblings;
  s.topology.from_sysfs = machine.from_sysfs;
  s.topology.pool_threads = pool_.thread_count();
  s.topology.pool_domains = pool_.domain_count();
  s.topology.affinity = flux::to_string(pool_.affinity());
  return s;
}

void Service::drain() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stop_executor_) return; // already drained
    draining_ = true;
    // Pending jobs are cancelled, not silently dropped: each gets a
    // terminal state a waiting client can observe.
    for (Job* job : queue_) {
      job->token.request("drained");
      finish_job(*job, JobState::kCancelled, "drained");
    }
    queue_.clear();
    publish_queue_depth_locked();
    stop_executor_ = true;
    queue_cv_.notify_all();
  }
  if (executor_.joinable()) executor_.join();
}

void Service::request_shutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  shutdown_cv_.notify_all();
}

bool Service::shutdown_requested() const noexcept {
  return shutdown_requested_.load(std::memory_order_acquire);
}

void Service::wait_shutdown() const {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested(); });
}

} // namespace sts::svc
