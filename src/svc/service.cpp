#include "svc/service.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <set>
#include <thread>

#include "obs/obs.hpp"
#include "solvers/checkpoint.hpp"
#include "solvers/common.hpp"
#include "solvers/lanczos.hpp"
#include "solvers/lobpcg.hpp"
#include "support/env.hpp"
#include "support/escape.hpp"
#include "support/fault.hpp"
#include "support/timer.hpp"
#include "support/topology.hpp"

namespace sts::svc {

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kPending: return "PENDING";
    case JobState::kRunning: return "RUNNING";
    case JobState::kDone: return "DONE";
    case JobState::kFailed: return "FAILED";
    case JobState::kCancelled: return "CANCELLED";
  }
  return "?";
}

namespace {

Plan build_plan(const RunSpec& spec, flux::Scheduler* pool) {
  sparse::Coo coo = spec.load();
  auto csr = std::make_shared<const sparse::Csr>(
      sparse::Csr::from_coo(std::move(coo)));
  const RunSpec::BlockChoice choice = spec.resolve_block(*csr);
  sparse::Csb csb = sparse::Csb::from_csr(*csr, choice.block);
  if (pool != nullptr && pool->domain_count() > 1) {
    // First-touch each domain stripe from a pinned worker of its node
    // before the matrix is frozen into the (shared, immutable) plan; every
    // kFlux solve on this plan then hints tasks at the owning domain.
    (void)solver::place_csb(csb, *pool);
  }
  Plan plan;
  plan.bytes = csr->memory_bytes() + csb.memory_bytes();
  plan.block_size = choice.block;
  plan.csr = std::move(csr);
  plan.csb = std::make_shared<const sparse::Csb>(std::move(csb));
  return plan;
}

/// The affinity the slot pools will actually use: for_partition pins
/// kCompact unless STS_AFFINITY says off (a partition is enforced by
/// pinning). Mirrored here so stats() reports the truth without a pool.
flux::Affinity partition_affinity() {
  const std::string env = support::env_string("STS_AFFINITY", "");
  if (env == "off" || env == "0") return flux::Affinity::kOff;
  return flux::Affinity::kCompact;
}

/// Ascending-cpu-id cpulist ("0-3,8") of a possibly unsorted grant set.
std::string cpulist_of(std::vector<int> cpus) {
  std::sort(cpus.begin(), cpus.end());
  dispatch::Partition tmp;
  tmp.cpus = std::move(cpus);
  return tmp.cpulist();
}

} // namespace

wire::Json to_json(const JobInfo& info) {
  wire::Json j = wire::Json::object();
  j.set("id", static_cast<std::uint64_t>(info.id));
  j.set("state", to_string(info.state));
  j.set("spec", info.spec_describe);
  if (!info.error.empty()) j.set("error", info.error);
  j.set("cache_hit", info.cache_hit);
  if (info.block_size != 0) {
    j.set("block", static_cast<std::int64_t>(info.block_size));
  }
  j.set("queue_seconds", info.queue_seconds);
  j.set("run_seconds", info.run_seconds);
  if (info.summary.is_object()) j.set("summary", info.summary);
  return j;
}

wire::Json to_json(const ServiceStats& s) {
  wire::Json j = wire::Json::object();
  j.set("queue_depth", static_cast<std::uint64_t>(s.queue_depth));
  j.set("queue_capacity", static_cast<std::uint64_t>(s.queue_capacity));
  j.set("submitted", s.submitted);
  j.set("rejected", s.rejected);
  j.set("done", s.done);
  j.set("failed", s.failed);
  j.set("cancelled", s.cancelled);
  j.set("recovered", s.recovered);
  j.set("running_job", s.running_job);
  wire::Json cache = wire::Json::object();
  cache.set("hits", s.cache.hits);
  cache.set("misses", s.cache.misses);
  cache.set("evictions", s.cache.evictions);
  cache.set("bytes", static_cast<std::uint64_t>(s.cache.bytes));
  cache.set("entries", static_cast<std::uint64_t>(s.cache.entries));
  cache.set("budget_bytes", static_cast<std::uint64_t>(s.cache.budget_bytes));
  j.set("cache", std::move(cache));
  j.set("job_p50_ms", s.job_p50_ms);
  j.set("job_p95_ms", s.job_p95_ms);
  j.set("job_p99_ms", s.job_p99_ms);
  wire::Json topo = wire::Json::object();
  topo.set("nodes", static_cast<std::uint64_t>(s.topology.nodes));
  topo.set("cpus", static_cast<std::uint64_t>(s.topology.cpus));
  topo.set("smt_siblings", static_cast<std::uint64_t>(s.topology.smt));
  topo.set("from_sysfs", s.topology.from_sysfs);
  topo.set("pool_threads",
           static_cast<std::uint64_t>(s.topology.pool_threads));
  topo.set("pool_domains",
           static_cast<std::uint64_t>(s.topology.pool_domains));
  topo.set("affinity", s.topology.affinity);
  j.set("topology", std::move(topo));
  wire::Json d = wire::Json::object();
  d.set("slots", static_cast<std::uint64_t>(s.dispatch.slots));
  d.set("policy", s.dispatch.policy);
  d.set("running_jobs", static_cast<std::uint64_t>(s.dispatch.running_jobs));
  d.set("depth_interactive",
        static_cast<std::uint64_t>(s.dispatch.depth_interactive));
  d.set("depth_batch", static_cast<std::uint64_t>(s.dispatch.depth_batch));
  d.set("grants_offered", s.dispatch.grants_offered);
  d.set("grants_applied", s.dispatch.grants_applied);
  d.set("grants_revoked", s.dispatch.grants_revoked);
  j.set("dispatch", std::move(d));
  return j;
}

Service::Config Service::Config::from_env() {
  Config c;
  const std::int64_t cap = support::env_int("STS_QUEUE_CAP", 64);
  c.queue_capacity = cap < 1 ? 1 : static_cast<std::size_t>(cap);
  c.cache_bytes = PlanCache::budget_from_env();
  c.threads = static_cast<unsigned>(support::env_int("STS_THREADS", 0));
  const std::int64_t slots = support::env_int("STS_SLOTS", 1);
  c.slots = slots < 1 ? 1u : static_cast<unsigned>(slots);
  c.policy = dispatch::parse_policy(support::env_string("STS_POLICY", "fair"));
  c.journal_path = support::env_string("STS_JOURNAL", "");
  c.ckpt_dir = support::env_string("STS_CKPT_DIR", "");
  const std::int64_t trace_bytes = support::env_int(
      "STS_JOB_TRACE_BYTES", static_cast<std::int64_t>(c.job_trace_bytes));
  c.job_trace_bytes =
      trace_bytes < 0 ? 0 : static_cast<std::size_t>(trace_bytes);
  return c;
}

const support::topo::Machine& Service::machine() const noexcept {
  return config_.machine != nullptr ? *config_.machine
                                    : support::topo::machine();
}

Service::Service(Config config)
    : config_(std::move(config)), cache_(config_.cache_bytes),
      queue_(config_.policy) {
  const support::topo::Machine& m = machine();
  const unsigned want = std::max(1u, config_.slots);
  // Carve once; the table is immutable for the service's lifetime. carve()
  // clamps to the online CPU count — slots beyond that share partitions
  // round-robin (oversubscription), which also disables elastic lending
  // (a lender's CPUs would already be busy).
  partitions_ = dispatch::carve(m, want);
  exclusive_partitions_ = partitions_.size() == want;
  obs::gauge("topology.nodes")
      .observe(static_cast<std::int64_t>(m.node_count()));
  obs::gauge("topology.cpus")
      .observe(static_cast<std::int64_t>(m.cpu_count()));
  obs::gauge("topology.smt_siblings")
      .observe(static_cast<std::int64_t>(m.smt_siblings));
  std::set<int> domains;
  for (const dispatch::Partition& p : partitions_) {
    domains.insert(p.domains.begin(), p.domains.end());
  }
  obs::gauge("topology.pool_domains")
      .observe(static_cast<std::int64_t>(
          support::topo::numa_disabled() ? 1 : domains.size()));
  obs::gauge("dispatch.slots").observe(static_cast<std::int64_t>(want));
  if (!config_.ckpt_dir.empty()) {
    if (::mkdir(config_.ckpt_dir.c_str(), 0755) != 0 && errno != EEXIST) {
      throw support::Error("ckpt dir " + config_.ckpt_dir + ": " +
                           std::strerror(errno));
    }
  }
  obs::set_job_trace_capacity(config_.job_trace_bytes);
  // This service's job-id space starts fresh; slices a previous instance
  // buffered under the same ids must not bleed into our trace exports.
  obs::clear_job_traces();
  // Recovery runs before any slot thread exists: re-admitted jobs are
  // queued (through the same FairQueue, so a recovered interactive job
  // outranks queued batch work), the journal is open for append, and only
  // then does execution start — no replayed record can race a fresh one.
  if (!config_.journal_path.empty()) recover_from_journal();
  for (unsigned i = 0; i < want; ++i) {
    auto slot = std::make_unique<Slot>();
    slot->index = i;
    slot->part = partitions_[i % partitions_.size()];
    slot->part.slot = i;
    slots_.push_back(std::move(slot));
  }
  for (unsigned i = 0; i < want; ++i) {
    slots_[i]->thread = std::thread([this, i] { slot_loop(i); });
  }
}

Service::~Service() { drain(); }

std::string Service::ckpt_path_for(std::uint64_t id) const {
  return config_.ckpt_dir + "/job-" + std::to_string(id) + ".ckpt";
}

void Service::journal_append_locked(const char* event, const Job& job,
                                    wire::Json extra) {
  if (!journal_.is_open()) return;
  try {
    journal_.append(event, job.id, extra);
  } catch (const std::exception& e) {
    // Availability over durability: a dead disk degrades recovery, it does
    // not take running jobs down. The gap is visible in the metrics.
    obs::counter("svc.journal_errors").add();
    obs::instant(std::string("journal: ") + e.what(), "svc");
  }
}

void Service::enqueue_locked(Job& job) {
  job.cls = dispatch::parse_class(job.spec.priority);
  job.weight = std::max(1u, job.spec.weight);
  // Fairness key: everything before the first '/' of the client key, so a
  // client submitting "alice/run-1", "alice/run-2", ... competes as one
  // DRR account. Keyless jobs share the anonymous account.
  job.fair_client = job.spec.client_key.substr(
      0, job.spec.client_key.find('/'));
  if (job.spec.deadline_ms > 0) {
    job.deadline_ns = job.submit_ns + job.spec.deadline_ms * 1'000'000;
  }
  dispatch::Item item;
  item.id = job.id;
  item.cls = job.cls;
  item.weight = job.weight;
  item.client = job.fair_client;
  item.enqueue_ns = job.submit_ns;
  queue_.push(std::move(item));
}

void Service::recover_from_journal() {
  const Journal::Replay replay = Journal::replay(config_.journal_path);
  if (replay.torn_tail) {
    obs::counter("svc.journal_torn_tail").add();
    obs::instant("journal: torn tail truncated at byte " +
                     std::to_string(replay.valid_bytes),
                 "svc");
  }
  journal_.open(config_.journal_path, replay.valid_bytes);

  // Fold the records per job id: the SUBMITTED record carries the spec,
  // the last transition wins as the state.
  struct Folded {
    wire::Json spec;
    JobState state = JobState::kPending;
    std::string error;
    bool have_spec = false;
  };
  std::map<std::uint64_t, Folded> folded; // ordered: re-admit in id order
  for (const JournalRecord& rec : replay.records) {
    Folded& f = folded[rec.id];
    if (rec.event == "SUBMITTED") {
      if (rec.fields.has("spec")) {
        f.spec = rec.fields.get("spec");
        f.have_spec = true;
      }
    } else if (rec.event == "RUNNING") {
      f.state = JobState::kRunning;
    } else if (rec.event == "DONE") {
      f.state = JobState::kDone;
    } else if (rec.event == "FAILED") {
      f.state = JobState::kFailed;
      f.error = rec.fields.string_or("error", "");
    } else if (rec.event == "CANCELLED") {
      f.state = JobState::kCancelled;
      f.error = rec.fields.string_or("error", "");
    }
  }

  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [id, f] : folded) {
    next_id_ = std::max(next_id_, id + 1);
    if (!f.have_spec) {
      // A terminal/RUNNING record whose SUBMITTED prefix was lost (torn
      // head would need truncation from the front; we only truncate tails).
      obs::counter("svc.journal_errors").add();
      continue;
    }
    auto job = std::make_unique<Job>();
    job->id = id;
    try {
      job->spec = RunSpec::from_json(f.spec);
      job->spec.validate();
    } catch (const std::exception&) {
      obs::counter("svc.journal_errors").add();
      continue;
    }
    job->submit_ns = support::now_ns();
    if (!job->spec.client_key.empty()) {
      key_to_id_.emplace(job->spec.client_key, id);
    }
    ++submitted_;
    Job* raw = job.get();
    jobs_.emplace(id, std::move(job));
    if (f.state == JobState::kDone || f.state == JobState::kFailed ||
        f.state == JobState::kCancelled) {
      // Resurrect terminal jobs as queryable history (summary excluded —
      // the journal records transitions, not payloads), without re-writing
      // their terminal records.
      raw->state = f.state;
      raw->error = f.error;
      raw->start_ns = raw->submit_ns;
      raw->end_ns = raw->submit_ns;
      switch (f.state) {
        case JobState::kDone: ++done_; break;
        case JobState::kFailed: ++failed_; break;
        default: ++cancelled_; break;
      }
      continue;
    }
    // Interrupted PENDING/RUNNING job: re-admit with its journaled
    // scheduling identity (priority/weight/client round-trip through the
    // spec JSON). run_job() points it at its last solver checkpoint (if
    // one exists) via job->recovered.
    raw->recovered = true;
    try {
      // Deterministic chaos hook: an armed throw here fails exactly this
      // job's recovery; the daemon and every other replayed job keep going.
      support::fault::check("svc:recover");
    } catch (const std::exception& e) {
      finish_job(*raw, JobState::kFailed,
                 std::string("recovery: ") + e.what());
      continue;
    }
    enqueue_locked(*raw);
    ++recovered_;
    obs::counter("svc.recovered_jobs").add();
  }
  if (recovered_ > 0) {
    obs::instant("journal: re-admitted " + std::to_string(recovered_) +
                     " interrupted job(s)",
                 "svc");
  }
  publish_queue_depth_locked();
}

void Service::publish_queue_depth_locked() const {
  obs::gauge("svc.queue_depth")
      .observe(static_cast<std::int64_t>(queue_.size()));
  obs::gauge("dispatch.depth_interactive")
      .observe(static_cast<std::int64_t>(
          queue_.depth(dispatch::Class::kInteractive)));
  obs::gauge("dispatch.depth_batch")
      .observe(
          static_cast<std::int64_t>(queue_.depth(dispatch::Class::kBatch)));
}

SubmitOutcome Service::submit(RunSpec spec) {
  spec.validate(); // throws on malformed specs before any accounting
  SubmitOutcome out;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!spec.client_key.empty()) {
    // Idempotent resubmission: a retry after a lost reply (or a daemon
    // restart, via the journal-refilled map) finds the original job.
    const auto it = key_to_id_.find(spec.client_key);
    if (it != key_to_id_.end()) {
      obs::counter("svc.jobs_deduped").add();
      out.accepted = true;
      out.id = it->second;
      return out;
    }
  }
  if (draining_ || stop_slots_) {
    ++rejected_;
    obs::counter("svc.jobs_rejected").add();
    out.error = "draining";
    return out;
  }
  if (queue_.size() >= config_.queue_capacity) {
    // Admission control: reject now with a typed error instead of blocking
    // the client behind an unbounded backlog — and tell the client *how*
    // full the lane was, so backoff can be proportional.
    ++rejected_;
    obs::counter("svc.jobs_rejected").add();
    out.error = "queue_full";
    out.queue_depth = queue_.size();
    out.queue_capacity = config_.queue_capacity;
    return out;
  }
  auto job = std::make_unique<Job>();
  job->id = next_id_++;
  job->spec = std::move(spec);
  job->submit_ns = support::now_ns();
  Job* raw = job.get();
  jobs_.emplace(raw->id, std::move(job));
  if (!raw->spec.client_key.empty()) {
    key_to_id_.emplace(raw->spec.client_key, raw->id);
  }
  // The admission record goes to disk before the id is acknowledged: a
  // crash after this point re-admits the job on restart.
  wire::Json extra = wire::Json::object();
  extra.set("spec", raw->spec.to_json());
  journal_append_locked("SUBMITTED", *raw, std::move(extra));
  enqueue_locked(*raw);
  ++submitted_;
  obs::counter("svc.jobs_submitted").add();
  publish_queue_depth_locked();
  // notify_all, not notify_one: a woken slot whose partition is lent out
  // cannot pop, and with notify_one it would be the only thread awake.
  queue_cv_.notify_all();
  out.accepted = true;
  out.id = raw->id;
  return out;
}

JobInfo Service::snapshot_locked(const Job& job) const {
  JobInfo info;
  info.id = job.id;
  info.state = job.state;
  info.spec_describe = job.spec.describe();
  info.error = job.error;
  info.cache_hit = job.cache_hit;
  info.block_size = job.block_size;
  if (job.start_ns > 0) {
    info.queue_seconds =
        static_cast<double>(job.start_ns - job.submit_ns) * 1e-9;
    const std::int64_t end = job.end_ns > 0 ? job.end_ns : support::now_ns();
    info.run_seconds = static_cast<double>(end - job.start_ns) * 1e-9;
  }
  info.summary = job.summary;
  return info;
}

JobInfo Service::status(std::uint64_t id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    throw support::Error("unknown job id " + std::to_string(id));
  }
  return snapshot_locked(*it->second);
}

JobInfo Service::wait(std::uint64_t id, std::chrono::milliseconds deadline,
                      const std::atomic<bool>* abort) const {
  const auto until = std::chrono::steady_clock::now() + deadline;
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    throw support::Error("unknown job id " + std::to_string(id));
  }
  while (!snapshot_locked(*it->second).terminal()) {
    if (abort != nullptr && abort->load(std::memory_order_acquire)) break;
    const auto now = std::chrono::steady_clock::now();
    if (now >= until) break;
    // 100 ms slices so an abort flag (server drain) is observed promptly.
    job_done_cv_.wait_until(
        lock, std::min(until, now + std::chrono::milliseconds(100)));
  }
  return snapshot_locked(*it->second);
}

bool Service::cancel(std::uint64_t id, const std::string& reason) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    throw support::Error("unknown job id " + std::to_string(id));
  }
  Job& job = *it->second;
  switch (job.state) {
    case JobState::kPending: {
      job.token.request(reason);
      queue_.remove(job.id);
      publish_queue_depth_locked();
      finish_job(job, JobState::kCancelled, reason);
      return true;
    }
    case JobState::kRunning: {
      job.token.request(reason);
      if (job.active_pool != nullptr) {
        // PR 1's cancellation path: latch an error in the job's pool so
        // queued task bodies are skipped and the blocked driver unwinds
        // now instead of at its next iteration boundary. The pool is
        // per-job, so the latched error cannot leak into another solve.
        job.active_pool->report_task_error(
            std::make_exception_ptr(support::Cancelled(reason)));
      }
      return true;
    }
    case JobState::kDone:
    case JobState::kFailed:
    case JobState::kCancelled: return false;
  }
  return false;
}

void Service::finish_job(Job& job, JobState state, const std::string& error) {
  // Caller holds mutex_.
  job.state = state;
  job.error = error;
  job.end_ns = support::now_ns();
  switch (state) {
    case JobState::kDone: ++done_; break;
    case JobState::kFailed: ++failed_; break;
    case JobState::kCancelled: ++cancelled_; break;
    default: break;
  }
  wire::Json extra = wire::Json::object();
  if (!error.empty()) extra.set("error", error);
  journal_append_locked(to_string(state), job, std::move(extra));
  if (!config_.ckpt_dir.empty()) {
    // A terminal job's checkpoint is dead weight (and would poison a future
    // job that reuses the id after a journal wipe): drop it.
    ::unlink(ckpt_path_for(job.id).c_str());
  }
  obs::histogram("svc.job_ns").observe(job.end_ns - job.submit_ns);
  if (job.start_ns > 0) {
    obs::histogram(job.cls == dispatch::Class::kInteractive
                       ? "dispatch.interactive_run_ns"
                       : "dispatch.batch_run_ns")
        .observe(job.end_ns - job.start_ns);
  }
  obs::instant("svc.job[" + std::to_string(job.id) + "] " + to_string(state),
               "svc");
  job_done_cv_.notify_all();
}

void Service::offer_grant_locked(unsigned si) {
  if (!exclusive_partitions_) return; // lender CPUs would already be busy
  Slot& lender = *slots_[si];
  if (lender.lent_to != nullptr) return;
  for (const auto& s : slots_) {
    Job* job = s->running;
    if (job == nullptr || !job->growable || job->active_pool == nullptr) {
      continue;
    }
    if (job->pending_from_slot >= 0) continue; // one offer in flight per job
    if (job->active_pool->thread_count() >=
        job->active_pool->max_thread_count()) {
      continue; // no elastic headroom left
    }
    job->pending_cpus = lender.part.cpus;
    job->pending_from_slot = static_cast<int>(si);
    lender.lent_to = job;
    lender.lent_applied = false;
    ++grants_offered_;
    obs::counter("dispatch.grants_offered").add();
    return;
  }
}

void Service::apply_grant(Job& job) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (job.pending_from_slot < 0) return; // no offer (or already revoked)
  const unsigned lender = static_cast<unsigned>(job.pending_from_slot);
  std::vector<int> cpus = std::move(job.pending_cpus);
  job.pending_cpus.clear();
  job.pending_from_slot = -1;
  const auto restore = [&] {
    Slot& slot = *slots_[lender];
    if (slot.lent_to == &job) {
      slot.lent_to = nullptr;
      slot.lent_applied = false;
    }
    ++grants_revoked_;
    obs::counter("dispatch.grants_revoked").add();
    queue_cv_.notify_all();
  };
  try {
    // Chaos hook: an armed throw here kills the job mid-resize. The lender
    // is restored before the throw propagates (through the solver's
    // iteration boundary, like a cancellation), so the partition is free
    // for the next queued job — what resilience_test asserts.
    support::fault::check("svc:grant");
  } catch (...) {
    restore();
    throw;
  }
  if (job.active_pool == nullptr) {
    restore();
    return;
  }
  const unsigned added = job.active_pool->expand(cpus);
  if (added == 0) { // quota/headroom raced to zero
    restore();
    return;
  }
  Slot& slot = *slots_[lender];
  slot.lent_applied = true;
  job.borrowed_slots.push_back(lender);
  job.granted_cpus.insert(
      job.granted_cpus.end(), cpus.begin(),
      cpus.begin() + std::min<std::size_t>(added, cpus.size()));
  ++grants_applied_;
  obs::counter("dispatch.grants_applied").add();
  obs::instant("dispatch: job " + std::to_string(job.id) + " grew by " +
                   std::to_string(added) + " worker(s) from slot " +
                   std::to_string(lender),
               "svc");
  // The borrower can take another lender now that this offer is consumed;
  // wake parked idle slots so one of them re-offers.
  queue_cv_.notify_all();
}

void Service::reclaim_grants_locked(Job& job) {
  if (job.pending_from_slot >= 0) {
    Slot& slot = *slots_[static_cast<unsigned>(job.pending_from_slot)];
    if (slot.lent_to == &job) {
      slot.lent_to = nullptr;
      slot.lent_applied = false;
    }
    job.pending_from_slot = -1;
    job.pending_cpus.clear();
    ++grants_revoked_;
    obs::counter("dispatch.grants_revoked").add();
  }
  for (const unsigned si : job.borrowed_slots) {
    Slot& slot = *slots_[si];
    if (slot.lent_to == &job) {
      slot.lent_to = nullptr;
      slot.lent_applied = false;
    }
  }
  job.borrowed_slots.clear();
  job.granted_cpus.clear();
  job.growable = false;
  queue_cv_.notify_all(); // freed lenders can pick up queued work
}

void Service::slot_loop(unsigned si) {
  Slot& slot = *slots_[si];
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    while (true) {
      if (stop_slots_ && queue_.empty()) return;
      // A slot whose partition is inside a borrower's pool cannot run a
      // job until the borrower finishes and reclaim_grants_locked frees it.
      if (!queue_.empty() && !slot.lent_applied) break;
      if (queue_.empty() && !stop_slots_ && !draining_ &&
          slot.lent_to == nullptr) {
        offer_grant_locked(si);
      }
      queue_cv_.wait(lock);
    }
    if (slot.lent_to != nullptr && !slot.lent_applied) {
      // Work arrived before the borrower's next iteration boundary:
      // withdraw the unapplied offer and run the job ourselves.
      Job& borrower = *slot.lent_to;
      borrower.pending_cpus.clear();
      borrower.pending_from_slot = -1;
      slot.lent_to = nullptr;
      ++grants_revoked_;
      obs::counter("dispatch.grants_revoked").add();
    }
    dispatch::Item item;
    if (!queue_.pop(&item)) continue;
    publish_queue_depth_locked();
    Job* job = jobs_.at(item.id).get();
    if (job->token.requested()) { // cancelled while queued
      finish_job(*job, JobState::kCancelled, job->token.reason());
      continue;
    }
    if (job->deadline_ns > 0 && support::now_ns() >= job->deadline_ns) {
      // The deadline elapsed in the queue: never start, never burn a slot.
      job->token.request("deadline");
      finish_job(*job, JobState::kCancelled, "deadline");
      continue;
    }
    job->state = JobState::kRunning;
    job->start_ns = support::now_ns();
    job->slot = static_cast<int>(si);
    slot.running = job;
    ++running_count_;
    obs::gauge("dispatch.running_jobs")
        .observe(static_cast<std::int64_t>(running_count_));
    obs::histogram(job->cls == dispatch::Class::kInteractive
                       ? "dispatch.interactive_wait_ns"
                       : "dispatch.batch_wait_ns")
        .observe(job->start_ns - job->submit_ns);
    journal_append_locked("RUNNING", *job);
    lock.unlock();

    // Per-job trace window. The trace ring has one process-global capture
    // window; with K slots the slots contend for it and a loser simply
    // runs untraced (first-come, first-traced).
    const std::string trace_id = job->spec.trace_id.empty()
                                     ? "job-" + std::to_string(job->id)
                                     : job->spec.trace_id;
    const bool traced =
        !trace_busy_.exchange(true, std::memory_order_acq_rel);
    if (traced) obs::begin_job_trace(job->id, trace_id);
    run_job(*job, si);
    // Root span last so stray worker spans from the teardown are inside
    // the window; rendered under this slot's lane.
    obs::span("job[" + std::to_string(job->id) + "]", "svc", job->start_ns,
              support::now_ns(),
              "{\"trace_id\":\"" + support::json_escape(trace_id) +
                  "\",\"spec\":\"" +
                  support::json_escape(job->spec.describe()) + "\"}");
    if (traced) {
      obs::end_job_trace();
      trace_busy_.store(false, std::memory_order_release);
    }

    lock.lock();
    slot.running = nullptr;
    --running_count_;
    obs::gauge("dispatch.running_jobs")
        .observe(static_cast<std::int64_t>(running_count_));
    job->slot = -1;
  }
}

void Service::run_job(Job& job, unsigned si) {
  std::unique_ptr<flux::Scheduler> pool;
  JobState terminal_state = JobState::kFailed;
  std::string terminal_error;
  try {
    // Deterministic fault site: one armed throw here fails exactly this
    // job; the daemon and every later job keep going.
    support::fault::check("svc:job");
    job.token.throw_if_requested();

    // Worker budget: the slot's partition, clipped by the job's
    // --max-workers quota and any explicit thread request.
    const dispatch::Partition& part = slots_[si]->part;
    std::vector<int> cpus = part.cpus;
    if (job.spec.max_workers != 0 && cpus.size() > job.spec.max_workers) {
      cpus.resize(job.spec.max_workers);
    }
    unsigned threads =
        job.spec.threads != 0
            ? job.spec.threads
            : (config_.threads != 0 ? config_.threads
                                    : static_cast<unsigned>(cpus.size()));
    if (job.spec.max_workers != 0) {
      threads = std::min(threads, job.spec.max_workers);
    }
    threads = std::max(threads, 1u);
    if (threads < cpus.size()) cpus.resize(threads);

    const bool is_flux = job.spec.version == solver::Version::kFlux;
    bool growable = false;
    if (is_flux) {
      // Elastic growth wants: no explicit thread pin (the job asked for
      // "the partition", so more partition is welcome), exclusive
      // partitions (a lender's CPUs are genuinely idle), and a machine
      // with more than one slot to lend.
      unsigned cap = threads;
      if (job.spec.threads == 0 && config_.threads == 0 &&
          exclusive_partitions_ && slots_.size() > 1) {
        unsigned limit = machine().cpu_count();
        if (job.spec.max_workers != 0) {
          limit = std::min(limit, job.spec.max_workers);
        }
        cap = std::max(threads, limit);
      }
      growable = cap > threads;
      flux::Scheduler::Config pcfg =
          flux::Scheduler::Config::for_partition(cpus, &machine(), cap);
      pcfg.threads = threads; // explicit --threads may oversubscribe cpus
      pool = std::make_unique<flux::Scheduler>(pcfg);
      const std::lock_guard<std::mutex> lock(mutex_);
      job.active_pool = pool.get();
      job.growable = growable;
      job.granted_cpus = cpus;
      // Parked idle slots re-evaluate their offer logic on wakeup; without
      // this nudge a slot that went idle before we became growable would
      // never lend.
      if (growable) queue_cv_.notify_all();
    }

    bool hit = false;
    flux::Scheduler* pool_ptr = pool.get();
    const std::shared_ptr<const Plan> plan = cache_.get_or_build(
        job.spec.source_key(), job.spec.block_directive(),
        [&job, pool_ptr] { return build_plan(job.spec, pool_ptr); }, &hit);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      job.cache_hit = hit;
      job.block_size = plan->block_size;
    }

    // Memory quota: enforced against the plan's resident footprint, after
    // the (possibly cached) plan exists but before any solve work starts.
    if (job.spec.max_mem_bytes != 0 && plan->bytes > job.spec.max_mem_bytes) {
      throw support::Error(
          "quota: plan footprint " + std::to_string(plan->bytes) +
          " bytes exceeds max_mem_bytes " +
          std::to_string(job.spec.max_mem_bytes));
    }

    // Wall-clock guards, sharing the cancel token with the client's cancel
    // op: --timeout bounds the run, --deadline-ms bounds submit->terminal.
    // One watchdog, armed with whichever budget expires first.
    std::int64_t limit_ms = 0;
    std::string limit_reason;
    if (job.spec.timeout_sec > 0.0) {
      limit_ms = static_cast<std::int64_t>(job.spec.timeout_sec * 1e3);
      limit_reason = "timeout";
    }
    if (job.deadline_ns > 0) {
      std::int64_t rem_ms = (job.deadline_ns - support::now_ns()) / 1'000'000;
      if (rem_ms < 1) rem_ms = 1;
      if (limit_ms == 0 || rem_ms < limit_ms) {
        limit_ms = rem_ms;
        limit_reason = "deadline";
      }
    }
    std::optional<support::Deadline> guard;
    if (limit_ms > 0) {
      std::function<void()> nudge;
      if (is_flux) {
        flux::Scheduler* p = pool.get();
        const std::string reason = limit_reason;
        nudge = [p, reason] {
          p->report_task_error(
              std::make_exception_ptr(support::Cancelled(reason)));
        };
      }
      guard.emplace(job.token, std::chrono::milliseconds(limit_ms),
                    limit_reason, std::move(nudge));
    }

    // Crash resilience: with a checkpoint dir configured, the solver
    // checkpoints to a per-job file; a journal-recovered job resumes from
    // that file when it is intact and matches the spec, and falls back to a
    // cold restart (counted) when it is missing or stale.
    std::string ckpt_path;
    std::optional<solver::ckpt::Checkpoint> restored;
    if (!config_.ckpt_dir.empty()) {
      ckpt_path = ckpt_path_for(job.id);
      if (job.recovered) {
        try {
          solver::ckpt::Checkpoint c = solver::ckpt::load(ckpt_path);
          const solver::ckpt::Kind want =
              job.spec.solver == SolverKind::kLanczos
                  ? solver::ckpt::Kind::kLanczos
                  : job.spec.solver == SolverKind::kCg
                        ? solver::ckpt::Kind::kCg
                        : solver::ckpt::Kind::kLobpcg;
          if (c.kind == want) {
            restored = std::move(c);
          }
        } catch (const std::exception&) {
          // No checkpoint (job never reached one) or a corrupt/stale file:
          // solve from iteration 0. load() already counted CRC failures.
        }
        if (!restored) obs::counter("svc.recover_cold_restarts").add();
      }
    }

    wire::Json summary = wire::Json::object();
    solver::SolverStatus status = solver::SolverStatus::kOk;
    if (job.spec.solver == SolverKind::kLanczos) {
      solver::SolverOptions options =
          job.spec.solver_options(plan->block_size);
      options.threads = threads;
      options.numa_domains = std::min(options.numa_domains, threads);
      options.cancel = &job.token;
      options.ckpt_path = ckpt_path;
      if (restored) options.restore = &*restored;
      if (is_flux) {
        options.flux_pool = pool.get();
        // The slot pool's domain layout wins over whatever the spec's
        // thread count would have derived (acquire_flux_pool validates the
        // two agree).
        options.numa_domains = pool->domain_count();
        if (growable) {
          options.resize_poll = [this, &job] { apply_grant(job); };
        }
      }
      const auto r = solver::lanczos(*plan->csr, *plan->csb,
                                     job.spec.iterations, job.spec.version,
                                     options);
      status = r.status;
      summary.set("iterations", r.timing.iterations);
      summary.set("seconds", r.timing.total_seconds);
      wire::Json ritz = wire::Json::array();
      if (!r.ritz_values.empty()) {
        ritz.push(r.ritz_values.front());
        ritz.push(r.ritz_values.back());
      }
      summary.set("ritz_extremes", std::move(ritz));
    } else if (job.spec.solver == SolverKind::kCg) {
      solver::SolverOptions options =
          job.spec.solver_options(plan->block_size);
      options.threads = threads;
      options.numa_domains = std::min(options.numa_domains, threads);
      options.cancel = &job.token;
      options.ckpt_path = ckpt_path;
      if (restored) options.restore = &*restored;
      if (is_flux) {
        options.flux_pool = pool.get();
        options.numa_domains = pool->domain_count();
        if (growable) {
          options.resize_poll = [this, &job] { apply_grant(job); };
        }
      }
      const auto r = solver::cg(*plan->csr, *plan->csb, job.spec.version,
                                job.spec.cg_options(), options);
      status = r.status;
      summary.set("iterations", r.timing.iterations);
      summary.set("seconds", r.timing.total_seconds);
      summary.set("converged", r.converged);
      summary.set("relative_residual", r.relative_residual);
      summary.set("precond", solver::to_string(job.spec.precond));
      if (r.precond_shift != 0.0) {
        summary.set("precond_shift", r.precond_shift);
      }
      if (r.level_span != 0) {
        summary.set("sptrsv_level_span",
                    static_cast<std::int64_t>(r.level_span));
      }
    } else {
      solver::LobpcgOptions options =
          job.spec.lobpcg_options(plan->block_size);
      options.threads = threads;
      options.numa_domains = std::min(options.numa_domains, threads);
      options.cancel = &job.token;
      options.ckpt_path = ckpt_path;
      if (restored) options.restore = &*restored;
      if (is_flux) {
        options.flux_pool = pool.get();
        options.numa_domains = pool->domain_count();
        if (growable) {
          options.resize_poll = [this, &job] { apply_grant(job); };
        }
      }
      const auto r = solver::lobpcg(*plan->csr, *plan->csb,
                                    job.spec.iterations, job.spec.version,
                                    options);
      status = r.status;
      summary.set("iterations", r.timing.iterations);
      summary.set("seconds", r.timing.total_seconds);
      summary.set("converged", r.converged);
      wire::Json eigs = wire::Json::array();
      for (const double ev : r.eigenvalues) eigs.push(ev);
      summary.set("eigenvalues", std::move(eigs));
    }

    if (is_flux && pool) {
      // Per-job execution evidence for `stsctl status`/the e2e tests: a
      // job confined to a single-domain partition must show
      // steals_remote == 0.
      const flux::Scheduler::Stats fs = pool->stats();
      wire::Json fj = wire::Json::object();
      fj.set("workers", static_cast<std::uint64_t>(pool->thread_count()));
      fj.set("domains", static_cast<std::uint64_t>(pool->domain_count()));
      fj.set("executed", fs.executed);
      fj.set("steals", fs.steals);
      fj.set("steals_sibling", fs.steals_sibling);
      fj.set("steals_local", fs.steals_local);
      fj.set("steals_remote", fs.steals_remote);
      summary.set("flux", std::move(fj));
    }

    {
      const std::lock_guard<std::mutex> lock(mutex_);
      job.summary = std::move(summary);
    }
    if (status == solver::SolverStatus::kOk) {
      terminal_state = JobState::kDone;
    } else {
      // Breakdown guards: numerically unsound runs are FAILED jobs with the
      // solver's own status naming the cause; the truncated summary stays
      // attached for post-mortems.
      terminal_state = JobState::kFailed;
      terminal_error = std::string("solver: ") + solver::to_string(status);
    }
  } catch (const support::Cancelled& e) {
    terminal_state = JobState::kCancelled;
    terminal_error = e.reason();
  } catch (const std::exception& e) {
    // TaskError, fault::Injected, quota breach, bad input, OOM — the job
    // is FAILED, the daemon lives on.
    terminal_state = JobState::kFailed;
    terminal_error = e.what();
  }
  // Teardown order matters: unpublish the pool (so a late cancel() cannot
  // poke freed memory), destroy it (its workers release their CPUs), hand
  // borrowed partitions back to their lender slots — a re-granted lender
  // must never overlap a dying pool's workers — and only then publish the
  // terminal state. Waiters woken by finish_job must find the job's
  // resources already reclaimed, not racing a dying pool.
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job.active_pool = nullptr;
  }
  pool.reset();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    reclaim_grants_locked(job);
    finish_job(job, terminal_state, terminal_error);
  }
}

ServiceStats Service::stats() const {
  ServiceStats s;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    s.queue_depth = queue_.size();
    s.queue_capacity = config_.queue_capacity;
    s.submitted = submitted_;
    s.rejected = rejected_;
    s.done = done_;
    s.failed = failed_;
    s.cancelled = cancelled_;
    s.recovered = recovered_;
    s.running_job = running_count_ > 0;
    s.dispatch.slots = static_cast<unsigned>(slots_.size());
    s.dispatch.policy = dispatch::to_string(queue_.policy());
    s.dispatch.running_jobs = running_count_;
    s.dispatch.depth_interactive =
        queue_.depth(dispatch::Class::kInteractive);
    s.dispatch.depth_batch = queue_.depth(dispatch::Class::kBatch);
    s.dispatch.grants_offered = grants_offered_;
    s.dispatch.grants_applied = grants_applied_;
    s.dispatch.grants_revoked = grants_revoked_;
  }
  s.cache = cache_.stats();
  // One coherent snapshot for all three quantiles (and it is one ring flip,
  // not three).
  const obs::Histogram::Snapshot h = obs::histogram("svc.job_ns").snapshot();
  s.job_p50_ms = h.quantile(0.50) * 1e-6;
  s.job_p95_ms = h.quantile(0.95) * 1e-6;
  s.job_p99_ms = h.quantile(0.99) * 1e-6;
  const support::topo::Machine& m = machine();
  s.topology.nodes = m.node_count();
  s.topology.cpus = m.cpu_count();
  s.topology.smt = m.smt_siblings;
  s.topology.from_sysfs = m.from_sysfs;
  // The partitions jointly cover the machine: report the aggregate worker
  // capacity and domain coverage across all slots.
  unsigned total_cpus = 0;
  std::set<int> domains;
  for (const dispatch::Partition& p : partitions_) {
    total_cpus += static_cast<unsigned>(p.cpus.size());
    domains.insert(p.domains.begin(), p.domains.end());
  }
  s.topology.pool_threads = std::max(1u, total_cpus);
  s.topology.pool_domains =
      support::topo::numa_disabled()
          ? 1u
          : std::max<unsigned>(1u, static_cast<unsigned>(domains.size()));
  s.topology.affinity = flux::to_string(partition_affinity());
  return s;
}

wire::Json Service::queue_snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  wire::Json j = wire::Json::object();
  j.set("policy", dispatch::to_string(queue_.policy()));
  j.set("slots", static_cast<std::uint64_t>(slots_.size()));
  wire::Json parts = wire::Json::array();
  for (const auto& s : slots_) {
    wire::Json p = wire::Json::object();
    p.set("slot", static_cast<std::uint64_t>(s->index));
    p.set("cpus", s->part.cpulist());
    wire::Json doms = wire::Json::array();
    for (const int d : s->part.domains) {
      doms.push(static_cast<std::int64_t>(d));
    }
    p.set("domains", std::move(doms));
    if (s->running != nullptr) {
      p.set("job", static_cast<std::uint64_t>(s->running->id));
    }
    if (s->lent_to != nullptr) {
      p.set("lent_to", static_cast<std::uint64_t>(s->lent_to->id));
      p.set("lent_applied", s->lent_applied);
    }
    parts.push(std::move(p));
  }
  j.set("partitions", std::move(parts));
  wire::Json running = wire::Json::array();
  for (const auto& s : slots_) {
    const Job* job = s->running;
    if (job == nullptr) continue;
    wire::Json r = wire::Json::object();
    r.set("id", static_cast<std::uint64_t>(job->id));
    r.set("class", dispatch::to_string(job->cls));
    r.set("weight", static_cast<std::uint64_t>(job->weight));
    if (!job->fair_client.empty()) r.set("client", job->fair_client);
    r.set("slot", static_cast<std::int64_t>(job->slot));
    if (!job->granted_cpus.empty()) {
      r.set("cpus", cpulist_of(job->granted_cpus));
      r.set("workers", static_cast<std::uint64_t>(job->granted_cpus.size()));
    }
    running.push(std::move(r));
  }
  j.set("running", std::move(running));
  wire::Json pending = wire::Json::array();
  const std::int64_t now = support::now_ns();
  for (const dispatch::Item& it : queue_.snapshot()) {
    wire::Json p = wire::Json::object();
    p.set("id", static_cast<std::uint64_t>(it.id));
    p.set("class", dispatch::to_string(it.cls));
    p.set("weight", static_cast<std::uint64_t>(it.weight));
    if (!it.client.empty()) p.set("client", it.client);
    p.set("waiting_seconds",
          static_cast<double>(now - it.enqueue_ns) * 1e-9);
    pending.push(std::move(p));
  }
  j.set("pending", std::move(pending));
  return j;
}

void Service::drain() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stop_slots_) return; // already drained
    draining_ = true;
    // Pending jobs are cancelled, not silently dropped: each gets a
    // terminal state a waiting client can observe.
    dispatch::Item item;
    while (queue_.pop(&item)) {
      Job& job = *jobs_.at(item.id);
      job.token.request("drained");
      finish_job(job, JobState::kCancelled, "drained");
    }
    publish_queue_depth_locked();
    stop_slots_ = true;
    queue_cv_.notify_all();
  }
  for (const auto& s : slots_) {
    if (s->thread.joinable()) s->thread.join();
  }
}

void Service::request_shutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  shutdown_cv_.notify_all();
}

bool Service::shutdown_requested() const noexcept {
  return shutdown_requested_.load(std::memory_order_acquire);
}

void Service::wait_shutdown() const {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested(); });
}

} // namespace sts::svc
