#include "svc/run_spec.hpp"

#include <cstdio>
#include <cstdlib>
#include <thread>

#include "sim/machine.hpp"
#include "sparse/mm_io.hpp"
#include "sparse/suite.hpp"
#include "support/error.hpp"
#include "support/topology.hpp"
#include "tuning/block_select.hpp"
#include "tuning/sweep.hpp"

namespace sts::svc {

const char* to_string(SolverKind s) {
  switch (s) {
    case SolverKind::kLanczos: return "lanczos";
    case SolverKind::kLobpcg: return "lobpcg";
    case SolverKind::kCg: return "cg";
  }
  return "?";
}

SolverKind parse_solver(const std::string& name) {
  if (name == "lanczos") return SolverKind::kLanczos;
  if (name == "lobpcg") return SolverKind::kLobpcg;
  if (name == "cg") return SolverKind::kCg;
  throw support::Error("unknown solver: " + name +
                       " (expected lanczos|lobpcg|cg)");
}

solver::Precond parse_precond(const std::string& name) {
  if (name == "none") return solver::Precond::kNone;
  if (name == "jacobi") return solver::Precond::kJacobi;
  if (name == "ic0") return solver::Precond::kIc0;
  throw support::Error("unknown preconditioner: " + name +
                       " (expected none|jacobi|ic0)");
}

solver::Version parse_version(const std::string& name) {
  if (name == "libcsr") return solver::Version::kLibCsr;
  if (name == "libcsb") return solver::Version::kLibCsb;
  if (name == "ds" || name == "deepsparse") return solver::Version::kDs;
  if (name == "flux" || name == "hpx") return solver::Version::kFlux;
  if (name == "rgt" || name == "regent") return solver::Version::kRgt;
  throw support::Error("unknown version: " + name);
}

namespace {

/// Short stable spelling for keys and wire payloads (to_string() yields
/// display names like "hpx-flux" that parse_version does not accept).
const char* version_token(solver::Version v) {
  switch (v) {
    case solver::Version::kLibCsr: return "libcsr";
    case solver::Version::kLibCsb: return "libcsb";
    case solver::Version::kDs: return "ds";
    case solver::Version::kFlux: return "flux";
    case solver::Version::kRgt: return "rgt";
  }
  return "?";
}

} // namespace

bool RunSpec::consume_arg(const std::string& arg,
                          const std::function<std::string()>& next) {
  if (arg == "--matrix") {
    matrix_path = next();
  } else if (arg == "--suite") {
    suite_name = next();
  } else if (arg == "--scale") {
    scale = std::atof(next().c_str());
  } else if (arg == "--solver") {
    solver = parse_solver(next());
  } else if (arg == "--version") {
    version = parse_version(next());
  } else if (arg == "--iterations" || arg == "--maxit") {
    iterations = std::atoi(next().c_str());
  } else if (arg == "--nev") {
    nev = std::atoll(next().c_str());
  } else if (arg == "--tolerance" || arg == "--tol") {
    tolerance = std::atof(next().c_str());
  } else if (arg == "--precond") {
    precond = parse_precond(next());
  } else if (arg == "--block") {
    block = std::atoll(next().c_str());
  } else if (arg == "--autotune") {
    autotune = true;
  } else if (arg == "--threads") {
    threads = static_cast<unsigned>(std::atoi(next().c_str()));
  } else if (arg == "--timeout") {
    timeout_sec = std::atof(next().c_str());
  } else if (arg == "--key") {
    client_key = next();
  } else if (arg == "--trace-id") {
    trace_id = next();
  } else if (arg == "--priority") {
    priority = next();
  } else if (arg == "--weight") {
    weight = static_cast<unsigned>(std::atoi(next().c_str()));
  } else if (arg == "--max-workers") {
    max_workers = static_cast<unsigned>(std::atoi(next().c_str()));
  } else if (arg == "--max-mem-bytes") {
    max_mem_bytes = static_cast<std::uint64_t>(std::atoll(next().c_str()));
  } else if (arg == "--deadline-ms") {
    deadline_ms = std::atoll(next().c_str());
  } else {
    return false;
  }
  return true;
}

void RunSpec::validate() const {
  if (matrix_path.empty() && suite_name.empty()) {
    throw support::Error("run spec: no matrix source (--matrix or --suite)");
  }
  if (!(scale > 0.0)) {
    throw support::Error("run spec: scale must be positive");
  }
  if (iterations < 1) {
    throw support::Error("run spec: iterations must be >= 1, got " +
                         std::to_string(iterations));
  }
  if (nev < 1) {
    throw support::Error("run spec: nev must be >= 1");
  }
  if (!(tolerance > 0.0)) {
    throw support::Error("run spec: tolerance must be positive");
  }
  if (block < 0) {
    throw support::Error("run spec: block must be >= 0");
  }
  if (precond != solver::Precond::kNone && solver != SolverKind::kCg) {
    throw support::Error(
        std::string("run spec: --precond=") + solver::to_string(precond) +
        " requires --solver=cg");
  }
  if (solver == SolverKind::kCg && (version == solver::Version::kDs ||
                                    version == solver::Version::kRgt)) {
    throw support::Error(std::string("run spec: cg does not support version ") +
                         solver::to_string(version) +
                         " (expected libcsr|libcsb|flux)");
  }
  if (block != 0 && autotune) {
    throw support::Error("run spec: --block and --autotune are exclusive");
  }
  if (timeout_sec < 0.0) {
    throw support::Error("run spec: timeout must be >= 0");
  }
  if (priority != "interactive" && priority != "batch") {
    throw support::Error("run spec: priority must be interactive|batch, got " +
                         priority);
  }
  if (weight < 1 || weight > 1024) {
    throw support::Error("run spec: weight must be in [1, 1024], got " +
                         std::to_string(weight));
  }
  if (deadline_ms < 0) {
    throw support::Error("run spec: deadline-ms must be >= 0");
  }
}

wire::Json RunSpec::to_json() const {
  wire::Json j = wire::Json::object();
  if (!matrix_path.empty()) j.set("matrix", matrix_path);
  if (!suite_name.empty()) j.set("suite", suite_name);
  j.set("scale", scale);
  j.set("solver", to_string(solver));
  j.set("version", version_token(version));
  j.set("iterations", iterations);
  j.set("nev", static_cast<std::int64_t>(nev));
  j.set("tolerance", tolerance);
  if (precond != solver::Precond::kNone) {
    j.set("precond", solver::to_string(precond));
  }
  if (block != 0) j.set("block", static_cast<std::int64_t>(block));
  if (autotune) j.set("autotune", true);
  if (threads != 0) j.set("threads", static_cast<std::int64_t>(threads));
  if (timeout_sec > 0.0) j.set("timeout_sec", timeout_sec);
  if (!client_key.empty()) j.set("key", client_key);
  if (!trace_id.empty()) j.set("trace_id", trace_id);
  if (priority != "batch") j.set("priority", priority);
  if (weight != 1) j.set("weight", static_cast<std::int64_t>(weight));
  if (max_workers != 0) {
    j.set("max_workers", static_cast<std::int64_t>(max_workers));
  }
  if (max_mem_bytes != 0) j.set("max_mem_bytes", max_mem_bytes);
  if (deadline_ms != 0) j.set("deadline_ms", deadline_ms);
  return j;
}

RunSpec RunSpec::from_json(const wire::Json& j) {
  RunSpec s;
  s.matrix_path = j.string_or("matrix", "");
  s.suite_name = j.string_or("suite", "");
  s.scale = j.number_or("scale", s.scale);
  s.solver = parse_solver(j.string_or("solver", "lobpcg"));
  s.version = parse_version(j.string_or("version", "flux"));
  s.iterations = static_cast<int>(j.int_or("iterations", s.iterations));
  s.nev = j.int_or("nev", s.nev);
  s.tolerance = j.number_or("tolerance", s.tolerance);
  s.precond = parse_precond(j.string_or("precond", "none"));
  s.block = j.int_or("block", 0);
  s.autotune = j.bool_or("autotune", false);
  s.threads = static_cast<unsigned>(j.int_or("threads", 0));
  s.timeout_sec = j.number_or("timeout_sec", 0.0);
  s.client_key = j.string_or("key", "");
  s.trace_id = j.string_or("trace_id", "");
  s.priority = j.string_or("priority", "batch");
  s.weight = static_cast<unsigned>(j.int_or("weight", 1));
  s.max_workers = static_cast<unsigned>(j.int_or("max_workers", 0));
  s.max_mem_bytes = static_cast<std::uint64_t>(j.int_or("max_mem_bytes", 0));
  s.deadline_ms = j.int_or("deadline_ms", 0);
  return s;
}

std::string RunSpec::source_key() const {
  if (!matrix_path.empty()) return "file:" + matrix_path;
  char buf[32];
  std::snprintf(buf, sizeof buf, "@%g", scale);
  return "suite:" + suite_name + buf;
}

std::string RunSpec::block_directive() const {
  if (block != 0) return "b" + std::to_string(block);
  if (autotune) {
    return std::string("tune:") + to_string(solver) + ":" +
           version_token(version) + ":nev" + std::to_string(nev);
  }
  return std::string("heur:") + version_token(version) + ":t" +
         std::to_string(resolved_threads());
}

unsigned RunSpec::resolved_threads() const {
  if (threads != 0) return threads;
  return std::max(1u, std::thread::hardware_concurrency());
}

sparse::Coo RunSpec::load() const {
  if (!matrix_path.empty()) {
    sparse::Coo coo = sparse::read_matrix_market_file(matrix_path);
    if (!coo.is_symmetric(1e-12)) coo.symmetrize_lower();
    return coo;
  }
  return sparse::suite_entry(suite_name).make(scale);
}

RunSpec::BlockChoice RunSpec::resolve_block(const sparse::Csr& csr) const {
  BlockChoice choice;
  if (block != 0) {
    choice.block = block;
    return choice;
  }
  if (autotune) {
    // CG sweeps with the Lanczos cost model: both are single-vector
    // iterations dominated by one SpMV, which is what the simulator prices.
    const auto sweep = tune::sweep_block_sizes_simulated(
        csr,
        solver == SolverKind::kLobpcg ? tune::SweepSolver::kLobpcg
                                      : tune::SweepSolver::kLanczos,
        version, sim::MachineModel::host(), /*full_sweep=*/false, nev);
    choice.block = sweep.best_block_size();
    for (const auto& p : sweep.points) {
      choice.sweep.emplace_back(p.block_count, p.simulated_seconds);
    }
    return choice;
  }
  choice.block =
      tune::recommended_block_size(version, resolved_threads(), csr.rows());
  choice.heuristic = true;
  return choice;
}

solver::SolverOptions RunSpec::solver_options(la::index_t blk) const {
  solver::SolverOptions o;
  o.block_size = blk;
  o.threads = resolved_threads();
  // Detected NUMA domains (1 under STS_NUMA=off). The service overrides
  // this with the shared pool's domain count for kFlux jobs; private-pool
  // runs derive the same answer from the same topology.
  o.numa_domains = support::topo::effective_domains(o.threads);
  return o;
}

solver::LobpcgOptions RunSpec::lobpcg_options(la::index_t blk) const {
  solver::LobpcgOptions o;
  o.block_size = blk;
  o.threads = resolved_threads();
  o.numa_domains = support::topo::effective_domains(o.threads);
  o.nev = nev;
  o.tolerance = tolerance;
  return o;
}

solver::CgOptions RunSpec::cg_options() const {
  solver::CgOptions o;
  o.precond = precond;
  o.tol = tolerance;
  o.max_iterations = iterations;
  return o;
}

std::string RunSpec::describe() const {
  return std::string(to_string(solver)) + "/" + solver::to_string(version) +
         " " + source_key();
}

} // namespace sts::svc
