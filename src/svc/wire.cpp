#include "svc/wire.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace sts::svc::wire {

namespace {

[[noreturn]] void type_error(const char* want, Json::Type got) {
  static const char* names[] = {"null", "bool", "number", "string",
                                "array", "object"};
  throw WireError(std::string("json: expected ") + want + ", got " +
                  names[static_cast<int>(got)]);
}

} // namespace

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return num_;
}

std::int64_t Json::as_int() const {
  return static_cast<std::int64_t>(as_number());
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return str_;
}

const std::vector<Json>& Json::items() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return arr_;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return obj_;
}

const Json& Json::get(std::string_view key) const {
  static const Json kNullJson;
  if (type_ != Type::kObject) type_error("object", type_);
  for (const auto& [k, v] : obj_) {
    if (k == key) return v;
  }
  return kNullJson;
}

bool Json::has(std::string_view key) const { return !get(key).is_null(); }

double Json::number_or(std::string_view key, double fallback) const {
  const Json& v = get(key);
  return v.is_number() ? v.as_number() : fallback;
}

std::int64_t Json::int_or(std::string_view key, std::int64_t fallback) const {
  const Json& v = get(key);
  return v.is_number() ? v.as_int() : fallback;
}

bool Json::bool_or(std::string_view key, bool fallback) const {
  const Json& v = get(key);
  return v.is_bool() ? v.as_bool() : fallback;
}

std::string Json::string_or(std::string_view key,
                            const std::string& fallback) const {
  const Json& v = get(key);
  return v.is_string() ? v.as_string() : fallback;
}

Json& Json::set(std::string key, Json value) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) type_error("object", type_);
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  obj_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) type_error("array", type_);
  arr_.push_back(std::move(value));
  return *this;
}

// -- Serialization ---------------------------------------------------------

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) { // JSON has no Inf/NaN; null is the honest spelling
    out += "null";
    return;
  }
  if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

} // namespace

void Json::append_to(std::string& out) const {
  switch (type_) {
    case Type::kNull: out += "null"; return;
    case Type::kBool: out += bool_ ? "true" : "false"; return;
    case Type::kNumber: append_number(out, num_); return;
    case Type::kString: append_escaped(out, str_); return;
    case Type::kArray: {
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out += ',';
        arr_[i].append_to(out);
      }
      out += ']';
      return;
    }
    case Type::kObject: {
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out += ',';
        append_escaped(out, obj_[i].first);
        out += ':';
        obj_[i].second.append_to(out);
      }
      out += '}';
      return;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  append_to(out);
  return out;
}

// -- Parsing ---------------------------------------------------------------

namespace {

class Parser {
public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

private:
  [[noreturn]] void fail(const std::string& why) const {
    throw WireError("json parse error at byte " + std::to_string(pos_) +
                    ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) fail(std::string("expected '") + c + "'");
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    if (depth_ > 64) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json();
        fail("bad literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    ++depth_;
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      const char c = take();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    --depth_;
    return obj;
  }

  Json parse_array() {
    ++depth_;
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return arr;
    }
    while (true) {
      arr.push(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    --depth_;
    return arr;
  }

  void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  unsigned parse_hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("bad \\u escape");
      }
    }
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      const char e = take();
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xD800 && code <= 0xDBFF) { // surrogate pair
            expect('\\');
            expect('u');
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("unpaired surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          }
          append_utf8(out, code);
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string tok(text_.substr(start, pos_ - start));
    if (tok.empty() || tok == "-") fail("bad number");
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number '" + tok + "'");
    return Json(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

} // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

// -- Framing ---------------------------------------------------------------

namespace {

/// Blocks (in 100 ms poll slices) until `fd` is readable; false when `stop`
/// flipped or the poll reports a hangup with nothing left to read.
bool wait_readable(int fd, const std::atomic<bool>* stop) {
  while (true) {
    if (stop != nullptr && stop->load(std::memory_order_acquire)) {
      return false;
    }
    struct pollfd p = {fd, POLLIN, 0};
    const int rc = ::poll(&p, 1, 100);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw WireError(std::string("poll: ") + std::strerror(errno));
    }
    if (rc > 0) return true;
  }
}

/// Reads exactly n bytes. Returns false on EOF before the first byte when
/// `eof_ok`; throws on EOF mid-buffer or I/O errors.
bool read_exact(int fd, char* buf, std::size_t n, bool eof_ok) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t rc = ::recv(fd, buf + got, n - got, 0);
    if (rc == 0) {
      if (got == 0 && eof_ok) return false;
      throw WireError("connection closed mid-frame");
    }
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw WireError(std::string("recv: ") + std::strerror(errno));
    }
    got += static_cast<std::size_t>(rc);
  }
  return true;
}

} // namespace

bool read_frame(int fd, std::string& payload, const std::atomic<bool>* stop) {
  if (!wait_readable(fd, stop)) return false;
  unsigned char hdr[4];
  if (!read_exact(fd, reinterpret_cast<char*>(hdr), 4, /*eof_ok=*/true)) {
    return false;
  }
  const std::uint32_t len = (static_cast<std::uint32_t>(hdr[0]) << 24) |
                            (static_cast<std::uint32_t>(hdr[1]) << 16) |
                            (static_cast<std::uint32_t>(hdr[2]) << 8) |
                            static_cast<std::uint32_t>(hdr[3]);
  if (len > kMaxFrameBytes) {
    throw WireError("frame length " + std::to_string(len) +
                    " exceeds limit " + std::to_string(kMaxFrameBytes));
  }
  payload.resize(len);
  if (len > 0) read_exact(fd, payload.data(), len, /*eof_ok=*/false);
  return true;
}

void write_frame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw WireError("outgoing frame exceeds limit");
  }
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  std::string buf;
  buf.reserve(4 + payload.size());
  buf += static_cast<char>((len >> 24) & 0xFF);
  buf += static_cast<char>((len >> 16) & 0xFF);
  buf += static_cast<char>((len >> 8) & 0xFF);
  buf += static_cast<char>(len & 0xFF);
  buf += payload;
  std::size_t sent = 0;
  while (sent < buf.size()) {
    const ssize_t rc =
        ::send(fd, buf.data() + sent, buf.size() - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw WireError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(rc);
  }
}

} // namespace sts::svc::wire
