#include "svc/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <sstream>

#include "obs/expo.hpp"
#include "obs/obs.hpp"
#include "support/env.hpp"
#include "support/fault.hpp"

namespace sts::svc {

namespace {

wire::Json error_reply(const std::string& kind, const std::string& message) {
  wire::Json j = wire::Json::object();
  j.set("ok", false);
  j.set("kind", kind);
  j.set("error", message);
  return j;
}

wire::Json ok_reply() {
  wire::Json j = wire::Json::object();
  j.set("ok", true);
  return j;
}

} // namespace

std::string Server::default_socket_path() {
  return support::env_string("STS_SOCK", "/tmp/stsd.sock");
}

Server::Server(Service& service, std::string socket_path)
    : service_(service), path_(std::move(socket_path)) {}

Server::~Server() { stop(); }

void Server::start() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof(addr.sun_path)) {
    throw support::Error("socket path too long: " + path_);
  }
  std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw support::Error(std::string("socket: ") + std::strerror(errno));
  }
  ::unlink(path_.c_str()); // stale file from a crashed daemon
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw support::Error("bind " + path_ + ": " + std::strerror(err));
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(path_.c_str());
    throw support::Error("listen " + path_ + ": " + std::strerror(err));
  }
  stop_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  if (stop_.exchange(true, std::memory_order_acq_rel)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (listen_fd_ >= 0) {
    // shutdown() wakes the blocked accept(); close alone is not reliable
    // for that on all platforms.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Conn>> conns;
  {
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  ::unlink(path_.c_str());
}

void Server::reap_finished_locked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::accept_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (stop_.load(std::memory_order_acquire)) return;
      continue; // transient accept failure; keep listening
    }
    if (stop_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    try {
      support::fault::check("svc:accept");
    } catch (const std::exception& e) {
      // Containment: this connection is dropped, the listener lives on.
      obs::instant(std::string("svc:accept fault: ") + e.what(), "svc");
      obs::counter("svc.accept_faults").add();
      ::close(fd);
      continue;
    }
    obs::counter("svc.connections").add();
    auto conn = std::make_unique<Conn>();
    Conn* raw = conn.get();
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    reap_finished_locked();
    conn->thread = std::thread([this, fd, raw] {
      handle_connection(fd);
      raw->done.store(true, std::memory_order_release);
    });
    conns_.push_back(std::move(conn));
  }
}

void Server::handle_connection(int fd) {
  std::string payload;
  while (wire::read_frame(fd, payload, &stop_)) {
    wire::Json reply;
    try {
      reply = dispatch(wire::Json::parse(payload));
    } catch (const wire::WireError& e) {
      reply = error_reply("bad_request", e.what());
    } catch (const support::Error& e) {
      reply = error_reply("bad_request", e.what());
    } catch (const std::exception& e) {
      reply = error_reply("internal", e.what());
    }
    try {
      wire::write_frame(fd, reply.dump());
    } catch (const std::exception&) {
      break; // peer went away mid-reply
    }
  }
  ::close(fd);
}

wire::Json Server::dispatch(const wire::Json& request) {
  const std::string op = request.string_or("op", "");
  if (op == "ping") {
    wire::Json reply = ok_reply();
    reply.set("op", "pong");
    return reply;
  }
  if (op == "submit") {
    const RunSpec spec = RunSpec::from_json(request.get("spec"));
    const SubmitOutcome outcome = service_.submit(spec);
    if (!outcome.accepted) {
      wire::Json reply = error_reply("backpressure", outcome.error);
      if (outcome.error == "queue_full") {
        // Depth + cap ride along so a rejected client can back off
        // proportionally instead of guessing (DESIGN.md §15).
        reply.set("queue_depth",
                  static_cast<std::uint64_t>(outcome.queue_depth));
        reply.set("queue_capacity",
                  static_cast<std::uint64_t>(outcome.queue_capacity));
      }
      return reply;
    }
    wire::Json reply = ok_reply();
    reply.set("id", outcome.id);
    return reply;
  }
  if (op == "status") {
    const auto id = static_cast<std::uint64_t>(request.get("id").as_int());
    wire::Json reply = ok_reply();
    reply.set("job", to_json(service_.status(id)));
    return reply;
  }
  if (op == "result") {
    const auto id = static_cast<std::uint64_t>(request.get("id").as_int());
    const std::int64_t timeout_ms =
        request.int_or("timeout_ms", 24LL * 3600 * 1000);
    const JobInfo info =
        service_.wait(id, std::chrono::milliseconds(timeout_ms), &stop_);
    wire::Json reply = ok_reply();
    reply.set("job", to_json(info));
    reply.set("terminal", info.terminal());
    return reply;
  }
  if (op == "cancel") {
    const auto id = static_cast<std::uint64_t>(request.get("id").as_int());
    const bool cancelled =
        service_.cancel(id, request.string_or("reason", "cancelled"));
    wire::Json reply = ok_reply();
    reply.set("cancelled", cancelled);
    return reply;
  }
  if (op == "stats") {
    wire::Json reply = ok_reply();
    reply.set("stats", to_json(service_.stats()));
    return reply;
  }
  if (op == "queue") {
    // Dispatcher snapshot for `stsctl queue`: slot partition table plus
    // every RUNNING and PENDING job with its scheduling identity.
    wire::Json reply = ok_reply();
    reply.set("queue", service_.queue_snapshot());
    return reply;
  }
  if (op == "metrics") {
    // Live exposition of the daemon's whole registry, rendered from one
    // coherent snapshot; `stsctl metrics [--prom|--csv]` and the optional
    // HTTP listener are both thin shells over this.
    const std::string format = request.string_or("format", "prom");
    std::ostringstream body;
    if (format == "prom") {
      obs::write_prometheus(body);
    } else if (format == "csv") {
      obs::write_metrics_csv(body);
    } else {
      return error_reply("bad_request", "unknown metrics format: " + format);
    }
    wire::Json reply = ok_reply();
    reply.set("format", format);
    reply.set("body", body.str());
    return reply;
  }
  if (op == "trace") {
    const auto id = static_cast<std::uint64_t>(request.get("id").as_int());
    (void)service_.status(id); // throws "unknown job id" -> bad_request
    std::ostringstream trace;
    if (!obs::write_job_trace_json(id, trace)) {
      return error_reply("bad_request",
                         "no trace buffered for job " + std::to_string(id) +
                             " (evicted or capture disabled)");
    }
    wire::Json reply = ok_reply();
    reply.set("id", id);
    reply.set("trace", trace.str());
    return reply;
  }
  if (op == "shutdown") {
    service_.request_shutdown();
    return ok_reply();
  }
  return error_reply("bad_request", "unknown op: " + op);
}

} // namespace sts::svc
