// Minimal HTTP/1.0 scrape listener for the daemon: `GET /metrics` answers
// with the Prometheus text exposition of the live registry, so a standard
// Prometheus scraper (or plain curl) can watch a running stsd without
// speaking the framed wire protocol.
//
// Deliberately tiny: loopback only, one accept thread serving connections
// sequentially (scrapes are rare and the body renders in microseconds),
// HTTP/1.0 close-per-request semantics, no keep-alive, no TLS, no request
// body handling. Anything that is not `GET /metrics` (or `GET /`, a tiny
// index) is a 404. Off by default — stsd enables it only when
// --http-port/STS_HTTP_PORT is set.
#pragma once

#include <atomic>
#include <string>
#include <thread>

namespace sts::svc {

class MetricsHttpServer {
public:
  /// `port` 0 picks an ephemeral port (see port() after start()).
  explicit MetricsHttpServer(int port);
  ~MetricsHttpServer(); // stops

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds 127.0.0.1:<port> and starts the accept thread. Throws
  /// support::Error on bind/listen failure.
  void start();
  void stop();

  /// Actual bound port (resolves port 0), valid after start().
  [[nodiscard]] int port() const noexcept { return bound_port_; }

private:
  void serve_loop();
  void handle(int fd);

  int configured_port_;
  int bound_port_ = -1;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{true};
  std::thread thread_;
};

} // namespace sts::svc
