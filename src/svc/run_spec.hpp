// RunSpec: one solve request, shared verbatim between the stsolve CLI and
// the stsd daemon so the two front ends cannot drift.
//
// A RunSpec captures everything needed to reproduce a solve: the matrix
// source (Matrix Market file or named synthetic suite entry + scale), the
// solver/runtime pair, iteration budget, block-size directive (explicit,
// heuristic, or simulated autotune), thread count, and an optional
// wall-clock timeout. It knows how to
//   - consume its CLI flags (consume_arg, used by `stsolve` and
//     `stsctl submit`),
//   - round-trip through the wire JSON (to_json/from_json),
//   - identify itself for the plan cache (source_key/block_directive),
//   - load + symmetrize its matrix and resolve its block size, and
//   - produce validated solver::SolverOptions / LobpcgOptions.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "solvers/cg.hpp"
#include "solvers/lobpcg.hpp"
#include "sparse/coo.hpp"
#include "svc/wire.hpp"

namespace sts::svc {

enum class SolverKind { kLanczos, kLobpcg, kCg };

[[nodiscard]] const char* to_string(SolverKind s);
[[nodiscard]] SolverKind parse_solver(const std::string& name);
/// "none" | "jacobi" | "ic0".
[[nodiscard]] solver::Precond parse_precond(const std::string& name);
/// "libcsr" | "libcsb" | "ds"/"deepsparse" | "flux"/"hpx" | "rgt"/"regent".
[[nodiscard]] solver::Version parse_version(const std::string& name);

struct RunSpec {
  std::string matrix_path;       // Matrix Market input; wins over suite
  std::string suite_name;        // synthetic suite entry
  double scale = 0.2;            // suite scale factor
  SolverKind solver = SolverKind::kLobpcg;
  solver::Version version = solver::Version::kFlux;
  int iterations = 30;           // Lanczos/LOBPCG budget; CG cap (--maxit)
  la::index_t nev = 8;           // LOBPCG block width
  double tolerance = 1e-6;       // LOBPCG/CG residual tolerance (--tol)
  solver::Precond precond = solver::Precond::kNone; // CG preconditioner
  la::index_t block = 0;         // CSB block size; 0 = heuristic
  bool autotune = false;         // pick block by simulated sweep
  unsigned threads = 0;          // 0 = hardware concurrency
  double timeout_sec = 0.0;      // 0 = no wall-clock guard
  /// Client-supplied idempotency key ("--key"). A resubmission carrying the
  /// same key returns the existing job id instead of enqueueing a second
  /// run — what makes client retry-after-reconnect safe (DESIGN.md §12).
  std::string client_key;
  /// Client-supplied trace correlation id ("--trace-id"), recorded in the
  /// job's captured Chrome trace so `stsctl trace <id>` output links back
  /// to whatever external system submitted the job (DESIGN.md §13). Empty
  /// defaults to "job-<id>" server-side.
  std::string trace_id;
  /// Dispatcher scheduling + quotas (DESIGN.md §15). The strict priority
  /// class ("interactive" beats "batch"), the weighted-fair-queuing weight
  /// inside the class, and the per-job resource quotas the dispatcher
  /// enforces at admission/grant time. All journaled, so a recovered job
  /// re-enters the queue with its original scheduling identity.
  std::string priority = "batch"; // "interactive" | "batch"
  unsigned weight = 1;            // DRR quantum; >= 1
  unsigned max_workers = 0;       // cap on granted workers; 0 = partition size
  std::uint64_t max_mem_bytes = 0; // cap on plan footprint; 0 = unlimited
  std::int64_t deadline_ms = 0;   // submit->terminal deadline; 0 = none

  /// Consumes one CLI flag if it belongs to the spec ("--matrix", "--suite",
  /// "--scale", "--solver", "--version", "--iterations", "--nev",
  /// "--tolerance", "--precond", "--tol" (alias of --tolerance), "--maxit"
  /// (alias of --iterations), "--block", "--autotune", "--threads",
  /// "--timeout", "--key", "--trace-id", "--priority", "--weight",
  /// "--max-workers", "--max-mem-bytes", "--deadline-ms").
  /// `next` yields the flag's value (and may exit with usage). Returns
  /// false for flags the spec does not own.
  bool consume_arg(const std::string& arg,
                   const std::function<std::string()>& next);

  /// Throws support::Error unless the spec names a source and every numeric
  /// field is usable. Called before any I/O on both front ends.
  void validate() const;

  /// Wire form (flat object, only non-default fields emitted).
  [[nodiscard]] wire::Json to_json() const;
  [[nodiscard]] static RunSpec from_json(const wire::Json& j);

  /// Plan-cache identity: what matrix bytes ("file:..." / "suite:name@s")
  /// and how the block size is chosen ("b<N>" / "heur:<ver>:t<n>" /
  /// "tune:<solver>:<ver>:nev<n>"). Computable without touching the source.
  [[nodiscard]] std::string source_key() const;
  [[nodiscard]] std::string block_directive() const;

  /// Worker threads after defaulting (hardware concurrency when 0).
  [[nodiscard]] unsigned resolved_threads() const;

  /// Reads/generates the matrix, symmetrizing file input when needed.
  [[nodiscard]] sparse::Coo load() const;

  /// The chosen block size plus (for autotune) the simulated sweep points
  /// so callers can log them.
  struct BlockChoice {
    la::index_t block = 0;
    bool heuristic = false;
    std::vector<std::pair<la::index_t, double>> sweep; // (blocks, seconds)
  };
  [[nodiscard]] BlockChoice resolve_block(const sparse::Csr& csr) const;

  /// Solver options for the resolved block size (validated defaults;
  /// cancellation/pool wiring is the caller's business).
  [[nodiscard]] solver::SolverOptions solver_options(la::index_t block) const;
  [[nodiscard]] solver::LobpcgOptions lobpcg_options(la::index_t block) const;
  /// CG knobs (preconditioner, tol, maxit); pair with solver_options().
  [[nodiscard]] solver::CgOptions cg_options() const;

  /// One-line human description ("lobpcg/hpx-flux suite:Queen_4147@0.2").
  [[nodiscard]] std::string describe() const;
};

} // namespace sts::svc
