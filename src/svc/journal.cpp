#include "svc/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/obs.hpp"
#include "solvers/checkpoint.hpp" // ckpt::crc32
#include "support/error.hpp"
#include "support/fault.hpp"

namespace sts::svc {

namespace {

void write_all(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw support::Error(std::string("journal write: ") +
                           std::strerror(errno));
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
}

std::string read_whole_file(const std::string& path, bool& exists) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    exists = false;
    return {};
  }
  exists = true;
  std::string bytes;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      break; // unreadable tail: treat what we have as the file
    }
    if (n == 0) break;
    bytes.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return bytes;
}

} // namespace

Journal::~Journal() { close(); }

void Journal::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Journal::Replay Journal::replay(const std::string& path) {
  Replay out;
  bool exists = false;
  const std::string bytes = read_whole_file(path, exists);
  if (!exists) return out;

  std::size_t pos = 0;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < 8) break; // torn header
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    std::memcpy(&len, bytes.data() + pos, 4);
    std::memcpy(&crc, bytes.data() + pos + 4, 4);
    // An absurd length means the header itself is garbage, not a record
    // that happens to be long: stop here rather than chase it off the end.
    if (len == 0 || len > wire::kMaxFrameBytes) break;
    if (bytes.size() - pos - 8 < len) break; // torn payload
    const std::string_view payload(bytes.data() + pos + 8, len);
    if (solver::ckpt::crc32(payload.data(), payload.size()) != crc) break;
    wire::Json j;
    try {
      j = wire::Json::parse(payload);
    } catch (const std::exception&) {
      break; // CRC-valid but unparseable: written by something else; stop
    }
    pos += 8 + len;
    if (!j.is_object() || !j.has("event") || !j.has("id")) continue;
    JournalRecord rec;
    rec.event = j.string_or("event", "");
    rec.id = static_cast<std::uint64_t>(j.int_or("id", 0));
    rec.fields = std::move(j);
    out.records.push_back(std::move(rec));
  }
  out.valid_bytes = pos;
  out.torn_tail = pos < bytes.size();
  return out;
}

void Journal::open(const std::string& path, std::uint64_t valid_bytes) {
  close();
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw support::Error("journal open " + path + ": " +
                         std::strerror(errno));
  }
  // Drop any torn tail so the log stays valid end-to-end, then position at
  // the new end. O_APPEND would bypass the truncation point on some
  // filesystems' view of racing writers; stsd is the journal's only writer,
  // so an explicit seek is both sufficient and exact.
  if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0 ||
      ::lseek(fd, 0, SEEK_END) < 0) {
    const int err = errno;
    ::close(fd);
    throw support::Error("journal truncate " + path + ": " +
                         std::strerror(err));
  }
  fd_ = fd;
  path_ = path;
}

void Journal::append(const std::string& event, std::uint64_t id,
                     const wire::Json& extra) {
  if (fd_ < 0) throw support::Error("journal append: not open");
  support::fault::check("journal:append");

  wire::Json j = wire::Json::object();
  j.set("event", event);
  j.set("id", id);
  if (extra.is_object()) {
    for (const auto& [key, value] : extra.members()) j.set(key, value);
  }
  const std::string payload = j.dump();
  if (payload.size() > wire::kMaxFrameBytes) {
    throw support::Error("journal append: record too large");
  }

  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc =
      solver::ckpt::crc32(payload.data(), payload.size());
  std::string frame;
  frame.reserve(8 + payload.size());
  frame.append(reinterpret_cast<const char*>(&len), 4);
  frame.append(reinterpret_cast<const char*>(&crc), 4);
  frame.append(payload);
  // One write per record: either the whole frame lands or replay sees a
  // torn tail; fsync makes the acknowledged transition crash-durable.
  write_all(fd_, frame.data(), frame.size());
  if (::fsync(fd_) != 0) {
    throw support::Error(std::string("journal fsync: ") +
                         std::strerror(errno));
  }
  obs::counter("svc.journal_appends").add();
}

} // namespace sts::svc
