// Unix-domain-socket front end for svc::Service.
//
// One accept thread plus one thread per live connection; every request is a
// single length-prefixed JSON frame (see wire.hpp) answered by a single
// reply frame, so a connection is a simple sequential RPC channel. Replies
// are `{"ok": true, ...}` or `{"ok": false, "error": ..., "kind": ...}`
// where kind is "bad_request" (malformed op/spec), "backpressure"
// (queue_full/draining admission rejection — retry later), or "internal".
//
// Ops: ping, submit {spec}, status {id}, result {id, timeout_ms?},
// cancel {id, reason?}, stats, shutdown.
//
// Fault site "svc:accept" fires between accept() and connection start: an
// armed throw drops that one connection (client sees EOF) while the
// listener keeps serving — containment at the protocol edge.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "svc/service.hpp"

namespace sts::svc {

class Server {
public:
  /// STS_SOCK or /tmp/stsd.sock.
  [[nodiscard]] static std::string default_socket_path();

  Server(Service& service, std::string socket_path);
  ~Server(); // stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds (unlinking a stale socket file first), listens, and starts the
  /// accept thread. Throws support::Error when the socket cannot be bound.
  void start();

  /// Stops accepting, closes the listener, unlinks the socket file and
  /// joins every connection thread. Idempotent. In-flight requests get the
  /// stop flag, so blocked `result` waits return promptly.
  void stop();

  [[nodiscard]] const std::string& socket_path() const noexcept {
    return path_;
  }

private:
  struct Conn {
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void handle_connection(int fd);
  [[nodiscard]] wire::Json dispatch(const wire::Json& request);
  void reap_finished_locked();

  Service& service_;
  std::string path_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
  std::mutex conn_mutex_;
  std::vector<std::unique_ptr<Conn>> conns_;
};

} // namespace sts::svc
