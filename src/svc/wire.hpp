// Wire format of the solver service: a minimal JSON value type and the
// length-prefixed framing both sides of the Unix-domain socket speak.
//
// Frame grammar (all integers big-endian):
//
//   frame   := length payload
//   length  := uint32           # byte count of payload, <= kMaxFrameBytes
//   payload := JSON text (UTF-8), one request or one response object
//
// JSON support is deliberately small — null/bool/number/string/array/object,
// \uXXXX escapes decoded to UTF-8 — because the protocol's vocabulary is a
// handful of flat objects; pulling in a dependency for that would violate
// the repo's no-new-deps constraint.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"

namespace sts::svc::wire {

/// Raised on malformed JSON, oversized/truncated frames, or socket errors.
class WireError : public support::Error {
public:
  explicit WireError(const std::string& what) : support::Error(what) {}
};

/// Tagged JSON value. Object keys keep insertion order so dumps are stable
/// and human-diffable.
class Json {
public:
  enum class Type : std::uint8_t {
    kNull, kBool, kNumber, kString, kArray, kObject
  };

  Json() = default; // null
  Json(bool b) : type_(Type::kBool), bool_(b) {}                 // NOLINT
  Json(double n) : type_(Type::kNumber), num_(n) {}              // NOLINT
  Json(int n) : Json(static_cast<double>(n)) {}                  // NOLINT
  Json(std::int64_t n) : Json(static_cast<double>(n)) {}         // NOLINT
  Json(std::uint64_t n) : Json(static_cast<double>(n)) {}        // NOLINT
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {} // NOLINT
  Json(const char* s) : Json(std::string(s)) {}                  // NOLINT

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::kString;
  }
  [[nodiscard]] bool is_array() const noexcept {
    return type_ == Type::kArray;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }

  /// Checked accessors: throw WireError on type mismatch (protocol errors
  /// surface as one catchable type at the request handler).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<Json>& items() const;

  /// Object field lookup; `get` returns null for missing keys, the typed
  /// variants return `fallback`.
  [[nodiscard]] const Json& get(std::string_view key) const;
  [[nodiscard]] bool has(std::string_view key) const;
  [[nodiscard]] double number_or(std::string_view key, double fallback) const;
  [[nodiscard]] std::int64_t int_or(std::string_view key,
                                    std::int64_t fallback) const;
  [[nodiscard]] bool bool_or(std::string_view key, bool fallback) const;
  [[nodiscard]] std::string string_or(std::string_view key,
                                      const std::string& fallback) const;

  /// Object/array builders.
  Json& set(std::string key, Json value);
  Json& push(Json value);

  [[nodiscard]] const std::vector<std::pair<std::string, Json>>&
  members() const;

  /// Serializes to compact JSON text.
  [[nodiscard]] std::string dump() const;

  /// Parses one JSON document (rejects trailing garbage).
  [[nodiscard]] static Json parse(std::string_view text);

private:
  void append_to(std::string& out) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

/// Upper bound on one frame's payload; a peer announcing more is treated as
/// a protocol violation and the connection is dropped.
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/// Reads one frame. Returns false on clean EOF at a frame boundary or when
/// `*stop` becomes true while idle (the read polls in 100 ms slices so a
/// draining server can unblock its connection threads). Throws WireError on
/// I/O errors, truncated frames, or oversized lengths.
bool read_frame(int fd, std::string& payload,
                const std::atomic<bool>* stop = nullptr);

/// Writes one frame (retrying short writes; EPIPE surfaces as WireError,
/// never SIGPIPE).
void write_frame(int fd, std::string_view payload);

} // namespace sts::svc::wire
