#include "svc/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "obs/expo.hpp"
#include "obs/obs.hpp"
#include "support/error.hpp"

namespace sts::svc {

namespace {

// Blocking full-buffer send; false when the peer goes away.
bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string http_response(const char* status, const std::string& body,
                          const char* content_type) {
  std::ostringstream os;
  os << "HTTP/1.0 " << status << "\r\n"
     << "Content-Type: " << content_type << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << body;
  return os.str();
}

} // namespace

MetricsHttpServer::MetricsHttpServer(int port) : configured_port_(port) {}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

void MetricsHttpServer::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw support::Error(std::string("http socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK); // loopback only, always
  addr.sin_port = htons(static_cast<std::uint16_t>(configured_port_));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw support::Error("http bind 127.0.0.1:" +
                         std::to_string(configured_port_) + ": " +
                         std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    bound_port_ = ntohs(bound.sin_port);
  } else {
    bound_port_ = configured_port_;
  }
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
}

void MetricsHttpServer::stop() {
  if (stop_.exchange(true, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (thread_.joinable()) thread_.join();
}

void MetricsHttpServer::serve_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (stop_.load(std::memory_order_acquire)) return;
      continue;
    }
    // Serve inline: scrapes are rare, bodies are small, and a sequential
    // loop cannot be wedged open by a slow client thanks to the recv
    // timeout below.
    handle(fd);
    ::close(fd);
  }
}

void MetricsHttpServer::handle(int fd) {
  timeval timeout{};
  timeout.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  // Read until the end of the request head (we ignore everything past the
  // request line) or an 8 KiB cap.
  std::string head;
  char buf[1024];
  while (head.find("\r\n\r\n") == std::string::npos && head.size() < 8192) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    head.append(buf, static_cast<std::size_t>(n));
  }
  const std::size_t line_end = head.find("\r\n");
  if (line_end == std::string::npos) return; // no request line at all

  std::istringstream line(head.substr(0, line_end));
  std::string method;
  std::string path;
  line >> method >> path;
  obs::counter("svc.http_requests").add();

  if (method != "GET") {
    send_all(fd, http_response("405 Method Not Allowed",
                               "only GET is supported\n", "text/plain"));
    return;
  }
  if (path == "/metrics") {
    std::ostringstream body;
    obs::write_prometheus(body);
    // version=0.0.4 is the Prometheus text exposition content type.
    send_all(fd, http_response("200 OK", body.str(),
                               "text/plain; version=0.0.4; charset=utf-8"));
    return;
  }
  if (path == "/") {
    send_all(fd, http_response(
                     "200 OK", "stsd metrics listener; scrape /metrics\n",
                     "text/plain"));
    return;
  }
  send_all(fd, http_response("404 Not Found", "unknown path: " + path + "\n",
                             "text/plain"));
}

} // namespace sts::svc
