#include "tuning/sweep.hpp"

#include "sim/schedsim.hpp"
#include "sim/workloads.hpp"
#include "sparse/csb.hpp"

namespace sts::tune {

namespace {

sim::SimResult run_version(solver::Version version, const sim::Workload& wl,
                           const sim::MachineModel& machine) {
  sim::SimOptions options;
  switch (version) {
    case solver::Version::kLibCsr:
      options.policy = sim::Policy::kBsp;
      return sim::simulate_bsp(wl.csr_graph, *wl.csr_layout, machine,
                               options);
    case solver::Version::kLibCsb:
      options.policy = sim::Policy::kBsp;
      return sim::simulate_bsp(wl.task_graph, *wl.layout, machine, options);
    case solver::Version::kDs:
      options.policy = sim::Policy::kDsTopo;
      break;
    case solver::Version::kFlux:
      options.policy = sim::Policy::kFluxWs;
      options.numa_aware = machine.numa_domains > 1;
      break;
    case solver::Version::kRgt:
      options.policy = sim::Policy::kRgtWindow;
      options.util_threads = machine.cores >= 64 ? 18 : 4;
      break;
  }
  return sim::simulate_task_graph(wl.task_graph, *wl.layout, machine,
                                  options);
}

} // namespace

SweepResult sweep_block_sizes_simulated(const sparse::Csr& csr,
                                        SweepSolver solver,
                                        solver::Version version,
                                        const sim::MachineModel& machine,
                                        bool full_sweep, index_t lobpcg_nev) {
  std::vector<index_t> candidates;
  if (full_sweep) {
    candidates = sweep_block_sizes(csr.rows());
  } else {
    for (const Bucket& bucket : heuristic_buckets()) {
      const index_t size = block_size_for_bucket(csr.rows(), bucket);
      if (size > 0) candidates.push_back(size);
    }
    if (candidates.empty()) {
      candidates.push_back(std::max<index_t>(1, csr.rows() / 4));
    }
  }

  SweepResult result;
  for (index_t block : candidates) {
    const sparse::Csb csb = sparse::Csb::from_csr(csr, block);
    const sim::Workload wl =
        solver == SweepSolver::kLanczos
            ? sim::build_lanczos_workload(csr, csb, 21)
            : sim::build_lobpcg_workload(csr, csb, lobpcg_nev);
    const sim::SimResult sr = run_version(version, wl, machine);
    SweepPoint point;
    point.block_size = block;
    point.block_count = (csr.rows() + block - 1) / block;
    point.simulated_seconds = sr.makespan_seconds;
    point.tasks = version == solver::Version::kLibCsr
                      ? wl.csr_graph.task_count()
                      : wl.task_graph.task_count();
    result.points.push_back(point);
    if (point.simulated_seconds <
        result.points[result.best].simulated_seconds) {
      result.best = result.points.size() - 1;
    }
  }
  return result;
}

} // namespace sts::tune
