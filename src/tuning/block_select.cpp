#include "tuning/block_select.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace sts::tune {

std::vector<Bucket> heuristic_buckets() {
  return {{8, 15}, {16, 31}, {32, 63}, {64, 127}, {128, 255}, {256, 511}};
}

index_t block_size_for_bucket(index_t rows, const Bucket& bucket) {
  STS_EXPECTS(rows > 0 && bucket.lo > 0 && bucket.hi >= bucket.lo);
  if (rows < bucket.lo) return 0; // cannot produce that many blocks
  // Aim at the bucket midpoint; any size with count in range is valid.
  const index_t target = (bucket.lo + bucket.hi) / 2;
  index_t size = std::max<index_t>(1, rows / target);
  auto count = [&](index_t s) { return (rows + s - 1) / s; };
  // Nudge into range (ceil-division wobbles near bucket edges).
  while (count(size) > bucket.hi) ++size;
  while (size > 1 && count(size - 1) >= bucket.lo &&
         count(size) < bucket.lo) {
    --size;
  }
  return count(size) >= bucket.lo && count(size) <= bucket.hi ? size : 0;
}

index_t block_size_for_count(index_t rows, index_t count) {
  STS_EXPECTS(rows > 0 && count > 0);
  return std::max<index_t>(1, (rows + count - 1) / count);
}

std::vector<index_t> sweep_block_sizes(index_t rows) {
  std::vector<index_t> sizes;
  for (index_t size = index_t{1} << 10; size <= (index_t{1} << 24);
       size <<= 1) {
    if ((rows + size - 1) / size >= 2) sizes.push_back(size);
  }
  if (sizes.empty()) sizes.push_back(std::max<index_t>(1, rows / 2));
  return sizes;
}

Bucket recommended_bucket(solver::Version version, unsigned cores) {
  const bool manycore = cores >= 64;
  switch (version) {
    case solver::Version::kRgt:
      return {16, 31};
    case solver::Version::kDs:
    case solver::Version::kFlux:
      return manycore ? Bucket{64, 127} : Bucket{32, 63};
    case solver::Version::kLibCsr:
    case solver::Version::kLibCsb:
      // BSP versions are far less sensitive; a task-per-thread-ish chunk
      // works well.
      return manycore ? Bucket{128, 255} : Bucket{32, 63};
  }
  return {32, 63};
}

index_t recommended_block_size(solver::Version version, unsigned cores,
                               index_t rows) {
  const Bucket bucket = recommended_bucket(version, cores);
  const index_t size = block_size_for_bucket(rows, bucket);
  return size > 0 ? size : std::max<index_t>(1, rows / 8);
}

} // namespace sts::tune
