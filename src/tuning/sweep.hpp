// Simulation-backed block-size auto-tuning.
//
// The paper found optimal block sizes by brute-force wall-clock sweeps
// (section 5.4) and distilled the bucket heuristic from them. This driver
// mechanizes the sweep: it builds the per-iteration task graph for each
// candidate block size and measures simulated makespan on a machine model,
// returning the full profile plus the winner. Useful both to pick a block
// size for a concrete (matrix, solver, runtime, machine) combination and
// to regenerate Fig. 14-style data programmatically.
#pragma once

#include <vector>

#include "sim/machine.hpp"
#include "solvers/common.hpp"
#include "sparse/csr.hpp"
#include "tuning/block_select.hpp"

namespace sts::tune {

struct SweepPoint {
  index_t block_size = 0;
  index_t block_count = 0;
  double simulated_seconds = 0.0;
  std::size_t tasks = 0;
};

struct SweepResult {
  std::vector<SweepPoint> points;
  /// Index into points of the fastest configuration.
  std::size_t best = 0;

  [[nodiscard]] index_t best_block_size() const {
    return points.empty() ? 0 : points[best].block_size;
  }
};

enum class SweepSolver { kLanczos, kLobpcg };

/// Sweeps the six heuristic buckets (or, with `full_sweep`, every power of
/// two from 2^10 to 2^24 that fits) for one version on one machine model.
[[nodiscard]] SweepResult sweep_block_sizes_simulated(
    const sparse::Csr& csr, SweepSolver solver, solver::Version version,
    const sim::MachineModel& machine, bool full_sweep = false,
    index_t lobpcg_nev = 8);

} // namespace sts::tune
