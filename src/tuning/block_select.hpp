// CSB block-size selection: the paper's tuning heuristic (section 5.4).
//
// The optimal block size always yields a per-dimension block count between
// 8 and 511; selection therefore reduces to comparing six candidate block
// sizes, one per power-of-two bucket of block counts (8-15, 16-31, ...,
// 256-511). The paper's rule of thumb picks a default bucket per runtime
// and machine size.
#pragma once

#include <string>
#include <vector>

#include "solvers/common.hpp"

namespace sts::tune {

using la::index_t;

struct Bucket {
  index_t lo = 0; // inclusive block-count range
  index_t hi = 0;
  [[nodiscard]] std::string label() const {
    return std::to_string(lo) + "-" + std::to_string(hi);
  }
};

/// The six buckets of the paper's heuristic: 8-15 ... 256-511.
[[nodiscard]] std::vector<Bucket> heuristic_buckets();

/// Smallest block size whose block count ceil(rows / size) falls in
/// [bucket.lo, bucket.hi]; returns 0 if the matrix is too small for the
/// bucket (block count cannot reach lo even with size 1).
[[nodiscard]] index_t block_size_for_bucket(index_t rows,
                                            const Bucket& bucket);

/// Block size giving approximately `count` blocks per dimension.
[[nodiscard]] index_t block_size_for_count(index_t rows, index_t count);

/// The brute-force sweep grid the paper searched: powers of two from 2^10
/// to 2^24, clipped to sizes that give at least 2 blocks.
[[nodiscard]] std::vector<index_t> sweep_block_sizes(index_t rows);

/// The paper's rule of thumb (section 5.4): DeepSparse and HPX want 32-63
/// blocks on a ~28-core multicore and 64-127 on a ~128-core manycore;
/// Regent prefers coarse 16-31 blocks everywhere.
[[nodiscard]] Bucket recommended_bucket(solver::Version version,
                                        unsigned cores);

/// Convenience: recommended block size for a matrix on a machine.
[[nodiscard]] index_t recommended_block_size(solver::Version version,
                                             unsigned cores, index_t rows);

} // namespace sts::tune
