#include "rgt/runtime.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "obs/obs.hpp"
#include "support/escape.hpp"
#include "support/fault.hpp"
#include "support/timer.hpp"

namespace sts::rgt {

namespace {

/// Tracks the launched-but-unfinished task window (peak = max concurrency
/// exposure the analyzer created).
void note_in_flight(std::uint64_t now_in_flight) {
  if (!obs::metrics_enabled()) return;
  static obs::Gauge& g = obs::gauge("rgt.in_flight");
  g.observe(static_cast<std::int64_t>(now_in_flight));
}

} // namespace

const char* to_string(Privilege p) {
  switch (p) {
    case Privilege::kRead: return "read";
    case Privilege::kWrite: return "write";
    case Privilege::kReadWrite: return "read_write";
    case Privilege::kReduce: return "reduce";
  }
  return "?";
}

struct Runtime::TaskRecord {
  std::mutex mutex;
  TaskBody body;
  const char* name = "task";
  std::vector<TaskPtr> successors;
  std::vector<TaskRecord*> dep_seen; // analysis-time dedup, serial access
  std::atomic<std::int32_t> remaining{1}; // sentinel held by the analyzer
  bool finished = false;
  std::int32_t trace_index = -1; // position inside the active capture
  // Capture-time dependence recording (entries are appended only after a
  // task's analysis completes, so deps are buffered here first).
  std::vector<std::int32_t> trace_deps;
  bool trace_boundary = false;
  Runtime* rt = nullptr;
};

struct Runtime::Trace {
  struct Entry {
    bool is_fold = false;
    RegionId fold_region = kInvalidRegion;
    std::vector<std::int32_t> deps_in_trace;
    bool depends_on_boundary = false;
  };
  struct PieceFinal {
    RegionId region;
    std::int32_t piece;
    std::int32_t writer = -1; // trace-local id, -1 = untouched by a writer
    std::vector<std::int32_t> readers;
  };
  bool captured = false;
  std::vector<Entry> entries;
  std::vector<PieceFinal> finals;
  std::size_t cursor = 0;
};

Runtime::Runtime(Config config)
    : config_(config),
      scheduler_({.threads = std::max(1u, config.cpu_workers),
                  .numa_domains = 1,
                  .numa_aware = false}) {}

Runtime::~Runtime() {
  // Must not throw during unwinding: drain() swallows any latched error.
  drain();
}

RegionId Runtime::register_region(std::span<double> storage,
                                  std::string name) {
  RegionState state;
  state.storage = storage;
  state.name = std::move(name);
  state.pieces = 1;
  state.piece_states.resize(1);
  state.instances.resize(config_.cpu_workers);
  state.instance_dirty.assign(config_.cpu_workers, false);
  regions_.push_back(std::move(state));
  return static_cast<RegionId>(regions_.size() - 1);
}

void Runtime::partition_equal(RegionId region, std::int32_t pieces) {
  STS_EXPECTS(region >= 0 &&
              static_cast<std::size_t>(region) < regions_.size());
  STS_EXPECTS(pieces >= 1);
  RegionState& r = regions_[static_cast<std::size_t>(region)];
  STS_EXPECTS(r.pieces == 1 && r.piece_states.size() == 1);
  STS_EXPECTS(!r.piece_states[0].last_writer &&
              r.piece_states[0].readers_since_write.empty());
  r.pieces = pieces;
  r.piece_states.assign(static_cast<std::size_t>(pieces), PieceState{});
}

std::int32_t Runtime::pieces_of(RegionId region) const {
  STS_EXPECTS(region >= 0 &&
              static_cast<std::size_t>(region) < regions_.size());
  return regions_[static_cast<std::size_t>(region)].pieces;
}

std::pair<std::size_t, std::size_t> Runtime::piece_range(
    RegionId region, std::int32_t piece) const {
  STS_EXPECTS(region >= 0 &&
              static_cast<std::size_t>(region) < regions_.size());
  const RegionState& r = regions_[static_cast<std::size_t>(region)];
  STS_EXPECTS(piece >= 0 && piece < r.pieces);
  const std::size_t n = r.storage.size();
  const std::size_t pieces = static_cast<std::size_t>(r.pieces);
  const std::size_t base = n / pieces;
  const std::size_t rem = n % pieces;
  const std::size_t p = static_cast<std::size_t>(piece);
  const std::size_t begin = p * base + std::min(p, rem);
  const std::size_t end = begin + base + (p < rem ? 1 : 0);
  return {begin, end};
}

void Runtime::add_dependence(const TaskPtr& before, const TaskPtr& after) {
  if (before == after) return;
  // Dedup: `after` is still private to the analyzer thread.
  auto& seen = after->dep_seen;
  if (std::find(seen.begin(), seen.end(), before.get()) != seen.end()) return;
  seen.push_back(before.get());

  // Count the dependency *before* publishing the successor link: once the
  // link is visible the predecessor's completion may decrement at any
  // moment, and it must never observe the pre-increment value (that would
  // release the task early and double-submit it later).
  after->remaining.fetch_add(1, std::memory_order_acq_rel);
  bool pending = false;
  {
    const std::lock_guard<std::mutex> lock(before->mutex);
    if (!before->finished) {
      before->successors.push_back(after);
      pending = true;
    }
  }
  if (!pending) {
    // Predecessor already done; retract the count. The analyzer still holds
    // the sentinel, so this cannot reach zero and submit.
    after->remaining.fetch_sub(1, std::memory_order_acq_rel);
  }
  if (pending) {
    ++stats_.dependence_edges;
    static obs::Counter& edges = obs::counter("rgt.dependence_edges");
    edges.add(1);
    if (active_capture_ != nullptr) {
      if (before->trace_index >= 0) {
        after->trace_deps.push_back(before->trace_index);
      } else {
        after->trace_boundary = true;
      }
    }
  } else if (active_capture_ != nullptr && before->trace_index >= 0) {
    // The predecessor already finished but the structural edge still
    // belongs to the trace.
    after->trace_deps.push_back(before->trace_index);
  }
}

void Runtime::append_capture_entry(const TaskPtr& task, bool is_fold,
                                   RegionId fold_region) {
  Trace::Entry entry;
  entry.is_fold = is_fold;
  entry.fold_region = fold_region;
  entry.deps_in_trace = std::move(task->trace_deps);
  entry.depends_on_boundary = task->trace_boundary;
  active_capture_->entries.push_back(std::move(entry));
  task->trace_index =
      static_cast<std::int32_t>(active_capture_->entries.size() - 1);
}

void Runtime::run_body(const TaskPtr& task) {
  if (cancelled_.load(std::memory_order_acquire)) {
    suppressed_.fetch_add(1, std::memory_order_relaxed);
    obs::counter("rgt.tasks_suppressed").add(1);
    obs::instant("rgt:suppressed", "cancel",
                 "{\"task\":\"" + support::json_escape(task->name) + "\"}");
    return;
  }
  const bool timed = obs::task_timing_enabled();
  const std::int64_t t0 = timed ? support::now_ns() : 0;
  try {
    support::fault::check("rgt:task");
    TaskContext ctx(this, scheduler_.current_worker());
    task->body(ctx);
  } catch (const support::TaskError&) {
    report_error(std::current_exception());
  } catch (const std::exception& e) {
    report_error(
        std::make_exception_ptr(support::TaskError(task->name, e.what())));
  } catch (...) {
    report_error(std::make_exception_ptr(
        support::TaskError(task->name, "unknown exception")));
  }
  if (timed) {
    const std::int64_t t1 = support::now_ns();
    static obs::Histogram& run_hist = obs::histogram("rgt.task_run_ns");
    run_hist.observe(t1 - t0);
    // Named after the launched task, so the trace shows the region-task
    // structure ("spmv piece", "fold", ...) enclosing the kernel span the
    // body publishes.
    obs::span(task->name, "rgt", t0, t1);
  }
}

void Runtime::notify_ready(const TaskPtr& task) {
  if (task->remaining.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  Runtime* rt = this;
  // submit_always: this closure carries the in_flight_ accounting and the
  // successor notifications; a scheduler-level cancellation dropping it
  // would leave wait_all() stuck. run_body() does its own containment.
  scheduler_.submit_always([rt, task]() {
    rt->run_body(task);
    // Successors are notified even when the body failed or was skipped:
    // every launch holds an in_flight_ count, so withholding notifications
    // would leave wait_all() stuck. Downstream bodies are suppressed by the
    // cancelled flag instead.
    std::vector<TaskPtr> succ;
    {
      const std::lock_guard<std::mutex> lock(task->mutex);
      task->finished = true;
      succ.swap(task->successors);
    }
    for (const TaskPtr& s : succ) rt->notify_ready(s);
    rt->on_finished();
  });
}

void Runtime::report_error(std::exception_ptr error) noexcept {
  bool latched = false;
  {
    const std::lock_guard<std::mutex> lock(error_mutex_);
    if (!first_error_) {
      first_error_ = error;
      latched = true;
    }
  }
  cancelled_.store(true, std::memory_order_release);
  if (latched) {
    try {
      obs::counter("rgt.cancellations").add(1);
    } catch (...) {
    }
    obs::instant("rgt:cancel", "cancel");
  }
}

void Runtime::rethrow_and_reset() {
  std::exception_ptr err;
  {
    const std::lock_guard<std::mutex> lock(error_mutex_);
    err = std::exchange(first_error_, nullptr);
  }
  cancelled_.store(false, std::memory_order_release);
  suppressed_.store(0, std::memory_order_relaxed);
  if (err) std::rethrow_exception(err);
}

void Runtime::drain() noexcept {
  if (active_capture_ == nullptr && active_replay_ == nullptr) {
    for (std::size_t rid = 0; rid < regions_.size(); ++rid) {
      close_reduction_epoch(static_cast<RegionId>(rid));
    }
  }
  {
    std::unique_lock<std::mutex> lock(window_mutex_);
    window_cv_.wait(lock, [&] {
      return in_flight_.load(std::memory_order_acquire) == 0;
    });
  }
  {
    const std::lock_guard<std::mutex> lock(error_mutex_);
    first_error_ = nullptr;
  }
  cancelled_.store(false, std::memory_order_release);
  suppressed_.store(0, std::memory_order_relaxed);
}

void Runtime::enforce_window() {
  std::unique_lock<std::mutex> lock(window_mutex_);
  window_cv_.wait(lock, [&] {
    return in_flight_.load(std::memory_order_acquire) < config_.window;
  });
}

double* Runtime::instance_for(RegionId region, int worker) {
  STS_EXPECTS(worker >= 0 &&
              static_cast<unsigned>(worker) < config_.cpu_workers);
  RegionState& r = regions_[static_cast<std::size_t>(region)];
  auto& slot = r.instances[static_cast<std::size_t>(worker)];
  if (!slot) {
    slot = std::make_unique<double[]>(r.storage.size());
    std::memset(slot.get(), 0, r.storage.size() * sizeof(double));
  }
  r.instance_dirty[static_cast<std::size_t>(worker)] = true;
  return slot.get();
}

std::span<double> TaskContext::reduce_target(RegionId region) {
  STS_EXPECTS(worker_ >= 0); // only valid on a worker thread
  Runtime::RegionState& r =
      rt_->regions_[static_cast<std::size_t>(region)];
  return {rt_->instance_for(region, worker_), r.storage.size()};
}

void Runtime::close_reduction_epoch(RegionId region) {
  RegionState& r = regions_[static_cast<std::size_t>(region)];
  if (r.open_reducers.empty()) return;

  auto fold = std::make_shared<TaskRecord>();
  fold->rt = this;
  fold->name = "reduction_fold";
  const RegionId rid = region;
  Runtime* rt = this;
  fold->body = [rt, rid](TaskContext&) {
    RegionState& reg = rt->regions_[static_cast<std::size_t>(rid)];
    for (std::size_t w = 0; w < reg.instances.size(); ++w) {
      if (!reg.instance_dirty[w]) continue;
      double* inst = reg.instances[w].get();
      for (std::size_t k = 0; k < reg.storage.size(); ++k) {
        reg.storage[k] += inst[k];
        inst[k] = 0.0;
      }
      reg.instance_dirty[w] = false;
    }
  };

  for (const TaskPtr& reducer : r.open_reducers) {
    add_dependence(reducer, fold);
  }
  if (active_capture_ != nullptr) append_capture_entry(fold, true, region);
  r.open_reducers.clear();
  for (PieceState& ps : r.piece_states) {
    ps.last_writer = fold;
    ps.readers_since_write.clear();
  }
  ++stats_.folds_inserted;
  note_in_flight(in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1);
  ++stats_.tasks_launched;
  notify_ready(fold);
}

void Runtime::analyze_and_wire(const TaskPtr& task,
                               const std::vector<RegionReq>& reqs,
                               bool update_states) {
  for (const RegionReq& req : reqs) {
    STS_EXPECTS(req.region >= 0 &&
                static_cast<std::size_t>(req.region) < regions_.size());
    RegionState& r = regions_[static_cast<std::size_t>(req.region)];
    STS_EXPECTS(req.piece >= -1 && req.piece < r.pieces);

    if (req.priv != Privilege::kReduce) close_reduction_epoch(req.region);

    const std::int32_t p0 = req.piece < 0 ? 0 : req.piece;
    const std::int32_t p1 = req.piece < 0 ? r.pieces : req.piece + 1;
    for (std::int32_t p = p0; p < p1; ++p) {
      PieceState& ps = r.piece_states[static_cast<std::size_t>(p)];
      ++stats_.piece_checks;
      switch (req.priv) {
        case Privilege::kRead:
          if (ps.last_writer) add_dependence(ps.last_writer, task);
          break;
        case Privilege::kWrite:
        case Privilege::kReadWrite:
        case Privilege::kReduce: // first reducer of an epoch behaves like a
                                 // writer against earlier accesses
          if (ps.last_writer) add_dependence(ps.last_writer, task);
          for (const TaskPtr& reader : ps.readers_since_write) {
            add_dependence(reader, task);
          }
          break;
      }
    }
    if (req.priv == Privilege::kReduce) {
      // Reducers commute among themselves: no edges between epoch members.
      r.open_reducers.push_back(task);
    }
  }
  if (update_states) apply_state_updates(task, reqs);
}

void Runtime::apply_state_updates(const TaskPtr& task,
                                  const std::vector<RegionReq>& reqs) {
  for (const RegionReq& req : reqs) {
    RegionState& r = regions_[static_cast<std::size_t>(req.region)];
    const std::int32_t p0 = req.piece < 0 ? 0 : req.piece;
    const std::int32_t p1 = req.piece < 0 ? r.pieces : req.piece + 1;
    for (std::int32_t p = p0; p < p1; ++p) {
      PieceState& ps = r.piece_states[static_cast<std::size_t>(p)];
      switch (req.priv) {
        case Privilege::kRead:
          ps.readers_since_write.push_back(task);
          break;
        case Privilege::kWrite:
        case Privilege::kReadWrite:
          ps.last_writer = task;
          ps.readers_since_write.clear();
          break;
        case Privilege::kReduce:
          break; // epoch membership tracked in open_reducers
      }
    }
  }
}

void Runtime::execute(TaskLaunch launch) {
  STS_EXPECTS(launch.body != nullptr);
  enforce_window();

  auto task = std::make_shared<TaskRecord>();
  task->rt = this;
  task->body = std::move(launch.body);
  task->name = launch.name;

  const support::Timer analysis_timer;

  if (active_replay_ != nullptr) {
    // Replay: wire recorded dependencies, skip analysis entirely.
    Trace& tr = *active_replay_;
    // Folds recorded before this task fire first.
    while (tr.cursor < tr.entries.size() &&
           tr.entries[tr.cursor].is_fold) {
      replay_fold_entry();
    }
    STS_EXPECTS(tr.cursor < tr.entries.size());
    const Trace::Entry& entry = tr.entries[tr.cursor];
    STS_EXPECTS(!entry.is_fold);
    task->trace_index = static_cast<std::int32_t>(tr.cursor);
    for (std::int32_t dep : entry.deps_in_trace) {
      add_dependence(replay_tasks_[static_cast<std::size_t>(dep)], task);
    }
    if (entry.depends_on_boundary) {
      for (const TaskPtr& b : replay_boundary_) add_dependence(b, task);
    }
    replay_tasks_[tr.cursor] = task;
    ++tr.cursor;
    ++stats_.traced_replays;
  } else {
    analyze_and_wire(task, launch.reqs, /*update_states=*/true);
    if (active_capture_ != nullptr) {
      append_capture_entry(task, false, kInvalidRegion);
    }
  }

  stats_.analysis_seconds += analysis_timer.seconds();
  ++stats_.tasks_launched;
  note_in_flight(in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1);
  notify_ready(task);
}

void Runtime::index_launch(
    std::int32_t count, const std::function<TaskLaunch(std::int32_t)>& make) {
  if (active_replay_ != nullptr) {
    for (std::int32_t i = 0; i < count; ++i) execute(make(i));
    return;
  }
  // Materialize the whole launch, optionally verify pairwise
  // non-interference, analyze each task against the *pre-launch* state,
  // then apply all state updates. This is the single-analysis shortcut
  // Regent's __demand(__index_launch) provides.
  std::vector<TaskLaunch> launches;
  launches.reserve(static_cast<std::size_t>(count));
  for (std::int32_t i = 0; i < count; ++i) launches.push_back(make(i));

  if (config_.verify_index_launches) verify_noninterference(launches);

  const support::Timer analysis_timer;
  std::vector<TaskPtr> tasks;
  tasks.reserve(launches.size());
  for (TaskLaunch& l : launches) {
    enforce_window();
    auto task = std::make_shared<TaskRecord>();
    task->rt = this;
    task->body = std::move(l.body);
    task->name = l.name;
    analyze_and_wire(task, l.reqs, /*update_states=*/false);
    if (active_capture_ != nullptr) {
      append_capture_entry(task, false, kInvalidRegion);
    }
    tasks.push_back(task);
  }
  for (std::size_t i = 0; i < launches.size(); ++i) {
    apply_state_updates(tasks[i], launches[i].reqs);
  }
  stats_.analysis_seconds += analysis_timer.seconds();
  for (const TaskPtr& t : tasks) {
    ++stats_.tasks_launched;
    note_in_flight(in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1);
    notify_ready(t);
  }
}

void Runtime::begin_trace(std::int32_t trace_id) {
  STS_EXPECTS(active_capture_ == nullptr && active_replay_ == nullptr);
  auto it = traces_.find(trace_id);
  if (it != traces_.end() && it->second->captured) {
    active_replay_ = it->second.get();
    active_replay_->cursor = 0;
    replay_tasks_.assign(active_replay_->entries.size(), nullptr);
    snapshot_boundary();
  } else {
    auto trace = std::make_unique<Trace>();
    active_capture_ = trace.get();
    traces_[trace_id] = std::move(trace);
  }
}

void Runtime::end_trace(std::int32_t trace_id) {
  auto it = traces_.find(trace_id);
  STS_EXPECTS(it != traces_.end());
  if (active_capture_ == it->second.get()) {
    // Record the post-trace piece states in trace-local coordinates so a
    // replay can reproduce them with the new task instances.
    Trace& tr = *active_capture_;
    for (std::size_t rid = 0; rid < regions_.size(); ++rid) {
      RegionState& r = regions_[rid];
      STS_EXPECTS(r.open_reducers.empty()); // fold before ending a trace
      for (std::int32_t p = 0; p < r.pieces; ++p) {
        const PieceState& ps = r.piece_states[static_cast<std::size_t>(p)];
        Trace::PieceFinal fin;
        fin.region = static_cast<RegionId>(rid);
        fin.piece = p;
        bool touched = false;
        if (ps.last_writer && ps.last_writer->trace_index >= 0) {
          fin.writer = ps.last_writer->trace_index;
          touched = true;
        }
        for (const TaskPtr& rd : ps.readers_since_write) {
          if (rd->trace_index >= 0) {
            fin.readers.push_back(rd->trace_index);
            touched = true;
          }
        }
        if (touched) tr.finals.push_back(std::move(fin));
      }
    }
    tr.captured = true;
    active_capture_ = nullptr;
  } else if (active_replay_ == it->second.get()) {
    Trace& tr = *active_replay_;
    // Drain trailing folds.
    while (tr.cursor < tr.entries.size()) {
      STS_EXPECTS(tr.entries[tr.cursor].is_fold);
      replay_fold_entry();
    }
    // Re-impose the recorded piece states with the replayed task handles.
    for (const Trace::PieceFinal& fin : tr.finals) {
      RegionState& r = regions_[static_cast<std::size_t>(fin.region)];
      PieceState& ps = r.piece_states[static_cast<std::size_t>(fin.piece)];
      if (fin.writer >= 0) {
        ps.last_writer = replay_tasks_[static_cast<std::size_t>(fin.writer)];
        ps.readers_since_write.clear();
      }
      for (std::int32_t rd : fin.readers) {
        ps.readers_since_write.push_back(
            replay_tasks_[static_cast<std::size_t>(rd)]);
      }
    }
    active_replay_ = nullptr;
    replay_tasks_.clear();
    replay_boundary_.clear();
  } else {
    STS_EXPECTS(false && "end_trace without matching begin_trace");
  }
}

void Runtime::snapshot_boundary() {
  // Conservative replay boundary: every task currently recorded as a piece
  // writer/reader. Replayed tasks flagged depends_on_boundary wait for all
  // of them -- sound, and cheap because iterative solvers have few live
  // tasks at iteration boundaries.
  replay_boundary_.clear();
  for (RegionState& r : regions_) {
    for (PieceState& ps : r.piece_states) {
      if (ps.last_writer) replay_boundary_.push_back(ps.last_writer);
      for (const TaskPtr& rd : ps.readers_since_write) {
        replay_boundary_.push_back(rd);
      }
    }
  }
  std::sort(replay_boundary_.begin(), replay_boundary_.end());
  replay_boundary_.erase(
      std::unique(replay_boundary_.begin(), replay_boundary_.end()),
      replay_boundary_.end());
}

void Runtime::replay_fold_entry() {
  Trace& tr = *active_replay_;
  const Trace::Entry& entry = tr.entries[tr.cursor];
  STS_EXPECTS(entry.is_fold);
  auto fold = std::make_shared<TaskRecord>();
  fold->rt = this;
  fold->name = "reduction_fold";
  const RegionId rid = entry.fold_region;
  Runtime* rt = this;
  fold->body = [rt, rid](TaskContext&) {
    RegionState& reg = rt->regions_[static_cast<std::size_t>(rid)];
    for (std::size_t w = 0; w < reg.instances.size(); ++w) {
      if (!reg.instance_dirty[w]) continue;
      double* inst = reg.instances[w].get();
      for (std::size_t k = 0; k < reg.storage.size(); ++k) {
        reg.storage[k] += inst[k];
        inst[k] = 0.0;
      }
      reg.instance_dirty[w] = false;
    }
  };
  fold->trace_index = static_cast<std::int32_t>(tr.cursor);
  for (std::int32_t dep : entry.deps_in_trace) {
    add_dependence(replay_tasks_[static_cast<std::size_t>(dep)], fold);
  }
  if (entry.depends_on_boundary) {
    for (const TaskPtr& b : replay_boundary_) add_dependence(b, fold);
  }
  replay_tasks_[tr.cursor] = fold;
  ++tr.cursor;
  ++stats_.folds_inserted;
  ++stats_.tasks_launched;
  note_in_flight(in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1);
  notify_ready(fold);
}

void Runtime::verify_noninterference(
    const std::vector<TaskLaunch>& launches) {
  // Two requirements interfere if they touch an overlapping piece set of
  // the same region and at least one writes (reduce conflicts with
  // read/write but not with reduce).
  auto writes = [](Privilege p) {
    return p == Privilege::kWrite || p == Privilege::kReadWrite;
  };
  for (std::size_t i = 0; i < launches.size(); ++i) {
    for (std::size_t j = i + 1; j < launches.size(); ++j) {
      for (const RegionReq& a : launches[i].reqs) {
        for (const RegionReq& b : launches[j].reqs) {
          if (a.region != b.region) continue;
          const bool overlap =
              a.piece < 0 || b.piece < 0 || a.piece == b.piece;
          if (!overlap) continue;
          const bool conflict =
              writes(a.priv) || writes(b.priv) ||
              (a.priv == Privilege::kReduce) != (b.priv == Privilege::kReduce);
          if (conflict && !(a.priv == Privilege::kRead &&
                            b.priv == Privilege::kRead)) {
            throw support::Error(
                "index_launch interference between tasks " +
                std::to_string(i) + " and " + std::to_string(j) +
                " on region " +
                regions_[static_cast<std::size_t>(a.region)].name);
          }
        }
      }
    }
  }
}

void Runtime::on_finished() {
  const std::uint64_t before =
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  note_in_flight(before - 1);
  if (before == 1) {
    const std::lock_guard<std::mutex> lock(window_mutex_);
    window_cv_.notify_all();
  } else if (in_flight_.load(std::memory_order_acquire) <
             config_.window) {
    const std::lock_guard<std::mutex> lock(window_mutex_);
    window_cv_.notify_all();
  }
}

void Runtime::wait_all() {
  STS_EXPECTS(active_capture_ == nullptr && active_replay_ == nullptr);
  // Close any open reduction epochs so region storage is authoritative.
  for (std::size_t rid = 0; rid < regions_.size(); ++rid) {
    close_reduction_epoch(static_cast<RegionId>(rid));
  }
  {
    std::unique_lock<std::mutex> lock(window_mutex_);
    window_cv_.wait(lock, [&] {
      return in_flight_.load(std::memory_order_acquire) == 0;
    });
  }
  rethrow_and_reset();
}

void Runtime::wait_all(std::chrono::milliseconds deadline) {
  STS_EXPECTS(active_capture_ == nullptr && active_replay_ == nullptr);
  for (std::size_t rid = 0; rid < regions_.size(); ++rid) {
    close_reduction_epoch(static_cast<RegionId>(rid));
  }
  {
    std::unique_lock<std::mutex> lock(window_mutex_);
    const bool quiet = window_cv_.wait_for(lock, deadline, [&] {
      return in_flight_.load(std::memory_order_acquire) == 0;
    });
    if (!quiet) {
      const std::uint64_t pending =
          in_flight_.load(std::memory_order_acquire);
      lock.unlock();
      obs::counter("rgt.watchdog_fired").add(1);
      obs::instant("rgt:watchdog", "watchdog",
                   "{\"in_flight\":" + std::to_string(pending) + "}");
      throw support::TimeoutError(
          "rgt: wait_all deadline (" + std::to_string(deadline.count()) +
          " ms) expired: " + std::to_string(pending) +
          " task(s) in flight, scheduler " +
          scheduler_.diagnostics().to_string());
    }
  }
  rethrow_and_reset();
}

Runtime::Stats Runtime::stats() const { return stats_; }

} // namespace sts::rgt
