// rgt: a Regent/Legion-style implicit-dataflow runtime.
//
// Regent programs look sequential: `task` functions declare privileges
// (read / write / read-write / reduce) on logical regions, and the runtime
// discovers parallelism by analyzing, in program order, how each launched
// task's region requirements interfere with earlier ones (paper Listing 3).
// rgt reimplements that model:
//
//   * logical regions with one level of disjoint partitioning (equal
//     partitions -- the only kind the paper's solvers use),
//   * program-order dependence analysis on the launching thread (the
//     serial analysis pipeline is the characteristic Legion overhead that
//     makes Regent prefer coarse tasks, paper Fig. 14),
//   * index launches that skip pairwise interference checks within the
//     launch (with an optional debug verification of non-interference),
//   * reduce privileges implemented as per-worker reduction instances
//     folded back on the next conflicting access (paper Fig. 7), and
//   * dynamic tracing: capture the dependence pattern of one iteration and
//     replay it without re-running the analysis [Lee et al., SC'18].
//
// Execution uses a work-stealing pool (flux::Scheduler) as the CPU
// processor group; `util_threads` exists for symmetry with Regent's
// -ll:util and is consumed by the schedule simulator's Regent policy.
#pragma once

#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "flux/scheduler.hpp"
#include "support/error.hpp"

namespace sts::rgt {

using RegionId = std::int32_t;
inline constexpr RegionId kInvalidRegion = -1;

enum class Privilege : std::uint8_t { kRead, kWrite, kReadWrite, kReduce };

[[nodiscard]] const char* to_string(Privilege p);

/// One region requirement of a task launch. piece == -1 addresses the whole
/// region; otherwise a disjoint piece of its (single) partition.
struct RegionReq {
  RegionId region = kInvalidRegion;
  std::int32_t piece = -1;
  Privilege priv = Privilege::kRead;
};

class Runtime;

/// Handed to task bodies at execution time. Bodies with only read/write
/// privileges normally capture raw pointers directly (the analysis already
/// serialized conflicting access); reduce-privilege bodies must fetch their
/// per-worker reduction instance here.
class TaskContext {
public:
  /// Buffer to accumulate into for a region held with Privilege::kReduce.
  /// Distinct concurrent tasks on the same worker share the instance
  /// (reductions commute); the runtime folds instances into the region and
  /// re-zeroes them before the next conflicting reader.
  [[nodiscard]] std::span<double> reduce_target(RegionId region);

  [[nodiscard]] int worker() const noexcept { return worker_; }

private:
  friend class Runtime;
  TaskContext(Runtime* rt, int worker) : rt_(rt), worker_(worker) {}
  Runtime* rt_;
  int worker_;
};

using TaskBody = std::function<void(TaskContext&)>;

/// A single task launch: body + requirements (+ a label for traces/stats).
struct TaskLaunch {
  TaskBody body;
  std::vector<RegionReq> reqs;
  const char* name = "task";
};

class Runtime {
public:
  struct Config {
    unsigned cpu_workers = 2;       // -ll:cpu
    unsigned util_threads = 1;      // -ll:util (consumed by the simulator)
    bool verify_index_launches = false;
    /// Maximum launched-but-unfinished tasks before execute() blocks;
    /// models Legion's bounded scheduling window.
    std::size_t window = 4096;
  };

  struct Stats {
    std::uint64_t tasks_launched = 0;
    std::uint64_t dependence_edges = 0;
    std::uint64_t piece_checks = 0;       // analysis work performed
    std::uint64_t folds_inserted = 0;
    std::uint64_t traced_replays = 0;
    double analysis_seconds = 0.0;        // time spent in the serial analyzer
  };

  explicit Runtime(Config config);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Registers a logical region backed by caller-owned storage of
  /// `elements` doubles. Storage must outlive the runtime's last task.
  RegionId register_region(std::span<double> storage, std::string name);

  /// Equal-partitions the region into `pieces` disjoint row pieces.
  /// May be called once per region, before any launch touching pieces.
  void partition_equal(RegionId region, std::int32_t pieces);

  [[nodiscard]] std::int32_t pieces_of(RegionId region) const;
  /// Element range [begin, end) of a piece.
  [[nodiscard]] std::pair<std::size_t, std::size_t> piece_range(
      RegionId region, std::int32_t piece) const;

  /// Launches one task; dependence analysis runs here, in program order.
  void execute(TaskLaunch launch);

  /// Launches `count` tasks produced by `make(i)`, declared non-interfering
  /// (Regent's __demand(__index_launch)): interference among them is not
  /// checked (unless verify_index_launches), only against earlier tasks.
  void index_launch(std::int32_t count,
                    const std::function<TaskLaunch(std::int32_t)>& make);

  /// Dynamic tracing. The first capture of `trace_id` records the
  /// dependence decisions; subsequent identical replays skip analysis.
  void begin_trace(std::int32_t trace_id);
  void end_trace(std::int32_t trace_id);

  /// Blocks until all launched tasks (and pending folds) completed. If a
  /// task body threw, the first failure is rethrown here as a
  /// support::TaskError naming the failing task, the error state is reset,
  /// and the runtime stays usable for subsequent launches.
  void wait_all();

  /// Bounded wait_all: throws support::TimeoutError carrying the in-flight
  /// task count and the worker pool's queue depths if the runtime has not
  /// drained within `deadline`.
  void wait_all(std::chrono::milliseconds deadline);

  /// True between the first task failure and the wait_all that consumes it.
  /// While cancelled, bodies of still-pending tasks are skipped (their
  /// dependence bookkeeping still runs so the runtime drains).
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] unsigned cpu_workers() const noexcept {
    return config_.cpu_workers;
  }
  [[nodiscard]] unsigned util_threads() const noexcept {
    return config_.util_threads;
  }

private:
  friend class TaskContext;

  struct TaskRecord;
  using TaskPtr = std::shared_ptr<TaskRecord>;

  struct PieceState {
    TaskPtr last_writer;
    std::vector<TaskPtr> readers_since_write;
  };

  struct RegionState {
    std::span<double> storage;
    std::string name;
    std::int32_t pieces = 1; // 1 == unpartitioned
    std::vector<PieceState> piece_states; // size == pieces
    // Open reduction epoch (whole-region granularity, see DESIGN.md):
    std::vector<TaskPtr> open_reducers;
    std::vector<std::unique_ptr<double[]>> instances; // per worker, lazy
    std::vector<bool> instance_dirty;                 // per worker
  };

  struct Trace;

  void analyze_and_wire(const TaskPtr& task,
                        const std::vector<RegionReq>& reqs,
                        bool update_states);
  void apply_state_updates(const TaskPtr& task,
                           const std::vector<RegionReq>& reqs);
  void close_reduction_epoch(RegionId region);
  void add_dependence(const TaskPtr& before, const TaskPtr& after);
  void append_capture_entry(const TaskPtr& task, bool is_fold,
                            RegionId fold_region);
  /// Drops one pending-dependency count; submits the task when it hits 0.
  void notify_ready(const TaskPtr& task);
  void run_body(const TaskPtr& task);
  void report_error(std::exception_ptr error) noexcept;
  void rethrow_and_reset();
  void drain() noexcept;
  void on_finished();
  void enforce_window();
  void snapshot_boundary();
  void replay_fold_entry();
  void verify_noninterference(const std::vector<TaskLaunch>& launches);
  double* instance_for(RegionId region, int worker);

  Config config_;
  flux::Scheduler scheduler_;
  std::vector<RegionState> regions_;

  std::atomic<std::uint64_t> in_flight_{0};
  std::mutex window_mutex_;
  std::condition_variable window_cv_;

  std::atomic<bool> cancelled_{false};
  std::atomic<std::uint64_t> suppressed_{0};
  mutable std::mutex error_mutex_;
  std::exception_ptr first_error_;

  Stats stats_;

  std::map<std::int32_t, std::unique_ptr<Trace>> traces_;
  Trace* active_capture_ = nullptr;
  Trace* active_replay_ = nullptr;
  std::vector<TaskPtr> replay_tasks_;
  std::vector<TaskPtr> replay_boundary_;
};

} // namespace sts::rgt
