#include "bsp/kernels.hpp"

#include <exception>
#include <mutex>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#else
namespace {
int omp_get_num_threads() { return 1; }
int omp_get_thread_num() { return 0; }
int omp_get_max_threads() { return 1; }
} // namespace
#endif

#include "obs/obs.hpp"

namespace sts::bsp {

namespace {

/// An exception escaping an OpenMP parallel region is std::terminate; the
/// block-level kernels route bodies through this latch so a failing block
/// (e.g. an injected fault) surfaces as one catchable rethrow instead.
class OmpExceptionLatch {
public:
  template <typename F>
  void run(F&& f) noexcept {
    try {
      f();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
  }
  void rethrow() {
    if (error_) std::rethrow_exception(error_);
  }

private:
  std::mutex mutex_;
  std::exception_ptr error_;
};

} // namespace

// The matrix and multivector kernels time each thread's share of the
// parallel region through obs::RegionTimer: the split `parallel` +
// `for nowait` form below is equivalent to the combined `parallel for`
// (same scheduling, same implicit barrier at region end) but exposes the
// per-thread begin/end the barrier-imbalance metric needs. With telemetry
// off the timer calls reduce to a branch on a cached flag.

void spmv(const sparse::Csr& a, std::span<const double> x,
          std::span<double> y) {
  const index_t rows = a.rows();
  obs::RegionTimer region("bsp", graph::KernelKind::kSpMV,
                          omp_get_max_threads());
#pragma omp parallel
  {
    const int tid = omp_get_thread_num();
    region.thread_begin(tid);
#pragma omp for schedule(dynamic, 512) nowait
    for (index_t r = 0; r < rows; ++r) {
      sparse::csr_spmv_range(a, x, y, r, r + 1);
    }
    region.thread_end(tid);
  }
}

void spmm(const sparse::Csr& a, ConstMatrixView x, MatrixView y) {
  const index_t rows = a.rows();
  obs::RegionTimer region("bsp", graph::KernelKind::kSpMM,
                          omp_get_max_threads());
#pragma omp parallel
  {
    const int tid = omp_get_thread_num();
    region.thread_begin(tid);
#pragma omp for schedule(dynamic, 256) nowait
    for (index_t r = 0; r < rows; ++r) {
      sparse::csr_spmm_range(a, x, y, r, r + 1);
    }
    region.thread_end(tid);
  }
}

void spmv(const sparse::Csb& a, std::span<const double> x,
          std::span<double> y) {
  const index_t nb = a.block_rows();
  OmpExceptionLatch latch;
  obs::RegionTimer region("bsp", graph::KernelKind::kSpMV,
                          omp_get_max_threads());
#pragma omp parallel
  {
    const int tid = omp_get_thread_num();
    region.thread_begin(tid);
#pragma omp for schedule(dynamic, 1) nowait
    for (index_t bi = 0; bi < nb; ++bi) {
      latch.run([&] {
        sparse::csb_block_zero(a, bi, y);
        for (index_t bj = 0; bj < a.block_cols(); ++bj) {
          if (!a.block_empty(bi, bj)) sparse::csb_block_spmv(a, bi, bj, x, y);
        }
      });
    }
    region.thread_end(tid);
  }
  latch.rethrow();
}

void spmm(const sparse::Csb& a, ConstMatrixView x, MatrixView y) {
  const index_t nb = a.block_rows();
  OmpExceptionLatch latch;
  obs::RegionTimer region("bsp", graph::KernelKind::kSpMM,
                          omp_get_max_threads());
#pragma omp parallel
  {
    const int tid = omp_get_thread_num();
    region.thread_begin(tid);
#pragma omp for schedule(dynamic, 1) nowait
    for (index_t bi = 0; bi < nb; ++bi) {
      latch.run([&] {
        sparse::csb_block_zero(a, bi, y);
        for (index_t bj = 0; bj < a.block_cols(); ++bj) {
          if (!a.block_empty(bi, bj)) sparse::csb_block_spmm(a, bi, bj, x, y);
        }
      });
    }
    region.thread_end(tid);
  }
  latch.rethrow();
}

namespace {
index_t chunk_count(index_t rows, index_t chunk) {
  STS_EXPECTS(chunk > 0);
  return (rows + chunk - 1) / chunk;
}
} // namespace

void xy(ConstMatrixView x, ConstMatrixView z, MatrixView y, index_t chunk,
        double alpha, double beta) {
  const index_t nchunks = chunk_count(x.rows, chunk);
  obs::RegionTimer region("bsp", graph::KernelKind::kXY,
                          omp_get_max_threads());
#pragma omp parallel
  {
    const int tid = omp_get_thread_num();
    region.thread_begin(tid);
#pragma omp for schedule(dynamic, 1) nowait
    for (index_t c = 0; c < nchunks; ++c) {
      const index_t r0 = c * chunk;
      const index_t nr = std::min(chunk, x.rows - r0);
      la::gemm(alpha, ConstMatrixView{x.data + r0 * x.ld, nr, x.cols, x.ld},
               z, beta, MatrixView{y.data + r0 * y.ld, nr, y.cols, y.ld});
    }
    region.thread_end(tid);
  }
}

void xty(ConstMatrixView x, ConstMatrixView y, MatrixView p, index_t chunk) {
  STS_EXPECTS(p.rows == x.cols && p.cols == y.cols);
  const index_t nchunks = chunk_count(x.rows, chunk);
  const std::size_t psize =
      static_cast<std::size_t>(p.rows) * static_cast<std::size_t>(p.cols);
  // Per-thread partial buffers + serial fold: the classic BSP reduction.
  std::vector<std::vector<double>> partials;
  obs::RegionTimer region("bsp", graph::KernelKind::kXTY,
                          omp_get_max_threads());
#pragma omp parallel
  {
#pragma omp single
    partials.assign(static_cast<std::size_t>(omp_get_num_threads()),
                    std::vector<double>(psize, 0.0));
    const int tid = omp_get_thread_num();
    region.thread_begin(tid);
#pragma omp for schedule(dynamic, 1) nowait
    for (index_t c = 0; c < nchunks; ++c) {
      const index_t r0 = c * chunk;
      const index_t nr = std::min(chunk, x.rows - r0);
      auto& buf = partials[static_cast<std::size_t>(omp_get_thread_num())];
      la::gemm_tn(1.0, ConstMatrixView{x.data + r0 * x.ld, nr, x.cols, x.ld},
                  ConstMatrixView{y.data + r0 * y.ld, nr, y.cols, y.ld}, 1.0,
                  MatrixView{buf.data(), p.rows, p.cols, p.cols});
    }
    region.thread_end(tid);
  }
  for (index_t i = 0; i < p.rows; ++i) {
    for (index_t j = 0; j < p.cols; ++j) p.at(i, j) = 0.0;
  }
  for (const auto& buf : partials) {
    for (std::size_t k = 0; k < psize; ++k) {
      p.data[(k / static_cast<std::size_t>(p.cols)) * p.ld +
             k % static_cast<std::size_t>(p.cols)] += buf[k];
    }
  }
}

void axpy(double alpha, ConstMatrixView x, MatrixView y, index_t chunk) {
  const index_t nchunks = chunk_count(x.rows, chunk);
  obs::RegionTimer region("bsp", graph::KernelKind::kAxpy,
                          omp_get_max_threads());
#pragma omp parallel
  {
    const int tid = omp_get_thread_num();
    region.thread_begin(tid);
#pragma omp for schedule(dynamic, 1) nowait
    for (index_t c = 0; c < nchunks; ++c) {
      const index_t r0 = c * chunk;
      const index_t nr = std::min(chunk, x.rows - r0);
      la::axpy(alpha, ConstMatrixView{x.data + r0 * x.ld, nr, x.cols, x.ld},
               MatrixView{y.data + r0 * y.ld, nr, y.cols, y.ld});
    }
    region.thread_end(tid);
  }
}

void scal(double alpha, MatrixView x, index_t chunk) {
  const index_t nchunks = chunk_count(x.rows, chunk);
  obs::RegionTimer region("bsp", graph::KernelKind::kScale,
                          omp_get_max_threads());
#pragma omp parallel
  {
    const int tid = omp_get_thread_num();
    region.thread_begin(tid);
#pragma omp for schedule(dynamic, 1) nowait
    for (index_t c = 0; c < nchunks; ++c) {
      const index_t r0 = c * chunk;
      const index_t nr = std::min(chunk, x.rows - r0);
      la::scal(alpha, MatrixView{x.data + r0 * x.ld, nr, x.cols, x.ld});
    }
    region.thread_end(tid);
  }
}

double dot(ConstMatrixView x, ConstMatrixView y, index_t chunk) {
  const index_t nchunks = chunk_count(x.rows, chunk);
  double acc = 0.0;
#pragma omp parallel for schedule(dynamic, 1) reduction(+ : acc)
  for (index_t c = 0; c < nchunks; ++c) {
    const index_t r0 = c * chunk;
    const index_t nr = std::min(chunk, x.rows - r0);
    acc += la::dot(ConstMatrixView{x.data + r0 * x.ld, nr, x.cols, x.ld},
                   ConstMatrixView{y.data + r0 * y.ld, nr, y.cols, y.ld});
  }
  return acc;
}

double dot(std::span<const double> x, std::span<const double> y) {
  STS_EXPECTS(x.size() == y.size());
  double acc = 0.0;
  const std::size_t n = x.size();
#pragma omp parallel for schedule(static) reduction(+ : acc)
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  STS_EXPECTS(x.size() == y.size());
  const std::size_t n = x.size();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scal(double alpha, std::span<double> x) {
  const std::size_t n = x.size();
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i) x[i] *= alpha;
}

} // namespace sts::bsp
