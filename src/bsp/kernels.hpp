// Bulk-synchronous-parallel kernel library: the `libcsr` / `libcsb`
// baselines of the paper.
//
// Each function is one BSP superstep: an OpenMP `parallel for` across rows
// (CSR) or block rows (CSB) with the implicit barrier at the end. Solvers
// built on these call one kernel after another, exactly the coarse-grained
// fork/join structure whose cache and synchronization behavior the paper's
// task-parallel versions improve on. First-touch init is honored by the
// callers allocating with parallel first touch.
#pragma once

#include <span>

#include "la/blas.hpp"
#include "sparse/csb.hpp"
#include "sparse/csr.hpp"

namespace sts::bsp {

using la::ConstMatrixView;
using la::index_t;
using la::MatrixView;

/// y = A * x over CSR rows (libcsr SpMV).
void spmv(const sparse::Csr& a, std::span<const double> x,
          std::span<double> y);

/// Y = A * X over CSR rows (libcsr SpMM).
void spmm(const sparse::Csr& a, ConstMatrixView x, MatrixView y);

/// y = A * x over CSB block rows (libcsb SpMV): each thread owns whole
/// block rows, so no two threads write the same y range.
void spmv(const sparse::Csb& a, std::span<const double> x,
          std::span<double> y);

/// Y = A * X over CSB block rows (libcsb SpMM).
void spmm(const sparse::Csb& a, ConstMatrixView x, MatrixView y);

/// Y = alpha * X * Z + beta * Y (the paper's XY kernel), parallel across
/// row chunks of `chunk` rows.
void xy(ConstMatrixView x, ConstMatrixView z, MatrixView y, index_t chunk,
        double alpha = 1.0, double beta = 0.0);

/// P = X^T * Y (the paper's XTY kernel): thread-partial buffers reduced at
/// the end of the superstep — the data-parallel reduction whose cost the
/// task versions avoid (paper §5.3).
void xty(ConstMatrixView x, ConstMatrixView y, MatrixView p, index_t chunk);

/// y += alpha * x across chunks.
void axpy(double alpha, ConstMatrixView x, MatrixView y, index_t chunk);

/// x *= alpha across chunks.
void scal(double alpha, MatrixView x, index_t chunk);

/// Parallel Frobenius inner product.
[[nodiscard]] double dot(ConstMatrixView x, ConstMatrixView y, index_t chunk);

/// Parallel inner product over plain vectors.
[[nodiscard]] double dot(std::span<const double> x, std::span<const double> y);
void axpy(double alpha, std::span<const double> x, std::span<double> y);
void scal(double alpha, std::span<double> x);

} // namespace sts::bsp
