#include "sim/layout.hpp"

namespace sts::sim {

namespace {
constexpr std::uint64_t kPageBytes = 4096;

std::uint64_t round_up_page(std::uint64_t v) {
  return (v + kPageBytes - 1) / kPageBytes * kPageBytes;
}
} // namespace

DataLayout::DataLayout(const std::vector<ds::GraphBuilder::DataInfo>& data) {
  entries_.reserve(data.size());
  std::uint64_t cursor = 0;
  for (const auto& d : data) {
    Entry e;
    e.base = cursor;
    e.bytes = d.bytes;
    e.pieces = d.pieces;
    entries_.push_back(e);
    cursor += round_up_page(std::max<std::uint64_t>(d.bytes, 1));
  }
  total_ = cursor;
}

} // namespace sts::sim
