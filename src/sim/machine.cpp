#include "sim/machine.hpp"

#include <algorithm>

#include "support/topology.hpp"

namespace sts::sim {

MachineModel MachineModel::broadwell() {
  MachineModel m;
  m.name = "broadwell-2x14";
  m.cores = 28;
  m.sockets = 2;
  m.numa_domains = 2;
  m.l3_group_size = 14;
  m.l1 = {32 * 1024, 8, 4};
  m.l2 = {256 * 1024, 8, 12};
  m.l3 = {12ULL * 1024 * 1024, 16, 42}; // 35 MB scaled, see header
  m.ghz = 2.4;
  m.flops_per_cycle = 4.0;
  m.mem_latency_cycles = 220;
  m.numa_remote_multiplier = 1.6;
  m.congestion_multiplier = 1.4;
  return m;
}

MachineModel MachineModel::epyc7h12() {
  MachineModel m;
  m.name = "epyc-2x64";
  m.cores = 128;
  m.sockets = 2;
  m.numa_domains = 8;
  m.l3_group_size = 4;
  m.l1 = {32 * 1024, 8, 4};
  m.l2 = {512 * 1024, 8, 13};
  m.l3 = {4ULL * 1024 * 1024, 16, 46}; // 16 MB scaled, see header
  m.ghz = 2.6;
  m.flops_per_cycle = 4.0;
  m.mem_latency_cycles = 260;
  m.numa_remote_multiplier = 1.8;
  m.congestion_multiplier = 1.6;
  return m;
}

MachineModel MachineModel::testbox(unsigned cores) {
  MachineModel m;
  m.name = "testbox";
  m.cores = cores;
  m.sockets = 1;
  m.numa_domains = 1;
  m.l3_group_size = cores;
  m.l1 = {4 * 1024, 4, 4};
  m.l2 = {32 * 1024, 8, 12};
  m.l3 = {512 * 1024, 16, 40};
  m.ghz = 1.0;
  m.flops_per_cycle = 1.0;
  m.mem_latency_cycles = 100;
  return m;
}

MachineModel MachineModel::host() {
  const support::topo::Machine& t = support::topo::machine();
  MachineModel m = broadwell(); // cache/latency parameters (see header)
  m.name = "host";
  // Physical cores: online CPUs divided by SMT width, never below 1.
  m.cores = std::max(1u, t.cpu_count() / std::max(1u, t.smt_siblings));
  m.numa_domains =
      support::topo::numa_disabled() ? 1 : std::max(1u, t.node_count());
  m.sockets = m.numa_domains; // sysfs packages ~ nodes on the paper's boxes
  // One L3 slice per domain; domain_of_core() requires cores % domains == 0.
  m.cores = std::max(m.cores, m.numa_domains);
  m.cores -= m.cores % m.numa_domains;
  m.l3_group_size = m.cores / m.numa_domains;
  return m;
}

} // namespace sts::sim
