#include "sim/workloads.hpp"

#include <algorithm>
#include <map>

#include "ds/program.hpp"

namespace sts::sim {

namespace {

using graph::Access;
using graph::KernelKind;
using graph::Task;

/// Replaces the SpMM/SpMV phases of `src` with CSR row-chunk tasks and
/// returns the libcsr-variant graph (phases preserved; edges are not needed
/// because only the BSP simulator consumes this graph).
graph::Tdg make_csr_variant(const graph::Tdg& src, const sparse::Csr& csr,
                            std::uint32_t a_data_id) {
  // Identify the phases that contain matrix tasks and their x/y data ids.
  struct SpmmPhase {
    std::uint32_t x_id = 0;
    std::uint32_t y_id = 0;
    index_t ncols = 1;
    KernelKind kind = KernelKind::kSpMM;
  };
  std::map<std::int32_t, SpmmPhase> spmm_phases;
  for (std::size_t i = 0; i < src.task_count(); ++i) {
    const Task& t = src.task(static_cast<graph::TaskId>(i));
    if (t.kind != KernelKind::kSpMM && t.kind != KernelKind::kSpMV) continue;
    auto& ph = spmm_phases[t.phase];
    ph.kind = t.kind;
    // Accesses are [A, x(read), y(readwrite)] (see Program::spmm).
    if (t.accesses.size() >= 3) {
      ph.x_id = t.accesses[1].data_id;
      ph.y_id = t.accesses[2].data_id;
    }
    ph.ncols = t.kind == KernelKind::kSpMV ? 1 : 0; // fixed below
  }

  graph::Tdg out;
  const auto rowptr = csr.rowptr();
  const auto colidx = csr.colidx();
  const index_t m = csr.rows();
  constexpr std::uint64_t kCsrEntryBytes = 12; // 4B colidx + 8B value

  // Scratch for distinct-x-line counting (epoch-tagged to avoid clearing).
  std::vector<std::int32_t> line_epoch;
  std::int32_t epoch = 0;

  std::int32_t last_emitted_phase = -2;
  for (std::size_t i = 0; i < src.task_count(); ++i) {
    const Task& t = src.task(static_cast<graph::TaskId>(i));
    const auto it = spmm_phases.find(t.phase);
    const bool matrix_phase =
        it != spmm_phases.end() &&
        (t.kind == KernelKind::kSpMM || t.kind == KernelKind::kSpMV ||
         t.kind == KernelKind::kZero);
    if (!matrix_phase) {
      out.add_task(t); // vector kernels are identical in libcsr
      continue;
    }
    if (t.phase == last_emitted_phase) continue; // phase already expanded
    last_emitted_phase = t.phase;

    const SpmmPhase& ph = it->second;
    // Column width of the vector block: the x structure spans m * width * 8
    // bytes; recover the extent from the phase's x accesses.
    std::uint64_t x_extent = 0;
    for (std::size_t j = 0; j < src.task_count(); ++j) {
      const Task& u = src.task(static_cast<graph::TaskId>(j));
      if (u.phase != t.phase) continue;
      for (const Access& a : u.accesses) {
        if (a.data_id == ph.x_id) {
          x_extent = std::max(x_extent, a.offset + a.bytes);
        }
      }
    }
    const index_t width = std::max<index_t>(
        1, static_cast<index_t>(x_extent / (static_cast<std::uint64_t>(m) * 8)));

    const std::uint64_t row_bytes = static_cast<std::uint64_t>(width) * 8;
    const std::uint64_t x_lines =
        (static_cast<std::uint64_t>(m) * row_bytes + kLineBytes - 1) /
        kLineBytes;
    if (line_epoch.size() < x_lines) line_epoch.assign(x_lines, 0);

    for (index_t r0 = 0; r0 < m; r0 += kCsrChunkRows) {
      const index_t r1 = std::min(m, r0 + kCsrChunkRows);
      const std::int64_t k0 = rowptr[static_cast<std::size_t>(r0)];
      const std::int64_t k1 = rowptr[static_cast<std::size_t>(r1)];
      // Distinct x cache lines gathered by this chunk.
      ++epoch;
      std::uint64_t touched = 0;
      for (std::int64_t k = k0; k < k1; ++k) {
        const std::uint64_t line =
            static_cast<std::uint64_t>(colidx[static_cast<std::size_t>(k)]) *
            row_bytes / kLineBytes;
        if (line_epoch[line] != epoch) {
          line_epoch[line] = epoch;
          ++touched;
        }
      }
      Task chunk;
      chunk.kind = ph.kind;
      chunk.bi = static_cast<std::int32_t>(r0 / kCsrChunkRows);
      chunk.phase = t.phase;
      chunk.flops = 2.0 * static_cast<double>(k1 - k0) *
                    static_cast<double>(width);
      chunk.accesses.push_back(
          {a_data_id, static_cast<std::uint64_t>(k0) * kCsrEntryBytes,
           static_cast<std::uint64_t>(k1 - k0) * kCsrEntryBytes,
           Access::Mode::kRead});
      if (touched > 0) {
        const std::uint32_t stride = static_cast<std::uint32_t>(
            std::max<std::uint64_t>(1, x_lines / touched));
        chunk.accesses.push_back({ph.x_id, 0,
                                  static_cast<std::uint64_t>(x_lines) *
                                      kLineBytes,
                                  Access::Mode::kRead, stride});
      }
      chunk.accesses.push_back(
          {ph.y_id, static_cast<std::uint64_t>(r0) * row_bytes,
           static_cast<std::uint64_t>(r1 - r0) * row_bytes,
           Access::Mode::kWrite});
      out.add_task(std::move(chunk));
    }
  }
  return out;
}

/// Builds both graphs + layouts given a recipe applied to a Program.
template <typename Recipe>
Workload build_workload(const sparse::Csr& csr, const sparse::Csb& csb,
                        const WorkloadOptions& options,
                        const Recipe& recipe) {
  Workload w;
  ds::Program prog(&csb,
                   {.skip_empty_blocks = options.skip_empty_blocks,
                    .dependency_based_spmm = options.dependency_based_spmm,
                    .spmm_buffers = options.spmm_buffers});
  w.partitions = prog.partitions();
  recipe(prog, w);
  // Layout for the task graph from the builder's registry; the libcsr
  // layout differs only in the matrix entry size (12 B vs 16 B per nnz).
  auto data = prog.builder().data();
  w.layout = std::make_unique<DataLayout>(data);
  auto csr_data = data;
  csr_data[static_cast<std::size_t>(prog.matrix_data_id())].bytes =
      static_cast<std::uint64_t>(csr.nnz()) * 12;
  w.csr_layout = std::make_unique<DataLayout>(csr_data);
  w.task_graph = prog.build();
  w.csr_graph = make_csr_variant(
      w.task_graph, csr,
      static_cast<std::uint32_t>(prog.matrix_data_id()));
  return w;
}

} // namespace

Workload build_lanczos_workload(const sparse::Csr& csr,
                                const sparse::Csb& csb, index_t basis_cols,
                                WorkloadOptions options) {
  return build_workload(csr, csb, options, [&](ds::Program& prog, Workload& w) {
    const index_t m = csb.rows();
    auto add = [&](index_t rows, index_t cols) {
      w.storage.push_back(std::make_unique<la::DenseMatrix>(rows, cols));
      return w.storage.back().get();
    };
    la::DenseMatrix* q = add(m, 1);
    la::DenseMatrix* z = add(m, 1);
    la::DenseMatrix* qbasis = add(m, basis_cols);
    la::DenseMatrix* proj = add(basis_cols, 1);
    w.storage.push_back(std::make_unique<la::DenseMatrix>(2, 1));
    double* scalars = w.storage.back()->data();

    const ds::DataId qid = prog.vec("q", q);
    const ds::DataId zid = prog.vec("z", z);
    const ds::DataId Qid = prog.vec("Q", qbasis);
    const ds::DataId projid = prog.small("proj", proj);
    const ds::DataId b2 = prog.scalar("beta2", scalars);
    const ds::DataId bb = prog.scalar("beta", scalars + 1);

    prog.spmm(qid, zid);
    prog.xty(Qid, zid, projid);
    prog.xy(Qid, projid, zid, -1.0, 1.0);
    prog.dot(zid, zid, b2);
    prog.small_task(KernelKind::kNorm, [] {}, {b2}, {bb});
    prog.scale_into(zid, bb, true, qid);
    static const index_t kCol = 1;
    prog.copy_into_column(qid, Qid, &kCol);
  });
}

Workload build_lobpcg_workload(const sparse::Csr& csr,
                               const sparse::Csb& csb, index_t nev,
                               WorkloadOptions options) {
  return build_workload(csr, csb, options, [&](ds::Program& prog, Workload& w) {
    const index_t m = csb.rows();
    const index_t n = nev;
    auto add = [&](index_t rows, index_t cols) {
      w.storage.push_back(std::make_unique<la::DenseMatrix>(rows, cols));
      return w.storage.back().get();
    };
    la::DenseMatrix* X = add(m, n);
    la::DenseMatrix* AX = add(m, n);
    la::DenseMatrix* W = add(m, n);
    la::DenseMatrix* AW = add(m, n);
    la::DenseMatrix* P = add(m, n);
    la::DenseMatrix* AP = add(m, n);
    la::DenseMatrix* R = add(m, n);
    la::DenseMatrix* Xn = add(m, n);
    la::DenseMatrix* AXn = add(m, n);
    la::DenseMatrix* Pn = add(m, n);
    la::DenseMatrix* APn = add(m, n);

    const ds::DataId x = prog.vec("X", X);
    const ds::DataId ax = prog.vec("AX", AX);
    const ds::DataId wv = prog.vec("W", W);
    const ds::DataId aw = prog.vec("AW", AW);
    const ds::DataId p = prog.vec("P", P);
    const ds::DataId ap = prog.vec("AP", AP);
    const ds::DataId r = prog.vec("R", R);
    const ds::DataId xn = prog.vec("Xn", Xn);
    const ds::DataId axn = prog.vec("AXn", AXn);
    const ds::DataId pn = prog.vec("Pn", Pn);
    const ds::DataId apn = prog.vec("APn", APn);

    std::vector<ds::DataId> smalls;
    for (const char* name :
         {"M", "RR", "CXW", "GWW", "WSC", "ga01", "ga02", "ga11", "ga12",
          "ga22", "gb00", "gb01", "gb02", "gb11", "gb12", "gb22", "CX", "CW",
          "CP", "NRM"}) {
      smalls.push_back(prog.small(name, add(n, n)));
    }
    const ds::DataId M = smalls[0], RR = smalls[1], CXW = smalls[2],
                     GWW = smalls[3], WSC = smalls[4], ga01 = smalls[5],
                     ga02 = smalls[6], ga11 = smalls[7], ga12 = smalls[8],
                     ga22 = smalls[9], gb00 = smalls[10], gb01 = smalls[11],
                     gb02 = smalls[12], gb11 = smalls[13], gb12 = smalls[14],
                     gb22 = smalls[15], CX = smalls[16], CW = smalls[17],
                     CP = smalls[18], NRM = smalls[19];

    prog.xty(x, ax, M);
    prog.copy(ax, r);
    prog.xy(x, M, r, -1.0, 1.0);
    prog.xty(r, r, RR);
    prog.small_task(KernelKind::kConvCheck, [] {}, {RR}, {NRM});
    prog.xty(x, r, CXW);
    prog.xy(x, CXW, r, -1.0, 1.0);
    prog.xty(r, r, GWW);
    prog.small_task(KernelKind::kOrtho, [] {}, {GWW}, {WSC});
    prog.xy(r, WSC, wv, 1.0, 0.0);
    prog.spmm(wv, aw);
    prog.xty(x, aw, ga01);
    prog.xty(x, ap, ga02);
    prog.xty(wv, aw, ga11);
    prog.xty(wv, ap, ga12);
    prog.xty(p, ap, ga22);
    prog.xty(x, x, gb00);
    prog.xty(x, wv, gb01);
    prog.xty(x, p, gb02);
    prog.xty(wv, wv, gb11);
    prog.xty(wv, p, gb12);
    prog.xty(p, p, gb22);
    prog.small_task(KernelKind::kOrtho, [] {},
                    {M, ga01, ga02, ga11, ga12, ga22, gb00, gb01, gb02, gb11,
                     gb12, gb22},
                    {CX, CW, CP});
    prog.xy(wv, CW, pn, 1.0, 0.0);
    prog.xy(p, CP, pn, 1.0, 1.0);
    prog.xy(aw, CW, apn, 1.0, 0.0);
    prog.xy(ap, CP, apn, 1.0, 1.0);
    prog.xy(x, CX, xn, 1.0, 0.0);
    prog.axpy(1.0, pn, xn);
    prog.xy(ax, CX, axn, 1.0, 0.0);
    prog.axpy(1.0, apn, axn);
    prog.copy(xn, x);
    prog.copy(axn, ax);
    prog.copy(pn, p);
    prog.copy(apn, ap);
  });
}

} // namespace sts::sim
