// Discrete-event schedule simulator.
//
// Executes a task graph (or a phase-barriered BSP task list) on a modeled
// machine, with task costs derived from flop counts plus the cache
// hierarchy's per-line costs. One scheduling policy per runtime captures
// the characteristic the paper attributes to it:
//
//   kBsp       - phases in order, dynamic chunk assignment, barrier + idle
//                time between phases (libcsr / libcsb).
//   kDsTopo    - global ready pool ordered by depth-first-topological spawn
//                order with continuation affinity: the core that enables a
//                successor runs it next (DeepSparse / OpenMP tasking's
//                pipelined, spawn-order-respecting execution).
//   kFluxWs    - per-core deques, enabled successors pushed to the enabling
//                core, random oldest-first stealing (HPX's more "shuffled"
//                schedule, Fig. 13); optional NUMA-aware stealing.
//   kRgtWindow - kDsTopo ordering, but tasks are released through a serial
//                dependence-analysis pipeline with a fixed per-task cost
//                shared by `util_threads` analyzers, and `util_threads`
//                cores are reserved for the runtime (Regent's -ll:util);
//                this is what makes very fine task grains collapse
//                (Fig. 14).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/tdg.hpp"
#include "perf/trace.hpp"
#include "sim/cachesim.hpp"
#include "sim/layout.hpp"
#include "sim/machine.hpp"

namespace sts::sim {

enum class Policy { kBsp, kDsTopo, kFluxWs, kRgtWindow };

[[nodiscard]] const char* to_string(Policy p);

struct SimOptions {
  Policy policy = Policy::kDsTopo;
  bool first_touch = true;
  // Overhead defaults are calibrated to the scaled-down suite: the
  // matrices carry ~1000x fewer nonzeros than the paper's at the same
  // block *counts*, so per-task work is ~1000x smaller and the scheduling
  // overheads are scaled to keep the overhead:work regime of the real
  // runtimes (see DESIGN.md section 5). Absolute magnitudes are therefore
  // not meaningful; ratios between versions are.

  /// Per-task dispatch overhead on the executing core, ns.
  double task_overhead_ns = 50;
  /// BSP: cost of the barrier closing each phase, ns.
  double barrier_overhead_ns = 1000;
  /// BSP: static contiguous chunk assignment (library/MKL loop behavior;
  /// the source of end-of-phase load imbalance on skewed matrices). false
  /// simulates a dynamic OpenMP schedule.
  bool bsp_static = true;
  /// kRgtWindow: serial dependence-analysis cost per task, ns (divided
  /// across util_threads).
  double analysis_ns_per_task = 250;
  unsigned util_threads = 1;
  /// Cores running application tasks; 0 = machine.cores (kRgtWindow
  /// subtracts util_threads itself when this is 0).
  unsigned cores_used = 0;
  bool numa_aware = false; // kFluxWs stealing preference
  std::uint64_t seed = 12345;
  /// Record per-task events for flow graphs (adds memory).
  bool record_events = false;
};

struct SimResult {
  double makespan_seconds = 0.0;
  MissCounts misses;
  double busy_fraction = 0.0;     // mean core utilization
  std::uint64_t tasks = 0;
  std::uint64_t steals = 0;        // kFluxWs
  double analysis_stall_seconds = 0.0; // kRgtWindow: ready-but-unanalyzed
  std::vector<perf::TaskEvent> events;  // sim-time ns, if record_events
};

/// Simulates the dependency-respecting execution of `g` under a task
/// policy (kDsTopo / kFluxWs / kRgtWindow).
[[nodiscard]] SimResult simulate_task_graph(const graph::Tdg& g,
                                            const DataLayout& layout,
                                            const MachineModel& machine,
                                            const SimOptions& options);

/// Simulates BSP execution of `g`: tasks grouped by `phase`, phases run in
/// order with a barrier between them, dependencies within a phase ignored
/// (the BSP code writes disjoint outputs within a superstep).
[[nodiscard]] SimResult simulate_bsp(const graph::Tdg& g,
                                     const DataLayout& layout,
                                     const MachineModel& machine,
                                     const SimOptions& options);

} // namespace sts::sim
