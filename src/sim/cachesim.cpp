#include "sim/cachesim.hpp"

#include <bit>

#include "support/error.hpp"

namespace sts::sim {

SetAssocCache::SetAssocCache(std::uint64_t size_bytes,
                             std::uint32_t associativity)
    : assoc_(associativity) {
  STS_EXPECTS(size_bytes > 0 && associativity > 0);
  const std::uint64_t lines = size_bytes / kLineBytes;
  sets_ = std::max<std::uint64_t>(1, lines / associativity);
  // Power-of-two sets keep the index a mask.
  sets_ = std::bit_floor(sets_);
  ways_.assign(sets_ * assoc_, Way{});
}

bool SetAssocCache::access(std::uint64_t line) {
  const std::uint64_t set = line & (sets_ - 1);
  Way* base = ways_.data() + set * assoc_;
  ++clock_;
  std::uint32_t lru_idx = 0;
  std::uint32_t lru_stamp = base[0].stamp;
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if (base[w].tag == line) {
      base[w].stamp = clock_;
      return true;
    }
    if (base[w].stamp < lru_stamp) {
      lru_stamp = base[w].stamp;
      lru_idx = w;
    }
  }
  base[lru_idx].tag = line;
  base[lru_idx].stamp = clock_;
  return false;
}

void SetAssocCache::reset() {
  for (Way& w : ways_) w = Way{};
  clock_ = 0;
}

CacheHierarchy::CacheHierarchy(const MachineModel& machine)
    : machine_(machine) {
  l1_.reserve(machine.cores);
  l2_.reserve(machine.cores);
  for (unsigned c = 0; c < machine.cores; ++c) {
    l1_.emplace_back(machine.l1.size_bytes, machine.l1.associativity);
    l2_.emplace_back(machine.l2.size_bytes, machine.l2.associativity);
  }
  for (unsigned g = 0; g < machine.l3_groups(); ++g) {
    l3_.emplace_back(machine.l3.size_bytes, machine.l3.associativity);
  }
  counts_.assign(machine.cores, MissCounts{});
}

double CacheHierarchy::access(unsigned core, std::uint64_t line,
                              unsigned home_domain, bool congested) {
  STS_EXPECTS(core < machine_.cores);
  MissCounts& cc = counts_[core];
  ++cc.accesses;
  if (l1_[core].access(line)) {
    return machine_.l1.latency_cycles;
  }
  ++cc.l1_misses;
  if (l2_[core].access(line)) {
    return machine_.l2.latency_cycles;
  }
  ++cc.l2_misses;
  if (l3_[machine_.l3_group_of_core(core)].access(line)) {
    return machine_.l3.latency_cycles;
  }
  ++cc.l3_misses;
  double cycles = machine_.mem_latency_cycles;
  if (machine_.numa_domains > 1) {
    if (machine_.domain_of_core(core) != home_domain) {
      cycles *= machine_.numa_remote_multiplier;
    }
    if (congested) cycles *= machine_.congestion_multiplier;
  }
  return cycles;
}

MissCounts CacheHierarchy::totals() const {
  MissCounts total;
  for (const MissCounts& c : counts_) total += c;
  return total;
}

void CacheHierarchy::reset() {
  for (auto& c : l1_) c.reset();
  for (auto& c : l2_) c.reset();
  for (auto& c : l3_) c.reset();
  counts_.assign(machine_.cores, MissCounts{});
}

} // namespace sts::sim
