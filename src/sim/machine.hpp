// Machine models for the schedule/cache simulator.
//
// The container this repository builds in has 2 cores and no PMU access,
// so the paper's two evaluation platforms are modeled explicitly (DESIGN.md
// section 2.6): the simulator executes the real task graphs on these models
// to regenerate the cache-miss and speedup figures. Core counts, NUMA
// topology and latencies follow the paper's hardware description (section
// 5) and public spec sheets.
//
// Capacity scaling: the synthetic suite carries ~1000x fewer nonzeros than
// the paper's matrices while using the same block *counts*. L3 capacities
// are scaled down (~3x) so that (a) a whole solver working set does NOT
// fit in the LLC -- with full-size L3s the scaled problem would be
// LLC-resident and the BSP baselines would enjoy a residency the real
// systems never had -- while (b) the per-core L3 share still holds one
// piece working set, which is the regime the paper's block-size tuning
// targets and the source of the task runtimes' cache advantage. L1/L2 are
// kept at hardware size because piece working sets land in the same L1/L2
// regime as the paper's optimal configurations.
#pragma once

#include <cstdint>
#include <string>

namespace sts::sim {

struct CacheLevelConfig {
  std::uint64_t size_bytes = 0;
  std::uint32_t associativity = 8;
  std::uint32_t latency_cycles = 4; // load-to-use on hit at this level
};

struct MachineModel {
  std::string name;
  unsigned cores = 1;
  unsigned sockets = 1;
  unsigned numa_domains = 1;
  /// Cores sharing one L3 slice (Broadwell: whole socket; EPYC: 4-core CCX).
  unsigned l3_group_size = 1;
  CacheLevelConfig l1;
  CacheLevelConfig l2;
  CacheLevelConfig l3;
  double ghz = 2.0;
  /// Sustained double-precision flops per cycle per core for these
  /// memory-bound kernels (far below peak FMA throughput on purpose).
  double flops_per_cycle = 4.0;
  std::uint32_t mem_latency_cycles = 200;
  /// Extra cost multiplier for a miss served from a remote NUMA domain.
  double numa_remote_multiplier = 1.6;
  /// Additional multiplier when every page lives on one domain and its
  /// memory controller is congested (the first-touch-off pathology).
  double congestion_multiplier = 1.5;

  [[nodiscard]] unsigned domain_of_core(unsigned core) const {
    return core / (cores / numa_domains);
  }
  [[nodiscard]] unsigned l3_group_of_core(unsigned core) const {
    return core / l3_group_size;
  }
  [[nodiscard]] unsigned l3_groups() const {
    return (cores + l3_group_size - 1) / l3_group_size;
  }

  /// 2 x 14-core Intel Xeon E5-2680v4 (Broadwell): 32 KB L1d + 256 KB L2
  /// private, 35 MB L3 per socket, 2 NUMA domains.
  static MachineModel broadwell();

  /// 2 x 64-core AMD EPYC 7H12: 32 KB L1d + 512 KB L2 private, 16 MB L3
  /// per 4-core CCX, 8 NUMA domains (4 per socket).
  static MachineModel epyc7h12();

  /// Tiny model for unit tests (fast, deterministic).
  static MachineModel testbox(unsigned cores);

  /// The machine this process runs on: core count, socket count and NUMA
  /// domains from support::topo detection (honours STS_SYS_ROOT and
  /// STS_NUMA=off), Broadwell-class cache/latency parameters otherwise.
  /// Used by the service's autotune path so simulated block sweeps branch
  /// on the *real* topology instead of a hardcoded platform.
  static MachineModel host();
};

} // namespace sts::sim
