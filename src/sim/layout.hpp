// Synthetic address-space layout + NUMA page-home model.
//
// Each data structure registered with the ds::GraphBuilder gets a base
// address in a flat simulated address space; Access ranges become absolute
// line addresses for the cache hierarchy. Page homes implement the paper's
// first-touch discussion (Fig. 5): with first touch on, the pages of piece
// p live on the domain that initializes/uses piece p; with it off, every
// page lives on domain 0 and remote cores pay latency + congestion.
#pragma once

#include <cstdint>
#include <vector>

#include "ds/builder.hpp"
#include "sim/cachesim.hpp"

namespace sts::sim {

class DataLayout {
public:
  /// Builds from the graph builder's data registry (name/pieces/bytes).
  explicit DataLayout(const std::vector<ds::GraphBuilder::DataInfo>& data);

  [[nodiscard]] std::uint64_t base(std::uint32_t data_id) const {
    STS_EXPECTS(data_id < entries_.size());
    return entries_[data_id].base;
  }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept { return total_; }

  /// NUMA home of the page containing (data_id, offset). Under first touch
  /// pieces are homed in contiguous ranges per domain -- the placement a
  /// parallel (static-chunked) initialization loop produces. Without first
  /// touch every page lives on domain 0.
  [[nodiscard]] unsigned home_domain(std::uint32_t data_id,
                                     std::uint64_t offset,
                                     unsigned numa_domains,
                                     bool first_touch) const {
    if (!first_touch || numa_domains <= 1) return 0;
    const Entry& e = entries_[data_id];
    if (e.pieces <= 1) return 0;
    const std::uint64_t piece_bytes = std::max<std::uint64_t>(
        1, e.bytes / static_cast<std::uint64_t>(e.pieces));
    const std::uint64_t piece =
        std::min<std::uint64_t>(offset / piece_bytes,
                                static_cast<std::uint64_t>(e.pieces) - 1);
    return static_cast<unsigned>(piece * numa_domains /
                                 static_cast<std::uint64_t>(e.pieces));
  }

private:
  struct Entry {
    std::uint64_t base = 0;
    std::uint64_t bytes = 0;
    std::int32_t pieces = 1;
  };
  std::vector<Entry> entries_;
  std::uint64_t total_ = 0;
};

} // namespace sts::sim
