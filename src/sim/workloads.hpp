// Simulator workload construction.
//
// A Workload packages everything the schedule simulator needs to replay one
// solver iteration on a modeled machine:
//   * task_graph - the genuine per-iteration TDG from ds::Program (the same
//     DAG all three task runtimes execute, per the paper's observation that
//     "all AMT models are essentially presented the same DAG"); also used
//     for the libcsb BSP simulation via its phase tags.
//   * csr_graph  - the libcsr variant: identical vector-kernel phases, but
//     SpMM/SpMV phases replaced by CSR row-chunk tasks whose input-vector
//     accesses are scattered over the whole vector (no 2D blocking), the
//     cache behavior that separates libcsr from CSB-based versions.
//   * layouts    - synthetic address maps for both graphs.
#pragma once

#include <memory>

#include "graph/tdg.hpp"
#include "sim/layout.hpp"
#include "sparse/csb.hpp"
#include "sparse/csr.hpp"

namespace sts::sim {

using la::index_t;

struct Workload {
  graph::Tdg task_graph;
  graph::Tdg csr_graph;
  std::unique_ptr<DataLayout> layout;
  std::unique_ptr<DataLayout> csr_layout;
  index_t partitions = 0;
  /// State buffers backing the ds::Program registration; bodies are never
  /// executed by the simulator but registration requires live storage.
  std::vector<std::unique_ptr<la::DenseMatrix>> storage;
};

/// Options forwarded to the underlying ds::Program (ablations: Fig. 6 skip
/// optimization, Fig. 7 reduction-based SpMM with per-core buffers).
struct WorkloadOptions {
  bool skip_empty_blocks = true;
  bool dependency_based_spmm = true;
  std::int32_t spmm_buffers = 4;
};

/// One Lanczos iteration with a Krylov basis of `basis_cols` columns.
[[nodiscard]] Workload build_lanczos_workload(const sparse::Csr& csr,
                                              const sparse::Csb& csb,
                                              index_t basis_cols = 21,
                                              WorkloadOptions options = {});

/// One LOBPCG iteration with block width `nev`.
[[nodiscard]] Workload build_lobpcg_workload(const sparse::Csr& csr,
                                             const sparse::Csb& csb,
                                             index_t nev = 8,
                                             WorkloadOptions options = {});

/// Number of rows per libcsr SpMM chunk (mirrors the OpenMP dynamic
/// schedule in bsp::spmm).
inline constexpr index_t kCsrChunkRows = 512;

} // namespace sts::sim
