// Multi-level set-associative LRU cache simulator.
//
// One hierarchy instance models a whole machine: private L1/L2 per core and
// an L3 slice shared by each l3_group (socket on Broadwell, CCX on EPYC).
// Tasks feed it 64-byte-line streams derived from their Access ranges; the
// returned per-access cycle cost drives the schedule simulator, and the
// global miss counters reproduce the paper's `perf stat` figures (Figs. 8
// and 11).
//
// Fidelity notes (see DESIGN.md): accesses are modeled at task granularity
// in task order per core -- concurrent interleaving inside the shared L3 is
// not modeled, which is adequate for counting capacity/reuse misses, the
// phenomenon the paper's comparison rests on.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/tdg.hpp"
#include "sim/machine.hpp"

namespace sts::sim {

inline constexpr std::uint64_t kLineBytes = 64;

/// One set-associative LRU cache. Tags are line addresses.
class SetAssocCache {
public:
  SetAssocCache() = default;
  SetAssocCache(std::uint64_t size_bytes, std::uint32_t associativity);

  /// Returns true on hit; on miss the line is installed (LRU evicted).
  bool access(std::uint64_t line);

  void reset();

  [[nodiscard]] std::uint64_t sets() const noexcept { return sets_; }

private:
  struct Way {
    std::uint64_t tag = ~0ULL;
    std::uint32_t stamp = 0;
  };
  std::uint64_t sets_ = 0;
  std::uint32_t assoc_ = 0;
  std::uint32_t clock_ = 0;
  std::vector<Way> ways_; // sets_ x assoc_
};

struct MissCounts {
  std::uint64_t accesses = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t l3_misses = 0;

  MissCounts& operator+=(const MissCounts& o) {
    accesses += o.accesses;
    l1_misses += o.l1_misses;
    l2_misses += o.l2_misses;
    l3_misses += o.l3_misses;
    return *this;
  }
};

/// Private L1/L2 per core + shared L3 per group, with a NUMA cost model.
class CacheHierarchy {
public:
  explicit CacheHierarchy(const MachineModel& machine);

  /// Runs one line access from `core`. `home_domain` is the NUMA domain
  /// owning the page (first-touch model); `congested` marks the
  /// all-pages-on-domain-0 pathology. Returns the access cost in cycles
  /// and updates the per-core miss counters.
  double access(unsigned core, std::uint64_t line, unsigned home_domain,
                bool congested);

  [[nodiscard]] MissCounts totals() const;
  [[nodiscard]] const MissCounts& core_counts(unsigned core) const {
    return counts_[core];
  }
  void reset();

  [[nodiscard]] const MachineModel& machine() const noexcept {
    return machine_;
  }

private:
  MachineModel machine_;
  std::vector<SetAssocCache> l1_; // per core
  std::vector<SetAssocCache> l2_; // per core
  std::vector<SetAssocCache> l3_; // per group
  std::vector<MissCounts> counts_;
};

} // namespace sts::sim
