#include "sim/schedsim.hpp"

#include <algorithm>
#include <deque>
#include <queue>
#include <set>

#include "support/rng.hpp"

namespace sts::sim {

const char* to_string(Policy p) {
  switch (p) {
    case Policy::kBsp: return "bsp";
    case Policy::kDsTopo: return "ds-topo";
    case Policy::kFluxWs: return "flux-ws";
    case Policy::kRgtWindow: return "rgt-window";
  }
  return "?";
}

namespace {

/// Runs one task's access stream through the hierarchy from `core` and
/// returns the task duration in nanoseconds.
double task_duration_ns(const graph::Task& task, unsigned core,
                        CacheHierarchy& caches, const DataLayout& layout,
                        const MachineModel& machine, bool first_touch) {
  double mem_cycles = 0.0;
  for (const graph::Access& a : task.accesses) {
    if (a.bytes == 0) continue;
    const std::uint64_t base = layout.base(a.data_id) + a.offset;
    const std::uint64_t first_line = base / kLineBytes;
    const std::uint64_t last_line = (base + a.bytes - 1) / kLineBytes;
    const std::uint64_t stride = std::max<std::uint32_t>(1, a.stride_lines);
    const unsigned home = layout.home_domain(a.data_id, a.offset,
                                             machine.numa_domains,
                                             first_touch);
    for (std::uint64_t line = first_line; line <= last_line; line += stride) {
      mem_cycles += caches.access(core, line, home, !first_touch);
    }
  }
  // Memory-level parallelism: outstanding misses overlap; a fixed factor
  // converts summed latencies into effective stall cycles.
  constexpr double kMlp = 6.0;
  const double compute_cycles = task.flops / machine.flops_per_cycle;
  const double cycles = compute_cycles + mem_cycles / kMlp;
  return cycles / machine.ghz; // cycles / (cycles/ns) = ns
}

void record_event(std::vector<perf::TaskEvent>* events,
                  const graph::Task& task, graph::TaskId id, unsigned core,
                  double start_ns, double end_ns) {
  if (events == nullptr) return;
  perf::TaskEvent ev;
  ev.task_id = id;
  ev.kind = task.kind;
  ev.worker = static_cast<std::int32_t>(core);
  ev.start_ns = static_cast<std::int64_t>(start_ns);
  ev.end_ns = static_cast<std::int64_t>(end_ns);
  events->push_back(ev);
}

} // namespace

SimResult simulate_bsp(const graph::Tdg& g, const DataLayout& layout,
                       const MachineModel& machine,
                       const SimOptions& options) {
  const unsigned cores =
      options.cores_used > 0 ? options.cores_used : machine.cores;
  CacheHierarchy caches(machine);
  SimResult result;
  result.tasks = g.task_count();

  // Group task ids by phase, keeping per-phase insertion order.
  std::int32_t max_phase = -1;
  for (std::size_t i = 0; i < g.task_count(); ++i) {
    max_phase = std::max(max_phase, g.task(static_cast<graph::TaskId>(i)).phase);
  }
  std::vector<std::vector<graph::TaskId>> phases(
      static_cast<std::size_t>(max_phase + 2));
  for (std::size_t i = 0; i < g.task_count(); ++i) {
    const auto id = static_cast<graph::TaskId>(i);
    const std::int32_t ph = std::max(0, g.task(id).phase);
    phases[static_cast<std::size_t>(ph)].push_back(id);
  }

  std::vector<double> core_time(cores, 0.0);
  double busy_ns = 0.0;
  std::vector<perf::TaskEvent>* events =
      options.record_events ? &result.events : nullptr;

  std::int32_t phase_index = 0;
  for (const auto& phase : phases) {
    if (phase.empty()) continue;
    ++phase_index;
    if (options.bsp_static) {
      // Static contiguous assignment within each superstep (MKL-style):
      // core c gets the c-th block of the phase's task order. Skewed
      // nonzero distributions put all heavy chunks on few cores, producing
      // the end-of-phase idling the paper's Fig. 10 shows for the BSP
      // versions. The assignment is rotated between phases: each library
      // call partitions its iteration space independently, so a vector
      // piece does NOT return to the same core in the next kernel -- the
      // cross-kernel locality loss that separates BSP from the pipelined
      // task schedules.
      const std::size_t n = phase.size();
      for (unsigned c = 0; c < cores; ++c) {
        const unsigned rotated =
            (c + static_cast<unsigned>(phase_index)) % cores;
        const std::size_t b0 = n * c / cores;
        const std::size_t b1 = n * (c + 1) / cores;
        for (std::size_t k = b0; k < b1; ++k) {
          const graph::TaskId id = phase[k];
          const graph::Task& task = g.task(id);
          const double dur =
              options.task_overhead_ns +
              task_duration_ns(task, rotated, caches, layout, machine,
                               options.first_touch);
          record_event(events, task, id, rotated, core_time[rotated],
                       core_time[rotated] + dur);
          core_time[rotated] += dur;
          busy_ns += dur;
        }
      }
    } else {
      // Dynamic scheduling: each task goes to the earliest-available core.
      for (graph::TaskId id : phase) {
        const auto it = std::min_element(core_time.begin(), core_time.end());
        const unsigned core = static_cast<unsigned>(it - core_time.begin());
        const graph::Task& task = g.task(id);
        const double dur =
            options.task_overhead_ns +
            task_duration_ns(task, core, caches, layout, machine,
                             options.first_touch);
        record_event(events, task, id, core, *it, *it + dur);
        *it += dur;
        busy_ns += dur;
      }
    }
    // Barrier: everyone waits for the slowest core.
    const double bar =
        *std::max_element(core_time.begin(), core_time.end()) +
        options.barrier_overhead_ns;
    core_time.assign(cores, bar);
  }

  result.makespan_seconds =
      *std::max_element(core_time.begin(), core_time.end()) * 1e-9;
  result.misses = caches.totals();
  result.busy_fraction =
      result.makespan_seconds > 0
          ? busy_ns * 1e-9 /
                (result.makespan_seconds * static_cast<double>(cores))
          : 0.0;
  return result;
}

SimResult simulate_task_graph(const graph::Tdg& g, const DataLayout& layout,
                              const MachineModel& machine,
                              const SimOptions& options) {
  STS_EXPECTS(options.policy != Policy::kBsp);
  unsigned cores = options.cores_used > 0 ? options.cores_used : machine.cores;
  if (options.policy == Policy::kRgtWindow && options.cores_used == 0) {
    cores = machine.cores > options.util_threads
                ? machine.cores - options.util_threads
                : 1;
  }
  CacheHierarchy caches(machine);
  support::Xoshiro256 rng(options.seed);
  SimResult result;
  result.tasks = g.task_count();
  std::vector<perf::TaskEvent>* events =
      options.record_events ? &result.events : nullptr;

  const std::vector<graph::TaskId> topo = g.depth_first_topological_order();
  std::vector<std::int64_t> topo_index(g.task_count());
  for (std::size_t i = 0; i < topo.size(); ++i) {
    topo_index[static_cast<std::size_t>(topo[i])] =
        static_cast<std::int64_t>(i);
  }
  std::vector<std::int32_t> remaining = g.indegrees();
  // Unique successor lists (graphs may carry duplicate edges).
  std::vector<std::vector<graph::TaskId>> succ(g.task_count());
  for (std::size_t u = 0; u < g.task_count(); ++u) {
    succ[u] = g.successors(static_cast<graph::TaskId>(u));
    std::sort(succ[u].begin(), succ[u].end());
    succ[u].erase(std::unique(succ[u].begin(), succ[u].end()), succ[u].end());
  }

  // Regent: tasks are released by the analysis pipeline in launch (topo)
  // order at a fixed rate.
  std::vector<double> analysis_ready(g.task_count(), 0.0);
  if (options.policy == Policy::kRgtWindow) {
    const double per_task =
        options.analysis_ns_per_task /
        std::max(1u, options.util_threads);
    for (std::size_t i = 0; i < topo.size(); ++i) {
      analysis_ready[static_cast<std::size_t>(topo[i])] =
          per_task * static_cast<double>(i + 1);
    }
  }

  std::vector<double> release_time(g.task_count(), 0.0);
  // Piece affinity: the core that last ran a task on the same block row
  // (the locality the real runtimes achieve via continuation execution and
  // the per-piece NUMA hints the solvers pass to flux).
  std::vector<std::int32_t> affinity(g.task_count(), -1);

  // Ready pools: per-core locality deques for every policy, plus a global
  // pool ordered by topo index for kDsTopo/kRgtWindow (DeepSparse's
  // spawn-order discipline). kFluxWs uses only the deques + stealing.
  std::set<std::pair<std::int64_t, graph::TaskId>> global_ready;
  std::vector<std::deque<graph::TaskId>> local_ready(cores);

  const bool flux = options.policy == Policy::kFluxWs;
  unsigned rr_core = 0;

  auto make_ready = [&](graph::TaskId id, double time, std::int32_t core) {
    release_time[static_cast<std::size_t>(id)] = time;
    std::int32_t target = affinity[static_cast<std::size_t>(id)];
    if (target < 0) target = core;
    if (target >= 0) {
      local_ready[static_cast<unsigned>(target) % cores].push_front(id);
      return;
    }
    // Root task: round-robin (flux honors the piece -> domain hint).
    if (flux && options.numa_aware && machine.numa_domains > 1) {
      const std::int32_t bi = g.task(id).bi;
      const unsigned dom = bi >= 0
                               ? static_cast<unsigned>(bi) %
                                     machine.numa_domains
                               : rr_core % machine.numa_domains;
      const unsigned per = std::max(1u, cores / machine.numa_domains);
      unsigned t = dom * per + (rr_core++ % per);
      if (t >= cores) t = dom % cores;
      local_ready[t].push_front(id);
    } else if (flux) {
      local_ready[rr_core++ % cores].push_front(id);
    } else {
      global_ready.insert({topo_index[static_cast<std::size_t>(id)], id});
    }
  };

  for (graph::TaskId id : topo) {
    if (remaining[static_cast<std::size_t>(id)] == 0) {
      make_ready(id, 0.0, -1);
    }
  }

  struct Completion {
    double time;
    unsigned core;
    graph::TaskId task;
    bool operator>(const Completion& o) const { return time > o.time; }
  };
  std::priority_queue<Completion, std::vector<Completion>, std::greater<>>
      completions;
  std::vector<char> core_busy(cores, 0);
  std::vector<double> core_avail(cores, 0.0);
  double busy_ns = 0.0;
  std::uint64_t steals = 0;
  double analysis_stall = 0.0;

  auto pick_for_core = [&](unsigned core) -> graph::TaskId {
    // Own locality deque first (the continuation just enabled, or work for
    // pieces this core has touched).
    if (!local_ready[core].empty()) {
      const graph::TaskId id = local_ready[core].front();
      local_ready[core].pop_front();
      return id;
    }
    if (!flux && !global_ready.empty()) {
      const graph::TaskId id = global_ready.begin()->second;
      global_ready.erase(global_ready.begin());
      return id;
    }
    // Steal the oldest entry from a victim (NUMA-aware: same-domain
    // victims first for flux). A singleton deque is left for its owner --
    // stealing the only queued task of an about-to-idle affinity core
    // destroys the locality the runtimes work to preserve -- unless no
    // richer victim exists anywhere.
    auto try_steal = [&](unsigned victim,
                         std::size_t min_size) -> graph::TaskId {
      if (victim == core || local_ready[victim].size() < min_size) {
        return graph::kInvalidTask;
      }
      const graph::TaskId id = local_ready[victim].back();
      local_ready[victim].pop_back();
      ++steals;
      return id;
    };
    const unsigned start = static_cast<unsigned>(rng.below(cores));
    for (const std::size_t min_size : {std::size_t{2}, std::size_t{1}}) {
      if (flux && options.numa_aware && machine.numa_domains > 1) {
        const unsigned per = std::max(1u, cores / machine.numa_domains);
        const unsigned dom = core / per;
        for (unsigned k = 0; k < cores; ++k) {
          const unsigned v = (start + k) % cores;
          if (v / per == dom) {
            const graph::TaskId id = try_steal(v, min_size);
            if (id != graph::kInvalidTask) return id;
          }
        }
      }
      for (unsigned k = 0; k < cores; ++k) {
        const graph::TaskId id = try_steal((start + k) % cores, min_size);
        if (id != graph::kInvalidTask) return id;
      }
    }
    return graph::kInvalidTask;
  };

  auto dispatch_all = [&]() {
    // Keep assigning while an idle core can find work. Idle cores with
    // work on their own (affinity) deque are served before empty-handed
    // cores start stealing: because ready tasks are gated by their release
    // time anyway, letting the owner run its own task costs no makespan
    // and preserves locality.
    while (true) {
      int best = -1;
      for (unsigned c = 0; c < cores; ++c) {
        if (core_busy[c] || local_ready[c].empty()) continue;
        if (best < 0 ||
            core_avail[c] < core_avail[static_cast<unsigned>(best)]) {
          best = static_cast<int>(c);
        }
      }
      if (best < 0) {
        // No owner work pending: earliest-available idle core steals or
        // pulls from the global pool.
        for (unsigned c = 0; c < cores; ++c) {
          if (core_busy[c]) continue;
          if (best < 0 ||
              core_avail[c] < core_avail[static_cast<unsigned>(best)]) {
            best = static_cast<int>(c);
          }
        }
      }
      if (best < 0) return;
      const unsigned core = static_cast<unsigned>(best);
      const graph::TaskId id = pick_for_core(core);
      if (id == graph::kInvalidTask) return;

      const graph::Task& task = g.task(static_cast<graph::TaskId>(id));
      double start = std::max(core_avail[core],
                              release_time[static_cast<std::size_t>(id)]);
      const double ar = analysis_ready[static_cast<std::size_t>(id)];
      if (ar > start) {
        analysis_stall += ar - start;
        start = ar;
      }
      const double dur = options.task_overhead_ns +
                         task_duration_ns(task, core, caches, layout, machine,
                                          options.first_touch);
      record_event(events, task, id, core, start, start + dur);
      core_busy[core] = 1;
      busy_ns += dur;
      completions.push({start + dur, core, id});
    }
  };

  dispatch_all();
  double makespan = 0.0;
  while (!completions.empty()) {
    const Completion done = completions.top();
    completions.pop();
    makespan = std::max(makespan, done.time);
    core_busy[done.core] = 0;
    core_avail[done.core] = done.time;
    const std::int32_t done_bi =
        g.task(done.task).bi;
    for (graph::TaskId s : succ[static_cast<std::size_t>(done.task)]) {
      // Record piece affinity: a successor operating on the same block row
      // should run where that row's data is hot, even if a later (global)
      // predecessor is the one that finally releases it.
      if (done_bi >= 0 && g.task(s).bi == done_bi) {
        affinity[static_cast<std::size_t>(s)] =
            static_cast<std::int32_t>(done.core);
      }
      if (--remaining[static_cast<std::size_t>(s)] == 0) {
        make_ready(s, done.time, static_cast<std::int32_t>(done.core));
      }
    }
    dispatch_all();
  }

  result.makespan_seconds = makespan * 1e-9;
  result.misses = caches.totals();
  result.busy_fraction =
      makespan > 0 ? busy_ns / (makespan * static_cast<double>(cores)) : 0.0;
  result.steals = steals;
  result.analysis_stall_seconds = analysis_stall * 1e-9;
  return result;
}

} // namespace sts::sim
