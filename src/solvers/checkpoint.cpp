#include "solvers/checkpoint.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/obs.hpp"
#include "support/env.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"
#include "support/timer.hpp"

namespace sts::solver::ckpt {

namespace {

constexpr std::array<char, 8> kMagic = {'S', 'T', 'S', 'C', 'K', 'P', 'T', 0};
constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8 + 4 + 4;

// ---- payload serialization ----------------------------------------------

class Writer {
public:
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void doubles(const std::vector<double>& v) {
    u64(v.size());
    if (!v.empty()) raw(v.data(), v.size() * sizeof(double));
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::uint8_t> buf_;
};

class Reader {
public:
  Reader(const std::uint8_t* data, std::size_t size, const std::string& path)
      : data_(data), size_(size), path_(path) {}

  std::uint32_t u32() { return fixed<std::uint32_t>(); }
  std::uint64_t u64() { return fixed<std::uint64_t>(); }
  std::int64_t i64() { return fixed<std::int64_t>(); }
  double f64() { return fixed<double>(); }
  std::vector<double> doubles() {
    const std::uint64_t n = u64();
    if (n > (size_ - pos_) / sizeof(double)) {
      throw support::Error("checkpoint " + path_ +
                           ": truncated array (wants " + std::to_string(n) +
                           " doubles)");
    }
    std::vector<double> v(static_cast<std::size_t>(n));
    if (n != 0) {
      std::memcpy(v.data(), data_ + pos_,
                  static_cast<std::size_t>(n) * sizeof(double));
      pos_ += static_cast<std::size_t>(n) * sizeof(double);
    }
    return v;
  }
  void expect_exhausted() const {
    if (pos_ != size_) {
      throw support::Error("checkpoint " + path_ + ": " +
                           std::to_string(size_ - pos_) +
                           " trailing payload bytes");
    }
  }

private:
  template <typename T>
  T fixed() {
    if (size_ - pos_ < sizeof(T)) {
      throw support::Error("checkpoint " + path_ + ": truncated payload");
    }
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::string path_;
};

std::vector<std::uint8_t> serialize(const Checkpoint& c) {
  Writer w;
  if (c.kind == Kind::kLanczos) {
    const LanczosState& st = c.lanczos;
    w.u64(st.seed);
    w.i64(st.m);
    w.i64(st.cols);
    w.i64(st.iterations);
    w.doubles(st.alphas);
    w.doubles(st.betas);
    w.doubles(st.basis);
    w.doubles(st.q);
  } else if (c.kind == Kind::kCg) {
    const CgState& st = c.cg;
    w.u64(st.seed);
    w.i64(st.m);
    w.i64(st.iterations);
    w.f64(st.rho);
    w.doubles(st.x);
    w.doubles(st.r);
    w.doubles(st.p);
  } else {
    const LobpcgState& st = c.lobpcg;
    w.u64(st.seed);
    w.i64(st.m);
    w.i64(st.n);
    w.i64(st.iterations);
    w.i64(st.converged);
    w.doubles(st.theta);
    w.doubles(st.norms);
    w.doubles(st.x);
    w.doubles(st.ax);
    w.doubles(st.p);
    w.doubles(st.ap);
  }
  return w.take();
}

void check_size(const std::string& path, const char* field,
                std::size_t actual, std::int64_t expected) {
  if (expected < 0 ||
      actual != static_cast<std::size_t>(expected)) {
    throw support::Error("checkpoint " + path + ": " + field + " holds " +
                         std::to_string(actual) + " values, header implies " +
                         std::to_string(expected));
  }
}

Checkpoint deserialize(Kind kind, const std::uint8_t* payload,
                       std::size_t size, const std::string& path) {
  Checkpoint c;
  c.kind = kind;
  Reader r(payload, size, path);
  if (kind == Kind::kLanczos) {
    LanczosState& st = c.lanczos;
    st.seed = r.u64();
    st.m = r.i64();
    st.cols = r.i64();
    st.iterations = r.i64();
    st.alphas = r.doubles();
    st.betas = r.doubles();
    st.basis = r.doubles();
    st.q = r.doubles();
    r.expect_exhausted();
    if (st.m < 1 || st.cols < 2 || st.iterations < 0 ||
        st.iterations >= st.cols) {
      throw support::Error("checkpoint " + path +
                           ": inconsistent Lanczos dimensions");
    }
    check_size(path, "basis", st.basis.size(), st.m * st.cols);
    check_size(path, "q", st.q.size(), st.m);
    if (st.alphas.size() != st.betas.size() ||
        st.alphas.size() != static_cast<std::size_t>(st.iterations)) {
      throw support::Error("checkpoint " + path +
                           ": coefficient count disagrees with iteration "
                           "counter");
    }
  } else if (kind == Kind::kCg) {
    CgState& st = c.cg;
    st.seed = r.u64();
    st.m = r.i64();
    st.iterations = r.i64();
    st.rho = r.f64();
    st.x = r.doubles();
    st.r = r.doubles();
    st.p = r.doubles();
    r.expect_exhausted();
    if (st.m < 1 || st.iterations < 0) {
      throw support::Error("checkpoint " + path +
                           ": inconsistent CG dimensions");
    }
    check_size(path, "x", st.x.size(), st.m);
    check_size(path, "r", st.r.size(), st.m);
    check_size(path, "p", st.p.size(), st.m);
  } else {
    LobpcgState& st = c.lobpcg;
    st.seed = r.u64();
    st.m = r.i64();
    st.n = r.i64();
    st.iterations = r.i64();
    st.converged = r.i64();
    st.theta = r.doubles();
    st.norms = r.doubles();
    st.x = r.doubles();
    st.ax = r.doubles();
    st.p = r.doubles();
    st.ap = r.doubles();
    r.expect_exhausted();
    if (st.m < 1 || st.n < 1 || st.iterations < 0 || st.converged < 0 ||
        st.converged > st.n) {
      throw support::Error("checkpoint " + path +
                           ": inconsistent LOBPCG dimensions");
    }
    check_size(path, "theta", st.theta.size(), st.n);
    check_size(path, "norms", st.norms.size(), st.n);
    check_size(path, "X", st.x.size(), st.m * st.n);
    check_size(path, "AX", st.ax.size(), st.m * st.n);
    check_size(path, "P", st.p.size(), st.m * st.n);
    check_size(path, "AP", st.ap.size(), st.m * st.n);
  }
  return c;
}

// ---- I/O helpers ---------------------------------------------------------

void write_all(int fd, const void* data, std::size_t len,
               const std::string& path) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw support::Error("checkpoint " + path + ": write: " +
                           std::strerror(errno));
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
}

/// Best-effort fsync of the directory holding `path` so the rename that
/// published a checkpoint survives power loss too.
void sync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

} // namespace

const char* to_string(Kind k) {
  switch (k) {
    case Kind::kLanczos: return "lanczos";
    case Kind::kLobpcg: return "lobpcg";
    case Kind::kCg: return "cg";
  }
  return "?";
}

std::uint32_t crc32(const void* data, std::size_t len) noexcept {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int b = 0; b < 8; ++b) {
        c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xffffffffu;
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

void save(const Checkpoint& c, const std::string& path) {
  support::fault::check("ckpt:write");
  const support::Timer timer;

  const std::vector<std::uint8_t> payload = serialize(c);
  std::vector<std::uint8_t> bytes;
  bytes.reserve(kHeaderBytes + payload.size());
  auto put = [&bytes](const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    bytes.insert(bytes.end(), b, b + n);
  };
  put(kMagic.data(), kMagic.size());
  const std::uint32_t version = kFormatVersion;
  put(&version, sizeof version);
  const std::uint32_t kind = static_cast<std::uint32_t>(c.kind);
  put(&kind, sizeof kind);
  const std::uint64_t payload_len = payload.size();
  put(&payload_len, sizeof payload_len);
  const std::uint32_t crc = crc32(payload.data(), payload.size());
  put(&crc, sizeof crc);
  const std::uint32_t reserved = 0;
  put(&reserved, sizeof reserved);
  put(payload.data(), payload.size());

  // Same-directory temp name so the rename is atomic within one filesystem;
  // the pid suffix keeps concurrent writers (two daemons misconfigured onto
  // one checkpoint dir) from clobbering each other's partial files.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw support::Error("checkpoint " + tmp + ": open: " +
                         std::strerror(errno));
  }
  try {
    write_all(fd, bytes.data(), bytes.size(), tmp);
    if (::fsync(fd) != 0) {
      throw support::Error("checkpoint " + tmp + ": fsync: " +
                           std::strerror(errno));
    }
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    throw support::Error("checkpoint " + path + ": rename: " +
                         std::strerror(err));
  }
  sync_parent_dir(path);

  obs::counter("solver.ckpt_writes").add();
  obs::histogram("solver.ckpt_write_ns")
      .observe(static_cast<std::int64_t>(timer.seconds() * 1e9));
}

Checkpoint load(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw support::Error("checkpoint " + path + ": open: " +
                         std::strerror(errno));
  }
  std::vector<std::uint8_t> bytes;
  std::array<std::uint8_t, 1 << 16> buf;
  for (;;) {
    const ssize_t n = ::read(fd, buf.data(), buf.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      throw support::Error("checkpoint " + path + ": read: " +
                           std::strerror(err));
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), buf.data(), buf.data() + n);
  }
  ::close(fd);

  if (bytes.size() < kHeaderBytes) {
    throw support::Error("checkpoint " + path + ": short file (" +
                         std::to_string(bytes.size()) + " bytes)");
  }
  std::size_t pos = 0;
  auto take = [&bytes, &pos](void* p, std::size_t n) {
    std::memcpy(p, bytes.data() + pos, n);
    pos += n;
  };
  std::array<char, 8> magic;
  take(magic.data(), magic.size());
  if (magic != kMagic) {
    throw support::Error("checkpoint " + path + ": bad magic");
  }
  std::uint32_t version = 0;
  take(&version, sizeof version);
  if (version != kFormatVersion) {
    throw support::Error("checkpoint " + path + ": format version " +
                         std::to_string(version) + ", this build reads " +
                         std::to_string(kFormatVersion));
  }
  std::uint32_t kind_raw = 0;
  take(&kind_raw, sizeof kind_raw);
  if (kind_raw != static_cast<std::uint32_t>(Kind::kLanczos) &&
      kind_raw != static_cast<std::uint32_t>(Kind::kLobpcg) &&
      kind_raw != static_cast<std::uint32_t>(Kind::kCg)) {
    throw support::Error("checkpoint " + path + ": unknown solver kind " +
                         std::to_string(kind_raw));
  }
  std::uint64_t payload_len = 0;
  take(&payload_len, sizeof payload_len);
  std::uint32_t crc = 0;
  take(&crc, sizeof crc);
  std::uint32_t reserved = 0;
  take(&reserved, sizeof reserved);
  if (payload_len != bytes.size() - kHeaderBytes) {
    throw support::Error("checkpoint " + path + ": payload length " +
                         std::to_string(payload_len) + " disagrees with file "
                         "size");
  }
  const std::uint8_t* payload = bytes.data() + kHeaderBytes;
  const std::uint32_t actual =
      crc32(payload, static_cast<std::size_t>(payload_len));
  if (actual != crc) {
    throw support::Error("checkpoint " + path + ": CRC mismatch (stored " +
                         std::to_string(crc) + ", computed " +
                         std::to_string(actual) + ")");
  }
  return deserialize(static_cast<Kind>(kind_raw), payload,
                     static_cast<std::size_t>(payload_len), path);
}

int effective_every(int requested) {
  if (requested > 0) return requested;
  const std::int64_t env = support::env_int("STS_CKPT_EVERY", 10);
  return env > 0 ? static_cast<int>(env) : 10;
}

} // namespace sts::solver::ckpt
