#include "solvers/cg.hpp"

#include <cmath>
#include <utility>

#include "bsp/kernels.hpp"
#include "flux/dataflow.hpp"
#include "la/blas.hpp"
#include "la/sptrsv.hpp"
#include "obs/obs.hpp"
#include "solvers/checkpoint.hpp"
#include "sparse/ic0.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace sts::solver {

namespace {

/// Loss-of-positivity floor: p^T A p at or below it means A (or the
/// preconditioned operator) stopped looking SPD and the step length would
/// be garbage.
constexpr double kPositivityFloor = 0.0;

// ---- CSR triangular solves (the libcsr preconditioner path) --------------

/// x = L^-1 b over the lower-triangular CSR factor. Row entries are sorted
/// by column with the diagonal last (Csr::from_coo sorts; IC(0) patterns
/// always retain the diagonal). x must not alias b.
void csr_trsv_forward(const sparse::Csr& l, std::span<const double> b,
                      std::span<double> x) {
  const auto rp = l.rowptr();
  const auto ci = l.colidx();
  const auto va = l.values();
  const index_t n = l.rows();
  for (index_t i = 0; i < n; ++i) {
    const std::int64_t lo = rp[static_cast<std::size_t>(i)];
    const std::int64_t hi = rp[static_cast<std::size_t>(i) + 1];
    double acc = b[static_cast<std::size_t>(i)];
    for (std::int64_t t = lo; t < hi - 1; ++t) {
      acc -= va[static_cast<std::size_t>(t)] *
             x[static_cast<std::size_t>(ci[static_cast<std::size_t>(t)])];
    }
    x[static_cast<std::size_t>(i)] =
        acc / va[static_cast<std::size_t>(hi - 1)];
  }
}

/// x = L^-T b, column-oriented: row i of L is column i of L^T, so each
/// solved entry scatters into the rows above it. x and b may alias.
void csr_trsv_backward(const sparse::Csr& l, std::span<const double> b,
                       std::span<double> x) {
  if (x.data() != b.data()) std::copy(b.begin(), b.end(), x.begin());
  const auto rp = l.rowptr();
  const auto ci = l.colidx();
  const auto va = l.values();
  for (index_t i = l.rows(); i-- > 0;) {
    const std::int64_t lo = rp[static_cast<std::size_t>(i)];
    const std::int64_t hi = rp[static_cast<std::size_t>(i) + 1];
    const double xi = x[static_cast<std::size_t>(i)] /
                      va[static_cast<std::size_t>(hi - 1)];
    x[static_cast<std::size_t>(i)] = xi;
    for (std::int64_t t = lo; t < hi - 1; ++t) {
      x[static_cast<std::size_t>(ci[static_cast<std::size_t>(t)])] -=
          va[static_cast<std::size_t>(t)] * xi;
    }
  }
}

// ---- preconditioner ------------------------------------------------------

/// One preconditioner instance, built once per solve. The IC(0) factor is
/// kept in both layouts: CSR for the libcsr baseline's sequential solves,
/// CSB (+ the SpTRSV plan) for the blocked and DAG-scheduled paths.
struct Preconditioner {
  Precond kind = Precond::kNone;
  std::vector<double> inv_diag; // jacobi
  sparse::Csr lower_csr;        // ic0
  sparse::Csb lower_csb;        // ic0, CSB block grid
  la::SptrsvPlan plan;          // ic0, block DAG + levels
  std::vector<double> tmp;      // L^-1 r staging between the two solves
  double shift = 0.0;
};

Preconditioner make_precond(const sparse::Csr& a, Precond kind,
                            index_t block_size) {
  Preconditioner pre;
  pre.kind = kind;
  if (kind == Precond::kJacobi) {
    pre.inv_diag = sparse::diagonal(a);
    for (double& d : pre.inv_diag) d = 1.0 / d;
  } else if (kind == Precond::kIc0) {
    sparse::Ic0Result fac = sparse::ic0_factor(a);
    pre.shift = fac.shift;
    pre.lower_csb = sparse::Csb::from_csr(fac.lower, block_size);
    pre.lower_csr = std::move(fac.lower);
    pre.plan = la::SptrsvPlan::build(pre.lower_csb);
    pre.tmp.assign(static_cast<std::size_t>(a.rows()), 0.0);
  }
  return pre;
}

/// How apply() runs the IC(0) triangular solves.
enum class TrsvMode { kCsr, kCsbSequential, kCsbDag };

/// z = M^-1 r. `sched`/`dmap` are only read in kCsbDag mode.
void apply_precond(Preconditioner& pre, TrsvMode mode,
                   std::span<const double> r, std::span<double> z,
                   flux::Scheduler* sched, const sparse::Csb::DomainMap* dmap) {
  switch (pre.kind) {
    case Precond::kNone:
      std::copy(r.begin(), r.end(), z.begin());
      return;
    case Precond::kJacobi: {
      const std::vector<double>& d = pre.inv_diag;
      for (std::size_t i = 0; i < z.size(); ++i) z[i] = r[i] * d[i];
      return;
    }
    case Precond::kIc0:
      switch (mode) {
        case TrsvMode::kCsr:
          csr_trsv_forward(pre.lower_csr, r, pre.tmp);
          csr_trsv_backward(pre.lower_csr, pre.tmp, z);
          return;
        case TrsvMode::kCsbSequential:
          la::sptrsv_forward(pre.lower_csb, pre.plan, r, pre.tmp);
          la::sptrsv_backward(pre.lower_csb, pre.plan, pre.tmp, z);
          return;
        case TrsvMode::kCsbDag:
          la::sptrsv_forward(pre.lower_csb, pre.plan, r, pre.tmp, *sched,
                             dmap);
          la::sptrsv_backward(pre.lower_csb, pre.plan, pre.tmp, z, *sched,
                              dmap);
          return;
      }
  }
}

// ---- shared state + checkpointing ----------------------------------------

struct State {
  index_t m = 0;
  double norm_b = 0.0;
  double rho = 0.0; // r . z at the current iteration boundary
  std::vector<double> b, x, r, p, z, q;
};

State make_state(index_t m, const SolverOptions& options) {
  State s;
  s.m = m;
  const std::size_t n = static_cast<std::size_t>(m);
  s.b.resize(n);
  support::Xoshiro256 rng(options.seed);
  for (double& v : s.b) v = rng.uniform(-1.0, 1.0);
  s.norm_b = la::nrm2(s.b);
  s.x.assign(n, 0.0);
  s.r = s.b;
  s.p.assign(n, 0.0);
  s.z.assign(n, 0.0);
  s.q.assign(n, 0.0);
  return s;
}

/// Applies options.restore (when set): x/r/p/rho come from the checkpoint,
/// b is regenerated from the (validated) seed. Returns the iteration to
/// resume from.
int apply_restore(const SolverOptions& options, State& s) {
  if (options.restore == nullptr) return 0;
  const ckpt::Checkpoint& c = *options.restore;
  if (c.kind != ckpt::Kind::kCg) {
    throw support::Error(std::string("cg restore: checkpoint holds ") +
                         ckpt::to_string(c.kind) + " state");
  }
  const ckpt::CgState& st = c.cg;
  if (st.m != s.m) {
    throw support::Error("cg restore: checkpoint system size " +
                         std::to_string(st.m) + ", this solve needs " +
                         std::to_string(s.m));
  }
  if (st.seed != options.seed) {
    throw support::Error("cg restore: checkpoint seed " +
                         std::to_string(st.seed) + " != options.seed " +
                         std::to_string(options.seed));
  }
  s.x = st.x;
  s.r = st.r;
  s.p = st.p;
  s.rho = st.rho;
  obs::counter("solver.ckpt_restores").add();
  return static_cast<int>(st.iterations);
}

void maybe_checkpoint(const SolverOptions& options, const State& s,
                      int completed, int every) {
  if (options.ckpt_path.empty() || completed % every != 0) return;
  ckpt::Checkpoint c;
  c.kind = ckpt::Kind::kCg;
  ckpt::CgState& st = c.cg;
  st.seed = options.seed;
  st.m = s.m;
  st.iterations = completed;
  st.rho = s.rho;
  st.x = s.x;
  st.r = s.r;
  st.p = s.p;
  try {
    ckpt::save(c, options.ckpt_path);
  } catch (const std::exception& e) {
    obs::counter("solver.ckpt_errors").add();
    obs::instant(std::string("ckpt: ") + e.what(), "solver");
  }
}

void publish_residual(double rel) {
  // Gauges carry integers; parts-per-billion keeps 9 digits of a relative
  // residual visible on the scrape endpoint without a float gauge type.
  obs::gauge("cg.residual_ppb")
      .observe(static_cast<std::int64_t>(rel * 1e9));
}

// --------------------------------------------------------------------------
// BSP versions (libcsr / libcsb)
// --------------------------------------------------------------------------

CgResult run_bsp(const sparse::Csr* csr, const sparse::Csb& csb,
                 const CgOptions& cg_options, const SolverOptions& options,
                 Preconditioner& pre) {
  State s = make_state(csb.rows(), options);
  const TrsvMode mode =
      csr != nullptr ? TrsvMode::kCsr : TrsvMode::kCsbSequential;
  const char* label = csr != nullptr ? "cg.libcsr" : "cg.libcsb";

  CgResult result;
  const int start = apply_restore(options, s);
  const int every = ckpt::effective_every(options.ckpt_every);
  if (start == 0) {
    apply_precond(pre, mode, s.r, s.z, nullptr, nullptr);
    s.p = s.z;
    s.rho = bsp::dot(s.r, s.z);
  }
  double rel = la::nrm2(s.r) / s.norm_b;

  const support::Timer timer;
  for (int i = start; i < cg_options.max_iterations && rel > cg_options.tol;
       ++i) {
    poll_cancel(options);
    obs::IterScope iter(label, i);
    if (csr != nullptr) {
      bsp::spmv(*csr, s.p, s.q);
    } else {
      bsp::spmv(csb, s.p, s.q);
    }
    const double pq = bsp::dot(s.p, s.q);
    if (!std::isfinite(pq)) {
      result.status = SolverStatus::kNotFinite;
      break;
    }
    if (pq <= kPositivityFloor) {
      result.status = SolverStatus::kBreakdown;
      break;
    }
    const double alpha = s.rho / pq;
    bsp::axpy(alpha, s.p, s.x);
    bsp::axpy(-alpha, s.q, s.r);
    apply_precond(pre, mode, s.r, s.z, nullptr, nullptr);
    const double rho_new = bsp::dot(s.r, s.z);
    const double rr = bsp::dot(s.r, s.r);
    if (!std::isfinite(rho_new) || !std::isfinite(rr)) {
      result.status = SolverStatus::kNotFinite;
      break;
    }
    const double beta = rho_new / s.rho;
    s.rho = rho_new;
    std::vector<double>* p = &s.p;
    const std::vector<double>* z = &s.z;
    const index_t m = s.m;
#pragma omp parallel for schedule(static)
    for (index_t rI = 0; rI < m; ++rI) {
      (*p)[static_cast<std::size_t>(rI)] =
          (*z)[static_cast<std::size_t>(rI)] +
          beta * (*p)[static_cast<std::size_t>(rI)];
    }
    rel = std::sqrt(rr) / s.norm_b;
    ++result.iterations;
    result.residual_norms.push_back(rel);
    iter.metric("residual", rel);
    publish_residual(rel);
    ++result.timing.iterations;
    maybe_checkpoint(options, s, i + 1, every);
  }
  result.timing.total_seconds = timer.seconds();
  result.relative_residual = rel;
  result.converged =
      result.status == SolverStatus::kOk && rel <= cg_options.tol;
  result.x = std::move(s.x);
  return result;
}

// --------------------------------------------------------------------------
// flux (HPX-style) version: SpMV and the vector updates run as per-block
// dataflow tasks threaded through futures exactly like the Lanczos flux
// driver; the IC(0) triangular solves run as the DAG-scheduled SpTRSV.
// CG's two inner products are genuine synchronization points (alpha and
// beta are host-side scalars), so each iteration syncs twice — the rest of
// the graph overlaps freely across those barriers.
// --------------------------------------------------------------------------

CgResult run_flux(const sparse::Csb& csb, const CgOptions& cg_options,
                  const SolverOptions& options, Preconditioner& pre) {
  State s = make_state(csb.rows(), options);
  const index_t b = options.block_size;
  STS_EXPECTS(csb.block_size() == b);
  const index_t np = csb.block_rows();
  const index_t m = s.m;

  std::unique_ptr<flux::Scheduler> owned_sched;
  flux::Scheduler& sched = acquire_flux_pool(options, owned_sched);
  flux::QuiesceOnExit quiesce(sched);
  perf::TraceRecorder* trace = options.trace;

  using Fut = flux::shared_future<void>;
  auto ready = [] { return flux::make_ready_future(); };

  auto traced = [&](graph::KernelKind kind, std::int32_t bi, auto fn) {
    return [&sched, trace, kind, bi, fn]() {
      const obs::prof::TaskMark mark("flux", kind);
      if (trace == nullptr && !obs::task_timing_enabled()) {
        fn();
        return;
      }
      perf::TaskEvent ev;
      ev.kind = kind;
      ev.task_id = bi;
      ev.worker = std::max(0, sched.current_worker());
      ev.start_ns = support::now_ns();
      fn();
      ev.end_ns = support::now_ns();
      obs::publish_task("flux", ev, trace);
    };
  };

  auto rows_in = [&](index_t p) { return std::min(b, m - p * b); };
  const sparse::Csb::DomainMap dmap =
      csb.partition_block_rows(options.numa_domains);
  auto domain_of = [&](index_t p) -> int {
    return options.numa_domains > 1 ? dmap.owner(p) : -1;
  };
  // The factor's own stripe partition: its block grid differs from A's
  // (different nnz distribution), so the SpTRSV tasks hint through a map
  // computed on the factor, matching how place_csb would stripe it.
  sparse::Csb::DomainMap fdmap;
  const sparse::Csb::DomainMap* fdmap_ptr = nullptr;
  if (pre.kind == Precond::kIc0 && options.numa_domains > 1) {
    fdmap = pre.lower_csb.partition_block_rows(options.numa_domains);
    fdmap_ptr = &fdmap;
  }

  // Per-piece last-writer futures and outstanding-reader sets (see the
  // dependence walkthrough in DESIGN.md §16).
  std::vector<Fut> p_w(static_cast<std::size_t>(np), ready());
  std::vector<Fut> q_w(static_cast<std::size_t>(np), ready());
  std::vector<Fut> r_w(static_cast<std::size_t>(np), ready());
  std::vector<Fut> x_w(static_cast<std::size_t>(np), ready());
  std::vector<Fut> z_w(static_cast<std::size_t>(np), ready());
  std::vector<std::vector<Fut>> p_r(static_cast<std::size_t>(np));
  std::vector<std::vector<Fut>> q_r(static_cast<std::size_t>(np));
  std::vector<std::vector<Fut>> r_r(static_cast<std::size_t>(np));
  std::vector<std::vector<Fut>> z_r(static_cast<std::size_t>(np));

  CgResult result;
  const int start = apply_restore(options, s);
  const int every = ckpt::effective_every(options.ckpt_every);
  if (start == 0) {
    // Setup (off the iteration clock): z0, p0, rho0 computed in place —
    // the scheduler is idle here, so the sequential apply is fine.
    apply_precond(pre, TrsvMode::kCsbSequential, s.r, s.z, nullptr, nullptr);
    s.p = s.z;
    s.rho = la::dot(s.r, s.z);
  }
  double rel = la::nrm2(s.r) / s.norm_b;

  std::vector<double>* x = &s.x;
  std::vector<double>* r = &s.r;
  std::vector<double>* p = &s.p;
  std::vector<double>* z = &s.z;
  std::vector<double>* q = &s.q;
  const sparse::Csb* a = &csb;

  // Host-side scalar cells tasks read; every reader is submitted after the
  // host write and ordered behind it by a future the host synced on.
  double alpha = 0.0;
  double beta = 0.0;
  double pq = 0.0;
  double rho_new = 0.0;
  double rr = 0.0;
  std::vector<double> pq_part(static_cast<std::size_t>(np), 0.0);
  std::vector<double> rho_part(static_cast<std::size_t>(np), 0.0);
  std::vector<double> rr_part(static_cast<std::size_t>(np), 0.0);
  std::vector<double>* pqp = &pq_part;
  std::vector<double>* rhop = &rho_part;
  std::vector<double>* rrp = &rr_part;

  const support::Timer timer;
  for (int i = start; i < cg_options.max_iterations && rel > cg_options.tol;
       ++i) {
    poll_cancel(options);
    obs::IterScope iter("cg.flux", i);

    // q = A p: zero chain + one task per nonempty block.
    std::vector<Fut> q_chain(static_cast<std::size_t>(np));
    for (index_t bi = 0; bi < np; ++bi) {
      const index_t r0 = bi * b;
      const index_t nr = rows_in(bi);
      auto zero = traced(graph::KernelKind::kZero,
                         static_cast<std::int32_t>(bi), [q, r0, nr] {
                           std::fill_n(q->begin() + r0, nr, 0.0);
                         });
      q_chain[static_cast<std::size_t>(bi)] =
          flux::dataflow_hint(sched, domain_of(bi), flux::unwrapping(zero),
                              q_w[static_cast<std::size_t>(bi)],
                              std::move(q_r[static_cast<std::size_t>(bi)]))
              .share();
      q_r[static_cast<std::size_t>(bi)].clear();
    }
    for (index_t bi = 0; bi < np; ++bi) {
      for (index_t bj = 0; bj < np; ++bj) {
        if (options.skip_empty_blocks && a->block_empty(bi, bj)) continue;
        auto body = traced(graph::KernelKind::kSpMV,
                           static_cast<std::int32_t>(bi), [p, q, a, bi, bj] {
                             sparse::csb_block_spmv(
                                 *a, bi, bj,
                                 {p->data(), p->size()},
                                 {q->data(), q->size()});
                           });
        Fut f = flux::dataflow_hint(sched, domain_of(bi),
                                    flux::unwrapping(body),
                                    q_chain[static_cast<std::size_t>(bi)],
                                    p_w[static_cast<std::size_t>(bj)])
                    .share();
        q_chain[static_cast<std::size_t>(bi)] = f;
        p_r[static_cast<std::size_t>(bj)].push_back(f);
      }
    }
    for (index_t bi = 0; bi < np; ++bi) {
      q_w[static_cast<std::size_t>(bi)] =
          q_chain[static_cast<std::size_t>(bi)];
    }

    // pq = p . q: partials, reduce, host sync (alpha needs the value).
    std::vector<Fut> dp(static_cast<std::size_t>(np));
    for (index_t pi = 0; pi < np; ++pi) {
      const index_t r0 = pi * b;
      const index_t nr = rows_in(pi);
      auto body = traced(graph::KernelKind::kDotPartial,
                         static_cast<std::int32_t>(pi), [p, q, pqp, r0, nr,
                                                         pi] {
                           (*pqp)[static_cast<std::size_t>(pi)] = la::dot(
                               {p->data() + r0, static_cast<std::size_t>(nr)},
                               {q->data() + r0, static_cast<std::size_t>(nr)});
                         });
      dp[static_cast<std::size_t>(pi)] =
          flux::dataflow_hint(sched, domain_of(pi), flux::unwrapping(body),
                              q_w[static_cast<std::size_t>(pi)],
                              p_w[static_cast<std::size_t>(pi)])
              .share();
    }
    double* pq_cell = &pq;
    Fut pq_f = flux::dataflow(
                   sched,
                   flux::unwrapping(traced(graph::KernelKind::kReduce, -1,
                                           [pqp, pq_cell, np] {
                                             double acc = 0.0;
                                             for (index_t pi = 0; pi < np;
                                                  ++pi) {
                                               acc += (*pqp)[static_cast<
                                                   std::size_t>(pi)];
                                             }
                                             *pq_cell = acc;
                                           })),
                   dp)
                   .share();
    pq_f.get(&sched);
    if (!std::isfinite(pq)) {
      result.status = SolverStatus::kNotFinite;
      break;
    }
    if (pq <= kPositivityFloor) {
      result.status = SolverStatus::kBreakdown;
      break;
    }
    alpha = s.rho / pq;

    // x += alpha p ; r -= alpha q.
    const double* alpha_cell = &alpha;
    for (index_t pi = 0; pi < np; ++pi) {
      const index_t r0 = pi * b;
      const index_t nr = rows_in(pi);
      auto xbody = traced(graph::KernelKind::kAxpy,
                          static_cast<std::int32_t>(pi),
                          [x, p, alpha_cell, r0, nr] {
                            la::axpy(*alpha_cell,
                                     {p->data() + r0,
                                      static_cast<std::size_t>(nr)},
                                     {x->data() + r0,
                                      static_cast<std::size_t>(nr)});
                          });
      Fut xf = flux::dataflow_hint(sched, domain_of(pi),
                                   flux::unwrapping(xbody),
                                   x_w[static_cast<std::size_t>(pi)],
                                   p_w[static_cast<std::size_t>(pi)])
                   .share();
      x_w[static_cast<std::size_t>(pi)] = xf;
      p_r[static_cast<std::size_t>(pi)].push_back(xf);

      auto rbody = traced(graph::KernelKind::kAxpy,
                          static_cast<std::int32_t>(pi),
                          [r, q, alpha_cell, r0, nr] {
                            la::axpy(-*alpha_cell,
                                     {q->data() + r0,
                                      static_cast<std::size_t>(nr)},
                                     {r->data() + r0,
                                      static_cast<std::size_t>(nr)});
                          });
      Fut rf = flux::dataflow_hint(sched, domain_of(pi),
                                   flux::unwrapping(rbody),
                                   r_w[static_cast<std::size_t>(pi)],
                                   q_w[static_cast<std::size_t>(pi)],
                                   std::move(r_r[static_cast<std::size_t>(pi)]))
                   .share();
      r_w[static_cast<std::size_t>(pi)] = rf;
      r_r[static_cast<std::size_t>(pi)].clear();
      q_r[static_cast<std::size_t>(pi)].push_back(rf);
    }

    // z = M^-1 r.
    if (pre.kind == Precond::kIc0) {
      // The DAG solves read all of r and write all of z: drain the r
      // writers and z readers first, then run the two solves — their own
      // tasks carry the level-schedule dependencies internally.
      for (index_t pi = 0; pi < np; ++pi) {
        r_w[static_cast<std::size_t>(pi)].get(&sched);
        for (Fut& f : z_r[static_cast<std::size_t>(pi)]) f.get(&sched);
        z_r[static_cast<std::size_t>(pi)].clear();
      }
      apply_precond(pre, TrsvMode::kCsbDag, s.r, s.z, &sched, fdmap_ptr);
      for (index_t pi = 0; pi < np; ++pi) {
        z_w[static_cast<std::size_t>(pi)] = ready();
      }
    } else {
      Preconditioner* prep = &pre;
      for (index_t pi = 0; pi < np; ++pi) {
        const index_t r0 = pi * b;
        const index_t nr = rows_in(pi);
        auto body = traced(graph::KernelKind::kScale,
                           static_cast<std::int32_t>(pi),
                           [prep, r, z, r0, nr] {
                             if (prep->kind == Precond::kJacobi) {
                               const std::vector<double>& d = prep->inv_diag;
                               for (index_t k = 0; k < nr; ++k) {
                                 (*z)[static_cast<std::size_t>(r0 + k)] =
                                     (*r)[static_cast<std::size_t>(r0 + k)] *
                                     d[static_cast<std::size_t>(r0 + k)];
                               }
                             } else {
                               std::copy_n(r->begin() + r0, nr,
                                           z->begin() + r0);
                             }
                           });
        Fut zf = flux::dataflow_hint(
                     sched, domain_of(pi), flux::unwrapping(body),
                     r_w[static_cast<std::size_t>(pi)],
                     std::move(z_r[static_cast<std::size_t>(pi)]))
                     .share();
        z_w[static_cast<std::size_t>(pi)] = zf;
        z_r[static_cast<std::size_t>(pi)].clear();
        r_r[static_cast<std::size_t>(pi)].push_back(zf);
      }
    }

    // rho_new = r . z and rr = r . r in one partial wave, reduce, sync.
    std::vector<Fut> rp(static_cast<std::size_t>(np));
    for (index_t pi = 0; pi < np; ++pi) {
      const index_t r0 = pi * b;
      const index_t nr = rows_in(pi);
      auto body = traced(graph::KernelKind::kDotPartial,
                         static_cast<std::int32_t>(pi),
                         [r, z, rhop, rrp, r0, nr, pi] {
                           const std::span<const double> rs{
                               r->data() + r0, static_cast<std::size_t>(nr)};
                           (*rhop)[static_cast<std::size_t>(pi)] = la::dot(
                               rs, {z->data() + r0,
                                    static_cast<std::size_t>(nr)});
                           (*rrp)[static_cast<std::size_t>(pi)] =
                               la::dot(rs, rs);
                         });
      Fut f = flux::dataflow_hint(sched, domain_of(pi),
                                  flux::unwrapping(body),
                                  z_w[static_cast<std::size_t>(pi)],
                                  r_w[static_cast<std::size_t>(pi)])
                  .share();
      rp[static_cast<std::size_t>(pi)] = f;
      r_r[static_cast<std::size_t>(pi)].push_back(f);
      z_r[static_cast<std::size_t>(pi)].push_back(f);
    }
    double* rho_cell = &rho_new;
    double* rr_cell = &rr;
    Fut rho_f =
        flux::dataflow(sched,
                       flux::unwrapping(traced(
                           graph::KernelKind::kReduce, -1,
                           [rhop, rrp, rho_cell, rr_cell, np] {
                             double arho = 0.0;
                             double arr = 0.0;
                             for (index_t pi = 0; pi < np; ++pi) {
                               arho += (*rhop)[static_cast<std::size_t>(pi)];
                               arr += (*rrp)[static_cast<std::size_t>(pi)];
                             }
                             *rho_cell = arho;
                             *rr_cell = arr;
                           })),
                       rp)
            .share();
    rho_f.get(&sched);
    if (!std::isfinite(rho_new) || !std::isfinite(rr)) {
      result.status = SolverStatus::kNotFinite;
      break;
    }
    beta = rho_new / s.rho;
    s.rho = rho_new;

    // p = z + beta p.
    const double* beta_cell = &beta;
    for (index_t pi = 0; pi < np; ++pi) {
      const index_t r0 = pi * b;
      const index_t nr = rows_in(pi);
      auto body = traced(graph::KernelKind::kScale,
                         static_cast<std::int32_t>(pi),
                         [p, z, beta_cell, r0, nr] {
                           const double bb = *beta_cell;
                           for (index_t k = 0; k < nr; ++k) {
                             (*p)[static_cast<std::size_t>(r0 + k)] =
                                 (*z)[static_cast<std::size_t>(r0 + k)] +
                                 bb * (*p)[static_cast<std::size_t>(r0 + k)];
                           }
                         });
      Fut pf = flux::dataflow_hint(
                   sched, domain_of(pi), flux::unwrapping(body),
                   p_w[static_cast<std::size_t>(pi)],
                   z_w[static_cast<std::size_t>(pi)],
                   std::move(p_r[static_cast<std::size_t>(pi)]))
                   .share();
      p_w[static_cast<std::size_t>(pi)] = pf;
      p_r[static_cast<std::size_t>(pi)].clear();
      z_r[static_cast<std::size_t>(pi)].push_back(pf);
    }

    rel = std::sqrt(rr) / s.norm_b;
    ++result.iterations;
    result.residual_norms.push_back(rel);
    iter.metric("residual", rel);
    publish_residual(rel);
    ++result.timing.iterations;
    // Checkpointing needs x/r/p fully written, not just the reduce gets.
    if (!options.ckpt_path.empty() && (i + 1) % every == 0) {
      sched.wait_for_quiescence();
      maybe_checkpoint(options, s, i + 1, every);
    }
  }
  quiesce.dismiss();
  sched.wait_for_quiescence();
  result.timing.total_seconds = timer.seconds();
  result.relative_residual = rel;
  result.converged =
      result.status == SolverStatus::kOk && rel <= cg_options.tol;
  result.x = std::move(s.x);
  return result;
}

} // namespace

const char* to_string(Precond p) {
  switch (p) {
    case Precond::kNone: return "none";
    case Precond::kJacobi: return "jacobi";
    case Precond::kIc0: return "ic0";
  }
  return "?";
}

CgResult cg(const sparse::Csr& csr, const sparse::Csb& csb, Version v,
            const CgOptions& cg_options, const SolverOptions& options) {
  validate(options);
  if (cg_options.max_iterations < 1) {
    throw support::Error("cg: max_iterations must be >= 1, got " +
                         std::to_string(cg_options.max_iterations));
  }
  if (!(cg_options.tol > 0.0)) {
    throw support::Error("cg: tolerance must be positive");
  }
  if (csb.rows() != csb.cols()) {
    throw support::Error("cg: matrix must be square, got " +
                         std::to_string(csb.rows()) + " x " +
                         std::to_string(csb.cols()));
  }
  if (csb.block_size() != options.block_size) {
    throw support::Error("cg: CSB block size " +
                         std::to_string(csb.block_size()) +
                         " does not match options.block_size " +
                         std::to_string(options.block_size));
  }
  STS_EXPECTS(csr.rows() == csb.rows());
#ifdef _OPENMP
  omp_set_num_threads(static_cast<int>(options.threads));
#endif
  // The factor always comes from CSR (IC(0) is row-oriented); the CSB
  // re-blocking inside uses the solve's block size so the SpTRSV DAG and
  // the SpMV grid partition the rows identically.
  Preconditioner pre =
      make_precond(csr, cg_options.precond, options.block_size);

  CgResult result;
  switch (v) {
    case Version::kLibCsr:
      result = run_bsp(&csr, csb, cg_options, options, pre);
      break;
    case Version::kLibCsb:
      result = run_bsp(nullptr, csb, cg_options, options, pre);
      break;
    case Version::kFlux:
      result = run_flux(csb, cg_options, options, pre);
      break;
    case Version::kDs:
    case Version::kRgt:
      throw support::Error(std::string("cg: version ") + to_string(v) +
                           " is not implemented (cg supports libcsr, "
                           "libcsb, hpx)");
  }
  result.precond_shift = pre.shift;
  if (pre.kind == Precond::kIc0) result.level_span = pre.plan.level_span();
  return result;
}

} // namespace sts::solver
