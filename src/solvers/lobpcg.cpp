#include "solvers/lobpcg.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>

#include "bsp/kernels.hpp"
#include "ds/executor.hpp"
#include "ds/program.hpp"
#include "flux/dataflow.hpp"
#include "la/eig.hpp"
#include "obs/obs.hpp"
#include "rgt/runtime.hpp"
#include "solvers/checkpoint.hpp"
#include "support/timer.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace sts::solver {

namespace {

using la::DenseMatrix;

/// Small (n x n and 3n x 3n) matrices shared by every version. Names match
/// the recipe in lobpcg.hpp; gaIJ/gbIJ are the Gram blocks of
/// S = [X W P] against AS / S.
struct Smalls {
  DenseMatrix M, RR, CXW, GWW, WSC;
  DenseMatrix ga01, ga02, ga11, ga12, ga22;
  DenseMatrix gb00, gb01, gb02, gb11, gb12, gb22;
  DenseMatrix CX, CW, CP;
  DenseMatrix norms; // nev x 1 residual norms
  std::vector<double> theta;
  int converged = 0;
  // Degradation flags checked at the per-iteration barrier: set by the
  // small-task bodies (which run on workers and must not throw).
  bool rr_failed = false; // Rayleigh-Ritz pencil singular beyond repair
  bool nonfinite = false; // NaN/Inf reached residual norms or Gram blocks

  explicit Smalls(index_t n)
      : M(n, n), RR(n, n), CXW(n, n), GWW(n, n), WSC(n, n), ga01(n, n),
        ga02(n, n), ga11(n, n), ga12(n, n), ga22(n, n), gb00(n, n),
        gb01(n, n), gb02(n, n), gb11(n, n), gb12(n, n), gb22(n, n), CX(n, n),
        CW(n, n), CP(n, n), norms(n, 1), theta(static_cast<std::size_t>(n)) {}
};

struct State {
  index_t m = 0;
  index_t n = 0;
  DenseMatrix X, AX, W, AW, P, AP, R, Xn, AXn, Pn, APn;
  Smalls sm;

  State(index_t m_in, index_t n_in, bool first_touch)
      : m(m_in), n(n_in), X(m_in, n_in, first_touch),
        AX(m_in, n_in, first_touch), W(m_in, n_in, first_touch),
        AW(m_in, n_in, first_touch), P(m_in, n_in, first_touch),
        AP(m_in, n_in, first_touch), R(m_in, n_in, first_touch),
        Xn(m_in, n_in, first_touch), AXn(m_in, n_in, first_touch),
        Pn(m_in, n_in, first_touch), APn(m_in, n_in, first_touch),
        sm(n_in) {}
};

State make_state(const sparse::Csb& a, const LobpcgOptions& options) {
  State s(a.rows(), options.nev, options.first_touch);
  support::Xoshiro256 rng(options.seed);
  s.X.fill_random(rng, -1.0, 1.0);
  la::orthonormalize_columns(s.X.view());
  bsp::spmm(a, s.X.view(), s.AX.view()); // setup, excluded from timing
  return s;
}

// --- shared small-task bodies (identical math in every version) ---------

void body_conv_check(Smalls* sm, double tol) {
  const index_t n = sm->RR.rows();
  int converged = 0;
  for (index_t j = 0; j < n; ++j) {
    const double norm = std::sqrt(std::max(0.0, sm->RR.at(j, j)));
    sm->norms.at(j, 0) = norm;
    if (!std::isfinite(norm)) sm->nonfinite = true;
    if (norm < tol) ++converged;
  }
  sm->converged = converged;
}

/// WSC = L^{-T} for L = chol(GWW + jitter I): W := R * WSC has orthonormal
/// columns. Escalating jitter guards rank-deficient residual blocks.
void body_w_normalizer(Smalls* sm) {
  const index_t n = sm->GWW.rows();
  double jitter = 0.0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    DenseMatrix l(n, n);
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = 0; j < n; ++j) {
        l.at(i, j) = sm->GWW.at(i, j) + (i == j ? jitter : 0.0);
      }
    }
    if (la::cholesky_lower(l.view())) {
      // WSC = L^{-T}: solve L^T WSC = I.
      sm->WSC.fill(0.0);
      for (index_t i = 0; i < n; ++i) sm->WSC.at(i, i) = 1.0;
      la::solve_lower_transposed(l.view(), sm->WSC.view());
      return;
    }
    jitter = jitter == 0.0 ? 1e-12 : jitter * 100.0;
  }
  // Hopeless block: fall back to identity (W stays unnormalized).
  sm->WSC.fill(0.0);
  for (index_t i = 0; i < n; ++i) sm->WSC.at(i, i) = 1.0;
}

/// Rayleigh-Ritz on span{X, W, P} (or {X, W} while P == 0): assembles the
/// Gram pencil from the blocks, solves, and emits the coefficient blocks.
void body_rayleigh_ritz(Smalls* sm) {
  const index_t n = sm->M.rows();
  double p_trace = 0.0;
  for (index_t i = 0; i < n; ++i) p_trace += sm->gb22.at(i, i);
  const bool use_p = p_trace > 1e-12 * static_cast<double>(n);
  const index_t dim = use_p ? 3 * n : 2 * n;

  DenseMatrix ga(dim, dim);
  DenseMatrix gb(dim, dim);
  auto put = [&](const DenseMatrix& blk, DenseMatrix& dst, index_t bi,
                 index_t bj) {
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = 0; j < n; ++j) {
        dst.at(bi * n + i, bj * n + j) = blk.at(i, j);
        dst.at(bj * n + j, bi * n + i) = blk.at(i, j);
      }
    }
  };
  put(sm->M, ga, 0, 0);
  put(sm->ga01, ga, 0, 1);
  put(sm->ga11, ga, 1, 1);
  put(sm->gb00, gb, 0, 0);
  put(sm->gb01, gb, 0, 1);
  put(sm->gb11, gb, 1, 1);
  if (use_p) {
    put(sm->ga02, ga, 0, 2);
    put(sm->ga12, ga, 1, 2);
    put(sm->ga22, ga, 2, 2);
    put(sm->gb02, gb, 0, 2);
    put(sm->gb12, gb, 1, 2);
    put(sm->gb22, gb, 2, 2);
  }
  // put() writes both (i,j) and (j,i); diagonal blocks may be slightly
  // asymmetric from floating-point partials, symmetrize explicitly.
  for (index_t i = 0; i < dim; ++i) {
    for (index_t j = i + 1; j < dim; ++j) {
      const double av = 0.5 * (ga.at(i, j) + ga.at(j, i));
      ga.at(i, j) = ga.at(j, i) = av;
      const double bv = 0.5 * (gb.at(i, j) + gb.at(j, i));
      gb.at(i, j) = gb.at(j, i) = bv;
    }
  }

  // A degenerate pencil must not throw from a task body; degrade instead:
  // CX = I, CW = CP = 0 makes the update a no-op, the flag stops the
  // driver loop at its next barrier, and the previous theta survives.
  auto degrade = [&] {
    sm->CX.fill(0.0);
    for (index_t i = 0; i < n; ++i) sm->CX.at(i, i) = 1.0;
    sm->CW.fill(0.0);
    sm->CP.fill(0.0);
  };
  for (index_t i = 0; i < dim; ++i) {
    for (index_t j = 0; j < dim; ++j) {
      if (!std::isfinite(ga.at(i, j)) || !std::isfinite(gb.at(i, j))) {
        sm->nonfinite = true;
        degrade();
        return;
      }
    }
  }

  la::EigenResult eig;
  double jitter = 0.0;
  for (int attempt = 0;; ++attempt) {
    try {
      DenseMatrix gbj = gb.clone();
      for (index_t i = 0; i < dim; ++i) gbj.at(i, i) += jitter;
      eig = la::sym_generalized_eigen(ga.view(), gbj.view());
      break;
    } catch (const support::Error&) {
      if (attempt >= 8) {
        sm->rr_failed = true;
        degrade();
        return;
      }
      jitter = jitter == 0.0 ? 1e-12 : jitter * 100.0;
    }
  }

  for (index_t j = 0; j < n; ++j) {
    sm->theta[static_cast<std::size_t>(j)] = eig.values[static_cast<std::size_t>(j)];
    for (index_t i = 0; i < n; ++i) {
      sm->CX.at(i, j) = eig.vectors.at(i, j);
      sm->CW.at(i, j) = eig.vectors.at(n + i, j);
      sm->CP.at(i, j) = use_p ? eig.vectors.at(2 * n + i, j) : 0.0;
    }
  }
}

/// Attaches the per-iteration convergence metrics to the iteration span.
/// The norms/converged fields are valid here: every version's iteration
/// barrier orders the kConvCheck task before this runs on the driver.
void note_iteration_metrics(obs::IterScope& iter, const Smalls& sm,
                            index_t n) {
  if (!iter.enabled()) return;
  double max_residual = 0.0;
  for (index_t j = 0; j < n; ++j) {
    max_residual = std::max(max_residual, sm.norms.at(j, 0));
  }
  iter.metric("converged", static_cast<double>(sm.converged));
  iter.metric("max_residual", max_residual);
}

/// Applies options.restore (when set) and returns the iteration to resume
/// from. Only X/AX/P/AP and the convergence bookkeeping are restored —
/// every iteration recomputes W/AW/R and the Gram blocks from those, so
/// resuming is bit-identical whenever the kernel schedule is deterministic.
/// The checkpoint must describe this exact solve (kind, shape, seed).
int apply_restore(const LobpcgOptions& options, State& s) {
  if (options.restore == nullptr) return 0;
  const ckpt::Checkpoint& c = *options.restore;
  if (c.kind != ckpt::Kind::kLobpcg) {
    throw support::Error(std::string("lobpcg restore: checkpoint holds ") +
                         ckpt::to_string(c.kind) + " state");
  }
  const ckpt::LobpcgState& st = c.lobpcg;
  if (st.m != s.m || st.n != s.n) {
    throw support::Error("lobpcg restore: checkpoint block is " +
                         std::to_string(st.m) + "x" + std::to_string(st.n) +
                         ", this solve needs " + std::to_string(s.m) + "x" +
                         std::to_string(s.n));
  }
  if (st.seed != options.seed) {
    throw support::Error("lobpcg restore: checkpoint seed " +
                         std::to_string(st.seed) + " != options.seed " +
                         std::to_string(options.seed));
  }
  std::copy(st.x.begin(), st.x.end(), s.X.flat().begin());
  std::copy(st.ax.begin(), st.ax.end(), s.AX.flat().begin());
  std::copy(st.p.begin(), st.p.end(), s.P.flat().begin());
  std::copy(st.ap.begin(), st.ap.end(), s.AP.flat().begin());
  s.sm.theta = st.theta;
  for (index_t j = 0; j < s.n; ++j) {
    s.sm.norms.at(j, 0) = st.norms[static_cast<std::size_t>(j)];
  }
  s.sm.converged = static_cast<int>(st.converged);
  obs::counter("solver.ckpt_restores").add();
  return static_cast<int>(st.iterations);
}

/// Writes a checkpoint after `completed` iterations when the options ask
/// for one. Only called where the block vectors are quiescent (after the
/// iteration barrier, before the next submission round). A write failure is
/// contained: counted, logged, and the solve carries on.
void maybe_checkpoint(const LobpcgOptions& options, const State& s,
                      int completed, int every) {
  if (options.ckpt_path.empty() || completed % every != 0) return;
  ckpt::Checkpoint c;
  c.kind = ckpt::Kind::kLobpcg;
  ckpt::LobpcgState& st = c.lobpcg;
  st.seed = options.seed;
  st.m = s.m;
  st.n = s.n;
  st.iterations = completed;
  st.converged = s.sm.converged;
  st.theta = s.sm.theta;
  st.norms.resize(static_cast<std::size_t>(s.n));
  for (index_t j = 0; j < s.n; ++j) {
    st.norms[static_cast<std::size_t>(j)] = s.sm.norms.at(j, 0);
  }
  st.x.assign(s.X.flat().begin(), s.X.flat().end());
  st.ax.assign(s.AX.flat().begin(), s.AX.flat().end());
  st.p.assign(s.P.flat().begin(), s.P.flat().end());
  st.ap.assign(s.AP.flat().begin(), s.AP.flat().end());
  try {
    ckpt::save(c, options.ckpt_path);
  } catch (const std::exception& e) {
    obs::counter("solver.ckpt_errors").add();
    obs::instant(std::string("ckpt: ") + e.what(), "solver");
  }
}

LobpcgResult finalize(const State& s, IterationTiming timing) {
  LobpcgResult result;
  result.eigenvalues = s.sm.theta;
  result.residual_norms.resize(static_cast<std::size_t>(s.n));
  for (index_t j = 0; j < s.n; ++j) {
    result.residual_norms[static_cast<std::size_t>(j)] = s.sm.norms.at(j, 0);
  }
  result.converged = s.sm.converged;
  if (s.sm.nonfinite) {
    result.status = SolverStatus::kNotFinite;
  } else if (s.sm.rr_failed) {
    result.status = SolverStatus::kBreakdown;
  }
  result.timing = timing;
  return result;
}

// --------------------------------------------------------------------------
// BSP versions (libcsr / libcsb)
// --------------------------------------------------------------------------

LobpcgResult run_bsp(const sparse::Csr* csr, const sparse::Csb& csb,
                     int max_iterations, const LobpcgOptions& options) {
  State s = make_state(csb, options);
  const index_t chunk = options.block_size;
  Smalls& sm = s.sm;
  const int start = apply_restore(options, s);
  const int every = ckpt::effective_every(options.ckpt_every);

  IterationTiming timing;
  const support::Timer timer;
  for (int it = start; it < max_iterations; ++it) {
    poll_cancel(options);
    obs::IterScope iter(csr != nullptr ? "lobpcg.libcsr" : "lobpcg.libcsb",
                        it);
    bsp::xty(s.X.view(), s.AX.view(), sm.M.view(), chunk);
    // R = AX - X M: copy AX -> R, then R -= X M.
    {
      la::ConstMatrixView ax = s.AX.view();
      la::MatrixView r = s.R.view();
#pragma omp parallel for schedule(static)
      for (index_t i = 0; i < s.m; ++i) {
        const double* src = ax.row(i);
        double* dst = r.row(i);
        for (index_t j = 0; j < s.n; ++j) dst[j] = src[j];
      }
    }
    bsp::xy(s.X.view(), sm.M.view(), s.R.view(), chunk, -1.0, 1.0);
    bsp::xty(s.R.view(), s.R.view(), sm.RR.view(), chunk);
    body_conv_check(&sm, options.tolerance);

    // W = orthonormalize(R - X X^T R).
    bsp::xty(s.X.view(), s.R.view(), sm.CXW.view(), chunk);
    bsp::xy(s.X.view(), sm.CXW.view(), s.R.view(), chunk, -1.0, 1.0);
    bsp::xty(s.R.view(), s.R.view(), sm.GWW.view(), chunk);
    body_w_normalizer(&sm);
    bsp::xy(s.R.view(), sm.WSC.view(), s.W.view(), chunk, 1.0, 0.0);

    if (csr != nullptr) {
      bsp::spmm(*csr, s.W.view(), s.AW.view());
    } else {
      bsp::spmm(csb, s.W.view(), s.AW.view());
    }

    bsp::xty(s.X.view(), s.AW.view(), sm.ga01.view(), chunk);
    bsp::xty(s.X.view(), s.AP.view(), sm.ga02.view(), chunk);
    bsp::xty(s.W.view(), s.AW.view(), sm.ga11.view(), chunk);
    bsp::xty(s.W.view(), s.AP.view(), sm.ga12.view(), chunk);
    bsp::xty(s.P.view(), s.AP.view(), sm.ga22.view(), chunk);
    bsp::xty(s.X.view(), s.X.view(), sm.gb00.view(), chunk);
    bsp::xty(s.X.view(), s.W.view(), sm.gb01.view(), chunk);
    bsp::xty(s.X.view(), s.P.view(), sm.gb02.view(), chunk);
    bsp::xty(s.W.view(), s.W.view(), sm.gb11.view(), chunk);
    bsp::xty(s.W.view(), s.P.view(), sm.gb12.view(), chunk);
    bsp::xty(s.P.view(), s.P.view(), sm.gb22.view(), chunk);
    body_rayleigh_ritz(&sm);

    bsp::xy(s.W.view(), sm.CW.view(), s.Pn.view(), chunk, 1.0, 0.0);
    bsp::xy(s.P.view(), sm.CP.view(), s.Pn.view(), chunk, 1.0, 1.0);
    bsp::xy(s.AW.view(), sm.CW.view(), s.APn.view(), chunk, 1.0, 0.0);
    bsp::xy(s.AP.view(), sm.CP.view(), s.APn.view(), chunk, 1.0, 1.0);
    bsp::xy(s.X.view(), sm.CX.view(), s.Xn.view(), chunk, 1.0, 0.0);
    bsp::axpy(1.0, s.Pn.view(), s.Xn.view(), chunk);
    bsp::xy(s.AX.view(), sm.CX.view(), s.AXn.view(), chunk, 1.0, 0.0);
    bsp::axpy(1.0, s.APn.view(), s.AXn.view(), chunk);

    std::swap(s.X, s.Xn);
    std::swap(s.AX, s.AXn);
    std::swap(s.P, s.Pn);
    std::swap(s.AP, s.APn);
    note_iteration_metrics(iter, sm, s.n);
    ++timing.iterations;
    if (sm.converged >= s.n || sm.rr_failed || sm.nonfinite) break;
    maybe_checkpoint(options, s, it + 1, every);
  }
  timing.total_seconds = timer.seconds();
  return finalize(s, timing);
}

// --------------------------------------------------------------------------
// DeepSparse version: one-iteration TDG built once, re-executed with the
// convergence check acting as the inter-iteration barrier. Buffer rotation
// is expressed as copy kernels so the graph stays valid across iterations.
// --------------------------------------------------------------------------

LobpcgResult run_ds(const sparse::Csb& csb, int max_iterations,
                    const LobpcgOptions& options) {
  State s = make_state(csb, options);
  Smalls& sm = s.sm;
  Smalls* smp = &sm;
  const int start = apply_restore(options, s);
  const int every = ckpt::effective_every(options.ckpt_every);

  ds::Program prog(&csb, {.skip_empty_blocks = options.skip_empty_blocks,
                          .dependency_based_spmm =
                              options.dependency_based_spmm,
                          .spmm_buffers =
                              static_cast<std::int32_t>(options.threads)});
  const ds::DataId X = prog.vec("X", &s.X);
  const ds::DataId AX = prog.vec("AX", &s.AX);
  const ds::DataId W = prog.vec("W", &s.W);
  const ds::DataId AW = prog.vec("AW", &s.AW);
  const ds::DataId P = prog.vec("P", &s.P);
  const ds::DataId AP = prog.vec("AP", &s.AP);
  const ds::DataId R = prog.vec("R", &s.R);
  const ds::DataId Xn = prog.vec("Xn", &s.Xn);
  const ds::DataId AXn = prog.vec("AXn", &s.AXn);
  const ds::DataId Pn = prog.vec("Pn", &s.Pn);
  const ds::DataId APn = prog.vec("APn", &s.APn);
  const ds::DataId M = prog.small("M", &sm.M);
  const ds::DataId RR = prog.small("RR", &sm.RR);
  const ds::DataId CXW = prog.small("CXW", &sm.CXW);
  const ds::DataId GWW = prog.small("GWW", &sm.GWW);
  const ds::DataId WSC = prog.small("WSC", &sm.WSC);
  const ds::DataId ga01 = prog.small("ga01", &sm.ga01);
  const ds::DataId ga02 = prog.small("ga02", &sm.ga02);
  const ds::DataId ga11 = prog.small("ga11", &sm.ga11);
  const ds::DataId ga12 = prog.small("ga12", &sm.ga12);
  const ds::DataId ga22 = prog.small("ga22", &sm.ga22);
  const ds::DataId gb00 = prog.small("gb00", &sm.gb00);
  const ds::DataId gb01 = prog.small("gb01", &sm.gb01);
  const ds::DataId gb02 = prog.small("gb02", &sm.gb02);
  const ds::DataId gb11 = prog.small("gb11", &sm.gb11);
  const ds::DataId gb12 = prog.small("gb12", &sm.gb12);
  const ds::DataId gb22 = prog.small("gb22", &sm.gb22);
  const ds::DataId CXid = prog.small("CX", &sm.CX);
  const ds::DataId CWid = prog.small("CW", &sm.CW);
  const ds::DataId CPid = prog.small("CP", &sm.CP);
  const ds::DataId NRM = prog.small("norms", &sm.norms);

  IterationTiming timing;
  const support::Timer build_timer;
  const double tol = options.tolerance;

  prog.xty(X, AX, M);
  prog.copy(AX, R);
  prog.xy(X, M, R, -1.0, 1.0);
  prog.xty(R, R, RR);
  prog.small_task(graph::KernelKind::kConvCheck,
                  [smp, tol] { body_conv_check(smp, tol); }, {RR}, {NRM});
  prog.xty(X, R, CXW);
  prog.xy(X, CXW, R, -1.0, 1.0);
  prog.xty(R, R, GWW);
  prog.small_task(graph::KernelKind::kOrtho,
                  [smp] { body_w_normalizer(smp); }, {GWW}, {WSC});
  prog.xy(R, WSC, W, 1.0, 0.0);
  prog.spmm(W, AW);
  prog.xty(X, AW, ga01);
  prog.xty(X, AP, ga02);
  prog.xty(W, AW, ga11);
  prog.xty(W, AP, ga12);
  prog.xty(P, AP, ga22);
  prog.xty(X, X, gb00);
  prog.xty(X, W, gb01);
  prog.xty(X, P, gb02);
  prog.xty(W, W, gb11);
  prog.xty(W, P, gb12);
  prog.xty(P, P, gb22);
  prog.small_task(graph::KernelKind::kOrtho,
                  [smp] { body_rayleigh_ritz(smp); },
                  {M, ga01, ga02, ga11, ga12, ga22, gb00, gb01, gb02, gb11,
                   gb12, gb22},
                  {CXid, CWid, CPid});
  prog.xy(W, CWid, Pn, 1.0, 0.0);
  prog.xy(P, CPid, Pn, 1.0, 1.0);
  prog.xy(AW, CWid, APn, 1.0, 0.0);
  prog.xy(AP, CPid, APn, 1.0, 1.0);
  prog.xy(X, CXid, Xn, 1.0, 0.0);
  prog.axpy(1.0, Pn, Xn);
  prog.xy(AX, CXid, AXn, 1.0, 0.0);
  prog.axpy(1.0, APn, AXn);
  prog.copy(Xn, X);
  prog.copy(AXn, AX);
  prog.copy(Pn, P);
  prog.copy(APn, AP);
  const graph::Tdg graph = prog.build();
  timing.graph_build_seconds = build_timer.seconds();

  const ds::ExecOptions exec{.mode = ds::ExecMode::kOmpTasks,
                             .trace = options.trace};
  const support::Timer timer;
  for (int it = start; it < max_iterations; ++it) {
    poll_cancel(options);
    obs::IterScope iter("lobpcg.ds", it);
    ds::execute(graph, exec);
    note_iteration_metrics(iter, sm, s.n);
    ++timing.iterations;
    if (sm.converged >= s.n || sm.rr_failed || sm.nonfinite) break;
    maybe_checkpoint(options, s, it + 1, every);
  }
  timing.total_seconds = timer.seconds();
  return finalize(s, timing);
}

// --------------------------------------------------------------------------
// flux (HPX-style) version.
//
// Dependence threading is expressed with the helper structs below: per
// vector piece we keep the last-write future and the reader futures since
// that write (the discipline an HPX programmer applies by hand in Listing
// 2; centralizing it keeps the 30-kernel pipeline readable).
// --------------------------------------------------------------------------

using Fut = flux::shared_future<void>;

struct FluxVec {
  DenseMatrix* data = nullptr;
  std::vector<Fut> w;
  std::vector<std::vector<Fut>> r;

  FluxVec() = default;
  FluxVec(DenseMatrix* d, index_t np)
      : data(d), w(static_cast<std::size_t>(np), flux::make_ready_future()),
        r(static_cast<std::size_t>(np)) {}

  void read_deps(index_t p, std::vector<Fut>& deps) const {
    deps.push_back(w[static_cast<std::size_t>(p)]);
  }
  void write_deps(index_t p, std::vector<Fut>& deps) const {
    deps.push_back(w[static_cast<std::size_t>(p)]);
    for (const Fut& f : r[static_cast<std::size_t>(p)]) deps.push_back(f);
  }
  void note_read(index_t p, const Fut& f) {
    r[static_cast<std::size_t>(p)].push_back(f);
  }
  void note_write(index_t p, const Fut& f) {
    w[static_cast<std::size_t>(p)] = f;
    r[static_cast<std::size_t>(p)].clear();
  }
};

struct FluxSmall {
  DenseMatrix* data = nullptr;
  Fut w = flux::make_ready_future();
  std::vector<Fut> r;

  void read_deps(std::vector<Fut>& deps) const { deps.push_back(w); }
  void write_deps(std::vector<Fut>& deps) const {
    deps.push_back(w);
    for (const Fut& f : r) deps.push_back(f);
  }
  void note_read(const Fut& f) { r.push_back(f); }
  void note_write(const Fut& f) {
    w = f;
    r.clear();
  }
};

class FluxLobpcg {
public:
  FluxLobpcg(State* s, const sparse::Csb* a, const LobpcgOptions& options)
      : s_(s), a_(a), opts_(options),
        np_(a->block_rows()), b_(a->block_size()),
        dmap_(a->partition_block_rows(options.numa_domains)),
        sched_(&acquire_flux_pool(options, owned_sched_)) {}

  flux::Scheduler& scheduler() { return *sched_; }

  FluxVec& vec(DenseMatrix* d) {
    vecs_.emplace_back(d, np_);
    return vecs_.back();
  }
  FluxSmall& small(DenseMatrix* d) {
    smalls_.push_back(FluxSmall{});
    smalls_.back().data = d;
    return smalls_.back();
  }

  // Hints reuse place_stripes' deterministic nnz-balanced stripe map, so a
  // hinted task lands on the node whose memory holds its block row.
  int domain_of(index_t p) const {
    return opts_.numa_domains > 1 ? dmap_.owner(p) : -1;
  }
  index_t rows_in(index_t p) const {
    return std::min(b_, s_->m - p * b_);
  }

  template <typename Fn>
  auto traced(graph::KernelKind kind, std::int32_t id, Fn fn) {
    perf::TraceRecorder* trace = opts_.trace;
    flux::Scheduler* sched = sched_;
    return [trace, sched, kind, id, fn]() {
      const obs::prof::TaskMark mark("flux", kind);
      if (trace == nullptr && !obs::task_timing_enabled()) {
        fn();
        return;
      }
      perf::TaskEvent ev;
      ev.kind = kind;
      ev.task_id = id;
      ev.worker = std::max(0, sched->current_worker());
      ev.start_ns = support::now_ns();
      fn();
      ev.end_ns = support::now_ns();
      obs::publish_task("flux", ev, trace);
    };
  }

  template <typename Fn>
  Fut launch(graph::KernelKind kind, std::int32_t id, int domain,
             std::vector<Fut> deps, Fn fn) {
    return flux::dataflow_hint(*sched_, domain,
                               flux::unwrapping(traced(kind, id, fn)),
                               std::move(deps))
        .share();
  }

  /// y = A * x (dependency-based chains per output piece).
  void spmm(FluxVec& x, FluxVec& y) {
    const sparse::Csb* a = a_;
    for (index_t bi = 0; bi < np_; ++bi) {
      std::vector<Fut> deps;
      y.write_deps(bi, deps);
      DenseMatrix* yd = y.data;
      Fut f = launch(graph::KernelKind::kZero,
                     static_cast<std::int32_t>(bi), domain_of(bi),
                     std::move(deps),
                     [a, yd, bi] { sparse::csb_block_zero(*a, bi, yd->view()); });
      y.note_write(bi, f);
    }
    for (index_t bi = 0; bi < np_; ++bi) {
      for (index_t bj = 0; bj < np_; ++bj) {
        if (opts_.skip_empty_blocks && a_->block_empty(bi, bj)) continue;
        std::vector<Fut> deps;
        x.read_deps(bj, deps);
        y.write_deps(bi, deps);
        DenseMatrix* xd = x.data;
        DenseMatrix* yd = y.data;
        Fut f = launch(graph::KernelKind::kSpMM,
                       static_cast<std::int32_t>(bi), domain_of(bi),
                       std::move(deps), [a, xd, yd, bi, bj] {
                         sparse::csb_block_spmm(*a, bi, bj, xd->view(),
                                                yd->view());
                       });
        x.note_read(bj, f);
        y.note_write(bi, f);
      }
    }
  }

  /// y = alpha * x * z + beta * y.
  void xy(FluxVec& x, FluxSmall& z, FluxVec& y, double alpha, double beta) {
    for (index_t p = 0; p < np_; ++p) {
      std::vector<Fut> deps;
      x.read_deps(p, deps);
      z.read_deps(deps);
      y.write_deps(p, deps);
      DenseMatrix* xd = x.data;
      DenseMatrix* zd = z.data;
      DenseMatrix* yd = y.data;
      const index_t r0 = p * b_;
      const index_t nr = rows_in(p);
      Fut f = launch(graph::KernelKind::kXY, static_cast<std::int32_t>(p),
                     domain_of(p), std::move(deps),
                     [xd, zd, yd, r0, nr, alpha, beta] {
                       la::gemm(alpha, xd->row_block(r0, nr), zd->view(),
                                beta, yd->row_block(r0, nr));
                     });
      x.note_read(p, f);
      z.note_read(f);
      y.note_write(p, f);
    }
  }

  /// Resets the per-iteration partial-buffer cursor so xty call sites reuse
  /// their buffers across iterations instead of allocating fresh ones.
  void begin_iteration() { xty_cursor_ = 0; }

  /// p_out = x^T y via partials + reduce. Each call site reuses the same
  /// partial buffer across iterations; the buffer is dependence-tracked
  /// like any other vector so the next iteration's partial writes wait for
  /// this iteration's reduce to have read them.
  void xty(FluxVec& x, FluxVec& y, FluxSmall& p_out) {
    const index_t pr = x.data->cols();
    const index_t pc = y.data->cols();
    if (xty_cursor_ == partials_.size()) {
      partial_storage_.push_back(
          std::make_unique<DenseMatrix>(np_, pr * pc));
      partials_.emplace_back(partial_storage_.back().get(), np_);
    }
    FluxVec& part_vec = partials_[xty_cursor_++];
    DenseMatrix* part = part_vec.data;
    STS_ASSERT(part->cols() == pr * pc);
    for (index_t p = 0; p < np_; ++p) {
      std::vector<Fut> deps;
      x.read_deps(p, deps);
      if (&x != &y) y.read_deps(p, deps);
      part_vec.write_deps(p, deps);
      DenseMatrix* xd = x.data;
      DenseMatrix* yd = y.data;
      const index_t r0 = p * b_;
      const index_t nr = rows_in(p);
      Fut f = launch(graph::KernelKind::kXTY, static_cast<std::int32_t>(p),
                     domain_of(p), std::move(deps),
                     [xd, yd, part, r0, nr, p, pr, pc] {
                       la::MatrixView out{part->data() + p * pr * pc, pr, pc,
                                          pc};
                       la::gemm_tn(1.0, xd->row_block(r0, nr),
                                   yd->row_block(r0, nr), 0.0, out);
                     });
      x.note_read(p, f);
      if (&x != &y) y.note_read(p, f);
      part_vec.note_write(p, f);
    }
    std::vector<Fut> deps;
    p_out.write_deps(deps);
    for (index_t p = 0; p < np_; ++p) part_vec.read_deps(p, deps);
    DenseMatrix* dst = p_out.data;
    const index_t np = np_;
    Fut red = launch(graph::KernelKind::kReduce, -1, -1, std::move(deps),
                     [part, dst, np, pr, pc] {
                       for (index_t i = 0; i < pr; ++i) {
                         for (index_t j = 0; j < pc; ++j) dst->at(i, j) = 0.0;
                       }
                       for (index_t p = 0; p < np; ++p) {
                         la::ConstMatrixView v{part->data() + p * pr * pc, pr,
                                               pc, pc};
                         la::axpy(1.0, v, dst->view());
                       }
                     });
    for (index_t p = 0; p < np_; ++p) part_vec.note_read(p, red);
    p_out.note_write(red);
  }

  void axpy(double alpha, FluxVec& x, FluxVec& y) {
    for (index_t p = 0; p < np_; ++p) {
      std::vector<Fut> deps;
      x.read_deps(p, deps);
      y.write_deps(p, deps);
      DenseMatrix* xd = x.data;
      DenseMatrix* yd = y.data;
      const index_t r0 = p * b_;
      const index_t nr = rows_in(p);
      Fut f = launch(graph::KernelKind::kAxpy, static_cast<std::int32_t>(p),
                     domain_of(p), std::move(deps), [xd, yd, r0, nr, alpha] {
                       la::axpy(alpha, xd->row_block(r0, nr),
                                yd->row_block(r0, nr));
                     });
      x.note_read(p, f);
      y.note_write(p, f);
    }
  }

  void copy(FluxVec& x, FluxVec& y) {
    for (index_t p = 0; p < np_; ++p) {
      std::vector<Fut> deps;
      x.read_deps(p, deps);
      y.write_deps(p, deps);
      DenseMatrix* xd = x.data;
      DenseMatrix* yd = y.data;
      const index_t r0 = p * b_;
      const index_t nr = rows_in(p);
      Fut f = launch(graph::KernelKind::kAxpy, static_cast<std::int32_t>(p),
                     domain_of(p), std::move(deps), [xd, yd, r0, nr] {
                       la::copy(xd->row_block(r0, nr), yd->row_block(r0, nr));
                     });
      x.note_read(p, f);
      y.note_write(p, f);
    }
  }

  template <typename Fn>
  Fut small_op(graph::KernelKind kind, std::vector<FluxSmall*> reads,
               std::vector<FluxSmall*> writes, Fn fn) {
    std::vector<Fut> deps;
    for (FluxSmall* r : reads) r->read_deps(deps);
    for (FluxSmall* w : writes) w->write_deps(deps);
    Fut f = launch(kind, -1, -1, std::move(deps), fn);
    for (FluxSmall* r : reads) r->note_read(f);
    for (FluxSmall* w : writes) w->note_write(f);
    return f;
  }

private:
  State* s_;
  const sparse::Csb* a_;
  LobpcgOptions opts_;
  index_t np_;
  index_t b_;
  sparse::Csb::DomainMap dmap_; // stripe owners, shared with place_stripes
  std::unique_ptr<flux::Scheduler> owned_sched_; // empty when pool is shared
  flux::Scheduler* sched_;
  // deques: vec()/small() hand out references that must stay valid as more
  // structures are registered.
  std::deque<FluxVec> vecs_;
  std::deque<FluxSmall> smalls_;
  std::vector<std::unique_ptr<DenseMatrix>> partial_storage_;
  std::deque<FluxVec> partials_;
  std::size_t xty_cursor_ = 0;
};

LobpcgResult run_flux(const sparse::Csb& csb, int max_iterations,
                      const LobpcgOptions& options) {
  State s = make_state(csb, options);
  Smalls& sm = s.sm;
  Smalls* smp = &sm;
  const int start = apply_restore(options, s);
  const int every = ckpt::effective_every(options.ckpt_every);
  FluxLobpcg fx(&s, &csb, options);

  FluxVec& X = fx.vec(&s.X);
  FluxVec& AX = fx.vec(&s.AX);
  FluxVec& W = fx.vec(&s.W);
  FluxVec& AW = fx.vec(&s.AW);
  FluxVec& P = fx.vec(&s.P);
  FluxVec& AP = fx.vec(&s.AP);
  FluxVec& R = fx.vec(&s.R);
  FluxVec& Xn = fx.vec(&s.Xn);
  FluxVec& AXn = fx.vec(&s.AXn);
  FluxVec& Pn = fx.vec(&s.Pn);
  FluxVec& APn = fx.vec(&s.APn);
  FluxSmall& M = fx.small(&sm.M);
  FluxSmall& RR = fx.small(&sm.RR);
  FluxSmall& CXW = fx.small(&sm.CXW);
  FluxSmall& GWW = fx.small(&sm.GWW);
  FluxSmall& WSC = fx.small(&sm.WSC);
  FluxSmall& ga01 = fx.small(&sm.ga01);
  FluxSmall& ga02 = fx.small(&sm.ga02);
  FluxSmall& ga11 = fx.small(&sm.ga11);
  FluxSmall& ga12 = fx.small(&sm.ga12);
  FluxSmall& ga22 = fx.small(&sm.ga22);
  FluxSmall& gb00 = fx.small(&sm.gb00);
  FluxSmall& gb01 = fx.small(&sm.gb01);
  FluxSmall& gb02 = fx.small(&sm.gb02);
  FluxSmall& gb11 = fx.small(&sm.gb11);
  FluxSmall& gb12 = fx.small(&sm.gb12);
  FluxSmall& gb22 = fx.small(&sm.gb22);
  FluxSmall& CX = fx.small(&sm.CX);
  FluxSmall& CW = fx.small(&sm.CW);
  FluxSmall& CP = fx.small(&sm.CP);
  FluxSmall& NRM = fx.small(&sm.norms);

  // Unwind (cancellation, task fault) must not outrun in-flight tasks that
  // reference the local State — quiesce first, especially on shared pools.
  flux::QuiesceOnExit quiesce(fx.scheduler());

  const double tol = options.tolerance;
  IterationTiming timing;
  const support::Timer timer;
  for (int it = start; it < max_iterations; ++it) {
    poll_cancel(options);
    // Driver-side span: submission through the convergence-check get; the
    // tail kernels of the iteration may still be in flight on the workers.
    obs::IterScope iter("lobpcg.flux", it);
    fx.begin_iteration();
    fx.xty(X, AX, M);
    fx.copy(AX, R);
    fx.xy(X, M, R, -1.0, 1.0);
    fx.xty(R, R, RR);
    Fut conv = fx.small_op(graph::KernelKind::kConvCheck, {&RR}, {&NRM},
                           [smp, tol] { body_conv_check(smp, tol); });
    fx.xty(X, R, CXW);
    fx.xy(X, CXW, R, -1.0, 1.0);
    fx.xty(R, R, GWW);
    fx.small_op(graph::KernelKind::kOrtho, {&GWW}, {&WSC},
                [smp] { body_w_normalizer(smp); });
    fx.xy(R, WSC, W, 1.0, 0.0);
    fx.spmm(W, AW);
    fx.xty(X, AW, ga01);
    fx.xty(X, AP, ga02);
    fx.xty(W, AW, ga11);
    fx.xty(W, AP, ga12);
    fx.xty(P, AP, ga22);
    fx.xty(X, X, gb00);
    fx.xty(X, W, gb01);
    fx.xty(X, P, gb02);
    fx.xty(W, W, gb11);
    fx.xty(W, P, gb12);
    fx.xty(P, P, gb22);
    fx.small_op(graph::KernelKind::kOrtho,
                {&M, &ga01, &ga02, &ga11, &ga12, &ga22, &gb00, &gb01, &gb02,
                 &gb11, &gb12, &gb22},
                {&CX, &CW, &CP}, [smp] { body_rayleigh_ritz(smp); });
    fx.xy(W, CW, Pn, 1.0, 0.0);
    fx.xy(P, CP, Pn, 1.0, 1.0);
    fx.xy(AW, CW, APn, 1.0, 0.0);
    fx.xy(AP, CP, APn, 1.0, 1.0);
    fx.xy(X, CX, Xn, 1.0, 0.0);
    fx.axpy(1.0, Pn, Xn);
    fx.xy(AX, CX, AXn, 1.0, 0.0);
    fx.axpy(1.0, APn, AXn);
    fx.copy(Xn, X);
    fx.copy(AXn, AX);
    fx.copy(Pn, P);
    fx.copy(APn, AP);

    conv.get(&fx.scheduler()); // per-iteration convergence check
    note_iteration_metrics(iter, sm, s.n);
    ++timing.iterations;
    if (sm.converged >= s.n || sm.rr_failed || sm.nonfinite) break;
    // Checkpointing needs the tail copy kernels drained, not just the
    // convergence get — quiesce first, and only when a write is due.
    if (!options.ckpt_path.empty() && (it + 1) % every == 0) {
      fx.scheduler().wait_for_quiescence();
      maybe_checkpoint(options, s, it + 1, every);
    }
  }
  quiesce.dismiss();
  fx.scheduler().wait_for_quiescence();
  timing.total_seconds = timer.seconds();
  return finalize(s, timing);
}

// --------------------------------------------------------------------------
// rgt (Regent-style) version: the runtime's dependence analysis replaces
// the future threading; the driver reads like Listing 3.
// --------------------------------------------------------------------------

class RgtLobpcg {
public:
  RgtLobpcg(State* s, const sparse::Csb* a, const LobpcgOptions& options)
      : s_(s), a_(a), opts_(options), np_(a->block_rows()),
        b_(a->block_size()),
        rt_({.cpu_workers = options.threads,
             .util_threads = 1,
             .verify_index_launches = false,
             .window = 4096}) {}

  rgt::Runtime& runtime() { return rt_; }

  struct Vec {
    DenseMatrix* data;
    rgt::RegionId region;
  };
  struct Small {
    DenseMatrix* data;
    rgt::RegionId region;
  };

  Vec vec(const char* name, DenseMatrix* d) {
    const rgt::RegionId r = rt_.register_region(d->flat(), name);
    rt_.partition_equal(r, static_cast<std::int32_t>(np_));
    return {d, r};
  }
  Small small(const char* name, DenseMatrix* d) {
    return {d, rt_.register_region(d->flat(), name)};
  }

  index_t rows_in(index_t p) const { return std::min(b_, s_->m - p * b_); }

  template <typename Fn>
  rgt::TaskBody traced(graph::KernelKind kind, std::int32_t id, Fn fn) {
    perf::TraceRecorder* trace = opts_.trace;
    return [trace, kind, id, fn](rgt::TaskContext& ctx) {
      const obs::prof::TaskMark mark("rgt", kind);
      if (trace == nullptr && !obs::task_timing_enabled()) {
        fn(ctx);
        return;
      }
      perf::TaskEvent ev;
      ev.kind = kind;
      ev.task_id = id;
      ev.worker = std::max(0, ctx.worker());
      ev.start_ns = support::now_ns();
      fn(ctx);
      ev.end_ns = support::now_ns();
      obs::publish_task("rgt", ev, trace);
    };
  }

  void spmm(Vec& x, Vec& y) {
    const sparse::Csb* a = a_;
    if (opts_.dependency_based_spmm) {
      for (index_t bi = 0; bi < np_; ++bi) {
        DenseMatrix* yd = y.data;
        rt_.execute({traced(graph::KernelKind::kZero,
                            static_cast<std::int32_t>(bi),
                            [a, yd, bi](rgt::TaskContext&) {
                              sparse::csb_block_zero(*a, bi, yd->view());
                            }),
                     {{y.region, static_cast<std::int32_t>(bi),
                       rgt::Privilege::kWrite}},
                     "zero"});
      }
      for (index_t bi = 0; bi < np_; ++bi) {
        for (index_t bj = 0; bj < np_; ++bj) {
          if (opts_.skip_empty_blocks && a->block_empty(bi, bj)) continue;
          DenseMatrix* xd = x.data;
          DenseMatrix* yd = y.data;
          rt_.execute({traced(graph::KernelKind::kSpMM,
                              static_cast<std::int32_t>(bi),
                              [a, xd, yd, bi, bj](rgt::TaskContext&) {
                                sparse::csb_block_spmm(*a, bi, bj, xd->view(),
                                                       yd->view());
                              }),
                       {{x.region, static_cast<std::int32_t>(bj),
                         rgt::Privilege::kRead},
                        {y.region, static_cast<std::int32_t>(bi),
                         rgt::Privilege::kReadWrite}},
                       "spmm"});
        }
      }
    } else {
      DenseMatrix* yd = y.data;
      rt_.execute({traced(graph::KernelKind::kZero, -1,
                          [yd](rgt::TaskContext&) { yd->fill(0.0); }),
                   {{y.region, -1, rgt::Privilege::kWrite}},
                   "zero"});
      for (index_t bi = 0; bi < np_; ++bi) {
        for (index_t bj = 0; bj < np_; ++bj) {
          if (opts_.skip_empty_blocks && a->block_empty(bi, bj)) continue;
          DenseMatrix* xd = x.data;
          const rgt::RegionId yr = y.region;
          const index_t m = s_->m;
          const index_t n = s_->n;
          rt_.execute(
              {traced(graph::KernelKind::kSpMM,
                      static_cast<std::int32_t>(bi),
                      [a, xd, yr, bi, bj, m, n](rgt::TaskContext& ctx) {
                        std::span<double> buf = ctx.reduce_target(yr);
                        la::MatrixView out{buf.data(), m, n, n};
                        sparse::csb_block_spmm(*a, bi, bj, xd->view(), out);
                      }),
               {{x.region, static_cast<std::int32_t>(bj),
                 rgt::Privilege::kRead},
                {yr, -1, rgt::Privilege::kReduce}},
               "spmm-reduce"});
        }
      }
    }
  }

  void xy(Vec& x, Small& z, Vec& y, double alpha, double beta) {
    DenseMatrix* xd = x.data;
    DenseMatrix* zd = z.data;
    DenseMatrix* yd = y.data;
    const index_t b = b_;
    rt_.index_launch(static_cast<std::int32_t>(np_), [&, xd, zd, yd,
                                                      b](std::int32_t p) {
      const index_t r0 = static_cast<index_t>(p) * b;
      const index_t nr = rows_in(p);
      return rgt::TaskLaunch{
          traced(graph::KernelKind::kXY, p,
                 [xd, zd, yd, r0, nr, alpha, beta](rgt::TaskContext&) {
                   la::gemm(alpha, xd->row_block(r0, nr), zd->view(), beta,
                            yd->row_block(r0, nr));
                 }),
          {{x.region, p, rgt::Privilege::kRead},
           {z.region, -1, rgt::Privilege::kRead},
           {y.region, p,
            beta == 0.0 ? rgt::Privilege::kWrite
                        : rgt::Privilege::kReadWrite}},
          "xy"};
    });
  }

  /// Resets the partial-buffer cursor at the top of each iteration so call
  /// sites reuse buffers (and their regions) across iterations.
  void begin_iteration() { xty_cursor_ = 0; }

  void xty(Vec& x, Vec& y, Small& p_out) {
    const index_t pr = x.data->cols();
    const index_t pc = y.data->cols();
    if (xty_cursor_ == partials_.size()) {
      auto buf = std::make_unique<DenseMatrix>(np_, pr * pc);
      const rgt::RegionId region =
          rt_.register_region(buf->flat(), "xty_part");
      rt_.partition_equal(region, static_cast<std::int32_t>(np_));
      partials_.push_back({std::move(buf), region});
    }
    DenseMatrix* part = partials_[xty_cursor_].buf.get();
    const rgt::RegionId rpart = partials_[xty_cursor_].region;
    ++xty_cursor_;
    STS_ASSERT(part->cols() == pr * pc);
    DenseMatrix* xd = x.data;
    DenseMatrix* yd = y.data;
    const index_t b = b_;
    const bool same = xd == yd;
    rt_.index_launch(static_cast<std::int32_t>(np_), [&, xd, yd, part, b, pr,
                                                      pc, same,
                                                      rpart](std::int32_t p) {
      const index_t r0 = static_cast<index_t>(p) * b;
      const index_t nr = rows_in(p);
      std::vector<rgt::RegionReq> reqs = {
          {x.region, p, rgt::Privilege::kRead},
          {rpart, p, rgt::Privilege::kWrite}};
      if (!same) reqs.push_back({y.region, p, rgt::Privilege::kRead});
      return rgt::TaskLaunch{
          traced(graph::KernelKind::kXTY, p,
                 [xd, yd, part, r0, nr, p, pr, pc](rgt::TaskContext&) {
                   la::MatrixView out{part->data() + p * pr * pc, pr, pc, pc};
                   la::gemm_tn(1.0, xd->row_block(r0, nr),
                               yd->row_block(r0, nr), 0.0, out);
                 }),
          std::move(reqs), "xty"};
    });
    DenseMatrix* dst = p_out.data;
    const index_t np = np_;
    rt_.execute({traced(graph::KernelKind::kReduce, -1,
                        [part, dst, np, pr, pc](rgt::TaskContext&) {
                          for (index_t i = 0; i < pr; ++i) {
                            for (index_t j = 0; j < pc; ++j) {
                              dst->at(i, j) = 0.0;
                            }
                          }
                          for (index_t p = 0; p < np; ++p) {
                            la::ConstMatrixView v{part->data() + p * pr * pc,
                                                  pr, pc, pc};
                            la::axpy(1.0, v, dst->view());
                          }
                        }),
                 {{rpart, -1, rgt::Privilege::kRead},
                  {p_out.region, -1, rgt::Privilege::kWrite}},
                 "reduce"});
  }

  void axpy(double alpha, Vec& x, Vec& y) {
    DenseMatrix* xd = x.data;
    DenseMatrix* yd = y.data;
    const index_t b = b_;
    rt_.index_launch(static_cast<std::int32_t>(np_), [&, xd, yd,
                                                      b](std::int32_t p) {
      const index_t r0 = static_cast<index_t>(p) * b;
      const index_t nr = rows_in(p);
      return rgt::TaskLaunch{
          traced(graph::KernelKind::kAxpy, p,
                 [xd, yd, r0, nr, alpha](rgt::TaskContext&) {
                   la::axpy(alpha, xd->row_block(r0, nr),
                            yd->row_block(r0, nr));
                 }),
          {{x.region, p, rgt::Privilege::kRead},
           {y.region, p, rgt::Privilege::kReadWrite}},
          "axpy"};
    });
  }

  void copy(Vec& x, Vec& y) {
    DenseMatrix* xd = x.data;
    DenseMatrix* yd = y.data;
    const index_t b = b_;
    rt_.index_launch(static_cast<std::int32_t>(np_), [&, xd, yd,
                                                      b](std::int32_t p) {
      const index_t r0 = static_cast<index_t>(p) * b;
      const index_t nr = rows_in(p);
      return rgt::TaskLaunch{
          traced(graph::KernelKind::kAxpy, p,
                 [xd, yd, r0, nr](rgt::TaskContext&) {
                   la::copy(xd->row_block(r0, nr), yd->row_block(r0, nr));
                 }),
          {{x.region, p, rgt::Privilege::kRead},
           {y.region, p, rgt::Privilege::kWrite}},
          "copy"};
    });
  }

  template <typename Fn>
  void small_op(graph::KernelKind kind, std::vector<Small*> reads,
                std::vector<Small*> writes, Fn fn) {
    std::vector<rgt::RegionReq> reqs;
    for (Small* r : reads) reqs.push_back({r->region, -1, rgt::Privilege::kRead});
    for (Small* w : writes) {
      reqs.push_back({w->region, -1, rgt::Privilege::kReadWrite});
    }
    rt_.execute({traced(kind, -1, [fn](rgt::TaskContext&) { fn(); }),
                 std::move(reqs), "small"});
  }

private:
  State* s_;
  const sparse::Csb* a_;
  LobpcgOptions opts_;
  index_t np_;
  index_t b_;
  rgt::Runtime rt_;
  struct Partial {
    std::unique_ptr<DenseMatrix> buf;
    rgt::RegionId region;
  };
  std::vector<Partial> partials_;
  std::size_t xty_cursor_ = 0;
};

LobpcgResult run_rgt(const sparse::Csb& csb, int max_iterations,
                     const LobpcgOptions& options) {
  State s = make_state(csb, options);
  Smalls& sm = s.sm;
  Smalls* smp = &sm;
  const int start = apply_restore(options, s);
  const int every = ckpt::effective_every(options.ckpt_every);
  RgtLobpcg rg(&s, &csb, options);

  auto X = rg.vec("X", &s.X);
  auto AX = rg.vec("AX", &s.AX);
  auto W = rg.vec("W", &s.W);
  auto AW = rg.vec("AW", &s.AW);
  auto P = rg.vec("P", &s.P);
  auto AP = rg.vec("AP", &s.AP);
  auto R = rg.vec("R", &s.R);
  auto Xn = rg.vec("Xn", &s.Xn);
  auto AXn = rg.vec("AXn", &s.AXn);
  auto Pn = rg.vec("Pn", &s.Pn);
  auto APn = rg.vec("APn", &s.APn);
  auto M = rg.small("M", &sm.M);
  auto RR = rg.small("RR", &sm.RR);
  auto CXW = rg.small("CXW", &sm.CXW);
  auto GWW = rg.small("GWW", &sm.GWW);
  auto WSC = rg.small("WSC", &sm.WSC);
  auto ga01 = rg.small("ga01", &sm.ga01);
  auto ga02 = rg.small("ga02", &sm.ga02);
  auto ga11 = rg.small("ga11", &sm.ga11);
  auto ga12 = rg.small("ga12", &sm.ga12);
  auto ga22 = rg.small("ga22", &sm.ga22);
  auto gb00 = rg.small("gb00", &sm.gb00);
  auto gb01 = rg.small("gb01", &sm.gb01);
  auto gb02 = rg.small("gb02", &sm.gb02);
  auto gb11 = rg.small("gb11", &sm.gb11);
  auto gb12 = rg.small("gb12", &sm.gb12);
  auto gb22 = rg.small("gb22", &sm.gb22);
  auto CX = rg.small("CX", &sm.CX);
  auto CW = rg.small("CW", &sm.CW);
  auto CP = rg.small("CP", &sm.CP);
  auto NRM = rg.small("norms", &sm.norms);

  const double tol = options.tolerance;
  IterationTiming timing;
  const support::Timer timer;
  for (int it = start; it < max_iterations; ++it) {
    poll_cancel(options);
    obs::IterScope iter("lobpcg.rgt", it);
    rg.begin_iteration();
    rg.xty(X, AX, M);
    rg.copy(AX, R);
    rg.xy(X, M, R, -1.0, 1.0);
    rg.xty(R, R, RR);
    rg.small_op(graph::KernelKind::kConvCheck, {&RR}, {&NRM},
                [smp, tol] { body_conv_check(smp, tol); });
    rg.xty(X, R, CXW);
    rg.xy(X, CXW, R, -1.0, 1.0);
    rg.xty(R, R, GWW);
    rg.small_op(graph::KernelKind::kOrtho, {&GWW}, {&WSC},
                [smp] { body_w_normalizer(smp); });
    rg.xy(R, WSC, W, 1.0, 0.0);
    rg.spmm(W, AW);
    rg.xty(X, AW, ga01);
    rg.xty(X, AP, ga02);
    rg.xty(W, AW, ga11);
    rg.xty(W, AP, ga12);
    rg.xty(P, AP, ga22);
    rg.xty(X, X, gb00);
    rg.xty(X, W, gb01);
    rg.xty(X, P, gb02);
    rg.xty(W, W, gb11);
    rg.xty(W, P, gb12);
    rg.xty(P, P, gb22);
    rg.small_op(graph::KernelKind::kOrtho,
                {&M, &ga01, &ga02, &ga11, &ga12, &ga22, &gb00, &gb01, &gb02,
                 &gb11, &gb12, &gb22},
                {&CX, &CW, &CP}, [smp] { body_rayleigh_ritz(smp); });
    rg.xy(W, CW, Pn, 1.0, 0.0);
    rg.xy(P, CP, Pn, 1.0, 1.0);
    rg.xy(AW, CW, APn, 1.0, 0.0);
    rg.xy(AP, CP, APn, 1.0, 1.0);
    rg.xy(X, CX, Xn, 1.0, 0.0);
    rg.axpy(1.0, Pn, Xn);
    rg.xy(AX, CX, AXn, 1.0, 0.0);
    rg.axpy(1.0, APn, AXn);
    rg.copy(Xn, X);
    rg.copy(AXn, AX);
    rg.copy(Pn, P);
    rg.copy(APn, AP);

    rg.runtime().wait_all(); // per-iteration convergence barrier
    note_iteration_metrics(iter, sm, s.n);
    ++timing.iterations;
    if (sm.converged >= s.n || sm.rr_failed || sm.nonfinite) break;
    maybe_checkpoint(options, s, it + 1, every);
  }
  timing.total_seconds = timer.seconds();
  return finalize(s, timing);
}

} // namespace

LobpcgResult lobpcg(const sparse::Csr& csr, const sparse::Csb& csb,
                    int max_iterations, Version v,
                    const LobpcgOptions& options) {
  validate(options);
  if (max_iterations < 1) {
    throw support::Error("lobpcg: max_iterations must be >= 1, got " +
                         std::to_string(max_iterations));
  }
  if (csb.rows() != csb.cols()) {
    throw support::Error("lobpcg: matrix must be square, got " +
                         std::to_string(csb.rows()) + " x " +
                         std::to_string(csb.cols()));
  }
  if (csb.block_size() != options.block_size) {
    throw support::Error(
        "lobpcg: CSB block size " + std::to_string(csb.block_size()) +
        " does not match options.block_size " +
        std::to_string(options.block_size));
  }
  if (options.nev < 1 || options.nev > csb.rows() / 4) {
    throw support::Error("lobpcg: nev must be in [1, rows/4], got " +
                         std::to_string(options.nev) + " for " +
                         std::to_string(csb.rows()) + " rows");
  }
  if (!(options.tolerance > 0.0) || !std::isfinite(options.tolerance)) {
    throw support::Error("lobpcg: tolerance must be positive and finite");
  }
#ifdef _OPENMP
  omp_set_num_threads(static_cast<int>(options.threads));
#endif
  switch (v) {
    case Version::kLibCsr:
      STS_EXPECTS(csr.rows() == csb.rows());
      return run_bsp(&csr, csb, max_iterations, options);
    case Version::kLibCsb:
      return run_bsp(nullptr, csb, max_iterations, options);
    case Version::kDs:
      return run_ds(csb, max_iterations, options);
    case Version::kFlux:
      return run_flux(csb, max_iterations, options);
    case Version::kRgt:
      return run_rgt(csb, max_iterations, options);
  }
  throw support::Error("unknown solver version");
}

} // namespace sts::solver
