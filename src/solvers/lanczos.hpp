// Lanczos eigensolver (paper Alg. 1) in five execution versions.
//
// SpMV-based: each iteration performs one SpMV, a full reorthogonalization
// against the Krylov basis Q (expressed as the XTY + XY kernel pair of
// Listing 1), a norm, and a normalization. The Krylov basis is kept as an
// m x (k+1) block vector so every iteration has an identical task graph.
//
// All five versions compute identical mathematics; property tests assert
// their tridiagonal coefficients agree to rounding.
#pragma once

#include <vector>

#include "solvers/common.hpp"

namespace sts::solver {

struct LanczosResult {
  std::vector<double> alphas;      // diagonal of the tridiagonal matrix
  std::vector<double> betas;       // off-diagonal (betas[i] couples i,i+1)
  std::vector<double> ritz_values; // ascending eigenvalue estimates
  /// kOk after k full iterations; kBreakdown when beta ~ 0 ended the
  /// recursion early (alphas/betas/ritz_values hold the truncated — still
  /// valid — factorization); kNotFinite when NaN/Inf contaminated an
  /// iteration (the poisoned pair is dropped, earlier data kept).
  SolverStatus status = SolverStatus::kOk;
  IterationTiming timing;
};

/// Runs `k` Lanczos iterations of version `v`. `csr` is used by kLibCsr,
/// `csb` by every other version; both must represent the same symmetric
/// matrix. Throws support::Error on invalid options or k < 1; numerical
/// trouble is reported through LanczosResult::status, never by NaN Ritz
/// values.
[[nodiscard]] LanczosResult lanczos(const sparse::Csr& csr,
                                    const sparse::Csb& csb, int k, Version v,
                                    const SolverOptions& options);

} // namespace sts::solver
