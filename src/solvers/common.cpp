#include "solvers/common.hpp"

namespace sts::solver {

const char* to_string(Version v) {
  switch (v) {
    case Version::kLibCsr: return "libcsr";
    case Version::kLibCsb: return "libcsb";
    case Version::kDs: return "deepsparse";
    case Version::kFlux: return "hpx-flux";
    case Version::kRgt: return "regent-rgt";
  }
  return "?";
}

} // namespace sts::solver
