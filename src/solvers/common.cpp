#include "solvers/common.hpp"

#include "flux/scheduler.hpp"
#include "support/error.hpp"

namespace sts::solver {

flux::Scheduler& acquire_flux_pool(const SolverOptions& options,
                                   std::unique_ptr<flux::Scheduler>& owned) {
  if (options.flux_pool != nullptr) {
    if (options.flux_pool->domain_count() != options.numa_domains) {
      throw support::Error(
          "solver options: flux_pool has " +
          std::to_string(options.flux_pool->domain_count()) +
          " NUMA domains but options.numa_domains is " +
          std::to_string(options.numa_domains));
    }
    return *options.flux_pool;
  }
  owned = std::make_unique<flux::Scheduler>(flux::Scheduler::Config{
      .threads = options.threads,
      .numa_domains = options.numa_domains,
      .numa_aware = options.numa_domains > 1,
      // Private pools honor STS_AFFINITY too, so a bare solver call on a
      // multi-node machine pins its workers just like the service does.
      .affinity = flux::Scheduler::Config::affinity_from_env()});
  return *owned;
}

sparse::Csb::DomainMap place_csb(sparse::Csb& csb, flux::Scheduler& sched) {
  const sparse::Csb::DomainMap map =
      csb.partition_block_rows(sched.domain_count());
  if (sched.domain_count() <= 1) return map; // nothing to migrate
  csb.place_stripes(
      map,
      [&sched](int domain, std::function<void()> work) {
        sched.submit(flux::Task(std::move(work)), domain);
      },
      [&sched] { sched.wait_for_quiescence(); });
  return map;
}

const char* to_string(Version v) {
  switch (v) {
    case Version::kLibCsr: return "libcsr";
    case Version::kLibCsb: return "libcsb";
    case Version::kDs: return "deepsparse";
    case Version::kFlux: return "hpx-flux";
    case Version::kRgt: return "regent-rgt";
  }
  return "?";
}

const char* to_string(SolverStatus s) {
  switch (s) {
    case SolverStatus::kOk: return "ok";
    case SolverStatus::kBreakdown: return "breakdown";
    case SolverStatus::kNotFinite: return "not_finite";
  }
  return "?";
}

void validate(const SolverOptions& options) {
  if (options.block_size <= 0) {
    throw support::Error("solver options: block_size must be positive, got " +
                         std::to_string(options.block_size));
  }
  if (options.threads == 0) {
    throw support::Error("solver options: threads must be positive");
  }
  if (options.numa_domains == 0) {
    throw support::Error("solver options: numa_domains must be >= 1");
  }
  if (options.ckpt_every < 0) {
    throw support::Error("solver options: ckpt_every must be >= 0, got " +
                         std::to_string(options.ckpt_every));
  }
}

} // namespace sts::solver
