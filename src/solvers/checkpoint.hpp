// Versioned, CRC-guarded binary checkpoints of solver iteration state.
//
// A checkpoint captures everything a Lanczos, LOBPCG or CG solve needs to
// resume bit-identically from an iteration boundary: the basis/block
// vectors, the scalar recursion coefficients, the completed-iteration
// counter and the RNG seed the initial guess was drawn from. Everything a
// single iteration recomputes from that state (z/proj/beta for Lanczos;
// W/AW/R and the Gram blocks for LOBPCG; z/q and the preconditioner for
// CG) is deliberately not stored.
//
// On-disk format (fixed-width little-endian-as-host integers; checkpoints
// are a crash-recovery mechanism for one machine, not an archival format):
//
//   8 bytes   magic "STSCKPT\0"
//   u32       format version (kFormatVersion)
//   u32       solver kind (Kind)
//   u64       payload length in bytes
//   u32       CRC-32 of the payload
//   u32       reserved (zero)
//   payload   length-prefixed field arrays, see checkpoint.cpp
//
// save() is atomic: the bytes go to a temp file in the same directory,
// fsync, then rename over `path` — a crash mid-write leaves the previous
// checkpoint intact, never a torn one. load() validates magic, version,
// kind, CRC and per-field shapes and throws support::Error on any
// mismatch, so a corrupt file can never yield a half-restored solve.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sts::solver::ckpt {

inline constexpr std::uint32_t kFormatVersion = 1;

enum class Kind : std::uint32_t { kLanczos = 1, kLobpcg = 2, kCg = 3 };

[[nodiscard]] const char* to_string(Kind k);

struct LanczosState {
  std::uint64_t seed = 0;      // options.seed the run started from
  std::int64_t m = 0;          // matrix rows
  std::int64_t cols = 0;       // Krylov basis width (k + 1)
  std::int64_t iterations = 0; // accepted iterations completed
  std::vector<double> alphas;
  std::vector<double> betas;
  std::vector<double> basis; // Q, row-major m x cols (unused columns zero)
  std::vector<double> q;     // current Lanczos vector, m x 1
};

struct LobpcgState {
  std::uint64_t seed = 0;
  std::int64_t m = 0;
  std::int64_t n = 0;          // block width (nev)
  std::int64_t iterations = 0; // iterations completed
  std::int64_t converged = 0;  // eigenpairs below tolerance at checkpoint
  std::vector<double> theta;   // Ritz values at the checkpointed iteration
  std::vector<double> norms;   // residual norms, n entries
  std::vector<double> x, ax, p, ap; // row-major m x n iterate blocks
};

struct CgState {
  std::uint64_t seed = 0;      // options.seed: b is regenerated from it
  std::int64_t m = 0;          // system size
  std::int64_t iterations = 0; // accepted iterations completed
  double rho = 0.0;            // r . z at the checkpointed boundary
  std::vector<double> x, r, p; // iterate, residual, search direction
};

/// One serializable solver state; `kind` selects which member is live.
struct Checkpoint {
  Kind kind = Kind::kLanczos;
  LanczosState lanczos;
  LobpcgState lobpcg;
  CgState cg;
};

/// CRC-32 (IEEE, reflected polynomial 0xEDB88320) of `len` bytes.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t len) noexcept;

/// Atomically writes `c` to `path` (temp file + fsync + rename). The fault
/// site "ckpt:write" fires before any I/O. Throws support::Error on I/O
/// failure; success is counted in solver.ckpt_writes / solver.ckpt_write_ns.
void save(const Checkpoint& c, const std::string& path);

/// Reads and fully validates a checkpoint. Throws support::Error when the
/// file is missing, truncated, CRC-corrupt, from a different format
/// version, or internally inconsistent.
[[nodiscard]] Checkpoint load(const std::string& path);

/// The checkpoint period in effect for a solve: `requested` when positive,
/// else the STS_CKPT_EVERY environment variable, else 10.
[[nodiscard]] int effective_every(int requested);

} // namespace sts::solver::ckpt
