// LOBPCG eigensolver (paper Alg. 2) in five execution versions.
//
// SpMM-based, block width n in 8..16 as in the paper. Each iteration:
//   M = X^T AX;  R = AX - X M;  convergence check on ||R_j||;
//   W = orthonormalize(R - X X^T R);  AW = A W;
//   Rayleigh-Ritz on span{X, W, P} via Gram matrices (block XTY kernels);
//   X,P (and AX,AP) updated from the lowest-n Ritz vectors (XY kernels).
//
// The iteration is expressed with the same XY / XTY / SpMM kernel
// decomposition in all five versions, so the per-iteration task graph is
// the one the paper analyzes (critical path ~29 function calls, abundant
// cross-kernel data reuse on the same vector pieces).
#pragma once

#include <vector>

#include "solvers/common.hpp"

namespace sts::solver {

struct LobpcgOptions : SolverOptions {
  index_t nev = 8;          // block width n (number of eigenpairs)
  double tolerance = 1e-6;  // residual 2-norm per eigenpair
};

struct LobpcgResult {
  std::vector<double> eigenvalues;     // lowest nev, ascending
  std::vector<double> residual_norms;  // per eigenpair at exit
  int converged = 0;                   // eigenpairs below tolerance at exit
  /// kOk normally; kBreakdown when the Rayleigh-Ritz Gram pencil stayed
  /// singular through all conditioning attempts (iteration stopped, the
  /// last sound Ritz values are returned); kNotFinite when NaN/Inf reached
  /// the residual norms or Gram matrices.
  SolverStatus status = SolverStatus::kOk;
  IterationTiming timing;
};

/// Runs up to `max_iterations` LOBPCG iterations of version `v` for the
/// lowest `options.nev` eigenpairs. `csr` is used by kLibCsr, `csb` by all
/// other versions.
[[nodiscard]] LobpcgResult lobpcg(const sparse::Csr& csr,
                                  const sparse::Csb& csb, int max_iterations,
                                  Version v, const LobpcgOptions& options);

} // namespace sts::solver
