// Shared types for the Lanczos / LOBPCG solver drivers.
//
// Every solver exists in five execution versions, matching the paper's
// comparison set:
//   kLibCsr  - BSP, thread-parallel kernels on CSR        ("libcsr")
//   kLibCsb  - BSP, thread-parallel kernels on CSB        ("libcsb")
//   kDs      - DeepSparse: explicit TDG + OpenMP tasks
//   kFlux    - HPX-style futures/dataflow                  ("hpx")
//   kRgt     - Regent-style regions/privileges             ("regent")
#pragma once

#include <string>

#include "la/dense.hpp"
#include "perf/trace.hpp"
#include "sparse/csb.hpp"
#include "sparse/csr.hpp"

namespace sts::solver {

using la::index_t;

enum class Version { kLibCsr, kLibCsb, kDs, kFlux, kRgt };

[[nodiscard]] const char* to_string(Version v);

/// How a solver run ended. Anything other than kOk means the returned
/// result is truncated at the last numerically sound iteration — still
/// valid data, never NaN Ritz values or a crash.
enum class SolverStatus : std::uint8_t {
  kOk,        // ran to the requested iteration/convergence criterion
  kBreakdown, // Lanczos beta ~ 0 (invariant subspace) or singular
              // Rayleigh-Ritz Gram matrix: iteration stopped early
  kNotFinite, // NaN/Inf detected in iterates; results before the
              // contamination point are kept
};

[[nodiscard]] const char* to_string(SolverStatus s);

/// All versions in the paper's presentation order.
inline constexpr Version kAllVersions[] = {
    Version::kLibCsr, Version::kLibCsb, Version::kDs, Version::kFlux,
    Version::kRgt};

struct SolverOptions {
  /// CSB block size == uniform partitioning factor for vector kernels.
  index_t block_size = 4096;
  /// Worker threads for the task runtimes / OpenMP.
  unsigned threads = 2;
  /// Create no tasks for empty CSB blocks (paper Fig. 6).
  bool skip_empty_blocks = true;
  /// Dependency-based (true) vs reduction-based (false) SpMM output
  /// updates (paper Fig. 7). Reduction variant supported by ds and rgt.
  bool dependency_based_spmm = true;
  /// Parallel first-touch initialization of vectors (paper Fig. 5).
  bool first_touch = true;
  /// NUMA domains exposed to the flux scheduler (>=2 enables the
  /// NUMA-aware scheduling hints the paper discusses for HPX on EPYC).
  unsigned numa_domains = 1;
  /// Optional execution trace for flow graphs.
  perf::TraceRecorder* trace = nullptr;
  std::uint64_t seed = 42;
};

/// Throws support::Error if the options are unusable (non-positive block
/// size or thread count, zero NUMA domains). Called by every solver driver
/// before touching a runtime, so misconfiguration surfaces as a catchable
/// error instead of a contract abort deep inside a kernel.
void validate(const SolverOptions& options);

struct IterationTiming {
  double total_seconds = 0.0;   // solver loop only (setup excluded)
  double graph_build_seconds = 0.0; // ds only: TDG generation time
  int iterations = 0;
  [[nodiscard]] double per_iteration() const {
    return iterations > 0 ? total_seconds / iterations : 0.0;
  }
};

} // namespace sts::solver
