// Shared types for the Lanczos / LOBPCG solver drivers.
//
// Every solver exists in five execution versions, matching the paper's
// comparison set:
//   kLibCsr  - BSP, thread-parallel kernels on CSR        ("libcsr")
//   kLibCsb  - BSP, thread-parallel kernels on CSB        ("libcsb")
//   kDs      - DeepSparse: explicit TDG + OpenMP tasks
//   kFlux    - HPX-style futures/dataflow                  ("hpx")
//   kRgt     - Regent-style regions/privileges             ("regent")
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "la/dense.hpp"
#include "perf/trace.hpp"
#include "sparse/csb.hpp"
#include "sparse/csr.hpp"
#include "support/cancel.hpp"

namespace sts::flux {
class Scheduler;
}

namespace sts::solver::ckpt {
struct Checkpoint;
}

namespace sts::solver {

using la::index_t;

enum class Version { kLibCsr, kLibCsb, kDs, kFlux, kRgt };

[[nodiscard]] const char* to_string(Version v);

/// How a solver run ended. Anything other than kOk means the returned
/// result is truncated at the last numerically sound iteration — still
/// valid data, never NaN Ritz values or a crash.
enum class SolverStatus : std::uint8_t {
  kOk,        // ran to the requested iteration/convergence criterion
  kBreakdown, // Lanczos beta ~ 0 (invariant subspace) or singular
              // Rayleigh-Ritz Gram matrix: iteration stopped early
  kNotFinite, // NaN/Inf detected in iterates; results before the
              // contamination point are kept
};

[[nodiscard]] const char* to_string(SolverStatus s);

/// All versions in the paper's presentation order.
inline constexpr Version kAllVersions[] = {
    Version::kLibCsr, Version::kLibCsb, Version::kDs, Version::kFlux,
    Version::kRgt};

struct SolverOptions {
  /// CSB block size == uniform partitioning factor for vector kernels.
  index_t block_size = 4096;
  /// Worker threads for the task runtimes / OpenMP.
  unsigned threads = 2;
  /// Create no tasks for empty CSB blocks (paper Fig. 6).
  bool skip_empty_blocks = true;
  /// Dependency-based (true) vs reduction-based (false) SpMM output
  /// updates (paper Fig. 7). Reduction variant supported by ds and rgt.
  bool dependency_based_spmm = true;
  /// Parallel first-touch initialization of vectors (paper Fig. 5).
  bool first_touch = true;
  /// NUMA domains exposed to the flux scheduler (>=2 enables the
  /// NUMA-aware scheduling hints the paper discusses for HPX on EPYC).
  unsigned numa_domains = 1;
  /// Optional execution trace for flow graphs.
  perf::TraceRecorder* trace = nullptr;
  std::uint64_t seed = 42;
  /// Cooperative cancellation: polled at every iteration boundary (all
  /// runtimes are quiescent there); a request surfaces as support::Cancelled
  /// from the solver call. Null = not cancellable.
  const support::CancelToken* cancel = nullptr;
  /// External work-stealing pool for the kFlux version. When set, the solver
  /// submits to this long-lived pool instead of spinning up a private one
  /// (the pool's thread/domain configuration wins over `threads`, and
  /// `numa_domains` must match the pool's domain count); on any exit —
  /// normal, breakdown, fault, or cancellation — the solver quiesces the
  /// pool and consumes its latched error, leaving it reusable for the next
  /// solve. Null = per-call private scheduler (the historical behaviour).
  flux::Scheduler* flux_pool = nullptr;
  /// Crash resilience (DESIGN.md §12). When non-empty, the solver writes a
  /// versioned, CRC-guarded checkpoint of its iteration state here —
  /// atomically (temp file + fsync + rename) — every effective_every()
  /// accepted iterations, at the same iteration boundaries where the
  /// cancel token is polled. A failed write is contained: counted in
  /// solver.ckpt_errors, previous checkpoint intact, solve continues.
  std::string ckpt_path;
  /// Checkpoint period; 0 defers to STS_CKPT_EVERY (default 10).
  int ckpt_every = 0;
  /// When set, the solver validates the checkpoint against this solve
  /// (kind, shape, seed) and resumes from its iteration counter instead of
  /// iteration 0 — bit-identical to an uninterrupted run under the same
  /// options whenever the kernel schedule is deterministic. Not owned.
  const ckpt::Checkpoint* restore = nullptr;
  /// Elastic-resize hook (DESIGN.md §15): invoked at every iteration
  /// boundary, right after the cancel poll — the same point where all
  /// runtimes are quiescent — so stsd's dispatcher can grow a running
  /// job's flux pool (Scheduler::expand) between iterations. May throw;
  /// the exception propagates exactly like a cancellation would. Null =
  /// fixed-size run (the historical behaviour).
  std::function<void()> resize_poll;
};

/// Iteration-boundary cancellation poll: throws support::Cancelled when
/// options.cancel has been requested, then gives the dispatcher its
/// resize window (see SolverOptions::resize_poll). Every version of every
/// solver calls this at the top of its iteration loop.
inline void poll_cancel(const SolverOptions& options) {
  if (options.cancel != nullptr) options.cancel->throw_if_requested();
  if (options.resize_poll) options.resize_poll();
}

/// Returns the scheduler a kFlux solve should run on: options.flux_pool
/// when set (after validating its domain count against
/// options.numa_domains), otherwise a private scheduler constructed into
/// `owned` from the options' thread/NUMA configuration.
[[nodiscard]] flux::Scheduler& acquire_flux_pool(
    const SolverOptions& options, std::unique_ptr<flux::Scheduler>& owned);

/// First-touch placement of `csb`'s domain stripes onto `sched`'s domains:
/// partitions the block rows (nnz-balanced), then re-materializes each
/// stripe from a task pinned to its owning domain (Csb::place_stripes).
/// With one domain this is a no-op partition — no copy. Returns the map so
/// callers can hand matching hints to the solvers; the solvers themselves
/// recompute the identical map from (matrix, numa_domains).
sparse::Csb::DomainMap place_csb(sparse::Csb& csb, flux::Scheduler& sched);

/// Throws support::Error if the options are unusable (non-positive block
/// size or thread count, zero NUMA domains). Called by every solver driver
/// before touching a runtime, so misconfiguration surfaces as a catchable
/// error instead of a contract abort deep inside a kernel.
void validate(const SolverOptions& options);

struct IterationTiming {
  double total_seconds = 0.0;   // solver loop only (setup excluded)
  double graph_build_seconds = 0.0; // ds only: TDG generation time
  int iterations = 0;
  [[nodiscard]] double per_iteration() const {
    return iterations > 0 ? total_seconds / iterations : 0.0;
  }
};

} // namespace sts::solver
