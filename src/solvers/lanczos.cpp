#include "solvers/lanczos.hpp"

#include <cmath>

#include "bsp/kernels.hpp"
#include "ds/executor.hpp"
#include "ds/program.hpp"
#include "flux/dataflow.hpp"
#include "la/eig.hpp"
#include "obs/obs.hpp"
#include "rgt/runtime.hpp"
#include "solvers/checkpoint.hpp"
#include "support/timer.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace sts::solver {

namespace {

constexpr double kBreakdownFloor = 1e-300;

/// Relative tolerance below which beta counts as an invariant-subspace
/// breakdown: continuing would divide by (numerical) zero and fill the next
/// basis vector with garbage.
constexpr double kBreakdownTol = 1e-12;

/// Records one iteration's (alpha, beta) pair. Returns false when the
/// recursion must stop: on NaN/Inf the poisoned pair is dropped and status
/// becomes kNotFinite; on breakdown the pair is recorded (the truncated
/// tridiagonal matrix is still valid) and status becomes kBreakdown.
bool accept_iteration(double alpha, double beta, std::vector<double>& alphas,
                      std::vector<double>& betas, SolverStatus& status) {
  if (!std::isfinite(alpha) || !std::isfinite(beta)) {
    status = SolverStatus::kNotFinite;
    return false;
  }
  alphas.push_back(alpha);
  betas.push_back(beta);
  if (beta < kBreakdownTol * std::max(1.0, std::abs(alpha))) {
    status = SolverStatus::kBreakdown;
    return false;
  }
  return true;
}

/// Buffers shared by every version. Q holds the full Krylov basis as an
/// m x (k+1) block vector (unused columns stay zero so each iteration's
/// task graph has identical shape).
struct State {
  index_t m = 0;
  index_t cols = 0; // k + 1
  la::DenseMatrix Q;
  la::DenseMatrix q;
  la::DenseMatrix z;
  la::DenseMatrix proj; // (k+1) x 1
  double beta2 = 0.0;
  double beta = 0.0;
};

State make_state(const sparse::Csb& a, int k, const SolverOptions& options) {
  State s;
  s.m = a.rows();
  s.cols = k + 1;
  s.Q = la::DenseMatrix(s.m, s.cols, options.first_touch);
  s.q = la::DenseMatrix(s.m, 1, options.first_touch);
  s.z = la::DenseMatrix(s.m, 1, options.first_touch);
  s.proj = la::DenseMatrix(s.cols, 1);
  support::Xoshiro256 rng(options.seed);
  s.q.fill_random(rng, -1.0, 1.0);
  const double norm = la::nrm2(s.q.flat());
  la::scal(1.0 / norm, s.q.flat());
  for (index_t r = 0; r < s.m; ++r) s.Q.at(r, 0) = s.q.at(r, 0);
  return s;
}

/// Applies options.restore (when set) to freshly-initialized state and
/// returns the iteration to resume from. The checkpoint must describe this
/// exact solve — kind, shape and seed are all validated — so a stale file
/// surfaces as a catchable error, never as silently wrong mathematics.
int apply_restore(const SolverOptions& options, State& s,
                  std::vector<double>& alphas, std::vector<double>& betas) {
  if (options.restore == nullptr) return 0;
  const ckpt::Checkpoint& c = *options.restore;
  if (c.kind != ckpt::Kind::kLanczos) {
    throw support::Error(std::string("lanczos restore: checkpoint holds ") +
                         ckpt::to_string(c.kind) + " state");
  }
  const ckpt::LanczosState& st = c.lanczos;
  // A narrower checkpoint basis is fine as long as every completed column
  // fits: resuming with a larger iteration budget than the interrupted run
  // is legal (the extra columns start zero, exactly as a fresh solve's
  // would). Wider-than-this-solve checkpoints cannot fit and are rejected.
  if (st.m != s.m || st.cols > s.cols || st.iterations >= st.cols) {
    throw support::Error("lanczos restore: checkpoint basis is " +
                         std::to_string(st.m) + "x" + std::to_string(st.cols) +
                         " at iteration " + std::to_string(st.iterations) +
                         ", this solve needs " + std::to_string(s.m) + "x" +
                         std::to_string(s.cols));
  }
  if (st.seed != options.seed) {
    throw support::Error("lanczos restore: checkpoint seed " +
                         std::to_string(st.seed) + " != options.seed " +
                         std::to_string(options.seed));
  }
  alphas = st.alphas;
  betas = st.betas;
  // Row-major m x cols: when the widths differ, remap row by row into the
  // column prefix of this solve's basis.
  if (st.cols == s.cols) {
    std::copy(st.basis.begin(), st.basis.end(), s.Q.flat().begin());
  } else {
    for (index_t r = 0; r < s.m; ++r) {
      std::copy(st.basis.begin() + r * st.cols,
                st.basis.begin() + (r + 1) * st.cols,
                s.Q.flat().begin() + r * s.cols);
    }
  }
  std::copy(st.q.begin(), st.q.end(), s.q.flat().begin());
  obs::counter("solver.ckpt_restores").add();
  return static_cast<int>(st.iterations);
}

/// Writes a checkpoint after `completed` accepted iterations when the
/// options ask for one. Only called where the iteration state is quiescent.
/// A write failure is contained: the atomic rename left any previous
/// checkpoint intact, so the solve logs, counts and carries on.
void maybe_checkpoint(const SolverOptions& options, const State& s,
                      const std::vector<double>& alphas,
                      const std::vector<double>& betas, int completed,
                      int every) {
  if (options.ckpt_path.empty() || completed % every != 0) return;
  ckpt::Checkpoint c;
  c.kind = ckpt::Kind::kLanczos;
  ckpt::LanczosState& st = c.lanczos;
  st.seed = options.seed;
  st.m = s.m;
  st.cols = s.cols;
  st.iterations = completed;
  st.alphas = alphas;
  st.betas = betas;
  st.basis.assign(s.Q.flat().begin(), s.Q.flat().end());
  st.q.assign(s.q.flat().begin(), s.q.flat().end());
  try {
    ckpt::save(c, options.ckpt_path);
  } catch (const std::exception& e) {
    obs::counter("solver.ckpt_errors").add();
    obs::instant(std::string("ckpt: ") + e.what(), "solver");
  }
}

LanczosResult finalize(std::vector<double> alphas, std::vector<double> betas,
                       SolverStatus status, IterationTiming timing) {
  LanczosResult result;
  result.alphas = std::move(alphas);
  result.betas = std::move(betas);
  result.status = status;
  // The tridiagonal matrix is built from the alphas and the couplings
  // beta_1..beta_{k-1}; the trailing beta_k is the next-residual norm.
  std::vector<double> off = result.betas;
  if (!off.empty()) off.pop_back();
  result.ritz_values = la::tridiag_eigenvalues(result.alphas, off);
  result.timing = timing;
  return result;
}

// --------------------------------------------------------------------------
// BSP versions (libcsr / libcsb)
// --------------------------------------------------------------------------

LanczosResult run_bsp(const sparse::Csr* csr, const sparse::Csb& csb, int k,
                      const SolverOptions& options) {
  State s = make_state(csb, k, options);
  const index_t chunk = options.block_size;
  std::vector<double> alphas;
  std::vector<double> betas;
  SolverStatus status = SolverStatus::kOk;
  const int start = apply_restore(options, s, alphas, betas);
  const int every = ckpt::effective_every(options.ckpt_every);

  IterationTiming timing;
  const support::Timer timer;
  for (int i = start; i < k; ++i) {
    poll_cancel(options);
    obs::IterScope iter(csr != nullptr ? "lanczos.libcsr" : "lanczos.libcsb",
                        i);
    if (csr != nullptr) {
      bsp::spmv(*csr, s.q.flat(), s.z.flat());
    } else {
      bsp::spmv(csb, s.q.flat(), s.z.flat());
    }
    bsp::xty(s.Q.view(), s.z.view(), s.proj.view(), chunk);
    const double alpha = s.proj.at(i, 0);
    bsp::xy(s.Q.view(), s.proj.view(), s.z.view(), chunk, -1.0, 1.0);
    const double beta = std::sqrt(bsp::dot(s.z.flat(), s.z.flat()));
    iter.metric("alpha", alpha);
    iter.metric("beta", beta);
    ++timing.iterations;
    if (!accept_iteration(alpha, beta, alphas, betas, status)) break;
    const double inv = 1.0 / std::max(beta, kBreakdownFloor);
    la::DenseMatrix* q = &s.q;
    la::DenseMatrix* z = &s.z;
    la::DenseMatrix* Q = &s.Q;
    const index_t m = s.m;
    const index_t col = i + 1;
#pragma omp parallel for schedule(static)
    for (index_t r = 0; r < m; ++r) {
      const double v = z->at(r, 0) * inv;
      q->at(r, 0) = v;
      Q->at(r, col) = v;
    }
    maybe_checkpoint(options, s, alphas, betas, i + 1, every);
  }
  timing.total_seconds = timer.seconds();
  return finalize(std::move(alphas), std::move(betas), status, timing);
}

// --------------------------------------------------------------------------
// DeepSparse version: the task graph of one iteration is built once and
// re-executed with a barrier (the convergence check) between iterations.
// --------------------------------------------------------------------------

LanczosResult run_ds(const sparse::Csb& csb, int k,
                     const SolverOptions& options) {
#ifdef _OPENMP
  omp_set_num_threads(static_cast<int>(options.threads));
#endif
  State s = make_state(csb, k, options);
  std::vector<double> alphas;
  std::vector<double> betas;
  SolverStatus status = SolverStatus::kOk;
  const int start = apply_restore(options, s, alphas, betas);
  const int every = ckpt::effective_every(options.ckpt_every);
  // Column of Q written by the running iteration.
  index_t cur_col = static_cast<index_t>(start) + 1;

  ds::Program prog(&csb, {.skip_empty_blocks = options.skip_empty_blocks,
                          .dependency_based_spmm =
                              options.dependency_based_spmm,
                          .spmm_buffers =
                              static_cast<std::int32_t>(options.threads)});
  const ds::DataId qid = prog.vec("q", &s.q);
  const ds::DataId zid = prog.vec("z", &s.z);
  const ds::DataId Qid = prog.vec("Q", &s.Q);
  const ds::DataId projid = prog.small("proj", &s.proj);
  double* beta2 = &s.beta2;
  double* beta = &s.beta;
  const ds::DataId b2id = prog.scalar("beta2", beta2);
  const ds::DataId bid = prog.scalar("beta", beta);

  IterationTiming timing;
  const support::Timer build_timer;
  prog.spmm(qid, zid);                    // z = A q
  prog.xty(Qid, zid, projid);             // proj = Q^T z
  prog.xy(Qid, projid, zid, -1.0, 1.0);   // z -= Q proj
  prog.dot(zid, zid, b2id);               // beta2 = z . z
  prog.small_task(
      graph::KernelKind::kNorm,
      [beta2, beta] { *beta = std::max(std::sqrt(*beta2), kBreakdownFloor); },
      {b2id}, {bid});
  prog.scale_into(zid, bid, /*reciprocal=*/true, qid); // q = z / beta
  prog.copy_into_column(qid, Qid, &cur_col);           // Q(:, col) = q
  const graph::Tdg graph = prog.build();
  timing.graph_build_seconds = build_timer.seconds();

  const ds::ExecOptions exec{.mode = ds::ExecMode::kOmpTasks,
                             .trace = options.trace};

  const support::Timer timer;
  for (int i = start; i < k; ++i) {
    poll_cancel(options);
    obs::IterScope iter("lanczos.ds", i);
    ds::execute(graph, exec);
    iter.metric("alpha", s.proj.at(i, 0));
    iter.metric("beta", s.beta);
    ++timing.iterations;
    if (!accept_iteration(s.proj.at(i, 0), s.beta, alphas, betas, status)) {
      break;
    }
    cur_col = i + 2;
    maybe_checkpoint(options, s, alphas, betas, i + 1, every);
  }
  timing.total_seconds = timer.seconds();
  return finalize(std::move(alphas), std::move(betas), status, timing);
}

// --------------------------------------------------------------------------
// flux (HPX-style) version: futures per vector piece, dataflow chains as in
// the paper's Listing 2.
// --------------------------------------------------------------------------

LanczosResult run_flux(const sparse::Csb& csb, int k,
                       const SolverOptions& options) {
  State s = make_state(csb, k, options);
  const index_t b = options.block_size;
  STS_EXPECTS(csb.block_size() == b);
  const index_t np = csb.block_rows();
  const index_t m = s.m;

  std::unique_ptr<flux::Scheduler> owned_sched;
  flux::Scheduler& sched = acquire_flux_pool(options, owned_sched);
  // If anything below unwinds (cancellation, a task fault), quiesce before
  // the iteration state dies — mandatory when `sched` is a shared pool
  // whose workers outlive this call.
  flux::QuiesceOnExit quiesce(sched);
  perf::TraceRecorder* trace = options.trace;

  using Fut = flux::shared_future<void>;
  auto ready = [] { return flux::make_ready_future(); };

  // Piece body wrapper publishing to the unified event stream (bench
  // recorder, Chrome trace, latency histograms).
  auto traced = [&](graph::KernelKind kind, std::int32_t bi, auto fn) {
    return [&sched, trace, kind, bi, fn]() {
      const obs::prof::TaskMark mark("flux", kind);
      if (trace == nullptr && !obs::task_timing_enabled()) {
        fn();
        return;
      }
      perf::TaskEvent ev;
      ev.kind = kind;
      ev.task_id = bi;
      ev.worker = std::max(0, sched.current_worker());
      ev.start_ns = support::now_ns();
      fn();
      ev.end_ns = support::now_ns();
      obs::publish_task("flux", ev, trace);
    };
  };

  auto rows_in = [&](index_t p) { return std::min(b, m - p * b); };
  // Domain hints follow the same nnz-balanced stripe partition
  // place_stripes() used (it is deterministic in (matrix, domains)), so a
  // hinted SpMM task runs on a worker of the node that holds its stripe's
  // pages — the paper's NUMA-aware scheduling + first-touch combination.
  const sparse::Csb::DomainMap dmap =
      csb.partition_block_rows(options.numa_domains);
  auto domain_of = [&](index_t p) -> int {
    return options.numa_domains > 1 ? dmap.owner(p) : -1;
  };

  // Futures threaded across iterations (see the dependence walkthrough in
  // DESIGN.md): per piece, the last write of q/z/Q and outstanding readers
  // whose completion the next writer must observe.
  std::vector<Fut> q_w(static_cast<std::size_t>(np), ready());
  std::vector<Fut> Q_w(static_cast<std::size_t>(np), ready());
  std::vector<Fut> z_w(static_cast<std::size_t>(np), ready());
  std::vector<std::vector<Fut>> q_r(static_cast<std::size_t>(np));
  std::vector<std::vector<Fut>> z_r(static_cast<std::size_t>(np));

  std::vector<double> alphas;
  std::vector<double> betas;
  SolverStatus status = SolverStatus::kOk;
  const int start = apply_restore(options, s, alphas, betas);
  const int every = ckpt::effective_every(options.ckpt_every);
  IterationTiming timing;

  la::DenseMatrix* Q = &s.Q;
  la::DenseMatrix* q = &s.q;
  la::DenseMatrix* z = &s.z;
  la::DenseMatrix* proj = &s.proj;
  double* beta = &s.beta;
  const sparse::Csb* a = &csb;

  // Per-piece partial buffers for proj and beta2.
  la::DenseMatrix proj_part(np, s.cols);
  la::DenseMatrix dot_part(np, 1);

  const support::Timer timer;
  for (int i = start; i < k; ++i) {
    poll_cancel(options);
    // The iteration span covers submission through the convergence-check
    // gets — the driver's view of the iteration; kernel tasks may overlap
    // the next iteration's submissions on the worker tracks.
    obs::IterScope iter("lanczos.flux", i);
    // z = A q: zero, then a dependency chain per output piece.
    std::vector<Fut> z_chain(static_cast<std::size_t>(np));
    for (index_t bi = 0; bi < np; ++bi) {
      auto zero = traced(graph::KernelKind::kZero,
                         static_cast<std::int32_t>(bi), [z, a, bi] {
                           sparse::csb_block_zero(*a, bi, z->view());
                         });
      z_chain[static_cast<std::size_t>(bi)] =
          flux::dataflow_hint(
              sched, domain_of(bi), flux::unwrapping(zero),
              z_w[static_cast<std::size_t>(bi)],
              std::move(z_r[static_cast<std::size_t>(bi)]))
              .share();
      z_r[static_cast<std::size_t>(bi)].clear();
    }
    std::vector<std::vector<Fut>> q_r_now(static_cast<std::size_t>(np));
    for (index_t bi = 0; bi < np; ++bi) {
      for (index_t bj = 0; bj < np; ++bj) {
        if (options.skip_empty_blocks && a->block_empty(bi, bj)) continue;
        auto body = traced(graph::KernelKind::kSpMV,
                           static_cast<std::int32_t>(bi), [q, z, a, bi, bj] {
                             sparse::csb_block_spmm(*a, bi, bj, q->view(),
                                                    z->view());
                           });
        Fut f = flux::dataflow_hint(sched, domain_of(bi),
                                    flux::unwrapping(body),
                                    z_chain[static_cast<std::size_t>(bi)],
                                    q_w[static_cast<std::size_t>(bj)])
                    .share();
        z_chain[static_cast<std::size_t>(bi)] = f;
        q_r_now[static_cast<std::size_t>(bj)].push_back(f);
      }
    }

    // proj = Q^T z: per-piece partials, then a reduction task.
    std::vector<Fut> pp(static_cast<std::size_t>(np));
    la::DenseMatrix* ppart = &proj_part;
    for (index_t p = 0; p < np; ++p) {
      const index_t r0 = p * b;
      const index_t nr = rows_in(p);
      auto body = traced(graph::KernelKind::kXTY,
                         static_cast<std::int32_t>(p), [Q, z, ppart, r0, nr,
                                                        p] {
                           la::MatrixView out{ppart->data() + p * ppart->cols(),
                                              ppart->cols(), 1, 1};
                           la::gemm_tn(1.0, Q->row_block(r0, nr),
                                       z->row_block(r0, nr), 0.0, out);
                         });
      pp[static_cast<std::size_t>(p)] =
          flux::dataflow_hint(sched, domain_of(p), flux::unwrapping(body),
                              z_chain[static_cast<std::size_t>(p)],
                              Q_w[static_cast<std::size_t>(p)])
              .share();
    }
    la::DenseMatrix* projp = proj;
    const index_t kq = s.cols;
    Fut proj_f =
        flux::dataflow(sched,
                       flux::unwrapping(traced(
                           graph::KernelKind::kReduce, -1,
                           [ppart, projp, np, kq] {
                             for (index_t c = 0; c < kq; ++c) {
                               projp->at(c, 0) = 0.0;
                             }
                             for (index_t p = 0; p < np; ++p) {
                               for (index_t c = 0; c < kq; ++c) {
                                 projp->at(c, 0) +=
                                     ppart->at(p, c);
                               }
                             }
                           })),
                       pp)
            .share();

    // z -= Q proj.
    for (index_t p = 0; p < np; ++p) {
      const index_t r0 = p * b;
      const index_t nr = rows_in(p);
      auto body = traced(graph::KernelKind::kXY, static_cast<std::int32_t>(p),
                         [Q, z, projp, r0, nr] {
                           la::gemm(-1.0, Q->row_block(r0, nr), projp->view(),
                                    1.0, z->row_block(r0, nr));
                         });
      Fut f = flux::dataflow_hint(sched, domain_of(p), flux::unwrapping(body),
                                  pp[static_cast<std::size_t>(p)], proj_f)
                  .share();
      z_w[static_cast<std::size_t>(p)] = f;
    }

    // beta = || z ||.
    std::vector<Fut> dp(static_cast<std::size_t>(np));
    la::DenseMatrix* dpart = &dot_part;
    for (index_t p = 0; p < np; ++p) {
      const index_t r0 = p * b;
      const index_t nr = rows_in(p);
      auto body = traced(graph::KernelKind::kDotPartial,
                         static_cast<std::int32_t>(p), [z, dpart, r0, nr, p] {
                           dpart->at(p, 0) =
                               la::dot(z->row_block(r0, nr),
                                       z->row_block(r0, nr));
                         });
      dp[static_cast<std::size_t>(p)] =
          flux::dataflow_hint(sched, domain_of(p), flux::unwrapping(body),
                              z_w[static_cast<std::size_t>(p)])
              .share();
      z_r[static_cast<std::size_t>(p)].push_back(
          dp[static_cast<std::size_t>(p)]);
    }
    Fut beta_f =
        flux::dataflow(sched,
                       flux::unwrapping(traced(graph::KernelKind::kNorm, -1,
                                               [dpart, beta, np] {
                                                 double acc = 0.0;
                                                 for (index_t p = 0; p < np;
                                                      ++p) {
                                                   acc += dpart->at(p, 0);
                                                 }
                                                 *beta = std::max(
                                                     std::sqrt(acc),
                                                     kBreakdownFloor);
                                               })),
                       dp)
            .share();

    // q = z / beta and Q(:, i+1) = q.
    const index_t col = i + 1;
    for (index_t p = 0; p < np; ++p) {
      const index_t r0 = p * b;
      const index_t nr = rows_in(p);
      auto scale_body = traced(graph::KernelKind::kScale,
                               static_cast<std::int32_t>(p),
                               [z, q, beta, r0, nr] {
                                 const double inv = 1.0 / *beta;
                                 for (index_t r = 0; r < nr; ++r) {
                                   q->at(r0 + r, 0) = z->at(r0 + r, 0) * inv;
                                 }
                               });
      Fut scale_f =
          flux::dataflow_hint(sched, domain_of(p),
                              flux::unwrapping(scale_body), beta_f,
                              z_w[static_cast<std::size_t>(p)],
                              std::move(q_r[static_cast<std::size_t>(p)]),
                              std::move(q_r_now[static_cast<std::size_t>(p)]))
              .share();
      q_w[static_cast<std::size_t>(p)] = scale_f;
      z_r[static_cast<std::size_t>(p)].push_back(scale_f);

      auto setcol_body = traced(graph::KernelKind::kAxpy,
                                static_cast<std::int32_t>(p),
                                [q, Q, r0, nr, col] {
                                  for (index_t r = 0; r < nr; ++r) {
                                    Q->at(r0 + r, col) = q->at(r0 + r, 0);
                                  }
                                });
      Fut setcol_f =
          flux::dataflow_hint(sched, domain_of(p),
                              flux::unwrapping(setcol_body), scale_f,
                              pp[static_cast<std::size_t>(p)],
                              z_w[static_cast<std::size_t>(p)])
              .share();
      Q_w[static_cast<std::size_t>(p)] = setcol_f;
      q_r[static_cast<std::size_t>(p)] = {setcol_f};
    }

    // Convergence check: the per-iteration synchronization point.
    proj_f.get(&sched);
    beta_f.get(&sched);
    iter.metric("alpha", s.proj.at(i, 0));
    iter.metric("beta", s.beta);
    ++timing.iterations;
    if (!accept_iteration(s.proj.at(i, 0), s.beta, alphas, betas, status)) {
      break;
    }
    // Checkpointing needs the tail tasks (scale/setcol) drained, not just
    // the convergence gets — quiesce first, and only when a write is due.
    if (!options.ckpt_path.empty() && (i + 1) % every == 0) {
      sched.wait_for_quiescence();
      maybe_checkpoint(options, s, alphas, betas, i + 1, every);
    }
  }
  quiesce.dismiss();
  sched.wait_for_quiescence();
  timing.total_seconds = timer.seconds();
  return finalize(std::move(alphas), std::move(betas), status, timing);
}

// --------------------------------------------------------------------------
// rgt (Regent-style) version: regions + privileges, Listing 3 shape.
// --------------------------------------------------------------------------

LanczosResult run_rgt(const sparse::Csb& csb, int k,
                      const SolverOptions& options) {
  State s = make_state(csb, k, options);
  const index_t b = options.block_size;
  const index_t np = csb.block_rows();
  const index_t m = s.m;
  const index_t kq = s.cols;

  rgt::Runtime rt({.cpu_workers = options.threads,
                   .util_threads = 1,
                   .verify_index_launches = false,
                   .window = 4096});

  la::DenseMatrix proj_part(np, kq);
  la::DenseMatrix dot_part(np, 1);

  using rgt::Privilege;
  using rgt::RegionReq;
  using rgt::TaskLaunch;

  const rgt::RegionId rq = rt.register_region(s.q.flat(), "q");
  const rgt::RegionId rz = rt.register_region(s.z.flat(), "z");
  const rgt::RegionId rQ = rt.register_region(s.Q.flat(), "Q");
  const rgt::RegionId rproj = rt.register_region(s.proj.flat(), "proj");
  const rgt::RegionId rpp = rt.register_region(proj_part.flat(), "proj_part");
  const rgt::RegionId rdp = rt.register_region(dot_part.flat(), "dot_part");
  std::vector<double> beta_cell(1, 0.0);
  const rgt::RegionId rbeta = rt.register_region(beta_cell, "beta");
  rt.partition_equal(rq, static_cast<std::int32_t>(np));
  rt.partition_equal(rz, static_cast<std::int32_t>(np));
  rt.partition_equal(rQ, static_cast<std::int32_t>(np));
  rt.partition_equal(rpp, static_cast<std::int32_t>(np));
  rt.partition_equal(rdp, static_cast<std::int32_t>(np));

  perf::TraceRecorder* trace = options.trace;
  auto traced = [trace](graph::KernelKind kind, std::int32_t bi, auto fn) {
    return [trace, kind, bi, fn](rgt::TaskContext& ctx) {
      const obs::prof::TaskMark mark("rgt", kind);
      if (trace == nullptr && !obs::task_timing_enabled()) {
        fn(ctx);
        return;
      }
      perf::TaskEvent ev;
      ev.kind = kind;
      ev.task_id = bi;
      ev.worker = std::max(0, ctx.worker());
      ev.start_ns = support::now_ns();
      fn(ctx);
      ev.end_ns = support::now_ns();
      obs::publish_task("rgt", ev, trace);
    };
  };

  auto rows_in = [&](index_t p) { return std::min(b, m - p * b); };

  la::DenseMatrix* Q = &s.Q;
  la::DenseMatrix* q = &s.q;
  la::DenseMatrix* z = &s.z;
  la::DenseMatrix* proj = &s.proj;
  la::DenseMatrix* ppart = &proj_part;
  la::DenseMatrix* dpart = &dot_part;
  double* beta = beta_cell.data();
  const sparse::Csb* a = &csb;

  std::vector<double> alphas;
  std::vector<double> betas;
  SolverStatus status = SolverStatus::kOk;
  const int start = apply_restore(options, s, alphas, betas);
  const int every = ckpt::effective_every(options.ckpt_every);
  IterationTiming timing;

  const support::Timer timer;
  for (int i = start; i < k; ++i) {
    poll_cancel(options);
    obs::IterScope iter("lanczos.rgt", i);
    // z = A q.
    if (options.dependency_based_spmm) {
      for (index_t bi = 0; bi < np; ++bi) {
        rt.execute({traced(graph::KernelKind::kZero,
                           static_cast<std::int32_t>(bi),
                           [z, a, bi](rgt::TaskContext&) {
                             sparse::csb_block_zero(*a, bi, z->view());
                           }),
                    {{rz, static_cast<std::int32_t>(bi), Privilege::kWrite}},
                    "zero"});
      }
      for (index_t bi = 0; bi < np; ++bi) {
        for (index_t bj = 0; bj < np; ++bj) {
          if (options.skip_empty_blocks && a->block_empty(bi, bj)) continue;
          rt.execute(
              {traced(graph::KernelKind::kSpMV,
                      static_cast<std::int32_t>(bi),
                      [q, z, a, bi, bj](rgt::TaskContext&) {
                        sparse::csb_block_spmm(*a, bi, bj, q->view(),
                                               z->view());
                      }),
               {{rq, static_cast<std::int32_t>(bj), Privilege::kRead},
                {rz, static_cast<std::int32_t>(bi), Privilege::kReadWrite}},
               "spmv"});
        }
      }
    } else {
      // Reduction-based variant (paper Fig. 7): every task reduces into a
      // per-worker copy of the whole output vector.
      rt.execute({traced(graph::KernelKind::kZero, -1,
                         [z](rgt::TaskContext&) { z->fill(0.0); }),
                  {{rz, -1, Privilege::kWrite}},
                  "zero"});
      for (index_t bi = 0; bi < np; ++bi) {
        for (index_t bj = 0; bj < np; ++bj) {
          if (options.skip_empty_blocks && a->block_empty(bi, bj)) continue;
          rt.execute(
              {traced(graph::KernelKind::kSpMV,
                      static_cast<std::int32_t>(bi),
                      [q, a, bi, bj, rz, m](rgt::TaskContext& ctx) {
                        std::span<double> buf = ctx.reduce_target(rz);
                        STS_ASSERT(buf.size() ==
                                   static_cast<std::size_t>(m));
                        sparse::csb_block_spmv(*a, bi, bj,
                                               {q->data(),
                                                static_cast<std::size_t>(m)},
                                               buf);
                      }),
               {{rq, static_cast<std::int32_t>(bj), Privilege::kRead},
                {rz, -1, Privilege::kReduce}},
               "spmv-reduce"});
        }
      }
    }

    // proj = Q^T z (partials via index launch, then a reduce task).
    rt.index_launch(static_cast<std::int32_t>(np), [&](std::int32_t p) {
      const index_t r0 = static_cast<index_t>(p) * b;
      const index_t nr = rows_in(p);
      return TaskLaunch{
          traced(graph::KernelKind::kXTY, p,
                 [Q, z, ppart, r0, nr, p](rgt::TaskContext&) {
                   la::MatrixView out{ppart->data() + p * ppart->cols(),
                                      ppart->cols(), 1, 1};
                   la::gemm_tn(1.0, Q->row_block(r0, nr),
                               z->row_block(r0, nr), 0.0, out);
                 }),
          {{rQ, p, Privilege::kRead},
           {rz, p, Privilege::kRead},
           {rpp, p, Privilege::kWrite}},
          "xty"};
    });
    rt.execute({traced(graph::KernelKind::kReduce, -1,
                       [ppart, proj, np, kq](rgt::TaskContext&) {
                         for (index_t c = 0; c < kq; ++c) {
                           proj->at(c, 0) = 0.0;
                         }
                         for (index_t p = 0; p < np; ++p) {
                           for (index_t c = 0; c < kq; ++c) {
                             proj->at(c, 0) += ppart->at(p, c);
                           }
                         }
                       }),
                {{rpp, -1, Privilege::kRead},
                 {rproj, -1, Privilege::kWrite}},
                "reduce"});

    // z -= Q proj.
    rt.index_launch(static_cast<std::int32_t>(np), [&](std::int32_t p) {
      const index_t r0 = static_cast<index_t>(p) * b;
      const index_t nr = rows_in(p);
      return TaskLaunch{
          traced(graph::KernelKind::kXY, p,
                 [Q, z, proj, r0, nr](rgt::TaskContext&) {
                   la::gemm(-1.0, Q->row_block(r0, nr), proj->view(), 1.0,
                            z->row_block(r0, nr));
                 }),
          {{rQ, p, Privilege::kRead},
           {rproj, -1, Privilege::kRead},
           {rz, p, Privilege::kReadWrite}},
          "xy"};
    });

    // beta = || z ||.
    rt.index_launch(static_cast<std::int32_t>(np), [&](std::int32_t p) {
      const index_t r0 = static_cast<index_t>(p) * b;
      const index_t nr = rows_in(p);
      return TaskLaunch{
          traced(graph::KernelKind::kDotPartial, p,
                 [z, dpart, r0, nr, p](rgt::TaskContext&) {
                   dpart->at(p, 0) = la::dot(z->row_block(r0, nr),
                                             z->row_block(r0, nr));
                 }),
          {{rz, p, Privilege::kRead}, {rdp, p, Privilege::kWrite}},
          "dot"};
    });
    rt.execute({traced(graph::KernelKind::kNorm, -1,
                       [dpart, beta, np](rgt::TaskContext&) {
                         double acc = 0.0;
                         for (index_t p = 0; p < np; ++p) {
                           acc += dpart->at(p, 0);
                         }
                         *beta = std::max(std::sqrt(acc), kBreakdownFloor);
                       }),
                {{rdp, -1, Privilege::kRead},
                 {rbeta, -1, Privilege::kWrite}},
                "norm"});

    // q = z / beta; Q(:, i+1) = q.
    const index_t col = i + 1;
    rt.index_launch(static_cast<std::int32_t>(np), [&](std::int32_t p) {
      const index_t r0 = static_cast<index_t>(p) * b;
      const index_t nr = rows_in(p);
      return TaskLaunch{
          traced(graph::KernelKind::kScale, p,
                 [z, q, beta, r0, nr](rgt::TaskContext&) {
                   const double inv = 1.0 / *beta;
                   for (index_t r = 0; r < nr; ++r) {
                     q->at(r0 + r, 0) = z->at(r0 + r, 0) * inv;
                   }
                 }),
          {{rz, p, Privilege::kRead},
           {rbeta, -1, Privilege::kRead},
           {rq, p, Privilege::kWrite}},
          "scale"};
    });
    rt.index_launch(static_cast<std::int32_t>(np), [&](std::int32_t p) {
      const index_t r0 = static_cast<index_t>(p) * b;
      const index_t nr = rows_in(p);
      return TaskLaunch{
          traced(graph::KernelKind::kAxpy, p,
                 [q, Q, r0, nr, col](rgt::TaskContext&) {
                   for (index_t r = 0; r < nr; ++r) {
                     Q->at(r0 + r, col) = q->at(r0 + r, 0);
                   }
                 }),
          {{rq, p, Privilege::kRead},
           {rQ, p, Privilege::kReadWrite}},
          "setcol"};
    });

    rt.wait_all(); // convergence check barrier
    iter.metric("alpha", s.proj.at(i, 0));
    iter.metric("beta", *beta);
    ++timing.iterations;
    if (!accept_iteration(s.proj.at(i, 0), *beta, alphas, betas, status)) {
      break;
    }
    maybe_checkpoint(options, s, alphas, betas, i + 1, every);
  }
  timing.total_seconds = timer.seconds();
  return finalize(std::move(alphas), std::move(betas), status, timing);
}

} // namespace

LanczosResult lanczos(const sparse::Csr& csr, const sparse::Csb& csb, int k,
                      Version v, const SolverOptions& options) {
  validate(options);
  if (k < 1) {
    throw support::Error("lanczos: iteration count must be >= 1, got " +
                         std::to_string(k));
  }
  if (csb.rows() != csb.cols()) {
    throw support::Error("lanczos: matrix must be square, got " +
                         std::to_string(csb.rows()) + " x " +
                         std::to_string(csb.cols()));
  }
  if (csb.block_size() != options.block_size) {
    throw support::Error(
        "lanczos: CSB block size " + std::to_string(csb.block_size()) +
        " does not match options.block_size " +
        std::to_string(options.block_size));
  }
#ifdef _OPENMP
  omp_set_num_threads(static_cast<int>(options.threads));
#endif
  switch (v) {
    case Version::kLibCsr:
      STS_EXPECTS(csr.rows() == csb.rows());
      return run_bsp(&csr, csb, k, options);
    case Version::kLibCsb:
      return run_bsp(nullptr, csb, k, options);
    case Version::kDs:
      return run_ds(csb, k, options);
    case Version::kFlux:
      return run_flux(csb, k, options);
    case Version::kRgt:
      return run_rgt(csb, k, options);
  }
  throw support::Error("unknown solver version");
}

} // namespace sts::solver
