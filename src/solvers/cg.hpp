// Preconditioned Conjugate Gradient solver — the third leg of the paper's
// sparse-solver workload set next to Lanczos and LOBPCG.
//
// CG solves A x = b for a symmetric positive-definite A. Unlike the two
// eigensolvers, its per-iteration task graph is not embarrassingly
// parallel: with an IC(0) preconditioner every iteration runs two sparse
// triangular solves whose block-level dependency DAG (la/sptrsv.hpp) is
// where task scheduling actually decides performance. The right-hand side
// is drawn deterministically from options.seed (uniform in [-1, 1]), so a
// run is reproducible from (matrix, options) alone and checkpoints can
// validate against the seed the way the eigensolvers do.
//
// Execution versions: kLibCsr and kLibCsb are the BSP baselines (OpenMP
// kernels, CSR-based resp. CSB-based triangular solves); kFlux runs SpMV
// and the vector updates as per-block dataflow tasks and the IC(0)
// triangular solves as the DAG-scheduled flux SpTRSV, composing with NUMA
// domain hints and external per-job pools. kDs and kRgt are not
// implemented for CG and throw support::Error.
#pragma once

#include <vector>

#include "solvers/common.hpp"

namespace sts::solver {

enum class Precond : std::uint8_t { kNone, kJacobi, kIc0 };

[[nodiscard]] const char* to_string(Precond p);

struct CgOptions {
  Precond precond = Precond::kNone;
  /// Convergence criterion: ||r|| <= tol * ||b||.
  double tol = 1e-8;
  /// Iteration cap; reaching it without convergence is reported through
  /// CgResult::converged, not an error.
  int max_iterations = 500;
};

struct CgResult {
  std::vector<double> x; // iterate at exit (the solution when converged)
  /// Relative residual ||r|| / ||b|| after each accepted iteration.
  std::vector<double> residual_norms;
  double relative_residual = 0.0; // at exit
  int iterations = 0;             // accepted iterations performed
  bool converged = false;
  /// IC(0) diagonal shift the factorization settled on (0 without ic0 or
  /// when the unshifted factorization succeeded).
  double precond_shift = 0.0;
  /// SpTRSV level-schedule length in waves (0 without ic0): the critical
  /// path of the triangular-solve DAG.
  index_t level_span = 0;
  /// kOk, or kBreakdown when p^T A p lost positivity (A not SPD within
  /// rounding), or kNotFinite when NaN/Inf contaminated an iteration. The
  /// returned x is the last numerically sound iterate.
  SolverStatus status = SolverStatus::kOk;
  IterationTiming timing;
};

/// Solves A x = b with b drawn from options.seed. `csr` is used by kLibCsr
/// (and for building the IC(0) factor in every version); `csb` by kLibCsb
/// and kFlux; both must represent the same SPD matrix. Throws
/// support::Error on invalid options, non-square input, unsupported
/// version, or a preconditioner failure (structurally missing diagonal,
/// IC(0) shift exhaustion).
[[nodiscard]] CgResult cg(const sparse::Csr& csr, const sparse::Csb& csb,
                          Version v, const CgOptions& cg_options,
                          const SolverOptions& options);

} // namespace sts::solver
