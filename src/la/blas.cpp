#include "la/blas.hpp"

#include <cmath>

namespace sts::la {

void gemm(double alpha, ConstMatrixView a, ConstMatrixView b, double beta,
          MatrixView c) {
  STS_EXPECTS(a.rows == c.rows && b.cols == c.cols && a.cols == b.rows);
  // i-k-j loop order keeps the inner loop streaming over rows of B and C,
  // which vectorizes and stays cache-friendly for tall-skinny blocks.
  for (index_t i = 0; i < c.rows; ++i) {
    double* ci = c.row(i);
    if (beta == 0.0) {
      for (index_t j = 0; j < c.cols; ++j) ci[j] = 0.0;
    } else if (beta != 1.0) {
      for (index_t j = 0; j < c.cols; ++j) ci[j] *= beta;
    }
    const double* ai = a.row(i);
    for (index_t k = 0; k < a.cols; ++k) {
      const double aik = alpha * ai[k];
      if (aik == 0.0) continue;
      const double* bk = b.row(k);
      for (index_t j = 0; j < c.cols; ++j) ci[j] += aik * bk[j];
    }
  }
}

void gemm_tn(double alpha, ConstMatrixView a, ConstMatrixView b, double beta,
             MatrixView c) {
  STS_EXPECTS(a.cols == c.rows && b.cols == c.cols && a.rows == b.rows);
  if (beta == 0.0) {
    for (index_t i = 0; i < c.rows; ++i) {
      double* ci = c.row(i);
      for (index_t j = 0; j < c.cols; ++j) ci[j] = 0.0;
    }
  } else if (beta != 1.0) {
    for (index_t i = 0; i < c.rows; ++i) {
      double* ci = c.row(i);
      for (index_t j = 0; j < c.cols; ++j) ci[j] *= beta;
    }
  }
  // Accumulate rank-1 contributions row-of-A at a time; C is k x n and small
  // (k, n <= 48 in LOBPCG), so it stays resident in L1 while A and B stream.
  for (index_t r = 0; r < a.rows; ++r) {
    const double* ar = a.row(r);
    const double* br = b.row(r);
    for (index_t i = 0; i < c.rows; ++i) {
      const double av = alpha * ar[i];
      if (av == 0.0) continue;
      double* ci = c.row(i);
      for (index_t j = 0; j < c.cols; ++j) ci[j] += av * br[j];
    }
  }
}

void axpy(double alpha, ConstMatrixView x, MatrixView y) {
  STS_EXPECTS(x.rows == y.rows && x.cols == y.cols);
  for (index_t i = 0; i < x.rows; ++i) {
    const double* xi = x.row(i);
    double* yi = y.row(i);
    for (index_t j = 0; j < x.cols; ++j) yi[j] += alpha * xi[j];
  }
}

void scal(double alpha, MatrixView x) {
  for (index_t i = 0; i < x.rows; ++i) {
    double* xi = x.row(i);
    for (index_t j = 0; j < x.cols; ++j) xi[j] *= alpha;
  }
}

void copy(ConstMatrixView x, MatrixView y) {
  STS_EXPECTS(x.rows == y.rows && x.cols == y.cols);
  for (index_t i = 0; i < x.rows; ++i) {
    const double* xi = x.row(i);
    double* yi = y.row(i);
    for (index_t j = 0; j < x.cols; ++j) yi[j] = xi[j];
  }
}

double dot(ConstMatrixView x, ConstMatrixView y) {
  STS_EXPECTS(x.rows == y.rows && x.cols == y.cols);
  double acc = 0.0;
  for (index_t i = 0; i < x.rows; ++i) {
    const double* xi = x.row(i);
    const double* yi = y.row(i);
    for (index_t j = 0; j < x.cols; ++j) acc += xi[j] * yi[j];
  }
  return acc;
}

double norm_fro(ConstMatrixView x) { return std::sqrt(dot(x, x)); }

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  STS_EXPECTS(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scal(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

double dot(std::span<const double> x, std::span<const double> y) {
  STS_EXPECTS(x.size() == y.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

double nrm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

} // namespace sts::la
