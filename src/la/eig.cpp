#include "la/eig.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/error.hpp"

namespace sts::la {

namespace {

/// Sorts (values, column vectors) ascending by value.
void sort_eigenpairs(std::vector<double>& values, DenseMatrix& vectors) {
  const index_t n = static_cast<index_t>(values.size());
  std::vector<index_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), index_t{0});
  std::sort(order.begin(), order.end(), [&](index_t i, index_t j) {
    return values[static_cast<std::size_t>(i)] <
           values[static_cast<std::size_t>(j)];
  });
  std::vector<double> sorted_values(static_cast<std::size_t>(n));
  DenseMatrix sorted_vectors(n, n);
  for (index_t c = 0; c < n; ++c) {
    const index_t src = order[static_cast<std::size_t>(c)];
    sorted_values[static_cast<std::size_t>(c)] =
        values[static_cast<std::size_t>(src)];
    for (index_t r = 0; r < n; ++r) {
      sorted_vectors.at(r, c) = vectors.at(r, src);
    }
  }
  values = std::move(sorted_values);
  vectors = std::move(sorted_vectors);
}

} // namespace

EigenResult jacobi_eigen(ConstMatrixView a, double tol, int max_sweeps) {
  STS_EXPECTS(a.rows == a.cols);
  const index_t n = a.rows;
  DenseMatrix work(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      // Use the upper triangle as ground truth so callers may pass matrices
      // whose lower triangle was scratched by a prior factorization.
      work.at(i, j) = (i <= j) ? a.at(i, j) : a.at(j, i);
    }
  }
  DenseMatrix v(n, n);
  for (index_t i = 0; i < n; ++i) v.at(i, i) = 1.0;

  auto off_norm = [&]() {
    double s = 0.0;
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = i + 1; j < n; ++j) s += work.at(i, j) * work.at(i, j);
    }
    return std::sqrt(2.0 * s);
  };

  double frob = 0.0;
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) frob += work.at(i, j) * work.at(i, j);
  }
  frob = std::sqrt(frob);
  const double stop = tol * std::max(frob, 1.0);

  for (int sweep = 0; sweep < max_sweeps && off_norm() > stop; ++sweep) {
    for (index_t p = 0; p < n - 1; ++p) {
      for (index_t q = p + 1; q < n; ++q) {
        const double apq = work.at(p, q);
        if (std::abs(apq) <= stop / static_cast<double>(n * n)) continue;
        const double app = work.at(p, p);
        const double aqq = work.at(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply the rotation to rows/cols p and q of the (symmetric) work
        // matrix and accumulate it into V.
        for (index_t k = 0; k < n; ++k) {
          const double akp = work.at(k, p);
          const double akq = work.at(k, q);
          work.at(k, p) = c * akp - s * akq;
          work.at(k, q) = s * akp + c * akq;
        }
        for (index_t k = 0; k < n; ++k) {
          const double apk = work.at(p, k);
          const double aqk = work.at(q, k);
          work.at(p, k) = c * apk - s * aqk;
          work.at(q, k) = s * apk + c * aqk;
        }
        for (index_t k = 0; k < n; ++k) {
          const double vkp = v.at(k, p);
          const double vkq = v.at(k, q);
          v.at(k, p) = c * vkp - s * vkq;
          v.at(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  EigenResult result;
  result.values.resize(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    result.values[static_cast<std::size_t>(i)] = work.at(i, i);
  }
  result.vectors = std::move(v);
  sort_eigenpairs(result.values, result.vectors);
  return result;
}

std::vector<double> tridiag_eigenvalues(std::vector<double> alpha,
                                        std::vector<double> beta) {
  const std::size_t n = alpha.size();
  STS_EXPECTS(beta.size() + 1 == n || (n == 0 && beta.empty()));
  if (n == 0) return {};
  std::vector<double> d = std::move(alpha);
  std::vector<double> e = std::move(beta);
  e.push_back(0.0);

  // Implicit QL with Wilkinson shift (classic tql1 recurrence).
  for (std::size_t l = 0; l < n; ++l) {
    int iter = 0;
    std::size_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::abs(d[m]) + std::abs(d[m + 1]);
        if (std::abs(e[m]) <= 1e-300 || std::abs(e[m]) <= 1e-15 * dd) break;
      }
      if (m != l) {
        if (++iter > 60) {
          throw support::Error("tridiag_eigenvalues: QL failed to converge");
        }
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = std::hypot(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + std::copysign(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        for (std::size_t i = m; i-- > l;) {
          double f = s * e[i];
          const double b = c * e[i];
          r = std::hypot(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
        }
        if (r == 0.0 && m > l + 1) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
  std::sort(d.begin(), d.end());
  return d;
}

bool cholesky_lower(MatrixView a) {
  STS_EXPECTS(a.rows == a.cols);
  const index_t n = a.rows;
  for (index_t j = 0; j < n; ++j) {
    double diag = a.at(j, j);
    for (index_t k = 0; k < j; ++k) diag -= a.at(j, k) * a.at(j, k);
    if (diag <= 0.0) return false;
    const double ljj = std::sqrt(diag);
    a.at(j, j) = ljj;
    for (index_t i = j + 1; i < n; ++i) {
      double v = a.at(i, j);
      for (index_t k = 0; k < j; ++k) v -= a.at(i, k) * a.at(j, k);
      a.at(i, j) = v / ljj;
    }
  }
  return true;
}

void solve_lower(ConstMatrixView l, MatrixView b) {
  STS_EXPECTS(l.rows == l.cols && l.rows == b.rows);
  for (index_t i = 0; i < b.rows; ++i) {
    for (index_t c = 0; c < b.cols; ++c) {
      double v = b.at(i, c);
      for (index_t k = 0; k < i; ++k) v -= l.at(i, k) * b.at(k, c);
      b.at(i, c) = v / l.at(i, i);
    }
  }
}

void solve_lower_transposed(ConstMatrixView l, MatrixView b) {
  STS_EXPECTS(l.rows == l.cols && l.rows == b.rows);
  for (index_t i = b.rows; i-- > 0;) {
    for (index_t c = 0; c < b.cols; ++c) {
      double v = b.at(i, c);
      for (index_t k = i + 1; k < b.rows; ++k) v -= l.at(k, i) * b.at(k, c);
      b.at(i, c) = v / l.at(i, i);
    }
  }
}

EigenResult sym_generalized_eigen(ConstMatrixView a, ConstMatrixView b) {
  STS_EXPECTS(a.rows == a.cols && b.rows == b.cols && a.rows == b.rows);
  const index_t n = a.rows;

  DenseMatrix l(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      l.at(i, j) = (i >= j) ? b.at(i, j) : b.at(j, i);
    }
  }
  if (!cholesky_lower(l.view())) {
    throw support::Error("sym_generalized_eigen: B is not SPD");
  }

  // C = L^{-1} A L^{-T}: solve L * T = A, then L * C^T = T^T (C symmetric).
  DenseMatrix c(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      c.at(i, j) = (i <= j) ? a.at(i, j) : a.at(j, i);
    }
  }
  solve_lower(l.view(), c.view()); // C <- L^{-1} A
  // Transpose in place, then apply L^{-1} again: C <- L^{-1} (L^{-1} A)^T.
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = i + 1; j < n; ++j) std::swap(c.at(i, j), c.at(j, i));
  }
  solve_lower(l.view(), c.view());

  EigenResult std_result = jacobi_eigen(c.view());

  // Back-transform: V = L^{-T} W so that V^T B V = I.
  solve_lower_transposed(l.view(), std_result.vectors.view());
  return std_result;
}

index_t orthonormalize_columns(MatrixView x) {
  const index_t m = x.rows;
  const index_t n = x.cols;
  index_t rank = 0;
  auto col_dot = [&](index_t a, index_t b) {
    double s = 0.0;
    for (index_t r = 0; r < m; ++r) s += x.at(r, a) * x.at(r, b);
    return s;
  };
  for (index_t j = 0; j < n; ++j) {
    // Two MGS passes against already-orthonormalized columns.
    for (int pass = 0; pass < 2; ++pass) {
      for (index_t k = 0; k < j; ++k) {
        const double proj = col_dot(k, j);
        if (proj == 0.0) continue;
        for (index_t r = 0; r < m; ++r) x.at(r, j) -= proj * x.at(r, k);
      }
    }
    const double norm = std::sqrt(col_dot(j, j));
    if (norm <= 1e-12) {
      for (index_t r = 0; r < m; ++r) x.at(r, j) = 0.0;
      continue;
    }
    const double inv = 1.0 / norm;
    for (index_t r = 0; r < m; ++r) x.at(r, j) *= inv;
    ++rank;
  }
  return rank;
}

} // namespace sts::la
