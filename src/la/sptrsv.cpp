#include "la/sptrsv.hpp"

#include <algorithm>
#include <string>

#include "flux/dataflow.hpp"
#include "obs/obs.hpp"
#include "support/error.hpp"

namespace sts::la {

namespace {

using sparse::Csb;

/// x_block[bi] -= L(bi,bj) * x_block[bj]: the gather update one finished
/// predecessor contributes to a pending block row. `x` is the full vector.
void block_gather_sub(const Csb& l, index_t bi, index_t bj,
                      std::span<double> x) {
  const Csb::BlockView v = l.block_view(bi, bj);
  if (v.nnz == 0) return;
  const index_t rbase = bi * l.block_size();
  const index_t cbase = bj * l.block_size();
  for (const Csb::RowSegment& seg : v.segments) {
    double acc = 0.0;
    for (std::int64_t t = seg.begin; t < seg.begin + seg.count; ++t) {
      acc += v.values[t] * x[static_cast<std::size_t>(cbase + v.col(t))];
    }
    x[static_cast<std::size_t>(rbase + seg.row)] -= acc;
  }
}

/// In-place forward solve of the diagonal block: on entry x_block[bi]
/// holds the fully-updated right-hand side, on exit the solution. Row
/// segments are sorted by row and each ends on its diagonal entry, so one
/// forward sweep suffices.
void block_diag_solve(const Csb& l, index_t bi, std::span<double> x) {
  const Csb::BlockView v = l.block_view(bi, bi);
  const index_t base = bi * l.block_size();
  for (const Csb::RowSegment& seg : v.segments) {
    const std::int64_t last = seg.begin + seg.count - 1;
    double acc = x[static_cast<std::size_t>(base + seg.row)];
    for (std::int64_t t = seg.begin; t < last; ++t) {
      acc -= v.values[t] * x[static_cast<std::size_t>(base + v.col(t))];
    }
    x[static_cast<std::size_t>(base + seg.row)] = acc / v.values[last];
  }
}

/// x_block[bj] -= L(bi,bj)^T * x_block[bi]: the transposed gather update
/// of the backward solve (column bj of L^T is row bj of L, so successors'
/// rows scatter into this block's right-hand side).
void block_gather_sub_t(const Csb& l, index_t bi, index_t bj,
                        std::span<double> x) {
  const Csb::BlockView v = l.block_view(bi, bj);
  if (v.nnz == 0) return;
  const index_t rbase = bi * l.block_size();
  const index_t cbase = bj * l.block_size();
  for (const Csb::RowSegment& seg : v.segments) {
    const double xr = x[static_cast<std::size_t>(rbase + seg.row)];
    for (std::int64_t t = seg.begin; t < seg.begin + seg.count; ++t) {
      x[static_cast<std::size_t>(cbase + v.col(t))] -= v.values[t] * xr;
    }
  }
}

/// In-place backward (L^T) solve of the diagonal block: sweep the rows in
/// reverse; each solved entry scatters into the columns below it.
void block_diag_solve_t(const Csb& l, index_t bi, std::span<double> x) {
  const Csb::BlockView v = l.block_view(bi, bi);
  const index_t base = bi * l.block_size();
  for (std::size_t s = v.segments.size(); s-- > 0;) {
    const Csb::RowSegment& seg = v.segments[s];
    const std::int64_t last = seg.begin + seg.count - 1;
    const double xr = x[static_cast<std::size_t>(base + seg.row)] /
                      v.values[last];
    x[static_cast<std::size_t>(base + seg.row)] = xr;
    for (std::int64_t t = seg.begin; t < last; ++t) {
      x[static_cast<std::size_t>(base + v.col(t))] -= v.values[t] * xr;
    }
  }
}

void copy_block(const Csb& l, index_t bi, std::span<const double> b,
                std::span<double> x) {
  const index_t base = bi * l.block_size();
  const index_t nr = l.rows_in_block(bi);
  if (x.data() + base == b.data() + base) return; // aliasing solve
  std::copy(b.begin() + base, b.begin() + base + nr, x.begin() + base);
}

void check_shapes(const Csb& l, const SptrsvPlan& plan,
                  std::span<const double> b, std::span<double> x) {
  if (plan.block_rows() != l.block_rows()) {
    throw support::Error("sptrsv: plan built for " +
                         std::to_string(plan.block_rows()) +
                         " block rows, matrix has " +
                         std::to_string(l.block_rows()));
  }
  if (b.size() != static_cast<std::size_t>(l.rows()) ||
      x.size() != static_cast<std::size_t>(l.rows())) {
    throw support::Error("sptrsv: vector length does not match matrix rows");
  }
}

} // namespace

SptrsvPlan SptrsvPlan::build(const sparse::Csb& lower) {
  if (lower.rows() != lower.cols()) {
    throw support::Error("sptrsv: factor must be square, got " +
                         std::to_string(lower.rows()) + " x " +
                         std::to_string(lower.cols()));
  }
  const index_t nb = lower.block_rows();
  SptrsvPlan plan;
  plan.row_deps_.resize(static_cast<std::size_t>(nb));
  plan.col_blocks_.resize(static_cast<std::size_t>(nb));

  for (index_t bi = 0; bi < nb; ++bi) {
    for (index_t bj = bi + 1; bj < lower.block_cols(); ++bj) {
      if (!lower.block_empty(bi, bj)) {
        throw support::Error("sptrsv: block (" + std::to_string(bi) + "," +
                             std::to_string(bj) +
                             ") is above the diagonal; factor is not lower "
                             "triangular");
      }
    }
    for (index_t bj = 0; bj < bi; ++bj) {
      if (lower.block_empty(bi, bj)) continue;
      plan.row_deps_[static_cast<std::size_t>(bi)].push_back(bj);
      plan.col_blocks_[static_cast<std::size_t>(bj)].push_back(bi);
    }
    // Diagonal block: one segment per row of the block, each closed by its
    // diagonal entry — what the in-place sweeps divide by.
    const Csb::BlockView v = lower.block_view(bi, bi);
    const index_t nr = lower.rows_in_block(bi);
    if (static_cast<index_t>(v.segments.size()) != nr) {
      throw support::Error("sptrsv: diagonal block " + std::to_string(bi) +
                           " covers " + std::to_string(v.segments.size()) +
                           " of " + std::to_string(nr) +
                           " rows; a structurally missing diagonal makes "
                           "the factor singular");
    }
    for (const Csb::RowSegment& seg : v.segments) {
      const std::int64_t last = seg.begin + seg.count - 1;
      if (v.col(last) != seg.row) {
        throw support::Error(
            "sptrsv: row " + std::to_string(bi * lower.block_size() + seg.row) +
            " has no diagonal entry (or entries above it)");
      }
    }
  }

  // Level schedule: level(bi) = 1 + max level over predecessors. Computable
  // in one ascending pass because every dependency points backwards.
  std::vector<index_t> level(static_cast<std::size_t>(nb), 0);
  index_t span = 0;
  for (index_t bi = 0; bi < nb; ++bi) {
    index_t lv = 0;
    for (const index_t bj : plan.row_deps_[static_cast<std::size_t>(bi)]) {
      lv = std::max(lv, level[static_cast<std::size_t>(bj)] + 1);
    }
    level[static_cast<std::size_t>(bi)] = lv;
    span = std::max(span, lv + 1);
  }
  plan.levels_.resize(static_cast<std::size_t>(span));
  for (index_t bi = 0; bi < nb; ++bi) {
    plan.levels_[static_cast<std::size_t>(level[static_cast<std::size_t>(bi)])]
        .push_back(bi);
  }
  for (const auto& wave : plan.levels_) {
    plan.max_width_ =
        std::max(plan.max_width_, static_cast<index_t>(wave.size()));
  }
  obs::gauge("sptrsv.level_span").observe(span);
  obs::gauge("sptrsv.max_level_width").observe(plan.max_width_);
  return plan;
}

void sptrsv_forward(const sparse::Csb& lower, const SptrsvPlan& plan,
                    std::span<const double> b, std::span<double> x) {
  check_shapes(lower, plan, b, x);
  for (index_t bi = 0; bi < lower.block_rows(); ++bi) {
    copy_block(lower, bi, b, x);
    for (const index_t bj : plan.deps(bi)) {
      block_gather_sub(lower, bi, bj, x);
    }
    block_diag_solve(lower, bi, x);
  }
}

void sptrsv_backward(const sparse::Csb& lower, const SptrsvPlan& plan,
                     std::span<const double> b, std::span<double> x) {
  check_shapes(lower, plan, b, x);
  for (index_t bj = lower.block_rows(); bj-- > 0;) {
    copy_block(lower, bj, b, x);
    for (const index_t bi : plan.transposed_deps(bj)) {
      block_gather_sub_t(lower, bi, bj, x);
    }
    block_diag_solve_t(lower, bj, x);
  }
}

namespace {

/// Shared task-parallel driver for both orientations: submit one future
/// per block row in a topological order (ascending for forward, descending
/// for backward), chained on the plan's DAG edges, then cooperatively wait
/// on every row. The per-row task does the whole gather + in-block solve —
/// coarse enough to amortize task overhead, fine enough that independent
/// waves fill the machine.
template <typename Deps, typename Body>
void run_dag(const sparse::Csb& lower, const SptrsvPlan& plan,
             flux::Scheduler& sched, const sparse::Csb::DomainMap* dmap,
             bool ascending, Deps&& deps_of, Body&& make_body) {
  const index_t nb = lower.block_rows();
  using Fut = flux::shared_future<void>;
  std::vector<Fut> done(static_cast<std::size_t>(nb));
  for (index_t step = 0; step < nb; ++step) {
    const index_t br = ascending ? step : nb - 1 - step;
    const std::vector<index_t>& deps = deps_of(br);
    std::vector<Fut> wait;
    wait.reserve(deps.size());
    for (const index_t d : deps) wait.push_back(done[static_cast<std::size_t>(d)]);
    const int hint = dmap != nullptr && dmap->domains() > 1
                         ? dmap->owner(br)
                         : -1;
    done[static_cast<std::size_t>(br)] =
        flux::dataflow_hint(sched, hint, flux::unwrapping(make_body(br)),
                            std::move(wait))
            .share();
  }
  for (Fut& f : done) f.get(&sched);
}

} // namespace

void sptrsv_forward(const sparse::Csb& lower, const SptrsvPlan& plan,
                    std::span<const double> b, std::span<double> x,
                    flux::Scheduler& sched,
                    const sparse::Csb::DomainMap* dmap) {
  check_shapes(lower, plan, b, x);
  const sparse::Csb* l = &lower;
  const SptrsvPlan* p = &plan;
  run_dag(
      lower, plan, sched, dmap, /*ascending=*/true,
      [p](index_t bi) -> const std::vector<index_t>& { return p->deps(bi); },
      [l, p, b, x](index_t bi) {
        return [l, p, b, x, bi] {
          const obs::prof::TaskMark mark("flux", graph::KernelKind::kSpTRSV);
          copy_block(*l, bi, b, x);
          for (const index_t bj : p->deps(bi)) {
            block_gather_sub(*l, bi, bj, x);
          }
          block_diag_solve(*l, bi, x);
        };
      });
}

void sptrsv_backward(const sparse::Csb& lower, const SptrsvPlan& plan,
                     std::span<const double> b, std::span<double> x,
                     flux::Scheduler& sched,
                     const sparse::Csb::DomainMap* dmap) {
  check_shapes(lower, plan, b, x);
  const sparse::Csb* l = &lower;
  const SptrsvPlan* p = &plan;
  run_dag(
      lower, plan, sched, dmap, /*ascending=*/false,
      [p](index_t bj) -> const std::vector<index_t>& {
        return p->transposed_deps(bj);
      },
      [l, p, b, x](index_t bj) {
        return [l, p, b, x, bj] {
          const obs::prof::TaskMark mark("flux", graph::KernelKind::kSpTRSV);
          copy_block(*l, bj, b, x);
          for (const index_t bi : p->transposed_deps(bj)) {
            block_gather_sub_t(*l, bi, bj, x);
          }
          block_diag_solve_t(*l, bj, x);
        };
      });
}

} // namespace sts::la
