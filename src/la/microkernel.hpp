// Fixed-width row micro-kernels.
//
// The SpMM task bodies spend their inner loop on "acc[0..N) += a * x[0..N)"
// over the columns of a block vector, with N one of the small LOBPCG widths
// (4/8/16). Writing the loop with a compile-time N lets the compiler fully
// unroll and auto-vectorize it; the runtime-N fallback covers odd widths.
// These are deliberately header-only free functions so they inline into the
// sparse kernels without a call per nonzero.
#pragma once

#include "la/dense.hpp"

namespace sts::la {

/// acc[j] += a * x[j] for j in [0, N). Fully unrolled at compile time.
template <int N>
inline void row_axpy(double a, const double* x, double* acc) {
  for (int j = 0; j < N; ++j) acc[j] += a * x[j];
}

/// y[j] += acc[j] for j in [0, N).
template <int N>
inline void row_add(const double* acc, double* y) {
  for (int j = 0; j < N; ++j) y[j] += acc[j];
}

/// acc[j] += a * x[j] for j in [0, n), runtime width.
inline void row_axpy_n(double a, const double* x, double* acc, index_t n) {
  for (index_t j = 0; j < n; ++j) acc[j] += a * x[j];
}

} // namespace sts::la
