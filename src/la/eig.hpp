// Small dense symmetric eigensolvers and factorizations (LAPACK substitute).
//
// The sparse eigensolvers only ever need *small* dense solves: LOBPCG's
// Rayleigh-Ritz step diagonalizes a 3n x 3n pencil (n <= 16 block columns)
// and Lanczos needs eigenvalues of a k x k symmetric tridiagonal matrix.
// Cyclic Jacobi and implicit-QL are accurate and entirely adequate at these
// sizes; no blocking or parallelism is needed or wanted here.
#pragma once

#include <vector>

#include "la/dense.hpp"

namespace sts::la {

/// Result of a symmetric eigendecomposition: A * vectors(:,i) =
/// values[i] * vectors(:,i), values ascending, vectors orthonormal columns.
struct EigenResult {
  std::vector<double> values;
  DenseMatrix vectors; // n x n, column i = eigenvector i
};

/// Cyclic Jacobi eigensolver for a symmetric matrix (content of `a` is
/// read only from the upper triangle). Intended for n <= ~100.
[[nodiscard]] EigenResult jacobi_eigen(ConstMatrixView a,
                                       double tol = 1e-14,
                                       int max_sweeps = 64);

/// Eigenvalues of the symmetric tridiagonal matrix with diagonal `alpha`
/// (size k) and off-diagonal `beta` (size k-1), via implicit QL with
/// Wilkinson shifts. Returns ascending values.
[[nodiscard]] std::vector<double> tridiag_eigenvalues(
    std::vector<double> alpha, std::vector<double> beta);

/// In-place lower Cholesky of SPD `a` (upper triangle left untouched).
/// Returns false if a non-positive pivot is hit (matrix not SPD within
/// roundoff).
[[nodiscard]] bool cholesky_lower(MatrixView a);

/// Solves L * X = B in place (L lower-triangular, unit or not per diag).
void solve_lower(ConstMatrixView l, MatrixView b);

/// Solves L^T * X = B in place.
void solve_lower_transposed(ConstMatrixView l, MatrixView b);

/// Generalized symmetric eigenproblem A v = lambda B v with SPD B, solved by
/// Cholesky reduction to standard form. values ascending; vectors satisfy
/// V^T B V = I. Throws support::Error if B is not SPD.
[[nodiscard]] EigenResult sym_generalized_eigen(ConstMatrixView a,
                                                ConstMatrixView b);

/// Orthonormalizes the columns of X (m x n, m >= n) in place with two passes
/// of modified Gram-Schmidt. Returns the numerical rank found (columns whose
/// norm collapses are replaced by zero and excluded from the count).
index_t orthonormalize_columns(MatrixView x);

} // namespace sts::la
