// Sparse triangular solves over a lower-triangular CSB matrix, scheduled
// as a block-level dependency DAG.
//
// The triangular-solve DAG is the workload where task scheduling actually
// decides performance (Boehnlein et al.): unlike SpMV's embarrassingly
// parallel block rows, block-row i of L x = b cannot start until every
// block-row j with a nonempty L(i,j), j < i, has produced x_j. This module
//   - builds that dependency structure once per factor (SptrsvPlan):
//     per-block-row predecessor lists, per-block-column successor lists
//     (for the transposed solve), and a level schedule — the partition of
//     block rows into waves whose members are mutually independent;
//   - executes the forward solve L x = b and the backward solve L^T x = b
//     either sequentially (the baseline bench_cg compares against) or as
//     flux tasks: one task per block row, chained through futures exactly
//     along the DAG edges, each hinted to the NUMA domain owning its
//     stripe so the solve composes with place_csb() page placement.
//
// Requirements on L: square, lower triangular (no nonzeros above the
// diagonal), and every row's last in-block entry is its diagonal (CSB
// sorts block entries by (row, col), so this holds whenever the diagonal
// is structurally present — IC(0) factors guarantee it).
#pragma once

#include <span>
#include <vector>

#include "sparse/csb.hpp"

namespace sts::flux {
class Scheduler;
}

namespace sts::la {

/// Immutable schedule for one lower-triangular CSB factor.
class SptrsvPlan {
public:
  SptrsvPlan() = default;

  /// Builds the block DAG + level schedule. Validates triangularity and
  /// the diagonal-last invariant (throws support::Error on violation).
  /// Publishes the forward level count to the sptrsv.level_span gauge —
  /// the DAG's critical-path length in waves, the paper's first-order
  /// predictor of SpTRSV scalability.
  static SptrsvPlan build(const sparse::Csb& lower);

  /// Block rows bj < bi with a nonempty L(bi, bj): what x_bi waits for in
  /// the forward solve.
  [[nodiscard]] const std::vector<index_t>& deps(index_t bi) const {
    return row_deps_[static_cast<std::size_t>(bi)];
  }
  /// Block rows bi > bj with a nonempty L(bi, bj): what x_bj waits for in
  /// the backward (transposed) solve.
  [[nodiscard]] const std::vector<index_t>& transposed_deps(index_t bj) const {
    return col_blocks_[static_cast<std::size_t>(bj)];
  }

  /// Forward waves, in execution order; wave members are independent.
  [[nodiscard]] const std::vector<std::vector<index_t>>& levels() const {
    return levels_;
  }
  /// Critical-path length in waves (== levels().size()).
  [[nodiscard]] index_t level_span() const {
    return static_cast<index_t>(levels_.size());
  }
  /// Widest wave: an upper bound on exploitable task parallelism.
  [[nodiscard]] index_t max_level_width() const { return max_width_; }
  [[nodiscard]] index_t block_rows() const {
    return static_cast<index_t>(row_deps_.size());
  }

private:
  std::vector<std::vector<index_t>> row_deps_;
  std::vector<std::vector<index_t>> col_blocks_;
  std::vector<std::vector<index_t>> levels_;
  index_t max_width_ = 0;
};

/// x = L^-1 b, sequential block walk (the baseline). x and b may alias.
void sptrsv_forward(const sparse::Csb& lower, const SptrsvPlan& plan,
                    std::span<const double> b, std::span<double> x);

/// x = L^-T b, sequential reverse block walk. x and b may alias.
void sptrsv_backward(const sparse::Csb& lower, const SptrsvPlan& plan,
                     std::span<const double> b, std::span<double> x);

/// DAG-scheduled variants: one flux task per block row, dependencies wired
/// through futures along the plan's edges, each task hinted to
/// `dmap->owner(block row)` when `dmap` is non-null (pass the map
/// place_csb() returned so tasks land where their stripe's pages live).
/// Both return after the full solve completed; task failures propagate as
/// exceptions from the scheduler. Must be called from a non-worker thread
/// with no unrelated work outstanding on `sched` only if the caller plans
/// to wait_for_quiescence itself — these functions only wait on their own
/// futures.
void sptrsv_forward(const sparse::Csb& lower, const SptrsvPlan& plan,
                    std::span<const double> b, std::span<double> x,
                    flux::Scheduler& sched,
                    const sparse::Csb::DomainMap* dmap);

void sptrsv_backward(const sparse::Csb& lower, const SptrsvPlan& plan,
                     std::span<const double> b, std::span<double> x,
                     flux::Scheduler& sched,
                     const sparse::Csb::DomainMap* dmap);

} // namespace sts::la
