// Row-major dense matrices and vector blocks.
//
// LOBPCG operates on "block vectors": tall-skinny m x n matrices with
// n in 8..16 columns. This module provides the owning container plus cheap
// non-owning views used by block kernels (each task sees only its b x n
// chunk, exactly as in the paper's CSB-aligned decomposition).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>

#include "support/aligned.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace sts::la {

using index_t = std::int64_t;

/// Non-owning view of a row-major matrix (possibly a row-block of a larger
/// matrix; `ld` is the leading dimension, i.e. the parent's column count).
struct MatrixView {
  double* data = nullptr;
  index_t rows = 0;
  index_t cols = 0;
  index_t ld = 0;

  [[nodiscard]] double& at(index_t r, index_t c) const {
    STS_EXPECTS(r >= 0 && r < rows && c >= 0 && c < cols);
    return data[r * ld + c];
  }
  [[nodiscard]] double* row(index_t r) const {
    STS_EXPECTS(r >= 0 && r < rows);
    return data + r * ld;
  }
};

/// Read-only counterpart of MatrixView.
struct ConstMatrixView {
  const double* data = nullptr;
  index_t rows = 0;
  index_t cols = 0;
  index_t ld = 0;

  ConstMatrixView() = default;
  ConstMatrixView(const double* d, index_t r, index_t c, index_t l)
      : data(d), rows(r), cols(c), ld(l) {}
  /*implicit*/ ConstMatrixView(const MatrixView& v)
      : data(v.data), rows(v.rows), cols(v.cols), ld(v.ld) {}

  [[nodiscard]] double at(index_t r, index_t c) const {
    STS_EXPECTS(r >= 0 && r < rows && c >= 0 && c < cols);
    return data[r * ld + c];
  }
  [[nodiscard]] const double* row(index_t r) const {
    STS_EXPECTS(r >= 0 && r < rows);
    return data + r * ld;
  }
};

/// Owning row-major dense matrix, 64-byte aligned, contiguous (ld == cols).
class DenseMatrix {
public:
  DenseMatrix() = default;

  /// Allocates rows x cols; zero-fills. When `parallel_first_touch` is true
  /// pages are faulted in from parallel threads (paper's first-touch policy).
  DenseMatrix(index_t rows, index_t cols, bool parallel_first_touch = false)
      : rows_(rows), cols_(cols),
        buf_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols)) {
    STS_EXPECTS(rows >= 0 && cols >= 0);
    support::first_touch_zero(buf_.data(), buf_.size(), parallel_first_touch);
  }

  /// Builds from a row-major initializer list of rows (testing convenience).
  DenseMatrix(std::initializer_list<std::initializer_list<double>> init);

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] double* data() noexcept { return buf_.data(); }
  [[nodiscard]] const double* data() const noexcept { return buf_.data(); }

  [[nodiscard]] double& at(index_t r, index_t c) {
    STS_EXPECTS(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return buf_[static_cast<std::size_t>(r * cols_ + c)];
  }
  [[nodiscard]] double at(index_t r, index_t c) const {
    STS_EXPECTS(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return buf_[static_cast<std::size_t>(r * cols_ + c)];
  }

  [[nodiscard]] MatrixView view() noexcept {
    return {buf_.data(), rows_, cols_, cols_};
  }
  [[nodiscard]] ConstMatrixView view() const noexcept {
    return {buf_.data(), rows_, cols_, cols_};
  }

  /// View of the row range [r0, r0+nr): the b x n chunk a block task owns.
  [[nodiscard]] MatrixView row_block(index_t r0, index_t nr) {
    STS_EXPECTS(r0 >= 0 && nr >= 0 && r0 + nr <= rows_);
    return {buf_.data() + r0 * cols_, nr, cols_, cols_};
  }
  [[nodiscard]] ConstMatrixView row_block(index_t r0, index_t nr) const {
    STS_EXPECTS(r0 >= 0 && nr >= 0 && r0 + nr <= rows_);
    return {buf_.data() + r0 * cols_, nr, cols_, cols_};
  }

  [[nodiscard]] std::span<double> flat() noexcept {
    return {buf_.data(), buf_.size()};
  }
  [[nodiscard]] std::span<const double> flat() const noexcept {
    return {buf_.data(), buf_.size()};
  }

  void fill(double value);
  void fill_random(support::Xoshiro256& rng, double lo = -1.0, double hi = 1.0);

  /// Deep copy (the class itself is move-only to keep block buffers from
  /// being copied by accident inside task bodies).
  [[nodiscard]] DenseMatrix clone() const;

  DenseMatrix(DenseMatrix&&) noexcept = default;
  DenseMatrix& operator=(DenseMatrix&&) noexcept = default;
  DenseMatrix(const DenseMatrix&) = delete;
  DenseMatrix& operator=(const DenseMatrix&) = delete;

private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  support::AlignedBuffer<double> buf_;
};

} // namespace sts::la
