// Dense BLAS-like kernels (the repository's MKL substitute).
//
// Everything here is sequential by design: these are the *task bodies* that
// the runtimes (bsp / ds / flux / rgt) invoke on b x n blocks, mirroring the
// paper's use of single-threaded MKL calls inside each task. Thread-level
// parallelism lives in the runtimes, not here.
//
// Naming follows BLAS: gemm is C = alpha*A*B + beta*C, gemm_tn uses A^T.
#pragma once

#include <span>

#include "la/dense.hpp"

namespace sts::la {

/// C(m x n) = alpha * A(m x k) * B(k x n) + beta * C. Views may alias only
/// if A/B do not overlap C.
void gemm(double alpha, ConstMatrixView a, ConstMatrixView b, double beta,
          MatrixView c);

/// C(k x n) = alpha * A(m x k)^T * B(m x n) + beta * C. This is the paper's
/// XTY kernel body: a k x n partial inner product from one row block.
void gemm_tn(double alpha, ConstMatrixView a, ConstMatrixView b, double beta,
             MatrixView c);

/// y = alpha * x + y (same shape).
void axpy(double alpha, ConstMatrixView x, MatrixView y);

/// x *= alpha.
void scal(double alpha, MatrixView x);

/// Element count must match; copies x into y.
void copy(ConstMatrixView x, MatrixView y);

/// Frobenius inner product <x, y> = sum_ij x_ij * y_ij.
[[nodiscard]] double dot(ConstMatrixView x, ConstMatrixView y);

/// Frobenius norm.
[[nodiscard]] double norm_fro(ConstMatrixView x);

/// Vector (span) versions used by Lanczos, whose vectors are 1-column.
void axpy(double alpha, std::span<const double> x, std::span<double> y);
void scal(double alpha, std::span<double> x);
[[nodiscard]] double dot(std::span<const double> x, std::span<const double> y);
[[nodiscard]] double nrm2(std::span<const double> x);

/// Flop counts used by the schedule simulator to cost tasks.
[[nodiscard]] constexpr double gemm_flops(index_t m, index_t n, index_t k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}

} // namespace sts::la
