#include "la/dense.hpp"

#include <algorithm>

namespace sts::la {

DenseMatrix::DenseMatrix(
    std::initializer_list<std::initializer_list<double>> init)
    : DenseMatrix(static_cast<index_t>(init.size()),
                  init.size() == 0
                      ? 0
                      : static_cast<index_t>(init.begin()->size())) {
  index_t r = 0;
  for (const auto& row : init) {
    STS_EXPECTS(static_cast<index_t>(row.size()) == cols_);
    std::copy(row.begin(), row.end(), buf_.data() + r * cols_);
    ++r;
  }
}

void DenseMatrix::fill(double value) {
  std::fill(buf_.begin(), buf_.end(), value);
}

void DenseMatrix::fill_random(support::Xoshiro256& rng, double lo, double hi) {
  for (double& x : buf_) x = rng.uniform(lo, hi);
}

DenseMatrix DenseMatrix::clone() const {
  DenseMatrix out(rows_, cols_);
  std::copy(buf_.begin(), buf_.end(), out.buf_.begin());
  return out;
}

} // namespace sts::la
