// Small-buffer-optimized move-only callable for the flux scheduler.
//
// std::function costs a heap allocation for any capture larger than the
// implementation's tiny inline buffer (typically 16 bytes) and drags in
// copyability it never needs on the task path. The scheduler's hot closures
// -- dataflow continuations capturing one shared_ptr, SpMM block bodies
// capturing a few pointers and indices -- fit comfortably in 48 bytes, so
// Task stores them inline and falls back to the heap only above that.
//
// Move-only by design: a queued task is executed exactly once, and the
// move lets promise-completing closures own their promise state without a
// shared_ptr indirection.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <type_traits>
#include <utility>

namespace sts::flux {

class Task {
public:
  /// Closures up to this size (and max_align_t alignment, nothrow-movable)
  /// are stored inline; larger ones are heap-allocated.
  static constexpr std::size_t kInlineSize = 48;

  Task() noexcept = default;

  template <typename F,
            typename D = std::remove_cvref_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, Task> &&
                                        std::is_invocable_r_v<void, D&>>>
  Task(F&& f) { // NOLINT(google-explicit-constructor): function-like sink
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  Task(Task&& other) noexcept { move_from(other); }

  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  ~Task() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  /// Invokes the stored callable (callable must be non-empty). The closure
  /// stays alive across the call; destruction is the owner's job.
  void operator()() { ops_->invoke(buf_); }

  /// True when the stored closure lives in the inline buffer (diagnostic;
  /// the scheduler's allocation-free claim rests on this).
  [[nodiscard]] bool inline_stored() const noexcept {
    return ops_ != nullptr && ops_->inline_stored;
  }

  template <typename D>
  [[nodiscard]] static constexpr bool fits_inline() noexcept {
    return sizeof(D) <= kInlineSize &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src) noexcept; // move + destroy src
    void (*destroy)(void*) noexcept;
    bool inline_stored;
  };

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*static_cast<D*>(p))(); },
      [](void* dst, void* src) noexcept {
        D* s = static_cast<D*>(src);
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* p) noexcept { static_cast<D*>(p)->~D(); },
      true};

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* p) { (**static_cast<D**>(p))(); },
      [](void* dst, void* src) noexcept {
        std::memcpy(dst, src, sizeof(D*)); // relocate the owning pointer
      },
      [](void* p) noexcept { delete *static_cast<D**>(p); },
      false};

  void move_from(Task& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(buf_, other.buf_);
      ops_ = std::exchange(other.ops_, nullptr);
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

} // namespace sts::flux
