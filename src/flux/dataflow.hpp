// async / dataflow / unwrapping / when_all: the HPX dataflow model.
//
// dataflow(sched, f, args...) schedules f(args...) to run once every
// future-like argument is ready, returning a future for the result. Plain
// (non-future) arguments pass through untouched; futures are passed *as
// futures* -- wrap `f` with unwrapping() to receive the contained values
// instead (void futures are dropped), which lets task bodies be written as
// ordinary functions, exactly as the paper describes for Listing 2.
#pragma once

#include <atomic>
#include <tuple>
#include <type_traits>
#include <vector>

#include "flux/future.hpp"

namespace sts::flux {

namespace detail {

template <typename T>
struct is_future_like : std::false_type {};
template <typename T>
struct is_future_like<future<T>> : std::true_type {};
template <typename T>
struct is_future_like<shared_future<T>> : std::true_type {};
template <typename T>
struct is_future_like<std::vector<shared_future<T>>> : std::true_type {};

template <typename T>
inline constexpr bool is_future_like_v = is_future_like<std::decay_t<T>>::value;

/// Counts the pending dependencies an argument contributes.
template <typename A>
std::size_t dependency_count(const A& arg) {
  using D = std::decay_t<A>;
  if constexpr (!is_future_like_v<A>) {
    (void)arg;
    return 0;
  } else if constexpr (requires { arg.size(); }) {
    return arg.size();
  } else {
    (void)sizeof(D);
    return 1;
  }
}

/// Attaches `cb` to every future inside `arg` (no-op for plain values).
template <typename A, typename Cb>
void attach_continuations(const A& arg, const Cb& cb) {
  if constexpr (!is_future_like_v<A>) {
    (void)arg;
    (void)cb;
  } else if constexpr (requires { arg.begin(); }) {
    for (const auto& f : arg) f.state()->add_continuation(cb);
  } else {
    arg.state()->add_continuation(cb);
  }
}

/// First stored exception among the (ready) futures inside `arg`, if any.
template <typename A>
std::exception_ptr dependency_error(const A& arg) {
  if constexpr (!is_future_like_v<A>) {
    (void)arg;
    return nullptr;
  } else if constexpr (requires { arg.begin(); }) {
    for (const auto& f : arg) {
      if (auto e = f.state()->error()) return e;
    }
    return nullptr;
  } else {
    return arg.state()->error();
  }
}

template <typename R>
struct Invoker {
  template <typename F, typename Tuple>
  static void run(F& f, Tuple& args, promise<R>& result) {
    result.set_value(std::apply(f, args));
  }
};
template <>
struct Invoker<void> {
  template <typename F, typename Tuple>
  static void run(F& f, Tuple& args, promise<void>& result) {
    std::apply(f, args);
    result.set_value();
  }
};

} // namespace detail

/// Launch policy tag mirroring hpx::launch::async (the only policy the
/// benchmarks need; a `sync` policy would run inline).
struct launch_async_t {};
inline constexpr launch_async_t launch_async{};

/// Runs f(args...) on the scheduler immediately (no dependencies).
template <typename F, typename... Args>
auto async(Scheduler& sched, F&& f, Args&&... args)
    -> future<std::invoke_result_t<std::decay_t<F>, std::decay_t<Args>&...>> {
  using R = std::invoke_result_t<std::decay_t<F>, std::decay_t<Args>&...>;
  promise<R> result;
  auto fut = result.get_future();
  // submit_always: this closure owns a promise, so it must run even under
  // cancellation (a dropped body would strand the future); it skips the user
  // body itself via rethrow_if_cancelled().
  sched.submit_always([&sched, f = std::forward<F>(f),
                       args = std::make_tuple(std::forward<Args>(args)...),
                       result]() mutable {
    try {
      sched.rethrow_if_cancelled();
      detail::Invoker<R>::run(f, args, result);
    } catch (...) {
      // Latch with the scheduler *before* publishing to the promise, so by
      // the time a waiter observes the exception the runtime is already
      // cancelling — the ordering the watchdog tests rely on.
      sched.report_task_error(std::current_exception());
      result.set_exception(std::current_exception());
    }
  });
  return fut;
}

/// Schedules f(args...) for when all future-like args are ready.
/// `domain_hint` forwards to the scheduler (NUMA-aware placement).
template <typename F, typename... Args>
auto dataflow_hint(Scheduler& sched, int domain_hint, F&& f, Args&&... args)
    -> future<std::invoke_result_t<std::decay_t<F>, std::decay_t<Args>&...>> {
  using R = std::invoke_result_t<std::decay_t<F>, std::decay_t<Args>&...>;
  promise<R> result;
  auto fut = result.get_future();

  // Shared closure owning the callable and the (copied/moved) arguments.
  struct Pending {
    Pending(F&& f_in, std::tuple<std::decay_t<Args>...> args_in,
            promise<R> result_in, Scheduler* sched_in, int hint_in)
        : fn(std::forward<F>(f_in)), args(std::move(args_in)),
          result(std::move(result_in)), remaining(0), sched(sched_in),
          hint(hint_in) {}
    std::decay_t<F> fn;
    std::tuple<std::decay_t<Args>...> args;
    promise<R> result;
    std::atomic<std::size_t> remaining;
    Scheduler* sched;
    int hint;
  };
  auto pending = std::make_shared<Pending>(
      std::forward<F>(f), std::make_tuple(std::forward<Args>(args)...),
      result, &sched, domain_hint);

  std::size_t deps = 0;
  std::apply(
      [&](const auto&... unpacked) {
        ((deps += detail::dependency_count(unpacked)), ...);
      },
      pending->args);
  // +1 sentinel: keeps the task from firing while continuations are still
  // being attached below.
  pending->remaining.store(deps + 1, std::memory_order_relaxed);

  auto on_dep_ready = [pending]() {
    if (pending->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // submit_always: the closure owns a promise and must complete it even
      // under cancellation (a dropped body would strand the future).
      pending->sched->submit_always(
          [pending]() {
            // A failed dependency poisons this node: forward its exception
            // without invoking the body, so errors flow along dataflow
            // edges exactly like values do.
            std::exception_ptr dep_err;
            std::apply(
                [&](const auto&... unpacked) {
                  ((dep_err = dep_err ? dep_err
                                      : detail::dependency_error(unpacked)),
                   ...);
                },
                pending->args);
            if (dep_err) {
              pending->result.set_exception(dep_err);
              return;
            }
            try {
              // An unrelated task's failure cancels this body too; the
              // latched error flows into this node's promise.
              pending->sched->rethrow_if_cancelled();
              detail::Invoker<R>::run(pending->fn, pending->args,
                                      pending->result);
            } catch (...) {
              pending->sched->report_task_error(std::current_exception());
              pending->result.set_exception(std::current_exception());
            }
          },
          pending->hint);
    }
  };

  std::apply(
      [&](const auto&... unpacked) {
        (detail::attach_continuations(unpacked, on_dep_ready), ...);
      },
      pending->args);
  on_dep_ready(); // release the sentinel

  return fut;
}

template <typename F, typename... Args>
auto dataflow(Scheduler& sched, launch_async_t, F&& f, Args&&... args) {
  return dataflow_hint(sched, -1, std::forward<F>(f),
                       std::forward<Args>(args)...);
}

template <typename F, typename... Args>
auto dataflow(Scheduler& sched, F&& f, Args&&... args) {
  return dataflow_hint(sched, -1, std::forward<F>(f),
                       std::forward<Args>(args)...);
}

namespace detail {

template <typename A>
decltype(auto) unwrap_one(A& arg) {
  using D = std::decay_t<A>;
  if constexpr (!is_future_like_v<A>) {
    return std::forward_as_tuple(arg);
  } else if constexpr (requires { arg.begin(); }) {
    return std::tuple<>{}; // vectors of (void) futures are pure dependencies
  } else if constexpr (std::is_same_v<D, shared_future<void>> ||
                       std::is_same_v<D, future<void>>) {
    return std::tuple<>{}; // void futures carry no value
  } else {
    return std::make_tuple(arg.get());
  }
}

} // namespace detail

/// HPX-style unwrapping: adapts plain f(values...) into a callable taking
/// futures, dropping void futures and fetching values from non-void ones.
/// The returned callable must only run when its futures are ready (which
/// dataflow guarantees).
template <typename F>
auto unwrapping(F f) {
  return [f = std::move(f)](auto&... args) -> decltype(auto) {
    return std::apply(f, std::tuple_cat(detail::unwrap_one(args)...));
  };
}

/// Future that becomes ready when all elements are ready (HPX when_all,
/// collapsed to void because the solvers only chain on readiness).
template <typename T>
future<void> when_all(Scheduler& sched, std::vector<shared_future<T>> futs) {
  return dataflow_hint(sched, -1, [](const auto&) {}, std::move(futs));
}

} // namespace sts::flux
