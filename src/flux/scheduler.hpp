// flux: an asynchronous many-task runtime in the style of HPX.
//
// The paper evaluates HPX's futures + dataflow model; HPX itself is not
// buildable offline, so flux reimplements the subset the paper exercises
// (Listing 2): lightweight tasks on a work-stealing scheduler, futures with
// continuations, `async`, `dataflow`, `unwrapping`, and NUMA-domain
// scheduling hints. This header is the execution engine; future.hpp and
// dataflow.hpp provide the programming model on top.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "flux/task.hpp"
#include "flux/ws_deque.hpp"
#include "support/topology.hpp"

namespace sts::flux {

/// Worker-to-CPU pinning policy (STS_AFFINITY=compact|scatter|off).
///   kOff     - no pinning; workers float (the historical behaviour).
///   kCompact - fill NUMA node 0's CPUs first, then node 1, ... — workers
///              of one domain share a node and its memory controller.
///   kScatter - round-robin workers across nodes — maximum aggregate
///              bandwidth for few threads, at the cost of locality.
enum class Affinity : std::uint8_t { kOff, kCompact, kScatter };

[[nodiscard]] const char* to_string(Affinity a);

/// Work-stealing thread pool.
///
// Each worker owns a lock-free Chase-Lev ring (own pushes/pops at the
// bottom, thieves take from the top -- Cilk-style, oldest-first stealing)
// backed by a slot pool, so the worker-local spawn/pop/steal fast path
// takes no lock and allocates nothing for closures that fit Task's inline
// buffer. External submissions (and ring overflow) go through a small
// mutex-protected per-worker inbox. Workers that find no work sleep on a
// condition variable; submissions wake at most one sleeper, and only when
// a sleeper actually exists.
class Scheduler {
public:
  struct Config {
    unsigned threads = std::thread::hardware_concurrency();
    /// Logical NUMA domains the workers are split into. Scheduling hints
    /// address a domain; stealing prefers same-domain victims first when
    /// `numa_aware` is set (the paper's "NUMA-aware scheduling" that gave
    /// HPX ~50% on EPYC).
    unsigned numa_domains = 1;
    bool numa_aware = false;
    /// Worker pinning policy. With kCompact/kScatter each worker is bound
    /// to one CPU of `machine` via sched_setaffinity; a failed bind is
    /// counted (flux.pin_failures) and the worker floats — never fatal.
    Affinity affinity = Affinity::kOff;
    /// Topology the pinning map is built from; null means the process-wide
    /// support::topo::machine() detection.
    const support::topo::Machine* machine = nullptr;
    /// Explicit worker partition: when non-empty, worker i is pinned to
    /// cpus[i % cpus.size()] (unless affinity is kOff) and the domain map is
    /// derived from those CPUs' NUMA nodes — the pool runs on exactly this
    /// slice of the machine instead of assuming workers 0..N-1 own it. Set
    /// by the stsd dispatcher, one partition per job slot (DESIGN.md §15).
    std::vector<int> cpus;
    /// Worker-slot headroom for elastic growth: placement tables and the
    /// worker array are pre-sized for this many workers so expand() can add
    /// workers without reallocating anything a running worker reads.
    /// 0 means `threads` (no growth possible). Slots beyond `threads` cost
    /// nothing until expand() constructs them.
    unsigned max_threads = 0;

    /// STS_AFFINITY=compact|scatter|off. Unset defaults to kCompact when
    /// the detected machine has more than one NUMA node (the paper's EPYC
    /// configuration wants pinning on by default) and kOff otherwise.
    [[nodiscard]] static Affinity affinity_from_env();

    /// Topology-derived configuration: `threads` workers (0 = hardware),
    /// numa_domains = detected node count clamped to the worker count,
    /// numa_aware when > 1, affinity from STS_AFFINITY. STS_NUMA=off
    /// collapses all of it back to 1 flat domain, no pinning.
    [[nodiscard]] static Config topology_aware(unsigned threads);

    /// Partition-restricted configuration: one worker per CPU of `cpus`,
    /// numa_domains = distinct NUMA nodes covered by the partition (so a
    /// single-node slice steals only locally and flux.steals_remote stays
    /// 0), pinning on by default (STS_AFFINITY=off disables; STS_NUMA=off
    /// flattens domains). `max_threads` reserves elastic-growth headroom.
    [[nodiscard]] static Config for_partition(
        std::vector<int> cpus, const support::topo::Machine* machine,
        unsigned max_threads = 0);
  };

  struct Stats {
    std::uint64_t executed = 0;
    std::uint64_t steals = 0;
    std::uint64_t cross_domain_steals = 0; // == steals_remote (kept: legacy)
    /// Hierarchical steal tiers (DESIGN.md §14): victim shares the thief's
    /// physical core / shares its NUMA domain / lives in another domain.
    std::uint64_t steals_sibling = 0;
    std::uint64_t steals_local = 0;
    std::uint64_t steals_remote = 0;
  };

  explicit Scheduler(Config config);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Enqueues `fn`. `domain_hint` < 0 means "anywhere"; otherwise the task
  /// is pushed to a worker inside that domain. Safe from any thread; a
  /// worker submitting hint-less work pushes to its own lock-free ring
  /// (work-first scheduling).
  void submit(Task fn, int domain_hint = -1);

  /// Like submit(), but the task still runs after cancellation. For closures
  /// that complete a promise (async/dataflow internals): dropping them would
  /// strand their future, so they run regardless and are expected to observe
  /// cancelled() themselves and complete the promise exceptionally.
  void submit_always(Task fn, int domain_hint = -1);

  /// Blocks until every submitted task (including tasks submitted by
  /// running tasks) has finished. Must be called from a non-worker thread.
  /// If a task failed since the last wait, rethrows the first failure and
  /// resets the error state, leaving the scheduler reusable.
  void wait_for_quiescence();

  /// Bounded wait: like wait_for_quiescence(), but throws
  /// support::TimeoutError carrying outstanding-task counts and per-worker
  /// queue depths if the runtime has not drained within `deadline`.
  void wait_for_quiescence(std::chrono::milliseconds deadline);

  /// Runs one pending task on the calling thread if any is available.
  /// Used by future::get() to help instead of blocking a worker.
  bool try_run_one();

  /// Elastic growth: adds up to cpus.size() workers (bounded by the
  /// Config::max_threads headroom), each pinned to one of `cpus` under the
  /// same rules as construction, and returns how many were added (0 when no
  /// headroom is left). The new workers join the existing domain structure
  /// (numa_domains never changes; their CPUs' nodes fold onto it).
  ///
  /// Caller contract (the dispatcher's grant protocol, DESIGN.md §15): must
  /// be called from a non-worker thread while the pool is quiescent — the
  /// solvers' iteration boundary — and calls must be externally serialized.
  /// Publication is race-free regardless: placement rows and worker cells
  /// are written before the active count's release store, and every reader
  /// indexes only below its acquire load of that count.
  unsigned expand(const std::vector<int>& cpus);

  /// Latches `error` as the first task failure (later reports are dropped)
  /// and cancels remaining work: queued task bodies are skipped, only their
  /// accounting runs, so the scheduler drains instead of hanging. Called by
  /// the worker loop and by dataflow/async when a task body throws.
  void report_task_error(std::exception_ptr error) noexcept;

  /// True between the first task failure and the wait that consumes it.
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Throws the latched failure (without consuming it) if cancelled. Used
  /// by future waits so external threads unblock on cancellation.
  void rethrow_if_cancelled();

  /// Stall snapshot for watchdog reporting.
  struct QueueDiagnostics {
    std::uint64_t outstanding = 0;
    std::vector<std::size_t> queue_depths; // one entry per worker
    [[nodiscard]] std::string to_string() const;
  };
  [[nodiscard]] QueueDiagnostics diagnostics() const;

  [[nodiscard]] unsigned thread_count() const noexcept {
    return active_.load(std::memory_order_acquire);
  }
  /// Upper bound thread_count() can reach via expand().
  [[nodiscard]] unsigned max_thread_count() const noexcept {
    return max_threads_;
  }
  [[nodiscard]] unsigned domain_count() const noexcept {
    return config_.numa_domains;
  }
  /// Domain of worker `w`. Unpinned workers are split into *contiguous*
  /// ranges (workers [d*per, (d+1)*per) form domain d) — the old
  /// round-robin `w % domains` mapping would scatter each domain's workers
  /// across sockets once pinning exists. Pinned workers take the NUMA node
  /// of their CPU, so the domain a task is hinted to is the node whose
  /// memory its stripe was first-touched into.
  [[nodiscard]] unsigned domain_of_worker(unsigned w) const noexcept {
    return worker_domain_[w];
  }
  /// CPU worker `w` is pinned to, or -1 when unpinned.
  [[nodiscard]] int cpu_of_worker(unsigned w) const noexcept {
    return worker_cpu_.empty() ? -1 : worker_cpu_[w];
  }
  [[nodiscard]] Affinity affinity() const noexcept {
    return config_.affinity;
  }

  /// Index of the calling worker thread within *this* scheduler, or -1 for
  /// external threads.
  [[nodiscard]] int current_worker() const noexcept;

  /// Aggregated execution statistics (racy reads are fine: used after
  /// quiescence or for coarse reporting).
  [[nodiscard]] Stats stats() const;

  /// Per-worker ring capacity; a worker with this many queued spawns
  /// overflows into its (locked) inbox rather than failing.
  static constexpr std::uint32_t kRingCapacity = 4096;

private:
  struct QueuedTask {
    Task fn;
    bool always_run = false; // exempt from drop-on-cancel (see submit_always)
    std::int64_t enqueue_ns = 0; // stamped only while metrics are enabled
  };

  struct Worker {
    TaskRing ring{kRingCapacity};        // lock-free; owner-push, any-steal
    SlotPool<QueuedTask> pool{kRingCapacity}; // payload cells for the ring
    std::mutex inbox_mutex;
    std::deque<QueuedTask> inbox; // external submissions + ring overflow
    std::uint64_t executed = 0;
    std::uint64_t steals = 0;
    std::uint64_t steals_by_tier[3] = {0, 0, 0}; // sibling/local/remote
  };

  /// Steal tier of (thief, victim): 0 = same physical core (SMT sibling),
  /// 1 = same NUMA domain, 2 = remote domain.
  [[nodiscard]] unsigned steal_tier(unsigned thief, unsigned victim) const;
  void build_placement();
  /// Fills placement row `w` (cpu/core/domain + domain membership) from
  /// `cpu_id` looked up in the configured machine. Used by both the
  /// explicit-partition construction path and expand().
  void assign_cpu_slot(unsigned w, int cpu_id);
  void pin_self(unsigned index) const;
  void worker_loop(unsigned index);
  void enqueue(QueuedTask task, int domain_hint);
  void wake_one();
  bool pop_own(unsigned index, QueuedTask& out);
  bool steal(unsigned thief, QueuedTask& out);
  bool take_from(Worker& w, QueuedTask& out);
  void run_task(QueuedTask& task);
  void on_task_done();
  void rethrow_and_reset();
  void drain() noexcept;

  Config config_;
  unsigned max_threads_ = 0; // worker-slot capacity (>= initial threads)
  /// Published worker count. Rows [0, active_) of every table below are
  /// immutable once published; expand() writes new rows first, then does a
  /// release store here. All consumers acquire-load it before indexing.
  std::atomic<unsigned> active_{0};
  std::vector<std::unique_ptr<Worker>> workers_; // sized max_threads_; lazy
  std::vector<std::thread> threads_;

  // Placement tables, sized max_threads_ at construction. Rows below the
  // active count are read-only; expand() fills rows above it.
  std::vector<unsigned> worker_domain_;           // worker -> domain
  std::vector<int> worker_cpu_;                   // worker -> cpu; empty = unpinned
  std::vector<int> worker_core_;                  // worker -> core key; -1 unknown
  /// domain -> member workers. Each inner vector is reserved to
  /// max_threads_ up front (its data pointer never moves); readers see
  /// [0, domain_size_[d]) where the size is its own release/acquire atomic,
  /// so expand()'s push_back never races an enqueue()'s scan.
  std::vector<std::vector<unsigned>> domain_workers_;
  std::unique_ptr<std::atomic<unsigned>[]> domain_size_;

  std::atomic<std::uint64_t> outstanding_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<unsigned> next_worker_{0};
  std::atomic<int> sleepers_{0};

  std::atomic<bool> cancelled_{false};
  mutable std::mutex error_mutex_;
  std::exception_ptr first_error_;

  std::mutex sleep_mutex_;
  std::condition_variable work_available_;
  std::condition_variable quiescent_;
};

/// Scope guard for drivers running on a scheduler that outlives them (a
/// shared service pool): if the driver unwinds mid-solve, the destructor
/// waits for quiescence — so no in-flight task can touch the driver's dying
/// state — and swallows the scheduler's latched error (the unwinding
/// exception is the one the caller should see), leaving the pool reusable.
/// On the normal path, call dismiss() and wait_for_quiescence() yourself so
/// task failures still propagate.
class QuiesceOnExit {
public:
  explicit QuiesceOnExit(Scheduler& sched) noexcept : sched_(sched) {}
  ~QuiesceOnExit() {
    if (dismissed_) return;
    try {
      sched_.wait_for_quiescence();
    } catch (...) { // latched error consumed; the in-flight exception wins
    }
  }
  QuiesceOnExit(const QuiesceOnExit&) = delete;
  QuiesceOnExit& operator=(const QuiesceOnExit&) = delete;
  void dismiss() noexcept { dismissed_ = true; }

private:
  Scheduler& sched_;
  bool dismissed_ = false;
};

} // namespace sts::flux
