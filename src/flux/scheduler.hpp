// flux: an asynchronous many-task runtime in the style of HPX.
//
// The paper evaluates HPX's futures + dataflow model; HPX itself is not
// buildable offline, so flux reimplements the subset the paper exercises
// (Listing 2): lightweight tasks on a work-stealing scheduler, futures with
// continuations, `async`, `dataflow`, `unwrapping`, and NUMA-domain
// scheduling hints. This header is the execution engine; future.hpp and
// dataflow.hpp provide the programming model on top.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sts::flux {

/// Work-stealing thread pool.
///
// Each worker owns a LIFO deque (own pushes/pops at the front, thieves take
// from the back — Cilk-style, oldest-first stealing). External submissions
// round-robin across workers, optionally pinned to a NUMA domain. Workers
// that find no work sleep on a condition variable and are woken by
// submissions.
class Scheduler {
public:
  struct Config {
    unsigned threads = std::thread::hardware_concurrency();
    /// Logical NUMA domains the workers are split into. Scheduling hints
    /// address a domain; stealing prefers same-domain victims first when
    /// `numa_aware` is set (the paper's "NUMA-aware scheduling" that gave
    /// HPX ~50% on EPYC).
    unsigned numa_domains = 1;
    bool numa_aware = false;
  };

  struct Stats {
    std::uint64_t executed = 0;
    std::uint64_t steals = 0;
    std::uint64_t cross_domain_steals = 0;
  };

  explicit Scheduler(Config config);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Enqueues `fn`. `domain_hint` < 0 means "anywhere"; otherwise the task
  /// is pushed to a worker inside that domain. Safe from any thread,
  /// including workers (where it pushes to the caller's own deque).
  void submit(std::function<void()> fn, int domain_hint = -1);

  /// Blocks until every submitted task (including tasks submitted by
  /// running tasks) has finished. Must be called from a non-worker thread.
  void wait_for_quiescence();

  /// Runs one pending task on the calling thread if any is available.
  /// Used by future::get() to help instead of blocking a worker.
  bool try_run_one();

  [[nodiscard]] unsigned thread_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }
  [[nodiscard]] unsigned domain_count() const noexcept {
    return config_.numa_domains;
  }
  [[nodiscard]] unsigned domain_of_worker(unsigned w) const noexcept {
    return w % config_.numa_domains;
  }

  /// Index of the calling worker thread within *this* scheduler, or -1 for
  /// external threads.
  [[nodiscard]] int current_worker() const noexcept;

  /// Aggregated execution statistics (racy reads are fine: used after
  /// quiescence or for coarse reporting).
  [[nodiscard]] Stats stats() const;

private:
  struct Worker {
    std::mutex mutex;
    std::deque<std::function<void()>> deque;
    std::uint64_t executed = 0;
    std::uint64_t steals = 0;
    std::uint64_t cross_domain_steals = 0;
  };

  void worker_loop(unsigned index);
  bool pop_own(unsigned index, std::function<void()>& out);
  bool steal(unsigned thief, std::function<void()>& out);
  void on_task_done();

  Config config_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::atomic<std::uint64_t> outstanding_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<unsigned> next_worker_{0};

  std::mutex sleep_mutex_;
  std::condition_variable work_available_;
  std::condition_variable quiescent_;
};

} // namespace sts::flux
