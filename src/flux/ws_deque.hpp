// Lock-free work-stealing deque for the flux scheduler.
//
// Chase-Lev deque [Chase & Lev, SPAA'05; Le et al., PPoPP'13 for the
// weak-memory version]: the owner pushes and pops at the bottom (LIFO,
// work-first), thieves CAS the top (FIFO, oldest task first, the Cilk
// steal order that takes the largest subtree).
//
// Two twists versus the textbook version:
//
// 1. The ring holds 32-bit *slot indices*, not tasks. Tasks are move-only
//    and non-trivial; storing them in the ring directly would race a
//    thief's post-CAS move against the owner overwriting the same ring
//    cell. Instead each queued task lives in a SlotPool cell owned by the
//    victim, the ring publishes the cell index, and whoever dequeues the
//    index gains exclusive ownership of the cell until releasing it back
//    to the pool's freelist.
//
// 2. Memory order is chosen so every happens-before edge flows through an
//    atomic load/store pair (bottom release-stores, seq_cst on the
//    owner-pop/steal race) rather than standalone fences, which keeps the
//    algorithm fully visible to ThreadSanitizer.
//
// The ring is bounded (no growth): the scheduler falls back to a locked
// inbox when a ring fills, which keeps push() allocation-free.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace sts::flux {

/// Bounded Chase-Lev deque of 32-bit payload indices. push/pop are
/// owner-only; steal is safe from any thread.
class TaskRing {
public:
  explicit TaskRing(std::uint32_t capacity) : cap_(capacity), mask_(capacity - 1), slots_(capacity) {
    STS_EXPECTS(capacity >= 2 && (capacity & (capacity - 1)) == 0);
  }

  /// Owner: publish `idx` at the bottom. False when the ring is full (the
  /// top load may be stale, so "full" can be spuriously conservative --
  /// callers treat it as overflow, never as an error).
  bool push(std::uint32_t idx) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    if (b - t >= cap_) return false;
    slots_[static_cast<std::size_t>(b & mask_)].store(
        idx, std::memory_order_relaxed);
    // Release: a thief that acquire-loads the new bottom sees both the slot
    // index and the task data the owner wrote into the pool cell before
    // this push.
    bottom_.store(b + 1, std::memory_order_release);
    return true;
  }

  /// Owner: take the newest entry. The seq_cst bottom-store / top-load pair
  /// is the Dekker handshake against concurrent thieves for the last entry.
  bool pop(std::uint32_t& out) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) { // empty: restore bottom
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    out = slots_[static_cast<std::size_t>(b & mask_)].load(
        std::memory_order_relaxed);
    if (t == b) {
      // Last entry: race thieves for it by advancing top ourselves.
      const bool won = top_.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
      bottom_.store(b + 1, std::memory_order_relaxed);
      return won;
    }
    return true;
  }

  /// Thief: take the oldest entry. Reads the slot *before* the CAS (after
  /// the CAS the owner may already be reusing the cell position); only a
  /// CAS win grants ownership of the payload cell.
  bool steal(std::uint32_t& out) {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return false;
    const std::uint32_t idx = slots_[static_cast<std::size_t>(t & mask_)].load(
        std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return false; // lost the race; caller rescans or moves on
    }
    out = idx;
    return true;
  }

  /// Approximate occupancy (racy; diagnostics only).
  [[nodiscard]] std::size_t size() const noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

private:
  std::int64_t cap_;
  std::int64_t mask_;
  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::vector<std::atomic<std::uint32_t>> slots_;
};

/// Fixed pool of payload cells fronted by a Treiber-stack freelist.
/// acquire() is owner-only (single consumer); release() is safe from any
/// thread (a thief returns the cell after moving the task out). The tagged
/// 64-bit head {tag:32, index:32} guards the CAS against ABA.
template <typename T>
class SlotPool {
public:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  explicit SlotPool(std::uint32_t capacity)
      : cells_(capacity), next_(capacity) {
    STS_EXPECTS(capacity > 0 && capacity < kNil);
    for (std::uint32_t i = 0; i + 1 < capacity; ++i) {
      next_[i].store(i + 1, std::memory_order_relaxed);
    }
    next_[capacity - 1].store(kNil, std::memory_order_relaxed);
    head_.store(0, std::memory_order_relaxed);
  }

  /// Owner: pop a free cell. False when the pool is exhausted (== the ring
  /// is full up to in-flight thieves).
  bool acquire(std::uint32_t& out) {
    std::uint64_t h = head_.load(std::memory_order_acquire);
    for (;;) {
      const std::uint32_t idx = static_cast<std::uint32_t>(h);
      if (idx == kNil) return false;
      // Single consumer: `idx` stays on the stack (producers only push on
      // top of it), so next_[idx] is stable until our CAS claims it.
      const std::uint32_t nxt = next_[idx].load(std::memory_order_relaxed);
      const std::uint64_t h2 = bump_tag(h) | nxt;
      if (head_.compare_exchange_weak(h, h2, std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        out = idx;
        return true;
      }
    }
  }

  /// Any thread: return a cell whose payload has been moved out. The
  /// release CAS publishes the consumer's destruction of the payload to the
  /// owner's next acquire() of this cell.
  void release(std::uint32_t idx) {
    std::uint64_t h = head_.load(std::memory_order_relaxed);
    for (;;) {
      next_[idx].store(static_cast<std::uint32_t>(h),
                       std::memory_order_relaxed);
      const std::uint64_t h2 = bump_tag(h) | idx;
      if (head_.compare_exchange_weak(h, h2, std::memory_order_release,
                                      std::memory_order_relaxed)) {
        return;
      }
    }
  }

  [[nodiscard]] T& operator[](std::uint32_t idx) { return cells_[idx]; }

private:
  static constexpr std::uint64_t bump_tag(std::uint64_t h) noexcept {
    return ((h >> 32) + 1) << 32;
  }

  std::vector<T> cells_;
  std::vector<std::atomic<std::uint32_t>> next_;
  std::atomic<std::uint64_t> head_{0};
};

} // namespace sts::flux
