#include "flux/scheduler.hpp"

#include <algorithm>
#include <chrono>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace sts::flux {

namespace {
// Which scheduler (if any) the current thread is a worker of, and its index.
thread_local const Scheduler* tls_scheduler = nullptr;
thread_local int tls_worker_index = -1;
} // namespace

Scheduler::Scheduler(Config config) : config_(config) {
  config_.threads = std::max(1u, config_.threads);
  config_.numa_domains =
      std::clamp(config_.numa_domains, 1u, config_.threads);
  workers_.reserve(config_.threads);
  for (unsigned i = 0; i < config_.threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(config_.threads);
  for (unsigned i = 0; i < config_.threads; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

Scheduler::~Scheduler() {
  wait_for_quiescence();
  stopping_.store(true, std::memory_order_release);
  work_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void Scheduler::submit(std::function<void()> fn, int domain_hint) {
  STS_EXPECTS(fn != nullptr);
  outstanding_.fetch_add(1, std::memory_order_acq_rel);

  unsigned target;
  if (tls_scheduler == this && domain_hint < 0) {
    // A worker spawning a child keeps it local: work-first scheduling, the
    // property that gives task runtimes their cache locality.
    target = static_cast<unsigned>(tls_worker_index);
  } else {
    const unsigned n = next_worker_.fetch_add(1, std::memory_order_relaxed);
    if (domain_hint >= 0) {
      // Round-robin within the requested domain: workers d, d+D, d+2D, ...
      const unsigned domain =
          static_cast<unsigned>(domain_hint) % config_.numa_domains;
      const unsigned per_domain =
          (config_.threads + config_.numa_domains - 1) / config_.numa_domains;
      target = domain + (n % per_domain) * config_.numa_domains;
      if (target >= config_.threads) target = domain;
    } else {
      target = n % config_.threads;
    }
  }

  {
    Worker& w = *workers_[target];
    const std::lock_guard<std::mutex> lock(w.mutex);
    w.deque.push_front(std::move(fn));
  }
  // Taking sleep_mutex_ (even empty) orders this submission against any
  // worker between its idle check and its sleep, preventing a lost wakeup.
  { const std::lock_guard<std::mutex> lock(sleep_mutex_); }
  work_available_.notify_one();
}

bool Scheduler::pop_own(unsigned index, std::function<void()>& out) {
  Worker& w = *workers_[index];
  const std::lock_guard<std::mutex> lock(w.mutex);
  if (w.deque.empty()) return false;
  out = std::move(w.deque.front());
  w.deque.pop_front();
  return true;
}

bool Scheduler::steal(unsigned thief, std::function<void()>& out) {
  // Same-domain victims first when NUMA-aware, then everyone. Victim order
  // is a rotating scan starting after the thief to spread contention.
  const unsigned n = config_.threads;
  auto try_victim = [&](unsigned v) {
    if (v == thief) return false;
    Worker& w = *workers_[v];
    const std::lock_guard<std::mutex> lock(w.mutex);
    if (w.deque.empty()) return false;
    out = std::move(w.deque.back());
    w.deque.pop_back();
    Worker& me = *workers_[thief];
    ++me.steals;
    if (domain_of_worker(v) != domain_of_worker(thief)) {
      ++me.cross_domain_steals;
    }
    return true;
  };
  if (config_.numa_aware && config_.numa_domains > 1) {
    for (unsigned k = 1; k < n; ++k) {
      const unsigned v = (thief + k) % n;
      if (domain_of_worker(v) == domain_of_worker(thief) && try_victim(v)) {
        return true;
      }
    }
  }
  for (unsigned k = 1; k < n; ++k) {
    if (try_victim((thief + k) % n)) return true;
  }
  return false;
}

void Scheduler::on_task_done() {
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    const std::lock_guard<std::mutex> lock(sleep_mutex_);
    quiescent_.notify_all();
  }
}

void Scheduler::worker_loop(unsigned index) {
  tls_scheduler = this;
  tls_worker_index = static_cast<int>(index);
  std::function<void()> task;
  while (true) {
    if (pop_own(index, task) || steal(index, task)) {
      task();
      task = nullptr;
      ++workers_[index]->executed;
      on_task_done();
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    if (stopping_.load(std::memory_order_acquire)) return;
    if (outstanding_.load(std::memory_order_acquire) == 0) {
      // Nothing pending anywhere: sleep until new work or shutdown.
      work_available_.wait(lock, [&] {
        return stopping_.load(std::memory_order_acquire) ||
               outstanding_.load(std::memory_order_acquire) > 0;
      });
    } else {
      // Work exists but our steal scan raced; back off briefly.
      work_available_.wait_for(lock, std::chrono::microseconds(50));
    }
  }
}

void Scheduler::wait_for_quiescence() {
  STS_EXPECTS(tls_scheduler != this); // a worker waiting here would deadlock
  std::unique_lock<std::mutex> lock(sleep_mutex_);
  quiescent_.wait(lock, [&] {
    return outstanding_.load(std::memory_order_acquire) == 0;
  });
}

bool Scheduler::try_run_one() {
  std::function<void()> task;
  bool got = false;
  if (tls_scheduler == this && tls_worker_index >= 0) {
    got = pop_own(static_cast<unsigned>(tls_worker_index), task) ||
          steal(static_cast<unsigned>(tls_worker_index), task);
  } else {
    // External helper: scan all deques oldest-first.
    for (unsigned v = 0; v < config_.threads && !got; ++v) {
      Worker& w = *workers_[v];
      const std::lock_guard<std::mutex> lock(w.mutex);
      if (!w.deque.empty()) {
        task = std::move(w.deque.back());
        w.deque.pop_back();
        got = true;
      }
    }
  }
  if (!got) return false;
  task();
  on_task_done();
  return true;
}

int Scheduler::current_worker() const noexcept {
  return tls_scheduler == this ? tls_worker_index : -1;
}

Scheduler::Stats Scheduler::stats() const {
  Stats s;
  for (const auto& w : workers_) {
    s.executed += w->executed;
    s.steals += w->steals;
    s.cross_domain_steals += w->cross_domain_steals;
  }
  return s;
}

} // namespace sts::flux
