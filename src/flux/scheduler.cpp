#include "flux/scheduler.hpp"

#ifdef __linux__
#include <sched.h>
#endif

#include <algorithm>
#include <chrono>
#include <set>
#include <thread>
#include <utility>

#include "obs/obs.hpp"
#include "support/env.hpp"
#include "support/error.hpp"
#include "support/escape.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace sts::flux {

namespace {
// Which scheduler (if any) the current thread is a worker of, and its index.
thread_local const Scheduler* tls_scheduler = nullptr;
thread_local int tls_worker_index = -1;

// Telemetry handles, resolved once; the registry outlives every scheduler.
obs::Counter& steal_counter() {
  static obs::Counter& c = obs::counter("flux.steals");
  return c;
}
obs::Counter& cross_domain_steal_counter() {
  static obs::Counter& c = obs::counter("flux.cross_domain_steals");
  return c;
}
// Per-tier steal counters for the hierarchical victim order: the victim
// shared the thief's physical core, its NUMA domain, or neither.
obs::Counter& tier_steal_counter(unsigned tier) {
  static obs::Counter* tiers[3] = {&obs::counter("flux.steals_sibling"),
                                   &obs::counter("flux.steals_local"),
                                   &obs::counter("flux.steals_remote")};
  return *tiers[tier];
}
obs::Counter& pin_failure_counter() {
  static obs::Counter& c = obs::counter("flux.pin_failures");
  return c;
}
obs::Counter& executed_counter() {
  static obs::Counter& c = obs::counter("flux.tasks_executed");
  return c;
}
obs::Histogram& queue_depth_histogram() {
  static obs::Histogram& h = obs::histogram("flux.queue_depth");
  return h;
}
obs::Histogram& task_wait_histogram() {
  static obs::Histogram& h = obs::histogram("flux.task_wait_ns");
  return h;
}
obs::Histogram& task_run_histogram() {
  static obs::Histogram& h = obs::histogram("flux.task_run_ns");
  return h;
}
} // namespace

const char* to_string(Affinity a) {
  switch (a) {
    case Affinity::kCompact: return "compact";
    case Affinity::kScatter: return "scatter";
    case Affinity::kOff: break;
  }
  return "off";
}

Affinity Scheduler::Config::affinity_from_env() {
  const std::string v = support::env_string("STS_AFFINITY", "");
  if (v == "compact") return Affinity::kCompact;
  if (v == "scatter") return Affinity::kScatter;
  if (v == "off" || v == "0") return Affinity::kOff;
  // Unset (or unrecognised): pin by default only where it matters — a
  // multi-node machine, where floating workers defeat first-touch placement.
  return support::topo::machine().node_count() > 1 ? Affinity::kCompact
                                                   : Affinity::kOff;
}

Scheduler::Config Scheduler::Config::topology_aware(unsigned threads) {
  Config c;
  c.threads = threads != 0 ? threads
                           : std::max(1u, std::thread::hardware_concurrency());
  if (support::topo::numa_disabled()) {
    // STS_NUMA=off: one flat domain, no pinning — the historical behaviour.
    return c;
  }
  c.numa_domains = support::topo::effective_domains(c.threads);
  c.numa_aware = c.numa_domains > 1;
  c.machine = &support::topo::machine();
  c.affinity = affinity_from_env();
  return c;
}

Scheduler::Config Scheduler::Config::for_partition(
    std::vector<int> cpus, const support::topo::Machine* machine,
    unsigned max_threads) {
  Config c;
  c.machine = machine != nullptr ? machine : &support::topo::machine();
  if (cpus.empty()) { // degenerate grant: the whole machine
    for (const support::topo::Cpu& cpu : c.machine->cpus) {
      cpus.push_back(cpu.id);
    }
  }
  c.threads = std::max<unsigned>(1u, static_cast<unsigned>(cpus.size()));
  c.max_threads = std::max(max_threads, c.threads);
  std::set<int> nodes;
  for (int id : cpus) {
    const support::topo::Cpu* cpu = c.machine->find_cpu(id);
    nodes.insert(cpu != nullptr ? cpu->node : 0);
  }
  c.cpus = std::move(cpus);
  if (!support::topo::numa_disabled()) {
    c.numa_domains = std::clamp(static_cast<unsigned>(nodes.size()), 1u,
                                c.threads);
    c.numa_aware = c.numa_domains > 1;
  }
  // A partition is *enforced* by pinning — unpinned workers would float
  // onto other slots' CPUs and partitioning would be fiction — so default
  // on; STS_AFFINITY=off still opts the whole process out (constrained
  // hosts where binds fail are already handled per-bind, non-fatally).
  const std::string v = support::env_string("STS_AFFINITY", "");
  c.affinity = (v == "off" || v == "0") ? Affinity::kOff : Affinity::kCompact;
  return c;
}

Scheduler::Scheduler(Config config) : config_(std::move(config)) {
  // Pre-register the steal counters so a metrics dump lists them even for a
  // run that never stole (a zero row beats an absent one when diffing).
  steal_counter();
  cross_domain_steal_counter();
  config_.threads = std::max(1u, config_.threads);
  config_.numa_domains =
      std::clamp(config_.numa_domains, 1u, config_.threads);
  max_threads_ = std::max(config_.threads, config_.max_threads);
  build_placement();
  // Worker cells beyond the initial count stay null until expand()
  // constructs them — headroom costs no rings or slot pools up front.
  workers_.resize(max_threads_);
  for (unsigned i = 0; i < config_.threads; ++i) {
    workers_[i] = std::make_unique<Worker>();
  }
  threads_.reserve(max_threads_);
  active_.store(config_.threads, std::memory_order_release);
  for (unsigned i = 0; i < config_.threads; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

void Scheduler::build_placement() {
  const unsigned threads = config_.threads;
  const unsigned domains = config_.numa_domains;
  worker_domain_.assign(max_threads_, 0);
  worker_core_.assign(max_threads_, -1);
  worker_cpu_.clear();
  domain_workers_.assign(domains, {});
  for (std::vector<unsigned>& dw : domain_workers_) dw.reserve(max_threads_);
  domain_size_ = std::make_unique<std::atomic<unsigned>[]>(domains);
  for (unsigned d = 0; d < domains; ++d) {
    domain_size_[d].store(0, std::memory_order_relaxed);
  }

  if (!config_.cpus.empty() && config_.affinity != Affinity::kOff) {
    // Explicit partition: worker w takes cpus[w % |cpus|] (oversubscription
    // wraps, matching the order-table path below) and the domain map falls
    // out of those CPUs' nodes. assign_cpu_slot records membership too.
    worker_cpu_.assign(max_threads_, -1);
    for (unsigned w = 0; w < threads; ++w) {
      assign_cpu_slot(w, config_.cpus[w % config_.cpus.size()]);
    }
    return;
  }

  if (config_.affinity != Affinity::kOff) {
    const support::topo::Machine& m =
        config_.machine != nullptr ? *config_.machine
                                   : support::topo::machine();
    // CPU assignment order. Compact fills node 0's CPUs core-by-core before
    // touching node 1; scatter deals CPUs round-robin across nodes. Either
    // way worker w gets order[w % |order|] — oversubscription wraps.
    std::vector<const support::topo::Cpu*> order;
    if (config_.affinity == Affinity::kCompact) {
      std::vector<std::size_t> node_of(m.cpus.size(), 0);
      for (std::size_t i = 0; i < m.cpus.size(); ++i) {
        for (std::size_t d = 0; d < m.nodes.size(); ++d) {
          if (m.nodes[d].id == m.cpus[i].node) node_of[i] = d;
        }
        order.push_back(&m.cpus[i]);
      }
      std::sort(order.begin(), order.end(),
                [&](const support::topo::Cpu* a, const support::topo::Cpu* b) {
                  const std::size_t na = node_of[static_cast<std::size_t>(
                      a - m.cpus.data())];
                  const std::size_t nb = node_of[static_cast<std::size_t>(
                      b - m.cpus.data())];
                  if (na != nb) return na < nb;
                  if (a->core != b->core) return a->core < b->core;
                  return a->id < b->id;
                });
    } else { // kScatter: node 0 cpu 0, node 1 cpu 0, ..., node 0 cpu 1, ...
      for (std::size_t i = 0; i < m.cpus_per_node(); ++i) {
        for (const support::topo::Node& node : m.nodes) {
          if (i < node.cpus.size()) order.push_back(m.find_cpu(node.cpus[i]));
        }
      }
    }
    if (!order.empty()) {
      worker_cpu_.assign(max_threads_, -1);
      for (unsigned w = 0; w < threads; ++w) {
        const support::topo::Cpu* cpu = order[w % order.size()];
        worker_cpu_[w] = cpu->id;
        worker_core_[w] = cpu->core;
        // Domain = index of the cpu's node, folded onto the configured
        // domain count (fewer domains than nodes when thread-clamped).
        unsigned node_index = 0;
        for (std::size_t d = 0; d < m.nodes.size(); ++d) {
          if (m.nodes[d].id == cpu->node) {
            node_index = static_cast<unsigned>(d);
          }
        }
        worker_domain_[w] = node_index % domains;
      }
    }
  }
  if (worker_cpu_.empty()) {
    // Unpinned: contiguous ranges, workers [d*per, (d+1)*per) form domain d.
    const unsigned per = (threads + domains - 1) / domains;
    for (unsigned w = 0; w < threads; ++w) worker_domain_[w] = w / per;
  }

  for (unsigned w = 0; w < threads; ++w) {
    const unsigned d = worker_domain_[w];
    domain_workers_[d].push_back(w);
    domain_size_[d].store(static_cast<unsigned>(domain_workers_[d].size()),
                          std::memory_order_relaxed);
  }
}

void Scheduler::assign_cpu_slot(unsigned w, int cpu_id) {
  const support::topo::Machine& m = config_.machine != nullptr
                                        ? *config_.machine
                                        : support::topo::machine();
  worker_cpu_[w] = cpu_id;
  unsigned node_index = 0;
  if (const support::topo::Cpu* cpu = m.find_cpu(cpu_id)) {
    worker_core_[w] = cpu->core;
    for (std::size_t d = 0; d < m.nodes.size(); ++d) {
      if (m.nodes[d].id == cpu->node) node_index = static_cast<unsigned>(d);
    }
  }
  const unsigned domain = node_index % config_.numa_domains;
  worker_domain_[w] = domain;
  domain_workers_[domain].push_back(w); // reserved: data pointer is stable
  domain_size_[domain].store(
      static_cast<unsigned>(domain_workers_[domain].size()),
      std::memory_order_release);
}

unsigned Scheduler::expand(const std::vector<int>& cpus) {
  STS_EXPECTS(tls_scheduler != this); // a worker growing itself would race
  const unsigned old = active_.load(std::memory_order_relaxed);
  const unsigned add =
      std::min(static_cast<unsigned>(cpus.size()), max_threads_ - old);
  if (add == 0) return 0;
  for (unsigned i = 0; i < add; ++i) {
    const unsigned w = old + i;
    workers_[w] = std::make_unique<Worker>();
    if (!worker_cpu_.empty()) {
      assign_cpu_slot(w, cpus[i]);
    } else {
      const unsigned domain = w % config_.numa_domains;
      worker_domain_[w] = domain;
      domain_workers_[domain].push_back(w);
      domain_size_[domain].store(
          static_cast<unsigned>(domain_workers_[domain].size()),
          std::memory_order_release);
    }
  }
  // Publish: every row written above happens-before this release store, and
  // enqueue/steal acquire-load the count before touching a row.
  active_.store(old + add, std::memory_order_release);
  for (unsigned i = 0; i < add; ++i) {
    threads_.emplace_back([this, w = old + i] { worker_loop(w); });
  }
  obs::counter("flux.expands").add(1);
  return add;
}

void Scheduler::pin_self(unsigned index) const {
  if (worker_cpu_.empty() || worker_cpu_[index] < 0) return;
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(worker_cpu_[index]), &set);
  if (sched_setaffinity(0, sizeof(set), &set) != 0) {
    // Bind failure (cgroup cpuset, offline cpu, fixture topology wider than
    // the real machine): the worker floats; count it, never fail.
    pin_failure_counter().add(1);
  }
#endif
}

Scheduler::~Scheduler() {
  // A throwing wait here during exception unwinding would std::terminate;
  // drain() swallows any still-latched error instead.
  drain();
  stopping_.store(true, std::memory_order_seq_cst);
  // The empty critical section orders the store against any worker between
  // its predicate check and its wait, so the broadcast cannot be lost.
  { const std::lock_guard<std::mutex> lock(sleep_mutex_); }
  work_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void Scheduler::submit(Task fn, int domain_hint) {
  enqueue({std::move(fn), /*always_run=*/false}, domain_hint);
}

void Scheduler::submit_always(Task fn, int domain_hint) {
  enqueue({std::move(fn), /*always_run=*/true}, domain_hint);
}

void Scheduler::enqueue(QueuedTask task, int domain_hint) {
  STS_EXPECTS(static_cast<bool>(task.fn));
  const bool metered = obs::metrics_enabled();
  if (metered) task.enqueue_ns = support::now_ns();
  // seq_cst: this increment is half of the Dekker handshake with a worker
  // registering as a sleeper (see worker_loop / wake_one).
  outstanding_.fetch_add(1, std::memory_order_seq_cst);

  std::size_t depth = 0;
  if (tls_scheduler == this && domain_hint < 0) {
    // A worker spawning a child keeps it local: work-first scheduling, the
    // property that gives task runtimes their cache locality. Fast path:
    // pool cell + lock-free ring push, no mutex, no allocation beyond the
    // closure itself.
    Worker& w = *workers_[static_cast<unsigned>(tls_worker_index)];
    std::uint32_t idx = 0;
    bool queued = false;
    if (w.pool.acquire(idx)) {
      w.pool[idx] = std::move(task);
      if (w.ring.push(idx)) {
        queued = true;
      } else {
        // Stale-top spurious full; take the slow path instead.
        task = std::move(w.pool[idx]);
        w.pool.release(idx);
      }
    }
    if (!queued) {
      // Ring full: overflow into the owner's inbox. Thieves drain it too,
      // so nothing is stranded.
      const std::lock_guard<std::mutex> lock(w.inbox_mutex);
      w.inbox.push_back(std::move(task));
    }
    if (metered) depth = w.ring.size();
  } else {
    // External thread, or a worker targeting a specific domain: round-robin
    // to a per-worker inbox (only ring owners may push their ring).
    const unsigned n = next_worker_.fetch_add(1, std::memory_order_relaxed);
    const unsigned active = active_.load(std::memory_order_acquire);
    unsigned target;
    if (domain_hint >= 0) {
      // Round-robin within the requested domain's worker list (contiguous
      // ranges unpinned, the pinned CPUs' nodes otherwise — see
      // build_placement). A domain can end up with no workers under exotic
      // pinned layouts; fall back to anyone rather than dropping the hint's
      // task on the floor. The membership count has its own acquire so an
      // expand()-published worker is fully visible before we target it.
      const unsigned domain =
          static_cast<unsigned>(domain_hint) % config_.numa_domains;
      const unsigned dsz = domain_size_[domain].load(std::memory_order_acquire);
      const std::vector<unsigned>& ws = domain_workers_[domain];
      target = dsz == 0 ? n % active : ws[n % dsz];
    } else {
      target = n % active;
    }
    Worker& w = *workers_[target];
    {
      const std::lock_guard<std::mutex> lock(w.inbox_mutex);
      w.inbox.push_back(std::move(task));
      depth = w.inbox.size() + w.ring.size();
    }
  }
  if (metered) {
    queue_depth_histogram().observe(static_cast<std::int64_t>(depth));
  }
  wake_one();
}

void Scheduler::wake_one() {
  // The old scheduler took sleep_mutex_ and notified on *every* submission;
  // with W workers spawning W-ways that is a wakeup storm of W^2 futile
  // notifies per batch. Only wake when someone is actually asleep. seq_cst
  // pairs with the sleeper's registration: either we observe the sleeper
  // (and notify), or the sleeper's subsequent outstanding_ check observes
  // our increment (and it does not sleep).
  if (sleepers_.load(std::memory_order_seq_cst) == 0) return;
  // Empty critical section: orders this wakeup against a worker that is
  // between registering and blocking, preventing a lost notify.
  { const std::lock_guard<std::mutex> lock(sleep_mutex_); }
  work_available_.notify_one();
}

bool Scheduler::take_from(Worker& w, QueuedTask& out) {
  std::uint32_t idx = 0;
  if (w.ring.steal(idx)) {
    out = std::move(w.pool[idx]);
    w.pool.release(idx);
    return true;
  }
  const std::lock_guard<std::mutex> lock(w.inbox_mutex);
  if (w.inbox.empty()) return false;
  out = std::move(w.inbox.front()); // oldest first, like a ring steal
  w.inbox.pop_front();
  return true;
}

bool Scheduler::pop_own(unsigned index, QueuedTask& out) {
  Worker& w = *workers_[index];
  std::uint32_t idx = 0;
  if (w.ring.pop(idx)) {
    out = std::move(w.pool[idx]);
    w.pool.release(idx);
    return true;
  }
  const std::lock_guard<std::mutex> lock(w.inbox_mutex);
  if (w.inbox.empty()) return false;
  out = std::move(w.inbox.back()); // newest first: LIFO, matches ring pops
  w.inbox.pop_back();
  return true;
}

unsigned Scheduler::steal_tier(unsigned thief, unsigned victim) const {
  if (worker_core_[thief] >= 0 && worker_core_[thief] == worker_core_[victim]) {
    return 0; // SMT sibling: shares the thief's L1/L2
  }
  return worker_domain_[thief] == worker_domain_[victim] ? 1 : 2;
}

bool Scheduler::steal(unsigned thief, QueuedTask& out) {
  // Hierarchical victim selection when NUMA-aware: SMT siblings of the
  // thief's core first (their queues are L1/L2-warm), then same-domain
  // workers, then remote domains as the last resort — the ordering the
  // paper's NUMA-aware HPX scheduling approximates. Flat rotating scan
  // otherwise. Each pass rotates from the thief to spread contention;
  // successful steals are classified and counted per tier either way.
  const unsigned n = active_.load(std::memory_order_acquire);
  auto try_victim = [&](unsigned v) {
    if (v == thief) return false;
    if (!take_from(*workers_[v], out)) return false;
    Worker& me = *workers_[thief];
    const unsigned tier = steal_tier(thief, v);
    ++me.steals;
    ++me.steals_by_tier[tier];
    steal_counter().add(1);
    tier_steal_counter(tier).add(1);
    if (tier == 2) cross_domain_steal_counter().add(1);
    return true;
  };
  if (config_.numa_aware && config_.numa_domains > 1) {
    for (unsigned tier = 0; tier < 3; ++tier) {
      for (unsigned k = 1; k < n; ++k) {
        const unsigned v = (thief + k) % n;
        if (v != thief && steal_tier(thief, v) == tier && try_victim(v)) {
          return true;
        }
      }
    }
    return false;
  }
  for (unsigned k = 1; k < n; ++k) {
    if (try_victim((thief + k) % n)) return true;
  }
  return false;
}

void Scheduler::on_task_done() {
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    const std::lock_guard<std::mutex> lock(sleep_mutex_);
    quiescent_.notify_all();
  }
}

void Scheduler::run_task(QueuedTask& task) {
  // After cancellation only the accounting runs: bodies of already-queued
  // tasks are dropped so the scheduler drains instead of compounding the
  // failure. Promise-completing closures (async/dataflow) are exempt — they
  // must reach their promise or a helper-less get() would block forever —
  // and observe cancelled() themselves. Any exception that reaches the
  // worker is latched, never terminated on.
  const bool timed = obs::task_timing_enabled();
  std::int64_t t0 = 0;
  if (timed) {
    t0 = support::now_ns();
    if (task.enqueue_ns != 0) task_wait_histogram().observe(t0 - task.enqueue_ns);
  }
  if (task.always_run || !cancelled_.load(std::memory_order_acquire)) {
    try {
      support::fault::check("flux:task");
      task.fn();
    } catch (...) {
      report_task_error(std::current_exception());
    }
  }
  task.fn = Task{};
  if (timed) {
    const std::int64_t t1 = support::now_ns();
    task_run_histogram().observe(t1 - t0);
    // The scheduler-level span encloses whatever kernel span the task body
    // published, giving the trace genuine nesting on each worker track.
    obs::span("task", "flux", t0, t1);
  }
}

void Scheduler::worker_loop(unsigned index) {
  tls_scheduler = this;
  tls_worker_index = static_cast<int>(index);
  pin_self(index);
  QueuedTask task;
  while (true) {
    if (pop_own(index, task) || steal(index, task)) {
      run_task(task);
      ++workers_[index]->executed;
      executed_counter().add(1);
      on_task_done();
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    if (stopping_.load(std::memory_order_acquire)) return;
    // Register as a sleeper *before* re-checking for work: the seq_cst
    // pair with enqueue()'s outstanding_ increment guarantees that either
    // the submitter sees us (and notifies) or we see its task (and rescan).
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    if (outstanding_.load(std::memory_order_seq_cst) == 0) {
      // Nothing pending anywhere: sleep until new work or shutdown.
      work_available_.wait(lock, [&] {
        return stopping_.load(std::memory_order_acquire) ||
               outstanding_.load(std::memory_order_acquire) > 0;
      });
    } else {
      // Work exists but our steal scan raced (or everything is running);
      // back off briefly, a fresh submission wakes us sooner.
      work_available_.wait_for(lock, std::chrono::microseconds(50));
    }
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
    if (stopping_.load(std::memory_order_acquire)) return;
  }
}

void Scheduler::wait_for_quiescence() {
  STS_EXPECTS(tls_scheduler != this); // a worker waiting here would deadlock
  {
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    quiescent_.wait(lock, [&] {
      return outstanding_.load(std::memory_order_acquire) == 0;
    });
  }
  rethrow_and_reset();
}

void Scheduler::wait_for_quiescence(std::chrono::milliseconds deadline) {
  STS_EXPECTS(tls_scheduler != this);
  {
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    const bool quiet = quiescent_.wait_for(lock, deadline, [&] {
      return outstanding_.load(std::memory_order_acquire) == 0;
    });
    if (!quiet) {
      lock.unlock();
      const std::string detail = diagnostics().to_string();
      obs::counter("flux.watchdog_fired").add(1);
      obs::instant("flux:watchdog", "watchdog",
                   "{\"detail\":\"" + support::json_escape(detail) + "\"}");
      throw support::TimeoutError(
          "flux: quiescence deadline (" + std::to_string(deadline.count()) +
          " ms) expired: " + detail);
    }
  }
  rethrow_and_reset();
}

void Scheduler::report_task_error(std::exception_ptr error) noexcept {
  bool latched = false;
  {
    const std::lock_guard<std::mutex> lock(error_mutex_);
    if (!first_error_) {
      first_error_ = error;
      latched = true;
    }
  }
  cancelled_.store(true, std::memory_order_release);
  if (latched) {
    try {
      obs::counter("flux.cancellations").add(1);
    } catch (...) {
    }
    obs::instant("flux:cancel", "cancel");
  }
}

void Scheduler::rethrow_if_cancelled() {
  if (!cancelled_.load(std::memory_order_acquire)) return;
  std::exception_ptr err;
  {
    const std::lock_guard<std::mutex> lock(error_mutex_);
    err = first_error_;
  }
  if (err) std::rethrow_exception(err);
  throw support::Error("flux: scheduler cancelled");
}

void Scheduler::rethrow_and_reset() {
  std::exception_ptr err;
  {
    const std::lock_guard<std::mutex> lock(error_mutex_);
    err = std::exchange(first_error_, nullptr);
  }
  cancelled_.store(false, std::memory_order_release);
  if (err) std::rethrow_exception(err);
}

void Scheduler::drain() noexcept {
  {
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    quiescent_.wait(lock, [&] {
      return outstanding_.load(std::memory_order_acquire) == 0;
    });
  }
  {
    const std::lock_guard<std::mutex> lock(error_mutex_);
    first_error_ = nullptr;
  }
  cancelled_.store(false, std::memory_order_release);
}

Scheduler::QueueDiagnostics Scheduler::diagnostics() const {
  QueueDiagnostics d;
  d.outstanding = outstanding_.load(std::memory_order_acquire);
  const unsigned active = active_.load(std::memory_order_acquire);
  d.queue_depths.reserve(active);
  for (unsigned i = 0; i < active; ++i) {
    Worker& w = *workers_[i];
    std::size_t inbox_depth = 0;
    {
      const std::lock_guard<std::mutex> lock(w.inbox_mutex);
      inbox_depth = w.inbox.size();
    }
    d.queue_depths.push_back(w.ring.size() + inbox_depth);
  }
  return d;
}

std::string Scheduler::QueueDiagnostics::to_string() const {
  std::string out = std::to_string(outstanding) + " task(s) outstanding, " +
                    "queue depths [";
  for (std::size_t i = 0; i < queue_depths.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(queue_depths[i]);
  }
  out += "]";
  return out;
}

bool Scheduler::try_run_one() {
  QueuedTask task;
  bool got = false;
  if (tls_scheduler == this && tls_worker_index >= 0) {
    got = pop_own(static_cast<unsigned>(tls_worker_index), task) ||
          steal(static_cast<unsigned>(tls_worker_index), task);
  } else {
    // External helper: steal from each worker in turn, oldest-first.
    const unsigned active = active_.load(std::memory_order_acquire);
    for (unsigned v = 0; v < active && !got; ++v) {
      got = take_from(*workers_[v], task);
    }
  }
  if (!got) return false;
  run_task(task);
  on_task_done();
  return true;
}

int Scheduler::current_worker() const noexcept {
  return tls_scheduler == this ? tls_worker_index : -1;
}

Scheduler::Stats Scheduler::stats() const {
  Stats s;
  const unsigned active = active_.load(std::memory_order_acquire);
  for (unsigned i = 0; i < active; ++i) {
    const Worker& w = *workers_[i];
    s.executed += w.executed;
    s.steals += w.steals;
    s.steals_sibling += w.steals_by_tier[0];
    s.steals_local += w.steals_by_tier[1];
    s.steals_remote += w.steals_by_tier[2];
  }
  s.cross_domain_steals = s.steals_remote;
  return s;
}

} // namespace sts::flux
