#include "flux/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/obs.hpp"
#include "support/error.hpp"
#include "support/escape.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace sts::flux {

namespace {
// Which scheduler (if any) the current thread is a worker of, and its index.
thread_local const Scheduler* tls_scheduler = nullptr;
thread_local int tls_worker_index = -1;

// Telemetry handles, resolved once; the registry outlives every scheduler.
obs::Counter& steal_counter() {
  static obs::Counter& c = obs::counter("flux.steals");
  return c;
}
obs::Counter& cross_domain_steal_counter() {
  static obs::Counter& c = obs::counter("flux.cross_domain_steals");
  return c;
}
obs::Counter& executed_counter() {
  static obs::Counter& c = obs::counter("flux.tasks_executed");
  return c;
}
obs::Histogram& queue_depth_histogram() {
  static obs::Histogram& h = obs::histogram("flux.queue_depth");
  return h;
}
obs::Histogram& task_wait_histogram() {
  static obs::Histogram& h = obs::histogram("flux.task_wait_ns");
  return h;
}
obs::Histogram& task_run_histogram() {
  static obs::Histogram& h = obs::histogram("flux.task_run_ns");
  return h;
}
} // namespace

Scheduler::Scheduler(Config config) : config_(config) {
  // Pre-register the steal counters so a metrics dump lists them even for a
  // run that never stole (a zero row beats an absent one when diffing).
  steal_counter();
  cross_domain_steal_counter();
  config_.threads = std::max(1u, config_.threads);
  config_.numa_domains =
      std::clamp(config_.numa_domains, 1u, config_.threads);
  workers_.reserve(config_.threads);
  for (unsigned i = 0; i < config_.threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(config_.threads);
  for (unsigned i = 0; i < config_.threads; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

Scheduler::~Scheduler() {
  // A throwing wait here during exception unwinding would std::terminate;
  // drain() swallows any still-latched error instead.
  drain();
  stopping_.store(true, std::memory_order_release);
  work_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void Scheduler::submit(std::function<void()> fn, int domain_hint) {
  enqueue({std::move(fn), /*always_run=*/false}, domain_hint);
}

void Scheduler::submit_always(std::function<void()> fn, int domain_hint) {
  enqueue({std::move(fn), /*always_run=*/true}, domain_hint);
}

void Scheduler::enqueue(QueuedTask task, int domain_hint) {
  STS_EXPECTS(task.fn != nullptr);
  const bool metered = obs::metrics_enabled();
  if (metered) task.enqueue_ns = support::now_ns();
  outstanding_.fetch_add(1, std::memory_order_acq_rel);

  unsigned target;
  if (tls_scheduler == this && domain_hint < 0) {
    // A worker spawning a child keeps it local: work-first scheduling, the
    // property that gives task runtimes their cache locality.
    target = static_cast<unsigned>(tls_worker_index);
  } else {
    const unsigned n = next_worker_.fetch_add(1, std::memory_order_relaxed);
    if (domain_hint >= 0) {
      // Round-robin within the requested domain: workers d, d+D, d+2D, ...
      const unsigned domain =
          static_cast<unsigned>(domain_hint) % config_.numa_domains;
      const unsigned per_domain =
          (config_.threads + config_.numa_domains - 1) / config_.numa_domains;
      target = domain + (n % per_domain) * config_.numa_domains;
      if (target >= config_.threads) target = domain;
    } else {
      target = n % config_.threads;
    }
  }

  std::size_t depth = 0;
  {
    Worker& w = *workers_[target];
    const std::lock_guard<std::mutex> lock(w.mutex);
    w.deque.push_front(std::move(task));
    depth = w.deque.size();
  }
  if (metered) {
    queue_depth_histogram().observe(static_cast<std::int64_t>(depth));
  }
  // Taking sleep_mutex_ (even empty) orders this submission against any
  // worker between its idle check and its sleep, preventing a lost wakeup.
  { const std::lock_guard<std::mutex> lock(sleep_mutex_); }
  work_available_.notify_one();
}

bool Scheduler::pop_own(unsigned index, QueuedTask& out) {
  Worker& w = *workers_[index];
  const std::lock_guard<std::mutex> lock(w.mutex);
  if (w.deque.empty()) return false;
  out = std::move(w.deque.front());
  w.deque.pop_front();
  return true;
}

bool Scheduler::steal(unsigned thief, QueuedTask& out) {
  // Same-domain victims first when NUMA-aware, then everyone. Victim order
  // is a rotating scan starting after the thief to spread contention.
  const unsigned n = config_.threads;
  auto try_victim = [&](unsigned v) {
    if (v == thief) return false;
    Worker& w = *workers_[v];
    const std::lock_guard<std::mutex> lock(w.mutex);
    if (w.deque.empty()) return false;
    out = std::move(w.deque.back());
    w.deque.pop_back();
    Worker& me = *workers_[thief];
    ++me.steals;
    steal_counter().add(1);
    if (domain_of_worker(v) != domain_of_worker(thief)) {
      ++me.cross_domain_steals;
      cross_domain_steal_counter().add(1);
    }
    return true;
  };
  if (config_.numa_aware && config_.numa_domains > 1) {
    for (unsigned k = 1; k < n; ++k) {
      const unsigned v = (thief + k) % n;
      if (domain_of_worker(v) == domain_of_worker(thief) && try_victim(v)) {
        return true;
      }
    }
  }
  for (unsigned k = 1; k < n; ++k) {
    if (try_victim((thief + k) % n)) return true;
  }
  return false;
}

void Scheduler::on_task_done() {
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    const std::lock_guard<std::mutex> lock(sleep_mutex_);
    quiescent_.notify_all();
  }
}

void Scheduler::run_task(QueuedTask& task) {
  // After cancellation only the accounting runs: bodies of already-queued
  // tasks are dropped so the scheduler drains instead of compounding the
  // failure. Promise-completing closures (async/dataflow) are exempt — they
  // must reach their promise or a helper-less get() would block forever —
  // and observe cancelled() themselves. Any exception that reaches the
  // worker is latched, never terminated on.
  const bool timed = obs::task_timing_enabled();
  std::int64_t t0 = 0;
  if (timed) {
    t0 = support::now_ns();
    if (task.enqueue_ns != 0) task_wait_histogram().observe(t0 - task.enqueue_ns);
  }
  if (task.always_run || !cancelled_.load(std::memory_order_acquire)) {
    try {
      support::fault::check("flux:task");
      task.fn();
    } catch (...) {
      report_task_error(std::current_exception());
    }
  }
  task.fn = nullptr;
  if (timed) {
    const std::int64_t t1 = support::now_ns();
    task_run_histogram().observe(t1 - t0);
    // The scheduler-level span encloses whatever kernel span the task body
    // published, giving the trace genuine nesting on each worker track.
    obs::span("task", "flux", t0, t1);
  }
}

void Scheduler::worker_loop(unsigned index) {
  tls_scheduler = this;
  tls_worker_index = static_cast<int>(index);
  QueuedTask task;
  while (true) {
    if (pop_own(index, task) || steal(index, task)) {
      run_task(task);
      ++workers_[index]->executed;
      executed_counter().add(1);
      on_task_done();
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    if (stopping_.load(std::memory_order_acquire)) return;
    if (outstanding_.load(std::memory_order_acquire) == 0) {
      // Nothing pending anywhere: sleep until new work or shutdown.
      work_available_.wait(lock, [&] {
        return stopping_.load(std::memory_order_acquire) ||
               outstanding_.load(std::memory_order_acquire) > 0;
      });
    } else {
      // Work exists but our steal scan raced; back off briefly.
      work_available_.wait_for(lock, std::chrono::microseconds(50));
    }
  }
}

void Scheduler::wait_for_quiescence() {
  STS_EXPECTS(tls_scheduler != this); // a worker waiting here would deadlock
  {
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    quiescent_.wait(lock, [&] {
      return outstanding_.load(std::memory_order_acquire) == 0;
    });
  }
  rethrow_and_reset();
}

void Scheduler::wait_for_quiescence(std::chrono::milliseconds deadline) {
  STS_EXPECTS(tls_scheduler != this);
  {
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    const bool quiet = quiescent_.wait_for(lock, deadline, [&] {
      return outstanding_.load(std::memory_order_acquire) == 0;
    });
    if (!quiet) {
      lock.unlock();
      const std::string detail = diagnostics().to_string();
      obs::counter("flux.watchdog_fired").add(1);
      obs::instant("flux:watchdog", "watchdog",
                   "{\"detail\":\"" + support::json_escape(detail) + "\"}");
      throw support::TimeoutError(
          "flux: quiescence deadline (" + std::to_string(deadline.count()) +
          " ms) expired: " + detail);
    }
  }
  rethrow_and_reset();
}

void Scheduler::report_task_error(std::exception_ptr error) noexcept {
  bool latched = false;
  {
    const std::lock_guard<std::mutex> lock(error_mutex_);
    if (!first_error_) {
      first_error_ = error;
      latched = true;
    }
  }
  cancelled_.store(true, std::memory_order_release);
  if (latched) {
    try {
      obs::counter("flux.cancellations").add(1);
    } catch (...) {
    }
    obs::instant("flux:cancel", "cancel");
  }
}

void Scheduler::rethrow_if_cancelled() {
  if (!cancelled_.load(std::memory_order_acquire)) return;
  std::exception_ptr err;
  {
    const std::lock_guard<std::mutex> lock(error_mutex_);
    err = first_error_;
  }
  if (err) std::rethrow_exception(err);
  throw support::Error("flux: scheduler cancelled");
}

void Scheduler::rethrow_and_reset() {
  std::exception_ptr err;
  {
    const std::lock_guard<std::mutex> lock(error_mutex_);
    err = std::exchange(first_error_, nullptr);
  }
  cancelled_.store(false, std::memory_order_release);
  if (err) std::rethrow_exception(err);
}

void Scheduler::drain() noexcept {
  {
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    quiescent_.wait(lock, [&] {
      return outstanding_.load(std::memory_order_acquire) == 0;
    });
  }
  {
    const std::lock_guard<std::mutex> lock(error_mutex_);
    first_error_ = nullptr;
  }
  cancelled_.store(false, std::memory_order_release);
}

Scheduler::QueueDiagnostics Scheduler::diagnostics() const {
  QueueDiagnostics d;
  d.outstanding = outstanding_.load(std::memory_order_acquire);
  d.queue_depths.reserve(workers_.size());
  for (const auto& w : workers_) {
    const std::lock_guard<std::mutex> lock(w->mutex);
    d.queue_depths.push_back(w->deque.size());
  }
  return d;
}

std::string Scheduler::QueueDiagnostics::to_string() const {
  std::string out = std::to_string(outstanding) + " task(s) outstanding, " +
                    "queue depths [";
  for (std::size_t i = 0; i < queue_depths.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(queue_depths[i]);
  }
  out += "]";
  return out;
}

bool Scheduler::try_run_one() {
  QueuedTask task;
  bool got = false;
  if (tls_scheduler == this && tls_worker_index >= 0) {
    got = pop_own(static_cast<unsigned>(tls_worker_index), task) ||
          steal(static_cast<unsigned>(tls_worker_index), task);
  } else {
    // External helper: scan all deques oldest-first.
    for (unsigned v = 0; v < config_.threads && !got; ++v) {
      Worker& w = *workers_[v];
      const std::lock_guard<std::mutex> lock(w.mutex);
      if (!w.deque.empty()) {
        task = std::move(w.deque.back());
        w.deque.pop_back();
        got = true;
      }
    }
  }
  if (!got) return false;
  run_task(task);
  on_task_done();
  return true;
}

int Scheduler::current_worker() const noexcept {
  return tls_scheduler == this ? tls_worker_index : -1;
}

Scheduler::Stats Scheduler::stats() const {
  Stats s;
  for (const auto& w : workers_) {
    s.executed += w->executed;
    s.steals += w->steals;
    s.cross_domain_steals += w->cross_domain_steals;
  }
  return s;
}

} // namespace sts::flux
