// flux futures: continuation-capable shared state, future/shared_future,
// and promise, modeled on the HPX subset the paper's Listing 2 uses.
//
// Unlike std::future, a flux future can (1) carry continuations that fire
// when it becomes ready -- the mechanism dataflow() builds dependency
// chains out of -- and (2) be awaited cooperatively: get() called from a
// worker thread executes other pending tasks while it waits instead of
// blocking the OS thread (HPX suspends lightweight threads; help-first
// waiting is the equivalent for kernel-thread workers).
#pragma once

#include <chrono>
#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "flux/scheduler.hpp"
#include "support/error.hpp"

namespace sts::flux {

namespace detail {

/// Shared state common to future<T> and shared_future<T>.
template <typename T>
class FutureState {
public:
  using Storage = std::conditional_t<std::is_void_v<T>, char, std::optional<T>>;

  void set_value_impl() {
    static_assert(std::is_void_v<T>);
    finish([](Storage&) {});
  }

  template <typename U>
  void set_value_impl(U&& value) {
    static_assert(!std::is_void_v<T>);
    finish([&](Storage& s) { s.emplace(std::forward<U>(value)); });
  }

  void set_exception(std::exception_ptr e) {
    finish([&](Storage&) {}, e);
  }

  [[nodiscard]] bool ready() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return ready_;
  }

  /// Registers `fn` to run when the state becomes ready; runs it inline
  /// immediately if already ready. Continuations fire exactly once.
  void add_continuation(std::function<void()> fn) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!ready_) {
        continuations_.push_back(std::move(fn));
        return;
      }
    }
    fn();
  }

  /// Blocks until ready; `helper` (may be null) is invoked repeatedly to
  /// make progress while waiting (see future::get). With a helper, the wait
  /// is cancellation-aware: if the scheduler latches a task failure, the
  /// failure is rethrown here instead of blocking on a future whose
  /// producer was cancelled and will never complete.
  void wait(Scheduler* helper) {
    if (helper != nullptr) {
      const bool on_worker = helper->current_worker() >= 0;
      while (!ready()) {
        helper->rethrow_if_cancelled();
        if (helper->try_run_one()) continue;
        if (on_worker) {
          // Cooperative wait on a worker: stay hot, another worker is about
          // to publish the value.
          std::this_thread::yield();
          continue;
        }
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait_for(lock, std::chrono::milliseconds(1),
                     [&] { return ready_; });
      }
      return;
    }
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return ready_; });
  }

  /// Stored exception if the state completed exceptionally; null while
  /// pending or on success. Used by dataflow() to forward dependency
  /// failures without invoking the dependent body.
  [[nodiscard]] std::exception_ptr error() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return ready_ ? error_ : nullptr;
  }

  /// Precondition: ready. Rethrows a stored exception.
  decltype(auto) value() {
    const std::lock_guard<std::mutex> lock(mutex_);
    STS_EXPECTS(ready_);
    if (error_) std::rethrow_exception(error_);
    if constexpr (!std::is_void_v<T>) {
      return static_cast<T&>(*storage_);
    }
  }

private:
  template <typename Store>
  void finish(Store&& store, std::exception_ptr e = nullptr) {
    std::vector<std::function<void()>> to_run;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      STS_EXPECTS(!ready_); // single completion
      store(storage_);
      error_ = e;
      ready_ = true;
      to_run.swap(continuations_);
    }
    cv_.notify_all();
    for (auto& fn : to_run) fn();
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  Storage storage_{};
  std::exception_ptr error_;
  bool ready_ = false;
  std::vector<std::function<void()>> continuations_;
};

} // namespace detail

template <typename T>
class future;
template <typename T>
class shared_future;

/// Write side of a future (used by async/dataflow internals and by user
/// code bridging external events into the dataflow graph).
template <typename T>
class promise {
public:
  promise() : state_(std::make_shared<detail::FutureState<T>>()) {}

  [[nodiscard]] future<T> get_future() const { return future<T>(state_); }
  [[nodiscard]] shared_future<T> get_shared_future() const {
    return shared_future<T>(state_);
  }

  template <typename U = T>
  void set_value(U&& v) {
    state_->set_value_impl(std::forward<U>(v));
  }
  void set_value()
    requires std::is_void_v<T>
  {
    state_->set_value_impl();
  }
  void set_exception(std::exception_ptr e) { state_->set_exception(e); }

private:
  std::shared_ptr<detail::FutureState<T>> state_;
};

/// Move-only handle to an eventual value.
template <typename T>
class future {
public:
  future() = default;
  explicit future(std::shared_ptr<detail::FutureState<T>> s)
      : state_(std::move(s)) {}

  future(future&&) noexcept = default;
  future& operator=(future&&) noexcept = default;
  future(const future&) = delete;
  future& operator=(const future&) = delete;

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }
  [[nodiscard]] bool is_ready() const {
    STS_EXPECTS(valid());
    return state_->ready();
  }

  /// Waits (cooperatively on worker threads when `helper` given) and
  /// returns the value / rethrows.
  T get(Scheduler* helper = nullptr) {
    STS_EXPECTS(valid());
    state_->wait(helper);
    if constexpr (std::is_void_v<T>) {
      state_->value();
    } else {
      return std::move(state_->value());
    }
  }

  [[nodiscard]] shared_future<T> share() {
    STS_EXPECTS(valid());
    return shared_future<T>(std::move(state_));
  }

  /// Internal: dependency hookup for dataflow().
  [[nodiscard]] const std::shared_ptr<detail::FutureState<T>>& state() const {
    return state_;
  }

private:
  std::shared_ptr<detail::FutureState<T>> state_;
};

/// Copyable handle; the type the solvers keep per vector block
/// (`std::vector<shared_future<void>> Y_ftr` in Listing 2).
template <typename T>
class shared_future {
public:
  shared_future() = default;
  explicit shared_future(std::shared_ptr<detail::FutureState<T>> s)
      : state_(std::move(s)) {}
  /*implicit*/ shared_future(future<T>&& f) : state_(f.share().state()) {}

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }
  [[nodiscard]] bool is_ready() const {
    STS_EXPECTS(valid());
    return state_->ready();
  }

  /// For non-void T returns a const reference to the shared value.
  decltype(auto) get(Scheduler* helper = nullptr) const {
    STS_EXPECTS(valid());
    state_->wait(helper);
    if constexpr (std::is_void_v<T>) {
      state_->value();
    } else {
      return static_cast<const T&>(state_->value());
    }
  }

  [[nodiscard]] const std::shared_ptr<detail::FutureState<T>>& state() const {
    return state_;
  }

private:
  std::shared_ptr<detail::FutureState<T>> state_;
};

/// An already-satisfied future (HPX's make_ready_future).
inline shared_future<void> make_ready_future() {
  promise<void> p;
  p.set_value();
  return p.get_shared_future();
}

template <typename T>
shared_future<std::decay_t<T>> make_ready_future(T&& value) {
  promise<std::decay_t<T>> p;
  p.set_value(std::forward<T>(value));
  return p.get_shared_future();
}

} // namespace sts::flux
