// Deterministic, seedable pseudo-random generation.
//
// All generators and tests in this repository derive their randomness from
// SplitMix64/Xoshiro256** seeded explicitly, so every matrix, DAG and
// property-test sweep is reproducible bit-for-bit across runs and machines.
#pragma once

#include <cstdint>
#include <limits>

namespace sts::support {

/// SplitMix64: used to expand a single seed into generator state.
class SplitMix64 {
public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast, high-quality 64-bit PRNG (public-domain algorithm by
/// Blackman & Vigna). Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept : s_{} {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Unbiased enough for workload generation.
  constexpr std::uint64_t below(std::uint64_t n) noexcept {
    return n == 0 ? 0 : (*this)() % n;
  }

private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

} // namespace sts::support
