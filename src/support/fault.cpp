#include "support/fault.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

namespace sts::support::fault {
namespace {

struct Armed {
  Spec spec;
  std::uint64_t visits = 0;
  bool fired = false;
  std::uint64_t rng = 0; // SplitMix64 state for prob > 0 specs
};

// SplitMix64 step, local so the fault registry stays dependency-free.
std::uint64_t mix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// FNV-1a, so an unseeded prob spec is still deterministic per site name.
std::uint64_t hash_site(const std::string& site) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h == 0 ? 1 : h;
}

struct Registry {
  std::mutex mutex;
  std::map<std::string, Armed> sites;
};

Registry& registry() {
  static Registry r;
  return r;
}

// Fast-path gate: check() is a single relaxed load while nothing is armed.
std::atomic<int> g_armed_count{0};
std::once_flag g_env_once;
std::atomic<Observer> g_observer{nullptr};

void arm_locked(Registry& r, const Spec& spec) {
  Armed armed{spec};
  armed.rng = spec.seed != 0 ? spec.seed : hash_site(spec.site);
  auto [it, inserted] = r.sites.insert_or_assign(spec.site, armed);
  (void)it;
  if (inserted) g_armed_count.fetch_add(1, std::memory_order_release);
}

void init_from_env() {
  const char* raw = std::getenv("STS_FAULT");
  if (raw == nullptr || *raw == '\0') return;
  std::string text(raw);
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find(';', begin);
    if (end == std::string::npos) end = text.size();
    std::string part = text.substr(begin, end - begin);
    if (!part.empty()) arm_locked(r, parse_spec(part));
    begin = end + 1;
  }
}

} // namespace

const char* to_string(Kind k) {
  switch (k) {
  case Kind::kThrow: return "throw";
  case Kind::kNan: return "nan";
  case Kind::kDelay: return "delay";
  case Kind::kCrash: return "crash";
  }
  return "?";
}

Injected::Injected(const std::string& site, std::uint64_t hit)
    : Error("injected fault at '" + site + "' (hit " + std::to_string(hit) +
            ")"),
      site_(site) {}

Spec parse_spec(const std::string& text) {
  Spec spec;
  std::size_t begin = 0;
  bool in_options = false;
  bool saw_hit = false, saw_kind = false, saw_delay = false;
  bool saw_prob = false, saw_seed = false;
  auto once = [&](bool& seen, const std::string& part) {
    if (seen)
      throw Error("fault spec '" + text + "': duplicate key in '" + part +
                  "'");
    seen = true;
  };
  while (begin <= text.size()) {
    std::size_t end = text.find(':', begin);
    if (end == std::string::npos) end = text.size();
    std::string part = text.substr(begin, end - begin);
    // Site names may themselves contain ':' ("flux:task"): segments belong
    // to the site until the first key=value segment.
    if (!in_options && part.find('=') == std::string::npos) {
      if (!part.empty()) {
        spec.site += spec.site.empty() ? part : ":" + part;
      }
    } else if (!part.empty()) {
      in_options = true;
      std::size_t eq = part.find('=');
      if (eq == std::string::npos)
        throw Error("fault spec '" + text + "': expected key=value, got '" +
                    part + "'");
      std::string key = part.substr(0, eq);
      std::string value = part.substr(eq + 1);
      if (key == "hit") {
        once(saw_hit, part);
        char* tail = nullptr;
        unsigned long long v = std::strtoull(value.c_str(), &tail, 10);
        if (value.empty() || *tail != '\0' || v == 0)
          throw Error("fault spec '" + text + "': hit must be a positive " +
                      "integer, got '" + value + "'");
        spec.hit = v;
      } else if (key == "kind") {
        once(saw_kind, part);
        if (value == "throw") spec.kind = Kind::kThrow;
        else if (value == "nan") spec.kind = Kind::kNan;
        else if (value == "delay") spec.kind = Kind::kDelay;
        else if (value == "crash") spec.kind = Kind::kCrash;
        else
          throw Error("fault spec '" + text + "': unknown kind '" + value +
                      "' (expected throw|nan|delay|crash)");
      } else if (key == "delay_ms") {
        once(saw_delay, part);
        char* tail = nullptr;
        unsigned long long v = std::strtoull(value.c_str(), &tail, 10);
        if (value.empty() || *tail != '\0')
          throw Error("fault spec '" + text + "': bad delay_ms '" + value +
                      "'");
        spec.delay_ms = static_cast<std::uint32_t>(v);
      } else if (key == "prob") {
        once(saw_prob, part);
        char* tail = nullptr;
        const double v = std::strtod(value.c_str(), &tail);
        if (value.empty() || *tail != '\0' || !(v > 0.0) || v > 1.0)
          throw Error("fault spec '" + text + "': prob must be in (0, 1], " +
                      "got '" + value + "'");
        spec.prob = v;
      } else if (key == "seed") {
        once(saw_seed, part);
        char* tail = nullptr;
        unsigned long long v = std::strtoull(value.c_str(), &tail, 10);
        if (value.empty() || *tail != '\0' || v == 0)
          throw Error("fault spec '" + text + "': seed must be a positive " +
                      "integer, got '" + value + "'");
        spec.seed = v;
      } else {
        throw Error("fault spec '" + text + "': unknown key '" + key + "'");
      }
    }
    begin = end + 1;
  }
  if (spec.site.empty()) throw Error("fault spec '" + text + "': empty site");
  if (saw_hit && saw_prob)
    throw Error("fault spec '" + text +
                "': hit and prob are mutually exclusive");
  return spec;
}

void arm(const Spec& spec) {
  if (spec.site.empty()) throw Error("fault spec: empty site");
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  arm_locked(r, spec);
}

void arm(const std::string& text) { arm(parse_spec(text)); }

void clear() {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  r.sites.clear();
  g_armed_count.store(0, std::memory_order_release);
}

std::uint64_t visits(const std::string& site) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.visits;
}

void set_observer(Observer observer) noexcept {
  g_observer.store(observer, std::memory_order_release);
}

bool check(const char* site) {
  std::call_once(g_env_once, init_from_env);
  if (g_armed_count.load(std::memory_order_acquire) == 0) return false;

  Spec fire;
  std::uint64_t visit = 0;
  {
    Registry& r = registry();
    std::lock_guard lock(r.mutex);
    auto it = r.sites.find(site);
    if (it == r.sites.end()) return false;
    Armed& armed = it->second;
    visit = ++armed.visits;
    if (armed.spec.prob > 0.0) {
      // Probabilistic arming: a seeded coin flip per visit, no once-only
      // latch — chaos runs want the site to stay dangerous after it fires.
      const double draw =
          static_cast<double>(mix64(armed.rng) >> 11) * 0x1.0p-53;
      if (draw >= armed.spec.prob) return false;
    } else {
      if (armed.fired || visit != armed.spec.hit) return false;
      armed.fired = true;
    }
    fire = armed.spec;
  }

  if (Observer obs = g_observer.load(std::memory_order_acquire)) {
    obs(fire, visit);
  }

  switch (fire.kind) {
  case Kind::kThrow:
    throw Injected(fire.site, fire.hit);
  case Kind::kNan:
    return true;
  case Kind::kDelay:
    std::this_thread::sleep_for(std::chrono::milliseconds(fire.delay_ms));
    return false;
  case Kind::kCrash:
    // No unwinding, no flushes: die the way a kill -9 or power loss would,
    // so recovery tests exercise the torn state a real crash leaves behind.
    std::abort();
  }
  return false;
}

} // namespace sts::support::fault
