// Machine topology detection for NUMA-aware scheduling and placement.
//
// The paper's manycore results (Fig. 5, the EPYC 2x64 runs) hinge on memory
// locality: parallel first-touch placement and NUMA-aware task scheduling
// are the difference between scaling and collapsing once the kernels are
// vectorized. Everything locality-aware in this repo — flux worker pinning,
// domain-partitioned CSB placement, hierarchical victim selection — starts
// from the Machine description built here.
//
// Detection parses the Linux sysfs tree:
//
//   <root>/devices/system/node/node<N>/cpulist   NUMA node -> CPU list
//   <root>/devices/system/cpu/online             online CPU list
//   <root>/devices/system/cpu/cpu<N>/topology/{core_id,physical_package_id}
//
// where <root> is "/sys" by default and overridable with STS_SYS_ROOT, so
// tests (and the EPYC fixture experiments in EXPERIMENTS.md) can inject
// canned topologies. Hosts without a readable sysfs tree degrade to a
// single synthetic node holding hardware_concurrency() CPUs — every
// consumer then behaves exactly as before this layer existed.
#pragma once

#include <string>
#include <vector>

namespace sts::support::topo {

/// One hardware thread (logical CPU) that is online.
struct Cpu {
  int id = -1;   // cpu number (the N of cpuN)
  int node = 0;  // NUMA node id
  int core = -1; // machine-unique physical-core key; -1 when unknown
};

/// One NUMA node and the online CPUs it owns.
struct Node {
  int id = 0;
  std::vector<int> cpus; // ascending cpu ids; never empty (cpu-less
                         // memory-only nodes are dropped)
};

/// Immutable machine description. `nodes` is ascending by node id and never
/// empty; `cpus` is ascending by cpu id and lists online CPUs only.
struct Machine {
  std::vector<Node> nodes;
  std::vector<Cpu> cpus;
  unsigned smt_siblings = 1; // max hardware threads sharing one core
  bool from_sysfs = false;   // false for the synthetic fallback

  [[nodiscard]] unsigned node_count() const noexcept {
    return static_cast<unsigned>(nodes.size());
  }
  [[nodiscard]] unsigned cpu_count() const noexcept {
    return static_cast<unsigned>(cpus.size());
  }
  /// Largest node (workers per domain when pinning compact).
  [[nodiscard]] unsigned cpus_per_node() const noexcept;
  /// Lookup by cpu id; nullptr when `id` is offline/unknown.
  [[nodiscard]] const Cpu* find_cpu(int id) const noexcept;
  [[nodiscard]] std::string describe() const;
};

/// Parses a sysfs cpulist ("0-3,8-11", "0", "") into ascending cpu ids.
/// Whitespace is tolerated; malformed ranges throw support::Error.
[[nodiscard]] std::vector<int> parse_cpulist(const std::string& text);

/// Detects the topology under `sys_root` (a path standing in for "/sys").
/// Never throws: an absent or unreadable tree yields the single-node
/// fallback (from_sysfs == false).
[[nodiscard]] Machine detect(const std::string& sys_root);

/// Process-wide cached detection honoring STS_SYS_ROOT (default "/sys").
[[nodiscard]] const Machine& machine();

/// True when STS_NUMA is set to "off" or "0": the kill switch that forces
/// every consumer back to the flat single-domain behaviour (documented
/// alongside STS_HW_COUNTERS in DESIGN.md).
[[nodiscard]] bool numa_disabled();

/// Effective NUMA domain count for a pool of `threads` workers: the
/// detected node count clamped to [1, threads], or 1 under STS_NUMA=off.
[[nodiscard]] unsigned effective_domains(unsigned threads);

/// Carves the machine's online CPUs into `parts` non-empty, contiguous,
/// domain-aligned slices — the partition arithmetic behind the dispatcher's
/// worker partitions (DESIGN.md §15).
///
///   parts <= nodes: each slice is a union of whole nodes (contiguous in
///     node order, balanced by CPU count) — two slices never share a node.
///   parts > nodes: every node contributes at least one slice; a node's
///     extra slices are contiguous chunks of its own cpulist, so a slice
///     still never straddles a node boundary.
///
/// `parts` is clamped to [1, cpu_count]; the returned vector always has the
/// clamped size and every slice is non-empty with ascending CPU ids.
[[nodiscard]] std::vector<std::vector<int>> partition_cpus(const Machine& m,
                                                           unsigned parts);

} // namespace sts::support::topo
