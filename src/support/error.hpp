// Contract-checking and error-reporting primitives used across the library.
//
// Follows the C++ Core Guidelines (I.6/I.8): preconditions are checked with
// STS_EXPECTS, postconditions with STS_ENSURES, internal invariants with
// STS_ASSERT. All three are active in every build type -- the checks guard
// indexing into shared buffers from concurrently executing tasks, where a
// silent out-of-bounds write would be a data race rather than a clean crash.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace sts::support {

/// Thrown by recoverable failures (bad input files, invalid configuration).
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// An exception escaped a task body inside one of the task runtimes. The
/// runtime latches the first such failure, cancels remaining work, and
/// rethrows this from its quiescence wait, carrying the failing task's label.
class TaskError : public Error {
public:
  TaskError(const std::string& task, const std::string& message)
      : Error("task '" + task + "' failed: " + message), task_(task) {}
  [[nodiscard]] const std::string& task() const noexcept { return task_; }

private:
  std::string task_;
};

/// A bounded quiescence wait expired before the runtime drained; the message
/// carries outstanding-task counts and per-worker queue depths.
class TimeoutError : public Error {
public:
  explicit TimeoutError(const std::string& what) : Error(what) {}
};

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "sts: %s violated: %s at %s:%d\n", kind, expr, file, line);
  std::abort();
}

} // namespace sts::support

#define STS_EXPECTS(cond)                                                      \
  ((cond) ? static_cast<void>(0)                                               \
          : ::sts::support::contract_failure("precondition", #cond, __FILE__,  \
                                             __LINE__))
#define STS_ENSURES(cond)                                                      \
  ((cond) ? static_cast<void>(0)                                               \
          : ::sts::support::contract_failure("postcondition", #cond, __FILE__, \
                                             __LINE__))
#define STS_ASSERT(cond)                                                       \
  ((cond) ? static_cast<void>(0)                                               \
          : ::sts::support::contract_failure("invariant", #cond, __FILE__,     \
                                             __LINE__))
