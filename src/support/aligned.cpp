#include "support/aligned.hpp"

#include <cstring>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace sts::support {

void first_touch_zero(double* data, std::size_t n, bool parallel) {
  if (n == 0) return;
  if (!parallel) {
    std::memset(data, 0, n * sizeof(double));
    return;
  }
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
    data[i] = 0.0;
  }
#else
  std::memset(data, 0, n * sizeof(double));
#endif
}

} // namespace sts::support
