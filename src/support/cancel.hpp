// Cooperative cancellation for long-running solves.
//
// A CancelToken is a level-triggered flag shared between the party that
// wants a solve stopped (a service cancel request, a --timeout watchdog)
// and the solver driver, which polls it at iteration boundaries — the
// points where every runtime is quiescent, so unwinding is safe. A request
// carries a reason string ("cancelled", "timeout", "drained") that rides
// the Cancelled exception to the caller, letting it distinguish a user
// cancel from a deadline without extra side channels.
//
// Deadline is the watchdog half: a small RAII thread that requests the
// token when a wall-clock budget expires, with an optional callback for
// runtimes (flux) that can be unblocked more promptly than the next poll.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "support/error.hpp"

namespace sts::support {

/// Thrown by CancelToken::throw_if_requested() at a solver poll point.
class Cancelled : public Error {
public:
  explicit Cancelled(const std::string& reason)
      : Error("cancelled: " + reason), reason_(reason) {}
  [[nodiscard]] const std::string& reason() const noexcept { return reason_; }

private:
  std::string reason_;
};

/// Sticky cancellation flag. request() is one-shot: the first caller's
/// reason wins, later requests are ignored. requested() is a relaxed
/// atomic load, cheap enough for per-iteration polling.
class CancelToken {
public:
  void request(std::string reason = "cancelled") {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (requested_.load(std::memory_order_relaxed)) return;
      reason_ = std::move(reason);
    }
    requested_.store(true, std::memory_order_release);
  }

  [[nodiscard]] bool requested() const noexcept {
    return requested_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::string reason() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return reason_;
  }

  void throw_if_requested() const {
    if (requested()) throw Cancelled(reason());
  }

private:
  std::atomic<bool> requested_{false};
  mutable std::mutex mutex_;
  std::string reason_;
};

/// Wall-clock guard: requests `token` with reason `reason` after `budget`
/// unless disarmed (destroyed) first. `on_expire` runs after the request
/// on the watchdog thread — used to nudge a blocked runtime (e.g.
/// flux::Scheduler::report_task_error) so the driver unblocks before its
/// next poll point.
class Deadline {
public:
  Deadline(CancelToken& token, std::chrono::milliseconds budget,
           std::string reason = "timeout",
           std::function<void()> on_expire = {})
      : token_(token) {
    thread_ = std::thread([this, budget, reason = std::move(reason),
                           on_expire = std::move(on_expire)] {
      std::unique_lock<std::mutex> lock(mutex_);
      if (cv_.wait_for(lock, budget, [this] { return disarmed_; })) return;
      lock.unlock();
      token_.request(reason);
      if (on_expire) on_expire();
    });
  }

  ~Deadline() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      disarmed_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

  Deadline(const Deadline&) = delete;
  Deadline& operator=(const Deadline&) = delete;

private:
  CancelToken& token_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool disarmed_ = false;
  std::thread thread_;
};

} // namespace sts::support
