// Deterministic, seeded fault injection for the task runtimes.
//
// Named fault points (e.g. "spmv_block", "flux:task") are compiled into the
// product unconditionally; each call to check() visits the point. A fault is
// armed either programmatically (arm()) or from the STS_FAULT environment
// variable, with specs of the form
//
//   <site>[:hit=<n>][:kind=throw|nan|delay|crash][:delay_ms=<ms>]
//         [:prob=<p>][:seed=<s>]
//
// separated by ';'. `hit` counts visits from 1 (default 1: the first visit
// fires); a fault fires exactly once per arming, so a given task site fails
// at a reproducible point in the task graph. `prob` replaces the hit latch
// with a seeded coin flip per visit (fires any number of times) — the chaos
// harness arms e.g. "journal:append:kind=crash:prob=0.05:seed=7" to kill
// the daemon at an unpredictable-but-reproducible record. `hit` and `prob`
// are mutually exclusive; each key may appear at most once. Kinds:
//
//   throw  - throw fault::Injected from the fault point (default)
//   nan    - check() returns true; the caller poisons its output with NaN
//   delay  - sleep delay_ms at the fault point (stall injection for
//            quiescence-watchdog tests)
//   crash  - std::abort() at the fault point: the process dies without
//            unwinding, as a real crash would (crash-recovery tests)
//
// When nothing is armed, check() is one atomic load — the points are cheap
// enough to keep in release kernels.
#pragma once

#include <cstdint>
#include <string>

#include "support/error.hpp"

namespace sts::support::fault {

enum class Kind : std::uint8_t { kThrow, kNan, kDelay, kCrash };

[[nodiscard]] const char* to_string(Kind k);

struct Spec {
  std::string site;
  std::uint64_t hit = 1;      // 1-based visit index that fires
  Kind kind = Kind::kThrow;
  std::uint32_t delay_ms = 50; // only meaningful for kDelay
  double prob = 0.0;          // > 0: fire with this probability per visit
  std::uint64_t seed = 0;     // prob RNG seed; 0 = derive from the site name
};

/// Thrown from a fault point armed with kind=throw.
class Injected : public Error {
public:
  Injected(const std::string& site, std::uint64_t hit);
  [[nodiscard]] const std::string& site() const noexcept { return site_; }

private:
  std::string site_;
};

/// Parses one spec ("site:hit=3:kind=throw"). Throws Error on bad syntax.
[[nodiscard]] Spec parse_spec(const std::string& text);

/// Arms a fault; replaces any previous arming of the same site.
void arm(const Spec& spec);
void arm(const std::string& text);

/// Disarms every fault and resets all visit counters.
void clear();

/// Visit count of an armed site since it was armed (0 for unarmed sites —
/// visits are only tracked while a fault is armed, keeping the unarmed
/// fast path allocation-free).
[[nodiscard]] std::uint64_t visits(const std::string& site);

/// Visits the fault point `site`. Returns true iff a kind=nan fault fired
/// here (the caller should poison its output); throws Injected for
/// kind=throw; sleeps for kind=delay. The STS_FAULT environment variable is
/// consulted once, on the first visit to any point in the process.
bool check(const char* site);

/// Observer invoked whenever an armed fault fires (any kind), before its
/// effect takes hold (so a kThrow site is reported before the throw). Used
/// by the telemetry layer to emit trace instants without support depending
/// on obs. The observer runs outside the registry lock and must not call
/// back into arm()/clear()/check().
using Observer = void (*)(const Spec& spec, std::uint64_t visit);

/// Installs the process-wide fire observer (nullptr to remove).
void set_observer(Observer observer) noexcept;

/// RAII arming for tests: arms on construction, clear()s on destruction.
class ScopedFault {
public:
  explicit ScopedFault(const std::string& spec) { arm(spec); }
  ~ScopedFault() { clear(); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
};

} // namespace sts::support::fault
