// Cache-line-aligned, optionally first-touch-initialized buffers.
//
// Sparse-solver performance on NUMA machines depends on where pages land;
// the paper's "first-touch placement" optimization (Fig. 5) is modeled here
// by initializing pages from parallel threads so each page is faulted in by
// the thread that will use it. On non-NUMA hosts the parallel first touch is
// harmless; the simulator (src/sim) models the NUMA cost explicitly.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <utility>

#include "support/error.hpp"

namespace sts::support {

inline constexpr std::size_t kCacheLineBytes = 64;

/// RAII owner of a 64-byte-aligned array of trivially-destructible T.
/// Non-copyable, movable; zero-initialization is explicit (see first_touch_zero).
template <typename T>
class AlignedBuffer {
public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t n) : size_(n) {
    if (n == 0) return;
    const std::size_t bytes = round_up(n * sizeof(T), kCacheLineBytes);
    data_ = static_cast<T*>(std::aligned_alloc(kCacheLineBytes, bytes));
    if (data_ == nullptr) throw std::bad_alloc{};
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  ~AlignedBuffer() { release(); }

  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  T& operator[](std::size_t i) {
    STS_EXPECTS(i < size_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    STS_EXPECTS(i < size_);
    return data_[i];
  }

  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + size_; }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }

private:
  static std::size_t round_up(std::size_t v, std::size_t align) {
    return (v + align - 1) / align * align;
  }
  void release() noexcept {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Zero `buf` with the calling policy used by the paper's first-touch
/// optimization: when `parallel` is true each OpenMP thread touches the
/// chunk it will later operate on, distributing pages across NUMA nodes.
void first_touch_zero(double* data, std::size_t n, bool parallel);

} // namespace sts::support
