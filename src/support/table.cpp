#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "support/error.hpp"

namespace sts::support {

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  STS_EXPECTS(!header_.empty());
}

Table& Table::row() {
  cells_.emplace_back();
  return *this;
}

Table& Table::add(std::string cell) {
  STS_EXPECTS(!cells_.empty());
  cells_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add(double value, int precision) {
  return add(format_double(value, precision));
}

Table& Table::add(std::int64_t value) { return add(std::to_string(value)); }
Table& Table::add(std::size_t value) { return add(std::to_string(value)); }
Table& Table::add(int value) { return add(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << cell;
      if (c + 1 < width.size()) {
        os << std::string(width[c] - cell.size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : cells_) emit(row);
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
} // namespace

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : cells_) emit(row);
}

void Table::write_csv_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("cannot open CSV output file: " + path);
  write_csv(out);
}

} // namespace sts::support
