// String escaping for the exporters (trace JSON, metrics/flow-graph CSV).
//
// Kernel labels and task names flow into machine-readable dumps; a name
// containing a quote, comma, or backslash must not corrupt the file. Every
// exporter routes strings through these two helpers.
#pragma once

#include <string>
#include <string_view>

namespace sts::support {

/// Escapes `s` for use inside a JSON string literal (quotes, backslashes,
/// control characters as \uXXXX). Returns the escaped body WITHOUT the
/// surrounding quotes.
[[nodiscard]] std::string json_escape(std::string_view s);

/// Renders `s` as one RFC 4180 CSV field: returned unchanged unless it
/// contains a comma, quote, CR, or LF, in which case it is wrapped in
/// quotes with embedded quotes doubled.
[[nodiscard]] std::string csv_field(std::string_view s);

} // namespace sts::support
