// Environment-variable configuration helpers.
//
// Bench binaries honor a small set of STS_* variables (e.g. STS_SCALE to
// shrink workloads on tiny machines); these helpers centralize the parsing.
#pragma once

#include <cstdint>
#include <string>

namespace sts::support {

/// Returns the value of `name`, or `fallback` if unset/empty.
std::string env_string(const char* name, const std::string& fallback);

/// Returns the integer value of `name`, or `fallback` if unset or unparsable.
std::int64_t env_int(const char* name, std::int64_t fallback);

/// Returns the double value of `name`, or `fallback` if unset or unparsable.
double env_double(const char* name, double fallback);

} // namespace sts::support
