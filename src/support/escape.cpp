#include "support/escape.hpp"

#include <cstdio>

namespace sts::support {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
    case '"': out += "\\\""; break;
    case '\\': out += "\\\\"; break;
    case '\b': out += "\\b"; break;
    case '\f': out += "\\f"; break;
    case '\n': out += "\\n"; break;
    case '\r': out += "\\r"; break;
    case '\t': out += "\\t"; break;
    default:
      if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(c)));
        out += buf;
      } else {
        out += c;
      }
    }
  }
  return out;
}

std::string csv_field(std::string_view s) {
  const bool needs_quoting =
      s.find_first_of(",\"\r\n") != std::string_view::npos;
  if (!needs_quoting) return std::string(s);
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

} // namespace sts::support
