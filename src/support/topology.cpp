#include "support/topology.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

#include "support/env.hpp"
#include "support/error.hpp"

namespace sts::support::topo {

namespace {

/// First line of `path`, stripped of trailing whitespace; nullopt-ish empty
/// string when the file is missing/unreadable.
std::string read_line(const std::string& path) {
  std::ifstream f(path);
  if (!f.is_open()) return {};
  std::string line;
  std::getline(f, line);
  while (!line.empty() &&
         std::isspace(static_cast<unsigned char>(line.back())) != 0) {
    line.pop_back();
  }
  return line;
}

/// Integer contents of `path`, or `fallback` when absent/unparsable.
int read_int(const std::string& path, int fallback) {
  const std::string s = read_line(path);
  if (s.empty()) return fallback;
  try {
    return std::stoi(s);
  } catch (...) {
    return fallback;
  }
}

bool dir_exists(const std::string& path) {
  // A directory is "usable" here iff one of its known files opens; sysfs
  // nodes always carry cpulist/online, and avoiding <filesystem> keeps this
  // layer dependency-free for the sanitizer builds.
  return std::ifstream(path).is_open();
}

Machine fallback_machine() {
  Machine m;
  const unsigned n = std::max(1u, std::thread::hardware_concurrency());
  Node node;
  node.id = 0;
  for (unsigned i = 0; i < n; ++i) {
    node.cpus.push_back(static_cast<int>(i));
    m.cpus.push_back(Cpu{static_cast<int>(i), 0, static_cast<int>(i)});
  }
  m.nodes.push_back(std::move(node));
  m.smt_siblings = 1;
  m.from_sysfs = false;
  return m;
}

} // namespace

std::vector<int> parse_cpulist(const std::string& text) {
  std::vector<int> cpus;
  std::string token;
  std::istringstream is(text);
  while (std::getline(is, token, ',')) {
    // Strip whitespace.
    std::string t;
    for (char c : token) {
      if (std::isspace(static_cast<unsigned char>(c)) == 0) t += c;
    }
    if (t.empty()) continue;
    const std::size_t dash = t.find('-');
    try {
      if (dash == std::string::npos) {
        cpus.push_back(std::stoi(t));
      } else {
        const int lo = std::stoi(t.substr(0, dash));
        const int hi = std::stoi(t.substr(dash + 1));
        if (hi < lo) {
          throw Error("cpulist: descending range '" + t + "'");
        }
        for (int c = lo; c <= hi; ++c) cpus.push_back(c);
      }
    } catch (const Error&) {
      throw;
    } catch (...) {
      throw Error("cpulist: malformed token '" + t + "' in '" + text + "'");
    }
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

unsigned Machine::cpus_per_node() const noexcept {
  std::size_t best = 0;
  for (const Node& n : nodes) best = std::max(best, n.cpus.size());
  return static_cast<unsigned>(best);
}

const Cpu* Machine::find_cpu(int id) const noexcept {
  const auto it =
      std::lower_bound(cpus.begin(), cpus.end(), id,
                       [](const Cpu& c, int v) { return c.id < v; });
  return it != cpus.end() && it->id == id ? &*it : nullptr;
}

std::string Machine::describe() const {
  std::string out = std::to_string(node_count()) + " node(s), " +
                    std::to_string(cpu_count()) + " cpu(s)";
  if (smt_siblings > 1) {
    out += ", smt " + std::to_string(smt_siblings);
  }
  out += from_sysfs ? " [sysfs]" : " [fallback]";
  return out;
}

Machine detect(const std::string& sys_root) {
  const std::string cpu_root = sys_root + "/devices/system/cpu";
  const std::string node_root = sys_root + "/devices/system/node";

  // Online CPU set: the filter every node cpulist is intersected with, so
  // offline CPUs never become pinning targets.
  std::vector<int> online;
  try {
    online = parse_cpulist(read_line(cpu_root + "/online"));
  } catch (const Error&) {
    online.clear(); // corrupt online file: treat the tree as unusable
  }
  if (online.empty()) return fallback_machine();

  // Node -> cpulist. Probe node ids densely from 0; sysfs node numbering
  // can have holes (memory-only or offlined nodes), so tolerate gaps up to
  // a generous bound instead of stopping at the first absent id.
  std::map<int, std::vector<int>> node_cpus;
  constexpr int kMaxNodeProbe = 4096;
  int misses = 0;
  for (int id = 0; id < kMaxNodeProbe && misses < 64; ++id) {
    const std::string cpulist = node_root + "/node" + std::to_string(id) +
                                "/cpulist";
    if (!dir_exists(cpulist)) {
      ++misses;
      continue;
    }
    misses = 0;
    std::vector<int> cpus;
    try {
      cpus = parse_cpulist(read_line(cpulist));
    } catch (const Error&) {
      continue; // one corrupt node file should not lose the others
    }
    std::vector<int> kept;
    for (int c : cpus) {
      if (std::binary_search(online.begin(), online.end(), c)) {
        kept.push_back(c);
      }
    }
    if (!kept.empty()) node_cpus.emplace(id, std::move(kept));
  }
  if (node_cpus.empty()) {
    // No node tree (non-NUMA kernel build): single node over the online
    // set, still counted as a sysfs detection for the cpu/core structure.
    node_cpus.emplace(0, online);
  }

  Machine m;
  m.from_sysfs = true;
  std::map<long long, int> core_population; // core key -> sibling count
  for (auto& [id, cpus] : node_cpus) {
    Node node;
    node.id = id;
    node.cpus = cpus;
    for (int c : cpus) {
      const std::string topo =
          cpu_root + "/cpu" + std::to_string(c) + "/topology";
      const int core_id = read_int(topo + "/core_id", -1);
      const int pkg = read_int(topo + "/physical_package_id", 0);
      // Machine-unique core key: (package, core_id); unknown core ids fall
      // back to the cpu id itself (every cpu its own core, SMT invisible).
      const long long key =
          core_id >= 0 ? static_cast<long long>(pkg) * (1ll << 20) + core_id
                       : -static_cast<long long>(c) - 1;
      m.cpus.push_back(Cpu{c, id, static_cast<int>(key & 0x7fffffff)});
      ++core_population[key];
    }
    m.nodes.push_back(std::move(node));
  }
  std::sort(m.cpus.begin(), m.cpus.end(),
            [](const Cpu& a, const Cpu& b) { return a.id < b.id; });
  for (const auto& [key, count] : core_population) {
    m.smt_siblings = std::max(m.smt_siblings, static_cast<unsigned>(count));
  }
  return m;
}

const Machine& machine() {
  static const Machine m = detect(env_string("STS_SYS_ROOT", "/sys"));
  return m;
}

bool numa_disabled() {
  const std::string v = env_string("STS_NUMA", "");
  return v == "off" || v == "0";
}

unsigned effective_domains(unsigned threads) {
  if (threads == 0) threads = 1;
  if (numa_disabled()) return 1;
  return std::clamp(machine().node_count(), 1u, threads);
}

std::vector<std::vector<int>> partition_cpus(const Machine& m,
                                             unsigned parts) {
  const unsigned total = std::max(1u, m.cpu_count());
  parts = std::clamp(parts, 1u, total);
  const std::size_t nodes = m.nodes.size();
  std::vector<std::vector<int>> out;
  out.reserve(parts);

  if (parts <= nodes) {
    // Whole-node assignment: walk nodes in order, closing a slice once the
    // cumulative CPU count crosses the ideal cut line for that many slices —
    // but never letting the remaining nodes drop below the remaining slices
    // (every slice must end up with at least one whole node).
    const double share = static_cast<double>(total) / parts;
    std::vector<int> cur;
    std::size_t cum = 0;
    for (std::size_t ni = 0; ni < nodes; ++ni) {
      cur.insert(cur.end(), m.nodes[ni].cpus.begin(), m.nodes[ni].cpus.end());
      cum += m.nodes[ni].cpus.size();
      const std::size_t slices_left = parts - out.size(); // >= 1 here
      const std::size_t nodes_left = nodes - ni - 1;
      if (slices_left <= 1) continue; // tail slice takes everything left
      const bool share_met =
          static_cast<double>(cum) >=
          share * static_cast<double>(out.size() + 1) - 1e-9;
      const bool must_close = nodes_left < slices_left;
      if ((share_met && nodes_left >= slices_left - 1) || must_close) {
        out.push_back(std::move(cur));
        cur.clear();
      }
    }
    out.push_back(std::move(cur));
    return out;
  }

  // parts > nodes: give node i a slice count k_i proportional to its CPU
  // count (min 1, max cpus_i), fix rounding with largest remainders, then
  // split each node's cpulist into k_i contiguous chunks.
  std::vector<unsigned> k(nodes, 1);
  unsigned assigned = static_cast<unsigned>(nodes);
  // Proportional extras beyond the mandatory one slice per node.
  std::vector<double> frac(nodes, 0.0);
  for (std::size_t ni = 0; ni < nodes; ++ni) {
    const double ideal = static_cast<double>(m.nodes[ni].cpus.size()) *
                         static_cast<double>(parts) /
                         static_cast<double>(total);
    const unsigned cap = static_cast<unsigned>(m.nodes[ni].cpus.size());
    unsigned want = std::max(1u, static_cast<unsigned>(ideal));
    want = std::min(want, cap);
    frac[ni] = ideal - static_cast<double>(want);
    assigned += want - 1;
    k[ni] = want;
  }
  // Distribute leftover slices by largest fractional remainder among nodes
  // that still have spare CPUs; remove excess from smallest remainders.
  while (assigned < parts) {
    std::size_t best = nodes;
    for (std::size_t ni = 0; ni < nodes; ++ni) {
      if (k[ni] >= m.nodes[ni].cpus.size()) continue;
      if (best == nodes || frac[ni] > frac[best]) best = ni;
    }
    if (best == nodes) break; // parts already clamped, shouldn't happen
    ++k[best];
    frac[best] -= 1.0;
    ++assigned;
  }
  while (assigned > parts) {
    std::size_t worst = nodes;
    for (std::size_t ni = 0; ni < nodes; ++ni) {
      if (k[ni] <= 1) continue;
      if (worst == nodes || frac[ni] < frac[worst]) worst = ni;
    }
    if (worst == nodes) break;
    --k[worst];
    frac[worst] += 1.0;
    --assigned;
  }
  for (std::size_t ni = 0; ni < nodes; ++ni) {
    const std::vector<int>& cpus = m.nodes[ni].cpus;
    const std::size_t n = cpus.size();
    const std::size_t kk = std::min<std::size_t>(k[ni], n);
    for (std::size_t j = 0; j < kk; ++j) {
      const std::size_t lo = n * j / kk;
      const std::size_t hi = n * (j + 1) / kk;
      out.emplace_back(cpus.begin() + static_cast<std::ptrdiff_t>(lo),
                       cpus.begin() + static_cast<std::ptrdiff_t>(hi));
    }
  }
  return out;
}

} // namespace sts::support::topo
