// Plain-text table and CSV emission for the benchmark harness.
//
// Every bench binary prints the rows/series the corresponding paper table or
// figure reports; Table gives them a uniform, aligned text rendering plus a
// CSV dump for downstream plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sts::support {

/// A simple column-aligned text table. Cells are strings; numeric helpers
/// format with fixed precision. Rendering pads each column to its widest
/// cell.
class Table {
public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; subsequent add() calls append cells to it.
  Table& row();
  Table& add(std::string cell);
  Table& add(double value, int precision = 3);
  Table& add(std::int64_t value);
  Table& add(std::size_t value);
  Table& add(int value);

  [[nodiscard]] std::size_t rows() const noexcept { return cells_.size(); }

  /// Renders with a header rule, e.g. for bench stdout.
  void print(std::ostream& os) const;

  /// Comma-separated dump (header first). Cells containing commas are quoted.
  void write_csv(std::ostream& os) const;
  void write_csv_file(const std::string& path) const;

private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> cells_;
};

/// Formats `value` with `precision` digits after the decimal point.
std::string format_double(double value, int precision);

} // namespace sts::support
