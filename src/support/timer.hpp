// Wall-clock timing helpers for benches and the trace recorder.
#pragma once

#include <chrono>
#include <cstdint>

namespace sts::support {

/// Monotonic wall-clock stopwatch. seconds()/ns() read elapsed time since
/// construction or the last reset().
class Timer {
public:
  Timer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] std::int64_t ns() const noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Nanoseconds since an arbitrary (per-process) epoch; used to timestamp
/// task start/finish events for execution-flow graphs.
inline std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

} // namespace sts::support
