# Empty dependencies file for stsolve.
# This may be replaced when dependencies are built.
