file(REMOVE_RECURSE
  "CMakeFiles/stsolve.dir/stsolve.cpp.o"
  "CMakeFiles/stsolve.dir/stsolve.cpp.o.d"
  "stsolve"
  "stsolve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stsolve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
