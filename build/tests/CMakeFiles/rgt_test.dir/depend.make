# Empty dependencies file for rgt_test.
# This may be replaced when dependencies are built.
