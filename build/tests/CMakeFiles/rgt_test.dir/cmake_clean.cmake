file(REMOVE_RECURSE
  "CMakeFiles/rgt_test.dir/rgt_test.cpp.o"
  "CMakeFiles/rgt_test.dir/rgt_test.cpp.o.d"
  "rgt_test"
  "rgt_test.pdb"
  "rgt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rgt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
