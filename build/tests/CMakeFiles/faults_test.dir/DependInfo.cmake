
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/faults_test.cpp" "tests/CMakeFiles/faults_test.dir/faults_test.cpp.o" "gcc" "tests/CMakeFiles/faults_test.dir/faults_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/solvers/CMakeFiles/sts_solvers.dir/DependInfo.cmake"
  "/root/repo/build/src/bsp/CMakeFiles/sts_bsp.dir/DependInfo.cmake"
  "/root/repo/build/src/ds/CMakeFiles/sts_ds.dir/DependInfo.cmake"
  "/root/repo/build/src/rgt/CMakeFiles/sts_rgt.dir/DependInfo.cmake"
  "/root/repo/build/src/flux/CMakeFiles/sts_flux.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/sts_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/sts_la.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/sts_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sts_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sts_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
