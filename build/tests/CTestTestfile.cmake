# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/la_test[1]_include.cmake")
include("/root/repo/build/tests/sparse_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/bsp_test[1]_include.cmake")
include("/root/repo/build/tests/flux_test[1]_include.cmake")
include("/root/repo/build/tests/rgt_test[1]_include.cmake")
include("/root/repo/build/tests/ds_test[1]_include.cmake")
include("/root/repo/build/tests/perf_test[1]_include.cmake")
include("/root/repo/build/tests/solvers_test[1]_include.cmake")
include("/root/repo/build/tests/faults_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/tuning_test[1]_include.cmake")
