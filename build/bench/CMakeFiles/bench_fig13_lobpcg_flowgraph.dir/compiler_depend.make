# Empty compiler generated dependencies file for bench_fig13_lobpcg_flowgraph.
# This may be replaced when dependencies are built.
