# Empty dependencies file for bench_fig7_reduction.
# This may be replaced when dependencies are built.
