# Empty dependencies file for bench_fig10_lanczos_flowgraph.
# This may be replaced when dependencies are built.
