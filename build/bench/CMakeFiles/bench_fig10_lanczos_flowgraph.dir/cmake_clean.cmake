file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_lanczos_flowgraph.dir/bench_fig10_lanczos_flowgraph.cpp.o"
  "CMakeFiles/bench_fig10_lanczos_flowgraph.dir/bench_fig10_lanczos_flowgraph.cpp.o.d"
  "bench_fig10_lanczos_flowgraph"
  "bench_fig10_lanczos_flowgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_lanczos_flowgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
