# Empty compiler generated dependencies file for bench_fig9_lanczos_speedup.
# This may be replaced when dependencies are built.
