# Empty compiler generated dependencies file for bench_fig8_lanczos_cache.
# This may be replaced when dependencies are built.
