# Empty compiler generated dependencies file for bench_fig14_block_profiles.
# This may be replaced when dependencies are built.
