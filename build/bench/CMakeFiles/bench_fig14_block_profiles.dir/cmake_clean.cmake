file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_block_profiles.dir/bench_fig14_block_profiles.cpp.o"
  "CMakeFiles/bench_fig14_block_profiles.dir/bench_fig14_block_profiles.cpp.o.d"
  "bench_fig14_block_profiles"
  "bench_fig14_block_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_block_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
