# Empty dependencies file for bench_fig11_lobpcg_cache.
# This may be replaced when dependencies are built.
