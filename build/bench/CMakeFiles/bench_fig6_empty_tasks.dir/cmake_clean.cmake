file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_empty_tasks.dir/bench_fig6_empty_tasks.cpp.o"
  "CMakeFiles/bench_fig6_empty_tasks.dir/bench_fig6_empty_tasks.cpp.o.d"
  "bench_fig6_empty_tasks"
  "bench_fig6_empty_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_empty_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
