# Empty compiler generated dependencies file for bench_fig6_empty_tasks.
# This may be replaced when dependencies are built.
