file(REMOVE_RECURSE
  "CMakeFiles/sts_ds.dir/builder.cpp.o"
  "CMakeFiles/sts_ds.dir/builder.cpp.o.d"
  "CMakeFiles/sts_ds.dir/executor.cpp.o"
  "CMakeFiles/sts_ds.dir/executor.cpp.o.d"
  "CMakeFiles/sts_ds.dir/program.cpp.o"
  "CMakeFiles/sts_ds.dir/program.cpp.o.d"
  "libsts_ds.a"
  "libsts_ds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sts_ds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
