# Empty compiler generated dependencies file for sts_ds.
# This may be replaced when dependencies are built.
