file(REMOVE_RECURSE
  "libsts_ds.a"
)
