
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ds/builder.cpp" "src/ds/CMakeFiles/sts_ds.dir/builder.cpp.o" "gcc" "src/ds/CMakeFiles/sts_ds.dir/builder.cpp.o.d"
  "/root/repo/src/ds/executor.cpp" "src/ds/CMakeFiles/sts_ds.dir/executor.cpp.o" "gcc" "src/ds/CMakeFiles/sts_ds.dir/executor.cpp.o.d"
  "/root/repo/src/ds/program.cpp" "src/ds/CMakeFiles/sts_ds.dir/program.cpp.o" "gcc" "src/ds/CMakeFiles/sts_ds.dir/program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/sts_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/sts_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/sts_la.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/sts_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sts_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
