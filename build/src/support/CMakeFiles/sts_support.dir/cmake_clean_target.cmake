file(REMOVE_RECURSE
  "libsts_support.a"
)
