file(REMOVE_RECURSE
  "CMakeFiles/sts_support.dir/aligned.cpp.o"
  "CMakeFiles/sts_support.dir/aligned.cpp.o.d"
  "CMakeFiles/sts_support.dir/env.cpp.o"
  "CMakeFiles/sts_support.dir/env.cpp.o.d"
  "CMakeFiles/sts_support.dir/fault.cpp.o"
  "CMakeFiles/sts_support.dir/fault.cpp.o.d"
  "CMakeFiles/sts_support.dir/table.cpp.o"
  "CMakeFiles/sts_support.dir/table.cpp.o.d"
  "libsts_support.a"
  "libsts_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sts_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
