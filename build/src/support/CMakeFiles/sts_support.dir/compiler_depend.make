# Empty compiler generated dependencies file for sts_support.
# This may be replaced when dependencies are built.
