file(REMOVE_RECURSE
  "CMakeFiles/sts_la.dir/blas.cpp.o"
  "CMakeFiles/sts_la.dir/blas.cpp.o.d"
  "CMakeFiles/sts_la.dir/dense.cpp.o"
  "CMakeFiles/sts_la.dir/dense.cpp.o.d"
  "CMakeFiles/sts_la.dir/eig.cpp.o"
  "CMakeFiles/sts_la.dir/eig.cpp.o.d"
  "libsts_la.a"
  "libsts_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sts_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
