file(REMOVE_RECURSE
  "libsts_la.a"
)
