# Empty dependencies file for sts_la.
# This may be replaced when dependencies are built.
