file(REMOVE_RECURSE
  "libsts_bsp.a"
)
