file(REMOVE_RECURSE
  "CMakeFiles/sts_bsp.dir/kernels.cpp.o"
  "CMakeFiles/sts_bsp.dir/kernels.cpp.o.d"
  "libsts_bsp.a"
  "libsts_bsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sts_bsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
