# Empty compiler generated dependencies file for sts_bsp.
# This may be replaced when dependencies are built.
