file(REMOVE_RECURSE
  "CMakeFiles/sts_flux.dir/scheduler.cpp.o"
  "CMakeFiles/sts_flux.dir/scheduler.cpp.o.d"
  "libsts_flux.a"
  "libsts_flux.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sts_flux.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
