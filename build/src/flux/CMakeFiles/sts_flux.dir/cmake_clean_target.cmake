file(REMOVE_RECURSE
  "libsts_flux.a"
)
