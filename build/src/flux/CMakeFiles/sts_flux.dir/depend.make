# Empty dependencies file for sts_flux.
# This may be replaced when dependencies are built.
