# Empty compiler generated dependencies file for sts_tuning.
# This may be replaced when dependencies are built.
