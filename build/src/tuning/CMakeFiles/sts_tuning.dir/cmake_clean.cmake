file(REMOVE_RECURSE
  "CMakeFiles/sts_tuning.dir/block_select.cpp.o"
  "CMakeFiles/sts_tuning.dir/block_select.cpp.o.d"
  "CMakeFiles/sts_tuning.dir/sweep.cpp.o"
  "CMakeFiles/sts_tuning.dir/sweep.cpp.o.d"
  "libsts_tuning.a"
  "libsts_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sts_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
