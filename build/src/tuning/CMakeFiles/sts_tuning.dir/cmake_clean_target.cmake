file(REMOVE_RECURSE
  "libsts_tuning.a"
)
