file(REMOVE_RECURSE
  "libsts_perf.a"
)
