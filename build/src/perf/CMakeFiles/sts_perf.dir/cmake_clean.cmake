file(REMOVE_RECURSE
  "CMakeFiles/sts_perf.dir/profiles.cpp.o"
  "CMakeFiles/sts_perf.dir/profiles.cpp.o.d"
  "CMakeFiles/sts_perf.dir/trace.cpp.o"
  "CMakeFiles/sts_perf.dir/trace.cpp.o.d"
  "libsts_perf.a"
  "libsts_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sts_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
