
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/profiles.cpp" "src/perf/CMakeFiles/sts_perf.dir/profiles.cpp.o" "gcc" "src/perf/CMakeFiles/sts_perf.dir/profiles.cpp.o.d"
  "/root/repo/src/perf/trace.cpp" "src/perf/CMakeFiles/sts_perf.dir/trace.cpp.o" "gcc" "src/perf/CMakeFiles/sts_perf.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/sts_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sts_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
