# Empty dependencies file for sts_perf.
# This may be replaced when dependencies are built.
