file(REMOVE_RECURSE
  "CMakeFiles/sts_sim.dir/cachesim.cpp.o"
  "CMakeFiles/sts_sim.dir/cachesim.cpp.o.d"
  "CMakeFiles/sts_sim.dir/layout.cpp.o"
  "CMakeFiles/sts_sim.dir/layout.cpp.o.d"
  "CMakeFiles/sts_sim.dir/machine.cpp.o"
  "CMakeFiles/sts_sim.dir/machine.cpp.o.d"
  "CMakeFiles/sts_sim.dir/schedsim.cpp.o"
  "CMakeFiles/sts_sim.dir/schedsim.cpp.o.d"
  "CMakeFiles/sts_sim.dir/workloads.cpp.o"
  "CMakeFiles/sts_sim.dir/workloads.cpp.o.d"
  "libsts_sim.a"
  "libsts_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sts_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
