file(REMOVE_RECURSE
  "libsts_sim.a"
)
