# Empty compiler generated dependencies file for sts_sim.
# This may be replaced when dependencies are built.
