
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/coo.cpp" "src/sparse/CMakeFiles/sts_sparse.dir/coo.cpp.o" "gcc" "src/sparse/CMakeFiles/sts_sparse.dir/coo.cpp.o.d"
  "/root/repo/src/sparse/csb.cpp" "src/sparse/CMakeFiles/sts_sparse.dir/csb.cpp.o" "gcc" "src/sparse/CMakeFiles/sts_sparse.dir/csb.cpp.o.d"
  "/root/repo/src/sparse/csr.cpp" "src/sparse/CMakeFiles/sts_sparse.dir/csr.cpp.o" "gcc" "src/sparse/CMakeFiles/sts_sparse.dir/csr.cpp.o.d"
  "/root/repo/src/sparse/generators.cpp" "src/sparse/CMakeFiles/sts_sparse.dir/generators.cpp.o" "gcc" "src/sparse/CMakeFiles/sts_sparse.dir/generators.cpp.o.d"
  "/root/repo/src/sparse/mm_io.cpp" "src/sparse/CMakeFiles/sts_sparse.dir/mm_io.cpp.o" "gcc" "src/sparse/CMakeFiles/sts_sparse.dir/mm_io.cpp.o.d"
  "/root/repo/src/sparse/stats.cpp" "src/sparse/CMakeFiles/sts_sparse.dir/stats.cpp.o" "gcc" "src/sparse/CMakeFiles/sts_sparse.dir/stats.cpp.o.d"
  "/root/repo/src/sparse/suite.cpp" "src/sparse/CMakeFiles/sts_sparse.dir/suite.cpp.o" "gcc" "src/sparse/CMakeFiles/sts_sparse.dir/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/sts_la.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sts_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
