file(REMOVE_RECURSE
  "CMakeFiles/sts_sparse.dir/coo.cpp.o"
  "CMakeFiles/sts_sparse.dir/coo.cpp.o.d"
  "CMakeFiles/sts_sparse.dir/csb.cpp.o"
  "CMakeFiles/sts_sparse.dir/csb.cpp.o.d"
  "CMakeFiles/sts_sparse.dir/csr.cpp.o"
  "CMakeFiles/sts_sparse.dir/csr.cpp.o.d"
  "CMakeFiles/sts_sparse.dir/generators.cpp.o"
  "CMakeFiles/sts_sparse.dir/generators.cpp.o.d"
  "CMakeFiles/sts_sparse.dir/mm_io.cpp.o"
  "CMakeFiles/sts_sparse.dir/mm_io.cpp.o.d"
  "CMakeFiles/sts_sparse.dir/stats.cpp.o"
  "CMakeFiles/sts_sparse.dir/stats.cpp.o.d"
  "CMakeFiles/sts_sparse.dir/suite.cpp.o"
  "CMakeFiles/sts_sparse.dir/suite.cpp.o.d"
  "libsts_sparse.a"
  "libsts_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sts_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
