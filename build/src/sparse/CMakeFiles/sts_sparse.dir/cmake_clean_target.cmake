file(REMOVE_RECURSE
  "libsts_sparse.a"
)
