# Empty compiler generated dependencies file for sts_sparse.
# This may be replaced when dependencies are built.
