file(REMOVE_RECURSE
  "libsts_solvers.a"
)
