file(REMOVE_RECURSE
  "CMakeFiles/sts_solvers.dir/common.cpp.o"
  "CMakeFiles/sts_solvers.dir/common.cpp.o.d"
  "CMakeFiles/sts_solvers.dir/lanczos.cpp.o"
  "CMakeFiles/sts_solvers.dir/lanczos.cpp.o.d"
  "CMakeFiles/sts_solvers.dir/lobpcg.cpp.o"
  "CMakeFiles/sts_solvers.dir/lobpcg.cpp.o.d"
  "libsts_solvers.a"
  "libsts_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sts_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
