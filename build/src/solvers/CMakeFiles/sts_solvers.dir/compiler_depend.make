# Empty compiler generated dependencies file for sts_solvers.
# This may be replaced when dependencies are built.
