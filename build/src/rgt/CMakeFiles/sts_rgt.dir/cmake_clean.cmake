file(REMOVE_RECURSE
  "CMakeFiles/sts_rgt.dir/runtime.cpp.o"
  "CMakeFiles/sts_rgt.dir/runtime.cpp.o.d"
  "libsts_rgt.a"
  "libsts_rgt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sts_rgt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
