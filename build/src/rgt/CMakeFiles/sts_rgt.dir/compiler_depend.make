# Empty compiler generated dependencies file for sts_rgt.
# This may be replaced when dependencies are built.
