file(REMOVE_RECURSE
  "libsts_rgt.a"
)
