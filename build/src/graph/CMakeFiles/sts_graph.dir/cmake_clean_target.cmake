file(REMOVE_RECURSE
  "libsts_graph.a"
)
