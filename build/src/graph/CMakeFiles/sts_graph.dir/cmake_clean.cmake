file(REMOVE_RECURSE
  "CMakeFiles/sts_graph.dir/tdg.cpp.o"
  "CMakeFiles/sts_graph.dir/tdg.cpp.o.d"
  "libsts_graph.a"
  "libsts_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sts_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
