# Empty dependencies file for sts_graph.
# This may be replaced when dependencies are built.
