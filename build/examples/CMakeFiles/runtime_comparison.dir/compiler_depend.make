# Empty compiler generated dependencies file for runtime_comparison.
# This may be replaced when dependencies are built.
