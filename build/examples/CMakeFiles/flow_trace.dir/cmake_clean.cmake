file(REMOVE_RECURSE
  "CMakeFiles/flow_trace.dir/flow_trace.cpp.o"
  "CMakeFiles/flow_trace.dir/flow_trace.cpp.o.d"
  "flow_trace"
  "flow_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
