# Empty compiler generated dependencies file for flow_trace.
# This may be replaced when dependencies are built.
