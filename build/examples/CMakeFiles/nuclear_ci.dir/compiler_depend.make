# Empty compiler generated dependencies file for nuclear_ci.
# This may be replaced when dependencies are built.
