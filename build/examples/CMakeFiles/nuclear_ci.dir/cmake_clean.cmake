file(REMOVE_RECURSE
  "CMakeFiles/nuclear_ci.dir/nuclear_ci.cpp.o"
  "CMakeFiles/nuclear_ci.dir/nuclear_ci.cpp.o.d"
  "nuclear_ci"
  "nuclear_ci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nuclear_ci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
