# Empty compiler generated dependencies file for graph_spectra.
# This may be replaced when dependencies are built.
