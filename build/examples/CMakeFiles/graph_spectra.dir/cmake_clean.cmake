file(REMOVE_RECURSE
  "CMakeFiles/graph_spectra.dir/graph_spectra.cpp.o"
  "CMakeFiles/graph_spectra.dir/graph_spectra.cpp.o.d"
  "graph_spectra"
  "graph_spectra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_spectra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
