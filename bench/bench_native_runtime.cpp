// Ground truth on this host: real wall-clock of all five versions of both
// solvers on this machine's cores (complementing the machine-model
// simulations that regenerate the paper's figures).
#include "bench_common.hpp"

#include "solvers/lanczos.hpp"
#include "solvers/lobpcg.hpp"

#include <thread>

int main() {
  using namespace sts;
  const unsigned threads =
      std::max(1u, std::thread::hardware_concurrency());
  bench::print_header("Native wall-clock on this host (" +
                      std::to_string(threads) + " threads)");

  support::Table t({"matrix", "solver", "version", "time/iter (ms)",
                    "graph build (ms)"});
  for (const std::string& name : bench::matrix_names()) {
    const bench::BenchMatrix m = bench::load(name);
    for (solver::Version v : solver::kAllVersions) {
      const la::index_t block =
          tune::recommended_block_size(v, threads, m.coo.rows());
      sparse::Csb csb = sparse::Csb::from_coo(m.coo, block);

      solver::SolverOptions lo;
      lo.block_size = block;
      lo.threads = threads;
      const auto lr = solver::lanczos(m.csr, csb, 5, v, lo);
      t.row()
          .add(name)
          .add("lanczos")
          .add(solver::to_string(v))
          .add(lr.timing.per_iteration() * 1e3, 3)
          .add(lr.timing.graph_build_seconds * 1e3, 3);

      solver::LobpcgOptions bo;
      bo.block_size = block;
      bo.threads = threads;
      bo.nev = 8;
      bo.tolerance = 0.0; // fixed iteration count
      const auto br = solver::lobpcg(m.csr, csb, 3, v, bo);
      t.row()
          .add(name)
          .add("lobpcg")
          .add(solver::to_string(v))
          .add(br.timing.per_iteration() * 1e3, 3)
          .add(br.timing.graph_build_seconds * 1e3, 3);
    }
  }
  t.print(std::cout);
  t.write_csv_file("native_runtime.csv");
  return 0;
}
