// Table 1: the evaluation matrix suite. Prints the paper's reported sizes
// alongside the synthetic analogues generated at the current STS_SCALE.
#include "bench_common.hpp"

#include "sparse/stats.hpp"

int main() {
  using namespace sts;
  bench::print_header("Table 1: matrices used in the evaluation");

  support::Table t({"matrix", "class", "paper rows", "paper nnz",
                    "ours rows", "ours nnz", "avg deg", "deg cv"});
  for (const sparse::SuiteEntry& e : sparse::paper_suite()) {
    const sparse::Coo coo = e.make(bench::scale());
    const sparse::MatrixStats st =
        sparse::compute_stats(sparse::Csr::from_coo(coo));
    t.row()
        .add(e.name)
        .add(sparse::to_string(e.matrix_class))
        .add(static_cast<std::int64_t>(e.paper_rows))
        .add(static_cast<std::int64_t>(e.paper_nnz))
        .add(static_cast<std::int64_t>(st.rows))
        .add(static_cast<std::int64_t>(st.nnz))
        .add(st.avg_row_nnz, 1)
        .add(st.row_nnz_cv, 2);
  }
  t.print(std::cout);
  t.write_csv_file("table1_matrices.csv");
  std::cout << "\nCSV written to table1_matrices.csv\n";
  return 0;
}
