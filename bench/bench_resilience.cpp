// Resilience-path costs, exported to BENCH_resilience.json (see
// bench_json.hpp): what a periodic checkpoint write adds to a solve, what a
// durable journal append costs per job transition, and what recovering from
// a checkpoint saves over restarting a solve cold.
//
//   - BM_CkptWrite/n: atomic save (temp + fsync + rename) of a LOBPCG
//     block state at block width n — the per-period overhead a running
//     solve pays.
//   - BM_CkptLoad: read + CRC + shape validation of the same state.
//   - BM_JournalAppend: one framed, fsynced record (the per-transition
//     floor every submit/finish pays when STS_JOURNAL is set).
//   - BM_JournalReplay: startup scan of a journal holding 256 jobs.
//   - BM_ColdRestart vs BM_CheckpointRecovery: identical 32-iteration
//     Lanczos budget, solved from iteration 0 vs resumed from a
//     checkpoint at iteration 24 — the latency gap is what the checkpoint
//     subsystem buys a recovered stsd job.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdint>
#include <string>

#include "bench_json.hpp"
#include "solvers/checkpoint.hpp"
#include "solvers/lanczos.hpp"
#include "sparse/generators.hpp"
#include "support/error.hpp"
#include "svc/journal.hpp"

namespace {

using namespace sts;

std::string tmp_path(const char* tag) {
  return "/tmp/sts-bench-resilience-" + std::string(tag) + "-" +
         std::to_string(::getpid());
}

solver::ckpt::Checkpoint lobpcg_state(std::int64_t nev) {
  constexpr std::int64_t kRows = 4096;
  solver::ckpt::Checkpoint c;
  c.kind = solver::ckpt::Kind::kLobpcg;
  c.lobpcg.seed = 42;
  c.lobpcg.m = kRows;
  c.lobpcg.n = nev;
  c.lobpcg.iterations = 10;
  c.lobpcg.theta.assign(static_cast<std::size_t>(nev), 1.0);
  c.lobpcg.norms.assign(static_cast<std::size_t>(nev), 1e-3);
  const std::size_t block = static_cast<std::size_t>(kRows * nev);
  c.lobpcg.x.assign(block, 0.5);
  c.lobpcg.ax.assign(block, 1.5);
  c.lobpcg.p.assign(block, -0.5);
  c.lobpcg.ap.assign(block, -1.5);
  return c;
}

void BM_CkptWrite(benchmark::State& state) {
  const solver::ckpt::Checkpoint c = lobpcg_state(state.range(0));
  const std::string path = tmp_path("write");
  std::size_t bytes = 0;
  for (auto _ : state) {
    solver::ckpt::save(c, path);
    bytes += c.lobpcg.x.size() * 4 * sizeof(double);
  }
  state.counters["bytes_per_write"] =
      benchmark::Counter(static_cast<double>(c.lobpcg.x.size()) * 4 *
                         sizeof(double));
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
  ::unlink(path.c_str());
}
BENCHMARK(BM_CkptWrite)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_CkptLoad(benchmark::State& state) {
  const std::string path = tmp_path("load");
  solver::ckpt::save(lobpcg_state(state.range(0)), path);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver::ckpt::load(path));
  }
  ::unlink(path.c_str());
}
BENCHMARK(BM_CkptLoad)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_JournalAppend(benchmark::State& state) {
  const std::string path = tmp_path("append");
  ::unlink(path.c_str());
  svc::Journal journal;
  journal.open(path, 0);
  svc::wire::Json extra = svc::wire::Json::object();
  extra.set("spec", std::string(200, 's')); // a typical serialized RunSpec
  std::uint64_t id = 0;
  for (auto _ : state) {
    journal.append("SUBMITTED", ++id, extra);
  }
  journal.close();
  ::unlink(path.c_str());
}
BENCHMARK(BM_JournalAppend)->Unit(benchmark::kMicrosecond);

void BM_JournalReplay(benchmark::State& state) {
  const std::string path = tmp_path("replay");
  ::unlink(path.c_str());
  {
    svc::Journal journal;
    journal.open(path, 0);
    svc::wire::Json extra = svc::wire::Json::object();
    extra.set("spec", std::string(200, 's'));
    for (std::uint64_t id = 1; id <= 256; ++id) {
      journal.append("SUBMITTED", id, extra);
      journal.append("RUNNING", id);
      journal.append("DONE", id);
    }
  }
  for (auto _ : state) {
    const auto replay = svc::Journal::replay(path);
    if (replay.records.size() != 768 || replay.torn_tail) {
      throw support::Error("replay lost records");
    }
  }
  ::unlink(path.c_str());
}
BENCHMARK(BM_JournalReplay)->Unit(benchmark::kMillisecond);

struct SolveFixture {
  sparse::Coo coo;
  sparse::Csr csr;
  sparse::Csb csb;
  solver::SolverOptions options;

  SolveFixture()
      : coo(sparse::gen_fem3d(10, 10, 10, 1, 101)),
        csr(sparse::Csr::from_coo(coo)),
        csb(sparse::Csb::from_coo(coo, 64)) {
    options.block_size = 64;
    options.threads = 2;
  }

  static SolveFixture& instance() {
    static SolveFixture f;
    return f;
  }
};

constexpr int kBudget = 32;     // total iteration budget of the job
constexpr int kCkptIter = 24;   // where the interrupted run checkpointed

void BM_ColdRestart(benchmark::State& state) {
  SolveFixture& f = SolveFixture::instance();
  for (auto _ : state) {
    const auto r =
        solver::lanczos(f.csr, f.csb, kBudget, solver::Version::kLibCsb,
                        f.options);
    if (r.timing.iterations != kBudget) {
      throw support::Error("cold restart did not finish");
    }
  }
}
BENCHMARK(BM_ColdRestart)->Unit(benchmark::kMillisecond);

void BM_CheckpointRecovery(benchmark::State& state) {
  SolveFixture& f = SolveFixture::instance();
  const std::string path = tmp_path("recovery");
  // The interrupted run: same budget, checkpointed at kCkptIter.
  solver::SolverOptions interrupted = f.options;
  interrupted.ckpt_path = path;
  interrupted.ckpt_every = kCkptIter;
  (void)solver::lanczos(f.csr, f.csb, kBudget, solver::Version::kLibCsb,
                        interrupted);
  for (auto _ : state) {
    // Recovery pays the load + the remaining iterations only.
    const solver::ckpt::Checkpoint c = solver::ckpt::load(path);
    solver::SolverOptions resume = f.options;
    resume.restore = &c;
    const auto r = solver::lanczos(f.csr, f.csb, kBudget,
                                   solver::Version::kLibCsb, resume);
    if (r.timing.iterations != kBudget - kCkptIter) {
      throw support::Error("recovery resumed from the wrong iteration");
    }
  }
  ::unlink(path.c_str());
}
BENCHMARK(BM_CheckpointRecovery)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
  return sts::benchjson::run(argc, argv, "BENCH_resilience.json");
}
