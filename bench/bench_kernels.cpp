// Microbenchmarks (google-benchmark) of the kernel bodies the solvers are
// built from: dense gemm / gemm_tn on block shapes, CSR vs CSB SpMV/SpMM,
// and CSB construction cost.
#include <benchmark/benchmark.h>

#include "bsp/kernels.hpp"
#include "la/blas.hpp"
#include "sparse/generators.hpp"

namespace {

using namespace sts;

void BM_GemmTallSkinny(benchmark::State& state) {
  const la::index_t rows = state.range(0);
  const la::index_t n = 8;
  la::DenseMatrix x(rows, n);
  la::DenseMatrix z(n, n);
  la::DenseMatrix y(rows, n);
  support::Xoshiro256 rng(1);
  x.fill_random(rng);
  z.fill_random(rng);
  for (auto _ : state) {
    la::gemm(1.0, x.view(), z.view(), 0.0, y.view());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * rows * n * n * 2);
}
BENCHMARK(BM_GemmTallSkinny)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_GemmTn(benchmark::State& state) {
  const la::index_t rows = state.range(0);
  const la::index_t n = 8;
  la::DenseMatrix x(rows, n);
  la::DenseMatrix y(rows, n);
  la::DenseMatrix p(n, n);
  support::Xoshiro256 rng(2);
  x.fill_random(rng);
  y.fill_random(rng);
  for (auto _ : state) {
    la::gemm_tn(1.0, x.view(), y.view(), 0.0, p.view());
    benchmark::DoNotOptimize(p.data());
  }
  state.SetItemsProcessed(state.iterations() * rows * n * n * 2);
}
BENCHMARK(BM_GemmTn)->Arg(1024)->Arg(4096)->Arg(16384);

struct SpmvFixture {
  sparse::Csr csr;
  sparse::Csb csb;
  std::vector<double> x;
  std::vector<double> y;

  explicit SpmvFixture(la::index_t side, la::index_t block)
      : csr(sparse::Csr::from_coo(sparse::gen_fem3d(side, side, side, 1, 3))),
        csb(sparse::Csb::from_coo(sparse::gen_fem3d(side, side, side, 1, 3),
                                  block)),
        x(static_cast<std::size_t>(csr.rows()), 1.0),
        y(static_cast<std::size_t>(csr.rows()), 0.0) {}
};

void BM_SpmvCsr(benchmark::State& state) {
  SpmvFixture f(state.range(0), 512);
  for (auto _ : state) {
    bsp::spmv(f.csr, f.x, f.y);
    benchmark::DoNotOptimize(f.y.data());
  }
  state.SetItemsProcessed(state.iterations() * f.csr.nnz() * 2);
}
BENCHMARK(BM_SpmvCsr)->Arg(16)->Arg(24);

void BM_SpmvCsb(benchmark::State& state) {
  SpmvFixture f(state.range(0), 512);
  for (auto _ : state) {
    bsp::spmv(f.csb, f.x, f.y);
    benchmark::DoNotOptimize(f.y.data());
  }
  state.SetItemsProcessed(state.iterations() * f.csb.nnz() * 2);
}
BENCHMARK(BM_SpmvCsb)->Arg(16)->Arg(24);

void BM_SpmmCsb(benchmark::State& state) {
  const la::index_t side = state.range(0);
  sparse::Coo coo = sparse::gen_fem3d(side, side, side, 1, 3);
  sparse::Csb csb = sparse::Csb::from_coo(coo, 512);
  la::DenseMatrix x(csb.rows(), 8);
  la::DenseMatrix y(csb.rows(), 8);
  support::Xoshiro256 rng(4);
  x.fill_random(rng);
  for (auto _ : state) {
    bsp::spmm(csb, x.view(), y.view());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * csb.nnz() * 16);
}
BENCHMARK(BM_SpmmCsb)->Arg(16)->Arg(24);

void BM_CsbConstruction(benchmark::State& state) {
  sparse::Coo coo = sparse::gen_fem3d(20, 20, 20, 1, 5);
  for (auto _ : state) {
    sparse::Csb csb = sparse::Csb::from_coo(coo, state.range(0));
    benchmark::DoNotOptimize(csb.nnz());
  }
  state.SetItemsProcessed(state.iterations() * coo.nnz());
}
BENCHMARK(BM_CsbConstruction)->Arg(128)->Arg(512)->Arg(2048);

} // namespace

BENCHMARK_MAIN();
