// Microbenchmarks (google-benchmark) of the kernel bodies the solvers are
// built from: dense gemm / gemm_tn on block shapes, CSR vs CSB SpMV/SpMM
// (including the packed row-segmented CSB layout against an AoS replica of
// the former layout), and CSB construction cost. Results are exported to
// BENCH_kernels.json (see bench_json.hpp).
#include <benchmark/benchmark.h>

#include "bench_json.hpp"
#include "bsp/kernels.hpp"
#include "la/blas.hpp"
#include "sparse/generators.hpp"

namespace {

using namespace sts;

void BM_GemmTallSkinny(benchmark::State& state) {
  const la::index_t rows = state.range(0);
  const la::index_t n = 8;
  la::DenseMatrix x(rows, n);
  la::DenseMatrix z(n, n);
  la::DenseMatrix y(rows, n);
  support::Xoshiro256 rng(1);
  x.fill_random(rng);
  z.fill_random(rng);
  for (auto _ : state) {
    la::gemm(1.0, x.view(), z.view(), 0.0, y.view());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * rows * n * n * 2);
}
BENCHMARK(BM_GemmTallSkinny)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_GemmTn(benchmark::State& state) {
  const la::index_t rows = state.range(0);
  const la::index_t n = 8;
  la::DenseMatrix x(rows, n);
  la::DenseMatrix y(rows, n);
  la::DenseMatrix p(n, n);
  support::Xoshiro256 rng(2);
  x.fill_random(rng);
  y.fill_random(rng);
  for (auto _ : state) {
    la::gemm_tn(1.0, x.view(), y.view(), 0.0, p.view());
    benchmark::DoNotOptimize(p.data());
  }
  state.SetItemsProcessed(state.iterations() * rows * n * n * 2);
}
BENCHMARK(BM_GemmTn)->Arg(1024)->Arg(4096)->Arg(16384);

struct SpmvFixture {
  sparse::Csr csr;
  sparse::Csb csb;
  std::vector<double> x;
  std::vector<double> y;

  explicit SpmvFixture(la::index_t side, la::index_t block)
      : csr(sparse::Csr::from_coo(sparse::gen_fem3d(side, side, side, 1, 3))),
        csb(sparse::Csb::from_coo(sparse::gen_fem3d(side, side, side, 1, 3),
                                  block)),
        x(static_cast<std::size_t>(csr.rows()), 1.0),
        y(static_cast<std::size_t>(csr.rows()), 0.0) {}
};

void BM_SpmvCsr(benchmark::State& state) {
  SpmvFixture f(state.range(0), 512);
  for (auto _ : state) {
    bsp::spmv(f.csr, f.x, f.y);
    benchmark::DoNotOptimize(f.y.data());
  }
  state.SetItemsProcessed(state.iterations() * f.csr.nnz() * 2);
}
BENCHMARK(BM_SpmvCsr)->Arg(16)->Arg(24);

void BM_SpmvCsb(benchmark::State& state) {
  SpmvFixture f(state.range(0), 512);
  for (auto _ : state) {
    bsp::spmv(f.csb, f.x, f.y);
    benchmark::DoNotOptimize(f.y.data());
  }
  state.SetItemsProcessed(state.iterations() * f.csb.nnz() * 2);
}
BENCHMARK(BM_SpmvCsb)->Arg(16)->Arg(24);

void BM_SpmmCsb(benchmark::State& state) {
  const la::index_t side = state.range(0);
  sparse::Coo coo = sparse::gen_fem3d(side, side, side, 1, 3);
  sparse::Csb csb = sparse::Csb::from_coo(coo, 512);
  la::DenseMatrix x(csb.rows(), 8);
  la::DenseMatrix y(csb.rows(), 8);
  support::Xoshiro256 rng(4);
  x.fill_random(rng);
  for (auto _ : state) {
    bsp::spmm(csb, x.view(), y.view());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * csb.nnz() * 16);
}
BENCHMARK(BM_SpmmCsb)->Arg(16)->Arg(24);

// Serial per-block SpMM on the packed row-segmented layout, one kernel call
// per non-empty block -- the task-body cost the runtimes schedule, without
// OpenMP in the measurement. Second arg is the block-vector width n.
void BM_SpmmCsbPacked(benchmark::State& state) {
  const la::index_t side = state.range(0);
  const la::index_t n = state.range(1);
  sparse::Coo coo = sparse::gen_fem3d(side, side, side, 1, 3);
  sparse::Csb csb = sparse::Csb::from_coo(coo, 512);
  la::DenseMatrix x(csb.rows(), n);
  la::DenseMatrix y(csb.rows(), n);
  support::Xoshiro256 rng(4);
  x.fill_random(rng);
  for (auto _ : state) {
    for (la::index_t bi = 0; bi < csb.block_rows(); ++bi) {
      sparse::csb_block_zero(csb, bi, y.view());
      for (la::index_t bj = 0; bj < csb.block_cols(); ++bj) {
        if (!csb.block_empty(bi, bj)) {
          sparse::csb_block_spmm(csb, bi, bj, x.view(), y.view());
        }
      }
    }
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * csb.nnz() * 2 * n);
  state.counters["bytes_per_nnz"] = csb.bytes_per_nnz();
}
BENCHMARK(BM_SpmmCsbPacked)
    ->Args({16, 4})
    ->Args({16, 8})
    ->Args({16, 16})
    ->Args({16, 5})
    ->Args({24, 8});

// AoS baseline: replica of the former block layout ({int32 row, int32 col,
// double value} entries, per-entry strided y update) so BENCH_kernels.json
// records the packed-layout speedup and bytes/nnz delta on the same build.
struct AosEntry {
  std::int32_t row;
  std::int32_t col;
  double value;
};

struct AosCsb {
  la::index_t block = 0;
  la::index_t nb_rows = 0;
  la::index_t nb_cols = 0;
  std::vector<std::int64_t> blkptr;
  std::vector<AosEntry> entries;

  explicit AosCsb(const sparse::Csb& csb)
      : block(csb.block_size()), nb_rows(csb.block_rows()),
        nb_cols(csb.block_cols()) {
    blkptr.assign(csb.blkptr().begin(), csb.blkptr().end());
    entries.resize(static_cast<std::size_t>(csb.nnz()));
    for (la::index_t bi = 0; bi < nb_rows; ++bi) {
      for (la::index_t bj = 0; bj < nb_cols; ++bj) {
        const sparse::Csb::BlockView v = csb.block_view(bi, bj);
        for (const sparse::Csb::RowSegment& seg : v.segments) {
          for (std::int64_t t = seg.begin; t < seg.begin + seg.count; ++t) {
            entries[static_cast<std::size_t>(t)] = {
                seg.row, static_cast<std::int32_t>(v.col(t)),
                csb.values()[static_cast<std::size_t>(t)]};
          }
        }
      }
    }
  }
};

void BM_SpmmCsbAos(benchmark::State& state) {
  const la::index_t side = state.range(0);
  const la::index_t n = state.range(1);
  sparse::Coo coo = sparse::gen_fem3d(side, side, side, 1, 3);
  sparse::Csb csb = sparse::Csb::from_coo(coo, 512);
  const AosCsb aos(csb);
  la::DenseMatrix x(csb.rows(), n);
  la::DenseMatrix y(csb.rows(), n);
  support::Xoshiro256 rng(4);
  x.fill_random(rng);
  for (auto _ : state) {
    for (la::index_t bi = 0; bi < aos.nb_rows; ++bi) {
      sparse::csb_block_zero(csb, bi, y.view());
      const la::index_t r0 = bi * aos.block;
      for (la::index_t bj = 0; bj < aos.nb_cols; ++bj) {
        const la::index_t c0 = bj * aos.block;
        const std::size_t k =
            static_cast<std::size_t>(bi) * static_cast<std::size_t>(aos.nb_cols) +
            static_cast<std::size_t>(bj);
        for (std::int64_t t = aos.blkptr[k]; t < aos.blkptr[k + 1]; ++t) {
          const AosEntry& e = aos.entries[static_cast<std::size_t>(t)];
          double* yr = y.view().row(r0 + e.row);
          const double* xr = x.view().row(c0 + e.col);
          for (la::index_t j = 0; j < n; ++j) yr[j] += e.value * xr[j];
        }
      }
    }
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * csb.nnz() * 2 * n);
  state.counters["bytes_per_nnz"] =
      static_cast<double>(sizeof(AosEntry));
}
BENCHMARK(BM_SpmmCsbAos)->Args({16, 8})->Args({24, 8});

void BM_CsbConstruction(benchmark::State& state) {
  sparse::Coo coo = sparse::gen_fem3d(20, 20, 20, 1, 5);
  for (auto _ : state) {
    sparse::Csb csb = sparse::Csb::from_coo(coo, state.range(0));
    benchmark::DoNotOptimize(csb.nnz());
  }
  state.SetItemsProcessed(state.iterations() * coo.nnz());
}
BENCHMARK(BM_CsbConstruction)->Arg(128)->Arg(512)->Arg(2048);

} // namespace

int main(int argc, char** argv) {
  return sts::benchjson::run(argc, argv, "BENCH_kernels.json");
}
