// Dispatcher scheduling quality (DESIGN.md §15): one mixed multi-tenant
// workload — 28 batch jobs across four tenants, then 4 interactive jobs
// arriving behind that backlog — run twice against an in-process Service:
//
//   fifo/1-slot : the PR 4 daemon (single lane, single executor)
//   fair/K-slot : priority classes + DRR fairness over K concurrent slots
//
// Reported per case: workload makespan and the interactive jobs' p99
// turnaround (submit -> terminal). The headline claim: priority + WFQ buys
// an order of magnitude on interactive latency at equal makespan, because
// interactive jobs stop queueing behind the batch backlog. Exported to
// BENCH_dispatch.json (see bench_json.hpp).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "support/error.hpp"
#include "svc/service.hpp"

namespace {

using namespace sts;

constexpr int kBatchJobs = 28;
constexpr int kInteractiveJobs = 4;

svc::RunSpec batch_spec(int tenant) {
  svc::RunSpec spec;
  spec.suite_name = "inline_1";
  spec.scale = 0.03;
  spec.solver = svc::SolverKind::kLanczos;
  spec.version = solver::Version::kLibCsb;
  spec.iterations = 60;
  spec.nev = 4;
  spec.block = 64;
  spec.threads = 1;
  spec.priority = "batch";
  // Tenants with unequal weights so the fair case exercises DRR, not just
  // the priority level.
  spec.weight = 1u << (tenant % 3); // 1, 2, 4
  spec.client_key = "tenant-" + std::to_string(tenant) + "/job";
  return spec;
}

svc::RunSpec interactive_spec() {
  svc::RunSpec spec = batch_spec(0);
  // Same matrix (plan-cache hit) but a short solve: interactive requests are
  // latency-bound queries, not throughput work.
  spec.iterations = 5;
  spec.priority = "interactive";
  spec.weight = 1;
  spec.client_key = "ui/query";
  return spec;
}

struct WorkloadResult {
  double makespan_s = 0.0;
  double interactive_p99_s = 0.0;
  double interactive_mean_s = 0.0;
};

WorkloadResult run_workload(svc::dispatch::Policy policy, unsigned slots) {
  svc::Service::Config config;
  config.queue_capacity = kBatchJobs + kInteractiveJobs;
  config.threads = 1; // single-worker pools: scheduling, not solve, varies
  config.slots = slots;
  config.policy = policy;
  svc::Service service(config);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::uint64_t> ids;
  std::vector<std::uint64_t> interactive_ids;
  for (int i = 0; i < kBatchJobs; ++i) {
    svc::RunSpec spec = batch_spec(i % 4);
    spec.client_key += "-" + std::to_string(i); // unique: no dedup
    const auto out = service.submit(spec);
    if (!out.accepted) throw support::Error("rejected: " + out.error);
    ids.push_back(out.id);
  }
  // The pain case: interactive work arrives after the batch backlog.
  for (int i = 0; i < kInteractiveJobs; ++i) {
    svc::RunSpec spec = interactive_spec();
    spec.client_key += "-" + std::to_string(i);
    const auto out = service.submit(spec);
    if (!out.accepted) throw support::Error("rejected: " + out.error);
    ids.push_back(out.id);
    interactive_ids.push_back(out.id);
  }

  WorkloadResult res;
  std::vector<double> latencies;
  for (const std::uint64_t id : ids) {
    const svc::JobInfo info =
        service.wait(id, std::chrono::minutes(10));
    if (info.state != svc::JobState::kDone) {
      throw support::Error("job not DONE: " + info.error);
    }
    if (std::find(interactive_ids.begin(), interactive_ids.end(), id) !=
        interactive_ids.end()) {
      latencies.push_back(info.queue_seconds + info.run_seconds);
    }
  }
  res.makespan_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::sort(latencies.begin(), latencies.end());
  const std::size_t p99 =
      std::min(latencies.size() - 1,
               static_cast<std::size_t>(
                   static_cast<double>(latencies.size()) * 0.99));
  res.interactive_p99_s = latencies[p99];
  for (const double l : latencies) res.interactive_mean_s += l;
  res.interactive_mean_s /= static_cast<double>(latencies.size());
  return res;
}

void report(benchmark::State& state, const WorkloadResult& res) {
  state.counters["makespan_s"] = res.makespan_s;
  state.counters["interactive_p99_ms"] = res.interactive_p99_s * 1e3;
  state.counters["interactive_mean_ms"] = res.interactive_mean_s * 1e3;
  state.counters["jobs"] = kBatchJobs + kInteractiveJobs;
}

void BM_DispatchFifoOneSlot(benchmark::State& state) {
  WorkloadResult res;
  for (auto _ : state) {
    res = run_workload(svc::dispatch::Policy::kFifo, 1);
  }
  report(state, res);
}
BENCHMARK(BM_DispatchFifoOneSlot)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

void BM_DispatchFairFourSlots(benchmark::State& state) {
  WorkloadResult res;
  for (auto _ : state) {
    res = run_workload(svc::dispatch::Policy::kFair, 4);
  }
  report(state, res);
}
BENCHMARK(BM_DispatchFairFourSlots)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

} // namespace

int main(int argc, char** argv) {
  return sts::benchjson::run(argc, argv, "BENCH_dispatch.json");
}
