// Fig. 7: dependency-based vs reduction-based SpMM output updates for
// Regent LOBPCG on the Broadwell model. The paper finds the reduce-based
// approach "extremely poor" on large matrices: every core keeps a private
// copy of the whole output block vector, paying allocation, zeroing and
// reduction traffic.
#include "bench_common.hpp"

int main() {
  using namespace sts;
  bench::print_header(
      "Fig 7: Regent LOBPCG on Broadwell, dependency- vs reduction-based "
      "SpMM");

  const sim::MachineModel machine = sim::MachineModel::broadwell();
  support::Table t({"matrix", "reduce-based (s)", "dependency-based (s)",
                    "dep advantage", "red tasks", "dep tasks"});
  for (const std::string& name : bench::matrix_names()) {
    const bench::BenchMatrix m = bench::load(name);
    const la::index_t block =
        bench::pick_block(solver::Version::kRgt, machine, m.coo.rows());
    sparse::Csb csb = sparse::Csb::from_coo(m.coo, block);

    const sim::Workload dep = sim::build_lobpcg_workload(
        m.csr, csb, 8, {.dependency_based_spmm = true});
    // One partial output buffer per core, as the paper describes.
    const sim::Workload red = sim::build_lobpcg_workload(
        m.csr, csb, 8,
        {.dependency_based_spmm = false,
         .spmm_buffers = static_cast<std::int32_t>(machine.cores)});

    sim::SimOptions o;
    const sim::SimResult r_dep =
        bench::simulate_version(solver::Version::kRgt, dep, machine, o);
    const sim::SimResult r_red =
        bench::simulate_version(solver::Version::kRgt, red, machine, o);

    t.row()
        .add(name)
        .add(r_red.makespan_seconds, 5)
        .add(r_dep.makespan_seconds, 5)
        .add(r_red.makespan_seconds / r_dep.makespan_seconds, 2)
        .add(static_cast<std::int64_t>(red.task_graph.task_count()))
        .add(static_cast<std::int64_t>(dep.task_graph.task_count()));
  }
  t.print(std::cout);
  t.write_csv_file("fig7_reduction.csv");
  return 0;
}
