// Machine-readable benchmark export.
//
// google-benchmark's own --benchmark_out JSON is verbose and
// version-dependent; CI and the regression scripts want a stable, minimal
// schema. This header provides a drop-in main() body: console output stays
// identical to BENCHMARK_MAIN(), and every completed run is additionally
// appended to a JSON file:
//
//   { "benchmarks": [
//       { "op": "BM_SpmmCsb/16/8", "iterations": 732,
//         "ns_per_op": 389155.2, "counters": { "bytes_per_nnz": 10.17,
//         "items_per_second": 4.05e9 } }, ... ] }
//
// The output path defaults to the per-binary name passed to run() (written
// into the working directory) and can be overridden with the STS_BENCH_JSON
// environment variable.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace sts::benchjson {

/// Console reporter that tees every run into a flat JSON file.
class JsonTeeReporter : public benchmark::ConsoleReporter {
public:
  explicit JsonTeeReporter(std::string path) : path_(std::move(path)) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& r : runs) {
      if (r.error_occurred) continue;
      Row row;
      row.op = r.benchmark_name();
      row.iterations = r.iterations;
      row.ns_per_op =
          r.iterations > 0
              ? r.real_accumulated_time / static_cast<double>(r.iterations) *
                    1e9
              : 0.0;
      for (const auto& [name, counter] : r.counters) {
        row.counters.emplace_back(name, counter.value);
      }
      rows_.push_back(std::move(row));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  void Finalize() override {
    write_json();
    benchmark::ConsoleReporter::Finalize();
  }

private:
  struct Row {
    std::string op;
    std::int64_t iterations = 0;
    double ns_per_op = 0.0;
    std::vector<std::pair<std::string, double>> counters;
  };

  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  void write_json() const {
    std::ostringstream os;
    os.precision(12);
    os << "{ \"benchmarks\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      os << "  { \"op\": \"" << escape(r.op) << "\", \"iterations\": "
         << r.iterations << ", \"ns_per_op\": " << r.ns_per_op
         << ", \"counters\": {";
      for (std::size_t c = 0; c < r.counters.size(); ++c) {
        if (c > 0) os << ",";
        os << " \"" << escape(r.counters[c].first)
           << "\": " << r.counters[c].second;
      }
      os << " } }" << (i + 1 < rows_.size() ? "," : "") << "\n";
    }
    os << "] }\n";
    std::ofstream f(path_);
    f << os.str();
  }

  std::string path_;
  std::vector<Row> rows_;
};

/// Drop-in replacement for BENCHMARK_MAIN()'s body. `default_json` names
/// the export file (overridden by $STS_BENCH_JSON).
inline int run(int argc, char** argv, const char* default_json) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const char* env = std::getenv("STS_BENCH_JSON");
  JsonTeeReporter reporter(env != nullptr ? env : default_json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}

} // namespace sts::benchjson
