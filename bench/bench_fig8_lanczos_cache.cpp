// Fig. 8: L1 and L2 misses of the five Lanczos versions on the EPYC model,
// normalized to libcsr. The paper's observation: no consistent L1 gain for
// any framework; L2 gains trace back to the CSB storage format (libcsb
// shows them too).
#include "bench_common.hpp"

int main() {
  using namespace sts;
  bench::print_header("Fig 8: Lanczos cache misses on EPYC (normalized to "
                      "libcsr; lower is better)");

  const sim::MachineModel machine = sim::MachineModel::epyc7h12();
  support::Table t({"matrix", "level", "libcsr", "libcsb", "deepsparse",
                    "hpx-flux", "regent-rgt"});
  for (const std::string& name : bench::matrix_names()) {
    const bench::BenchMatrix m = bench::load(name);
    double base_l1 = 0.0;
    double base_l2 = 0.0;
    std::vector<double> l1;
    std::vector<double> l2;
    for (solver::Version v : solver::kAllVersions) {
      const la::index_t block =
          bench::pick_block(v, machine, m.coo.rows());
      const sim::Workload wl =
          bench::build_workload(bench::Solver::kLanczos, m, block);
      sim::SimOptions o;
      const sim::SimResult r = bench::simulate_version(v, wl, machine, o);
      if (v == solver::Version::kLibCsr) {
        base_l1 = static_cast<double>(r.misses.l1_misses);
        base_l2 = static_cast<double>(r.misses.l2_misses);
      }
      l1.push_back(static_cast<double>(r.misses.l1_misses));
      l2.push_back(static_cast<double>(r.misses.l2_misses));
    }
    auto add_row = [&](const char* level, const std::vector<double>& vals,
                       double base) {
      t.row().add(name).add(level);
      for (double v : vals) t.add(base > 0 ? v / base : 0.0, 3);
    };
    add_row("L1", l1, base_l1);
    add_row("L2", l2, base_l2);
  }
  t.print(std::cout);
  t.write_csv_file("fig8_lanczos_cache.csv");
  return 0;
}
