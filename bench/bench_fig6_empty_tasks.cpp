// Fig. 6: effect of skipping empty CSB blocks on HPX (flux) Lanczos,
// Broadwell model. The paper reports ~30% average improvement.
#include "bench_common.hpp"

#include "ds/program.hpp"

int main() {
  using namespace sts;
  bench::print_header(
      "Fig 6: HPX Lanczos on Broadwell w.r.t. skipping empty tasks");

  const sim::MachineModel machine = sim::MachineModel::broadwell();
  support::Table t({"matrix", "keep empty (s)", "skip empty (s)", "speedup",
                    "empty tasks"});
  for (const std::string& name : bench::matrix_names()) {
    const bench::BenchMatrix m = bench::load(name);
    const la::index_t block =
        bench::pick_block(solver::Version::kFlux, machine, m.coo.rows());
    sparse::Csb csb = sparse::Csb::from_coo(m.coo, block);

    // The skip variant is the standard workload; the no-skip variant adds
    // one overhead-only task per empty block to the SpMV phase (an empty
    // CSB block contributes no flops or data, just scheduling cost).
    sim::Workload wl = sim::build_lanczos_workload(m.csr, csb, 21);
    const la::index_t nb = csb.block_rows();
    const la::index_t empty_blocks = nb * nb - csb.nonempty_blocks();

    sim::SimOptions o;
    const sim::SimResult skip_result =
        bench::simulate_version(solver::Version::kFlux, wl, machine, o);

    // No-skip variant: clone the graph and append one overhead-only task
    // per empty block into the SpMV phase.
    graph::Tdg noskip = wl.task_graph; // copy
    std::int32_t spmv_phase = 0;
    for (std::size_t i = 0; i < noskip.task_count(); ++i) {
      if (noskip.task(static_cast<graph::TaskId>(i)).kind ==
          graph::KernelKind::kSpMV) {
        spmv_phase = noskip.task(static_cast<graph::TaskId>(i)).phase;
        break;
      }
    }
    for (la::index_t e = 0; e < empty_blocks; ++e) {
      graph::Task t;
      t.kind = graph::KernelKind::kSpMV;
      t.phase = spmv_phase;
      t.flops = 0.0; // pure scheduling overhead
      noskip.add_task(std::move(t));
    }
    const sim::SimResult keep_result = sim::simulate_task_graph(
        noskip, *wl.layout, machine,
        [&] {
          sim::SimOptions so = o;
          so.policy = sim::Policy::kFluxWs;
          return so;
        }());

    t.row()
        .add(name)
        .add(keep_result.makespan_seconds, 5)
        .add(skip_result.makespan_seconds, 5)
        .add(keep_result.makespan_seconds / skip_result.makespan_seconds, 2)
        .add(static_cast<std::int64_t>(empty_blocks));
  }
  t.print(std::cout);
  t.write_csv_file("fig6_empty_tasks.csv");
  return 0;
}
