// Fig. 12: LOBPCG speedup over libcsr on Broadwell (top) and EPYC (bottom).
// Paper: Broadwell 1.8-3.0x (DS) / 1.5-4.4x (HPX) / 0.8-1.9x (Regent);
// EPYC 1.2-5.5x / 1.7-7.5x / 0.8-2.3x, Regent losing on small matrices.
#include "bench_common.hpp"

#include <cmath>

namespace {

void run_machine(const sts::sim::MachineModel& machine) {
  using namespace sts;
  support::Table t({"matrix", "libcsr", "libcsb", "deepsparse", "hpx-flux",
                    "regent-rgt"});
  std::vector<double> geo(5, 0.0);
  int count = 0;
  for (const std::string& name : bench::matrix_names()) {
    const bench::BenchMatrix m = bench::load(name);
    double base = 0.0;
    t.row().add(name);
    int col = 0;
    for (solver::Version v : solver::kAllVersions) {
      const la::index_t block = bench::pick_block(v, machine, m.coo.rows());
      const sim::Workload wl =
          bench::build_workload(bench::Solver::kLobpcg, m, block);
      sim::SimOptions o;
      const sim::SimResult r = bench::simulate_version(v, wl, machine, o);
      if (v == solver::Version::kLibCsr) base = r.makespan_seconds;
      const double speedup = base / r.makespan_seconds;
      t.add(speedup, 2);
      geo[static_cast<std::size_t>(col++)] += std::log(speedup);
    }
    ++count;
  }
  t.row().add("(geomean)");
  for (double g : geo) t.add(std::exp(g / std::max(1, count)), 2);
  t.print(std::cout);
  t.write_csv_file("fig12_lobpcg_speedup_" + machine.name + ".csv");
}

} // namespace

int main() {
  using namespace sts;
  bench::print_header("Fig 12: LOBPCG speedup over libcsr");
  std::cout << "--- Broadwell (2 x 14 cores) ---\n";
  run_machine(sim::MachineModel::broadwell());
  std::cout << "\n--- EPYC (2 x 64 cores) ---\n";
  run_machine(sim::MachineModel::epyc7h12());
  return 0;
}
