// Service-layer latency: full submit -> result round trips through the
// real wire protocol (Unix socket, framed JSON, Client/Server) against an
// in-process stsd service, exported to BENCH_svc.json (see bench_json.hpp).
//
// Two cases bracket what the plan cache buys:
//   - Cold: every submission uses a fresh cache key, so the daemon parses
//     the matrix and builds the CSB partition inside the request.
//   - Warm: repeat submissions of one spec; after the first, the plan is
//     served from the cache and the request pays only queue + solve.
#include <benchmark/benchmark.h>

#include <atomic>
#include <string>

#include "bench_json.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"

namespace {

using namespace sts;

svc::RunSpec bench_spec() {
  svc::RunSpec spec;
  spec.suite_name = "inline_1";
  spec.scale = 0.2; // big enough that plan construction dominates cold
  spec.solver = svc::SolverKind::kLanczos;
  spec.version = solver::Version::kLibCsb;
  spec.iterations = 1; // minimal solve: latency is dominated by plan setup
  spec.block = 65;     // odd: never collides with the cold key space
  spec.threads = 2;
  return spec;
}

/// One daemon shared by every benchmark in the process.
struct Daemon {
  svc::Service service;
  svc::Server server;

  Daemon()
      : service(daemon_config()),
        server(service,
               "/tmp/sts-bench-svc-" + std::to_string(::getpid()) + ".sock") {
    server.start();
  }

  static svc::Service::Config daemon_config() {
    svc::Service::Config config;
    config.threads = 2;
    return config;
  }

  static Daemon& instance() {
    static Daemon daemon;
    return daemon;
  }
};

enum class Expect { kMiss, kHit, kAny };

void submit_and_wait(svc::Client& client, const svc::RunSpec& spec,
                     Expect expect) {
  const svc::SubmitOutcome out = client.submit(spec);
  if (!out.accepted) throw support::Error("rejected: " + out.error);
  const svc::wire::Json job = client.result(out.id);
  if (job.string_or("state", "") != "DONE") {
    throw support::Error("job not DONE: " + job.dump());
  }
  const bool hit = job.bool_or("cache_hit", false);
  if (expect == Expect::kMiss && hit) {
    throw support::Error("expected a cache miss");
  }
  if (expect == Expect::kHit && !hit) {
    throw support::Error("expected a cache hit");
  }
}

void BM_SubmitResultCold(benchmark::State& state) {
  Daemon& daemon = Daemon::instance();
  svc::Client client(daemon.server.socket_path());
  static std::atomic<int> unique{0};
  for (auto _ : state) {
    // A never-repeated even block size gives each submission a fresh cache
    // key over the same matrix source: every request rebuilds its plan
    // (the warm benchmark keys on an odd block, so the spaces are disjoint).
    svc::RunSpec spec = bench_spec();
    spec.block = 100 + 2 * unique.fetch_add(1);
    submit_and_wait(client, spec, Expect::kMiss);
  }
}
BENCHMARK(BM_SubmitResultCold)->Unit(benchmark::kMillisecond);

void BM_SubmitResultWarm(benchmark::State& state) {
  Daemon& daemon = Daemon::instance();
  svc::Client client(daemon.server.socket_path());
  const svc::RunSpec spec = bench_spec();
  // Prime the cache (a miss only on the first of gbench's several runs).
  submit_and_wait(client, spec, Expect::kAny);
  for (auto _ : state) {
    submit_and_wait(client, spec, Expect::kHit);
  }
}
BENCHMARK(BM_SubmitResultWarm)->Unit(benchmark::kMillisecond);

void BM_PingRoundTrip(benchmark::State& state) {
  // Protocol floor: one framed request/reply with no job behind it.
  Daemon& daemon = Daemon::instance();
  svc::Client client(daemon.server.socket_path());
  for (auto _ : state) {
    if (!client.ping()) throw support::Error("ping failed");
  }
}
BENCHMARK(BM_PingRoundTrip)->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char** argv) {
  return sts::benchjson::run(argc, argv, "BENCH_svc.json");
}
